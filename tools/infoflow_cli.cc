/// \file infoflow_cli.cc
/// \brief `infoflow` — command-line front end to the library.
///
/// Subcommands:
///   simulate            generate a synthetic world: ground-truth model,
///                       attributed evidence, unattributed traces
///   train-attributed    raw attributed evidence -> betaICM model file
///   train-unattributed  activation traces -> point model file
///                       (joint-bayes | goyal | saito-em | filtered)
///   query               flow probability from a model, with optional
///                       conditions ("a>b" requires flow, "a!>b" forbids)
///   serve               long-running query daemon: warms a pseudo-state
///                       sample bank, then answers newline-delimited JSON
///                       query batches on stdin/stdout (and optionally a
///                       Unix socket) with amortized per-query cost
///   maximize            top-k seed selection (§I's marketing question):
///                       bank-backed reverse-reachable sketch coverage by
///                       default, --monte-carlo for fresh-simulation CELF
///   impact              spread-size distribution for a source
///   info                describe a model file
///   parse-tweets        raw tweet CSV -> attributed evidence (the §IV-B
///                       preprocessing: chains parsed, originals recovered)
///
/// Examples:
///   infoflow simulate --users 200 --messages 2000 --out-dir /tmp/world
///   infoflow train-attributed --graph /tmp/world/truth.picm
///       --evidence /tmp/world/evidence.att --out /tmp/world/model.bicm
///   infoflow query --model /tmp/world/model.bicm --source 0 --sink 5
///       --given "0>3 0!>7" --samples 20000   (flags continue one line)
///
/// All randomness is seeded (--seed, default 1) for reproducible runs.
///
/// Every command accepts --metrics-json/--metrics-csv/--trace-json to dump
/// the observability registry and a chrome://tracing span timeline after a
/// successful run; `query --progress` streams live throughput and R-hat to
/// stderr.

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "core/impact.h"
#include "core/influence_max.h"
#include "core/mh_sampler.h"
#include "core/multi_chain.h"
#include "core/serialization.h"
#include "seedmax/rr_index.h"
#include "seedmax/seed_selector.h"
#include "serve/router.h"
#include "serve/sample_bank.h"
#include "serve/server.h"
#include "stream/ingestor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "graph/generators.h"
#include "learn/attributed.h"
#include "learn/evidence_io.h"
#include "learn/model_trainer.h"
#include "twitter/cascade_gen.h"
#include "twitter/retweet_parser.h"
#include "twitter/tag_gen.h"
#include "twitter/tweet_io.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace infoflow {
namespace {

/// Minimal flag parser: accepts "--key value", "--key=value", and bare
/// "--flag" (stored as "1" — a boolean switch) when the next token is
/// another flag or the end of the line.
class Flags {
 public:
  Flags(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      const std::string arg = argv[i];
      if (!StartsWith(arg, "--")) {
        error_ = Status::InvalidArgument("unexpected argument '", arg, "'");
        return;
      }
      std::string key = arg.substr(2);
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        values_.insert_or_assign(key.substr(0, eq), key.substr(eq + 1));
      } else if (i + 1 >= argc || StartsWith(argv[i + 1], "--")) {
        values_.insert_or_assign(std::move(key), std::string("1"));
      } else {
        values_.insert_or_assign(std::move(key), std::string(argv[++i]));
      }
    }
  }

  const Status& error() const { return error_; }

  std::string Get(const std::string& key, const std::string& fallback) {
    seen_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  /// True when the switch was given (as bare "--flag" or any value other
  /// than "0"/"false").
  bool GetBool(const std::string& key) {
    const std::string raw = Get(key, "0");
    return raw != "0" && raw != "false";
  }

  std::uint64_t GetInt(const std::string& key, std::uint64_t fallback) {
    const std::string raw = Get(key, std::to_string(fallback));
    return std::strtoull(raw.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) {
    const std::string raw = Get(key, FormatDouble(fallback, 17));
    return std::strtod(raw.c_str(), nullptr);
  }

  /// Overrides a flag programmatically (the --shard-procs fork path
  /// rewrites the child's configuration before re-dispatching serve).
  void Set(const std::string& key, std::string value) {
    values_.insert_or_assign(key, std::move(value));
  }

  Result<std::string> Require(const std::string& key) {
    seen_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end()) {
      return Status::InvalidArgument("missing required flag --", key);
    }
    return it->second;
  }

  /// Flags present but never consumed (typo detection).
  Status CheckUnused() const {
    for (const auto& [key, value] : values_) {
      if (!seen_.contains(key)) {
        return Status::InvalidArgument("unknown flag --", key);
      }
    }
    return Status::OK();
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> seen_;
  Status error_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// --------------------------------------------------------------- simulate
int CmdSimulate(Flags& flags) {
  const auto users = static_cast<NodeId>(flags.GetInt("users", 200));
  const std::size_t messages = flags.GetInt("messages", 2000);
  const std::size_t objects = flags.GetInt("tag-objects", 400);
  const std::uint64_t seed = flags.GetInt("seed", 1);
  auto out_dir = flags.Require("out-dir");
  if (!out_dir.ok()) return Fail(out_dir.status());

  const std::string topology = flags.Get("topology", "pref");

  Rng rng(seed);
  DirectedGraph topo;
  if (topology == "pref") {
    topo = PreferentialAttachmentGraph(users, 3, 0.25, rng);
  } else if (topology == "tree") {
    topo = RandomTreeGraph(users, 4, rng);
  } else {
    return Fail(Status::InvalidArgument("unknown topology '", topology,
                                        "'; expected pref or tree"));
  }
  auto graph = std::make_shared<const DirectedGraph>(std::move(topo));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.02, 0.3);
  const PointIcm truth(graph, probs);
  const UserRegistry registry = UserRegistry::Sequential(users);

  CascadeGenOptions gen;
  gen.num_messages = messages;
  gen.drop_original_prob = 0.15;
  auto cascades = GenerateCascades(truth, registry, gen, rng);
  if (!cascades.ok()) return Fail(cascades.status());
  const ParseResult parsed = ParseRetweetLog(cascades->log, registry);
  const AttributedEvidence evidence = parsed.ToEvidence(*graph);

  const TagNetwork network = AugmentWithOmnipotent(truth);
  TagGenOptions tag;
  tag.num_objects = objects;
  auto traces = GenerateTagTraces(network, TagKind::kUrl, tag, rng);
  if (!traces.ok()) return Fail(traces.status());

  const std::string base = *out_dir + "/";
  Status status = SavePointIcm(truth, base + "truth.picm");
  if (!status.ok()) return Fail(status);
  status = SavePointIcm(network.GroundTruth(tag.url_external_prob),
                        base + "truth_tags.picm");
  if (!status.ok()) return Fail(status);
  status = SaveAttributedEvidence(*graph, evidence, base + "evidence.att");
  if (!status.ok()) return Fail(status);
  status = SaveUnattributedEvidence(*traces, base + "traces.utr");
  if (!status.ok()) return Fail(status);
  status = SaveTweetLog(cascades->log, registry, base + "tweets.csv");
  if (!status.ok()) return Fail(status);
  std::printf(
      "wrote %struth.picm (n=%u m=%u), evidence.att (%zu objects), "
      "truth_tags.picm, traces.utr (%zu traces), tweets.csv (%zu raw)\n",
      base.c_str(), graph->num_nodes(), graph->num_edges(),
      evidence.objects.size(), traces->traces.size(),
      cascades->log.size());
  return 0;
}

// ----------------------------------------------------------- parse-tweets
int CmdParseTweets(Flags& flags) {
  auto tweets_path = flags.Require("tweets");
  auto graph_path = flags.Require("graph");
  auto out_path = flags.Require("out");
  if (!tweets_path.ok()) return Fail(tweets_path.status());
  if (!graph_path.ok()) return Fail(graph_path.status());
  if (!out_path.ok()) return Fail(out_path.status());

  auto reference = LoadPointIcm(*graph_path);
  if (!reference.ok()) return Fail(reference.status());
  const UserRegistry registry =
      UserRegistry::Sequential(reference->graph().num_nodes());
  auto log = LoadTweetLog(*tweets_path, registry);
  if (!log.ok()) return Fail(log.status());
  const ParseResult parsed = ParseRetweetLog(*log, registry);
  const AttributedEvidence evidence = parsed.ToEvidence(reference->graph());
  const Status status =
      SaveAttributedEvidence(reference->graph(), evidence, *out_path);
  if (!status.ok()) return Fail(status);
  std::printf(
      "parsed %zu tweets -> %zu messages (%llu originals recovered, %llu "
      "unresolved mentions) -> %zu evidence objects -> %s\n",
      log->size(), parsed.messages.size(),
      static_cast<unsigned long long>(parsed.recovered_originals),
      static_cast<unsigned long long>(parsed.unresolved_mentions),
      evidence.objects.size(), out_path->c_str());
  return 0;
}

// ------------------------------------------------------- train-attributed
int CmdTrainAttributed(Flags& flags) {
  auto graph_path = flags.Require("graph");
  auto evidence_path = flags.Require("evidence");
  auto out_path = flags.Require("out");
  if (!graph_path.ok()) return Fail(graph_path.status());
  if (!evidence_path.ok()) return Fail(evidence_path.status());
  if (!out_path.ok()) return Fail(out_path.status());

  auto reference = LoadPointIcm(*graph_path);
  if (!reference.ok()) return Fail(reference.status());
  auto evidence =
      LoadAttributedEvidence(*evidence_path, reference->graph());
  if (!evidence.ok()) return Fail(evidence.status());
  auto model = TrainBetaIcmFromAttributed(reference->graph_ptr(), *evidence);
  if (!model.ok()) return Fail(model.status());
  const Status status = SaveBetaIcm(*model, *out_path);
  if (!status.ok()) return Fail(status);
  std::printf("trained %s from %zu objects -> %s\n",
              model->ToString().c_str(), evidence->objects.size(),
              out_path->c_str());
  return 0;
}

// ----------------------------------------------------- train-unattributed
int CmdTrainUnattributed(Flags& flags) {
  auto graph_path = flags.Require("graph");
  auto traces_path = flags.Require("traces");
  auto out_path = flags.Require("out");
  if (!graph_path.ok()) return Fail(graph_path.status());
  if (!traces_path.ok()) return Fail(traces_path.status());
  if (!out_path.ok()) return Fail(out_path.status());
  const std::string method_name = flags.Get("method", "joint-bayes");
  const std::uint64_t seed = flags.GetInt("seed", 1);

  UnattributedTrainOptions options;
  if (method_name == "joint-bayes") {
    options.method = UnattributedMethod::kJointBayes;
  } else if (method_name == "goyal") {
    options.method = UnattributedMethod::kGoyal;
  } else if (method_name == "saito-em") {
    options.method = UnattributedMethod::kSaitoEm;
  } else if (method_name == "filtered") {
    options.method = UnattributedMethod::kFiltered;
  } else {
    return Fail(Status::InvalidArgument("unknown method '", method_name,
                                        "'"));
  }
  options.no_evidence_mean = flags.GetDouble("no-evidence-mean", 0.0);

  auto reference = LoadPointIcm(*graph_path);
  if (!reference.ok()) return Fail(reference.status());
  auto traces = LoadUnattributedEvidence(*traces_path);
  if (!traces.ok()) return Fail(traces.status());
  Rng rng(seed);
  auto model = TrainUnattributedModel(reference->graph_ptr(), *traces,
                                      options, rng);
  if (!model.ok()) return Fail(model.status());
  const Status status = SavePointIcm(model->ToPointIcm(), *out_path);
  if (!status.ok()) return Fail(status);
  std::printf("trained %s model from %zu traces -> %s\n",
              UnattributedMethodName(options.method),
              traces->traces.size(), out_path->c_str());
  return 0;
}

/// Loads a model file as a PointIcm, accepting either format (betaICM
/// files are collapsed to their expected model).
Result<PointIcm> LoadAnyModel(const std::string& path) {
  auto point = LoadPointIcm(path);
  if (point.ok()) return point;
  auto beta = LoadBetaIcm(path);
  if (beta.ok()) return beta->ExpectedIcm();
  return Status::ParseError("'", path,
                            "' is neither a point nor a beta model (",
                            point.status().message(), ")");
}

// ------------------------------------------------------------------ query
int CmdQuery(Flags& flags) {
  auto model_path = flags.Require("model");
  if (!model_path.ok()) return Fail(model_path.status());
  const auto source = static_cast<NodeId>(flags.GetInt("source", 0));
  const auto sink = static_cast<NodeId>(flags.GetInt("sink", 0));
  const std::size_t samples = flags.GetInt("samples", 20000);
  const std::uint64_t seed = flags.GetInt("seed", 1);
  const std::size_t chains = flags.GetInt("chains", 4);
  const bool progress = flags.GetBool("progress");
  auto conditions = ParseFlowConditions(flags.Get("given", ""));
  if (!conditions.ok()) return Fail(conditions.status());
  auto backend = serve::ParseQueryBackend(flags.Get("backend", "bank"));
  if (!backend.ok()) return Fail(backend.status());

  auto model = LoadAnyModel(*model_path);
  if (!model.ok()) return Fail(model.status());

  // --backend analytic / auto: the sampling-free message-passing estimator
  // (src/analytic/) answers unconditional queries directly from the edge
  // probabilities. Auto falls back to sampling unless the reachable
  // subgraph admits an exact analytic regime; explicit analytic fails
  // descriptively instead of silently sampling.
  if (*backend != serve::QueryBackend::kBank) {
    if (!conditions->empty()) {
      if (*backend == serve::QueryBackend::kAnalytic) {
        return Fail(Status::FailedPrecondition(
            "--backend analytic cannot answer conditioned queries: "
            "conditioning (Eq. 7-8) is a filter over retained rows -- use "
            "--backend bank"));
      }
    } else {
      if (source >= model->graph().num_nodes() ||
          sink >= model->graph().num_nodes()) {
        return Fail(Status::OutOfRange("source/sink out of range for ",
                                       model->graph().num_nodes(),
                                       " nodes"));
      }
      analytic::AnalyticOptions analytic_options;
      analytic_options.require_exact =
          *backend == serve::QueryBackend::kAuto;
      const std::vector<NodeId> sources{source};
      auto answer = analytic::ReachProbabilities(
          model->graph(), model->probs(), sources, analytic_options);
      if (answer.ok()) {
        std::printf(
            "Pr[%u ~> %u] = %.5f   (analytic backend, %s regime, expected "
            "error %.3g)\n",
            source, sink, answer->probability[sink],
            analytic::AnalyticMethodName(answer->method),
            answer->report.expected_error);
        return 0;
      }
      if (*backend == serve::QueryBackend::kAnalytic) {
        return Fail(answer.status());
      }
      std::fprintf(stderr, "auto backend: %s; answering by sampling\n",
                   answer.status().message().c_str());
    }
  }

  MultiChainOptions options;
  options.num_chains = std::max<std::size_t>(1, chains);
  options.use_batch_reachability = !flags.GetBool("scalar-reachability");
  options.mh.burn_in = 4 * model->graph().num_edges();
  options.mh.thinning =
      std::max<std::size_t>(8, model->graph().num_edges() / 8);
  auto engine =
      MultiChainSampler::Create(*model, *conditions, options, seed);
  if (!engine.ok()) return Fail(engine.status());

  // With --progress, split the run into batches and report throughput and
  // the live convergence diagnostics on stderr after each one. The chains
  // persist across batches, so the union of the batches is one long run.
  const std::size_t batches =
      progress ? std::min<std::size_t>(10, std::max<std::size_t>(
                                               1, samples / chains))
               : 1;
  double weighted_sum = 0.0;
  std::size_t drawn = 0;
  MultiChainEstimate estimate;
  WallTimer timer;
  std::uint64_t last_steps = engine->steps_taken();
  for (std::size_t b = 0; b < batches; ++b) {
    const std::size_t remaining_batches = batches - b;
    const std::size_t request =
        std::max<std::size_t>(1, (samples - std::min(samples, drawn)) /
                                     remaining_batches);
    estimate = engine->EstimateFlowProbability(source, sink, request);
    const std::size_t batch_drawn =
        engine->num_chains() * engine->SamplesPerChain(request);
    weighted_sum += estimate.value * static_cast<double>(batch_drawn);
    drawn += batch_drawn;
    if (progress) {
      const double lap = timer.Lap();
      const std::uint64_t steps = engine->steps_taken();
      const double steps_per_s =
          lap > 0.0 ? static_cast<double>(steps - last_steps) / lap : 0.0;
      last_steps = steps;
      std::fprintf(stderr,
                   "progress: %zu/%zu samples | %zu chains x %.0f steps/s "
                   "| R-hat %.3f | ESS %.0f\n",
                   drawn, std::max(samples, drawn), engine->num_chains(),
                   steps_per_s / static_cast<double>(engine->num_chains()),
                   estimate.diagnostics.rhat, estimate.diagnostics.ess);
    }
  }
  const double p = weighted_sum / static_cast<double>(drawn);
  const double acceptance =
      static_cast<double>(engine->steps_accepted()) /
      static_cast<double>(std::max<std::uint64_t>(1, engine->steps_taken()));
  std::printf(
      "Pr[%u ~> %u%s] = %.5f   (%zu MH samples over %zu chains, acceptance "
      "%.2f, R-hat %.3f, ESS %.0f)\n",
      source, sink, conditions->empty() ? "" : " | conditions", p, drawn,
      engine->num_chains(), acceptance, estimate.diagnostics.rhat,
      estimate.diagnostics.ess);
  if (estimate.diagnostics.rhat > 1.05) {
    std::fprintf(stderr,
                 "warning: R-hat %.3f > 1.05 — chains may not have "
                 "converged; consider more samples\n",
                 estimate.diagnostics.rhat);
  }
  return 0;
}

// ------------------------------------------------------------------ serve

int CmdServe(Flags& flags);  // children re-enter it after the fork

/// Raised by SIGTERM/SIGINT; the serve loops poll it and read it as EOF,
/// so a signalled daemon unwinds cleanly and still writes --metrics-json /
/// --trace-json artifacts.
volatile std::sig_atomic_t g_serve_interrupt = 0;

void HandleServeSignal(int) { g_serve_interrupt = 1; }

/// Installs the handlers WITHOUT SA_RESTART: a read(2) parked on stdin
/// returns EINTR, the LineReader notices the flag, and the loop exits.
void InstallServeSignalHandlers() {
  struct sigaction sa {};
  sa.sa_handler = HandleServeSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// Shared-nothing multi-process serving: forks `shard_procs` children
/// BEFORE any thread exists, each building a full bank replica (same model,
/// same --seed → bit-identical rows and answers) and serving the NDJSON
/// protocol on its end of a socketpair; the parent runs a ProcessRouter
/// bridging stdin/stdout. Children never refresh (replicas must not
/// diverge) and ingest is rejected up front for the same reason.
int ServeShardProcs(Flags& flags, std::size_t shard_procs) {
  if (flags.GetBool("ingest") || !flags.Get("ingest-from", "").empty()) {
    return Fail(Status::InvalidArgument(
        "--shard-procs is shared-nothing (round-robin over replicas); "
        "streamed evidence would reach only one replica — use in-process "
        "--shards with --ingest instead"));
  }
  if (flags.GetDouble("refresh-ms", 0.0) != 0.0) {
    return Fail(Status::InvalidArgument(
        "--refresh-ms would let shard replicas drift apart; --shard-procs "
        "serves the boot generation only"));
  }
  signal(SIGPIPE, SIG_IGN);
  std::vector<int> child_fds;
  std::vector<pid_t> children;
  for (std::size_t k = 0; k < shard_procs; ++k) {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      return Fail(Status::IOError("socketpair(): ", std::strerror(errno)));
    }
    const pid_t pid = fork();
    if (pid < 0) return Fail(Status::IOError("fork(): ", std::strerror(errno)));
    if (pid == 0) {
      // Child: full replica with the socketpair as its stdio — CmdServe's
      // foreground ServeStdio loop then speaks NDJSON to the router and
      // exits when the router closes its end.
      close(sv[0]);
      for (const int fd : child_fds) close(fd);
      dup2(sv[1], 0);
      dup2(sv[1], 1);
      if (sv[1] > 1) close(sv[1]);
      // A replica keeps the parent's --shards flag: each child may itself
      // run the in-process sharded engine, so router spans, shard replay
      // spans, and replica spans all join one query_id-keyed trace tree.
      // Periodic writers are router-side concerns — P replicas rewriting
      // the same artifact paths would clobber each other.
      flags.Set("stats-every", "0");
      flags.Set("slow-query-ms", "0");
      const int code = CmdServe(flags);
      std::fflush(nullptr);
      std::_Exit(code);
    }
    close(sv[1]);
    child_fds.push_back(sv[0]);
    children.push_back(pid);
  }
  serve::ProcessRouter::Options router_options;
  router_options.max_batch = flags.GetInt("max-batch", 64);
  router_options.child_timeout_ms = flags.GetDouble("shard-timeout-ms", 0.0);
  router_options.interrupt = &g_serve_interrupt;
  InstallServeSignalHandlers();
  Status status;
  {
    serve::ProcessRouter router(std::move(child_fds), router_options);
    status = router.Serve(0, 1);
    if (status.ok() && !flags.Get("trace-json", "").empty()) {
      // Pull every replica's spans into the router's trace state before
      // the children go away; Main's --trace-json write then exports the
      // merged per-query span tree.
      (void)router.MergedTraceExport();
    }
    // Router destruction closes the child fds → each replica's serve loop
    // sees EOF and exits; reap them so no zombies outlive the command.
  }
  for (const pid_t pid : children) {
    int wstatus = 0;
    (void)waitpid(pid, &wstatus, 0);
  }
  if (!status.ok()) return Fail(status);
  return 0;
}

int CmdServe(Flags& flags) {
  auto model_path = flags.Require("model");
  if (!model_path.ok()) return Fail(model_path.status());
  const std::uint64_t seed = flags.GetInt("seed", 1);
  const std::size_t shard_procs = flags.GetInt("shard-procs", 0);
  if (shard_procs > 0) {
    flags.Set("shard-procs", "0");  // children take the in-process path
    return ServeShardProcs(flags, shard_procs);
  }
  // Catch SIGTERM/SIGINT from the start: a signal during bank warm-up is
  // remembered and read as EOF once the serve loop begins, so a signalled
  // daemon always unwinds cleanly and writes its observability artifacts.
  InstallServeSignalHandlers();

  auto model = LoadAnyModel(*model_path);
  if (!model.ok()) return Fail(model.status());
  const std::size_t num_edges = model->graph().num_edges();

  serve::BankOptions bank_options;
  bank_options.num_states = flags.GetInt("bank-states", 4096);
  bank_options.chain.num_chains =
      std::max<std::size_t>(1, flags.GetInt("chains", 4));
  bank_options.chain.num_threads = flags.GetInt("threads", 0);
  bank_options.chain.mh.burn_in = flags.GetInt("burn-in", 4 * num_edges);
  bank_options.chain.mh.thinning = flags.GetInt(
      "thinning", std::max<std::size_t>(8, num_edges / 8));

  serve::ServerOptions server_options;
  server_options.max_batch = flags.GetInt("max-batch", 64);
  server_options.socket_path = flags.Get("socket", "");
  server_options.refresh_interval_ms = flags.GetDouble("refresh-ms", 0.0);
  server_options.drift_threshold = flags.GetDouble("drift-threshold", 0.0);
  server_options.num_shards = flags.GetInt("shards", 1);
  server_options.partition_seed = flags.GetInt("partition-seed", 7);
  server_options.engine.min_conditional_rows =
      flags.GetInt("min-conditional-rows", 32);
  server_options.engine.num_threads = flags.GetInt("threads", 0);
  // Escape hatch: answer row scans one BFS per row over the packed rows
  // instead of 64 rows per pass over the edge-major plane.
  server_options.engine.use_batch_reachability =
      !flags.GetBool("scalar-reachability");
  // Replay lane width: 64 keeps the classic one-word path, 256/512 replay
  // 4/8-word strips, auto picks the widest strip the bank fills. Answers
  // are bit-identical at every width.
  auto lanes = ParseLaneWidth(flags.Get("lanes", "auto"));
  if (!lanes.ok()) return Fail(lanes.status());
  server_options.engine.lanes = *lanes;
  // Default backend for wire requests that don't name one; per-request
  // "backend" fields override it.
  auto default_backend =
      serve::ParseQueryBackend(flags.Get("backend", "bank"));
  if (!default_backend.ok()) return Fail(default_backend.status());
  server_options.engine.default_backend = *default_backend;
  // --stats-every refreshes the --metrics-json artifact periodically while
  // the daemon runs (atomically, via rename), instead of only at exit.
  server_options.stats_interval_ms = flags.GetDouble("stats-every", 0.0);
  if (server_options.stats_interval_ms > 0.0) {
    server_options.stats_path = flags.Get("metrics-json", "");
    if (server_options.stats_path.empty()) {
      return Fail(Status::InvalidArgument(
          "--stats-every needs --metrics-json (the snapshot destination)"));
    }
  }
  server_options.slow_query_ms = flags.GetDouble("slow-query-ms", 0.0);
  server_options.slow_query_path = flags.Get("slow-query-log", "");
  if (server_options.slow_query_ms > 0.0 &&
      server_options.slow_query_path.empty()) {
    return Fail(Status::InvalidArgument(
        "--slow-query-ms needs --slow-query-log (the NDJSON destination)"));
  }
  server_options.interrupt = &g_serve_interrupt;

  // Streaming ingestion: --ingest enables the serve-connection verb,
  // --ingest-from additionally tails a file/FIFO side channel.
  const std::string ingest_from = flags.Get("ingest-from", "");
  const bool ingest_enabled = flags.GetBool("ingest") || !ingest_from.empty();
  std::shared_ptr<stream::StreamIngestor> ingestor;
  if (ingest_enabled) {
    stream::IngestorOptions ingest_options;
    ingest_options.trainer.decay = flags.GetDouble("decay", 1.0);
    ingest_options.trainer.window = flags.GetInt("window", 0);
    ingest_options.epoch_every = flags.GetInt("epoch-every", 64);
    ingest_options.queue_capacity = flags.GetInt("queue-capacity", 1024);
    ingest_options.seed = seed;
    auto policy =
        stream::ParseQueueOverflowPolicy(flags.Get("queue-policy", "park"));
    if (!policy.ok()) return Fail(policy.status());
    ingest_options.queue_policy = *policy;
    auto format =
        stream::ParseStreamFormat(flags.Get("ingest-format", "auto"));
    if (!format.ok()) return Fail(format.status());
    ingest_options.format = *format;
    const Status valid = ingest_options.Validate();
    if (!valid.ok()) return Fail(valid);
    ingestor = std::make_shared<stream::StreamIngestor>(model->graph_ptr(),
                                                        *model,
                                                        ingest_options);
  }

  WallTimer warmup;
  auto bank = serve::SampleBank::Create(*model, bank_options, seed);
  if (!bank.ok()) return Fail(bank.status());
  std::fprintf(stderr,
               "serve: bank ready — %zu rows x %u edges over %zu chains in "
               "%.1f ms%s%s\n",
               bank->rows_per_generation(), model->graph().num_edges(),
               bank_options.chain.num_chains, warmup.Millis(),
               server_options.socket_path.empty() ? "" : ", socket ",
               server_options.socket_path.c_str());

  auto server =
      serve::Server::Create(std::move(bank).ValueOrDie(), server_options);
  if (!server.ok()) return Fail(server.status());
  if (ingestor != nullptr) server->AttachIngestor(ingestor);
  Status status = server->Start();
  if (!status.ok()) return Fail(status);
  if (!ingest_from.empty()) {
    status = ingestor->StartFeed(ingest_from);
    if (!status.ok()) return Fail(status);
    std::fprintf(stderr, "serve: tailing evidence feed %s\n",
                 ingest_from.c_str());
  }
  // Foreground loop: NDJSON batches on stdin/stdout until EOF (or
  // SIGTERM/SIGINT, which the reader converts into a clean EOF so the
  // observability artifacts below still get written).
  status = server->ServeStdio();
  // Order matters: the feed flush may publish a final epoch whose drift
  // queues one last rebuild, which Stop() drains before returning — so the
  // post-run metrics snapshot reflects everything that was ingested.
  if (ingestor != nullptr) ingestor->StopFeed();
  server->Stop();
  if (!status.ok()) return Fail(status);
  return 0;
}

// --------------------------------------------------------------- maximize

/// Parses a comma-separated node-id list flag like "0,3,17"; empty → empty.
Result<std::vector<NodeId>> ParseNodeListFlag(const std::string& text,
                                              const char* flag) {
  std::vector<NodeId> nodes;
  std::size_t pos = 0;
  while (pos < text.size()) {
    if (text[pos] == ',' || text[pos] == ' ') {
      ++pos;
      continue;
    }
    char* end = nullptr;
    const unsigned long value = std::strtoul(text.c_str() + pos, &end, 10);
    if (end == text.c_str() + pos) {
      return Status::InvalidArgument("--", flag,
                                     ": expected a comma-separated node "
                                     "list, got '", text, "'");
    }
    nodes.push_back(static_cast<NodeId>(value));
    pos = static_cast<std::size_t>(end - text.c_str());
  }
  return nodes;
}

int CmdMaximize(Flags& flags) {
  auto model_path = flags.Require("model");
  if (!model_path.ok()) return Fail(model_path.status());
  const std::size_t k = flags.GetInt("k", 3);
  const std::uint64_t seed = flags.GetInt("seed", 1);
  auto model = LoadAnyModel(*model_path);
  if (!model.ok()) return Fail(model.status());
  auto candidates = ParseNodeListFlag(flags.Get("candidates", ""),
                                      "candidates");
  if (!candidates.ok()) return Fail(candidates.status());

  if (flags.GetBool("monte-carlo")) {
    // The pre-bank reference path: CELF over fresh cascade simulations.
    InfluenceMaxOptions options;
    options.num_seeds = k;
    options.simulations = flags.GetInt("simulations", 500);
    options.candidates = *candidates;
    Rng rng(seed);
    WallTimer timer;
    auto result = MaximizeInfluence(*model, options, rng);
    if (!result.ok()) return Fail(result.status());
    std::printf(
        "selected %zu seeds (monte-carlo CELF, %zu simulations/estimate, "
        "%zu evaluations, %.1f ms)\n",
        result->seeds.size(), options.simulations, result->evaluations,
        timer.Millis());
    for (std::size_t i = 0; i < result->seeds.size(); ++i) {
      std::printf("  %zu. node %u   spread %.3f\n", i + 1,
                  result->seeds[i], result->expected_spread[i]);
    }
    return 0;
  }

  // Bank-backed default: invert retained pseudo-states into RR sketches
  // and run CELF as popcount max-coverage — no fresh simulation.
  auto community = ParseNodeListFlag(flags.Get("community", ""),
                                     "community");
  if (!community.ok()) return Fail(community.status());
  auto given = ParseFlowConditions(flags.Get("given", ""));
  if (!given.ok()) return Fail(given.status());

  const std::size_t num_edges = model->graph().num_edges();
  serve::BankOptions bank_options;
  bank_options.num_states = flags.GetInt("bank-states", 2048);
  bank_options.chain.num_chains =
      std::max<std::size_t>(1, flags.GetInt("chains", 4));
  bank_options.chain.num_threads = flags.GetInt("threads", 0);
  bank_options.chain.mh.burn_in = flags.GetInt("burn-in", 4 * num_edges);
  bank_options.chain.mh.thinning =
      flags.GetInt("thinning", std::max<std::size_t>(8, num_edges / 8));
  WallTimer warmup;
  auto bank = serve::SampleBank::Create(*model, bank_options, seed);
  if (!bank.ok()) return Fail(bank.status());
  const std::shared_ptr<const serve::BankGeneration> generation =
      bank->Acquire();
  std::fprintf(stderr, "maximize: bank ready — %zu rows in %.1f ms\n",
               generation->num_rows(), warmup.Millis());

  WallTimer sketch_timer;
  seedmax::RrIndex index(bank->graph_ptr());
  std::shared_ptr<const seedmax::RrSketchSet> sketches;
  if (community->empty() && given->empty()) {
    auto acquired = index.Acquire(generation);
    if (!acquired.ok()) return Fail(acquired.status());
    sketches = std::move(*acquired);
  } else {
    seedmax::RrBuildOptions build;
    build.targets = std::move(*community);
    build.given = std::move(*given);
    build.min_conditional_rows = flags.GetInt("min-conditional-rows", 32);
    build.pool = &index.pool();
    auto built = seedmax::RrSketchSet::Build(index.view(), *generation,
                                             build);
    if (!built.ok()) return Fail(built.status());
    sketches =
        std::make_shared<const seedmax::RrSketchSet>(std::move(*built));
  }
  const double sketch_ms = sketch_timer.Millis();

  seedmax::SeedMaxOptions options;
  options.num_seeds = k;
  options.candidates = std::move(*candidates);
  WallTimer select_timer;
  auto result = seedmax::SelectSeeds(*sketches, options);
  if (!result.ok()) return Fail(result.status());
  std::printf(
      "selected %zu seeds (bank-sketch backend: %llu RR sketches over %zu "
      "rows, sketch build %.1f ms, select %.1f ms, %zu evaluations, %zu "
      "prune hits)\n",
      result->picks.size(),
      static_cast<unsigned long long>(result->num_sketches),
      result->effective_rows, sketch_ms, select_timer.Millis(),
      result->evaluations, result->prune_hits);
  for (std::size_t i = 0; i < result->picks.size(); ++i) {
    const seedmax::SeedPick& pick = result->picks[i];
    std::printf("  %zu. node %u   spread %.3f ± %.3f\n", i + 1, pick.node,
                pick.spread, pick.mcse);
  }
  return 0;
}

// ----------------------------------------------------------------- impact
int CmdImpact(Flags& flags) {
  auto model_path = flags.Require("model");
  if (!model_path.ok()) return Fail(model_path.status());
  const auto source = static_cast<NodeId>(flags.GetInt("source", 0));
  const std::size_t cascades = flags.GetInt("cascades", 10000);
  const std::uint64_t seed = flags.GetInt("seed", 1);
  auto backend = serve::ParseQueryBackend(flags.Get("backend", "bank"));
  if (!backend.ok()) return Fail(backend.status());
  auto model = LoadAnyModel(*model_path);
  if (!model.ok()) return Fail(model.status());
  if (source >= model->graph().num_nodes()) {
    return Fail(Status::OutOfRange("source out of range for ",
                                   model->graph().num_nodes(), " nodes"));
  }

  // --backend analytic / auto: fig 4's histogram as an exact PMF by
  // subtree convolution (core/impact.h AnalyticImpact) — no cascades
  // simulated at all. Auto falls back to simulation unless the reachable
  // subgraph admits an exact regime.
  if (*backend != serve::QueryBackend::kBank) {
    analytic::AnalyticOptions analytic_options;
    analytic_options.require_exact = *backend == serve::QueryBackend::kAuto;
    auto pmf = AnalyticImpact(*model, source, analytic_options);
    if (pmf.ok()) {
      std::printf("impact of %u (analytic backend, %s regime): mean %.2f\n",
                  source, analytic::AnalyticMethodName(pmf->method),
                  pmf->Mean());
      for (std::size_t k = 0; k < pmf->probs.size() && k <= 20; ++k) {
        std::string bar(static_cast<std::size_t>(pmf->probs[k] * 50), '#');
        std::printf("%4zu %-50s %.4f\n", k, bar.c_str(), pmf->probs[k]);
      }
      return 0;
    }
    if (*backend == serve::QueryBackend::kAnalytic) {
      return Fail(pmf.status());
    }
    std::fprintf(stderr, "auto backend: %s; answering by simulation\n",
                 pmf.status().message().c_str());
  }

  Rng rng(seed);
  const ImpactDistribution dist =
      SimulateImpact(*model, source, cascades, rng);
  std::printf("impact of %u over %zu cascades: mean %.2f\n", source,
              cascades, dist.Mean());
  for (std::size_t k = 0; k < dist.counts.size() && k <= 20; ++k) {
    const double frac = static_cast<double>(dist.counts[k]) /
                        static_cast<double>(dist.Total());
    std::string bar(static_cast<std::size_t>(frac * 50), '#');
    std::printf("%4zu %-50s %.4f\n", k, bar.c_str(), frac);
  }
  return 0;
}

// ------------------------------------------------------------------- info
int CmdInfo(Flags& flags) {
  auto model_path = flags.Require("model");
  if (!model_path.ok()) return Fail(model_path.status());
  auto beta = LoadBetaIcm(*model_path);
  if (beta.ok()) {
    double min_mean = 1.0, max_mean = 0.0, total_obs = 0.0;
    for (EdgeId e = 0; e < beta->graph().num_edges(); ++e) {
      const double mean = beta->EdgeBeta(e).Mean();
      min_mean = std::min(min_mean, mean);
      max_mean = std::max(max_mean, mean);
      total_obs += beta->alpha(e) + beta->beta(e) - 2.0;
    }
    std::printf("%s — edge means in [%.4f, %.4f], %.0f observations\n",
                beta->ToString().c_str(), min_mean, max_mean, total_obs);
    return 0;
  }
  auto point = LoadPointIcm(*model_path);
  if (point.ok()) {
    double min_p = 1.0, max_p = 0.0;
    for (EdgeId e = 0; e < point->graph().num_edges(); ++e) {
      min_p = std::min(min_p, point->prob(e));
      max_p = std::max(max_p, point->prob(e));
    }
    std::printf("%s — edge probabilities in [%.4f, %.4f]\n",
                point->ToString().c_str(), min_p, max_p);
    return 0;
  }
  return Fail(point.status());
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: infoflow <command> [--flags]\n"
      "commands:\n"
      "  simulate            --out-dir D [--users N] [--messages M]\n"
      "                      [--tag-objects K] [--seed S]\n"
      "                      [--topology pref|tree] (tree = random recursive\n"
      "                      tree, the analytic backend's exact regime)\n"
      "  train-attributed    --graph truth.picm --evidence e.att --out m.bicm\n"
      "  train-unattributed  --graph truth.picm --traces t.utr --out m.picm\n"
      "                      [--method joint-bayes|goyal|saito-em|filtered]\n"
      "  query               --model m --source U --sink V [--given \"a>b c!>d\"]\n"
      "                      [--backend auto|analytic|bank] (analytic = the\n"
      "                      sampling-free message-passing estimator; auto\n"
      "                      picks it only when exact on the subgraph)\n"
      "                      [--samples N] [--chains K] [--seed S] [--progress]\n"
      "                      [--scalar-reachability] (one BFS per sample)\n"
      "  serve               --model m [--bank-states N] [--chains K]\n"
      "                      [--socket path.sock] [--max-batch B]\n"
      "                      [--refresh-ms T] [--min-conditional-rows F]\n"
      "                      [--scalar-reachability] (one BFS per bank row\n"
      "                      instead of 64 rows per bit-parallel pass)\n"
      "                      [--lanes 64|256|512|auto] (rows per replay pass:\n"
      "                      256/512 run 4/8-word reachability strips; auto\n"
      "                      picks the widest strip the bank fills; answers\n"
      "                      are bit-identical at every width)\n"
      "                      [--seed S] (bank + rebuild chain seeds)\n"
      "                      [--backend auto|analytic|bank] (default backend\n"
      "                      for requests without a \"backend\" field)\n"
      "                      (NDJSON queries on stdin -> responses on stdout)\n"
      "    sharding:         [--shards N] (partition the graph, one engine\n"
      "                      per shard, bit-identical answers; N=1 is the\n"
      "                      plain single-engine path)\n"
      "                      [--partition-seed S] [--shard-procs P] (fork P\n"
      "                      full-replica child processes, round-robin NDJSON\n"
      "                      routing; excludes --ingest/--refresh-ms)\n"
      "                      [--shard-timeout-ms T] (per-batch child deadline)\n"
      "    streaming:        [--ingest] ({\"ingest\":\"<record>\"} lines on the\n"
      "                      connection) [--ingest-from path] (tail a file or\n"
      "                      FIFO of evidence lines) [--ingest-format\n"
      "                      auto|attributed|traces] [--decay D] [--window W]\n"
      "                      [--epoch-every N] [--drift-threshold T]\n"
      "                      [--queue-capacity C]\n"
      "                      [--queue-policy park|drop-newest|drop-oldest]\n"
      "    observability:    [--stats-every T] (rewrite --metrics-json every\n"
      "                      T ms while serving) [--slow-query-ms T]\n"
      "                      [--slow-query-log P] (append an NDJSON record\n"
      "                      per slow or deadline-dead query)\n"
      "                      admin verbs on the connection: {\"stats\":true}\n"
      "                      {\"health\":true} {\"trace\":{\"enable\":true|false}}\n"
      "                      {\"trace\":{\"export\":true}}\n"
      "  maximize            --model m [--k K] (top-k seed selection: invert\n"
      "                      the sample bank into reverse-reachable sketches,\n"
      "                      CELF max-coverage by popcount)\n"
      "                      [--bank-states N] [--chains C] [--seed S]\n"
      "                      [--candidates \"0,1,2\"] (eligible seeds)\n"
      "                      [--community \"7,8,9\"] (maximize reach into these\n"
      "                      nodes) [--given \"a>b c!>d\"] (condition the\n"
      "                      pseudo-states, Eq. 7-8)\n"
      "                      [--min-conditional-rows F]\n"
      "                      [--monte-carlo] (fresh-simulation CELF instead of\n"
      "                      the bank) [--simulations N]\n"
      "  impact              --model m --source U [--cascades N]\n"
      "                      [--backend auto|analytic|bank] (analytic = exact\n"
      "                      PMF by subtree convolution, no cascades)\n"
      "  info                --model m\n"
      "  parse-tweets        --tweets t.csv --graph truth.picm --out e.att\n"
      "observability (any command, written after a successful run):\n"
      "  --metrics-json P    dump the metrics registry snapshot as JSON\n"
      "  --metrics-csv P     same snapshot as CSV\n"
      "  --trace-json P      record spans; dump chrome://tracing JSON\n"
      "                      (serve --shard-procs merges replica spans into\n"
      "                      one query_id-keyed tree)\n");
  return 2;
}

/// Writes `content` to `path`, truncating any existing file.
Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '", path, "' for writing");
  out << content;
  out.flush();
  if (!out) return Status::IOError("failed writing '", path, "'");
  return Status::OK();
}

int Dispatch(const std::string& command, Flags& flags) {
  if (command == "simulate") return CmdSimulate(flags);
  if (command == "parse-tweets") return CmdParseTweets(flags);
  if (command == "train-attributed") return CmdTrainAttributed(flags);
  if (command == "train-unattributed") return CmdTrainUnattributed(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "maximize") return CmdMaximize(flags);
  if (command == "impact") return CmdImpact(flags);
  if (command == "info") return CmdInfo(flags);
  return Usage();
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (!flags.error().ok()) return Fail(flags.error());

  // Observability flags apply to every command. Tracing must be armed
  // before dispatch; the artifacts are written only on success.
  const std::string metrics_json = flags.Get("metrics-json", "");
  const std::string metrics_csv = flags.Get("metrics-csv", "");
  const std::string trace_json = flags.Get("trace-json", "");
  if (!trace_json.empty()) obs::Tracing::Enable();

  const int code = Dispatch(command, flags);
  if (code != 0) return code;

  if (!metrics_json.empty() || !metrics_csv.empty()) {
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();
    if (!metrics_json.empty()) {
      const Status status = WriteTextFile(metrics_json, snapshot.ToJson());
      if (!status.ok()) return Fail(status);
    }
    if (!metrics_csv.empty()) {
      const Status status = WriteTextFile(metrics_csv, snapshot.ToCsv());
      if (!status.ok()) return Fail(status);
    }
  }
  if (!trace_json.empty()) {
    const Status status =
        WriteTextFile(trace_json, obs::Tracing::ExportChromeJson());
    if (!status.ok()) return Fail(status);
  }
  return 0;
}

}  // namespace
}  // namespace infoflow

int main(int argc, char** argv) { return infoflow::Main(argc, argv); }
