# Drives the infoflow CLI end to end; any non-zero exit fails the test.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "infoflow ${ARGN} failed with ${code}")
  endif()
endfunction()

run(simulate --out-dir ${WORK_DIR} --users 80 --messages 500 --seed 9)
run(parse-tweets --tweets ${WORK_DIR}/tweets.csv --graph ${WORK_DIR}/truth.picm
    --out ${WORK_DIR}/parsed.att)
run(train-attributed --graph ${WORK_DIR}/truth.picm
    --evidence ${WORK_DIR}/parsed.att --out ${WORK_DIR}/model.bicm)
run(train-unattributed --graph ${WORK_DIR}/truth_tags.picm
    --traces ${WORK_DIR}/traces.utr --out ${WORK_DIR}/tags.picm
    --method goyal)
run(info --model ${WORK_DIR}/model.bicm)
run(query --model ${WORK_DIR}/model.bicm --source 0 --sink 3 --samples 2000)
run(query --model ${WORK_DIR}/model.bicm --source 0 --sink 3
    --given "0>1" --samples 2000)
run(impact --model ${WORK_DIR}/model.bicm --source 0 --cascades 500)
