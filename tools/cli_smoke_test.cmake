# Drives the infoflow CLI end to end; any non-zero exit fails the test.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "infoflow ${ARGN} failed with ${code}")
  endif()
endfunction()

run(simulate --out-dir ${WORK_DIR} --users 80 --messages 500 --seed 9)
run(parse-tweets --tweets ${WORK_DIR}/tweets.csv --graph ${WORK_DIR}/truth.picm
    --out ${WORK_DIR}/parsed.att)
run(train-attributed --graph ${WORK_DIR}/truth.picm
    --evidence ${WORK_DIR}/parsed.att --out ${WORK_DIR}/model.bicm)
run(train-unattributed --graph ${WORK_DIR}/truth_tags.picm
    --traces ${WORK_DIR}/traces.utr --out ${WORK_DIR}/tags.picm
    --method goyal)
run(info --model ${WORK_DIR}/model.bicm)
run(query --model ${WORK_DIR}/model.bicm --source 0 --sink 3 --samples 2000)
run(query --model ${WORK_DIR}/model.bicm --source 0 --sink 3
    --given "0>1" --samples 2000)
run(impact --model ${WORK_DIR}/model.bicm --source 0 --cascades 500)
run(maximize --model ${WORK_DIR}/model.bicm --k 2
    --bank-states 512 --seed 11)
run(maximize --model ${WORK_DIR}/model.bicm --k 2
    --candidates "0,1,2,3" --community "4,5,6" --given "0!>1"
    --bank-states 512 --seed 11)
run(maximize --model ${WORK_DIR}/model.bicm --k 2 --monte-carlo
    --simulations 200 --seed 11)

# Observability artifacts: run a query with every export flag and check the
# files appear and hold well-formed JSON (string(JSON) needs CMake >= 3.19).
run(query --model ${WORK_DIR}/model.bicm --source 0 --sink 3 --samples 2000
    --chains 2 --progress
    --metrics-json ${WORK_DIR}/metrics.json
    --metrics-csv ${WORK_DIR}/metrics.csv
    --trace-json ${WORK_DIR}/trace.json)
foreach(artifact metrics.json metrics.csv trace.json)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "query did not write ${artifact}")
  endif()
endforeach()
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  file(READ ${WORK_DIR}/metrics.json metrics_json)
  string(JSON n_counters ERROR_VARIABLE json_error
         LENGTH "${metrics_json}" counters)
  if(json_error)
    message(FATAL_ERROR "metrics.json is not valid JSON: ${json_error}")
  endif()
  file(READ ${WORK_DIR}/trace.json trace_json)
  string(JSON n_events ERROR_VARIABLE json_error
         LENGTH "${trace_json}" traceEvents)
  if(json_error)
    message(FATAL_ERROR "trace.json is not valid JSON: ${json_error}")
  endif()
  # A metrics-disabled build legitimately exports an empty (but still
  # valid) trace; only a metrics-enabled CLI must have recorded spans.
  if(NOT NO_METRICS AND n_events EQUAL 0)
    message(FATAL_ERROR "trace.json recorded no spans")
  endif()
endif()
file(READ ${WORK_DIR}/metrics.csv metrics_csv)
if(NOT metrics_csv MATCHES "kind,name,field,value")
  message(FATAL_ERROR "metrics.csv is missing its header")
endif()

# Regression: a SIGTERM'd serve daemon must still flush --metrics-json
# (the signal handlers read as EOF in the serve loop, so the daemon
# unwinds cleanly instead of dying with its artifacts unwritten).
if(UNIX)
  file(REMOVE ${WORK_DIR}/serve_metrics.json)
  execute_process(
    COMMAND sh -c "sleep 30 | '${CLI}' serve --model '${WORK_DIR}/model.bicm' \
--bank-states 64 --chains 2 --burn-in 200 --thinning 4 \
--metrics-json '${WORK_DIR}/serve_metrics.json' & pid=$!; \
sleep 3; kill -TERM $pid; wait $pid"
    RESULT_VARIABLE serve_code)
  if(NOT serve_code EQUAL 0)
    message(FATAL_ERROR "SIGTERM'd serve exited with ${serve_code}")
  endif()
  if(NOT EXISTS ${WORK_DIR}/serve_metrics.json)
    message(FATAL_ERROR "SIGTERM'd serve did not flush --metrics-json")
  endif()
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    file(READ ${WORK_DIR}/serve_metrics.json serve_metrics_json)
    string(JSON n_counters ERROR_VARIABLE json_error
           LENGTH "${serve_metrics_json}" counters)
    if(json_error)
      message(FATAL_ERROR
              "serve_metrics.json is not valid JSON: ${json_error}")
    endif()
  endif()
endif()
