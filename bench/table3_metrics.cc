/// \file table3_metrics.cc
/// \brief Table III: normalized likelihood and Brier score, over all values
/// and over "middle values" (predictions strictly inside (0, 1)), for the
/// main experiments:
///   - the Fig. 1 MH test on synthetic betaICMs,
///   - the Fig. 5 RWR baseline on the same process,
///   - the Fig. 2-style attributed experiments (radius 1 and 2),
///   - the Fig. 8-style URL experiments (our method and Goyal, radius 4/5).
///
/// Shape to reproduce: MH clearly beats RWR; the attributed experiments
/// score near-certain on most pairs (NL ≈ 0.97–0.999 all-values in the
/// paper) and drop when certain predictions are filtered out; our URL
/// method beats Goyal's on middle values.

#include <cstdio>

#include "baselines/rwr.h"
#include "bench_util.h"
#include "core/beta_icm.h"
#include "core/mh_sampler.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "learn/attributed.h"
#include "learn/model_trainer.h"
#include "tag_flow_common.h"
#include "twitter/cascade_gen.h"
#include "twitter/interesting_users.h"
#include "twitter/retweet_parser.h"
#include "twitter/tag_gen.h"
#include "util/string_util.h"

namespace infoflow::bench {
namespace {

struct TableRow {
  std::string experiment;
  AccuracyReport all;
  AccuracyReport middle;
};

void PrintTable(const std::vector<TableRow>& rows, const BenchArgs& args) {
  std::printf("\n%-34s | %12s %12s | %12s %12s\n", "experiment", "NL(all)",
              "Brier(all)", "NL(middle)", "Brier(middle)");
  std::printf("%s\n", std::string(92, '-').c_str());
  CsvWriter csv({"experiment", "nl_all", "brier_all", "count_all",
                 "nl_middle", "brier_middle", "count_middle"});
  for (const TableRow& row : rows) {
    std::printf("%-34s | %12.6f %12.6f | %12.6f %12.6f\n",
                row.experiment.c_str(), row.all.normalized_likelihood,
                row.all.brier, row.middle.normalized_likelihood,
                row.middle.brier);
    csv.AppendRow({row.experiment, FormatDouble(row.all.normalized_likelihood, 9),
                   FormatDouble(row.all.brier, 9),
                   std::to_string(row.all.count),
                   FormatDouble(row.middle.normalized_likelihood, 9),
                   FormatDouble(row.middle.brier, 9),
                   std::to_string(row.middle.count)});
  }
  args.MaybeWriteCsv(csv, "table3_metrics.csv");
}

TableRow Score(std::string name, const std::vector<BucketPair>& pairs) {
  return TableRow{std::move(name), ComputeAccuracy(pairs),
                  ComputeMiddleAccuracy(pairs)};
}

/// Fig. 1 / Fig. 5 process at table scale: one pair per trial, estimated
/// by MH or RWR.
void SyntheticRows(const BenchArgs& args, std::vector<TableRow>* rows) {
  const std::size_t kTrials = args.quick ? 150 : 1200;
  Rng rng(args.seed);
  std::vector<BucketPair> mh_pairs, rwr_pairs;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    Rng trial_rng = rng.Split();
    auto graph = std::make_shared<const DirectedGraph>(
        UniformRandomGraph(50, 200, trial_rng));
    const BetaIcm model = BetaIcm::RandomSynthetic(graph, trial_rng);
    const PointIcm sampled = model.SampleIcm(trial_rng);
    const PseudoState test_state = sampled.SamplePseudoState(trial_rng);
    const auto u = static_cast<NodeId>(trial_rng.NextBounded(50));
    auto v = static_cast<NodeId>(trial_rng.NextBounded(49));
    if (v >= u) ++v;
    const bool outcome = FlowExists(*graph, u, v, test_state);
    MhOptions mh;
    mh.burn_in = 1200;
    mh.thinning = 5;
    auto sampler =
        MhSampler::Create(model.ExpectedIcm(), {}, mh, trial_rng.Split());
    mh_pairs.push_back(
        {sampler->EstimateFlowProbability(u, v, 400), outcome});
    rwr_pairs.push_back({RwrFlowScores(model.ExpectedIcm(), u)[v], outcome});
  }
  rows->push_back(Score("MH Test - Fig. 1", mh_pairs));
  rows->push_back(Score("RWR - Fig. 5", rwr_pairs));
}

/// Fig. 2-style attributed rows (radius 1 and 2).
void AttributedRows(const BenchArgs& args, std::vector<TableRow>* rows) {
  const NodeId kUsers = args.quick ? 120 : 250;
  const std::size_t kMessages = args.quick ? 1500 : 4000;
  Rng rng(args.seed + 1);
  auto graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(kUsers, 4, 0.25, rng));
  const UserRegistry registry = UserRegistry::Sequential(kUsers);
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.02, 0.35);
  const PointIcm truth(graph, probs);
  CascadeGenOptions gen;
  gen.num_messages = kMessages;
  auto generated = GenerateCascades(truth, registry, gen, rng);
  generated.status().CheckOK();
  const AttributedEvidence evidence =
      ParseRetweetLog(generated->log, registry).ToEvidence(*graph);
  auto model = TrainBetaIcmFromAttributed(graph, evidence);
  model.status().CheckOK();
  const PointIcm expected = model->ExpectedIcm();
  const auto interesting =
      SelectInterestingUsers(kUsers, evidence, args.quick ? 4 : 12);

  for (std::size_t radius : {std::size_t{1}, std::size_t{2}}) {
    std::vector<BucketPair> pairs;
    Rng panel_rng = rng.Split();
    for (NodeId focus : interesting) {
      const Subgraph ego = EgoSubgraph(*graph, focus, radius);
      if (ego.graph.num_nodes() < 3) continue;
      auto ego_graph = std::make_shared<const DirectedGraph>(ego.graph);
      std::vector<double> learned(ego.graph.num_edges()),
          true_probs(ego.graph.num_edges());
      for (EdgeId e = 0; e < ego.graph.num_edges(); ++e) {
        learned[e] = expected.prob(ego.edge_to_parent[e]);
        true_probs[e] = truth.prob(ego.edge_to_parent[e]);
      }
      const PointIcm ego_model(ego_graph, learned);
      const PointIcm ego_truth(ego_graph, true_probs);
      const NodeId local_focus = ego.LocalNode(focus);
      MhOptions mh;
      mh.burn_in = 2000;
      mh.thinning = 8;
      auto sampler =
          MhSampler::Create(ego_model, {}, mh, panel_rng.Split());
      for (std::size_t t = 0; t < (args.quick ? 20u : 50u); ++t) {
        const ActiveState state =
            ego_truth.SampleCascade({local_focus}, panel_rng);
        auto sink = static_cast<NodeId>(
            panel_rng.NextBounded(ego.graph.num_nodes()));
        if (sink == local_focus) continue;
        pairs.push_back(
            {sampler->EstimateFlowProbability(local_focus, sink, 500),
             state.IsNodeActive(sink)});
      }
    }
    rows->push_back(
        Score("attributed radius " + std::to_string(radius) + " - Fig. 2",
              pairs));
  }
}

/// Fig. 8-style URL rows (ours and Goyal, radius 4/5) via the shared tag
/// harness internals at table scale.
void UrlRows(const BenchArgs& args, std::vector<TableRow>* rows) {
  const NodeId kUsers = args.quick ? 100 : 200;
  Rng rng(args.seed + 2);
  auto base_graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(kUsers, 2, 0.2, rng));
  std::vector<double> probs(base_graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.45);
  const TagNetwork network =
      AugmentWithOmnipotent(PointIcm(base_graph, probs));
  TagGenOptions gen;
  gen.num_objects = args.quick ? 200 : 500;
  Rng train_rng = rng.Split();
  auto train = GenerateTagTraces(network, TagKind::kUrl, gen, train_rng);
  train.status().CheckOK();
  gen.num_objects = args.quick ? 50 : 120;
  Rng test_rng = rng.Split();
  auto test = GenerateTagTraces(network, TagKind::kUrl, gen, test_rng);
  test.status().CheckOK();

  UnattributedTrainOptions opt;
  opt.joint_bayes.num_samples = 250;
  opt.joint_bayes.burn_in = 200;
  opt.no_evidence_mean = 0.0;
  Rng fit_rng = rng.Split();
  auto ours = TrainUnattributedModel(network.graph, *train, opt, fit_rng);
  ours.status().CheckOK();
  opt.method = UnattributedMethod::kGoyal;
  auto goyal = TrainUnattributedModel(network.graph, *train, opt, fit_rng);
  goyal.status().CheckOK();

  const auto sources =
      EarlyAdopters(*train, network.omnipotent, args.quick ? 2 : 3);
  struct M {
    const char* label;
    const UnattributedModel* model;
  };
  for (const M& m : {M{"MC", &*ours}, M{"Goyal", &*goyal}}) {
    for (std::size_t radius : {std::size_t{4}, std::size_t{5}}) {
      Rng panel_rng = rng.Split();
      const TagPanelResult panel = RunTagPanel(
          network, *m.model, *test, sources, radius, 0, panel_rng);
      TableRow row;
      row.experiment = std::string(m.label) + " (radius " +
                       std::to_string(radius) + ") - Fig. 8";
      row.all = panel.all;
      row.middle = panel.middle;
      rows->push_back(std::move(row));
    }
  }
}

int Run(const BenchArgs& args) {
  Banner("Table III — normalized likelihood and Brier probability score");
  std::vector<TableRow> rows;
  SyntheticRows(args, &rows);
  AttributedRows(args, &rows);
  UrlRows(args, &rows);
  PrintTable(rows, args);
  std::printf(
      "\npaper shape: MH >> RWR on both measures; attributed rows score "
      "near-certain on all values and drop on middle values; our URL rows "
      "beat Goyal's on middle values.\n");
  // Headline ordering check: MH beats RWR on both metrics.
  const bool ok = rows[0].all.normalized_likelihood >
                      rows[1].all.normalized_likelihood &&
                  rows[0].all.brier < rows[1].all.brier;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
