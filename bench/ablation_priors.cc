/// \file ablation_priors.cc
/// \brief Ablation: the unambiguous-evidence priors in the joint-Bayes
/// learner (§V-B).
///
/// The paper's learner sets each edge's Beta prior from the *unambiguous*
/// (single-active-parent) characteristics while the Binomial likelihood
/// runs over all characteristics — i.e. unambiguous evidence is
/// deliberately up-weighted (it appears in both terms, per the §V-B text).
/// This bench removes that ingredient — uniform Beta(1,1) priors, all rows
/// in the likelihood once — and compares RMSE vs ground truth as the
/// ambiguity level rises, with the Goyal baseline for scale.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "graph/generators.h"
#include "learn/goyal.h"
#include "learn/joint_bayes.h"
#include "learn/summary.h"
#include "stats/descriptive.h"

namespace infoflow::bench {
namespace {

/// Builds evidence where each parent appears alone with probability
/// (1 - ambiguity) and together with every other parent otherwise.
SinkSummary Simulate(const DirectedGraph& graph,
                     const std::vector<double>& truth, double ambiguity,
                     std::size_t objects, Rng& rng) {
  const auto sink = static_cast<NodeId>(truth.size());
  UnattributedEvidence ev;
  for (std::size_t o = 0; o < objects; ++o) {
    ObjectTrace trace;
    double survive = 1.0;
    double time = 1.0;
    if (rng.Bernoulli(ambiguity)) {
      for (NodeId p = 0; p < sink; ++p) {
        trace.activations.push_back({p, time++});
        survive *= 1.0 - truth[p];
      }
    } else {
      const auto p = static_cast<NodeId>(rng.NextBounded(truth.size()));
      trace.activations.push_back({p, time++});
      survive = 1.0 - truth[p];
    }
    if (rng.Bernoulli(1.0 - survive)) {
      trace.activations.push_back({sink, time});
    }
    ev.traces.push_back(std::move(trace));
  }
  return BuildSinkSummary(graph, sink, ev);
}

/// Joint Bayes with uniform Beta(1,1) priors: the same posterior pieces
/// the production learner exposes (JointBayesLogPosterior keeps the prior
/// and likelihood terms separate), driven by a local component-wise MH
/// sweep. All rows stay in the likelihood exactly once.
Result<JointBayesResult> FitUniformPrior(const SinkSummary& summary,
                                         const JointBayesOptions& options,
                                         Rng& rng) {
  const std::size_t k = summary.parents.size();
  JointBayesResult result;
  result.sink = summary.sink;
  result.parents = summary.parents;
  result.parent_edges = summary.parent_edges;
  result.priors.assign(k, BetaDist::Uniform());

  std::vector<double> p(k, 0.5);
  double sd = options.proposal_sd;
  auto log_post = [&](const std::vector<double>& probs) {
    return JointBayesLogPosterior(summary, result.priors, probs);
  };
  double current = log_post(p);
  std::uint64_t proposals = 0, accepts = 0;
  auto sweep = [&]() {
    for (std::size_t j = 0; j < k; ++j) {
      const double old_p = p[j];
      double candidate = old_p + rng.Normal(0.0, sd);
      for (int i = 0; i < 64 && (candidate < 0.0 || candidate > 1.0); ++i) {
        if (candidate < 0.0) candidate = -candidate;
        if (candidate > 1.0) candidate = 2.0 - candidate;
      }
      candidate = std::clamp(candidate, 1e-12, 1.0 - 1e-12);
      p[j] = candidate;
      const double proposed = log_post(p);
      ++proposals;
      if (proposed >= current || rng.NextDouble() < std::exp(proposed -
                                                             current)) {
        current = proposed;
        ++accepts;
      } else {
        p[j] = old_p;
      }
    }
  };
  for (std::size_t it = 0; it < options.burn_in; ++it) sweep();
  std::vector<RunningStats> stats(k);
  for (std::size_t s = 0; s < options.num_samples; ++s) {
    for (std::size_t t = 0; t <= options.thinning; ++t) sweep();
    for (std::size_t j = 0; j < k; ++j) stats[j].Add(p[j]);
  }
  result.mean.resize(k);
  result.sd.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    result.mean[j] = stats[j].Mean();
    result.sd[j] = stats[j].StdDev();
  }
  result.acceptance_rate =
      proposals ? static_cast<double>(accepts) / static_cast<double>(proposals)
                : 0.0;
  return result;
}

int Run(const BenchArgs& args) {
  Banner("Ablation — informed (unambiguous) priors in joint Bayes");
  const std::vector<double> truth{0.15, 0.68, 0.83};  // the Fig. 7(b) skew
  const DirectedGraph graph = StarFragment(truth.size());
  const std::size_t kObjects = args.quick ? 400 : 1500;
  const std::size_t kReps = args.quick ? 4 : 12;

  CsvWriter csv({"ambiguity", "rmse_informed", "rmse_uniform",
                 "rmse_goyal"});
  std::printf("%10s %16s %16s %12s\n", "ambiguity", "informed prior",
              "uniform prior", "goyal");
  for (const double ambiguity : {0.2, 0.5, 0.8, 0.95}) {
    RunningStats informed, uniform, goyal;
    Rng rng(args.seed);
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      Rng rep_rng = rng.Split();
      const SinkSummary summary =
          Simulate(graph, truth, ambiguity, kObjects, rep_rng);
      JointBayesOptions opt;
      opt.num_samples = 600;
      opt.burn_in = 400;
      auto a = FitJointBayes(summary, opt, rep_rng);
      a.status().CheckOK();
      informed.Add(Rmse(a->mean, truth));
      auto b = FitUniformPrior(summary, opt, rep_rng);
      b.status().CheckOK();
      uniform.Add(Rmse(b->mean, truth));
      goyal.Add(Rmse(FitGoyal(summary).estimate, truth));
    }
    std::printf("%10.2f %16.4f %16.4f %12.4f\n", ambiguity, informed.Mean(),
                uniform.Mean(), goyal.Mean());
    csv.AppendNumericRow(
        {ambiguity, informed.Mean(), uniform.Mean(), goyal.Mean()});
  }
  std::printf(
      "\ntakeaway: with little ambiguity the two priors coincide (the "
      "likelihood dominates); as ambiguity rises the conjugate placement "
      "of unambiguous evidence adds modest stability, and both crush the "
      "credit heuristic.\n");
  args.MaybeWriteCsv(csv, "ablation_priors.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
