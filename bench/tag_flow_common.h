/// \file tag_flow_common.h
/// \brief Shared harness for the unattributed-flow figures: Fig. 8 (URLs),
/// Fig. 9 (hashtags), Fig. 10 (edge-uncertainty resampling).
///
/// Protocol (§V-D): simulate tag traces over the omnipotent-augmented
/// network; train whole-graph edge models (ours and Goyal's); pick
/// interesting early-adopter sources; on radius-r ego nets around each
/// source, estimate Pr[{source, omnipotent} ⤳ sink] with the MH sampler
/// and bucket against held-out adoption outcomes.

#pragma once

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/mh_sampler.h"
#include "eval/ascii_plot.h"
#include "eval/bucket.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "learn/model_trainer.h"
#include "twitter/tag_gen.h"

namespace infoflow::bench {

/// \brief Result of one panel (one method at one radius).
struct TagPanelResult {
  BucketReport report;
  AccuracyReport all;
  AccuracyReport middle;
};

/// \brief Configuration of a whole tag-flow figure run.
struct TagFlowConfig {
  TagKind kind = TagKind::kUrl;
  /// Radii evaluated per method (the paper uses 4 and 5 hops).
  std::vector<std::size_t> radii{4, 5};
  /// When > 0, re-estimate with this many edge-uncertainty resamples
  /// (Fig. 10: per resample, draw each edge from N(mean, sd) clamped).
  std::size_t uncertainty_resamples = 0;
};

/// Picks the most frequent *early adopters* (first non-omnipotent node of
/// a trace) as focus sources.
inline std::vector<NodeId> EarlyAdopters(const UnattributedEvidence& traces,
                                         NodeId omnipotent, std::size_t k) {
  std::vector<std::uint64_t> counts(omnipotent, 0);
  for (const ObjectTrace& trace : traces.traces) {
    double best_time = 0.0;
    NodeId best = kInvalidNode;
    for (const Activation& a : trace.activations) {
      if (a.node == omnipotent) continue;
      if (best == kInvalidNode || a.time < best_time) {
        best = a.node;
        best_time = a.time;
      }
    }
    if (best != kInvalidNode) ++counts[best];
  }
  std::vector<NodeId> order(omnipotent);
  for (NodeId v = 0; v < omnipotent; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&counts](NodeId a, NodeId b) {
    return counts[a] > counts[b];
  });
  order.resize(std::min(k, order.size()));
  return order;
}

/// Runs one method's panel at one radius and returns the bucket analysis.
inline TagPanelResult RunTagPanel(const TagNetwork& network,
                                  const UnattributedModel& model,
                                  const UnattributedEvidence& test,
                                  const std::vector<NodeId>& sources,
                                  std::size_t radius,
                                  std::size_t uncertainty_resamples,
                                  Rng& rng) {
  BucketExperiment bucket;
  for (NodeId source : sources) {
    // Ego ball in the augmented graph, following in-network edges only
    // (the omnipotent node would otherwise make everything radius 1), then
    // re-attach the omnipotent node.
    std::vector<NodeId> ball{source};
    {
      std::vector<std::uint8_t> seen(network.graph->num_nodes(), 0);
      seen[source] = 1;
      std::size_t frontier = 0;
      for (std::size_t depth = 0; depth < radius; ++depth) {
        const std::size_t end = ball.size();
        for (std::size_t i = frontier; i < end; ++i) {
          for (EdgeId e : network.graph->OutEdges(ball[i])) {
            const NodeId w = network.graph->edge(e).dst;
            if (!seen[w]) {
              seen[w] = 1;
              ball.push_back(w);
            }
          }
        }
        frontier = end;
      }
    }
    ball.push_back(network.omnipotent);
    const Subgraph ego = InducedSubgraph(*network.graph, ball);
    auto ego_graph = std::make_shared<const DirectedGraph>(ego.graph);
    const NodeId local_source = ego.LocalNode(source);
    const NodeId local_omni = ego.LocalNode(network.omnipotent);

    std::vector<NodeId> sinks;
    for (NodeId v = 0; v < ego.graph.num_nodes(); ++v) {
      if (v != local_source && v != local_omni) sinks.push_back(v);
    }
    if (sinks.empty()) continue;

    auto estimate_with = [&](const std::vector<double>& probs) {
      PointIcm ego_model(ego_graph, probs);
      MhOptions mh;
      mh.burn_in = 2000;
      mh.thinning = 8;
      auto sampler = MhSampler::Create(ego_model, {}, mh, rng.Split());
      sampler.status().CheckOK();
      return sampler->EstimateCommunityFlowMulti({local_source, local_omni},
                                                 sinks, 400);
    };

    std::vector<double> mean_probs(ego.graph.num_edges());
    for (EdgeId e = 0; e < ego.graph.num_edges(); ++e) {
      mean_probs[e] = model.mean[ego.edge_to_parent[e]];
    }
    std::vector<std::vector<double>> estimate_sets;
    if (uncertainty_resamples == 0) {
      estimate_sets.push_back(estimate_with(mean_probs));
    } else {
      // Fig. 10: resample each edge from its Gaussian approximation.
      for (std::size_t r = 0; r < uncertainty_resamples; ++r) {
        std::vector<double> noisy(ego.graph.num_edges());
        for (EdgeId e = 0; e < ego.graph.num_edges(); ++e) {
          const EdgeId pe = ego.edge_to_parent[e];
          noisy[e] =
              std::clamp(rng.Normal(model.mean[pe], model.sd[pe]), 0.0, 1.0);
        }
        estimate_sets.push_back(estimate_with(noisy));
      }
    }

    // Pair estimates with held-out adoption outcomes: objects where the
    // source adopted.
    for (const ObjectTrace& trace : test.traces) {
      if (!trace.IsActive(source)) continue;
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        const NodeId parent_sink = ego.node_to_parent[sinks[j]];
        const bool outcome = trace.IsActive(parent_sink);
        for (const auto& estimates : estimate_sets) {
          bucket.Add(estimates[j], outcome);
        }
      }
    }
  }
  TagPanelResult result;
  result.report = bucket.Analyze(30);
  result.all = ComputeAccuracy(bucket.pairs());
  result.middle = ComputeMiddleAccuracy(bucket.pairs());
  return result;
}

/// Full figure driver shared by fig8/fig9/fig10 binaries. Returns the
/// per-(method, radius) coverage table.
inline int RunTagFlowFigure(const BenchArgs& args, const TagFlowConfig& config,
                            const std::string& figure_name) {
  const NodeId kUsers = args.quick ? 120 : 250;
  const std::size_t kTrainObjects = args.quick ? 250 : 700;
  const std::size_t kTestObjects = args.quick ? 60 : 150;
  const std::size_t kSources = args.quick ? 2 : 4;

  Banner(figure_name + " — " +
         (config.kind == TagKind::kUrl ? "URL" : "hashtag") + " flows");
  std::printf("users=%u train_objects=%zu test_objects=%zu sources=%zu\n",
              kUsers, kTrainObjects, kTestObjects, kSources);

  Rng rng(args.seed);
  auto base_graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(kUsers, 2, 0.2, rng));
  std::vector<double> probs(base_graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.45);
  const PointIcm base(base_graph, probs);
  const TagNetwork network = AugmentWithOmnipotent(base);

  TagGenOptions gen;
  gen.num_objects = kTrainObjects;
  Rng train_rng = rng.Split();
  auto train = GenerateTagTraces(network, config.kind, gen, train_rng);
  train.status().CheckOK();
  gen.num_objects = kTestObjects;
  Rng test_rng = rng.Split();
  auto test = GenerateTagTraces(network, config.kind, gen, test_rng);
  test.status().CheckOK();

  // Train both methods on the same traces.
  UnattributedTrainOptions ours_opt;
  ours_opt.method = UnattributedMethod::kJointBayes;
  ours_opt.joint_bayes.num_samples = 300;
  ours_opt.joint_bayes.burn_in = 200;
  ours_opt.no_evidence_mean = 0.0;  // unseen edge: no predicted flow
  Rng ours_rng = rng.Split();
  auto ours = TrainUnattributedModel(network.graph, *train, ours_opt,
                                     ours_rng);
  ours.status().CheckOK();
  UnattributedTrainOptions goyal_opt = ours_opt;
  goyal_opt.method = UnattributedMethod::kGoyal;
  Rng goyal_rng = rng.Split();
  auto goyal = TrainUnattributedModel(network.graph, *train, goyal_opt,
                                      goyal_rng);
  goyal.status().CheckOK();

  const auto sources =
      EarlyAdopters(*train, network.omnipotent, kSources);

  int exit_code = 0;
  struct Method {
    const char* name;
    const UnattributedModel* model;
  };
  const Method methods[] = {{"our approach", &*ours},
                            {"goyal approach", &*goyal}};
  for (std::size_t radius : config.radii) {
    for (const Method& method : methods) {
      Banner(figure_name + " radius " + std::to_string(radius) + ": " +
             method.name);
      Rng panel_rng = rng.Split();
      const TagPanelResult panel =
          RunTagPanel(network, *method.model, *test, sources, radius,
                      config.uncertainty_resamples, panel_rng);
      std::printf("%s", RenderCalibration(panel.report).c_str());
      std::printf(
          "accuracy: NL(all)=%.4f Brier(all)=%.4f NL(mid)=%.4f "
          "Brier(mid)=%.4f (%llu pairs)\n",
          panel.all.normalized_likelihood, panel.all.brier,
          panel.middle.normalized_likelihood, panel.middle.brier,
          static_cast<unsigned long long>(panel.all.count));

      CsvWriter csv({"bin_lo", "bin_hi", "count", "positives",
                     "mean_estimate", "empirical_mean", "ci_lo", "ci_hi",
                     "covered"});
      for (const BucketBin& bin : panel.report.bins) {
        if (bin.count == 0) continue;
        csv.AppendNumericRow(
            {bin.lo, bin.hi, static_cast<double>(bin.count),
             static_cast<double>(bin.positives), bin.mean_estimate,
             bin.empirical_mean, bin.ci_lo, bin.ci_hi,
             bin.covered ? 1.0 : 0.0});
      }
      std::string file = figure_name;
      for (char& c : file) c = c == '.' ? '_' : static_cast<char>(std::tolower(c));
      args.MaybeWriteCsv(csv, file + "_r" + std::to_string(radius) + "_" +
                                  (method.name[0] == 'o' ? "ours" : "goyal") +
                                  ".csv");
    }
  }
  return exit_code;
}

}  // namespace infoflow::bench
