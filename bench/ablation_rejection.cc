/// \file ablation_rejection.cc
/// \brief The §I claim "naive sampling can also be expensive", quantified:
/// iid rejection sampling vs the Metropolis–Hastings chain for
/// *conditional* flow queries.
///
/// We condition on k simultaneous known flows for growing k. Rejection
/// pays 1 / Pr[C | M] marginal draws per retained sample, so its cost
/// explodes as the conditions become informative; the MH chain's cost per
/// retained sample is a constant (δ′+1 flips + one reachability test).
/// Both estimates stay unbiased (checked against exact enumeration).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/exact_flow.h"
#include "core/mh_sampler.h"
#include "core/rejection_sampler.h"
#include "graph/generators.h"
#include "stats/descriptive.h"
#include "util/timer.h"

namespace infoflow::bench {
namespace {

int Run(const BenchArgs& args) {
  Banner("Ablation — conditional queries: rejection sampling vs MH");
  const std::size_t kReps = args.quick ? 6 : 20;
  const std::size_t kSamples = 3000;

  CsvWriter csv({"num_conditions", "pr_conditions", "rejection_proposals",
                 "rejection_time_s", "mh_time_s", "rejection_err",
                 "mh_err"});
  std::printf("%6s %12s %18s %14s %10s %12s %10s\n", "k", "Pr[C]",
              "proposals/sample", "rejection s", "MH s", "rej err",
              "MH err");
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{4}}) {
    RunningStats pr_c, proposals, rej_time, mh_time, rej_err, mh_err;
    Rng rng(args.seed);
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      Rng rep_rng = rng.Split();
      auto graph = std::make_shared<const DirectedGraph>(
          UniformRandomGraph(10, 20, rep_rng));
      std::vector<double> probs(graph->num_edges());
      for (double& p : probs) p = rep_rng.Uniform(0.05, 0.4);
      PointIcm model(graph, probs);

      // Conditions: the first k odd nodes must have received flow from 0.
      FlowConditions conditions;
      for (NodeId v = 1; conditions.size() < k && v < 10; v += 2) {
        conditions.push_back({0, v, true});
      }
      auto exact =
          ExactConditionalFlowByEnumeration(model, 0, 9, conditions);
      if (!exact.ok()) continue;  // zero-probability conditions; skip rep
      pr_c.Add(ExactConditionsProbability(model, conditions));

      WallTimer timer;
      Rng rej_rng = rep_rng.Split();
      const RejectionEstimate rejection = RejectionSampleFlow(
          model, 0, 9, conditions, kSamples, 200'000'000, rej_rng);
      rej_time.Add(timer.Seconds());
      proposals.Add(static_cast<double>(rejection.proposed) /
                    static_cast<double>(rejection.accepted));
      rej_err.Add(std::fabs(rejection.probability - *exact));

      timer.Restart();
      MhOptions opt;
      opt.burn_in = 1000;
      opt.thinning = 5;
      auto sampler =
          MhSampler::Create(model, conditions, opt, rep_rng.Split());
      sampler.status().CheckOK();
      const double mh_estimate =
          sampler->EstimateFlowProbability(0, 9, kSamples);
      mh_time.Add(timer.Seconds());
      mh_err.Add(std::fabs(mh_estimate - *exact));
    }
    std::printf("%6zu %12.6f %18.1f %14.4f %10.4f %12.4f %10.4f\n", k,
                pr_c.Mean(), proposals.Mean(), rej_time.Mean(),
                mh_time.Mean(), rej_err.Mean(), mh_err.Mean());
    csv.AppendNumericRow({static_cast<double>(k), pr_c.Mean(),
                          proposals.Mean(), rej_time.Mean(), mh_time.Mean(),
                          rej_err.Mean(), mh_err.Mean()});
  }
  std::printf(
      "\ntakeaway: rejection needs ~1/Pr[C] marginal draws per retained "
      "sample and its wall time blows up with informative conditions; the "
      "MH chain's cost stays flat — the reason §III exists.\n");
  args.MaybeWriteCsv(csv, "ablation_rejection.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
