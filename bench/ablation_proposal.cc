/// \file ablation_proposal.cc
/// \brief Ablation: the §III-C probability-weighted proposal vs a uniform
/// edge-flip proposal.
///
/// Both chains target the same stationary distribution; the design
/// question is mixing. The weighted proposal spends its flips where the
/// state distribution has mass (and its acceptance collapses to Z/Z' ≈ 1),
/// while the uniform proposal wastes flips on near-deterministic edges and
/// rejects heavily. We measure, at equal *sample* budgets across several
/// edge-probability regimes, the RMSE of flow estimates against exact
/// enumeration, plus acceptance rates.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/exact_flow.h"
#include "core/mh_sampler.h"
#include "graph/generators.h"
#include "stats/descriptive.h"
#include "util/string_util.h"

namespace infoflow::bench {
namespace {

struct Regime {
  const char* name;
  double lo;
  double hi;
};

int Run(const BenchArgs& args) {
  Banner("Ablation — weighted (paper) vs uniform MH proposal");
  const Regime regimes[] = {
      {"moderate p ~ U(0.2,0.8)", 0.2, 0.8},
      {"sparse   p ~ U(0.01,0.15)", 0.01, 0.15},
      {"extreme  p ~ U(0.001,0.999) mixed", 0.001, 0.999},
  };
  const std::size_t kReps = args.quick ? 10 : 40;
  const std::size_t kSamples = 4000;

  CsvWriter csv({"regime", "proposal", "rmse", "accept_rate"});
  std::printf("%-34s %-10s %10s %12s\n", "regime", "proposal", "RMSE",
              "accept");
  for (const Regime& regime : regimes) {
    for (const bool uniform : {false, true}) {
      RunningStats err;
      RunningStats accept;
      Rng rng(args.seed);
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        Rng rep_rng = rng.Split();
        auto graph = std::make_shared<const DirectedGraph>(
            UniformRandomGraph(8, 16, rep_rng));
        std::vector<double> probs(graph->num_edges());
        for (double& p : probs) p = rep_rng.Uniform(regime.lo, regime.hi);
        PointIcm model(graph, probs);
        const double exact = ExactFlowByEnumeration(model, 0, 7);
        MhOptions opt;
        opt.burn_in = 800;
        opt.thinning = 4;
        opt.uniform_proposal = uniform;
        auto sampler = MhSampler::Create(model, {}, opt, rep_rng.Split());
        sampler.status().CheckOK();
        const double estimate =
            sampler->EstimateFlowProbability(0, 7, kSamples);
        err.Add((estimate - exact) * (estimate - exact));
        accept.Add(static_cast<double>(sampler->steps_accepted()) /
                   static_cast<double>(sampler->steps_taken()));
      }
      const double rmse = std::sqrt(err.Mean());
      std::printf("%-34s %-10s %10.5f %12.3f\n", regime.name,
                  uniform ? "uniform" : "weighted", rmse, accept.Mean());
      csv.AppendRow({regime.name, uniform ? "uniform" : "weighted",
                     FormatDouble(rmse, 9), FormatDouble(accept.Mean(), 9)});
    }
  }
  std::printf(
      "\ntakeaway: both proposals are unbiased, but the weighted proposal "
      "keeps acceptance near 1 and mixes fastest exactly where edge "
      "probabilities are extreme — the regime real trained models live "
      "in.\n");
  args.MaybeWriteCsv(csv, "ablation_proposal.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
