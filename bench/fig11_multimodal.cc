/// \file fig11_multimodal.cc
/// \brief Figure 11 + Table II (Appendix): EM finds only local maxima /
/// points on the likelihood ridge; the joint-Bayes MCMC posterior shows
/// the full spread.
///
/// Evidence (Table II): sink k with parents A, B, C;
///   {A,B}:   count 100, leaks 50
///   {B,C}:   count 100, leaks 50
///   {A,B,C}: count 100, leaks 75
/// Saito et al.'s EM is restarted 1000 times, fixed at 200 iterations (the
/// paper's protocol); our joint Bayes runs one chain and keeps 1000
/// samples. The scatter of (B vs A) and (B vs C) shows EM's point cloud
/// hugging the ridge while the posterior spreads over it.

#include <cstdio>

#include "bench_util.h"
#include "eval/ascii_plot.h"
#include "graph/generators.h"
#include "learn/joint_bayes.h"
#include "learn/saito_em.h"
#include "stats/descriptive.h"
#include "util/string_util.h"

namespace infoflow::bench {
namespace {

int Run(const BenchArgs& args) {
  Banner("Fig. 11 / Table II — EM local maxima vs joint-Bayes posterior");
  const DirectedGraph graph = StarFragment(3);
  SinkSummary summary;
  summary.sink = 3;
  for (EdgeId e : graph.InEdges(3)) {
    summary.parents.push_back(graph.edge(e).src);
    summary.parent_edges.push_back(e);
  }
  auto row = [&summary](std::vector<std::uint8_t> mask, std::uint64_t count,
                        std::uint64_t leaks) {
    SummaryRow r;
    r.mask = std::move(mask);
    r.count = count;
    r.leaks = leaks;
    summary.rows.push_back(std::move(r));
  };
  row({1, 1, 0}, 100, 50);
  row({0, 1, 1}, 100, 50);
  row({1, 1, 1}, 100, 75);
  std::printf("Table II evidence:\n%s\n", summary.ToString().c_str());

  const std::size_t kRestarts = args.quick ? 200 : 1000;
  const std::size_t kSamples = args.quick ? 200 : 1000;

  Rng rng(args.seed);
  SaitoEmOptions em;
  em.max_iterations = 200;  // the paper's "Fixing Saito at 200 iterations"
  em.tolerance = 0.0;
  const auto em_runs = FitSaitoEmRestarts(summary, em, kRestarts, rng);

  JointBayesOptions jb;
  jb.num_samples = kSamples;
  jb.burn_in = 1000;
  jb.thinning = 4;
  jb.keep_samples = true;
  auto bayes = FitJointBayes(summary, jb, rng);
  bayes.status().CheckOK();

  // Scatter: x = A (resp. C), y = B — the paper's two panels per method.
  Series em_ab{"EM restarts", 'e', {}, {}}, mc_ab{"MCMC samples", 'm', {}, {}};
  Series em_cb = em_ab, mc_cb = mc_ab;
  RunningStats em_a, em_b, mc_a, mc_b;
  for (const SaitoEmResult& run : em_runs) {
    em_ab.x.push_back(run.estimate[0]);
    em_ab.y.push_back(run.estimate[1]);
    em_cb.x.push_back(run.estimate[2]);
    em_cb.y.push_back(run.estimate[1]);
    em_a.Add(run.estimate[0]);
    em_b.Add(run.estimate[1]);
  }
  for (const auto& sample : bayes->samples) {
    mc_ab.x.push_back(sample[0]);
    mc_ab.y.push_back(sample[1]);
    mc_cb.x.push_back(sample[2]);
    mc_cb.y.push_back(sample[1]);
    mc_a.Add(sample[0]);
    mc_b.Add(sample[1]);
  }
  std::printf("(a) Saito et al. EM, %zu restarts @200 iterations — B (y) vs "
              "A (x) and B vs C:\n",
              kRestarts);
  std::printf("%s", RenderSeries({em_ab}, 50, 14).c_str());
  std::printf("%s", RenderSeries({em_cb}, 50, 14).c_str());
  std::printf("(b) our joint Bayes MCMC, %zu samples — B vs A and B vs C:\n",
              kSamples);
  std::printf("%s", RenderSeries({mc_ab}, 50, 14).c_str());
  std::printf("%s", RenderSeries({mc_cb}, 50, 14).c_str());

  std::printf("\nspread comparison (std dev): EM A=%.4f B=%.4f | "
              "MCMC A=%.4f B=%.4f\n",
              em_a.StdDev(), em_b.StdDev(), mc_a.StdDev(), mc_b.StdDev());
  std::printf("EM points are single modes/ridge points per restart; the "
              "posterior exposes the full ridge (A anti-correlated with B: "
              "corr=%.3f).\n",
              bayes->SampleCorrelation(0, 1));

  CsvWriter csv({"method", "A", "B", "C"});
  for (const SaitoEmResult& run : em_runs) {
    csv.AppendRow({"em", FormatDouble(run.estimate[0], 9),
                   FormatDouble(run.estimate[1], 9),
                   FormatDouble(run.estimate[2], 9)});
  }
  for (const auto& sample : bayes->samples) {
    csv.AppendRow({"mcmc", FormatDouble(sample[0], 9),
                   FormatDouble(sample[1], 9), FormatDouble(sample[2], 9)});
  }
  args.MaybeWriteCsv(csv, "fig11_multimodal.csv");

  // Shape check: the posterior must show materially more spread than EM.
  return mc_b.StdDev() > 2.0 * em_b.StdDev() ? 0 : 1;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
