/// \file bench_util.h
/// \brief Shared plumbing for the figure-reproduction harnesses.
///
/// Every bench binary accepts:
///   --csv <dir>   dump the figure's underlying series as CSV files
///   --quick       reduced trial counts (used by CI smoke runs)
///   --seed <n>    master seed (default 20120401 — ICDE 2012)
///
/// Binaries print the same rows/series the paper reports plus a compact
/// ASCII rendering of the figure.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/csv.h"
#include "util/timer.h"

namespace infoflow::bench {

/// Runs `body()` `reps` times and returns the mean wall-clock seconds per
/// repetition. The shared home for the "Restart / loop / divide" pattern
/// the timing figures repeat.
template <typename Body>
double TimeReps(int reps, Body&& body) {
  WallTimer timer;
  for (int r = 0; r < reps; ++r) body();
  return timer.TotalSeconds() / reps;
}

/// Runs `body()` `reps` times and returns the *fastest* wall-clock seconds
/// of any single repetition. Use for ratio measurements (A vs B on the same
/// work), where the minimum is the stable estimator under scheduler noise.
template <typename Body>
double TimeBest(int reps, Body&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    body();
    const double s = timer.Seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

/// Parsed command line for a bench binary.
struct BenchArgs {
  std::string csv_dir;  // empty: no CSV output
  bool quick = false;
  std::uint64_t seed = 20120401;

  /// True when --csv was given.
  bool WantCsv() const { return !csv_dir.empty(); }

  /// Writes `writer` to "<csv_dir>/<name>" when --csv was given.
  void MaybeWriteCsv(const CsvWriter& writer, const std::string& name) const {
    if (!WantCsv()) return;
    const std::string path = csv_dir + "/" + name;
    const Status status = writer.WriteFile(path);
    if (!status.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n",
                   status.ToString().c_str());
    } else {
      std::printf("wrote %s\n", path.c_str());
    }
  }
};

/// Parses the common flags; exits with usage on errors.
inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      args.quick = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      args.csv_dir = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--csv <dir>] [--seed <n>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// Prints a section banner.
inline void Banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace infoflow::bench
