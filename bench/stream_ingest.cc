/// \file stream_ingest.cc
/// \brief Streaming-ingest benchmark: wire-line parse rate, OnlineTrainer
/// absorb rate, end-to-end StreamIngestor throughput, and epoch
/// publish/bank-rebuild latency, on the fig6-style random graph.
///
/// The streaming subsystem's budget question is "how many evidence records
/// per second can a live daemon absorb while serving queries?". The
/// stages are measured separately so a regression is attributable: parsing
/// (ParseEvidenceLine), counting (AbsorbAttributed / AbsorbTrace), the
/// synchronous serve-verb path (IngestLine = parse + absorb + epoch
/// cadence), the epoch fit+swap (PublishNow), and the drift-triggered
/// SampleBank::Rebuild a published epoch can fan out into.
///
/// Emits BENCH_stream.json (in --csv <dir> when given, else the working
/// directory); `ingest_records_per_s` is the headline number.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "graph/generators.h"
#include "serve/sample_bank.h"
#include "stream/evidence_stream.h"
#include "stream/ingestor.h"
#include "stream/online_trainer.h"
#include "util/json.h"

namespace infoflow::bench {
namespace {

using stream::EvidenceRecord;
using stream::IngestorOptions;
using stream::OnlineTrainer;
using stream::OnlineTrainerOptions;
using stream::StreamFormat;
using stream::StreamIngestor;

/// One attributed object rendered in the native wire grammar
/// ("sources|nodes|edges").
std::string AttributedLine(const DirectedGraph& graph,
                           const AttributedObject& object) {
  std::string out;
  for (std::size_t i = 0; i < object.sources.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(object.sources[i]);
  }
  out += '|';
  for (std::size_t i = 0; i < object.active_nodes.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(object.active_nodes[i]);
  }
  out += '|';
  for (std::size_t i = 0; i < object.active_edges.size(); ++i) {
    if (i) out += ' ';
    const Edge& edge = graph.edge(object.active_edges[i]);
    out += std::to_string(edge.src);
    out += '>';
    out += std::to_string(edge.dst);
  }
  return out;
}

int Run(const BenchArgs& args) {
  Banner("Stream ingest — parse / absorb / end-to-end / epoch swap");
  Rng rng(args.seed);
  const NodeId nodes = args.quick ? 1000 : 6000;
  const EdgeId edges = args.quick ? 2500 : 14000;
  const std::size_t records = args.quick ? 2000 : 10000;
  auto graph = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.3);
  const PointIcm truth(graph, probs);

  // Simulated cascades, each rendered once as a wire line.
  std::vector<AttributedObject> objects(records);
  std::vector<std::string> lines(records);
  double total_active_nodes = 0.0;
  for (std::size_t r = 0; r < records; ++r) {
    const NodeId src = static_cast<NodeId>(rng.NextBounded(nodes));
    const ActiveState s = truth.SampleCascade({src}, rng);
    objects[r].sources = s.sources;
    objects[r].active_nodes = s.active_nodes;
    for (EdgeId e = 0; e < s.edge_active.size(); ++e) {
      if (s.edge_active[e]) objects[r].active_edges.push_back(e);
    }
    lines[r] = AttributedLine(*graph, objects[r]);
    total_active_nodes += static_cast<double>(s.active_nodes.size());
  }

  WallTimer timer;

  // Stage 1: parse only.
  std::size_t parsed = 0;
  timer.Restart();
  for (const std::string& line : lines) {
    auto record = stream::ParseEvidenceLine(line, *graph, StreamFormat::kAuto);
    if (record.ok()) ++parsed;
  }
  const double parse_s = timer.Seconds();
  const double parse_rate = static_cast<double>(parsed) / parse_s;

  // Stage 2: absorb only (pre-parsed records, no forgetting).
  OnlineTrainer plain(graph, OnlineTrainerOptions{});
  timer.Restart();
  for (const AttributedObject& object : objects) {
    plain.AbsorbAttributed(object).CheckOK();
  }
  const double absorb_s = timer.Seconds();
  const double absorb_rate = static_cast<double>(records) / absorb_s;

  // Stage 2b: absorb with the forgetting machinery engaged (decay scaling
  // plus window eviction) — the cost of non-stationarity support.
  OnlineTrainerOptions forgetting;
  forgetting.decay = 0.999;
  forgetting.window = records / 2;
  OnlineTrainer aged(graph, forgetting);
  timer.Restart();
  for (const AttributedObject& object : objects) {
    aged.AbsorbAttributed(object).CheckOK();
  }
  const double aged_rate = static_cast<double>(records) / timer.Seconds();

  // Stage 3: the serve-verb path end to end (parse + absorb + cadence).
  IngestorOptions ingest_options;
  ingest_options.epoch_every = 256;
  ingest_options.seed = args.seed;
  StreamIngestor ingestor(graph, PointIcm::Constant(graph, 0.5),
                          ingest_options);
  timer.Restart();
  for (const std::string& line : lines) {
    ingestor.IngestLine(line).status().CheckOK();
  }
  const double ingest_s = timer.Seconds();
  const double ingest_rate = static_cast<double>(records) / ingest_s;
  const double epochs = static_cast<double>(ingestor.CurrentEpoch()->id);

  // Stage 4: epoch publish latency (fit + pointer swap) on the full state.
  const int publish_reps = args.quick ? 10 : 25;
  const double publish_ms =
      1000.0 * TimeReps(publish_reps, [&ingestor] {
        ingestor.PublishNow().status().CheckOK();
      });

  // Stage 5: the rebuild a drift-crossing epoch triggers — fresh chains,
  // burn-in, one generation fill (serve-tuning chains, small bank).
  serve::BankOptions bank_options;
  bank_options.num_states = args.quick ? 128 : 512;
  bank_options.chain.num_chains = 4;
  bank_options.chain.mh.burn_in = 4 * graph->num_edges();
  bank_options.chain.mh.thinning =
      std::max<std::size_t>(8, graph->num_edges() / 8);
  auto bank = serve::SampleBank::Create(truth, bank_options, args.seed);
  bank.status().CheckOK();
  timer.Restart();
  bank->Rebuild(ingestor.CurrentEpoch()->model, ingestor.CurrentEpoch()->id)
      .CheckOK();
  const double rebuild_s = timer.Seconds();

  std::printf("records: %zu  (mean active nodes/record %.1f)\n", records,
              total_active_nodes / static_cast<double>(records));
  std::printf("%-26s %12.0f records/s\n", "parse only", parse_rate);
  std::printf("%-26s %12.0f records/s\n", "absorb only", absorb_rate);
  std::printf("%-26s %12.0f records/s\n", "absorb w/ decay+window",
              aged_rate);
  std::printf("%-26s %12.0f records/s  (%.0f epochs published)\n",
              "IngestLine end-to-end", ingest_rate, epochs);
  std::printf("%-26s %12.3f ms/publish\n", "epoch fit+swap", publish_ms);
  std::printf("%-26s %12.3f s\n", "bank rebuild", rebuild_s);

  CsvWriter csv({"parse_records_per_s", "absorb_records_per_s",
                 "absorb_forgetting_records_per_s", "ingest_records_per_s",
                 "epoch_publish_ms", "bank_rebuild_s"});
  csv.AppendNumericRow({parse_rate, absorb_rate, aged_rate, ingest_rate,
                        publish_ms, rebuild_s});

  JsonValue::Object doc;
  doc["bench"] = "stream_ingest";
  doc["graph"] = JsonValue(JsonValue::Object{
      {"nodes", static_cast<double>(nodes)},
      {"edges", static_cast<double>(graph->num_edges())}});
  doc["records"] = static_cast<double>(records);
  doc["parse_records_per_s"] = parse_rate;
  doc["absorb_records_per_s"] = absorb_rate;
  doc["absorb_forgetting_records_per_s"] = aged_rate;
  doc["ingest_records_per_s"] = ingest_rate;
  doc["epochs_published"] = epochs;
  doc["epoch_publish_ms"] = publish_ms;
  doc["bank_rebuild_s"] = rebuild_s;
  doc["bank_states"] = static_cast<double>(bank_options.num_states);
  doc["quick"] = args.quick;
  doc["seed"] = static_cast<double>(args.seed);
  const std::string json = JsonValue(std::move(doc)).Dump();
  const std::string path = args.WantCsv()
                               ? args.csv_dir + "/BENCH_stream.json"
                               : "BENCH_stream.json";
  if (std::FILE* out = std::fopen(path.c_str(), "w")) {
    std::fputs(json.c_str(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("shape: ingest is parse-dominated; the epoch swap is a fit "
              "plus a pointer exchange, and the (async) bank rebuild is "
              "burn-in-dominated — which is why it runs off the serve "
              "thread.\n");
  args.MaybeWriteCsv(csv, "stream_ingest.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
