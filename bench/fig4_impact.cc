/// \file fig4_impact.cc
/// \brief Figure 4: predicted vs actual impact — the distribution of the
/// number of users who retweet a message (§IV-D).
///
/// Train a betaICM on one half of a user's cascades, simulate the
/// betaICM's impact distribution for that user, and compare against the
/// actual retweet counts in the held-out half. The paper reports a similar
/// *range* with an over-estimated mean (their crawl truncated cascades; our
/// simulator lets us verify the range claim cleanly).

#include <cstdio>

#include "bench_util.h"
#include "core/impact.h"
#include "graph/generators.h"
#include "learn/attributed.h"
#include "twitter/interesting_users.h"

namespace infoflow::bench {
namespace {

int Run(const BenchArgs& args) {
  const NodeId kUsers = args.quick ? 120 : 300;
  const std::size_t kMessages = args.quick ? 3000 : 10000;

  Banner("Fig. 4 — predicted vs actual impact (retweet counts)");
  Rng rng(args.seed);
  auto graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(kUsers, 4, 0.25, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.02, 0.4);
  const PointIcm truth(graph, probs);

  // Simulate cascades; split into train/test halves.
  std::vector<double> author_weight(kUsers);
  for (NodeId v = 0; v < kUsers; ++v) {
    author_weight[v] = static_cast<double>(graph->OutDegree(v)) + 1.0;
  }
  AttributedEvidence train, test;
  Rng gen_rng = rng.Split();
  for (std::size_t m = 0; m < kMessages; ++m) {
    const auto author =
        static_cast<NodeId>(gen_rng.Categorical(author_weight));
    const ActiveState s = truth.SampleCascade({author}, gen_rng);
    AttributedObject obj;
    obj.sources = s.sources;
    obj.active_nodes = s.active_nodes;
    for (EdgeId e = 0; e < graph->num_edges(); ++e) {
      if (s.edge_active[e]) obj.active_edges.push_back(e);
    }
    (m % 2 == 0 ? train : test).objects.push_back(std::move(obj));
  }
  auto model = TrainBetaIcmFromAttributed(graph, train);
  model.status().CheckOK();

  // A user with many held-out tweets.
  const auto interesting = SelectInterestingUsers(kUsers, test, 1);
  const NodeId focus = interesting.empty() ? 0 : interesting[0];

  // Actual: held-out retweet counts of the focus.
  ImpactDistribution actual;
  for (const AttributedObject& obj : test.objects) {
    if (obj.sources.size() == 1 && obj.sources[0] == focus) {
      actual.Record(
          static_cast<std::uint32_t>(obj.active_nodes.size() - 1));
    }
  }
  // Predicted: cascades from the trained betaICM (parameter uncertainty
  // included — a fresh ICM per cascade, §III-E style).
  Rng sim_rng = rng.Split();
  const std::size_t kSimulated = args.quick ? 2000 : 10000;
  const ImpactDistribution predicted =
      SimulateImpact(*model, focus, kSimulated, sim_rng);

  std::printf("focus user %u: %llu held-out tweets\n", focus,
              static_cast<unsigned long long>(actual.Total()));
  const std::size_t width =
      std::max(predicted.counts.size(), actual.counts.size());
  std::printf("%-10s %-22s %-22s\n", "#retweets", "predicted freq",
              "actual freq");
  CsvWriter csv({"retweets", "predicted_freq", "actual_freq"});
  for (std::size_t k = 0; k < width && k <= 24; ++k) {
    const double p =
        k < predicted.counts.size()
            ? static_cast<double>(predicted.counts[k]) /
                  static_cast<double>(predicted.Total())
            : 0.0;
    const double a = k < actual.counts.size() && actual.Total() > 0
                         ? static_cast<double>(actual.counts[k]) /
                               static_cast<double>(actual.Total())
                         : 0.0;
    std::string pb(static_cast<std::size_t>(p * 40), '#');
    std::string ab(static_cast<std::size_t>(a * 40), '*');
    std::printf("%-10zu %-22s %-22s (%.3f vs %.3f)\n", k, pb.c_str(),
                ab.c_str(), p, a);
    csv.AppendNumericRow({static_cast<double>(k), p, a});
  }
  std::printf("mean impact: predicted %.3f vs actual %.3f\n",
              predicted.Mean(), actual.Mean());
  std::printf("paper shape: similar range of impact; the paper's model "
              "over-estimated the mean against its truncated crawl.\n");
  args.MaybeWriteCsv(csv, "fig4_impact.csv");

  // Ranges should overlap substantially.
  const double ratio =
      actual.Mean() > 0 ? predicted.Mean() / actual.Mean() : 1.0;
  return (ratio > 0.5 && ratio < 2.0) ? 0 : 1;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
