/// \file fig10_uncertainty_smoothing.cc
/// \brief Figure 10: repeating the URL bucket experiment 30 times while
/// sampling edge probabilities from the Gaussian (mean, sd) approximation
/// of the joint posterior (§V-D). Taking edge uncertainty into account
/// smooths the flow probabilities; each bucket receives fewer independent
/// points, widening the empirical intervals.

#include "tag_flow_common.h"

int main(int argc, char** argv) {
  auto args = infoflow::bench::ParseArgs(argc, argv);
  infoflow::bench::TagFlowConfig config;
  config.kind = infoflow::TagKind::kUrl;
  config.radii = {4};
  config.uncertainty_resamples = args.quick ? 10 : 30;
  return infoflow::bench::RunTagFlowFigure(args, config, "Fig.10");
}
