/// \file query_throughput.cc
/// \brief Raw reachability-replay throughput: scalar one-BFS-per-row vs
/// bit-parallel 64-rows-per-pass, across graph sizes.
///
/// This is the microbench under the serving numbers: it strips away
/// sampling, conditioning and batching and times only the Eq. 5 inner loop
/// — "given R retained pseudo-states, how fast can the indicator
/// I(source ⤳ sink, x) be evaluated for all of them?". Rows are synthetic
/// Bernoulli edge draws (density 0.5), packed row-major for the scalar
/// path and transposed into the edge-major plane (bit_transpose.h) for
/// the batch path, exactly as serve/SampleBank stores a generation.
///
/// Emits BENCH_query.json (in --csv <dir> when given, else the working
/// directory) with one record per graph size: rows/s through each path,
/// the `reach_speedup` ratio, and the transpose cost of building the
/// plane. The checked-in copy at the repo root is the baseline the docs
/// quote.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "graph/batch_reachability.h"
#include "graph/bit_transpose.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "stats/rng.h"
#include "util/json.h"

namespace infoflow::bench {
namespace {

struct SizePoint {
  NodeId nodes;
  EdgeId edges;
};

/// Row-major packed random rows plus their edge-major transpose — the two
/// layouts a SampleBank generation holds.
struct RowSet {
  std::size_t num_rows = 0;
  std::size_t words_per_row = 0;
  std::vector<std::uint64_t> rows;        // row-major, bit e = edge e
  std::vector<std::uint64_t> edge_major;  // per block: word per edge
  double transpose_s = 0.0;

  const std::uint64_t* Row(std::size_t r) const {
    return rows.data() + r * words_per_row;
  }
  std::size_t num_blocks() const { return (num_rows + 63) / 64; }
};

RowSet MakeRows(const DirectedGraph& graph, std::size_t num_rows,
                double density, Rng& rng) {
  RowSet set;
  set.num_rows = num_rows;
  set.words_per_row = PackedRowWords(graph.num_edges());
  set.rows.assign(num_rows * set.words_per_row, 0);
  for (std::size_t r = 0; r < num_rows; ++r) {
    std::uint64_t* row = set.rows.data() + r * set.words_per_row;
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (rng.Bernoulli(density)) row[e >> 6] |= std::uint64_t{1} << (e & 63);
    }
  }
  // The same cache-blocked 64×64 transpose SampleBank::Fill runs.
  WallTimer timer;
  set.edge_major.assign(set.num_blocks() * graph.num_edges(), 0);
  std::uint64_t tile[64];
  for (std::size_t b = 0; b < set.num_blocks(); ++b) {
    const std::size_t row0 = b * 64;
    const std::size_t rows =
        std::min<std::size_t>(64, num_rows - row0);
    std::uint64_t* plane = set.edge_major.data() + b * graph.num_edges();
    for (std::size_t w = 0; w < set.words_per_row; ++w) {
      for (std::size_t i = 0; i < rows; ++i) tile[i] = set.Row(row0 + i)[w];
      for (std::size_t i = rows; i < 64; ++i) tile[i] = 0;
      Transpose64x64(tile);
      const std::size_t e0 = w * 64;
      const std::size_t cols =
          std::min<std::size_t>(64, graph.num_edges() - e0);
      for (std::size_t j = 0; j < cols; ++j) plane[e0 + j] = tile[j];
    }
  }
  set.transpose_s = timer.Seconds();
  return set;
}

int Run(const BenchArgs& args) {
  Banner("Query throughput — scalar vs bit-parallel reachability replay");
  Rng rng(args.seed);
  const std::vector<SizePoint> sizes =
      args.quick ? std::vector<SizePoint>{{500, 1250}, {2000, 5000}}
                 : std::vector<SizePoint>{
                       {1000, 2500}, {4000, 10000}, {16000, 40000}};
  const std::size_t num_rows = args.quick ? 1024 : 4096;
  // Matches the serve model's mean activation probability (probs are
  // uniform on [0.05, 0.95] there), keeping the replay supercritical.
  const double density = 0.5;
  const int reps = args.quick ? 2 : 3;

  CsvWriter csv({"nodes", "edges", "rows", "scalar_rows_per_s",
                 "batch_rows_per_s", "reach_speedup", "transpose_ms"});
  JsonValue::Array records;
  std::printf("%7s %7s %6s | %16s %16s %9s | %12s\n", "nodes", "edges",
              "rows", "scalar rows/s", "batch rows/s", "speedup",
              "transpose ms");
  for (const SizePoint& size : sizes) {
    const DirectedGraph graph =
        UniformRandomGraph(size.nodes, size.edges, rng);
    const RowSet set = MakeRows(graph, num_rows, density, rng);
    // A panel of (source, sink) pairs, as the serve engine sees: a single
    // fixed pair can land on a degenerate node (isolated source, adjacent
    // sink) and measure nothing but the early exit.
    constexpr std::size_t kPairs = 16;
    std::vector<NodeId> panel_src(kPairs), panel_sink(kPairs);
    for (std::size_t q = 0; q < kPairs; ++q) {
      panel_src[q] = static_cast<NodeId>(
          rng.UniformInt(0, static_cast<std::int64_t>(size.nodes) - 1));
      do {
        panel_sink[q] = static_cast<NodeId>(
            rng.UniformInt(0, static_cast<std::int64_t>(size.nodes) - 1));
      } while (panel_sink[q] == panel_src[q]);
    }

    // Both paths count per-row hits; the totals must agree exactly.
    ReachabilityWorkspace scalar(graph);
    std::size_t scalar_hits = 0;
    std::vector<NodeId> sources(1);
    const double scalar_s = TimeBest(reps, [&] {
      scalar_hits = 0;
      for (std::size_t q = 0; q < kPairs; ++q) {
        sources[0] = panel_src[q];
        for (std::size_t r = 0; r < set.num_rows; ++r) {
          if (scalar.RunUntilPacked(graph, sources, set.Row(r),
                                    panel_sink[q])) {
            ++scalar_hits;
          }
        }
      }
    });

    BatchReachabilityWorkspace batch(graph);
    std::size_t batch_hits = 0;
    const double batch_s = TimeBest(reps, [&] {
      batch_hits = 0;
      for (std::size_t q = 0; q < kPairs; ++q) {
        sources[0] = panel_src[q];
        for (std::size_t b = 0; b < set.num_blocks(); ++b) {
          const std::size_t rows =
              std::min<std::size_t>(64, set.num_rows - b * 64);
          const std::uint64_t lane_mask =
              rows >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << rows) - 1;
          const std::uint64_t hits = batch.RunUntil(
              graph, sources, set.edge_major.data() + b * graph.num_edges(),
              panel_sink[q], lane_mask);
          batch_hits += static_cast<std::size_t>(std::popcount(hits));
        }
      }
    });
    if (scalar_hits != batch_hits) {
      std::fprintf(stderr, "hit-count divergence: scalar %zu batch %zu\n",
                   scalar_hits, batch_hits);
      return 1;
    }

    const double replayed = static_cast<double>(set.num_rows * kPairs);
    const double scalar_rows_per_s = replayed / scalar_s;
    const double batch_rows_per_s = replayed / batch_s;
    const double reach_speedup = scalar_s / batch_s;
    const double transpose_ms = set.transpose_s * 1e3;
    std::printf("%7u %7u %6zu | %16.0f %16.0f %8.1fx | %12.2f\n", size.nodes,
                size.edges, set.num_rows, scalar_rows_per_s,
                batch_rows_per_s, reach_speedup, transpose_ms);
    csv.AppendNumericRow({static_cast<double>(size.nodes),
                          static_cast<double>(size.edges),
                          static_cast<double>(set.num_rows),
                          scalar_rows_per_s, batch_rows_per_s, reach_speedup,
                          transpose_ms});

    JsonValue::Object record;
    record["nodes"] = static_cast<double>(size.nodes);
    record["edges"] = static_cast<double>(size.edges);
    record["rows"] = static_cast<double>(set.num_rows);
    record["hit_fraction"] =
        static_cast<double>(scalar_hits) / replayed;
    record["scalar_rows_per_s"] = scalar_rows_per_s;
    record["batch_rows_per_s"] = batch_rows_per_s;
    record["reach_speedup"] = reach_speedup;
    record["transpose_ms"] = transpose_ms;
    records.push_back(JsonValue(std::move(record)));
  }

  JsonValue::Object doc;
  doc["bench"] = "query_throughput";
  doc["rows"] = static_cast<double>(num_rows);
  doc["edge_density"] = density;
  doc["quick"] = args.quick;
  doc["seed"] = static_cast<double>(args.seed);
  doc["results"] = JsonValue(std::move(records));
  const std::string json = JsonValue(std::move(doc)).Dump();
  const std::string path = args.WantCsv() ? args.csv_dir + "/BENCH_query.json"
                                          : "BENCH_query.json";
  if (std::FILE* out = std::fopen(path.c_str(), "w")) {
    std::fputs(json.c_str(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("shape: one bit-parallel pass answers 64 rows, so the win "
              "approaches 64x minus frontier bookkeeping; early exit keeps "
              "both paths sublinear when the sink is close to the source.\n");
  args.MaybeWriteCsv(csv, "query_throughput.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
