/// \file query_throughput.cc
/// \brief Raw reachability-replay throughput: scalar one-BFS-per-row vs
/// bit-parallel replay at 64/256/512 lanes, across graph sizes.
///
/// This is the microbench under the serving numbers: it strips away
/// sampling, conditioning and batching and times only the Eq. 5 inner loop
/// — "given R retained pseudo-states, how fast can the indicator
/// I(source ⤳ sink, x) be evaluated for all of them?". Rows are synthetic
/// Bernoulli edge draws (density 0.5), packed row-major for the scalar
/// path, transposed into the edge-major plane (bit_transpose.h) for the
/// 64-lane path, and interleaved into 4/8-word strips (strip_plane.h) for
/// the 256/512-lane paths — exactly the layouts serve/SampleBank holds.
/// Every path's per-row hit counts must agree exactly; a divergence fails
/// the bench.
///
/// Emits BENCH_query.json (in --csv <dir> when given, else the working
/// directory) with one record per graph size: rows/s through each path,
/// per-width `reach_speedup_{64,256,512}` ratios over scalar (plus
/// `reach_speedup`, the speedup at the width `--lanes auto` would pick),
/// and the transpose/interleave costs of building the planes. The
/// checked-in copy at the repo root is the baseline the docs quote, and
/// CI's lane-width gate asserts 512-lane ≥ 1.5× over 64-lane on the quick
/// shape from this file's output.

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "graph/batch_reachability.h"
#include "graph/bit_transpose.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "graph/strip_plane.h"
#include "graph/strip_reachability.h"
#include "obs/metrics.h"
#include "stats/rng.h"
#include "util/json.h"

namespace infoflow::bench {
namespace {

struct SizePoint {
  NodeId nodes;
  EdgeId edges;
};

/// Row-major packed random rows plus their edge-major transpose — the two
/// layouts a SampleBank generation holds.
struct RowSet {
  std::size_t num_rows = 0;
  std::size_t words_per_row = 0;
  std::vector<std::uint64_t> rows;        // row-major, bit e = edge e
  std::vector<std::uint64_t> edge_major;  // per block: word per edge
  double transpose_s = 0.0;

  const std::uint64_t* Row(std::size_t r) const {
    return rows.data() + r * words_per_row;
  }
  std::size_t num_blocks() const { return (num_rows + 63) / 64; }
};

RowSet MakeRows(const DirectedGraph& graph, std::size_t num_rows,
                double density, Rng& rng) {
  RowSet set;
  set.num_rows = num_rows;
  set.words_per_row = PackedRowWords(graph.num_edges());
  set.rows.assign(num_rows * set.words_per_row, 0);
  for (std::size_t r = 0; r < num_rows; ++r) {
    std::uint64_t* row = set.rows.data() + r * set.words_per_row;
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (rng.Bernoulli(density)) row[e >> 6] |= std::uint64_t{1} << (e & 63);
    }
  }
  // The same cache-blocked 64×64 transpose SampleBank::Fill runs.
  WallTimer timer;
  set.edge_major.assign(set.num_blocks() * graph.num_edges(), 0);
  std::uint64_t tile[64];
  for (std::size_t b = 0; b < set.num_blocks(); ++b) {
    const std::size_t row0 = b * 64;
    const std::size_t rows =
        std::min<std::size_t>(64, num_rows - row0);
    std::uint64_t* plane = set.edge_major.data() + b * graph.num_edges();
    for (std::size_t w = 0; w < set.words_per_row; ++w) {
      for (std::size_t i = 0; i < rows; ++i) tile[i] = set.Row(row0 + i)[w];
      for (std::size_t i = rows; i < 64; ++i) tile[i] = 0;
      Transpose64x64(tile);
      const std::size_t e0 = w * 64;
      const std::size_t cols =
          std::min<std::size_t>(64, graph.num_edges() - e0);
      for (std::size_t j = 0; j < cols; ++j) plane[e0 + j] = tile[j];
    }
  }
  set.transpose_s = timer.Seconds();
  return set;
}

int Run(const BenchArgs& args) {
  Banner("Query throughput — scalar vs bit-parallel reachability replay");
  Rng rng(args.seed);
  const std::vector<SizePoint> sizes =
      args.quick ? std::vector<SizePoint>{{500, 1250}, {2000, 5000}}
                 : std::vector<SizePoint>{{1000, 2500},
                                          {4000, 10000},
                                          {6000, 14000},
                                          {16000, 40000}};
  const std::size_t num_rows = args.quick ? 1024 : 4096;
  // Matches the serve model's mean activation probability (probs are
  // uniform on [0.05, 0.95] there), keeping the replay supercritical.
  const double density = 0.5;
  const int reps = args.quick ? 2 : 3;

  CsvWriter csv({"nodes", "edges", "rows", "scalar_rows_per_s",
                 "batch_rows_per_s", "lanes256_rows_per_s",
                 "lanes512_rows_per_s", "reach_speedup", "transpose_ms"});
  JsonValue::Array records;
  double gate_512_over_64 = 0.0;
  std::printf("%7s %7s %6s | %14s %14s %14s %14s | %7s\n", "nodes", "edges",
              "rows", "scalar rows/s", "64-lane", "256-lane", "512-lane",
              "512/64");
  for (const SizePoint& size : sizes) {
    const DirectedGraph graph =
        UniformRandomGraph(size.nodes, size.edges, rng);
    const RowSet set = MakeRows(graph, num_rows, density, rng);
    // A panel of (source, sink) pairs, as the serve engine sees: a single
    // fixed pair can land on a degenerate node (isolated source, adjacent
    // sink) and measure nothing but the early exit.
    constexpr std::size_t kPairs = 16;
    std::vector<NodeId> panel_src(kPairs), panel_sink(kPairs);
    for (std::size_t q = 0; q < kPairs; ++q) {
      panel_src[q] = static_cast<NodeId>(
          rng.UniformInt(0, static_cast<std::int64_t>(size.nodes) - 1));
      do {
        panel_sink[q] = static_cast<NodeId>(
            rng.UniformInt(0, static_cast<std::int64_t>(size.nodes) - 1));
      } while (panel_sink[q] == panel_src[q]);
    }

    // Both paths count per-row hits; the totals must agree exactly.
    ReachabilityWorkspace scalar(graph);
    std::size_t scalar_hits = 0;
    std::vector<NodeId> sources(1);
    const double scalar_s = TimeBest(reps, [&] {
      scalar_hits = 0;
      for (std::size_t q = 0; q < kPairs; ++q) {
        sources[0] = panel_src[q];
        for (std::size_t r = 0; r < set.num_rows; ++r) {
          if (scalar.RunUntilPacked(graph, sources, set.Row(r),
                                    panel_sink[q])) {
            ++scalar_hits;
          }
        }
      }
    });

    BatchReachabilityWorkspace batch(graph);
    std::size_t batch_hits = 0;
    const double batch_s = TimeBest(reps, [&] {
      batch_hits = 0;
      for (std::size_t q = 0; q < kPairs; ++q) {
        sources[0] = panel_src[q];
        for (std::size_t b = 0; b < set.num_blocks(); ++b) {
          const std::size_t rows =
              std::min<std::size_t>(64, set.num_rows - b * 64);
          const std::uint64_t lane_mask =
              rows >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << rows) - 1;
          const std::uint64_t hits = batch.RunUntil(
              graph, sources, set.edge_major.data() + b * graph.num_edges(),
              panel_sink[q], lane_mask);
          batch_hits += static_cast<std::size_t>(std::popcount(hits));
        }
      }
    });
    if (scalar_hits != batch_hits) {
      std::fprintf(stderr, "hit-count divergence: scalar %zu batch %zu\n",
                   scalar_hits, batch_hits);
      return 1;
    }

    // The multi-word strip paths: interleave the edge-major plane into
    // W-word strips once (the cost SampleBank::AcquireStripPlane pays and
    // caches per generation), then replay through the runtime-width
    // workspace with RunUntil, exactly as the serve engine does.
    const auto block_lane_mask = [&](std::size_t b) {
      const std::size_t rows = std::min<std::size_t>(64, set.num_rows - b * 64);
      return rows >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << rows) - 1;
    };
    double strip_s[2] = {0.0, 0.0};
    double interleave_ms[2] = {0.0, 0.0};
    for (std::size_t i = 0; i < 2; ++i) {
      const unsigned width = i == 0 ? 4 : 8;
      WallTimer interleave_timer;
      const StripPlane plane = BuildStripPlane(
          width, graph.num_edges(), set.num_blocks(),
          [&](std::size_t b) {
            return set.edge_major.data() + b * graph.num_edges();
          },
          block_lane_mask);
      interleave_ms[i] = interleave_timer.Seconds() * 1e3;
      auto workspace = StripWorkspace::Create(width, graph);
      std::size_t strip_hits = 0;
      std::uint64_t target_mask[kMaxStripWords];
      strip_s[i] = TimeBest(reps, [&] {
        strip_hits = 0;
        for (std::size_t q = 0; q < kPairs; ++q) {
          sources[0] = panel_src[q];
          for (std::size_t s = 0; s < plane.num_strips; ++s) {
            workspace->RunUntil(graph, sources, plane.StripWords(s),
                                panel_sink[q], plane.StripLaneMask(s),
                                target_mask);
            for (unsigned w = 0; w < width; ++w) {
              strip_hits +=
                  static_cast<std::size_t>(std::popcount(target_mask[w]));
            }
          }
        }
      });
      if (strip_hits != scalar_hits) {
        std::fprintf(stderr,
                     "hit-count divergence: scalar %zu %u-lane strips %zu\n",
                     scalar_hits, width * 64, strip_hits);
        return 1;
      }
    }

    const double replayed = static_cast<double>(set.num_rows * kPairs);
    const double scalar_rows_per_s = replayed / scalar_s;
    const double batch_rows_per_s = replayed / batch_s;
    const double lanes256_rows_per_s = replayed / strip_s[0];
    const double lanes512_rows_per_s = replayed / strip_s[1];
    const unsigned auto_words = ResolveStripWords(
        LaneWidth::kAuto, set.num_rows, size.nodes, size.edges);
    // The headline ratio follows the width `--lanes auto` picks for this
    // row count — what the serve daemon actually runs.
    const double reach_speedup =
        auto_words == 8   ? scalar_s / strip_s[1]
        : auto_words == 4 ? scalar_s / strip_s[0]
                          : scalar_s / batch_s;
    const double ratio_512_over_64 = batch_s / strip_s[1];
    // The CI gate reads the smallest (first) shape: that's the one whose
    // working set is L2-resident at every width, where wide strips must
    // win. Bigger shapes print their honest (possibly < 1×) ratios above —
    // there `--lanes auto` steps back down, so they don't gate.
    if (gate_512_over_64 == 0.0) gate_512_over_64 = ratio_512_over_64;
    const double transpose_ms = set.transpose_s * 1e3;
    std::printf("%7u %7u %6zu | %14.0f %14.0f %14.0f %14.0f | %6.2fx\n",
                size.nodes, size.edges, set.num_rows, scalar_rows_per_s,
                batch_rows_per_s, lanes256_rows_per_s, lanes512_rows_per_s,
                ratio_512_over_64);
    csv.AppendNumericRow({static_cast<double>(size.nodes),
                          static_cast<double>(size.edges),
                          static_cast<double>(set.num_rows),
                          scalar_rows_per_s, batch_rows_per_s,
                          lanes256_rows_per_s, lanes512_rows_per_s,
                          reach_speedup, transpose_ms});

    JsonValue::Object record;
    record["nodes"] = static_cast<double>(size.nodes);
    record["edges"] = static_cast<double>(size.edges);
    record["rows"] = static_cast<double>(set.num_rows);
    record["hit_fraction"] =
        static_cast<double>(scalar_hits) / replayed;
    record["scalar_rows_per_s"] = scalar_rows_per_s;
    record["batch_rows_per_s"] = batch_rows_per_s;
    record["lanes256_rows_per_s"] = lanes256_rows_per_s;
    record["lanes512_rows_per_s"] = lanes512_rows_per_s;
    record["reach_speedup"] = reach_speedup;
    record["reach_speedup_64"] = scalar_s / batch_s;
    record["reach_speedup_256"] = scalar_s / strip_s[0];
    record["reach_speedup_512"] = scalar_s / strip_s[1];
    record["strip_width"] = static_cast<double>(64 * auto_words);
    record["transpose_ms"] = transpose_ms;
    record["interleave256_ms"] = interleave_ms[0];
    record["interleave512_ms"] = interleave_ms[1];
    records.push_back(JsonValue(std::move(record)));
  }

  JsonValue::Object doc;
  doc["bench"] = "query_throughput";
  doc["rows"] = static_cast<double>(num_rows);
  doc["edge_density"] = density;
  doc["quick"] = args.quick;
  doc["seed"] = static_cast<double>(args.seed);
  doc["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
  doc["metrics_enabled"] = obs::MetricsEnabled();
  doc["results"] = JsonValue(std::move(records));
  const std::string json = JsonValue(std::move(doc)).Dump();
  const std::string path = args.WantCsv() ? args.csv_dir + "/BENCH_query.json"
                                          : "BENCH_query.json";
  if (std::FILE* out = std::fopen(path.c_str(), "w")) {
    std::fputs(json.c_str(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("lane-width verdict: 512-lane strips %.2fx over 64-lane on "
              "the smallest (cache-resident) shape (CI gate: >= 1.5x)\n",
              gate_512_over_64);
  std::printf("shape: one bit-parallel pass answers 64 rows per plane word, "
              "so widening to 8-word strips amortizes the frontier "
              "bookkeeping over 512 rows; early exit keeps every path "
              "sublinear when the sink is close to the source.\n");
  args.MaybeWriteCsv(csv, "query_throughput.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
