/// \file serve_throughput.cc
/// \brief Serving benchmark: fresh chains per query vs shared SampleBank
/// reuse (src/serve), on the fig6 random graph, at several bank sizes.
///
/// The fresh baseline answers each query the pre-serve way: build a
/// MultiChainSampler, pay burn-in, draw N retained samples, estimate. The
/// bank path pays that cost once per generation, then answers a 100-query
/// batch by replaying packed-row BFS over the retained states, with the
/// engine merging queries that share a source frontier into one scan
/// (queries draw their sources from a small pool, as real serving traffic
/// does). Both paths use the `infoflow serve` chain defaults (burn-in 4m,
/// thinning max(8, m/8)) and the same retained-state count, so the
/// estimates have comparable precision and the ratio isolates reuse.
///
/// Each bank size also times the same batch through the engine's scalar
/// reference path (one BFS per row, `use_batch_reachability = false`);
/// `reach_speedup` is the bit-parallel 64-rows-per-pass win over it, with
/// the answers cross-checked for exact equality first. Both sides take the
/// best of 3 runs so the CI gate on the ratio is stable under scheduler
/// noise.
///
/// A shard-count sweep {1, 2, 4, 8} then times the sharded router
/// (src/serve/router.h) on the same batch and the largest bank, answers
/// cross-checked bit-for-bit against the single engine; its records land
/// in the JSON under `shard_sweep`, where `router_tax` (the N=1 routing
/// overhead) is CI-gated under 5%.
///
/// Emits BENCH_serve.json (in --csv <dir> when given, else the working
/// directory) with one record per bank size; `speedup_batch` is the
/// headline fresh-vs-bank ratio at the 100-query batch and `reach_speedup`
/// the scalar-vs-batch BFS ratio the CI perf-smoke gate checks.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/multi_chain.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "serve/partition.h"
#include "serve/query_engine.h"
#include "serve/router.h"
#include "serve/sample_bank.h"
#include "serve/shard_engine.h"
#include "util/json.h"

namespace infoflow::bench {
namespace {

using serve::BankOptions;
using serve::QueryEngine;
using serve::QueryEngineOptions;
using serve::QueryRequest;
using serve::QueryResult;
using serve::SampleBank;
using serve::ShardedQueryEngine;
using serve::ShardSet;

/// A 100-query batch: single-source flow queries whose sources come from a
/// small pool of popular nodes (so the engine's frontier dedup has the
/// repeats real traffic gives it) and whose sinks are uniform.
std::vector<QueryRequest> MakeBatch(std::size_t batch, NodeId nodes,
                                    Rng& rng) {
  constexpr std::int64_t kSourcePool = 16;
  std::vector<NodeId> pool(kSourcePool);
  for (NodeId& s : pool) s = static_cast<NodeId>(rng.UniformInt(0, nodes - 1));
  std::vector<QueryRequest> queries(batch);
  for (std::size_t q = 0; q < batch; ++q) {
    QueryRequest& request = queries[q];
    // snprintf + fresh-string construction sidesteps a GCC 12 -Wrestrict
    // false positive on string concatenation in this loop (PR 105329).
    char id[32];
    std::snprintf(id, sizeof(id), "q%zu", q);
    request.id = std::string(id);
    request.kind = serve::QueryKind::kFlow;
    request.sources = {
        pool[static_cast<std::size_t>(rng.UniformInt(0, kSourcePool - 1))]};
    auto sink = static_cast<NodeId>(rng.UniformInt(0, nodes - 1));
    while (sink == request.sources[0]) {
      sink = static_cast<NodeId>(rng.UniformInt(0, nodes - 1));
    }
    request.sinks = {sink};
  }
  return queries;
}

int Run(const BenchArgs& args) {
  Banner("Serve throughput — fresh chains per query vs bank reuse");
  Rng rng(args.seed);
  const NodeId nodes = args.quick ? 1000 : 6000;
  const EdgeId edges = args.quick ? 2500 : 14000;
  const std::size_t batch = 100;
  auto graph = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.95);
  const PointIcm model(graph, probs);
  const std::size_t m = graph->num_edges();

  MultiChainOptions chain;
  chain.num_chains = 4;
  chain.mh.burn_in = 4 * m;
  chain.mh.thinning = std::max<std::size_t>(8, m / 8);

  const std::vector<QueryRequest> queries = MakeBatch(batch, nodes, rng);
  const std::vector<std::size_t> bank_sizes =
      args.quick ? std::vector<std::size_t>{128, 512}
                 : std::vector<std::size_t>{256, 1024, 4096};
  // Fresh answering is slow by construction; time a few queries and scale.
  const std::size_t fresh_reps = args.quick ? 3 : 5;
  // The largest bank is kept alive for the shard-count sweep below.
  std::optional<SampleBank> sweep_bank;

  CsvWriter csv({"bank_states", "fill_s", "bank_batch_s", "bank_queries_per_s",
                 "scalar_batch_s", "reach_speedup", "fresh_per_query_s",
                 "fresh_batch_s", "speedup_batch", "speedup_incl_fill"});
  JsonValue::Array records;
  std::printf("%11s | %9s %12s %12s | %12s %9s | %14s %12s | %9s %9s\n",
              "bank states", "fill s", "bank batch s", "bank q/s",
              "scalar s", "bit-par", "fresh s/query", "fresh batch s",
              "speedup", "w/ fill");
  for (const std::size_t bank_states : bank_sizes) {
    BankOptions options;
    options.num_states = bank_states;
    options.chain = chain;

    WallTimer timer;
    auto bank = SampleBank::Create(model, options, args.seed);
    bank.status().CheckOK();
    const double fill_s = timer.Seconds();

    auto engine = QueryEngine::Create(bank->graph_ptr(), QueryEngineOptions{});
    engine.status().CheckOK();
    const auto generation = bank->Acquire();
    engine->AnswerBatch(*generation, {queries[0]});  // warm the pool
    std::vector<QueryResult> results;
    const double bank_batch_s = TimeBest(
        3, [&] { results = engine->AnswerBatch(*generation, queries); });
    for (const QueryResult& result : results) result.status.CheckOK();

    // Scalar-reachability reference: same engine, same bank, one BFS per
    // row instead of 64 per pass. The ratio isolates the bit-parallel win
    // from the sampling-reuse win.
    QueryEngineOptions scalar_options;
    scalar_options.use_batch_reachability = false;
    auto scalar_engine = QueryEngine::Create(bank->graph_ptr(), scalar_options);
    scalar_engine.status().CheckOK();
    scalar_engine->AnswerBatch(*generation, {queries[0]});  // warm the pool
    std::vector<QueryResult> scalar_results;
    const double scalar_batch_s = TimeBest(3, [&] {
      scalar_results = scalar_engine->AnswerBatch(*generation, queries);
    });
    for (std::size_t q = 0; q < results.size(); ++q) {
      scalar_results[q].status.CheckOK();
      if (scalar_results[q].estimates[0].value !=
          results[q].estimates[0].value) {
        std::fprintf(stderr, "batch/scalar divergence on query %zu\n", q);
        return 1;
      }
    }
    const double reach_speedup = scalar_batch_s / bank_batch_s;

    // Fresh baseline: a new engine per query, same chain tuning, same
    // retained-state count as the bank.
    double checksum = 0.0;
    timer.Restart();
    for (std::size_t q = 0; q < fresh_reps; ++q) {
      auto fresh =
          MultiChainSampler::Create(model, {}, chain, args.seed + q + 1);
      fresh.status().CheckOK();
      const MultiChainEstimate estimate = fresh->EstimateFlowProbability(
          queries[q].sources[0], queries[q].sinks[0], bank_states);
      checksum += estimate.value;
    }
    const double fresh_per_query_s =
        timer.Seconds() / static_cast<double>(fresh_reps);
    if (checksum < 0.0) std::printf("impossible\n");
    const double fresh_batch_s =
        fresh_per_query_s * static_cast<double>(batch);

    const double speedup = fresh_batch_s / bank_batch_s;
    const double speedup_incl_fill = fresh_batch_s / (fill_s + bank_batch_s);
    const double bank_qps = static_cast<double>(batch) / bank_batch_s;
    std::printf(
        "%11zu | %9.3f %12.5f %12.0f | %12.5f %8.1fx | %14.4f %12.2f | "
        "%8.1fx %8.1fx\n",
        bank_states, fill_s, bank_batch_s, bank_qps, scalar_batch_s,
        reach_speedup, fresh_per_query_s, fresh_batch_s, speedup,
        speedup_incl_fill);
    csv.AppendNumericRow({static_cast<double>(bank_states), fill_s,
                          bank_batch_s, bank_qps, scalar_batch_s,
                          reach_speedup, fresh_per_query_s, fresh_batch_s,
                          speedup, speedup_incl_fill});

    JsonValue::Object record;
    record["bank_states"] = static_cast<double>(bank_states);
    record["rows"] = static_cast<double>(generation->num_rows());
    record["fill_s"] = fill_s;
    record["bank_batch_s"] = bank_batch_s;
    record["bank_queries_per_s"] = bank_qps;
    record["scalar_batch_s"] = scalar_batch_s;
    record["reach_speedup"] = reach_speedup;
    record["fresh_per_query_s"] = fresh_per_query_s;
    record["fresh_batch_s"] = fresh_batch_s;
    record["fresh_timed_queries"] = static_cast<double>(fresh_reps);
    record["speedup_batch"] = speedup;
    record["speedup_incl_fill"] = speedup_incl_fill;
    records.push_back(JsonValue(std::move(record)));
    if (bank_states == bank_sizes.back()) {
      sweep_bank = std::move(bank).ValueOrDie();
    }
  }

  // Shard-count sweep: the sharded router (one engine per shard, cut-edge
  // frontier exchange — src/serve/router.h) on the same 100-query batch
  // and the largest bank, answers cross-checked bit-for-bit against the
  // single engine first. `router_tax` is the N=1 overhead of driving the
  // shard plan at all (the CI gate keeps it under 5%); `speedup_vs_single`
  // is honest wall-clock, so on a single hardware thread (per-shard work
  // serializes on one core) it hovers near 1/(1+tax) rather than scaling
  // with N — the record carries `hardware_threads` so readers can tell.
  Banner("Shard-count sweep — sharded router vs single engine");
  JsonValue::Array shard_records;
  CsvWriter shard_csv(
      {"shards", "cut_edges", "shard_batch_s", "speedup_vs_single",
       "router_tax"});
  {
    const auto generation = sweep_bank->Acquire();
    auto engine =
        QueryEngine::Create(sweep_bank->graph_ptr(), QueryEngineOptions{});
    engine.status().CheckOK();
    engine->AnswerBatch(*generation, {queries[0]});  // warm the pool
    std::vector<QueryResult> single_results;
    const double single_batch_s = TimeBest(3, [&] {
      single_results = engine->AnswerBatch(*generation, queries);
    });
    std::printf("%7s | %9s | %13s | %9s | %10s   (single engine: %.5f s)\n",
                "shards", "cut edges", "shard batch s", "speedup",
                "router tax", single_batch_s);
    for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      auto partition =
          PartitionGraph(*sweep_bank->graph_ptr(), shards, args.seed);
      partition.status().CheckOK();
      const std::size_t cut_edges = partition->cut_edges.size();
      auto shard_set = std::make_shared<ShardSet>(
          std::make_shared<const GraphPartition>(std::move(*partition)));
      auto sharded = ShardedQueryEngine::Create(sweep_bank->graph_ptr(),
                                                shard_set,
                                                QueryEngineOptions{});
      sharded.status().CheckOK();
      shard_set->Prime(*generation);
      std::vector<QueryResult> results;
      sharded->AnswerBatch(*generation, {queries[0]});  // warm the pool
      const double shard_batch_s = TimeBest(
          3, [&] { results = sharded->AnswerBatch(*generation, queries); });
      for (std::size_t q = 0; q < results.size(); ++q) {
        results[q].status.CheckOK();
        if (results[q].estimates[0].value !=
            single_results[q].estimates[0].value) {
          std::fprintf(stderr, "shard/single divergence on query %zu at %u "
                       "shards\n", q, shards);
          return 1;
        }
      }
      const double speedup = single_batch_s / shard_batch_s;
      const double router_tax = shard_batch_s / single_batch_s - 1.0;
      std::printf("%7u | %9zu | %13.5f | %8.2fx | %9.1f%%\n", shards,
                  cut_edges, shard_batch_s, speedup, 100.0 * router_tax);
      shard_csv.AppendNumericRow({static_cast<double>(shards),
                                  static_cast<double>(cut_edges),
                                  shard_batch_s, speedup, router_tax});
      JsonValue::Object record;
      record["shards"] = static_cast<double>(shards);
      record["cut_edges"] = static_cast<double>(cut_edges);
      record["shard_batch_s"] = shard_batch_s;
      record["single_batch_s"] = single_batch_s;
      record["speedup_vs_single"] = speedup;
      record["router_tax"] = router_tax;
      shard_records.push_back(JsonValue(std::move(record)));
    }
  }

  JsonValue::Object doc;
  doc["bench"] = "serve_throughput";
  doc["graph"] = JsonValue(JsonValue::Object{
      {"nodes", static_cast<double>(nodes)},
      {"edges", static_cast<double>(m)}});
  doc["batch_queries"] = static_cast<double>(batch);
  doc["chains"] = static_cast<double>(chain.num_chains);
  doc["burn_in"] = static_cast<double>(chain.mh.burn_in);
  doc["thinning"] = static_cast<double>(chain.mh.thinning);
  doc["quick"] = args.quick;
  doc["seed"] = static_cast<double>(args.seed);
  doc["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
  // Which build flavor produced these numbers: CI diffs a metrics-on run
  // against an INFOFLOW_NO_METRICS run to gate observability overhead.
  doc["metrics_enabled"] = obs::MetricsEnabled();
  doc["results"] = JsonValue(std::move(records));
  doc["shard_sweep"] = JsonValue(std::move(shard_records));
  const std::string json = JsonValue(std::move(doc)).Dump();
  const std::string path = args.WantCsv() ? args.csv_dir + "/BENCH_serve.json"
                                          : "BENCH_serve.json";
  if (std::FILE* out = std::fopen(path.c_str(), "w")) {
    std::fputs(json.c_str(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("shape: the bank pays burn-in and sampling once per "
              "generation; a batch then replays packed-row BFS only, so "
              "reuse wins by the sampling/BFS cost ratio and grows with "
              "frontier sharing.\n");
  args.MaybeWriteCsv(csv, "serve_throughput.csv");
  args.MaybeWriteCsv(shard_csv, "serve_shard_sweep.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
