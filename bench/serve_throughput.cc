/// \file serve_throughput.cc
/// \brief Serving benchmark: fresh chains per query vs shared SampleBank
/// reuse (src/serve), on the fig6 random graph, at several bank sizes.
///
/// The fresh baseline answers each query the pre-serve way: build a
/// MultiChainSampler, pay burn-in, draw N retained samples, estimate. The
/// bank path pays that cost once per generation, then answers a 100-query
/// batch by replaying packed-row BFS over the retained states, with the
/// engine merging queries that share a source frontier into one scan
/// (queries draw their sources from a small pool, as real serving traffic
/// does). Both paths use the `infoflow serve` chain defaults (burn-in 4m,
/// thinning max(8, m/8)) and the same retained-state count, so the
/// estimates have comparable precision and the ratio isolates reuse.
///
/// Each bank size also times the same batch through the engine's scalar
/// reference path (one BFS per row, `use_batch_reachability = false`);
/// `reach_speedup` is the bit-parallel 64-rows-per-pass win over it, with
/// the answers cross-checked for exact equality first. Both sides take the
/// best of 3 runs so the CI gate on the ratio is stable under scheduler
/// noise.
///
/// Emits BENCH_serve.json (in --csv <dir> when given, else the working
/// directory) with one record per bank size; `speedup_batch` is the
/// headline fresh-vs-bank ratio at the 100-query batch and `reach_speedup`
/// the scalar-vs-batch BFS ratio the CI perf-smoke gate checks.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/multi_chain.h"
#include "graph/generators.h"
#include "serve/query_engine.h"
#include "serve/sample_bank.h"
#include "util/json.h"

namespace infoflow::bench {
namespace {

using serve::BankOptions;
using serve::QueryEngine;
using serve::QueryEngineOptions;
using serve::QueryRequest;
using serve::QueryResult;
using serve::SampleBank;

/// A 100-query batch: single-source flow queries whose sources come from a
/// small pool of popular nodes (so the engine's frontier dedup has the
/// repeats real traffic gives it) and whose sinks are uniform.
std::vector<QueryRequest> MakeBatch(std::size_t batch, NodeId nodes,
                                    Rng& rng) {
  constexpr std::int64_t kSourcePool = 16;
  std::vector<NodeId> pool(kSourcePool);
  for (NodeId& s : pool) s = static_cast<NodeId>(rng.UniformInt(0, nodes - 1));
  std::vector<QueryRequest> queries(batch);
  for (std::size_t q = 0; q < batch; ++q) {
    QueryRequest& request = queries[q];
    // snprintf + fresh-string construction sidesteps a GCC 12 -Wrestrict
    // false positive on string concatenation in this loop (PR 105329).
    char id[32];
    std::snprintf(id, sizeof(id), "q%zu", q);
    request.id = std::string(id);
    request.kind = serve::QueryKind::kFlow;
    request.sources = {
        pool[static_cast<std::size_t>(rng.UniformInt(0, kSourcePool - 1))]};
    auto sink = static_cast<NodeId>(rng.UniformInt(0, nodes - 1));
    while (sink == request.sources[0]) {
      sink = static_cast<NodeId>(rng.UniformInt(0, nodes - 1));
    }
    request.sinks = {sink};
  }
  return queries;
}

int Run(const BenchArgs& args) {
  Banner("Serve throughput — fresh chains per query vs bank reuse");
  Rng rng(args.seed);
  const NodeId nodes = args.quick ? 1000 : 6000;
  const EdgeId edges = args.quick ? 2500 : 14000;
  const std::size_t batch = 100;
  auto graph = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.95);
  const PointIcm model(graph, probs);
  const std::size_t m = graph->num_edges();

  MultiChainOptions chain;
  chain.num_chains = 4;
  chain.mh.burn_in = 4 * m;
  chain.mh.thinning = std::max<std::size_t>(8, m / 8);

  const std::vector<QueryRequest> queries = MakeBatch(batch, nodes, rng);
  const std::vector<std::size_t> bank_sizes =
      args.quick ? std::vector<std::size_t>{128, 512}
                 : std::vector<std::size_t>{256, 1024, 4096};
  // Fresh answering is slow by construction; time a few queries and scale.
  const std::size_t fresh_reps = args.quick ? 3 : 5;

  CsvWriter csv({"bank_states", "fill_s", "bank_batch_s", "bank_queries_per_s",
                 "scalar_batch_s", "reach_speedup", "fresh_per_query_s",
                 "fresh_batch_s", "speedup_batch", "speedup_incl_fill"});
  JsonValue::Array records;
  std::printf("%11s | %9s %12s %12s | %12s %9s | %14s %12s | %9s %9s\n",
              "bank states", "fill s", "bank batch s", "bank q/s",
              "scalar s", "bit-par", "fresh s/query", "fresh batch s",
              "speedup", "w/ fill");
  for (const std::size_t bank_states : bank_sizes) {
    BankOptions options;
    options.num_states = bank_states;
    options.chain = chain;

    WallTimer timer;
    auto bank = SampleBank::Create(model, options, args.seed);
    bank.status().CheckOK();
    const double fill_s = timer.Seconds();

    auto engine = QueryEngine::Create(bank->graph_ptr(), QueryEngineOptions{});
    engine.status().CheckOK();
    const auto generation = bank->Acquire();
    engine->AnswerBatch(*generation, {queries[0]});  // warm the pool
    std::vector<QueryResult> results;
    const double bank_batch_s = TimeBest(
        3, [&] { results = engine->AnswerBatch(*generation, queries); });
    for (const QueryResult& result : results) result.status.CheckOK();

    // Scalar-reachability reference: same engine, same bank, one BFS per
    // row instead of 64 per pass. The ratio isolates the bit-parallel win
    // from the sampling-reuse win.
    QueryEngineOptions scalar_options;
    scalar_options.use_batch_reachability = false;
    auto scalar_engine = QueryEngine::Create(bank->graph_ptr(), scalar_options);
    scalar_engine.status().CheckOK();
    scalar_engine->AnswerBatch(*generation, {queries[0]});  // warm the pool
    std::vector<QueryResult> scalar_results;
    const double scalar_batch_s = TimeBest(3, [&] {
      scalar_results = scalar_engine->AnswerBatch(*generation, queries);
    });
    for (std::size_t q = 0; q < results.size(); ++q) {
      scalar_results[q].status.CheckOK();
      if (scalar_results[q].estimates[0].value !=
          results[q].estimates[0].value) {
        std::fprintf(stderr, "batch/scalar divergence on query %zu\n", q);
        return 1;
      }
    }
    const double reach_speedup = scalar_batch_s / bank_batch_s;

    // Fresh baseline: a new engine per query, same chain tuning, same
    // retained-state count as the bank.
    double checksum = 0.0;
    timer.Restart();
    for (std::size_t q = 0; q < fresh_reps; ++q) {
      auto fresh =
          MultiChainSampler::Create(model, {}, chain, args.seed + q + 1);
      fresh.status().CheckOK();
      const MultiChainEstimate estimate = fresh->EstimateFlowProbability(
          queries[q].sources[0], queries[q].sinks[0], bank_states);
      checksum += estimate.value;
    }
    const double fresh_per_query_s =
        timer.Seconds() / static_cast<double>(fresh_reps);
    if (checksum < 0.0) std::printf("impossible\n");
    const double fresh_batch_s =
        fresh_per_query_s * static_cast<double>(batch);

    const double speedup = fresh_batch_s / bank_batch_s;
    const double speedup_incl_fill = fresh_batch_s / (fill_s + bank_batch_s);
    const double bank_qps = static_cast<double>(batch) / bank_batch_s;
    std::printf(
        "%11zu | %9.3f %12.5f %12.0f | %12.5f %8.1fx | %14.4f %12.2f | "
        "%8.1fx %8.1fx\n",
        bank_states, fill_s, bank_batch_s, bank_qps, scalar_batch_s,
        reach_speedup, fresh_per_query_s, fresh_batch_s, speedup,
        speedup_incl_fill);
    csv.AppendNumericRow({static_cast<double>(bank_states), fill_s,
                          bank_batch_s, bank_qps, scalar_batch_s,
                          reach_speedup, fresh_per_query_s, fresh_batch_s,
                          speedup, speedup_incl_fill});

    JsonValue::Object record;
    record["bank_states"] = static_cast<double>(bank_states);
    record["rows"] = static_cast<double>(generation->num_rows());
    record["fill_s"] = fill_s;
    record["bank_batch_s"] = bank_batch_s;
    record["bank_queries_per_s"] = bank_qps;
    record["scalar_batch_s"] = scalar_batch_s;
    record["reach_speedup"] = reach_speedup;
    record["fresh_per_query_s"] = fresh_per_query_s;
    record["fresh_batch_s"] = fresh_batch_s;
    record["fresh_timed_queries"] = static_cast<double>(fresh_reps);
    record["speedup_batch"] = speedup;
    record["speedup_incl_fill"] = speedup_incl_fill;
    records.push_back(JsonValue(std::move(record)));
  }

  JsonValue::Object doc;
  doc["bench"] = "serve_throughput";
  doc["graph"] = JsonValue(JsonValue::Object{
      {"nodes", static_cast<double>(nodes)},
      {"edges", static_cast<double>(m)}});
  doc["batch_queries"] = static_cast<double>(batch);
  doc["chains"] = static_cast<double>(chain.num_chains);
  doc["burn_in"] = static_cast<double>(chain.mh.burn_in);
  doc["thinning"] = static_cast<double>(chain.mh.thinning);
  doc["quick"] = args.quick;
  doc["seed"] = static_cast<double>(args.seed);
  doc["results"] = JsonValue(std::move(records));
  const std::string json = JsonValue(std::move(doc)).Dump();
  const std::string path = args.WantCsv() ? args.csv_dir + "/BENCH_serve.json"
                                          : "BENCH_serve.json";
  if (std::FILE* out = std::fopen(path.c_str(), "w")) {
    std::fputs(json.c_str(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("shape: the bank pays burn-in and sampling once per "
              "generation; a batch then replays packed-row BFS only, so "
              "reuse wins by the sampling/BFS cost ratio and grows with "
              "frontier sharing.\n");
  args.MaybeWriteCsv(csv, "serve_throughput.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
