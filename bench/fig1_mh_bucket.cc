/// \file fig1_mh_bucket.cc
/// \brief Figure 1: the basic bucket experiment (§IV-C).
///
/// Paper setup: 2000 synthetic betaICMs, each with 50 nodes and 200 edges,
/// edge parameters α, β ~ U(1, 20). Per trial: sample a point ICM and an
/// active test state from the betaICM, pick a random (u, v), record whether
/// u ⤳ v in the test state, and pair that with the Metropolis–Hastings
/// estimate of Pr[u ⤳ v] from the betaICM's expected point model. 30 bins;
/// the mean estimate should sit inside the empirical Beta 95% CI for ~95%
/// of bins.

#include <cstdio>

#include "bench_util.h"
#include "core/beta_icm.h"
#include "core/mh_sampler.h"
#include "eval/ascii_plot.h"
#include "eval/bucket.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "util/timer.h"

namespace infoflow::bench {
namespace {

int Run(const BenchArgs& args) {
  const std::size_t kTrials = args.quick ? 200 : 2000;
  const NodeId kNodes = 50;
  const EdgeId kEdges = 200;

  Banner("Fig. 1 — MH bucket experiment on synthetic betaICMs");
  std::printf("trials=%zu nodes=%u edges=%u alpha,beta~U(1,20)\n", kTrials,
              kNodes, kEdges);

  Rng rng(args.seed);
  BucketExperiment bucket;
  WallTimer timer;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    Rng trial_rng = rng.Split();
    auto graph = std::make_shared<const DirectedGraph>(
        UniformRandomGraph(kNodes, kEdges, trial_rng));
    const BetaIcm model = BetaIcm::RandomSynthetic(graph, trial_rng);
    // Test state: a point ICM drawn from the betaICM, then one active
    // state (pseudo-state) from it.
    const PointIcm sampled = model.SampleIcm(trial_rng);
    const PseudoState test_state = sampled.SamplePseudoState(trial_rng);
    const auto u = static_cast<NodeId>(trial_rng.NextBounded(kNodes));
    auto v = static_cast<NodeId>(trial_rng.NextBounded(kNodes - 1));
    if (v >= u) ++v;
    const bool outcome = FlowExists(*graph, u, v, test_state);

    MhOptions mh;
    mh.burn_in = 1500;
    mh.thinning = 6;
    auto sampler =
        MhSampler::Create(model.ExpectedIcm(), {}, mh, trial_rng.Split());
    const double estimate = sampler->EstimateFlowProbability(u, v, 500);
    bucket.Add(estimate, outcome);
  }
  std::printf("elapsed: %.1f s (%.2f ms/trial)\n", timer.Seconds(),
              timer.Millis() / static_cast<double>(kTrials));

  const BucketReport report = bucket.Analyze(30);
  std::printf("%s", RenderCalibration(report).c_str());
  const auto chi2 = ChiSquareCalibration(report);
  std::printf("chi-square calibration: stat=%.2f over %llu bins, p=%.4f\n",
              chi2.statistic,
              static_cast<unsigned long long>(chi2.bins_used),
              chi2.p_value);
  const AccuracyReport all = ComputeAccuracy(bucket.pairs());
  const AccuracyReport middle = ComputeMiddleAccuracy(bucket.pairs());
  std::printf(
      "Table III row 'MH Test — Fig. 1': NL(all)=%.4f Brier(all)=%.4f "
      "NL(mid)=%.4f Brier(mid)=%.4f\n",
      all.normalized_likelihood, all.brier, middle.normalized_likelihood,
      middle.brier);
  std::printf("paper: estimates predominantly within the 95%% CI; "
              "measured coverage %.1f%%\n",
              100.0 * report.coverage);

  CsvWriter csv({"bin_lo", "bin_hi", "count", "positives", "mean_estimate",
                 "empirical_mean", "ci_lo", "ci_hi", "covered"});
  for (const BucketBin& bin : report.bins) {
    if (bin.count == 0) continue;
    csv.AppendNumericRow({bin.lo, bin.hi, static_cast<double>(bin.count),
                          static_cast<double>(bin.positives),
                          bin.mean_estimate, bin.empirical_mean, bin.ci_lo,
                          bin.ci_hi, bin.covered ? 1.0 : 0.0});
  }
  args.MaybeWriteCsv(csv, "fig1_mh_bucket.csv");

  // The grey moving-window band of Fig. 1.
  const auto band = MovingWindowBand(bucket.pairs());
  CsvWriter band_csv({"center", "count", "ci_lo", "ci_hi"});
  for (const WindowPoint& point : band) {
    band_csv.AppendNumericRow({point.center,
                               static_cast<double>(point.count), point.ci_lo,
                               point.ci_hi});
  }
  args.MaybeWriteCsv(band_csv, "fig1_window_band.csv");
  return report.coverage >= 0.7 ? 0 : 1;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
