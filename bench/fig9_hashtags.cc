/// \file fig9_hashtags.cc
/// \brief Figure 9: measuring the flow of hashtags (§V-D) — the negative
/// result. Hashtags mix quiet tags with offline-event tags that users
/// adopt independently at a high external rate; a single per-edge ICM
/// cannot express the mixture, so both learners' flow predictions are
/// substantially worse-calibrated than for URLs (compare with Fig. 8's
/// output).

#include "tag_flow_common.h"

int main(int argc, char** argv) {
  const auto args = infoflow::bench::ParseArgs(argc, argv);
  infoflow::bench::TagFlowConfig config;
  config.kind = infoflow::TagKind::kHashtag;
  config.radii = {4, 5};
  return infoflow::bench::RunTagFlowFigure(args, config, "Fig.9");
}
