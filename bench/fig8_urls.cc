/// \file fig8_urls.cc
/// \brief Figure 8: measuring the flow of URLs (§V-D), radius 4 and 5,
/// our approach vs Goyal et al. URLs propagate (near-)faithfully to the
/// ICM — shortened URLs are rarely discovered independently — so the
/// trained models should calibrate well, with ours more accurate than
/// Goyal's (mirroring the synthetic Fig. 7 result on real-shaped data).

#include "tag_flow_common.h"

int main(int argc, char** argv) {
  const auto args = infoflow::bench::ParseArgs(argc, argv);
  infoflow::bench::TagFlowConfig config;
  config.kind = infoflow::TagKind::kUrl;
  config.radii = {4, 5};
  return infoflow::bench::RunTagFlowFigure(args, config, "Fig.8");
}
