/// \file micro_mh_benchmark.cc
/// \brief google-benchmark microbenchmarks for the Metropolis–Hastings
/// sampler — the §IV-C timing claims.
///
/// The paper reports, on a 6K-user / 14K-edge Twitter sample, 0.13 ms per
/// Markov-chain update and 27 ms per output sample. Absolute numbers are
/// hardware-bound; the shapes to verify are (i) the per-update cost grows
/// ~logarithmically with the edge count (Fenwick proposal + O(1) accept)
/// and (ii) the per-output-sample cost is updates-per-sample × update cost
/// plus one reachability test.

#include <benchmark/benchmark.h>

#include "core/beta_icm.h"
#include "core/mh_sampler.h"
#include "core/multi_chain.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace infoflow {
namespace {

PointIcm MakeModel(NodeId nodes, EdgeId edges, std::uint64_t seed) {
  Rng rng(seed);
  auto graph =
      std::make_shared<const DirectedGraph>(UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.95);
  return PointIcm(graph, std::move(probs));
}

/// One chain update (Algorithm 1 step): the paper's 0.13 ms/update claim.
void BM_ChainUpdate(benchmark::State& state) {
  const auto edges = static_cast<EdgeId>(state.range(0));
  const auto nodes = static_cast<NodeId>(state.range(0) / 2);
  PointIcm model = MakeModel(nodes, edges, 42);
  auto sampler = MhSampler::Create(model, {}, MhOptions{}, Rng(7));
  sampler.status().CheckOK();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChainUpdate)->RangeMultiplier(4)->Range(256, 16384);

/// One *output* sample at the paper's scale (6K users, 14K edges),
/// including thinning and the flow test: the 27 ms/sample claim.
void BM_OutputSamplePaperScale(benchmark::State& state) {
  PointIcm model = MakeModel(6000, 14000, 43);
  MhOptions options;
  options.burn_in = 0;
  options.thinning = static_cast<std::size_t>(state.range(0));
  auto sampler = MhSampler::Create(model, {}, options, Rng(7));
  sampler.status().CheckOK();
  sampler->NextSample();  // consume the (empty) burn-in phase
  ReachabilityWorkspace ws(model.graph());
  for (auto _ : state) {
    const PseudoState& x = sampler->NextSample();
    benchmark::DoNotOptimize(ws.RunUntil(model.graph(), {0}, x, 5999));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OutputSamplePaperScale)->Arg(10)->Arg(50)->Arg(200);

/// The flow-indicator reachability test alone (the O(m) term of the
/// per-sample complexity).
void BM_FlowIndicator(benchmark::State& state) {
  const auto edges = static_cast<EdgeId>(state.range(0));
  const auto nodes = static_cast<NodeId>(state.range(0) / 2);
  PointIcm model = MakeModel(nodes, edges, 44);
  Rng rng(9);
  const PseudoState x = model.SamplePseudoState(rng);
  ReachabilityWorkspace ws(model.graph());
  NodeId sink = nodes - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.RunUntil(model.graph(), {0}, x, sink));
  }
}
BENCHMARK(BM_FlowIndicator)->RangeMultiplier(4)->Range(256, 16384);

/// Conditional chains pay one reachability test per accepted flip.
void BM_ConditionalChainUpdate(benchmark::State& state) {
  PointIcm model = MakeModel(500, 2000, 45);
  const FlowConditions conditions{{0, 100, true}, {1, 200, true}};
  auto sampler = MhSampler::Create(model, conditions, MhOptions{}, Rng(7));
  sampler.status().CheckOK();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Step());
  }
}
BENCHMARK(BM_ConditionalChainUpdate);

/// Retained-sample throughput of the multi-chain engine at the paper's
/// scale: K independent chains over the shared pool, items = retained
/// samples. Compare items/s across the K column: the single-chain row is
/// the serial baseline; K chains on ≥K cores approach K× throughput.
void BM_MultiChainSampleThroughput(benchmark::State& state) {
  const auto chains = static_cast<std::size_t>(state.range(0));
  PointIcm model = MakeModel(6000, 14000, 43);
  MultiChainOptions options;
  options.num_chains = chains;
  options.num_threads = chains;
  options.mh.burn_in = 0;
  options.mh.thinning = 50;
  auto engine = MultiChainSampler::Create(model, {}, options, 7);
  engine.status().CheckOK();
  const std::size_t samples = 64 * chains;  // equal per-chain quota
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->EstimateFlowProbability(0, 5999, samples).value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples));
  state.counters["chains"] = static_cast<double>(chains);
}
BENCHMARK(BM_MultiChainSampleThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Pseudo-state sampling from a betaICM (the outer loop of nested MH).
void BM_SampleIcmFromBeta(benchmark::State& state) {
  Rng rng(46);
  auto graph = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(1000, 4000, rng));
  const BetaIcm model = BetaIcm::RandomSynthetic(graph, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.SampleIcm(rng).prob(0));
  }
}
BENCHMARK(BM_SampleIcmFromBeta);

}  // namespace
}  // namespace infoflow

BENCHMARK_MAIN();
