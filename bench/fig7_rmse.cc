/// \file fig7_rmse.cc
/// \brief Figure 7(a–d): RMSE of trained graph fragments vs ground truth
/// as the number of objects grows (§V-C).
///
/// Four k-parent star fragments with the paper's activation probabilities:
///   (a) {0.68, 0.73, 0.85}        — 3 parents, no skew
///   (b) {0.15, 0.68, 0.83}        — 3 parents, skew
///   (c) {0.82, 0.83, 0.92, 0.92}  — 4 parents, no skew
///   (d) {0.06, 0.69, 0.74, 0.76}  — 4 parents, skew
/// Evidence: objects activate each parent independently (p=0.75 exposure),
/// then the sink leaks per the ICM union probability. Estimators: our joint
/// Bayes (with 95% posterior band), Goyal's credit rule, the filtered
/// counting, and Saito's EM (best of restarts). Paper shape: ours decreases
/// steadily with data; Saito marginally worse; Goyal's accuracy saturates
/// (especially with skew) and can lose to filtered.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "eval/ascii_plot.h"
#include "graph/generators.h"
#include "learn/filtered.h"
#include "learn/goyal.h"
#include "learn/joint_bayes.h"
#include "learn/saito_em.h"
#include "learn/summary.h"
#include "stats/descriptive.h"

namespace infoflow::bench {
namespace {

struct PanelSpec {
  const char* name;
  std::vector<double> truth;
};

/// Simulates one evidence set of `num_objects` over the star and builds
/// the sink summary.
SinkSummary Simulate(const DirectedGraph& graph,
                     const std::vector<double>& truth,
                     std::size_t num_objects, Rng& rng) {
  const auto sink = static_cast<NodeId>(truth.size());
  UnattributedEvidence ev;
  for (std::size_t o = 0; o < num_objects; ++o) {
    ObjectTrace trace;
    double survive = 1.0;
    double time = 1.0;
    for (NodeId p = 0; p < sink; ++p) {
      if (rng.Bernoulli(0.75)) {
        trace.activations.push_back({p, time++});
        survive *= 1.0 - truth[p];
      }
    }
    if (trace.activations.empty()) continue;
    if (rng.Bernoulli(1.0 - survive)) {
      trace.activations.push_back({sink, time});
    }
    ev.traces.push_back(std::move(trace));
  }
  return BuildSinkSummary(graph, sink, ev);
}

int Run(const BenchArgs& args) {
  const PanelSpec panels[] = {
      {"(a) {0.68,0.73,0.85} no skew", {0.68, 0.73, 0.85}},
      {"(b) {0.15,0.68,0.83} skew", {0.15, 0.68, 0.83}},
      {"(c) {0.82,0.83,0.92,0.92} no skew", {0.82, 0.83, 0.92, 0.92}},
      {"(d) {0.06,0.69,0.74,0.76} skew", {0.06, 0.69, 0.74, 0.76}},
  };
  const std::vector<std::size_t> object_counts =
      args.quick ? std::vector<std::size_t>{10, 100, 1000}
                 : std::vector<std::size_t>{1,   3,   10,   30,  100,
                                            300, 1000, 3000, 10000};
  const std::size_t kReps = args.quick ? 3 : 8;

  Banner("Fig. 7 — RMSE of trained fragments vs ground truth");
  Rng rng(args.seed);
  int exit_code = 0;
  for (const PanelSpec& panel : panels) {
    Banner(std::string("Fig. 7") + panel.name);
    const DirectedGraph graph = StarFragment(panel.truth.size());

    Series ours{"ours", 'o', {}, {}}, goyal{"goyal", 'g', {}, {}},
        filtered{"filtered", 'f', {}, {}}, saito{"saito", 's', {}, {}};
    CsvWriter csv({"objects", "rmse_ours", "rmse_goyal", "rmse_filtered",
                   "rmse_saito", "ours_ci_lo", "ours_ci_hi"});
    double final_ours = 1.0, final_goyal = 1.0;
    for (std::size_t n : object_counts) {
      RunningStats r_ours, r_goyal, r_filtered, r_saito, r_lo, r_hi;
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        Rng rep_rng = rng.Split();
        const SinkSummary summary =
            Simulate(graph, panel.truth, n, rep_rng);
        if (summary.rows.empty()) {
          // No usable evidence at tiny n: all estimators sit at their
          // priors.
          continue;
        }
        JointBayesOptions jb;
        jb.num_samples = 600;
        jb.burn_in = 400;
        auto fit = FitJointBayes(summary, jb, rep_rng);
        fit.status().CheckOK();
        r_ours.Add(Rmse(fit->mean, panel.truth));
        // The dashed 95% band: RMSE at posterior mean ± 2 sd.
        std::vector<double> lo = fit->mean, hi = fit->mean;
        for (std::size_t j = 0; j < lo.size(); ++j) {
          lo[j] = std::clamp(lo[j] - 2.0 * fit->sd[j], 0.0, 1.0);
          hi[j] = std::clamp(hi[j] + 2.0 * fit->sd[j], 0.0, 1.0);
        }
        r_lo.Add(Rmse(lo, panel.truth));
        r_hi.Add(Rmse(hi, panel.truth));

        r_goyal.Add(Rmse(FitGoyal(summary).estimate, panel.truth));
        r_filtered.Add(Rmse(FitFiltered(summary).estimate, panel.truth));
        SaitoEmOptions em;
        auto runs = FitSaitoEmRestarts(summary, em, 5, rep_rng);
        const auto best = std::max_element(
            runs.begin(), runs.end(), [](const auto& a, const auto& b) {
              return a.log_likelihood < b.log_likelihood;
            });
        r_saito.Add(Rmse(best->estimate, panel.truth));
      }
      if (r_ours.Count() == 0) continue;
      const auto nd = static_cast<double>(n);
      ours.x.push_back(nd);
      ours.y.push_back(r_ours.Mean());
      goyal.x.push_back(nd);
      goyal.y.push_back(r_goyal.Mean());
      filtered.x.push_back(nd);
      filtered.y.push_back(r_filtered.Mean());
      saito.x.push_back(nd);
      saito.y.push_back(r_saito.Mean());
      final_ours = r_ours.Mean();
      final_goyal = r_goyal.Mean();
      std::printf(
          "n=%6zu  ours=%.4f [%.4f,%.4f]  goyal=%.4f  filtered=%.4f  "
          "saito=%.4f\n",
          n, r_ours.Mean(), r_lo.Mean(), r_hi.Mean(), r_goyal.Mean(),
          r_filtered.Mean(), r_saito.Mean());
      csv.AppendNumericRow({nd, r_ours.Mean(), r_goyal.Mean(),
                            r_filtered.Mean(), r_saito.Mean(), r_lo.Mean(),
                            r_hi.Mean()});
    }
    std::printf("%s",
                RenderSeries({ours, goyal, filtered, saito}, 60, 16,
                             /*log_x=*/true)
                    .c_str());
    std::string file = "fig7_";
    file += panel.name[1];  // a/b/c/d
    file += ".csv";
    args.MaybeWriteCsv(csv, file);
    // The paper's headline: with plenty of data our RMSE beats Goyal's.
    if (final_ours >= final_goyal) {
      std::printf("WARNING: ordering not reproduced on this panel\n");
      exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
