/// \file ablation_thinning.cc
/// \brief Ablation: thinning δ′ vs estimate quality (§III-B/D).
///
/// The paper thins "to ensure independence" and charges O(δ′ log m) per
/// output sample. Two regimes matter in practice:
///   - fixed SAMPLE budget: more thinning always helps (less correlated
///     samples) but costs time;
///   - fixed STEP budget (what a deadline gives you): thinning trades
///     sample count against sample independence — the interesting trade.
/// We sweep δ′ under both budgets on a mid-sized graph and report the RMSE
/// of flow estimates vs exact enumeration. The guidance this validates
/// (EXPERIMENTS.md, Fig. 3 note): δ′ should scale with the edge count.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/exact_flow.h"
#include "core/mh_sampler.h"
#include "graph/generators.h"
#include "stats/descriptive.h"

namespace infoflow::bench {
namespace {

int Run(const BenchArgs& args) {
  Banner("Ablation — thinning δ′ under fixed sample and fixed step budgets");
  const std::size_t kReps = args.quick ? 8 : 30;
  const std::size_t kSampleBudget = 3000;
  const std::size_t kStepBudget = 60000;
  const std::size_t thinnings[] = {0, 1, 2, 5, 10, 20, 50};

  // One model (and one exact enumeration — the expensive part) per rep,
  // shared across the whole thinning sweep.
  struct Rep {
    PointIcm model;
    double exact;
    Rng rng;
  };
  std::vector<Rep> reps;
  Rng rng(args.seed);
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    Rng rep_rng = rng.Split();
    auto graph = std::make_shared<const DirectedGraph>(
        UniformRandomGraph(10, 22, rep_rng));
    std::vector<double> probs(graph->num_edges());
    for (double& p : probs) p = rep_rng.Uniform(0.05, 0.6);
    PointIcm model(graph, probs);
    const double exact = ExactFlowByEnumeration(model, 0, 9);
    reps.push_back(Rep{std::move(model), exact, rep_rng.Split()});
  }

  CsvWriter csv({"thinning", "rmse_fixed_samples", "rmse_fixed_steps",
                 "samples_at_fixed_steps"});
  std::printf("%10s %22s %22s %12s\n", "thinning", "RMSE @3000 samples",
              "RMSE @60000 steps", "samples");
  for (const std::size_t thinning : thinnings) {
    RunningStats err_samples, err_steps;
    const std::size_t steps_per_sample = thinning + 1;
    const std::size_t samples_at_steps =
        std::max<std::size_t>(1, kStepBudget / steps_per_sample);
    for (Rep& rep : reps) {
      MhOptions opt;
      opt.burn_in = 1000;
      opt.thinning = thinning;

      auto a = MhSampler::Create(rep.model, {}, opt, rep.rng.Split());
      a.status().CheckOK();
      const double est_samples =
          a->EstimateFlowProbability(0, 9, kSampleBudget);
      err_samples.Add((est_samples - rep.exact) * (est_samples - rep.exact));

      auto b = MhSampler::Create(rep.model, {}, opt, rep.rng.Split());
      b.status().CheckOK();
      const double est_steps =
          b->EstimateFlowProbability(0, 9, samples_at_steps);
      err_steps.Add((est_steps - rep.exact) * (est_steps - rep.exact));
    }
    const double rmse_samples = std::sqrt(err_samples.Mean());
    const double rmse_steps = std::sqrt(err_steps.Mean());
    std::printf("%10zu %22.5f %22.5f %12zu\n", thinning, rmse_samples,
                rmse_steps, samples_at_steps);
    csv.AppendNumericRow({static_cast<double>(thinning), rmse_samples,
                          rmse_steps,
                          static_cast<double>(samples_at_steps)});
  }
  std::printf(
      "\ntakeaway: at a fixed sample count, thinning buys accuracy "
      "(correlated samples carry less information); at a fixed step "
      "budget the curve is nearly flat until extreme δ′ starves the "
      "sample count — so size δ′ to the correlation length (∝ edges), "
      "not to a constant.\n");
  args.MaybeWriteCsv(csv, "ablation_thinning.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
