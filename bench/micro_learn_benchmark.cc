/// \file micro_learn_benchmark.cc
/// \brief google-benchmark microbenchmarks for the learners: attributed
/// counting, summary construction, and the four unattributed estimators
/// (the constants behind the Fig. 6 / §V-C complexity discussion).

#include <benchmark/benchmark.h>

#include "graph/generators.h"
#include "learn/attributed.h"
#include "learn/filtered.h"
#include "learn/goyal.h"
#include "learn/joint_bayes.h"
#include "learn/saito_em.h"
#include "learn/summary.h"

namespace infoflow {
namespace {

/// Raw star traces with the given parent count and object count.
UnattributedEvidence MakeTraces(std::size_t parents, std::size_t objects,
                                std::uint64_t seed) {
  Rng rng(seed);
  UnattributedEvidence ev;
  const auto sink = static_cast<NodeId>(parents);
  for (std::size_t o = 0; o < objects; ++o) {
    ObjectTrace trace;
    double survive = 1.0;
    double time = 1.0;
    for (NodeId p = 0; p < sink; ++p) {
      if (rng.Bernoulli(0.6)) {
        trace.activations.push_back({p, time++});
        survive *= 0.5;
      }
    }
    if (trace.activations.empty()) continue;
    if (rng.Bernoulli(1.0 - survive)) {
      trace.activations.push_back({sink, time});
    }
    ev.traces.push_back(std::move(trace));
  }
  return ev;
}

void BM_BuildSinkSummary(benchmark::State& state) {
  const auto parents = static_cast<std::size_t>(state.range(0));
  const auto objects = static_cast<std::size_t>(state.range(1));
  const DirectedGraph graph = StarFragment(parents);
  const UnattributedEvidence traces = MakeTraces(parents, objects, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildSinkSummary(graph, static_cast<NodeId>(parents), traces));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(objects));
}
BENCHMARK(BM_BuildSinkSummary)
    ->Args({4, 1000})
    ->Args({4, 10000})
    ->Args({10, 10000});

void BM_GoyalFit(benchmark::State& state) {
  const auto parents = static_cast<std::size_t>(state.range(0));
  const DirectedGraph graph = StarFragment(parents);
  const UnattributedEvidence traces = MakeTraces(parents, 10000, 2);
  const SinkSummary summary =
      BuildSinkSummary(graph, static_cast<NodeId>(parents), traces);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGoyal(summary));
  }
}
BENCHMARK(BM_GoyalFit)->Arg(4)->Arg(10);

void BM_FilteredFit(benchmark::State& state) {
  const DirectedGraph graph = StarFragment(6);
  const UnattributedEvidence traces = MakeTraces(6, 10000, 3);
  const SinkSummary summary = BuildSinkSummary(graph, 6, traces);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitFiltered(summary));
  }
}
BENCHMARK(BM_FilteredFit);

void BM_JointBayesSweep(benchmark::State& state) {
  const auto parents = static_cast<std::size_t>(state.range(0));
  const DirectedGraph graph = StarFragment(parents);
  const UnattributedEvidence traces = MakeTraces(parents, 10000, 4);
  const SinkSummary summary =
      BuildSinkSummary(graph, static_cast<NodeId>(parents), traces);
  JointBayesOptions opt;
  opt.num_samples = 1;
  opt.burn_in = 0;
  opt.thinning = 0;
  opt.adapt = false;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitJointBayes(summary, opt, rng));
  }
}
BENCHMARK(BM_JointBayesSweep)->Arg(4)->Arg(10);

void BM_SaitoEmIteration(benchmark::State& state) {
  const auto parents = static_cast<std::size_t>(state.range(0));
  const DirectedGraph graph = StarFragment(parents);
  const UnattributedEvidence traces = MakeTraces(parents, 10000, 6);
  const SinkSummary summary =
      BuildSinkSummary(graph, static_cast<NodeId>(parents), traces);
  SaitoEmOptions opt;
  opt.max_iterations = 1;
  opt.tolerance = 0.0;
  opt.random_init = false;
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitSaitoEm(summary, opt, rng));
  }
}
BENCHMARK(BM_SaitoEmIteration)->Arg(4)->Arg(10);

void BM_AttributedTrainPerObject(benchmark::State& state) {
  Rng rng(8);
  auto graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(500, 4, 0.2, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.3);
  const PointIcm truth(graph, probs);
  // Pre-generate objects; the benchmark measures the counting update.
  std::vector<AttributedObject> objects;
  for (int i = 0; i < 200; ++i) {
    const ActiveState s = truth.SampleCascade({0}, rng);
    AttributedObject obj;
    obj.sources = s.sources;
    obj.active_nodes = s.active_nodes;
    for (EdgeId e = 0; e < graph->num_edges(); ++e) {
      if (s.edge_active[e]) obj.active_edges.push_back(e);
    }
    objects.push_back(std::move(obj));
  }
  BetaIcm model = BetaIcm::Uninformed(graph);
  std::size_t i = 0;
  for (auto _ : state) {
    UpdateBetaIcmWithObject(model, objects[i % objects.size()]).CheckOK();
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AttributedTrainPerObject);

}  // namespace
}  // namespace infoflow

BENCHMARK_MAIN();
