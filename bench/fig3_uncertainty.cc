/// \file fig3_uncertainty.cc
/// \brief Figure 3: does the betaICM capture the uncertainty in the
/// evidence? (§IV-D)
///
/// Protocol: pick a source that tweets frequently and a nearby sink; train
/// a betaICM on the cascades; sample ~100 point ICMs from it (nested MH,
/// §III-E) and compute each one's source→sink flow probability. Compare
/// the histogram of those probabilities against the *empirical* Beta
/// trained directly on the same evidence (how often the source's tweets
/// reached the sink). The paper shows two cases, an extreme low-rate pair
/// (empirical ≈ Beta(1, 45)) and a mid-rate pair (≈ Beta(32, 40)); the
/// histogram should match the empirical Beta's location and spread.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/mh_sampler.h"
#include "core/nested_mh.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "learn/attributed.h"
#include "stats/histogram.h"
#include "twitter/cascade_gen.h"
#include "twitter/interesting_users.h"

namespace infoflow::bench {
namespace {

/// Builds the empirical Beta for (source, sink): across the source's
/// cascades, how often did the sink activate?
BetaDist EmpiricalFlowBeta(const AttributedEvidence& evidence, NodeId source,
                           NodeId sink) {
  std::uint64_t reached = 0, total = 0;
  for (const AttributedObject& obj : evidence.objects) {
    if (obj.sources.size() != 1 || obj.sources[0] != source) continue;
    ++total;
    for (NodeId v : obj.active_nodes) {
      if (v == sink) {
        ++reached;
        break;
      }
    }
  }
  return BetaDist::FromCounts(reached, total - reached);
}

int Run(const BenchArgs& args) {
  const NodeId kUsers = args.quick ? 120 : 300;
  const std::size_t kMessages = args.quick ? 2500 : 8000;
  const std::size_t kModels = args.quick ? 60 : 120;

  Banner("Fig. 3 — uncertainty capture: nested MH vs empirical Beta");
  Rng rng(args.seed);
  auto graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(kUsers, 4, 0.25, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.02, 0.45);
  const PointIcm truth(graph, probs);

  // Attributed evidence straight from cascades (parsing isn't the subject
  // here).
  AttributedEvidence evidence;
  Rng gen_rng = rng.Split();
  std::vector<double> author_weight(kUsers);
  for (NodeId v = 0; v < kUsers; ++v) {
    author_weight[v] = static_cast<double>(graph->OutDegree(v)) + 1.0;
  }
  for (std::size_t m = 0; m < kMessages; ++m) {
    const auto author =
        static_cast<NodeId>(gen_rng.Categorical(author_weight));
    const ActiveState s = truth.SampleCascade({author}, gen_rng);
    AttributedObject obj;
    obj.sources = s.sources;
    obj.active_nodes = s.active_nodes;
    for (EdgeId e = 0; e < graph->num_edges(); ++e) {
      if (s.edge_active[e]) obj.active_edges.push_back(e);
    }
    evidence.objects.push_back(std::move(obj));
  }
  auto model = TrainBetaIcmFromAttributed(graph, evidence);
  model.status().CheckOK();

  // Two (source, sink) pairs mirroring the paper's examples: one where the
  // sink almost never receives the source's tweets, one mid-rate pair.
  const auto interesting = SelectInterestingUsers(kUsers, evidence, 6);
  struct Example {
    const char* label;
    NodeId source = kInvalidNode;
    NodeId sink = kInvalidNode;
    double target_lo, target_hi;  // empirical-mean range sought
  };
  Example examples[] = {{"(a) low-rate pair (paper: Beta(1,45))", kInvalidNode,
                         kInvalidNode, 0.0, 0.08},
                        {"(b) mid-rate pair (paper: Beta(32,40))",
                         kInvalidNode, kInvalidNode, 0.25, 0.75}};
  // "Nearby sink" (§IV-D): direct followers, where the flow probability is
  // dominated by one well-observed edge — the regime of the paper's two
  // examples.
  Rng pick_rng = rng.Split();
  for (Example& ex : examples) {
    for (NodeId source : interesting) {
      const Subgraph ego = EgoSubgraph(*graph, source, 1);
      for (int tries = 0; tries < 200 && ex.source == kInvalidNode;
           ++tries) {
        const NodeId local =
            static_cast<NodeId>(pick_rng.NextBounded(ego.graph.num_nodes()));
        const NodeId sink = ego.node_to_parent[local];
        if (sink == source) continue;
        const BetaDist emp = EmpiricalFlowBeta(evidence, source, sink);
        if (emp.alpha() + emp.beta() < 30.0) continue;  // too little data
        if (emp.Mean() >= ex.target_lo && emp.Mean() <= ex.target_hi) {
          ex.source = source;
          ex.sink = sink;
        }
      }
      if (ex.source != kInvalidNode) break;
    }
  }

  int exit_code = 0;
  for (const Example& ex : examples) {
    Banner(std::string("Fig. 3 ") + ex.label);
    if (ex.source == kInvalidNode) {
      std::printf("no qualifying (source, sink) pair found — rerun with "
                  "another seed\n");
      exit_code = 1;
      continue;
    }
    const BetaDist empirical = EmpiricalFlowBeta(evidence, ex.source, ex.sink);
    std::printf("source=%u sink=%u empirical %s (mean %.4f sd %.4f)\n",
                ex.source, ex.sink, empirical.ToString().c_str(),
                empirical.Mean(), empirical.StdDev());

    // Flow to a nearby sink is dominated by short paths: run the nested
    // estimate on the source's radius-2 ego model, with thinning scaled to
    // its edge count so per-model estimates are not mixing-noise.
    const Subgraph ego = EgoSubgraph(*graph, ex.source, 2);
    auto ego_graph = std::make_shared<const DirectedGraph>(ego.graph);
    std::vector<double> alphas(ego.graph.num_edges()),
        betas(ego.graph.num_edges());
    for (EdgeId e = 0; e < ego.graph.num_edges(); ++e) {
      alphas[e] = model->alpha(ego.edge_to_parent[e]);
      betas[e] = model->beta(ego.edge_to_parent[e]);
    }
    const BetaIcm ego_model(ego_graph, std::move(alphas), std::move(betas));

    NestedMhOptions nested;
    nested.num_models = kModels;
    nested.samples_per_model = 400;
    nested.mh.burn_in = 4 * ego.graph.num_edges();
    nested.mh.thinning = std::max<std::size_t>(8, ego.graph.num_edges() / 4);
    Rng nested_rng = rng.Split();
    auto dist = NestedMhFlowDistribution(ego_model, ex.source == kInvalidNode
                                                        ? 0
                                                        : ego.LocalNode(ex.source),
                                         ego.LocalNode(ex.sink), {}, nested,
                                         nested_rng);
    dist.status().CheckOK();
    const BetaDist fitted = dist->FittedBeta();
    std::printf("nested MH over %zu sampled ICMs: mean %.4f sd %.4f; "
                "moment-fitted %s\n",
                nested.num_models, dist->Mean(),
                std::sqrt(dist->Variance()), fitted.ToString().c_str());

    Histogram hist(0.0, 1.0, 25);
    for (double p : dist->probabilities) hist.Add(p);
    std::printf("%s", hist.ToAscii(40).c_str());

    // Shape check: the model's uncertainty should overlap the empirical
    // Beta — means within two combined standard deviations.
    const double gap = std::fabs(dist->Mean() - empirical.Mean());
    const double scale = empirical.StdDev() + std::sqrt(dist->Variance());
    std::printf("mean gap %.4f vs combined sd %.4f -> %s\n", gap, scale,
                gap < 2.0 * scale ? "matches" : "MISMATCH");
    if (gap >= 2.0 * scale) exit_code = 1;

    CsvWriter csv({"sampled_flow_probability"});
    for (double p : dist->probabilities) csv.AppendNumericRow({p});
    args.MaybeWriteCsv(csv,
                       std::string("fig3_") + (ex.target_hi < 0.1 ? "a" : "b") +
                           "_samples.csv");
  }
  return exit_code;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
