/// \file fig5_rwr.cc
/// \brief Figure 5: the bucket experiment with Random Walk with Restart
/// (§IV-E) — the same synthetic setting as Fig. 1, but predictions come
/// from RWR similarity scores read as probabilities. The paper's point:
/// RWR is badly calibrated compared to the MH flow estimates.

#include <cstdio>

#include "baselines/rwr.h"
#include "bench_util.h"
#include "core/beta_icm.h"
#include "eval/ascii_plot.h"
#include "eval/bucket.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "graph/reachability.h"

namespace infoflow::bench {
namespace {

int Run(const BenchArgs& args) {
  const std::size_t kTrials = args.quick ? 200 : 2000;
  const NodeId kNodes = 50;
  const EdgeId kEdges = 200;

  Banner("Fig. 5 — bucket experiment with Random Walk with Restart");
  std::printf("trials=%zu nodes=%u edges=%u (same data process as Fig. 1)\n",
              kTrials, kNodes, kEdges);

  Rng rng(args.seed);
  BucketExperiment bucket;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    Rng trial_rng = rng.Split();
    auto graph = std::make_shared<const DirectedGraph>(
        UniformRandomGraph(kNodes, kEdges, trial_rng));
    const BetaIcm model = BetaIcm::RandomSynthetic(graph, trial_rng);
    const PointIcm sampled = model.SampleIcm(trial_rng);
    const PseudoState test_state = sampled.SamplePseudoState(trial_rng);
    const auto u = static_cast<NodeId>(trial_rng.NextBounded(kNodes));
    auto v = static_cast<NodeId>(trial_rng.NextBounded(kNodes - 1));
    if (v >= u) ++v;
    const bool outcome = FlowExists(*graph, u, v, test_state);
    const auto scores = RwrFlowScores(model.ExpectedIcm(), u);
    bucket.Add(scores[v], outcome);
  }

  const BucketReport report = bucket.Analyze(30);
  std::printf("%s", RenderCalibration(report).c_str());
  const auto chi2 = ChiSquareCalibration(report);
  std::printf("chi-square calibration: stat=%.2f over %llu bins, p=%.4f\n",
              chi2.statistic,
              static_cast<unsigned long long>(chi2.bins_used),
              chi2.p_value);
  const AccuracyReport all = ComputeAccuracy(bucket.pairs());
  const AccuracyReport middle = ComputeMiddleAccuracy(bucket.pairs());
  std::printf(
      "Table III row 'RWR — Fig. 5': NL(all)=%.4f Brier(all)=%.4f "
      "NL(mid)=%.4f Brier(mid)=%.4f\n",
      all.normalized_likelihood, all.brier, middle.normalized_likelihood,
      middle.brier);
  std::printf(
      "paper shape: RWR coverage/accuracy clearly below Fig. 1's MH "
      "estimates (paper NL 0.351 vs 0.599, Brier 0.385 vs 0.174); measured "
      "coverage %.1f%%\n",
      100.0 * report.coverage);

  CsvWriter csv({"bin_lo", "bin_hi", "count", "positives", "mean_estimate",
                 "empirical_mean", "ci_lo", "ci_hi", "covered"});
  for (const BucketBin& bin : report.bins) {
    if (bin.count == 0) continue;
    csv.AppendNumericRow({bin.lo, bin.hi, static_cast<double>(bin.count),
                          static_cast<double>(bin.positives),
                          bin.mean_estimate, bin.empirical_mean, bin.ci_lo,
                          bin.ci_hi, bin.covered ? 1.0 : 0.0});
  }
  args.MaybeWriteCsv(csv, "fig5_rwr_bucket.csv");
  // Success for this harness means demonstrating *mis*-calibration.
  return report.coverage <= 0.6 ? 0 : 1;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
