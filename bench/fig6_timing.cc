/// \file fig6_timing.cc
/// \brief Figure 6: cost of drawing one training sample, our joint-Bayes
/// method vs Goyal et al.'s credit rule (§V-C).
///
/// (a) Core computation only: one joint-Bayes posterior sweep (n Beta
///     log-densities + ω Binomial terms) vs one full Goyal pass (m + n
///     divisions, mn additions over the raw object list).
/// (b) Total cost including building the evidence summary, and the
///     amortized per-sample cost once the summary is built.
///
/// The paper plots (ours, goyal) time pairs across problem sizes; absolute
/// numbers are hardware-bound, the *shape* (both linear-ish, ours a small
/// constant factor above Goyal per sample, summarization amortizing away)
/// is what we reproduce.

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/multi_chain.h"
#include "eval/ascii_plot.h"
#include "graph/generators.h"
#include "learn/goyal.h"
#include "learn/joint_bayes.h"
#include "learn/summary.h"
#include "util/timer.h"

namespace infoflow::bench {
namespace {

/// Generates raw unattributed traces over a k-parent star.
UnattributedEvidence SimulateRaw(std::size_t num_parents,
                                 std::size_t num_objects, Rng& rng) {
  UnattributedEvidence ev;
  const auto sink = static_cast<NodeId>(num_parents);
  for (std::size_t o = 0; o < num_objects; ++o) {
    ObjectTrace trace;
    double survive = 1.0;
    double time = 1.0;
    for (NodeId p = 0; p < sink; ++p) {
      if (rng.Bernoulli(0.6)) {
        trace.activations.push_back({p, time++});
        survive *= 0.5;
      }
    }
    if (trace.activations.empty()) continue;
    if (rng.Bernoulli(1.0 - survive)) {
      trace.activations.push_back({sink, time});
    }
    ev.traces.push_back(std::move(trace));
  }
  return ev;
}

/// Direct Goyal implementation over raw traces (no summary) — the m·n cost
/// the paper attributes to it.
double TimeGoyalRaw(const DirectedGraph& graph,
                    const UnattributedEvidence& ev, NodeId sink, int reps) {
  double sink_value = 0.0;
  const double per_rep = TimeReps(reps, [&] {
    std::vector<NodeId> parents;
    for (EdgeId e : graph.InEdges(sink)) parents.push_back(graph.edge(e).src);
    std::vector<double> credit(parents.size(), 0.0),
        exposure(parents.size(), 0.0);
    for (const ObjectTrace& trace : ev.traces) {
      const double t_sink = trace.TimeOf(sink);
      std::size_t active = 0;
      std::vector<std::uint8_t> mask(parents.size(), 0);
      for (std::size_t j = 0; j < parents.size(); ++j) {
        if (trace.TimeOf(parents[j]) < t_sink) {
          mask[j] = 1;
          ++active;
        }
      }
      if (active == 0) continue;
      const bool leak = trace.IsActive(sink);
      for (std::size_t j = 0; j < parents.size(); ++j) {
        if (!mask[j]) continue;
        exposure[j] += 1.0;
        if (leak) credit[j] += 1.0 / static_cast<double>(active);
      }
    }
    for (std::size_t j = 0; j < parents.size(); ++j) {
      sink_value += exposure[j] > 0 ? credit[j] / exposure[j] : 0.0;
    }
  });
  // Keep the optimizer from discarding the computation.
  if (sink_value == -1.0) std::printf("impossible\n");
  return per_rep;
}

/// Companion to the §IV-C timing claims: retained-sample throughput of the
/// query-side MH sampler, one chain vs K parallel chains on a pool of K
/// threads. Chains are independent, so the ideal speedup is K; the printed
/// ratio shows how close the engine gets on this machine.
void RunMultiChainThroughput(const BenchArgs& args) {
  Banner("Query sampling — single- vs multi-chain throughput");
  Rng rng(args.seed);
  const NodeId nodes = args.quick ? 1000 : 6000;
  const EdgeId edges = args.quick ? 2500 : 14000;
  const std::size_t samples = args.quick ? 512 : 2048;
  auto graph = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.95);
  const PointIcm model(graph, std::move(probs));
  const NodeId sink = nodes - 1;

  CsvWriter csv({"chains", "samples", "seconds", "samples_per_s", "speedup",
                 "rhat", "ess"});
  std::printf("%7s %8s | %10s %13s %8s | %7s %9s\n", "chains", "samples",
              "seconds", "samples/s", "speedup", "R-hat", "ESS");
  double base_rate = 0.0;
  for (std::size_t chains : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}}) {
    MultiChainOptions options;
    options.num_chains = chains;
    options.num_threads = chains;
    options.mh.burn_in = 0;
    options.mh.thinning = 50;
    auto engine = MultiChainSampler::Create(model, {}, options, args.seed);
    engine.status().CheckOK();
    engine->EstimateFlowProbability(0, sink, chains);  // warm up the pool
    WallTimer timer;
    const MultiChainEstimate est =
        engine->EstimateFlowProbability(0, sink, samples);
    const double seconds = timer.Seconds();
    const double rate = static_cast<double>(samples) / seconds;
    if (chains == 1) base_rate = rate;
    const double speedup = rate / base_rate;
    std::printf("%7zu %8zu | %10.4f %13.0f %7.2fx | %7.3f %9.1f\n", chains,
                samples, seconds, rate, speedup, est.diagnostics.rhat,
                est.diagnostics.ess);
    csv.AppendNumericRow({static_cast<double>(chains),
                          static_cast<double>(samples), seconds, rate,
                          speedup, est.diagnostics.rhat,
                          est.diagnostics.ess});
  }
  std::printf("shape: chains are independent, so throughput scales ~linearly "
              "until the pool runs out of cores (this machine reports %u).\n",
              std::thread::hardware_concurrency());
  args.MaybeWriteCsv(csv, "fig6_multi_chain_throughput.csv");
}

int Run(const BenchArgs& args) {
  Banner("Fig. 6 — per-sample training cost, ours vs Goyal");
  Rng rng(args.seed);
  const std::vector<std::pair<std::size_t, std::size_t>> sizes =
      args.quick ? std::vector<std::pair<std::size_t, std::size_t>>{
                       {4, 2000}, {8, 10000}}
                 : std::vector<std::pair<std::size_t, std::size_t>>{
                       {4, 2000},  {4, 20000},  {8, 10000},
                       {8, 60000}, {12, 30000}, {12, 120000}};

  Series core{"core: ours vs goyal", 'c', {}, {}};
  Series total{"one sample + summarization", 't', {}, {}};
  Series amortized{"amortized over 1000 samples", 'a', {}, {}};
  CsvWriter csv({"parents", "objects", "goyal_core_s", "ours_core_s",
                 "summarize_s", "ours_total_one_sample_s",
                 "ours_amortized_s"});
  std::printf("%8s %8s | %12s %12s | %12s %14s %14s\n", "parents", "objects",
              "goyal core", "ours core", "summarize", "ours 1-sample",
              "ours amortized");
  for (const auto& [parents, objects] : sizes) {
    Rng case_rng = rng.Split();
    const DirectedGraph graph = StarFragment(parents);
    const auto sink = static_cast<NodeId>(parents);
    const UnattributedEvidence raw = SimulateRaw(parents, objects, case_rng);

    const double goyal_core = TimeGoyalRaw(graph, raw, sink, 3);

    WallTimer timer;
    const SinkSummary summary = BuildSinkSummary(graph, sink, raw);
    const double summarize = timer.Lap();

    // Ours, core: one posterior sweep == one retained sample at thinning 0.
    JointBayesOptions one;
    one.num_samples = 1;
    one.burn_in = 0;
    one.thinning = 0;
    one.adapt = false;
    const double ours_core = TimeReps(200, [&] {
      Rng sample_rng = case_rng.Split();
      FitJointBayes(summary, one, sample_rng).status().CheckOK();
    });

    // Amortized: 1000 retained samples in one chain.
    JointBayesOptions many;
    many.num_samples = 1000;
    many.burn_in = 0;
    many.thinning = 0;
    many.adapt = false;
    timer.Lap();  // discard the time the core-rep loop consumed
    {
      Rng sample_rng = case_rng.Split();
      FitJointBayes(summary, many, sample_rng).status().CheckOK();
    }
    const double ours_amortized = (timer.Lap() + summarize) / 1000.0;
    const double ours_total = ours_core + summarize;

    std::printf("%8zu %8zu | %12.6f %12.6f | %12.6f %14.6f %14.6f\n",
                parents, objects, goyal_core, ours_core, summarize,
                ours_total, ours_amortized);
    core.x.push_back(goyal_core);
    core.y.push_back(ours_core);
    total.x.push_back(goyal_core + summarize);
    total.y.push_back(ours_total);
    amortized.x.push_back(goyal_core + summarize);
    amortized.y.push_back(ours_amortized);
    csv.AppendNumericRow({static_cast<double>(parents),
                          static_cast<double>(objects), goyal_core,
                          ours_core, summarize, ours_total, ours_amortized});
  }
  std::printf("\n(a) core computation (x: goyal seconds, y: ours seconds)\n");
  std::printf("%s", RenderSeries({core}, 50, 12).c_str());
  std::printf("(b) including summarization: dots = one sample, crosses = "
              "amortized\n");
  std::printf("%s", RenderSeries({total, amortized}, 50, 12).c_str());
  std::printf(
      "paper shape: summarized per-sample cost is tiny once the summary is "
      "built (amortized points fall far below the one-sample line); the "
      "raw Goyal pass scales with objects, ours with unique "
      "characteristics.\n");
  args.MaybeWriteCsv(csv, "fig6_timing.csv");
  RunMultiChainThroughput(args);
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
