/// \file fig2_twitter_attributed.cc
/// \brief Figure 2(a–d): bucket experiments on attributed Twitter evidence
/// (§IV-C).
///
/// Paper setup: betaICM trained from retweet evidence; 50 "interesting"
/// focus users; per focus a radius-1 or radius-2 ego subgraph; up to 100
/// test tweets per user; panels (c, d) additionally condition the MH chain
/// on 5 known flows per tweet. We run the same protocol on the Twitter
/// simulator (training logs + held-out test cascades from the same
/// ground-truth process — see DESIGN.md for the data substitution).

#include <cstdio>

#include "bench_util.h"
#include "core/mh_sampler.h"
#include "eval/ascii_plot.h"
#include "eval/bucket.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "learn/attributed.h"
#include "twitter/cascade_gen.h"
#include "twitter/interesting_users.h"
#include "twitter/retweet_parser.h"
#include "util/timer.h"

namespace infoflow::bench {
namespace {

struct Panel {
  const char* name;
  std::size_t radius;
  std::size_t known_flows;
};

int Run(const BenchArgs& args) {
  const NodeId kUsers = args.quick ? 150 : 400;
  const std::size_t kTrainMessages = args.quick ? 1500 : 6000;
  const std::size_t kFocusUsers = args.quick ? 8 : 50;
  const std::size_t kTweetsPerUser = args.quick ? 30 : 100;

  Banner("Fig. 2 — bucket experiments on attributed Twitter evidence");
  std::printf("users=%u train_messages=%zu focus_users=%zu tests/user=%zu\n",
              kUsers, kTrainMessages, kFocusUsers, kTweetsPerUser);

  // Ground-truth social process (substitute for the Choudhury crawl).
  // Sparse retweet rates match the paper's regime: multi-parent exposures
  // are rare, so single-parent attribution introduces little bias (§IV-C
  // discusses the residual low-end effect).
  Rng rng(args.seed);
  auto graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(kUsers, 3, 0.25, rng));
  const UserRegistry registry = UserRegistry::Sequential(kUsers);
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.02, 0.25);
  const PointIcm truth(graph, probs);

  // Raw logs -> §IV-B preprocessing -> attributed training.
  CascadeGenOptions gen_opt;
  gen_opt.num_messages = kTrainMessages;
  gen_opt.drop_original_prob = 0.15;
  WallTimer timer;
  auto generated = GenerateCascades(truth, registry, gen_opt, rng);
  generated.status().CheckOK();
  const ParseResult parsed = ParseRetweetLog(generated->log, registry);
  const AttributedEvidence evidence = parsed.ToEvidence(*graph);
  auto model = TrainBetaIcmFromAttributed(graph, evidence);
  model.status().CheckOK();
  std::printf(
      "pipeline: %zu raw tweets, %zu parsed messages (%llu originals "
      "recovered), trained in %.2f s\n",
      generated->log.size(), parsed.messages.size(),
      static_cast<unsigned long long>(parsed.recovered_originals),
      timer.Seconds());

  const auto interesting =
      SelectInterestingUsers(kUsers, evidence, kFocusUsers);
  const PointIcm expected = model->ExpectedIcm();

  const Panel panels[] = {{"(a) radius 1", 1, 0},
                          {"(b) radius 2", 2, 0},
                          {"(c) radius 1, 5 known flows", 1, 5},
                          {"(d) radius 2, 5 known flows", 2, 5}};
  int exit_code = 0;
  for (const Panel& panel : panels) {
    Banner(std::string("Fig. 2") + panel.name);
    BucketExperiment bucket;
    Rng panel_rng = rng.Split();
    for (NodeId focus : interesting) {
      const Subgraph ego = EgoSubgraph(*graph, focus, panel.radius);
      if (ego.graph.num_nodes() < 3) continue;
      auto ego_graph = std::make_shared<const DirectedGraph>(ego.graph);
      std::vector<double> learned(ego.graph.num_edges());
      std::vector<double> true_probs(ego.graph.num_edges());
      for (EdgeId e = 0; e < ego.graph.num_edges(); ++e) {
        learned[e] = expected.prob(ego.edge_to_parent[e]);
        true_probs[e] = truth.prob(ego.edge_to_parent[e]);
      }
      const PointIcm ego_model(ego_graph, learned);
      const PointIcm ego_truth(ego_graph, true_probs);
      const NodeId local_focus = ego.LocalNode(focus);
      MhOptions mh;
      mh.burn_in = 2500;
      mh.thinning = 10;

      if (panel.known_flows == 0) {
        // Unconditional panels amortize one chain per focus across every
        // sink (source-to-community flow), then score each held-out tweet
        // against a random sink.
        std::vector<NodeId> sinks;
        for (NodeId v = 0; v < ego.graph.num_nodes(); ++v) {
          if (v != local_focus) sinks.push_back(v);
        }
        auto sampler =
            MhSampler::Create(ego_model, {}, mh, panel_rng.Split());
        if (!sampler.ok()) continue;
        const auto estimates =
            sampler->EstimateCommunityFlow(local_focus, sinks, 1500);
        for (std::size_t t = 0; t < kTweetsPerUser; ++t) {
          const ActiveState state =
              ego_truth.SampleCascade({local_focus}, panel_rng);
          const auto pick =
              static_cast<std::size_t>(panel_rng.NextBounded(sinks.size()));
          bucket.Add(estimates[pick], state.IsNodeActive(sinks[pick]));
        }
        continue;
      }
      // Conditional panels: the conditions change per tweet, so each needs
      // its own chain (as in the paper).
      const std::size_t conditional_tweets = kTweetsPerUser / 4 + 1;
      for (std::size_t t = 0; t < conditional_tweets; ++t) {
        const ActiveState state =
            ego_truth.SampleCascade({local_focus}, panel_rng);
        auto sink = static_cast<NodeId>(
            panel_rng.NextBounded(ego.graph.num_nodes()));
        if (sink == local_focus) continue;
        const bool outcome = state.IsNodeActive(sink);
        FlowConditions conditions;
        for (NodeId v : state.active_nodes) {
          if (conditions.size() >= panel.known_flows) break;
          if (v == local_focus || v == sink) continue;
          conditions.push_back({local_focus, v, true});
        }
        auto sampler = MhSampler::Create(ego_model, conditions, mh,
                                         panel_rng.Split());
        if (!sampler.ok()) continue;  // conditions unsatisfiable under model
        const double estimate =
            sampler->EstimateFlowProbability(local_focus, sink, 600);
        bucket.Add(estimate, outcome);
      }
    }
    const BucketReport report = bucket.Analyze(30);
    std::printf("%s", RenderCalibration(report).c_str());
    const AccuracyReport all = ComputeAccuracy(bucket.pairs());
    const AccuracyReport middle = ComputeMiddleAccuracy(bucket.pairs());
    std::printf(
        "accuracy: NL(all)=%.4f Brier(all)=%.4f NL(mid)=%.4f "
        "Brier(mid)=%.4f\n",
        all.normalized_likelihood, all.brier, middle.normalized_likelihood,
        middle.brier);

    CsvWriter csv({"bin_lo", "bin_hi", "count", "positives", "mean_estimate",
                   "empirical_mean", "ci_lo", "ci_hi", "covered"});
    for (const BucketBin& bin : report.bins) {
      if (bin.count == 0) continue;
      csv.AppendNumericRow({bin.lo, bin.hi, static_cast<double>(bin.count),
                            static_cast<double>(bin.positives),
                            bin.mean_estimate, bin.empirical_mean, bin.ci_lo,
                            bin.ci_hi, bin.covered ? 1.0 : 0.0});
    }
    std::string file = "fig2_radius";
    file += std::to_string(panel.radius);
    file += panel.known_flows ? "_known5.csv" : ".csv";
    args.MaybeWriteCsv(csv, file);
    if (report.coverage < 0.5) exit_code = 1;
  }
  std::printf(
      "\npaper shape: estimates within empirical 95%% CIs for radius 1 and "
      "2, with and without 5 known flows; mild over-estimation at the low "
      "end for radius 1.\n");
  return exit_code;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
