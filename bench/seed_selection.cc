/// \file seed_selection.cc
/// \brief Seed-selection throughput: Monte-Carlo CELF (fresh cascade
/// simulations per gain, core/influence_max.h) vs the bank-sketch backend
/// (RR sketches inverted from retained pseudo-states, src/seedmax/).
///
/// Both solve the same §I marketing problem — pick k seeds maximizing
/// expected spread under the learned ICM — with the same lazy-greedy
/// search; only the spread estimator differs. The bank path's cost is one
/// bit-parallel sketch build per generation plus popcounts per gain, so it
/// amortizes across requests; the Monte-Carlo path pays thousands of fresh
/// cascades per gain evaluation. The headline ratio `speedup` (Monte-Carlo
/// seconds / bank seconds, sketch build *included*) is gated ≥ 10× in CI
/// on the quick shape.
///
/// Emits BENCH_seedsel.json (in --csv <dir> when given, else the working
/// directory): one record per seed-set size with both walls, the seed
/// sets, and both spread estimates, plus the host's hardware_threads and
/// whether the binary was built with metrics on (both shift absolute
/// numbers; the committed baseline records them for comparability).

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/influence_max.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "seedmax/rr_index.h"
#include "seedmax/seed_selector.h"
#include "serve/sample_bank.h"
#include "stats/rng.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace infoflow::bench {
namespace {

int Run(const BenchArgs& args) {
  Banner("Seed selection — Monte-Carlo CELF vs bank-sketch max-coverage");
  Rng rng(args.seed);
  const NodeId nodes = args.quick ? 200 : 600;
  const EdgeId edges = args.quick ? 600 : 2400;
  const std::size_t bank_states = args.quick ? 1024 : 4096;
  // The Monte-Carlo reference runs at the subsystem's default estimator
  // budget (InfluenceMaxOptions::simulations, also the CLI default) in
  // both modes — thinning it would flatter neither side, just change the
  // question.
  const std::size_t simulations = 500;
  const std::vector<std::size_t> seed_counts =
      args.quick ? std::vector<std::size_t>{5, 10}
                 : std::vector<std::size_t>{5, 10, 20};
  const int reps = args.quick ? 2 : 3;

  auto graph = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(nodes, edges, rng));
  // Supercritical probabilities (mean branching factor ≈ 1): cascades
  // reach a sizable fraction of the graph, which is the regime where seed
  // selection matters — and where Monte-Carlo spread estimation pays
  // O(spread) per cascade while the sketch path still pays one popcount
  // per posting.
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.1, 0.6);
  const PointIcm model(graph, probs);

  serve::BankOptions bank_options;
  bank_options.num_states = bank_states;
  bank_options.chain.num_chains = 4;
  bank_options.chain.mh.burn_in = 4 * graph->num_edges();
  bank_options.chain.mh.thinning =
      std::max<std::size_t>(8, graph->num_edges() / 8);
  WallTimer warmup;
  auto bank = serve::SampleBank::Create(model, bank_options, args.seed);
  if (!bank.ok()) {
    std::fprintf(stderr, "bank: %s\n", bank.status().ToString().c_str());
    return 1;
  }
  const auto generation = bank->Acquire();
  std::printf("bank: %zu rows in %.1f ms; graph: %u nodes / %u edges\n",
              generation->num_rows(), warmup.Millis(), nodes, edges);

  const seedmax::ReversedGraphView view =
      seedmax::ReversedGraphView::Build(bank->graph_ptr());

  // The production build is parallel across 64-row blocks (RrIndex always
  // passes its pool); the serial wall is timed once for the record so the
  // committed baseline shows the parallelization win.
  ThreadPool sketch_pool;
  double build_serial_s = 0.0;
  {
    std::shared_ptr<const seedmax::RrSketchSet> serial_set;
    build_serial_s = TimeBest(reps, [&] {
      auto built = seedmax::RrSketchSet::Build(view, *generation);
      if (built.ok()) {
        serial_set = std::make_shared<const seedmax::RrSketchSet>(
            std::move(*built));
      }
    });
    if (serial_set == nullptr) {
      std::fprintf(stderr, "serial sketch build failed\n");
      return 1;
    }
  }
  std::printf("sketch build (serial reference): %.3f s\n", build_serial_s);

  CsvWriter csv({"k", "mc_s", "sketch_build_s", "sketch_select_s",
                 "speedup", "mc_spread", "sketch_spread"});
  JsonValue::Array records;
  std::printf("%4s | %10s | %10s %10s | %8s | %10s %10s\n", "k", "mc s",
              "build s", "select s", "speedup", "mc spread", "rr spread");
  for (const std::size_t k : seed_counts) {
    InfluenceMaxOptions mc_options;
    mc_options.num_seeds = k;
    mc_options.simulations = simulations;
    InfluenceMaxResult mc;
    const double mc_s = TimeBest(reps, [&] {
      Rng mc_rng(args.seed + k);
      auto result = MaximizeInfluence(model, mc_options, mc_rng);
      if (result.ok()) mc = std::move(*result);
    });
    if (mc.seeds.size() != k) {
      std::fprintf(stderr, "monte-carlo CELF failed at k=%zu\n", k);
      return 1;
    }

    // The sketch build is timed inside the loop (and counted against the
    // bank path) even though a serving daemon amortizes it across
    // requests: the gated ratio is the conservative cold-cache one.
    std::shared_ptr<const seedmax::RrSketchSet> sketches;
    seedmax::RrBuildOptions build_options;
    build_options.pool = &sketch_pool;
    const double build_s = TimeBest(reps, [&] {
      auto built = seedmax::RrSketchSet::Build(view, *generation,
                                               build_options);
      if (built.ok()) {
        sketches = std::make_shared<const seedmax::RrSketchSet>(
            std::move(*built));
      }
    });
    if (sketches == nullptr) {
      std::fprintf(stderr, "sketch build failed at k=%zu\n", k);
      return 1;
    }
    seedmax::SeedMaxOptions options;
    options.num_seeds = k;
    seedmax::SeedMaxResult banked;
    const double select_s = TimeBest(reps, [&] {
      auto result = seedmax::SelectSeeds(*sketches, options);
      if (result.ok()) banked = std::move(*result);
    });
    if (banked.picks.size() != k) {
      std::fprintf(stderr, "sketch selection failed at k=%zu\n", k);
      return 1;
    }

    const double mc_spread = mc.expected_spread.back();
    const double speedup = mc_s / (build_s + select_s);
    std::printf("%4zu | %10.3f | %10.3f %10.3f | %7.1fx | %10.2f %10.2f\n",
                k, mc_s, build_s, select_s, speedup, mc_spread,
                banked.spread);
    csv.AppendNumericRow({static_cast<double>(k), mc_s, build_s, select_s,
                          speedup, mc_spread, banked.spread});

    JsonValue::Object record;
    record["k"] = static_cast<double>(k);
    record["mc_s"] = mc_s;
    record["mc_evaluations"] = static_cast<double>(mc.evaluations);
    record["sketch_build_s"] = build_s;
    record["sketch_select_s"] = select_s;
    record["sketch_evaluations"] = static_cast<double>(banked.evaluations);
    record["prune_hits"] = static_cast<double>(banked.prune_hits);
    record["speedup"] = speedup;
    record["mc_spread"] = mc_spread;
    record["sketch_spread"] = banked.spread;
    record["sketch_mcse"] = banked.mcse;
    JsonValue::Array mc_seeds;
    for (NodeId s : mc.seeds) mc_seeds.push_back(static_cast<double>(s));
    record["mc_seeds"] = std::move(mc_seeds);
    JsonValue::Array rr_seeds;
    for (NodeId s : banked.seeds()) {
      rr_seeds.push_back(static_cast<double>(s));
    }
    record["sketch_seeds"] = std::move(rr_seeds);
    records.push_back(JsonValue(std::move(record)));
  }

  JsonValue::Object doc;
  doc["bench"] = "seed_selection";
  doc["nodes"] = static_cast<double>(nodes);
  doc["edges"] = static_cast<double>(edges);
  doc["bank_rows"] = static_cast<double>(generation->num_rows());
  doc["sketch_build_serial_s"] = build_serial_s;
  doc["simulations"] = static_cast<double>(simulations);
  doc["quick"] = args.quick;
  doc["seed"] = static_cast<double>(args.seed);
  doc["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
  doc["metrics_enabled"] = obs::MetricsEnabled();
  doc["results"] = JsonValue(std::move(records));
  const std::string json = JsonValue(std::move(doc)).Dump();
  const std::string path = args.WantCsv()
                               ? args.csv_dir + "/BENCH_seedsel.json"
                               : "BENCH_seedsel.json";
  if (std::FILE* out = std::fopen(path.c_str(), "w")) {
    std::fputs(json.c_str(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("shape: Monte-Carlo pays simulations x candidates cascades "
              "per round; the bank path pays one bit-parallel sketch build "
              "per generation and popcounts per gain, so the gap widens "
              "with k and with request rate (a daemon builds once).\n");
  args.MaybeWriteCsv(csv, "seed_selection.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
