/// \file impact_analytic.cc
/// \brief The analytic backend vs MH + bank replay on the queries both can
/// answer (Eq. 5 flow, Fig. 4 impact), across three structural shapes:
///
///   tree   — random recursive tree: the analytic subtree-convolution
///            regime is exact, and `--backend auto` must route here. The
///            headline ratio `speedup_vs_bank` (bank replay seconds /
///            analytic seconds for the same unconditional flow batch) is
///            gated ≥ 20× in CI on the quick shape.
///   loopy  — the same tree plus a few shortcut edges, kept under the
///            feasibility scorer's excess-ratio budget: the loopy fallback
///            answers, and the record tracks its worst deviation from bank
///            replay in 3×MCSE units.
///   dense  — a uniform random graph far over the budget: the estimator
///            must refuse and `auto` must route to the bank (also gated).
///
/// Emits BENCH_analytic.json (in --csv <dir> when given, else the working
/// directory): one record per shape with both walls, the auto-routing
/// verdict, the analytic regime, and the deviation accounting, plus
/// hardware_threads and metrics_enabled (both shift absolute numbers; the
/// committed baseline records them for comparability).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/impact.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/sample_bank.h"
#include "stats/rng.h"
#include "util/json.h"
#include "util/string_util.h"

namespace infoflow::bench {
namespace {

struct Shape {
  std::string name;
  std::shared_ptr<const DirectedGraph> graph;
  std::vector<double> probs;
};

/// The tree everything else derives from: quick keeps CI fast, full is the
/// committed-baseline scale.
Shape TreeShape(const BenchArgs& args, Rng& rng) {
  const NodeId nodes = args.quick ? 400 : 2000;
  Shape shape;
  shape.name = "tree";
  shape.graph = std::make_shared<const DirectedGraph>(
      RandomTreeGraph(nodes, 8, rng));
  shape.probs.resize(shape.graph->num_edges());
  for (double& p : shape.probs) p = rng.Uniform(0.25, 0.75);
  return shape;
}

/// The tree plus shortcut edges: excess ratio ~0.08, comfortably inside
/// the loopy fallback's 0.25 budget but never tree-exact.
Shape LoopyShape(const Shape& tree, Rng& rng) {
  const auto n = static_cast<NodeId>(tree.graph->num_nodes());
  GraphBuilder builder(n);
  for (EdgeId e = 0; e < tree.graph->num_edges(); ++e) {
    const Edge& edge = tree.graph->edge(e);
    builder.AddEdge(edge.src, edge.dst).CheckOK();
  }
  std::size_t added = 0;
  const std::size_t extra = tree.graph->num_edges() / 12;
  while (added < extra) {
    const auto u = static_cast<NodeId>(rng.NextBounded(n));
    const auto v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (builder.AddEdgeIfAbsent(u, v)) ++added;
  }
  Shape shape;
  shape.name = "loopy";
  shape.graph = std::make_shared<const DirectedGraph>(
      std::move(builder).Build());
  shape.probs.resize(shape.graph->num_edges());
  for (double& p : shape.probs) p = rng.Uniform(0.2, 0.6);
  return shape;
}

Shape DenseShape(const BenchArgs& args, Rng& rng) {
  const NodeId nodes = args.quick ? 200 : 600;
  const EdgeId edges = args.quick ? 1200 : 4200;
  Shape shape;
  shape.name = "dense";
  shape.graph = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(nodes, edges, rng));
  shape.probs.resize(shape.graph->num_edges());
  for (double& p : shape.probs) p = rng.Uniform(0.1, 0.5);
  return shape;
}

int Run(const BenchArgs& args) {
  Banner("Analytic cascade-size backend vs MH + bank replay");
  Rng rng(args.seed);
  // The bank is serving-tier sized: replay cost scales with rows while
  // the analytic path's does not, so a toy bank would understate the very
  // gap the backend exists to close.
  const std::size_t bank_states = args.quick ? 16384 : 65536;
  const std::size_t num_queries = args.quick ? 64 : 256;
  const int reps = args.quick ? 3 : 5;
  const std::size_t impact_cascades = args.quick ? 20000 : 100000;

  std::vector<Shape> shapes;
  shapes.push_back(TreeShape(args, rng));
  shapes.push_back(LoopyShape(shapes.front(), rng));
  shapes.push_back(DenseShape(args, rng));

  CsvWriter csv({"shape", "bank_s", "analytic_s", "speedup_vs_bank",
                 "max_dev_mcse"});
  JsonValue::Array records;
  std::printf("%6s | %10s %10s | %8s | %9s | %8s | %s\n", "shape", "bank s",
              "analytic s", "speedup", "max dev", "regime", "auto routes to");
  for (const Shape& shape : shapes) {
    const PointIcm model(shape.graph, shape.probs);
    serve::BankOptions bank_options;
    bank_options.num_states = bank_states;
    bank_options.chain.num_chains = 4;
    bank_options.chain.mh.burn_in = 2 * shape.graph->num_edges();
    bank_options.chain.mh.thinning =
        std::max<std::size_t>(8, shape.graph->num_edges() / 16);
    WallTimer warmup;
    auto bank = serve::SampleBank::Create(model, bank_options, args.seed);
    if (!bank.ok()) {
      std::fprintf(stderr, "bank: %s\n", bank.status().ToString().c_str());
      return 1;
    }
    const auto generation = bank->Acquire();
    std::printf("%s: %zu rows in %.1f ms; %u nodes / %u edges\n",
                shape.name.c_str(), generation->num_rows(), warmup.Millis(),
                shape.graph->num_nodes(), shape.graph->num_edges());

    auto engine = serve::QueryEngine::Create(bank->graph_ptr(), {});
    if (!engine.ok()) {
      std::fprintf(stderr, "engine: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }

    // The same unconditional flow batch, answered by both backends. The
    // source is the tree root (node 0 in every shape), so the analytic
    // subgraph is the whole structure — the worst analytic case, not a
    // cherry-picked shallow one.
    Rng pick(args.seed + 7);
    std::vector<serve::QueryRequest> bank_batch;
    std::vector<serve::QueryRequest> analytic_batch;
    std::vector<serve::QueryRequest> auto_batch;
    for (std::size_t q = 0; q < num_queries; ++q) {
      serve::QueryRequest request;
      request.kind = serve::QueryKind::kFlow;
      request.sources = {0};
      request.sinks = {static_cast<NodeId>(
          1 + pick.NextBounded(shape.graph->num_nodes() - 1))};
      request.backend = serve::QueryBackend::kBank;
      bank_batch.push_back(request);
      request.backend = serve::QueryBackend::kAnalytic;
      analytic_batch.push_back(request);
      request.backend = serve::QueryBackend::kAuto;
      auto_batch.push_back(request);
    }

    std::vector<serve::QueryResult> bank_results;
    const double bank_s = TimeBest(reps, [&] {
      bank_results = engine->AnswerBatch(*generation, bank_batch);
    });

    std::vector<serve::QueryResult> analytic_results;
    const double analytic_s = TimeBest(reps, [&] {
      analytic_results = engine->AnswerBatch(*generation, analytic_batch);
    });
    const bool refused = !analytic_results.front().status.ok();
    std::string regime = "refused";
    double max_dev_mcse = 0.0;
    double speedup = 0.0;
    if (!refused) {
      regime = analytic::AnalyticMethodName(
          analytic_results.front().analytic_method);
      speedup = bank_s / analytic_s;
      for (std::size_t q = 0; q < num_queries; ++q) {
        const auto& exact = analytic_results[q].estimates[0];
        const auto& replay = bank_results[q].estimates[0];
        // Zero-hit sinks report MCSE 0; floor at the binomial zero-count
        // bound so rare events grade against ~1/rows, not infinity.
        const double mcse =
            std::max(replay.diagnostics.mcse,
                     1.0 / static_cast<double>(generation->num_rows()));
        max_dev_mcse = std::max(
            max_dev_mcse, std::abs(exact.value - replay.value) / mcse);
      }
    }

    // Where does `auto` actually route? One batch, majority verdict (it is
    // unanimous on these shapes — recorded per shape for the CI gate).
    const auto auto_results = engine->AnswerBatch(*generation, auto_batch);
    std::size_t analytic_routed = 0;
    for (const auto& result : auto_results) {
      if (result.status.ok() &&
          result.backend == serve::QueryBackend::kAnalytic) {
        ++analytic_routed;
      }
    }
    const std::string auto_backend =
        analytic_routed * 2 >= num_queries ? "analytic" : "bank";

    // Fig. 4's impact histogram through both paths (exact shapes only).
    double impact_analytic_s = 0.0;
    double impact_simulate_s = 0.0;
    auto impact = AnalyticImpact(model, 0);
    if (impact.ok()) {
      impact_analytic_s = TimeBest(reps, [&] {
        impact = AnalyticImpact(model, 0);
      });
      impact_simulate_s = TimeBest(1, [&] {
        Rng sim_rng(args.seed + 11);
        SimulateImpact(model, 0, impact_cascades, sim_rng);
      });
    }

    std::printf("%6s | %10.4f %10.4f | %7.1fx | %8.2f σ | %8s | %s\n",
                shape.name.c_str(), bank_s, analytic_s, speedup,
                max_dev_mcse, regime.c_str(), auto_backend.c_str());
    csv.AppendRow({shape.name, FormatDouble(bank_s, 6),
                   FormatDouble(analytic_s, 6), FormatDouble(speedup, 4),
                   FormatDouble(max_dev_mcse, 4)});

    JsonValue::Object record;
    record["shape"] = shape.name;
    record["nodes"] = static_cast<double>(shape.graph->num_nodes());
    record["edges"] = static_cast<double>(shape.graph->num_edges());
    record["bank_rows"] = static_cast<double>(generation->num_rows());
    record["num_queries"] = static_cast<double>(num_queries);
    record["bank_s"] = bank_s;
    record["analytic_s"] = analytic_s;
    record["analytic_refused"] = refused;
    record["analytic_method"] = regime;
    record["speedup_vs_bank"] = speedup;
    record["max_dev_mcse"] = max_dev_mcse;
    record["auto_backend"] = auto_backend;
    record["impact_analytic_s"] = impact_analytic_s;
    record["impact_simulate_s"] = impact_simulate_s;
    record["impact_cascades"] = static_cast<double>(impact_cascades);
    records.push_back(JsonValue(std::move(record)));
  }

  JsonValue::Object doc;
  doc["bench"] = "impact_analytic";
  doc["bank_states"] = static_cast<double>(bank_states);
  doc["quick"] = args.quick;
  doc["seed"] = static_cast<double>(args.seed);
  doc["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
  doc["metrics_enabled"] = obs::MetricsEnabled();
  doc["results"] = JsonValue(std::move(records));
  const std::string json = JsonValue(std::move(doc)).Dump();
  const std::string path = args.WantCsv()
                               ? args.csv_dir + "/BENCH_analytic.json"
                               : "BENCH_analytic.json";
  if (std::FILE* out = std::fopen(path.c_str(), "w")) {
    std::fputs(json.c_str(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("shape: bank replay pays O(rows) popcount scans per query; "
              "the analytic path pays one BFS plus per-node products, so "
              "the gap scales with the bank size — and vanishes to a "
              "refusal on dense multi-path structure.\n");
  args.MaybeWriteCsv(csv, "impact_analytic.csv");
  return 0;
}

}  // namespace
}  // namespace infoflow::bench

int main(int argc, char** argv) {
  return infoflow::bench::Run(infoflow::bench::ParseArgs(argc, argv));
}
