#include "util/timer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace infoflow {
namespace {

void SpinFor(std::chrono::milliseconds duration) {
  const auto until = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(WallTimer, SecondsGrowsMonotonically) {
  WallTimer timer;
  const double a = timer.Seconds();
  SpinFor(std::chrono::milliseconds(2));
  const double b = timer.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GT(b, a);
  // Millis and Seconds each read the clock, so allow a little skew.
  EXPECT_NEAR(timer.Millis() / 1e3, timer.Seconds(), 0.001);
}

TEST(WallTimer, LapBanksSegmentsAndRestartsTheRunningOne) {
  WallTimer timer;
  SpinFor(std::chrono::milliseconds(5));
  const double lap1 = timer.Lap();
  EXPECT_GE(lap1, 0.005);
  // The running segment restarted: Seconds() is now well below the lap.
  EXPECT_LT(timer.Seconds(), lap1);
  SpinFor(std::chrono::milliseconds(5));
  const double lap2 = timer.Lap();
  EXPECT_GE(lap2, 0.005);
  // TotalSeconds covers both banked laps plus the (tiny) running segment.
  EXPECT_GE(timer.TotalSeconds(), lap1 + lap2);
}

TEST(WallTimer, TotalSecondsIsUnaffectedByLapBoundaries) {
  WallTimer split;
  WallTimer whole;
  for (int i = 0; i < 3; ++i) {
    SpinFor(std::chrono::milliseconds(2));
    split.Lap();
  }
  const double split_total = split.TotalSeconds();
  const double whole_total = whole.TotalSeconds();
  // Both timers watched the same wall interval; laps only partition it.
  EXPECT_NEAR(split_total, whole_total, 0.05);
  EXPECT_GE(split_total, 0.006);
}

TEST(WallTimer, RestartDiscardsBankedLaps) {
  WallTimer timer;
  SpinFor(std::chrono::milliseconds(5));
  timer.Lap();
  timer.Restart();
  EXPECT_LT(timer.TotalSeconds(), 0.005);
}

}  // namespace
}  // namespace infoflow
