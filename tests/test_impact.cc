#include "core/impact.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Chain3() {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  return std::make_shared<const DirectedGraph>(std::move(b).Build());
}

TEST(ImpactDistribution, RecordGrowsAndTallies) {
  ImpactDistribution d;
  d.Record(0);
  d.Record(2);
  d.Record(2);
  ASSERT_EQ(d.counts.size(), 3u);
  EXPECT_EQ(d.counts[0], 1u);
  EXPECT_EQ(d.counts[1], 0u);
  EXPECT_EQ(d.counts[2], 2u);
  EXPECT_EQ(d.Total(), 3u);
  EXPECT_NEAR(d.Mean(), 4.0 / 3.0, 1e-12);
}

TEST(ImpactDistribution, EmptyMeanIsZero) {
  ImpactDistribution d;
  EXPECT_DOUBLE_EQ(d.Mean(), 0.0);
}

TEST(SimulateImpact, DeterministicChain) {
  PointIcm certain = PointIcm::Constant(Chain3(), 1.0);
  Rng rng(1);
  const auto d = SimulateImpact(certain, 0, 100, rng);
  EXPECT_EQ(d.Total(), 100u);
  EXPECT_DOUBLE_EQ(d.Mean(), 2.0);  // both downstream nodes always activate
}

TEST(SimulateImpact, MeanMatchesClosedForm) {
  // Chain with p, q: E[impact from 0] = p + pq.
  auto g = Chain3();
  PointIcm icm(g, {0.6, 0.5});
  Rng rng(2);
  const auto d = SimulateImpact(icm, 0, 60000, rng);
  EXPECT_NEAR(d.Mean(), 0.6 + 0.6 * 0.5, 0.01);
}

TEST(SimulateImpact, BetaIcmVariantAveragesParameterUncertainty) {
  auto g = Chain3();
  BetaIcm model(g, {6.0, 5.0}, {4.0, 5.0});  // means 0.6 and 0.5
  Rng rng(3);
  const auto d = SimulateImpact(model, 0, 60000, rng);
  // E[impact] = E[p] + E[p]E[q] by edge independence.
  EXPECT_NEAR(d.Mean(), 0.6 + 0.6 * 0.5, 0.02);
}

TEST(SimulateImpact, SinkSourceHasZeroImpact) {
  PointIcm icm = PointIcm::Constant(Chain3(), 1.0);
  Rng rng(4);
  const auto d = SimulateImpact(icm, 2, 50, rng);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.0);
}

}  // namespace
}  // namespace infoflow
