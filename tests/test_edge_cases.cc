/// \file test_edge_cases.cc
/// \brief Boundary behaviours across modules: degenerate graphs, frozen
/// chains, multi-source queries, and API misuse that must fail loudly.

#include <gtest/gtest.h>

#include <cmath>

#include "core/delay.h"
#include "core/exact_flow.h"
#include "core/mh_sampler.h"
#include "graph/generators.h"
#include "twitter/tweet.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

TEST(EdgeCases, EdgelessGraphSamplerIsFrozenButCorrect) {
  GraphBuilder b(2);
  PointIcm model(Share(std::move(b).Build()), {});
  auto sampler = MhSampler::Create(model, {}, MhOptions{}, Rng(1));
  ASSERT_TRUE(sampler.ok());
  EXPECT_FALSE(sampler->Step());
  EXPECT_DOUBLE_EQ(sampler->EstimateFlowProbability(0, 0, 10), 1.0);
  EXPECT_DOUBLE_EQ(sampler->EstimateFlowProbability(0, 1, 10), 0.0);
}

TEST(EdgeCases, SingleNodeGraph) {
  GraphBuilder b(1);
  PointIcm model(Share(std::move(b).Build()), {});
  EXPECT_DOUBLE_EQ(ExactFlowByEnumeration(model, 0, 0), 1.0);
  Rng rng(2);
  const ActiveState s = model.SampleCascade({0}, rng);
  EXPECT_EQ(s.active_nodes, (std::vector<NodeId>{0}));
}

TEST(EdgeCases, AllDeterministicEdgesConditionalChain) {
  // p=1 everywhere: the chain is frozen but conditions are satisfiable.
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  PointIcm model = PointIcm::Constant(Share(std::move(b).Build()), 1.0);
  auto sampler =
      MhSampler::Create(model, {{0, 2, true}}, MhOptions{}, Rng(3));
  ASSERT_TRUE(sampler.ok());
  EXPECT_DOUBLE_EQ(sampler->EstimateFlowProbability(0, 2, 50), 1.0);
  // A forbidden flow that p=1 edges force is unsatisfiable.
  auto impossible =
      MhSampler::Create(model, {{0, 2, false}}, MhOptions{}, Rng(4));
  EXPECT_FALSE(impossible.ok());
}

TEST(EdgeCases, MultiSourceCommunityFlowMatchesExactUnion) {
  // Pr[{a, b} ⤳ v] from the multi-source estimator must equal the exact
  // probability that a ⤳ v or b ⤳ v (one pseudo-state, shared edges).
  GraphBuilder b(4);
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  auto g = Share(std::move(b).Build());
  PointIcm model(g, {0.5, 0.4, 0.6});
  // Exact via enumeration with a two-source reachability indicator.
  double exact = 0.0;
  ReachabilityWorkspace ws(*g);
  for (int bits = 0; bits < 8; ++bits) {
    PseudoState x(3);
    double prob = 1.0;
    for (EdgeId e = 0; e < 3; ++e) {
      const bool active = (bits >> e) & 1;
      x[e] = active ? 1 : 0;
      prob *= active ? model.prob(e) : 1.0 - model.prob(e);
    }
    if (ws.RunUntil(*g, {0, 1}, x, 3)) exact += prob;
  }
  MhOptions opt;
  opt.burn_in = 1000;
  opt.thinning = 3;
  auto sampler = MhSampler::Create(model, {}, opt, Rng(5));
  ASSERT_TRUE(sampler.ok());
  const auto flows = sampler->EstimateCommunityFlowMulti({0, 1}, {3}, 40000);
  EXPECT_NEAR(flows[0], exact, 0.012);
}

TEST(EdgeCases, DelayedMultiSourceTakesEarliestArrival) {
  GraphBuilder b(3);
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  auto g = Share(std::move(b).Build());
  std::vector<EdgeDelay> delays(2);
  delays[g->FindEdge(0, 2)] = EdgeDelay::Constant(5.0);
  delays[g->FindEdge(1, 2)] = EdgeDelay::Constant(2.0);
  auto timed = DelayedIcm::Create(PointIcm::Constant(g, 1.0), delays);
  ASSERT_TRUE(timed.ok());
  Rng rng(6);
  const auto arrival = timed->SampleArrivalTimes({0, 1}, rng);
  EXPECT_DOUBLE_EQ(arrival[0], 0.0);
  EXPECT_DOUBLE_EQ(arrival[1], 0.0);
  EXPECT_DOUBLE_EQ(arrival[2], 2.0);  // via the faster source
}

TEST(EdgeCases, ConditionOnSelfFlowIsTautology) {
  GraphBuilder b(2);
  b.AddEdge(0, 1).CheckOK();
  PointIcm model(Share(std::move(b).Build()), {0.5});
  auto sampler =
      MhSampler::Create(model, {{0, 0, true}}, MhOptions{}, Rng(7));
  ASSERT_TRUE(sampler.ok());
  EXPECT_NEAR(sampler->EstimateFlowProbability(0, 1, 20000), 0.5, 0.01);
}

TEST(EdgeCases, ExcludeRecursionSelfCycleGraph) {
  // Two-node cycle: 0 <-> 1.
  GraphBuilder b(2);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 0).CheckOK();
  auto g = Share(std::move(b).Build());
  PointIcm model(g, {0.7, 0.9});
  EXPECT_NEAR(FlowByExcludeRecursion(model, 0, 1), 0.7, 1e-12);
  EXPECT_NEAR(ExactFlowByEnumeration(model, 0, 1), 0.7, 1e-12);
  EXPECT_NEAR(FlowByExcludeRecursion(model, 1, 0), 0.9, 1e-12);
}

TEST(EdgeCases, DispersionOnIsolatedSourceIsZero) {
  GraphBuilder b(3);
  b.AddEdge(1, 2).CheckOK();
  PointIcm model(Share(std::move(b).Build()), {0.9});
  auto sampler = MhSampler::Create(model, {}, MhOptions{}, Rng(8));
  ASSERT_TRUE(sampler.ok());
  for (std::uint32_t d : sampler->SampleDispersion(0, 200)) {
    EXPECT_EQ(d, 0u);
  }
}

TEST(EdgeCasesDeath, RegistryNameOutOfRange) {
  const UserRegistry registry = UserRegistry::Sequential(2);
  EXPECT_DEATH(registry.NameOf(2), "out of range");
}

TEST(EdgeCasesDeath, SamplerEndpointsOutOfRange) {
  GraphBuilder b(2);
  b.AddEdge(0, 1).CheckOK();
  PointIcm model(Share(std::move(b).Build()), {0.5});
  auto sampler = MhSampler::Create(model, {}, MhOptions{}, Rng(9));
  ASSERT_TRUE(sampler.ok());
  EXPECT_DEATH(sampler->EstimateFlowProbability(0, 7, 10), "CHECK failed");
}

}  // namespace
}  // namespace infoflow
