#include "graph/subgraph.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

// 0 -> 1 -> 2 -> 3 -> 4, 1 -> 3, 4 -> 0.
DirectedGraph Path() {
  GraphBuilder b(5);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  b.AddEdge(3, 4).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(4, 0).CheckOK();
  return std::move(b).Build();
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  DirectedGraph g = Path();
  Subgraph sub = InducedSubgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 0->1, 1->2
  EXPECT_TRUE(sub.graph.HasEdge(sub.LocalNode(0), sub.LocalNode(1)));
  EXPECT_TRUE(sub.graph.HasEdge(sub.LocalNode(1), sub.LocalNode(2)));
}

TEST(InducedSubgraph, NodeMappingsRoundTrip) {
  DirectedGraph g = Path();
  Subgraph sub = InducedSubgraph(g, {3, 1, 4});
  for (NodeId local = 0; local < sub.graph.num_nodes(); ++local) {
    EXPECT_EQ(sub.LocalNode(sub.node_to_parent[local]), local);
  }
  EXPECT_EQ(sub.LocalNode(0), kInvalidNode);
}

TEST(InducedSubgraph, EdgeMappingPointsToParentEdges) {
  DirectedGraph g = Path();
  Subgraph sub = InducedSubgraph(g, {1, 2, 3});
  ASSERT_EQ(sub.edge_to_parent.size(), sub.graph.num_edges());
  for (EdgeId e = 0; e < sub.graph.num_edges(); ++e) {
    const Edge local = sub.graph.edge(e);
    const Edge parent = g.edge(sub.edge_to_parent[e]);
    EXPECT_EQ(sub.node_to_parent[local.src], parent.src);
    EXPECT_EQ(sub.node_to_parent[local.dst], parent.dst);
  }
}

TEST(InducedSubgraph, IgnoresDuplicateNodes) {
  DirectedGraph g = Path();
  Subgraph sub = InducedSubgraph(g, {2, 2, 3, 2});
  EXPECT_EQ(sub.graph.num_nodes(), 2u);
}

TEST(EgoSubgraph, RadiusZeroIsJustFocus) {
  DirectedGraph g = Path();
  Subgraph sub = EgoSubgraph(g, 1, 0);
  EXPECT_EQ(sub.graph.num_nodes(), 1u);
  EXPECT_EQ(sub.node_to_parent[0], 1u);
}

TEST(EgoSubgraph, OutDirectionFollowsFlow) {
  DirectedGraph g = Path();
  Subgraph sub = EgoSubgraph(g, 1, 1, EgoDirection::kOut);
  // 1 reaches {2, 3} in one out-hop.
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_NE(sub.LocalNode(2), kInvalidNode);
  EXPECT_NE(sub.LocalNode(3), kInvalidNode);
  EXPECT_EQ(sub.LocalNode(0), kInvalidNode);
}

TEST(EgoSubgraph, InDirection) {
  DirectedGraph g = Path();
  Subgraph sub = EgoSubgraph(g, 3, 1, EgoDirection::kIn);
  // 3's in-neighbors: 2 and 1.
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_NE(sub.LocalNode(1), kInvalidNode);
  EXPECT_NE(sub.LocalNode(2), kInvalidNode);
}

TEST(EgoSubgraph, UndirectedBall) {
  DirectedGraph g = Path();
  Subgraph sub = EgoSubgraph(g, 0, 1, EgoDirection::kUndirected);
  // 0's neighbors in either direction: 1 (out) and 4 (in).
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_NE(sub.LocalNode(1), kInvalidNode);
  EXPECT_NE(sub.LocalNode(4), kInvalidNode);
}

TEST(EgoSubgraph, LargeRadiusCoversComponent) {
  DirectedGraph g = Path();
  Subgraph sub = EgoSubgraph(g, 0, 10, EgoDirection::kOut);
  EXPECT_EQ(sub.graph.num_nodes(), 5u);
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace infoflow
