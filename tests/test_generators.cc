#include "graph/generators.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

TEST(UniformRandomGraph, ExactEdgeCountSparse) {
  Rng rng(1);
  DirectedGraph g = UniformRandomGraph(50, 200, rng);
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_edges(), 200u);
}

TEST(UniformRandomGraph, ExactEdgeCountDense) {
  Rng rng(2);
  // 3*5 > 4*3=12 triggers the dense path (n=4 -> max 12 edges).
  DirectedGraph g = UniformRandomGraph(4, 11, rng);
  EXPECT_EQ(g.num_edges(), 11u);
}

TEST(UniformRandomGraph, FullyDense) {
  Rng rng(3);
  DirectedGraph g = UniformRandomGraph(5, 20, rng);
  EXPECT_EQ(g.num_edges(), 20u);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      if (u != v) {
        EXPECT_TRUE(g.HasEdge(u, v));
      }
    }
  }
}

TEST(UniformRandomGraph, NoSelfLoopsOrDuplicates) {
  Rng rng(4);
  DirectedGraph g = UniformRandomGraph(20, 100, rng);
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);
  // GraphBuilder already rejects duplicates; count is the proof.
  EXPECT_EQ(g.num_edges(), 100u);
}

TEST(UniformRandomGraph, DifferentSeedsDiffer) {
  Rng a(5), b(6);
  DirectedGraph ga = UniformRandomGraph(30, 60, a);
  DirectedGraph gb = UniformRandomGraph(30, 60, b);
  bool identical = ga.num_edges() == gb.num_edges();
  if (identical) {
    for (EdgeId e = 0; e < ga.num_edges(); ++e) {
      if (!(ga.edge(e) == gb.edge(e))) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(PreferentialAttachment, NodeAndEdgeCounts) {
  Rng rng(7);
  DirectedGraph g = PreferentialAttachmentGraph(200, 3, 0.0, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  // Node v >= 3 adds exactly 3 edges; earlier ones add min(k, v).
  EXPECT_EQ(g.num_edges(), 1u + 2u + 197u * 3u);
}

TEST(PreferentialAttachment, ReciprocityAddsBackEdges) {
  Rng rng(8);
  DirectedGraph g = PreferentialAttachmentGraph(100, 2, 1.0, rng);
  // With reciprocity 1, every forward edge has its reverse.
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(g.HasEdge(e.dst, e.src))
        << e.src << "->" << e.dst << " lacks a reciprocal";
  }
}

TEST(PreferentialAttachment, ProducesSkewedInDegrees) {
  Rng rng(9);
  DirectedGraph g = PreferentialAttachmentGraph(2000, 2, 0.0, rng);
  std::size_t max_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  // A heavy-tailed graph has hubs far above the mean in-degree (~2).
  EXPECT_GT(max_in, 20u);
}

TEST(StarFragment, Shape) {
  DirectedGraph g = StarFragment(3);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.InDegree(3), 3u);
  for (NodeId p = 0; p < 3; ++p) {
    EXPECT_TRUE(g.HasEdge(p, 3));
    EXPECT_EQ(g.InDegree(p), 0u);
  }
}

TEST(GeneratorsDeath, RejectsTooManyEdges) {
  Rng rng(10);
  EXPECT_DEATH(UniformRandomGraph(3, 7, rng), "max");
}

}  // namespace
}  // namespace infoflow
