#include "graph/batch_reachability.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/bit_transpose.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/reachability.h"
#include "stats/rng.h"

namespace infoflow {
namespace {

// 0 -> 1 -> 2 -> 3, plus 0 -> 3 shortcut and a cycle 3 -> 1 (the same
// fixture test_reachability.cc uses for the scalar workspace).
DirectedGraph Chain() {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  b.AddEdge(0, 3).CheckOK();
  b.AddEdge(3, 1).CheckOK();
  return std::move(b).Build();
}

TEST(BitTranspose, MatchesNaiveTransposeOnRandomMatrices) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::uint64_t m[64];
    std::uint64_t ref[64];
    for (auto& w : m) w = rng.NextU64();
    for (int i = 0; i < 64; ++i) ref[i] = m[i];
    Transpose64x64(m);
    for (int i = 0; i < 64; ++i) {
      for (int j = 0; j < 64; ++j) {
        ASSERT_EQ((m[j] >> i) & 1, (ref[i] >> j) & 1)
            << "trial " << trial << " element (" << i << ", " << j << ")";
      }
    }
    // Involution: transposing twice restores the input.
    Transpose64x64(m);
    for (int i = 0; i < 64; ++i) ASSERT_EQ(m[i], ref[i]);
  }
}

// Fills edge-major words (bit s of word e = edge e active in sample s) and
// the matching per-sample scalar activity vectors.
struct SampledBlock {
  std::vector<std::uint64_t> edge_words;
  // active[s][e] = edge e's activity in sample s.
  std::vector<std::vector<std::uint8_t>> active;
};

SampledBlock RandomBlock(const DirectedGraph& g, Rng& rng, double density) {
  SampledBlock block;
  block.edge_words.assign(g.num_edges(), 0);
  block.active.assign(64, std::vector<std::uint8_t>(g.num_edges(), 0));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    for (std::size_t s = 0; s < 64; ++s) {
      if (rng.Bernoulli(density)) {
        block.edge_words[e] |= std::uint64_t{1} << s;
        block.active[s][e] = 1;
      }
    }
  }
  return block;
}

TEST(BatchReachability, MatchesSixtyFourScalarRunsBitForBit) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const DirectedGraph g = UniformRandomGraph(30, 90, rng);
    const SampledBlock block = RandomBlock(g, rng, 0.25);
    BatchReachabilityWorkspace batch(g);
    ReachabilityWorkspace scalar(g);
    const std::vector<NodeId> sources{static_cast<NodeId>(trial % 30)};
    batch.Run(g, sources, block.edge_words.data());
    for (std::size_t s = 0; s < 64; ++s) {
      scalar.Run(g, sources, block.active[s]);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ((batch.ReachedMask(v) >> s) & 1,
                  scalar.IsReached(v) ? 1u : 0u)
            << "trial " << trial << " sample " << s << " node " << v;
      }
    }
  }
}

TEST(BatchReachability, MultiSourceMatchesScalar) {
  Rng rng(13);
  const DirectedGraph g = UniformRandomGraph(25, 70, rng);
  const SampledBlock block = RandomBlock(g, rng, 0.3);
  BatchReachabilityWorkspace batch(g);
  ReachabilityWorkspace scalar(g);
  const std::vector<NodeId> sources{3, 17, 24};
  batch.Run(g, sources, block.edge_words.data());
  for (std::size_t s = 0; s < 64; ++s) {
    scalar.Run(g, sources, block.active[s]);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ((batch.ReachedMask(v) >> s) & 1,
                scalar.IsReached(v) ? 1u : 0u);
    }
  }
}

TEST(BatchReachability, LaneMaskConfinesPropagation) {
  Rng rng(17);
  const DirectedGraph g = UniformRandomGraph(20, 60, rng);
  const SampledBlock block = RandomBlock(g, rng, 0.4);
  const std::uint64_t lane_mask = 0x00FF00FF00FF00FFULL;
  BatchReachabilityWorkspace batch(g);
  ReachabilityWorkspace scalar(g);
  batch.Run(g, {0}, block.edge_words.data(), lane_mask);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Dead lanes stay dead everywhere.
    EXPECT_EQ(batch.ReachedMask(v) & ~lane_mask, 0u);
  }
  for (std::size_t s = 0; s < 64; ++s) {
    if (((lane_mask >> s) & 1) == 0) continue;
    scalar.Run(g, {0}, block.active[s]);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ((batch.ReachedMask(v) >> s) & 1,
                scalar.IsReached(v) ? 1u : 0u);
    }
  }
}

TEST(BatchReachability, RunUntilMatchesFullRunOnTarget) {
  Rng rng(19);
  for (int trial = 0; trial < 8; ++trial) {
    const DirectedGraph g = UniformRandomGraph(30, 80, rng);
    const SampledBlock block = RandomBlock(g, rng, 0.2);
    const NodeId target = static_cast<NodeId>((trial * 7 + 1) % 30);
    BatchReachabilityWorkspace full(g);
    BatchReachabilityWorkspace early(g);
    full.Run(g, {0}, block.edge_words.data());
    const std::uint64_t hits =
        early.RunUntil(g, {0}, block.edge_words.data(), target);
    EXPECT_EQ(hits, full.ReachedMask(target)) << "trial " << trial;
  }
}

TEST(BatchReachability, RunUntilSaturatesImmediatelyWhenTargetIsSource) {
  const DirectedGraph g = Chain();
  std::vector<std::uint64_t> none(g.num_edges(), 0);
  BatchReachabilityWorkspace ws(g);
  const std::uint64_t lane_mask = 0x5555555555555555ULL;
  EXPECT_EQ(ws.RunUntil(g, {2}, none.data(), 2, lane_mask), lane_mask);
  // The skipped run must not leak worklist state into the next one.
  std::vector<std::uint64_t> all(g.num_edges(), ~std::uint64_t{0});
  EXPECT_EQ(ws.RunUntil(g, {0}, all.data(), 3), ~std::uint64_t{0});
}

TEST(BatchReachability, NoStateLeaksBetweenReusedRuns) {
  const DirectedGraph g = Chain();
  std::vector<std::uint64_t> all(g.num_edges(), ~std::uint64_t{0});
  std::vector<std::uint64_t> none(g.num_edges(), 0);
  BatchReachabilityWorkspace ws(g);
  // Alternate saturating and empty runs on one workspace: the empty run
  // must never see the previous run's masks (the workspace re-zeroes its
  // touched set instead of stamping, so any missed node would leak a stale
  // "reached in all 64 samples" here).
  for (int i = 0; i < 8; ++i) {
    ws.Run(g, {0}, all.data());
    ASSERT_EQ(ws.ReachedMask(3), ~std::uint64_t{0});
    ASSERT_EQ(ws.TouchedNodes().size(), 4u);
    ws.Run(g, {2}, none.data());
    EXPECT_EQ(ws.ReachedMask(2), ~std::uint64_t{0});
    EXPECT_EQ(ws.ReachedMask(3), 0u);
    EXPECT_EQ(ws.ReachedMask(0), 0u);
    ASSERT_EQ(ws.TouchedNodes().size(), 1u);
    // Early-exit runs must also reset cleanly.
    ws.RunUntil(g, {0}, all.data(), 0);
    EXPECT_EQ(ws.ReachedMask(0), ~std::uint64_t{0});
    ws.Run(g, {1}, none.data());
    EXPECT_EQ(ws.ReachedMask(3), 0u);
  }
}

TEST(BatchReachability, IncrementalMatchesOneShotRun) {
  Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    const DirectedGraph g = UniformRandomGraph(30, 90, rng);
    const SampledBlock block = RandomBlock(g, rng, 0.25);
    const std::vector<NodeId> sources{static_cast<NodeId>(trial % 30),
                                      static_cast<NodeId>((trial * 7) % 30)};
    BatchReachabilityWorkspace oneshot(g);
    oneshot.Run(g, sources, block.edge_words.data());
    BatchReachabilityWorkspace inc(g);
    inc.Begin(g);
    for (const NodeId s : sources) inc.Seed(s, ~std::uint64_t{0});
    inc.Propagate(block.edge_words.data());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(inc.ReachedMask(v), oneshot.ReachedMask(v))
          << "trial " << trial << " node " << v;
    }
    ASSERT_EQ(inc.TouchedNodes(), oneshot.TouchedNodes()) << "trial " << trial;
  }
}

TEST(BatchReachability, InterleavedSeedsReachTheJointFixpoint) {
  // Seeding in several rounds with a Propagate between each — the sharded
  // router's cut-edge exchange pattern — must land on the same fixpoint as
  // one Run with all seeds, including when later seeds only add lanes a
  // node already partially holds.
  Rng rng(37);
  for (int trial = 0; trial < 8; ++trial) {
    const DirectedGraph g = UniformRandomGraph(30, 90, rng);
    const SampledBlock block = RandomBlock(g, rng, 0.25);
    const NodeId a = static_cast<NodeId>(trial % 30);
    const NodeId b = static_cast<NodeId>((trial * 11 + 3) % 30);
    BatchReachabilityWorkspace oneshot(g);
    oneshot.Run(g, {a, b}, block.edge_words.data());
    BatchReachabilityWorkspace inc(g);
    inc.Begin(g);
    inc.Seed(a, 0x00000000FFFFFFFFull);
    inc.Propagate(block.edge_words.data());
    inc.Seed(b, ~std::uint64_t{0});
    inc.Propagate(block.edge_words.data());
    inc.Seed(a, ~std::uint64_t{0});  // upgrade the first seed's lanes
    inc.Propagate(block.edge_words.data());
    // Re-seeding lanes a node already holds is a no-op.
    inc.Seed(b, 0xFF);
    inc.Propagate(block.edge_words.data());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(inc.ReachedMask(v), oneshot.ReachedMask(v))
          << "trial " << trial << " node " << v;
    }
    ASSERT_EQ(inc.TouchedNodes(), oneshot.TouchedNodes()) << "trial " << trial;
  }
}

TEST(BatchReachability, BeginResetsAnAbandonedSeedSequence) {
  const DirectedGraph g = Chain();
  std::vector<std::uint64_t> none(g.num_edges(), 0);
  BatchReachabilityWorkspace ws(g);
  // Seed without propagating, then start over: the abandoned seeds must not
  // leak into the next run's masks or frontier.
  ws.Begin(g);
  ws.Seed(0, ~std::uint64_t{0});
  ws.Seed(3, ~std::uint64_t{0});
  ws.Propagate(none.data());
  ws.Begin(g);
  ws.Seed(2, 0b1);
  ws.Propagate(none.data());
  EXPECT_EQ(ws.ReachedMask(0), 0u);
  EXPECT_EQ(ws.ReachedMask(3), 0u);
  EXPECT_EQ(ws.ReachedMask(2), 0b1u);
  ASSERT_EQ(ws.TouchedNodes().size(), 1u);
  // A normal Run after incremental use starts clean too.
  std::vector<std::uint64_t> all(g.num_edges(), ~std::uint64_t{0});
  ws.Run(g, {1}, all.data());
  EXPECT_EQ(ws.ReachedMask(3), ~std::uint64_t{0});
  EXPECT_EQ(ws.ReachedMask(0), 0u);
}

TEST(BatchReachability, AccumulateReachedCountsTalliesSpreadPerLane) {
  const DirectedGraph g = Chain();
  // Lane 0: no edges. Lane 1: 0->1 only. Lane 2: 0->1, 1->2, 2->3.
  std::vector<std::uint64_t> words(g.num_edges(), 0);
  words[g.FindEdge(0, 1)] = 0b110;
  words[g.FindEdge(1, 2)] = 0b100;
  words[g.FindEdge(2, 3)] = 0b100;
  BatchReachabilityWorkspace ws(g);
  ws.Run(g, {0}, words.data(), 0b111);
  std::uint32_t counts[64] = {};
  ws.AccumulateReachedCounts(counts);
  EXPECT_EQ(counts[0], 1u);  // source only
  EXPECT_EQ(counts[1], 2u);  // {0, 1}
  EXPECT_EQ(counts[2], 4u);  // {0, 1, 2, 3}
  EXPECT_EQ(counts[3], 0u);  // dead lane
}

TEST(BatchReachability, TouchedNodesCoverExactlyTheReachedSet) {
  Rng rng(23);
  const DirectedGraph g = UniformRandomGraph(40, 100, rng);
  const SampledBlock block = RandomBlock(g, rng, 0.15);
  BatchReachabilityWorkspace ws(g);
  ws.Run(g, {5}, block.edge_words.data());
  std::vector<bool> touched(g.num_nodes(), false);
  for (NodeId v : ws.TouchedNodes()) {
    EXPECT_NE(ws.ReachedMask(v), 0u);
    touched[v] = true;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!touched[v]) {
      EXPECT_EQ(ws.ReachedMask(v), 0u);
    }
  }
}

}  // namespace
}  // namespace infoflow
