#include <gtest/gtest.h>

#include "twitter/cascade_gen.h"
#include "twitter/interesting_users.h"
#include "twitter/retweet_parser.h"
#include "twitter/tag_gen.h"
#include "twitter/tweet.h"

#include "graph/generators.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

TEST(UserRegistry, SequentialNamesRoundTrip) {
  const UserRegistry reg = UserRegistry::Sequential(5);
  EXPECT_EQ(reg.size(), 5u);
  EXPECT_EQ(reg.NameOf(0), "user0");
  EXPECT_EQ(reg.NameOf(4), "user4");
  EXPECT_EQ(reg.IdOf("user3"), 3u);
  EXPECT_EQ(reg.IdOf("user5"), kInvalidNode);
  EXPECT_EQ(reg.IdOf("bob"), kInvalidNode);
  EXPECT_EQ(reg.IdOf("userX"), kInvalidNode);
}

TEST(SplitRetweetChain, PlainTweetHasNoMentions) {
  std::vector<std::string> mentions;
  std::string base;
  SplitRetweetChain("just some news #tag", &mentions, &base);
  EXPECT_TRUE(mentions.empty());
  EXPECT_EQ(base, "just some news #tag");
}

TEST(SplitRetweetChain, SingleLevel) {
  std::vector<std::string> mentions;
  std::string base;
  SplitRetweetChain("RT @alice: hello world", &mentions, &base);
  EXPECT_EQ(mentions, (std::vector<std::string>{"alice"}));
  EXPECT_EQ(base, "hello world");
}

TEST(SplitRetweetChain, NestedChainOutermostFirst) {
  std::vector<std::string> mentions;
  std::string base;
  SplitRetweetChain("RT @a: RT @b_2: RT @c: core text", &mentions, &base);
  EXPECT_EQ(mentions, (std::vector<std::string>{"a", "b_2", "c"}));
  EXPECT_EQ(base, "core text");
}

TEST(SplitRetweetChain, MalformedPrefixBecomesBase) {
  std::vector<std::string> mentions;
  std::string base;
  SplitRetweetChain("RT @no_colon oops", &mentions, &base);
  EXPECT_TRUE(mentions.empty());
  EXPECT_EQ(base, "RT @no_colon oops");
}

class CascadePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng graph_rng(10);
    graph_ = Share(PreferentialAttachmentGraph(60, 3, 0.3, graph_rng));
    registry_ = UserRegistry::Sequential(60);
    Rng prob_rng(11);
    std::vector<double> probs(graph_->num_edges());
    for (double& p : probs) p = prob_rng.Uniform(0.2, 0.7);
    truth_ = std::make_unique<PointIcm>(graph_, probs);
  }

  std::shared_ptr<const DirectedGraph> graph_;
  UserRegistry registry_ = UserRegistry::Sequential(0);
  std::unique_ptr<PointIcm> truth_;
};

TEST_F(CascadePipelineTest, GeneratorProducesValidGroundTruth) {
  CascadeGenOptions opt;
  opt.num_messages = 200;
  opt.drop_original_prob = 0.2;
  Rng rng(12);
  auto gen = GenerateCascades(*truth_, registry_, opt, rng);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->ground_truth.objects.size(), 200u);
  EXPECT_TRUE(
      ValidateAttributedEvidence(*graph_, gen->ground_truth).ok());
  // The log is time sorted.
  for (std::size_t i = 1; i < gen->log.size(); ++i) {
    EXPECT_LE(gen->log[i - 1].time, gen->log[i].time);
  }
}

TEST_F(CascadePipelineTest, DropsReduceLogSize) {
  CascadeGenOptions keep_all;
  keep_all.num_messages = 150;
  keep_all.drop_original_prob = 0.0;
  CascadeGenOptions drop_many = keep_all;
  drop_many.drop_original_prob = 0.5;
  Rng rng_a(13), rng_b(13);
  auto full = GenerateCascades(*truth_, registry_, keep_all, rng_a);
  auto dropped = GenerateCascades(*truth_, registry_, drop_many, rng_b);
  ASSERT_TRUE(full.ok() && dropped.ok());
  EXPECT_EQ(full->dropped_originals, 0u);
  EXPECT_GT(dropped->dropped_originals, 30u);
  // Each run's log must fall short of its own ground truth by exactly the
  // records it dropped (RNG streams differ between runs, so comparing the
  // two logs directly would be meaningless).
  auto truth_activations = [](const GeneratedCascades& gen) {
    std::size_t total = 0;
    for (const auto& obj : gen.ground_truth.objects) {
      total += obj.active_nodes.size();
    }
    return total;
  };
  EXPECT_EQ(full->log.size(), truth_activations(*full));
  EXPECT_EQ(dropped->log.size() + dropped->dropped_originals +
                dropped->dropped_retweets,
            truth_activations(*dropped));
}

TEST_F(CascadePipelineTest, ParserReconstructsExactlyWithoutDrops) {
  CascadeGenOptions opt;
  opt.num_messages = 120;
  opt.drop_original_prob = 0.0;
  opt.drop_retweet_prob = 0.0;
  Rng rng(14);
  auto gen = GenerateCascades(*truth_, registry_, opt, rng);
  ASSERT_TRUE(gen.ok());
  const ParseResult parsed = ParseRetweetLog(gen->log, registry_);
  EXPECT_EQ(parsed.messages.size(), 120u);
  EXPECT_EQ(parsed.recovered_originals, 0u);
  EXPECT_EQ(parsed.unresolved_mentions, 0u);
  const AttributedEvidence evidence = parsed.ToEvidence(*graph_);
  ASSERT_TRUE(ValidateAttributedEvidence(*graph_, evidence).ok());
  ASSERT_EQ(evidence.objects.size(), gen->ground_truth.objects.size());
  // Compare as multisets of canonicalized objects: parsed messages come
  // out keyed by content, not in generation order.
  auto canonicalize = [](const AttributedEvidence& ev) {
    std::vector<std::string> keys;
    for (AttributedObject obj : ev.objects) {
      std::sort(obj.active_nodes.begin(), obj.active_nodes.end());
      std::sort(obj.active_edges.begin(), obj.active_edges.end());
      std::string key;
      auto append = [&key](char tag, std::uint64_t id) {
        key += tag;
        key += std::to_string(id);
      };
      for (NodeId s : obj.sources) append('s', s);
      for (NodeId v : obj.active_nodes) append('n', v);
      for (EdgeId e : obj.active_edges) append('e', e);
      keys.push_back(std::move(key));
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  EXPECT_EQ(canonicalize(evidence), canonicalize(gen->ground_truth));
}

TEST_F(CascadePipelineTest, ParserRecoversDroppedOriginals) {
  CascadeGenOptions opt;
  opt.num_messages = 200;
  opt.drop_original_prob = 0.4;
  Rng rng(15);
  auto gen = GenerateCascades(*truth_, registry_, opt, rng);
  ASSERT_TRUE(gen.ok());
  const ParseResult parsed = ParseRetweetLog(gen->log, registry_);
  // Messages whose original was dropped AND that had at least one retweet
  // must be recovered via the RT chain (those with zero retweets vanish
  // entirely, like in the real crawl).
  EXPECT_GT(parsed.recovered_originals, 0u);
  // Every recovered message still has a well-formed evidence object.
  const AttributedEvidence evidence = parsed.ToEvidence(*graph_);
  EXPECT_TRUE(ValidateAttributedEvidence(*graph_, evidence).ok());
}

TEST_F(CascadePipelineTest, InferredGraphIsSubsetOfTruth) {
  CascadeGenOptions opt;
  opt.num_messages = 300;
  Rng rng(16);
  auto gen = GenerateCascades(*truth_, registry_, opt, rng);
  ASSERT_TRUE(gen.ok());
  const ParseResult parsed = ParseRetweetLog(gen->log, registry_);
  auto inferred = parsed.InferGraph(60);
  EXPECT_GT(inferred->num_edges(), 0u);
  for (const Edge& e : inferred->edges()) {
    EXPECT_TRUE(graph_->HasEdge(e.src, e.dst))
        << "inferred edge " << e.src << "->" << e.dst
        << " absent from the true follow graph";
  }
}

TEST_F(CascadePipelineTest, InterestingUsersAreProlificSources) {
  CascadeGenOptions opt;
  opt.num_messages = 400;
  Rng rng(17);
  auto gen = GenerateCascades(*truth_, registry_, opt, rng);
  ASSERT_TRUE(gen.ok());
  const auto interesting =
      SelectInterestingUsers(60, gen->ground_truth, 5);
  ASSERT_LE(interesting.size(), 5u);
  ASSERT_FALSE(interesting.empty());
  const auto activity = TallyUserActivity(60, gen->ground_truth);
  // Every selected user outranks every unselected user.
  double min_selected = 1e18;
  for (NodeId u : interesting) {
    min_selected = std::min(min_selected, activity[u].Score());
  }
  std::size_t better = 0;
  for (const auto& a : activity) {
    if (a.Score() > min_selected) ++better;
  }
  EXPECT_LE(better, interesting.size());
}

TEST(TagNetwork, AugmentPreservesBaseEdgeIds) {
  Rng rng(20);
  auto g = Share(UniformRandomGraph(30, 90, rng));
  Rng prob_rng(21);
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = prob_rng.Uniform(0.1, 0.6);
  PointIcm base(g, probs);
  const TagNetwork network = AugmentWithOmnipotent(base);
  EXPECT_EQ(network.omnipotent, 30u);
  EXPECT_EQ(network.graph->num_nodes(), 31u);
  EXPECT_EQ(network.graph->num_edges(), 90u + 30u);
  for (EdgeId e = 0; e < 90; ++e) {
    EXPECT_EQ(network.graph->edge(e), g->edge(e));
    EXPECT_DOUBLE_EQ(network.in_network_probs[e], probs[e]);
  }
  EXPECT_EQ(network.graph->OutDegree(network.omnipotent), 30u);
}

TEST(TagNetwork, GroundTruthSetsOmnipotentEdges) {
  Rng rng(22);
  auto g = Share(UniformRandomGraph(10, 20, rng));
  PointIcm base = PointIcm::Constant(g, 0.5);
  const TagNetwork network = AugmentWithOmnipotent(base);
  const PointIcm truth = network.GroundTruth(0.01);
  for (EdgeId e : network.graph->OutEdges(network.omnipotent)) {
    EXPECT_DOUBLE_EQ(truth.prob(e), 0.01);
  }
  EXPECT_DOUBLE_EQ(truth.prob(0), 0.5);
}

TEST(TagGen, TracesStartWithOmnipotentAndRespectTimes) {
  Rng rng(23);
  auto g = Share(UniformRandomGraph(40, 160, rng));
  PointIcm base = PointIcm::Constant(g, 0.3);
  const TagNetwork network = AugmentWithOmnipotent(base);
  TagGenOptions opt;
  opt.num_objects = 50;
  Rng gen_rng(24);
  auto traces = GenerateTagTraces(network, TagKind::kUrl, opt, gen_rng);
  ASSERT_TRUE(traces.ok());
  EXPECT_EQ(traces->traces.size(), 50u);
  EXPECT_TRUE(
      ValidateUnattributedEvidence(*network.graph, *traces).ok());
  for (const ObjectTrace& trace : traces->traces) {
    ASSERT_FALSE(trace.activations.empty());
    EXPECT_EQ(trace.activations[0].node, network.omnipotent);
    EXPECT_DOUBLE_EQ(trace.activations[0].time, 0.0);
  }
}

TEST(TagGen, HashtagsSpreadWiderThanUrlsOnAverage) {
  Rng rng(25);
  auto g = Share(UniformRandomGraph(60, 240, rng));
  PointIcm base = PointIcm::Constant(g, 0.15);
  const TagNetwork network = AugmentWithOmnipotent(base);
  TagGenOptions opt;
  opt.num_objects = 150;
  Rng url_rng(26), tag_rng(26);
  auto urls = GenerateTagTraces(network, TagKind::kUrl, opt, url_rng);
  auto tags = GenerateTagTraces(network, TagKind::kHashtag, opt, tag_rng);
  ASSERT_TRUE(urls.ok() && tags.ok());
  auto mean_size = [](const UnattributedEvidence& ev) {
    double total = 0.0;
    for (const auto& t : ev.traces) {
      total += static_cast<double>(t.activations.size());
    }
    return total / static_cast<double>(ev.traces.size());
  };
  // Event-driven hashtags reach far more users than quiet URLs.
  EXPECT_GT(mean_size(*tags), mean_size(*urls) * 1.5);
}

TEST(TagGen, OptionValidation) {
  Rng rng(27);
  auto g = Share(UniformRandomGraph(5, 10, rng));
  const TagNetwork network = AugmentWithOmnipotent(PointIcm::Constant(g, 0.5));
  TagGenOptions opt;
  opt.num_objects = 0;
  Rng gen_rng(28);
  EXPECT_FALSE(GenerateTagTraces(network, TagKind::kUrl, opt, gen_rng).ok());
}

}  // namespace
}  // namespace infoflow
