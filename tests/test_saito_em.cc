#include "learn/saito_em.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.h"

namespace infoflow {
namespace {

SinkSummary MakeSummary(std::size_t k, std::vector<SummaryRow> rows) {
  static std::vector<DirectedGraph> keep_alive;
  keep_alive.push_back(StarFragment(k));
  const DirectedGraph& g = keep_alive.back();
  SinkSummary s;
  s.sink = static_cast<NodeId>(k);
  for (EdgeId e : g.InEdges(s.sink)) {
    s.parents.push_back(g.edge(e).src);
    s.parent_edges.push_back(e);
  }
  s.rows = std::move(rows);
  return s;
}

SummaryRow Row(std::vector<std::uint8_t> mask, std::uint64_t count,
               std::uint64_t leaks) {
  SummaryRow r;
  r.mask = std::move(mask);
  r.count = count;
  r.leaks = leaks;
  return r;
}

TEST(SaitoEm, SingleParentConvergesToFrequency) {
  SinkSummary s = MakeSummary(1, {Row({1}, 20, 8)});
  SaitoEmOptions opt;
  opt.random_init = false;
  Rng rng(1);
  const SaitoEmResult fit = FitSaitoEm(s, opt, rng);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.estimate[0], 0.4, 1e-6);
}

TEST(SaitoEm, LikelihoodNeverDecreases) {
  SinkSummary s = MakeSummary(
      3, {Row({1, 1, 0}, 100, 50), Row({0, 1, 1}, 100, 50),
          Row({1, 1, 1}, 100, 75), Row({1, 0, 0}, 40, 10)});
  Rng rng(2);
  std::vector<double> kappa{0.3, 0.6, 0.2};
  double prev = SaitoLogLikelihood(s, kappa);
  // Run EM one iteration at a time via max_iterations and check monotone
  // ascent of the observed-data likelihood.
  SaitoEmOptions opt;
  opt.random_init = false;
  for (std::size_t iters = 1; iters <= 30; ++iters) {
    opt.max_iterations = iters;
    Rng r(3);
    const SaitoEmResult fit = FitSaitoEm(s, opt, r);
    const double ll = fit.log_likelihood;
    EXPECT_GE(ll, prev - 1e-9) << "iteration " << iters;
    prev = ll;
  }
}

TEST(SaitoEm, RecoverySingleParentsFromMixedEvidence) {
  // Generating probabilities 0.7 / 0.3 with abundant singleton evidence.
  Rng gen(4);
  const double pa = 0.7, pb = 0.3;
  std::uint64_t la = 0, lb = 0, lab = 0;
  const std::uint64_t n = 3000;
  for (std::uint64_t i = 0; i < n; ++i) {
    la += gen.Bernoulli(pa) ? 1u : 0u;
    lb += gen.Bernoulli(pb) ? 1u : 0u;
    lab += gen.Bernoulli(1.0 - (1.0 - pa) * (1.0 - pb)) ? 1u : 0u;
  }
  SinkSummary s = MakeSummary(
      2, {Row({1, 0}, n, la), Row({0, 1}, n, lb), Row({1, 1}, n, lab)});
  SaitoEmOptions opt;
  Rng rng(5);
  const auto runs = FitSaitoEmRestarts(s, opt, 5, rng);
  const auto best = std::max_element(
      runs.begin(), runs.end(), [](const auto& a, const auto& b) {
        return a.log_likelihood < b.log_likelihood;
      });
  EXPECT_NEAR(best->estimate[0], pa, 0.05);
  EXPECT_NEAR(best->estimate[1], pb, 0.05);
}

TEST(SaitoEm, TableTwoEvidenceIsMultimodal) {
  // The Appendix example (Table II): restarts land on different local
  // maxima, so estimates of A's probability spread widely.
  SinkSummary s = MakeSummary(
      3, {Row({1, 1, 0}, 100, 50), Row({0, 1, 1}, 100, 50),
          Row({1, 1, 1}, 100, 75)});
  SaitoEmOptions opt;
  // The paper fixes Saito at 200 iterations (Fig. 11): on this likelihood
  // ridge EM crawls, so different restarts are still dispersed there.
  opt.max_iterations = 200;
  opt.tolerance = 0.0;
  Rng rng(6);
  const auto runs = FitSaitoEmRestarts(s, opt, 200, rng);
  double min_a = 1.0, max_a = 0.0, min_b = 1.0, max_b = 0.0;
  for (const auto& run : runs) {
    min_a = std::min(min_a, run.estimate[0]);
    max_a = std::max(max_a, run.estimate[0]);
    min_b = std::min(min_b, run.estimate[1]);
    max_b = std::max(max_b, run.estimate[1]);
  }
  // Different restarts disagree about the estimates: the stopped EM points
  // are smeared along the (1-a)(1-b)=const likelihood ridge. (Our
  // summarized EM rides the ridge faster than the paper's original
  // per-Bernoulli formulation, so the cloud is tighter than Fig. 11's, but
  // the initialization-dependence is still plain.)
  EXPECT_GT(max_b - min_b, 0.04);
  EXPECT_GT(max_a - min_a, 0.015);
  // And every run under-reports the spread a posterior would show: each is
  // a single point, none near B's posterior mass above ~0.2.
  for (const auto& run : runs) EXPECT_LT(run.estimate[1], 0.2);
}

TEST(SaitoEm, ZeroExposureParentKeepsInitialValue) {
  SinkSummary s = MakeSummary(2, {Row({1, 0}, 10, 5)});
  SaitoEmOptions opt;
  opt.random_init = false;
  Rng rng(7);
  const SaitoEmResult fit = FitSaitoEm(s, opt, rng);
  EXPECT_NEAR(fit.estimate[0], 0.5, 1e-6);
  EXPECT_DOUBLE_EQ(fit.estimate[1], 0.5);  // untouched initial value
}

TEST(SaitoEm, AllLeaksDriveEstimateToOne) {
  SinkSummary s = MakeSummary(1, {Row({1}, 50, 50)});
  SaitoEmOptions opt;
  opt.random_init = false;
  Rng rng(8);
  const SaitoEmResult fit = FitSaitoEm(s, opt, rng);
  EXPECT_GT(fit.estimate[0], 0.999);
}

TEST(SaitoEm, NoLeaksDriveEstimateToZero) {
  SinkSummary s = MakeSummary(1, {Row({1}, 50, 0)});
  SaitoEmOptions opt;
  opt.random_init = false;
  Rng rng(9);
  const SaitoEmResult fit = FitSaitoEm(s, opt, rng);
  EXPECT_LT(fit.estimate[0], 1e-6);
}

TEST(SaitoEm, EmptySummaryConverges) {
  SinkSummary s = MakeSummary(2, {});
  SaitoEmOptions opt;
  opt.random_init = false;
  Rng rng(10);
  const SaitoEmResult fit = FitSaitoEm(s, opt, rng);
  EXPECT_TRUE(fit.converged);
}

TEST(SaitoEm, IterationCapRespected) {
  SinkSummary s = MakeSummary(
      3, {Row({1, 1, 0}, 100, 50), Row({0, 1, 1}, 100, 50),
          Row({1, 1, 1}, 100, 75)});
  SaitoEmOptions opt;
  opt.max_iterations = 3;
  opt.tolerance = 0.0;  // never converge by tolerance
  Rng rng(11);
  const SaitoEmResult fit = FitSaitoEm(s, opt, rng);
  EXPECT_EQ(fit.iterations, 3u);
  EXPECT_FALSE(fit.converged);
}

TEST(SaitoLogLikelihood, MatchesHandComputation) {
  SinkSummary s = MakeSummary(2, {Row({1, 1}, 3, 2)});
  const double pj = 1.0 - 0.6 * 0.5;
  EXPECT_NEAR(SaitoLogLikelihood(s, {0.4, 0.5}),
              2.0 * std::log(pj) + std::log(1.0 - pj), 1e-12);
}

}  // namespace
}  // namespace infoflow
