#include "learn/goyal.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace infoflow {
namespace {

SinkSummary MakeSummary(std::size_t k, std::vector<SummaryRow> rows) {
  static std::vector<DirectedGraph> keep_alive;
  keep_alive.push_back(StarFragment(k));
  const DirectedGraph& g = keep_alive.back();
  SinkSummary s;
  s.sink = static_cast<NodeId>(k);
  for (EdgeId e : g.InEdges(s.sink)) {
    s.parents.push_back(g.edge(e).src);
    s.parent_edges.push_back(e);
  }
  s.rows = std::move(rows);
  return s;
}

SummaryRow Row(std::vector<std::uint8_t> mask, std::uint64_t count,
               std::uint64_t leaks) {
  SummaryRow r;
  r.mask = std::move(mask);
  r.count = count;
  r.leaks = leaks;
  return r;
}

TEST(Goyal, SingletonEvidenceIsExactFrequency) {
  SinkSummary s = MakeSummary(1, {Row({1}, 10, 4)});
  const GoyalResult fit = FitGoyal(s);
  EXPECT_DOUBLE_EQ(fit.estimate[0], 0.4);
}

TEST(Goyal, CreditSplitsEquallyAmongParents) {
  // One ambiguous row with both parents: each gets leaks/2 credit over
  // count exposures.
  SinkSummary s = MakeSummary(2, {Row({1, 1}, 10, 6)});
  const GoyalResult fit = FitGoyal(s);
  EXPECT_DOUBLE_EQ(fit.estimate[0], 0.3);
  EXPECT_DOUBLE_EQ(fit.estimate[1], 0.3);
}

TEST(Goyal, MixedRowsAccumulate) {
  // Parent 0: credit 4 (singleton) + 3 (half of 6) = 7 over 10+10
  // exposures.
  SinkSummary s =
      MakeSummary(2, {Row({1, 0}, 10, 4), Row({1, 1}, 10, 6)});
  const GoyalResult fit = FitGoyal(s);
  EXPECT_DOUBLE_EQ(fit.estimate[0], 7.0 / 20.0);
  EXPECT_DOUBLE_EQ(fit.estimate[1], 3.0 / 10.0);
}

TEST(Goyal, UnseenParentIsZero) {
  SinkSummary s = MakeSummary(2, {Row({1, 0}, 10, 5)});
  const GoyalResult fit = FitGoyal(s);
  EXPECT_DOUBLE_EQ(fit.estimate[0], 0.5);
  EXPECT_DOUBLE_EQ(fit.estimate[1], 0.0);
}

TEST(Goyal, BiasTowardMeanOnSkewedEdges) {
  // The paper's critique: with skewed true probabilities and mostly
  // ambiguous evidence, equal-credit pulls both estimates toward their
  // average. True pa=0.9, pb=0.1; joint p=1-0.1*0.9=0.91.
  SinkSummary s = MakeSummary(2, {Row({1, 1}, 1000, 910)});
  const GoyalResult fit = FitGoyal(s);
  // Both get 455/1000: far from 0.9 and 0.1, near the middle.
  EXPECT_NEAR(fit.estimate[0], 0.455, 1e-12);
  EXPECT_NEAR(fit.estimate[1], 0.455, 1e-12);
}

TEST(Goyal, EmptySummaryYieldsZeros) {
  SinkSummary s = MakeSummary(2, {});
  const GoyalResult fit = FitGoyal(s);
  EXPECT_DOUBLE_EQ(fit.estimate[0], 0.0);
  EXPECT_DOUBLE_EQ(fit.estimate[1], 0.0);
}

TEST(Goyal, EstimatesAreProbabilities) {
  SinkSummary s = MakeSummary(3, {Row({1, 1, 1}, 9, 9),
                                  Row({1, 0, 0}, 4, 4),
                                  Row({0, 1, 1}, 7, 0)});
  const GoyalResult fit = FitGoyal(s);
  for (double p : fit.estimate) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace infoflow
