/// Tests for the sharded serve tier: the partitioner's structural
/// properties, the shard-vs-single differential suite (bit-identical
/// estimates and diagnostics for every shard count), the epoch fan-out to
/// shard views under concurrency, and the ProcessRouter's fault paths.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "graph/generators.h"
#include "obs/metrics.h"
#include "serve/partition.h"
#include "serve/query_engine.h"
#include "serve/router.h"
#include "serve/sample_bank.h"
#include "serve/server.h"
#include "serve/shard_engine.h"
#include "util/json.h"
#include "util/timer.h"

namespace infoflow::serve {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

PointIcm SmallRandomModel(std::uint64_t seed, NodeId nodes, EdgeId edges) {
  Rng rng(seed);
  auto g = Share(UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.Uniform(0.1, 0.9);
  return PointIcm(g, probs);
}

/// The fig6-family graph at test scale: the same uniform random topology
/// the serve throughput bench partitions, small enough for a fast bank.
PointIcm Fig6Model(std::uint64_t seed = 7) {
  return SmallRandomModel(seed, 120, 300);
}

BankOptions FastBank(std::size_t states, std::size_t chains = 4) {
  BankOptions options;
  options.num_states = states;
  options.chain.num_chains = chains;
  options.chain.mh.burn_in = 1200;
  options.chain.mh.thinning = 4;
  return options;
}

const std::uint32_t kShardCounts[] = {1, 2, 4, 7};

std::shared_ptr<ShardSet> MakeShardSet(const DirectedGraph& graph,
                                       std::uint32_t num_shards,
                                       std::uint64_t seed = 5) {
  auto partition = PartitionGraph(graph, num_shards, seed);
  EXPECT_TRUE(partition.ok()) << partition.status();
  EXPECT_TRUE(ValidatePartition(graph, *partition).ok());
  return std::make_shared<ShardSet>(
      std::make_shared<const GraphPartition>(std::move(*partition)));
}

ShardedQueryEngine MakeSharded(const SampleBank& bank,
                               std::uint32_t num_shards,
                               QueryEngineOptions options = {}) {
  auto engine = ShardedQueryEngine::Create(
      bank.graph_ptr(), MakeShardSet(*bank.graph_ptr(), num_shards), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).ValueOrDie();
}

/// A batch exercising all four query types — flow, community, joint,
/// conditional (both polarities) — plus conditional failure paths.
std::vector<QueryRequest> AllKindsBatch(const PointIcm& model) {
  const DirectedGraph& graph = model.graph();
  const Edge& e0 = graph.edge(0);
  const Edge& e1 = graph.edge(graph.num_edges() / 2);
  std::vector<QueryRequest> batch;

  QueryRequest flow;
  flow.id = "flow";
  flow.kind = QueryKind::kFlow;
  flow.sources = {e0.src};
  flow.sinks = {e1.dst};
  batch.push_back(flow);

  QueryRequest community;
  community.id = "community";
  community.kind = QueryKind::kCommunity;
  community.sources = {e0.src, e1.src};
  community.sinks = {e0.dst, e1.dst, graph.num_nodes() - 1};
  batch.push_back(community);

  QueryRequest joint;
  joint.id = "joint";
  joint.kind = QueryKind::kJoint;
  joint.flows = {{e0.src, e0.dst, true}, {e1.src, e1.dst, true}};
  batch.push_back(joint);

  // Conditioning on flow along an existing edge keeps a healthy fraction
  // of rows; the negated constraint exercises the lanes &= ~reached path.
  QueryRequest conditional;
  conditional.id = "conditional";
  conditional.kind = QueryKind::kFlow;
  conditional.sources = {e1.src};
  conditional.sinks = {e1.dst};
  conditional.given = {{e0.src, e0.dst, true}};
  batch.push_back(conditional);

  QueryRequest negated = conditional;
  negated.id = "negated";
  negated.given = {{e0.src, e0.dst, false}};
  batch.push_back(negated);

  QueryRequest contradiction = conditional;
  contradiction.id = "contradiction";
  contradiction.given = {{e0.src, e0.dst, true}, {e0.src, e0.dst, false}};
  batch.push_back(contradiction);

  return batch;
}

/// Bitwise equality of two result sets: estimates, diagnostics, row
/// accounting, and failure statuses must all match exactly.
void ExpectIdenticalResults(const std::vector<QueryResult>& expected,
                            const std::vector<QueryResult>& actual,
                            const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (std::size_t q = 0; q < expected.size(); ++q) {
    SCOPED_TRACE(label + " query " + std::to_string(q));
    const QueryResult& want = expected[q];
    const QueryResult& got = actual[q];
    EXPECT_EQ(want.status.code(), got.status.code());
    EXPECT_EQ(want.status.message(), got.status.message());
    EXPECT_EQ(want.effective_rows, got.effective_rows);
    EXPECT_EQ(want.total_rows, got.total_rows);
    EXPECT_EQ(want.generation, got.generation);
    ASSERT_EQ(want.estimates.size(), got.estimates.size());
    for (std::size_t s = 0; s < want.estimates.size(); ++s) {
      SCOPED_TRACE("sink " + std::to_string(s));
      EXPECT_EQ(want.estimates[s].sink, got.estimates[s].sink);
      EXPECT_DOUBLE_EQ(want.estimates[s].value, got.estimates[s].value);
      EXPECT_DOUBLE_EQ(want.estimates[s].diagnostics.mcse,
                       got.estimates[s].diagnostics.mcse);
      EXPECT_DOUBLE_EQ(want.estimates[s].diagnostics.ess,
                       got.estimates[s].diagnostics.ess);
      EXPECT_DOUBLE_EQ(want.estimates[s].diagnostics.rhat,
                       got.estimates[s].diagnostics.rhat);
    }
  }
}

// -------------------------------------------------------- ShardPartition

TEST(ShardPartition, IsATruePartitionForEveryShardCount) {
  // Every node in exactly one shard, every edge either intra-shard or in
  // the cut table, ghosts consistent — ValidatePartition checks the full
  // structure; the explicit sums below restate the headline properties.
  for (const std::uint64_t graph_seed : {3u, 19u}) {
    Rng rng(graph_seed);
    const DirectedGraph graph = UniformRandomGraph(60, 180, rng);
    for (const std::uint32_t n : kShardCounts) {
      SCOPED_TRACE("graph seed " + std::to_string(graph_seed) + ", " +
                   std::to_string(n) + " shards");
      auto partition = PartitionGraph(graph, n, /*seed=*/11);
      ASSERT_TRUE(partition.ok()) << partition.status();
      const Status valid = ValidatePartition(graph, *partition);
      EXPECT_TRUE(valid.ok()) << valid;

      NodeId owned = 0;
      EdgeId local_edges = 0;
      for (const ShardGraph& shard : partition->shards) {
        owned += shard.num_owned;
        local_edges += shard.graph.num_edges();
      }
      EXPECT_EQ(owned, graph.num_nodes());
      // dst-ownership: every parent edge lives in exactly one shard.
      EXPECT_EQ(local_edges, graph.num_edges());
      for (const CutEdge& cut : partition->cut_edges) {
        const Edge& edge = graph.edge(cut.parent_edge);
        EXPECT_EQ(partition->shard_of[edge.src], cut.src_shard);
        EXPECT_EQ(partition->shard_of[edge.dst], cut.dst_shard);
        EXPECT_NE(cut.src_shard, cut.dst_shard);
      }
    }
  }
}

TEST(ShardPartition, DeterministicUnderAFixedSeed) {
  Rng rng(23);
  const DirectedGraph graph = UniformRandomGraph(80, 240, rng);
  for (const std::uint32_t n : kShardCounts) {
    auto first = PartitionGraph(graph, n, /*seed=*/42);
    auto second = PartitionGraph(graph, n, /*seed=*/42);
    ASSERT_TRUE(first.ok() && second.ok());
    EXPECT_EQ(first->shard_of, second->shard_of) << n << " shards";
    EXPECT_EQ(first->local_of, second->local_of);
    ASSERT_EQ(first->cut_edges.size(), second->cut_edges.size());
    for (std::size_t i = 0; i < first->cut_edges.size(); ++i) {
      EXPECT_EQ(first->cut_edges[i].parent_edge,
                second->cut_edges[i].parent_edge);
    }
    EXPECT_EQ(first->ghost_targets, second->ghost_targets);
  }
}

TEST(ShardPartition, SingleShardIsTheIdentityPartition) {
  Rng rng(5);
  const DirectedGraph graph = UniformRandomGraph(40, 100, rng);
  auto partition = PartitionGraph(graph, 1, /*seed=*/1);
  ASSERT_TRUE(partition.ok());
  ASSERT_EQ(partition->shards.size(), 1u);
  const ShardGraph& shard = partition->shards[0];
  EXPECT_EQ(shard.num_owned, graph.num_nodes());
  EXPECT_TRUE(partition->cut_edges.empty());
  EXPECT_TRUE(partition->ghost_targets.empty());
  ASSERT_EQ(shard.edge_to_parent.size(), graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_EQ(shard.edge_to_parent[e], e);
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_EQ(shard.node_to_parent[v], v);
    EXPECT_EQ(partition->local_of[v], v);
  }
}

TEST(ShardPartition, RejectsDegenerateShardCounts) {
  Rng rng(9);
  const DirectedGraph graph = UniformRandomGraph(10, 30, rng);
  EXPECT_FALSE(PartitionGraph(graph, 0, 1).ok());
  EXPECT_FALSE(PartitionGraph(graph, 11, 1).ok());
  EXPECT_TRUE(PartitionGraph(graph, 10, 1).ok());
}

// ----------------------------------------------------- ShardDifferential

TEST(ShardDifferential, AllQueryKindsBitIdenticalAcrossShardCounts) {
  // The tentpole guarantee: for every shard count, all four query types
  // return bit-identical estimates, effective_rows, and R-hat/ESS/MCSE to
  // the single-engine path over the same bank rows.
  const PointIcm fig6 = Fig6Model();
  const PointIcm random = SmallRandomModel(17, 30, 80);
  for (const PointIcm* model : {&fig6, &random}) {
    auto bank = SampleBank::Create(*model, FastBank(192), /*seed=*/42);
    ASSERT_TRUE(bank.ok()) << bank.status();
    const auto generation = bank->Acquire();
    const std::vector<QueryRequest> batch = AllKindsBatch(*model);

    auto single = QueryEngine::Create(bank->graph_ptr(), QueryEngineOptions{});
    ASSERT_TRUE(single.ok());
    const std::vector<QueryResult> expected =
        single->AnswerBatch(*generation, batch);
    ASSERT_TRUE(expected[0].status.ok()) << expected[0].status;
    // The contradictory conditional must fail identically everywhere.
    ASSERT_FALSE(expected[5].status.ok());

    for (const std::uint32_t n : kShardCounts) {
      ShardedQueryEngine sharded = MakeSharded(*bank, n);
      ExpectIdenticalResults(expected,
                             sharded.AnswerBatch(*generation, batch),
                             std::to_string(n) + " shards");
    }
  }
}

TEST(ShardDifferential, RaggedTailLanesMatchAcrossShardCounts) {
  // 100 states over 3 chains -> 102 rows: the last 64-row block has only
  // 38 live lanes, so the exchange must respect BlockLaneMask survivor
  // lanes exactly (conditionals narrow them further).
  const PointIcm model = Fig6Model(29);
  auto bank = SampleBank::Create(model, FastBank(100, 3), /*seed=*/8);
  ASSERT_TRUE(bank.ok());
  const auto generation = bank->Acquire();
  ASSERT_NE(generation->num_rows() % 64, 0u);
  const std::vector<QueryRequest> batch = AllKindsBatch(model);

  auto single = QueryEngine::Create(bank->graph_ptr(), QueryEngineOptions{});
  ASSERT_TRUE(single.ok());
  const std::vector<QueryResult> expected =
      single->AnswerBatch(*generation, batch);
  for (const std::uint32_t n : kShardCounts) {
    ShardedQueryEngine sharded = MakeSharded(*bank, n);
    ExpectIdenticalResults(expected, sharded.AnswerBatch(*generation, batch),
                           std::to_string(n) + " shards (ragged)");
  }
}

TEST(ShardDifferential, LaneWidthsBitIdenticalAcrossShardCounts) {
  // Widening the replay to 256/512-lane strips must not perturb the
  // shard exchange: every (shard count × lane width) combination answers
  // identically to the single-engine 64-lane path. 150 per chain × 4
  // chains = 600 rows: ≥512 so auto steps up to 8-word strips and the
  // tail block is ragged (600 mod 64 = 24), so cut-edge deliveries carry
  // W-word spans with dead tail words.
  const PointIcm model = Fig6Model(31);
  auto bank = SampleBank::Create(model, FastBank(600), /*seed=*/19);
  ASSERT_TRUE(bank.ok());
  const auto generation = bank->Acquire();
  ASSERT_GE(generation->num_rows(), 512u);
  ASSERT_NE(generation->num_rows() % 64, 0u);
  const std::vector<QueryRequest> batch = AllKindsBatch(model);

  QueryEngineOptions narrow;
  narrow.lanes = LaneWidth::k64;
  auto single = QueryEngine::Create(bank->graph_ptr(), narrow);
  ASSERT_TRUE(single.ok());
  const std::vector<QueryResult> expected =
      single->AnswerBatch(*generation, batch);

  for (const std::uint32_t n : {1u, 2u, 4u}) {
    for (const LaneWidth lanes :
         {LaneWidth::k64, LaneWidth::k256, LaneWidth::k512,
          LaneWidth::kAuto}) {
      QueryEngineOptions options;
      options.lanes = lanes;
      ShardedQueryEngine sharded = MakeSharded(*bank, n, options);
      ExpectIdenticalResults(expected,
                             sharded.AnswerBatch(*generation, batch),
                             std::to_string(n) + " shards, " +
                                 LaneWidthName(lanes) + " lanes");
    }
  }
}

TEST(ShardDifferential, ConditionalFloorFailsIdentically) {
  // A floor above the bank size trips the survivor floor on every
  // conditional — the sharded path must produce the same code and message.
  const PointIcm model = SmallRandomModel(31, 20, 50);
  auto bank = SampleBank::Create(model, FastBank(64), /*seed=*/3);
  ASSERT_TRUE(bank.ok());
  const auto generation = bank->Acquire();
  QueryEngineOptions options;
  options.min_conditional_rows = 4096;

  QueryRequest conditional;
  conditional.id = "floored";
  conditional.sources = {model.graph().edge(0).src};
  conditional.sinks = {model.graph().edge(0).dst};
  conditional.given = {{model.graph().edge(1).src,
                        model.graph().edge(1).dst, true}};

  auto single = QueryEngine::Create(bank->graph_ptr(), options);
  ASSERT_TRUE(single.ok());
  const std::vector<QueryResult> expected =
      single->AnswerBatch(*generation, {conditional});
  ASSERT_FALSE(expected[0].status.ok());

  for (const std::uint32_t n : {2u, 4u}) {
    ShardedQueryEngine sharded = MakeSharded(*bank, n, options);
    ExpectIdenticalResults(expected,
                           sharded.AnswerBatch(*generation, {conditional}),
                           std::to_string(n) + " shards (floor)");
  }
}

TEST(ShardDifferential, TracksBankRefreshGenerations) {
  // Sharded answers follow generation swaps: refresh, re-answer, and the
  // sharded engine must match the single engine on the *new* rows.
  const PointIcm model = SmallRandomModel(37, 24, 60);
  auto bank = SampleBank::Create(model, FastBank(128), /*seed=*/6);
  ASSERT_TRUE(bank.ok());
  const std::vector<QueryRequest> batch = AllKindsBatch(model);
  auto single = QueryEngine::Create(bank->graph_ptr(), QueryEngineOptions{});
  ASSERT_TRUE(single.ok());
  ShardedQueryEngine sharded = MakeSharded(*bank, 4);

  const auto first = bank->Acquire();
  ExpectIdenticalResults(single->AnswerBatch(*first, batch),
                         sharded.AnswerBatch(*first, batch), "generation 1");
  bank->Refresh();
  const auto second = bank->Acquire();
  ASSERT_EQ(second->id(), 2u);
  ExpectIdenticalResults(single->AnswerBatch(*second, batch),
                         sharded.AnswerBatch(*second, batch), "generation 2");
  // The old generation's views are still answerable (RCU discipline).
  ExpectIdenticalResults(single->AnswerBatch(*first, batch),
                         sharded.AnswerBatch(*first, batch),
                         "generation 1 after refresh");
}

// ---------------------------------------------------------- ShardEngine

TEST(ShardEngineViews, GatherTheParentPlaneExactly) {
  const PointIcm model = SmallRandomModel(13, 20, 48);
  auto bank = SampleBank::Create(model, FastBank(100, 3), /*seed=*/2);
  ASSERT_TRUE(bank.ok());
  const auto generation = bank->Acquire();
  auto shards = MakeShardSet(*bank->graph_ptr(), 3);
  const auto views = shards->AcquireAll(*generation);
  ASSERT_EQ(views.size(), 3u);
  for (std::uint32_t s = 0; s < 3; ++s) {
    const ShardGraph& shard = shards->partition().shards[s];
    EXPECT_EQ(views[s]->generation(), generation->id());
    for (std::size_t b = 0; b < generation->num_blocks(); ++b) {
      const std::uint64_t* parent = generation->BlockEdgeWords(b);
      const std::uint64_t* local = views[s]->BlockWords(b);
      for (EdgeId le = 0; le < shard.graph.num_edges(); ++le) {
        ASSERT_EQ(local[le], parent[shard.edge_to_parent[le]])
            << "shard " << s << " block " << b << " edge " << le;
      }
    }
  }
}

TEST(ShardEngineViews, ConcurrentAcquireNeverTearsAGeneration) {
  // Readers acquire views for the generation they hold while the bank
  // refreshes underneath: every view must match the requested generation
  // (the TSan job runs this suite to prove the publish is race-free).
  const PointIcm model = SmallRandomModel(47, 16, 40);
  auto bank = SampleBank::Create(model, FastBank(64, 2), /*seed=*/4);
  ASSERT_TRUE(bank.ok());
  auto shards = MakeShardSet(*bank->graph_ptr(), 4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto generation = bank->Acquire();
        for (const auto& view : shards->AcquireAll(*generation)) {
          ASSERT_EQ(view->generation(), generation->id());
        }
      }
    });
  }
  for (int i = 0; i < 3; ++i) {
    bank->Refresh();
    shards->Prime(*bank->Acquire());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(bank->Acquire()->id(), 4u);
}

// ---------------------------------------------------------- ShardServer

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// One ServeFd conversation over pipes (the test_serve.cc pattern).
std::string RoundTrip(Server& server, const std::string& input) {
  int in_pipe[2];
  int out_pipe[2];
  EXPECT_EQ(pipe(in_pipe), 0);
  EXPECT_EQ(pipe(out_pipe), 0);
  EXPECT_EQ(write(in_pipe[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  close(in_pipe[1]);
  const Status status = server.ServeFd(in_pipe[0], out_pipe[1]);
  EXPECT_TRUE(status.ok()) << status;
  close(in_pipe[0]);
  close(out_pipe[1]);
  std::string output;
  char chunk[4096];
  ssize_t got;
  while ((got = read(out_pipe[0], chunk, sizeof(chunk))) > 0) {
    output.append(chunk, static_cast<std::size_t>(got));
  }
  close(out_pipe[0]);
  return output;
}

Server MakeShardedServer(const PointIcm& model, ServerOptions options) {
  auto bank = SampleBank::Create(model, FastBank(128), /*seed=*/14);
  EXPECT_TRUE(bank.ok());
  auto server = Server::Create(std::move(bank).ValueOrDie(), options);
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(server).ValueOrDie();
}

TEST(ShardServer, AnswersIdenticallyToTheSingleEnginePath) {
  const PointIcm model = SmallRandomModel(41, 20, 50);
  const std::string input =
      "{\"id\":\"a\",\"source\":0,\"sink\":5}\n"
      "{\"id\":\"b\",\"sources\":[0,1],\"sinks\":[5,7]}\n"
      "not json\n";
  ServerOptions single_options;
  Server single = MakeShardedServer(model, single_options);
  ServerOptions sharded_options;
  sharded_options.num_shards = 4;
  Server sharded = MakeShardedServer(model, sharded_options);
  ASSERT_NE(sharded.shard_set(), nullptr);
  EXPECT_EQ(single.shard_set(), nullptr);
  // Byte-identical NDJSON, not just numerically close.
  EXPECT_EQ(RoundTrip(single, input), RoundTrip(sharded, input));
}

TEST(ShardServer, RefreshFansOutToEveryShardViewUnderConcurrency) {
  // Background refresh publishes new generations while connections answer
  // batches; every shard's view must follow without a torn generation
  // (this suite runs under TSan in CI).
  const PointIcm model = SmallRandomModel(43, 16, 40);
  ServerOptions options;
  options.num_shards = 3;
  options.refresh_interval_ms = 1.0;
  Server server = MakeShardedServer(model, options);
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::thread> clients;
  std::atomic<int> answered{0};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&server, &answered] {
      for (int i = 0; i < 4; ++i) {
        const std::string output = RoundTrip(
            server,
            "{\"id\":\"x\",\"source\":0,\"sink\":5}\n"
            "{\"id\":\"y\",\"source\":1,\"sink\":7,\"given\":\"0>5\"}\n");
        const std::vector<std::string> lines = SplitLines(output);
        ASSERT_EQ(lines.size(), 2u);
        for (const std::string& line : lines) {
          auto parsed = ParseJson(line);
          ASSERT_TRUE(parsed.ok()) << line;
          ASSERT_GE(parsed->Find("generation")->AsNumber(), 1.0);
        }
        answered.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  // Hold the door open until at least one background refresh has landed
  // (the clients can outrun the first 1 ms tick on a fast machine).
  WallTimer waited;
  while (server.bank().Acquire()->id() == 1u && waited.Millis() < 5000.0) {
    std::this_thread::yield();
  }
  server.Stop();
  EXPECT_EQ(answered.load(), 12);
  // Stop drained the refresher; the fan-out left every shard's view at
  // the bank's final generation.
  const auto generation = server.bank().Acquire();
  EXPECT_GT(generation->id(), 1u);
  for (const auto& view : server.shard_set()->AcquireAll(*generation)) {
    EXPECT_EQ(view->generation(), generation->id());
  }
}

TEST(ShardServer, StopQuiescesShardedBackgroundWorkInOrder) {
  const PointIcm model = SmallRandomModel(53, 12, 30);
  ServerOptions options;
  options.num_shards = 2;
  options.refresh_interval_ms = 0.5;
  options.socket_path = testing::TempDir() + "/infoflow_shard_test.sock";
  Server server = MakeShardedServer(model, options);
  ASSERT_TRUE(server.Start().ok());
  const std::string output =
      RoundTrip(server, "{\"id\":\"q\",\"source\":0,\"sink\":3}\n");
  EXPECT_FALSE(output.empty());
  server.Stop();
  server.Stop();  // idempotent
  // The engine tier still answers after Stop (only background work ends).
  const std::string after =
      RoundTrip(server, "{\"id\":\"r\",\"source\":0,\"sink\":3}\n");
  auto parsed = ParseJson(SplitLines(after).at(0));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("ok")->AsBool());
}

TEST(ShardServer, ValidatesShardOptions) {
  ServerOptions zero;
  zero.num_shards = 0;
  EXPECT_FALSE(zero.Validate().ok());
  // More shards than nodes must fail at Create, not crash the partitioner.
  const PointIcm model = SmallRandomModel(59, 8, 20);
  auto bank = SampleBank::Create(model, FastBank(32, 2), 1);
  ASSERT_TRUE(bank.ok());
  ServerOptions too_many;
  too_many.num_shards = 9;
  EXPECT_FALSE(
      Server::Create(std::move(bank).ValueOrDie(), too_many).ok());
}

// ---------------------------------------------------------- ShardRouter

/// An in-process "shard child": a real Server draining one socketpair end
/// via ServeFd until the router closes its side.
struct ChildHarness {
  std::unique_ptr<Server> server;
  std::thread thread;
  int router_fd = -1;

  static ChildHarness Spawn(const PointIcm& model) {
    ChildHarness child;
    int sv[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    child.router_fd = sv[0];
    auto bank = SampleBank::Create(model, FastBank(64, 2), /*seed=*/14);
    EXPECT_TRUE(bank.ok());
    auto server = Server::Create(std::move(bank).ValueOrDie(), {});
    EXPECT_TRUE(server.ok());
    child.server = std::make_unique<Server>(std::move(server).ValueOrDie());
    child.thread = std::thread([s = child.server.get(), fd = sv[1]] {
      (void)s->ServeFd(fd, fd);
      close(fd);
    });
    return child;
  }

  void Join() {
    if (thread.joinable()) thread.join();
  }
};

TEST(ShardRouter, MergesRoundRobinResponsesInInputOrder) {
  const PointIcm model = SmallRandomModel(41, 10, 24);
  ChildHarness a = ChildHarness::Spawn(model);
  ChildHarness b = ChildHarness::Spawn(model);
  {
    ProcessRouter router({a.router_fd, b.router_fd}, {});
    const std::vector<std::string> lines = {
        "{\"id\":\"q0\",\"source\":0,\"sink\":5}",
        "{\"id\":\"q1\",\"source\":1,\"sink\":6}",
        "garbage line",
        "{\"id\":\"q3\",\"sources\":[0,1],\"sinks\":[5,7]}",
        "{\"id\":\"q4\",\"source\":2,\"sink\":8}",
    };
    const std::vector<std::string> responses = router.RouteBatch(lines);
    ASSERT_EQ(responses.size(), lines.size());
    for (std::size_t j = 0; j < responses.size(); ++j) {
      auto parsed = ParseJson(responses[j]);
      ASSERT_TRUE(parsed.ok()) << responses[j];
      if (j == 2) {
        EXPECT_TRUE(parsed->Find("id")->is_null());
        EXPECT_FALSE(parsed->Find("ok")->AsBool());
      } else {
        EXPECT_EQ(parsed->Find("id")->AsString(),
                  "q" + std::to_string(j));
        EXPECT_TRUE(parsed->Find("ok")->AsBool());
      }
    }
    EXPECT_EQ(router.num_live_children(), 2u);
  }
  a.Join();
  b.Join();
}

TEST(ShardRouter, DeadChildYieldsDescriptiveErrorsNotAHang) {
  const PointIcm model = SmallRandomModel(41, 10, 24);
  ChildHarness live = ChildHarness::Spawn(model);
  // The dying "child": accepts the batch, then closes without answering.
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread dying([fd = sv[1]] {
    char buffer[256];
    (void)!read(fd, buffer, sizeof(buffer));
    close(fd);
  });
  const std::uint64_t failures_before =
      obs::GetCounter("router.child_failures_total").Value();
  const std::uint64_t replica1_before =
      obs::GetCounter("router.child_failures_total.replica1").Value();
  {
    ProcessRouter router({live.router_fd, sv[0]}, {});
    const std::vector<std::string> lines = {
        "{\"id\":\"q0\",\"source\":0,\"sink\":5}",
        "{\"id\":\"q1\",\"source\":1,\"sink\":6}",
        "{\"id\":\"q2\",\"source\":2,\"sink\":7}",
        "{\"id\":\"q3\",\"source\":3,\"sink\":8}",
    };
    const std::vector<std::string> responses = router.RouteBatch(lines);
    ASSERT_EQ(responses.size(), 4u);
    std::size_t failed = 0;
    for (std::size_t j = 0; j < responses.size(); ++j) {
      auto parsed = ParseJson(responses[j]);
      ASSERT_TRUE(parsed.ok()) << responses[j];
      EXPECT_EQ(parsed->Find("id")->AsString(), "q" + std::to_string(j));
      if (!parsed->Find("ok")->AsBool()) {
        ++failed;
        const std::string message =
            parsed->Find("error")->Find("message")->AsString();
        // The error names the replica that died, not just "a child".
        EXPECT_NE(message.find("shard child 1"), std::string::npos)
            << message;
        EXPECT_NE(message.find("died mid-batch"), std::string::npos)
            << message;
      }
    }
    EXPECT_EQ(failed, 2u);  // the dead child's round-robin share
    EXPECT_EQ(router.num_live_children(), 1u);
    if (obs::MetricsEnabled()) {
      // Counter deltas (the registry is process-global): one death, one
      // bump on the aggregate and on the per-replica series.
      EXPECT_EQ(obs::GetCounter("router.child_failures_total").Value() -
                    failures_before,
                1u);
      EXPECT_EQ(
          obs::GetCounter("router.child_failures_total.replica1").Value() -
              replica1_before,
          1u);
    }
    // Later batches exclude the dead child and keep answering.
    const std::vector<std::string> retry =
        router.RouteBatch({"{\"id\":\"q4\",\"source\":0,\"sink\":5}"});
    auto parsed = ParseJson(retry.at(0));
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed->Find("ok")->AsBool());
  }
  live.Join();
  dying.join();
}

TEST(ShardRouter, DeadlineBindsOnAStalledChild) {
  // The child reads its lines and never answers: the router must return
  // within its deadline with descriptive errors, not hang the batch.
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread stalled([fd = sv[1]] {
    char buffer[256];
    while (read(fd, buffer, sizeof(buffer)) > 0) {
    }
    close(fd);
  });
  WallTimer timer;
  {
    ProcessRouter::Options options;
    options.child_timeout_ms = 100.0;
    ProcessRouter router({sv[0]}, options);
    const std::vector<std::string> responses = router.RouteBatch(
        {"{\"id\":\"q0\",\"source\":0,\"sink\":5}",
         "{\"id\":\"q1\",\"source\":1,\"sink\":6}"});
    ASSERT_EQ(responses.size(), 2u);
    for (const std::string& response : responses) {
      auto parsed = ParseJson(response);
      ASSERT_TRUE(parsed.ok()) << response;
      EXPECT_FALSE(parsed->Find("ok")->AsBool());
      EXPECT_EQ(parsed->Find("error")->Find("code")->AsString(),
                "deadline-exceeded");
      EXPECT_NE(parsed->Find("error")->Find("message")->AsString().find(
                    "router deadline"),
                std::string::npos);
    }
    EXPECT_EQ(router.num_live_children(), 0u);
    // With no child left the router still answers every line.
    const std::vector<std::string> drained =
        router.RouteBatch({"{\"id\":\"q2\",\"source\":0,\"sink\":5}"});
    auto parsed = ParseJson(drained.at(0));
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(parsed->Find("ok")->AsBool());
    EXPECT_NE(parsed->Find("error")->Find("message")->AsString().find(
                  "no shard children alive"),
              std::string::npos);
  }
  EXPECT_LT(timer.Millis(), 5000.0);
  stalled.join();
}

TEST(ShardRouter, HealthVerbKeepsDeadReplicasVisible) {
  const PointIcm model = SmallRandomModel(41, 10, 24);
  ChildHarness live = ChildHarness::Spawn(model);
  // Replica 1 dies on first contact, as in the dead-child test above.
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread dying([fd = sv[1]] {
    char buffer[256];
    (void)!read(fd, buffer, sizeof(buffer));
    close(fd);
  });
  {
    ProcessRouter router({live.router_fd, sv[0]}, {});
    (void)router.RouteBatch({"{\"id\":\"q0\",\"source\":0,\"sink\":5}",
                             "{\"id\":\"q1\",\"source\":1,\"sink\":6}"});
    ASSERT_EQ(router.num_live_children(), 1u);

    const std::vector<std::string> responses =
        router.RouteBatch({"{\"id\":\"h\",\"health\":true}"});
    ASSERT_EQ(responses.size(), 1u);
    auto parsed = ParseJson(responses[0]);
    ASSERT_TRUE(parsed.ok()) << responses[0];
    EXPECT_EQ(parsed->Find("id")->AsString(), "h");
    EXPECT_TRUE(parsed->Find("ok")->AsBool());
    const JsonValue* health = parsed->Find("health");
    ASSERT_NE(health, nullptr);
    EXPECT_EQ(health->Find("role")->AsString(), "router");
    EXPECT_EQ(health->Find("num_replicas")->AsNumber(), 2.0);
    EXPECT_EQ(health->Find("num_live_replicas")->AsNumber(), 1.0);

    // The dead replica stays listed with alive:false — exclusion must be
    // visible to a scraper, not silently elided from the roster.
    const JsonValue::Array& replicas = health->Find("replicas")->AsArray();
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_TRUE(replicas[0].Find("alive")->AsBool());
    EXPECT_EQ(replicas[1].Find("replica")->AsNumber(), 1.0);
    EXPECT_FALSE(replicas[1].Find("alive")->AsBool());

    // Per-replica health: the live child answers as a server, the dead
    // slot is null.
    const JsonValue::Array& details =
        health->Find("replica_health")->AsArray();
    ASSERT_EQ(details.size(), 2u);
    ASSERT_FALSE(details[0].is_null());
    EXPECT_EQ(details[0].Find("health")->Find("role")->AsString(), "server");
    EXPECT_TRUE(details[1].is_null());
  }
  live.Join();
  dying.join();
}

TEST(ShardRouter, InjectsQueryIdsThatReplicasEchoBack) {
  const PointIcm model = SmallRandomModel(41, 10, 24);
  ChildHarness child = ChildHarness::Spawn(model);
  {
    ProcessRouter router({child.router_fd}, {});
    const std::vector<std::string> responses = router.RouteBatch({
        "{\"id\":\"q0\",\"source\":0,\"sink\":5}",
        "{\"id\":\"q1\",\"source\":1,\"sink\":6}",
        "{\"id\":\"q2\",\"source\":2,\"sink\":7,\"query_id\":500}",
    });
    ASSERT_EQ(responses.size(), 3u);
    // Lines arriving without a query_id get one minted and injected by the
    // router; since the id is then on the replica's wire, the replica
    // echoes it — so the trace tree and the client agree on the id.
    auto r0 = ParseJson(responses[0]);
    auto r1 = ParseJson(responses[1]);
    auto r2 = ParseJson(responses[2]);
    ASSERT_TRUE(r0.ok() && r1.ok() && r2.ok());
    ASSERT_NE(r0->Find("query_id"), nullptr);
    ASSERT_NE(r1->Find("query_id"), nullptr);
    EXPECT_GE(r0->Find("query_id")->AsNumber(), 1.0);
    EXPECT_GE(r1->Find("query_id")->AsNumber(), 1.0);
    EXPECT_NE(r0->Find("query_id")->AsNumber(),
              r1->Find("query_id")->AsNumber());
    // A client-supplied id passes through untouched.
    ASSERT_NE(r2->Find("query_id"), nullptr);
    EXPECT_EQ(r2->Find("query_id")->AsNumber(), 500.0);
  }
  child.Join();
}

}  // namespace
}  // namespace infoflow::serve
