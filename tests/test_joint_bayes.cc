#include "learn/joint_bayes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "learn/summary.h"

namespace infoflow {
namespace {

// Builds a summary for StarFragment(k) directly from rows.
SinkSummary MakeSummary(std::size_t k,
                        std::vector<SummaryRow> rows) {
  static std::vector<DirectedGraph> keep_alive;
  keep_alive.push_back(StarFragment(k));
  const DirectedGraph& g = keep_alive.back();
  SinkSummary s;
  s.sink = static_cast<NodeId>(k);
  for (EdgeId e : g.InEdges(s.sink)) {
    s.parents.push_back(g.edge(e).src);
    s.parent_edges.push_back(e);
  }
  s.rows = std::move(rows);
  return s;
}

SummaryRow Row(std::vector<std::uint8_t> mask, std::uint64_t count,
               std::uint64_t leaks) {
  SummaryRow r;
  r.mask = std::move(mask);
  r.count = count;
  r.leaks = leaks;
  return r;
}

TEST(UnambiguousPriors, BuiltFromSingletonRowsOnly) {
  SinkSummary s = MakeSummary(
      2, {Row({1, 0}, 10, 4), Row({1, 1}, 100, 60), Row({0, 1}, 5, 5)});
  const auto priors = UnambiguousPriors(s);
  ASSERT_EQ(priors.size(), 2u);
  EXPECT_DOUBLE_EQ(priors[0].alpha(), 5.0);  // 1 + 4
  EXPECT_DOUBLE_EQ(priors[0].beta(), 7.0);   // 1 + 6
  EXPECT_DOUBLE_EQ(priors[1].alpha(), 6.0);
  EXPECT_DOUBLE_EQ(priors[1].beta(), 1.0);
}

TEST(UnambiguousPriors, DefaultsToUniform) {
  SinkSummary s = MakeSummary(2, {Row({1, 1}, 100, 60)});
  const auto priors = UnambiguousPriors(s);
  EXPECT_DOUBLE_EQ(priors[0].alpha(), 1.0);
  EXPECT_DOUBLE_EQ(priors[1].beta(), 1.0);
}

TEST(LogPosterior, MatchesHandComputation) {
  SinkSummary s = MakeSummary(2, {Row({1, 1}, 3, 2)});
  const auto priors = UnambiguousPriors(s);
  const std::vector<double> p{0.4, 0.5};
  // p_J = 1 - 0.6*0.5 = 0.7; loglik = 2 log .7 + 1 log .3; priors uniform
  // contribute log 1 = 0.
  EXPECT_NEAR(JointBayesLogPosterior(s, priors, p),
              2.0 * std::log(0.7) + std::log(0.3), 1e-12);
}

TEST(LogPosterior, PriorTermIncluded) {
  SinkSummary s = MakeSummary(1, {Row({1}, 4, 1)});
  const auto priors = UnambiguousPriors(s);  // Beta(2, 4) from the row
  const std::vector<double> p{0.3};
  const double expected = std::log(0.3) + 3.0 * std::log(0.7) +
                          BetaDist(2.0, 4.0).LogPdf(0.3);
  EXPECT_NEAR(JointBayesLogPosterior(s, priors, p), expected, 1e-12);
}

TEST(FitJointBayes, RejectsEmptyParents) {
  SinkSummary s;
  s.sink = 0;
  JointBayesOptions opt;
  Rng rng(1);
  EXPECT_FALSE(FitJointBayes(s, opt, rng).ok());
}

TEST(FitJointBayes, SingleParentMatchesConjugatePosterior) {
  // With one parent everything is unambiguous: the posterior must equal
  // Beta(1 + leaks, 1 + silences) — but the row feeds both the prior and
  // the likelihood here, so the effective posterior doubles the counts.
  // Use an ambiguous-free summary where the prior carries the data and the
  // likelihood re-weighs it identically; instead verify against dense
  // numerical integration of the actual target.
  SinkSummary s = MakeSummary(1, {Row({1}, 20, 8)});
  const auto priors = UnambiguousPriors(s);
  // Numerically integrate the target density exp(logpost).
  double norm = 0.0, mean_num = 0.0;
  const int grid = 20000;
  for (int i = 0; i < grid; ++i) {
    const double x = (i + 0.5) / grid;
    const double w =
        std::exp(JointBayesLogPosterior(s, priors, {x}));
    norm += w;
    mean_num += x * w;
  }
  const double target_mean = mean_num / norm;
  JointBayesOptions opt;
  opt.num_samples = 4000;
  opt.burn_in = 500;
  opt.thinning = 2;
  Rng rng(2);
  auto fit = FitJointBayes(s, opt, rng);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->mean[0], target_mean, 0.02);
}

TEST(FitJointBayes, ConcentratesOnTruthWithData) {
  // Two parents with plenty of single-parent evidence: posterior should
  // land near the generating probabilities.
  const double pa = 0.8, pb = 0.2;
  Rng gen(3);
  std::uint64_t la = 0, lb = 0, lab = 0;
  const std::uint64_t n = 2000;
  for (std::uint64_t i = 0; i < n; ++i) {
    la += gen.Bernoulli(pa) ? 1u : 0u;
    lb += gen.Bernoulli(pb) ? 1u : 0u;
    lab += gen.Bernoulli(1.0 - (1.0 - pa) * (1.0 - pb)) ? 1u : 0u;
  }
  SinkSummary s = MakeSummary(
      2, {Row({1, 0}, n, la), Row({0, 1}, n, lb), Row({1, 1}, n, lab)});
  JointBayesOptions opt;
  opt.num_samples = 1500;
  opt.burn_in = 500;
  Rng rng(4);
  auto fit = FitJointBayes(s, opt, rng);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->mean[0], pa, 0.05);
  EXPECT_NEAR(fit->mean[1], pb, 0.05);
  EXPECT_LT(fit->sd[0], 0.05);
}

TEST(FitJointBayes, AmbiguousOnlyEvidenceInducesNegativeCorrelation) {
  // Only joint observations: any (pa, pb) with the right union probability
  // explains the data, so the posterior over (pa, pb) is negatively
  // correlated — the multimodality/ridge the Appendix discusses.
  SinkSummary s = MakeSummary(2, {Row({1, 1}, 400, 200)});
  JointBayesOptions opt;
  opt.num_samples = 2000;
  opt.burn_in = 1000;
  opt.keep_samples = true;
  Rng rng(5);
  auto fit = FitJointBayes(s, opt, rng);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->SampleCorrelation(0, 1), -0.3);
  EXPECT_GT(fit->sd[0], 0.1);  // genuinely uncertain per-edge
}

TEST(FitJointBayes, KeepSamplesShapes) {
  SinkSummary s = MakeSummary(2, {Row({1, 1}, 10, 5)});
  JointBayesOptions opt;
  opt.num_samples = 50;
  opt.burn_in = 10;
  opt.keep_samples = true;
  Rng rng(6);
  auto fit = FitJointBayes(s, opt, rng);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->samples.size(), 50u);
  EXPECT_EQ(fit->samples[0].size(), 2u);
  for (const auto& sample : fit->samples) {
    for (double p : sample) {
      EXPECT_GT(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
  }
}

TEST(FitJointBayes, AcceptanceRateReasonable) {
  SinkSummary s = MakeSummary(3, {Row({1, 1, 0}, 100, 50),
                                  Row({0, 1, 1}, 100, 75),
                                  Row({1, 0, 0}, 50, 10)});
  JointBayesOptions opt;
  opt.num_samples = 500;
  opt.burn_in = 500;
  Rng rng(7);
  auto fit = FitJointBayes(s, opt, rng);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->acceptance_rate, 0.1);
  EXPECT_LT(fit->acceptance_rate, 0.9);
}

TEST(FitJointBayes, OptionValidation) {
  SinkSummary s = MakeSummary(1, {Row({1}, 5, 2)});
  JointBayesOptions opt;
  opt.num_samples = 0;
  Rng rng(8);
  EXPECT_FALSE(FitJointBayes(s, opt, rng).ok());
  opt.num_samples = 10;
  opt.proposal_sd = 0.0;
  EXPECT_FALSE(FitJointBayes(s, opt, rng).ok());
}

TEST(FitJointBayes, DeterministicGivenSeed) {
  SinkSummary s = MakeSummary(2, {Row({1, 1}, 30, 12)});
  JointBayesOptions opt;
  opt.num_samples = 200;
  Rng a(9), b(9);
  auto fa = FitJointBayes(s, opt, a);
  auto fb = FitJointBayes(s, opt, b);
  ASSERT_TRUE(fa.ok() && fb.ok());
  EXPECT_DOUBLE_EQ(fa->mean[0], fb->mean[0]);
  EXPECT_DOUBLE_EQ(fa->sd[1], fb->sd[1]);
}

}  // namespace
}  // namespace infoflow
