#include "core/delay.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_flow.h"
#include "stats/descriptive.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Chain3() {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  return std::make_shared<const DirectedGraph>(std::move(b).Build());
}

TEST(EdgeDelay, SampleShapes) {
  Rng rng(1);
  const EdgeDelay constant = EdgeDelay::Constant(3.0);
  EXPECT_DOUBLE_EQ(constant.Sample(rng), 3.0);

  const EdgeDelay expo = EdgeDelay::ExponentialMean(5.0);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(expo.Sample(rng));
  EXPECT_NEAR(stats.Mean(), 5.0, 0.1);

  const EdgeDelay uniform = EdgeDelay::Uniform(2.0, 4.0);
  RunningStats ustats;
  for (int i = 0; i < 20000; ++i) {
    const double t = uniform.Sample(rng);
    EXPECT_GE(t, 2.0);
    EXPECT_LT(t, 4.0);
    ustats.Add(t);
  }
  EXPECT_NEAR(ustats.Mean(), 3.0, 0.05);
}

TEST(EdgeDelay, Validation) {
  EXPECT_TRUE(EdgeDelay::Constant(0.0).Validate().ok());
  EXPECT_FALSE(EdgeDelay::Constant(-1.0).Validate().ok());
  EXPECT_FALSE(EdgeDelay::Uniform(3.0, 2.0).Validate().ok());
  EXPECT_FALSE((EdgeDelay{EdgeDelay::Kind::kExponential, 0.0, 0.0})
                   .Validate()
                   .ok());
}

TEST(DelayedIcm, CreateValidatesSizes) {
  PointIcm model = PointIcm::Constant(Chain3(), 0.5);
  auto bad = DelayedIcm::Create(model, {EdgeDelay::Constant(1.0)});
  EXPECT_FALSE(bad.ok());
  auto good = DelayedIcm::Create(
      model, {EdgeDelay::Constant(1.0), EdgeDelay::Constant(2.0)});
  EXPECT_TRUE(good.ok());
}

TEST(DelayedIcm, CertainChainArrivalSumsDelays) {
  PointIcm model = PointIcm::Constant(Chain3(), 1.0);
  const DelayedIcm timed =
      DelayedIcm::WithUniformDelay(model, EdgeDelay::Constant(2.5));
  Rng rng(2);
  const auto arrival = timed.SampleArrivalTimes({0}, rng);
  EXPECT_DOUBLE_EQ(arrival[0], 0.0);
  EXPECT_DOUBLE_EQ(arrival[1], 2.5);
  EXPECT_DOUBLE_EQ(arrival[2], 5.0);
}

TEST(DelayedIcm, UnreachableNodesAreInfinite) {
  PointIcm model = PointIcm::Constant(Chain3(), 0.0);
  const DelayedIcm timed =
      DelayedIcm::WithUniformDelay(model, EdgeDelay::Constant(1.0));
  Rng rng(3);
  const auto arrival = timed.SampleArrivalTimes({0}, rng);
  EXPECT_TRUE(std::isinf(arrival[1]));
  EXPECT_TRUE(std::isinf(arrival[2]));
}

TEST(DelayedIcm, ShortestPathWinsAcrossRoutes) {
  // 0->1->2 (fast hops) vs direct 0->2 (slow): arrival at 2 is the min.
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  auto g = std::make_shared<const DirectedGraph>(std::move(b).Build());
  std::vector<EdgeDelay> delays(3);
  delays[g->FindEdge(0, 1)] = EdgeDelay::Constant(1.0);
  delays[g->FindEdge(1, 2)] = EdgeDelay::Constant(1.0);
  delays[g->FindEdge(0, 2)] = EdgeDelay::Constant(10.0);
  auto timed = DelayedIcm::Create(PointIcm::Constant(g, 1.0), delays);
  ASSERT_TRUE(timed.ok());
  Rng rng(4);
  const auto arrival = timed->SampleArrivalTimes({0}, rng);
  EXPECT_DOUBLE_EQ(arrival[2], 2.0);
}

TEST(DelayedIcm, ReachabilityMarginalMatchesUntimedIcm) {
  // Adding delays must not change *whether* information flows, only when:
  // the arrival-based flow probability equals the exact ICM flow.
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  auto g = std::make_shared<const DirectedGraph>(std::move(b).Build());
  PointIcm model(g, {0.7, 0.4, 0.5, 0.6});
  const DelayedIcm timed =
      DelayedIcm::WithUniformDelay(model, EdgeDelay::ExponentialMean(2.0));
  Rng rng(5);
  const ArrivalEstimate estimate = EstimateArrival(timed, 0, 3, 40000, rng);
  EXPECT_NEAR(estimate.FlowProbability(),
              ExactFlowByEnumeration(model, 0, 3), 0.01);
}

TEST(ArrivalEstimate, DeadlineProbabilityMonotone) {
  auto g = Chain3();
  PointIcm model = PointIcm::Constant(g, 0.8);
  const DelayedIcm timed =
      DelayedIcm::WithUniformDelay(model, EdgeDelay::ExponentialMean(1.0));
  Rng rng(6);
  const ArrivalEstimate estimate = EstimateArrival(timed, 0, 2, 20000, rng);
  double prev = -1.0;
  for (double deadline : {0.5, 1.0, 2.0, 4.0, 8.0, 1e9}) {
    const double p = estimate.FlowProbabilityWithin(deadline);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_NEAR(estimate.FlowProbabilityWithin(1e9),
              estimate.FlowProbability(), 1e-12);
}

TEST(ArrivalEstimate, MeanArrivalTracksDelayScale) {
  auto g = Chain3();
  PointIcm model = PointIcm::Constant(g, 1.0);
  Rng rng(7);
  const DelayedIcm fast =
      DelayedIcm::WithUniformDelay(model, EdgeDelay::ExponentialMean(1.0));
  const DelayedIcm slow =
      DelayedIcm::WithUniformDelay(model, EdgeDelay::ExponentialMean(5.0));
  const auto fast_est = EstimateArrival(fast, 0, 2, 20000, rng);
  const auto slow_est = EstimateArrival(slow, 0, 2, 20000, rng);
  // Two hops: expected arrival = 2x the per-edge mean.
  EXPECT_NEAR(fast_est.MeanArrivalTime(), 2.0, 0.1);
  EXPECT_NEAR(slow_est.MeanArrivalTime(), 10.0, 0.4);
}

TEST(ArrivalEstimate, EmptyWhenNoFlow) {
  auto g = Chain3();
  PointIcm model = PointIcm::Constant(g, 0.0);
  const DelayedIcm timed =
      DelayedIcm::WithUniformDelay(model, EdgeDelay::Constant(1.0));
  Rng rng(8);
  const ArrivalEstimate estimate = EstimateArrival(timed, 0, 2, 100, rng);
  EXPECT_DOUBLE_EQ(estimate.FlowProbability(), 0.0);
  EXPECT_DOUBLE_EQ(estimate.MeanArrivalTime(), 0.0);
}

}  // namespace
}  // namespace infoflow
