/// Tests for the seed-selection subsystem: the reversed-graph view's edge
/// permutation, RR sketch accounting (ragged tails, community targets,
/// Eq. 7–8 conditioning), the CELF selector against exhaustive greedy on
/// the same sketches, the differential check against Monte-Carlo CELF via
/// exact-enumeration spread, and the RrIndex publish discipline under
/// concurrent readers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/exact_flow.h"
#include "core/influence_max.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "seedmax/rr_index.h"
#include "seedmax/seed_selector.h"
#include "serve/sample_bank.h"

namespace infoflow::seedmax {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

PointIcm SmallRandomModel(std::uint64_t seed, NodeId nodes, EdgeId edges) {
  Rng rng(seed);
  auto g = Share(UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.Uniform(0.2, 0.8);
  return PointIcm(g, probs);
}

serve::BankOptions FastBank(std::size_t states, std::size_t chains = 4,
                            std::size_t thinning = 4) {
  serve::BankOptions options;
  options.num_states = states;
  options.chain.num_chains = chains;
  options.chain.mh.burn_in = 1200;
  options.chain.mh.thinning = thinning;
  return options;
}

serve::SampleBank MakeBank(const PointIcm& model, std::size_t states,
                           std::uint64_t seed = 21, std::size_t chains = 4,
                           std::size_t thinning = 4) {
  auto bank = serve::SampleBank::Create(
      model, FastBank(states, chains, thinning), seed);
  EXPECT_TRUE(bank.ok()) << bank.status();
  return std::move(bank).ValueOrDie();
}

/// Exact expected spread Σ_x Pr[x | M] · |reach(S; x)| by enumeration over
/// all 2^m pseudo-states — the definitional ground truth the RR-sketch
/// estimate universe · covered / R is unbiased for. Requires m <= 20.
double ExactSpreadByEnumeration(const PointIcm& model,
                                const std::vector<NodeId>& seeds) {
  const DirectedGraph& graph = model.graph();
  const EdgeId m = graph.num_edges();
  EXPECT_LE(m, 20u);
  double spread = 0.0;
  std::vector<NodeId> stack;
  std::vector<bool> reached(graph.num_nodes());
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << m); ++x) {
    double pr = 1.0;
    for (EdgeId e = 0; e < m; ++e) {
      pr *= (x >> e) & 1 ? model.prob(e) : 1.0 - model.prob(e);
    }
    std::fill(reached.begin(), reached.end(), false);
    stack.assign(seeds.begin(), seeds.end());
    std::size_t count = 0;
    for (NodeId s : seeds) reached[s] = true;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      ++count;
      for (EdgeId e : graph.OutEdges(u)) {
        const NodeId v = graph.edge(e).dst;
        if (((x >> e) & 1) && !reached[v]) {
          reached[v] = true;
          stack.push_back(v);
        }
      }
    }
    spread += pr * static_cast<double>(count);
  }
  return spread;
}

/// Plain greedy max-coverage over the sketch set — recomputes every
/// candidate's gain each round (no laziness, no pruning). The CELF
/// selector must pick the identical seeds.
std::vector<NodeId> ExhaustiveGreedy(const RrSketchSet& sketches,
                                     std::size_t k) {
  std::vector<std::uint64_t> covered(sketches.num_groups(), 0);
  std::vector<bool> taken(sketches.num_nodes(), false);
  std::vector<NodeId> seeds;
  for (std::size_t round = 0; round < k; ++round) {
    NodeId best = 0;
    std::uint64_t best_gain = 0;
    bool found = false;
    for (NodeId u = 0; u < sketches.num_nodes(); ++u) {
      if (taken[u]) continue;
      std::uint64_t gain = 0;
      for (const RrPosting& p : sketches.Postings(u)) {
        gain += static_cast<std::uint64_t>(
            std::popcount(p.lanes & ~covered[p.group]));
      }
      // Same deterministic tie-break as SelectSeeds: smaller node id.
      if (!found || gain > best_gain) {
        best = u;
        best_gain = gain;
        found = true;
      }
    }
    taken[best] = true;
    for (const RrPosting& p : sketches.Postings(best)) {
      covered[p.group] |= p.lanes;
    }
    seeds.push_back(best);
  }
  return seeds;
}

// ------------------------------------------------------ ReversedGraphView

TEST(ReversedGraphView, TransposesEdgesAndMapsIdsBack) {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  auto g = Share(std::move(b).Build());
  const ReversedGraphView view = ReversedGraphView::Build(g);

  ASSERT_EQ(view.reversed().num_edges(), g->num_edges());
  ASSERT_EQ(view.reversed().num_nodes(), g->num_nodes());
  for (EdgeId re = 0; re < view.reversed().num_edges(); ++re) {
    const Edge& rev = view.reversed().edge(re);
    const Edge& fwd = g->edge(view.ParentEdge(re));
    EXPECT_EQ(rev.src, fwd.dst);
    EXPECT_EQ(rev.dst, fwd.src);
  }
}

TEST(ReversedGraphView, GatherBlockAppliesTheEdgePermutation) {
  const PointIcm model = SmallRandomModel(11, 12, 30);
  const ReversedGraphView view = ReversedGraphView::Build(model.graph_ptr());
  const EdgeId m = model.graph().num_edges();
  std::vector<std::uint64_t> parent_words(m);
  for (EdgeId e = 0; e < m; ++e) parent_words[e] = 0x1111u * (e + 1);
  std::vector<std::uint64_t> reversed_words(m);
  view.GatherBlock(parent_words.data(), reversed_words.data());
  for (EdgeId re = 0; re < m; ++re) {
    EXPECT_EQ(reversed_words[re], parent_words[view.ParentEdge(re)]);
  }
}

// ------------------------------------------------------------- RrSketchSet

TEST(RrSketchSet, UnconditionedAccountingAndLaneHygiene) {
  const PointIcm model = SmallRandomModel(5, 12, 30);
  serve::SampleBank bank = MakeBank(model, 256);
  const auto generation = bank.Acquire();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());
  auto sketches = RrSketchSet::Build(view, *generation);
  ASSERT_TRUE(sketches.ok()) << sketches.status();

  const std::size_t n = model.graph().num_nodes();
  EXPECT_EQ(sketches->generation(), generation->id());
  EXPECT_EQ(sketches->model_epoch(), generation->model_epoch());
  EXPECT_EQ(sketches->universe(), n);
  EXPECT_EQ(sketches->total_rows(), generation->num_rows());
  EXPECT_EQ(sketches->effective_rows(), generation->num_rows());
  EXPECT_FALSE(sketches->conditioned());
  EXPECT_EQ(sketches->num_sketches(),
            static_cast<std::uint64_t>(generation->num_rows()) * n);
  EXPECT_EQ(sketches->num_groups(), n * generation->num_blocks());

  // Every posting's lanes stay inside its block's surviving-lane mask, and
  // every node covers its own target's sketches in *every* lane (u reaches
  // u in all pseudo-states).
  const std::size_t blocks = generation->num_blocks();
  for (NodeId u = 0; u < n; ++u) {
    std::uint64_t own_sketches = 0;
    for (const RrPosting& p : sketches->Postings(u)) {
      const std::size_t block = p.group % blocks;
      EXPECT_EQ(p.lanes & ~generation->BlockLaneMask(block), 0u);
      EXPECT_NE(p.lanes, 0u);
      if (p.group / blocks == u) {
        own_sketches +=
            static_cast<std::uint64_t>(std::popcount(p.lanes));
      }
    }
    EXPECT_EQ(own_sketches, generation->num_rows())
        << "node " << u << " must cover its own target in every row";
  }
}

TEST(RrSketchSet, RaggedTailRowsAreMaskedNotPadded) {
  const PointIcm model = SmallRandomModel(9, 10, 18);
  // 500 states over 3 chains → 501 rows: seven full 64-lane blocks plus a
  // 53-lane tail whose dead lanes must never appear in a posting.
  serve::SampleBank bank = MakeBank(model, 500, /*seed=*/3, /*chains=*/3,
                                    /*thinning=*/16);
  const auto generation = bank.Acquire();
  ASSERT_EQ(generation->num_rows(), 501u);
  ASSERT_EQ(generation->num_blocks(), 8u);
  ASSERT_EQ(generation->BlockLaneMask(7),
            (std::uint64_t{1} << (501 - 448)) - 1);

  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());
  auto sketches = RrSketchSet::Build(view, *generation);
  ASSERT_TRUE(sketches.ok()) << sketches.status();
  const std::size_t n = model.graph().num_nodes();
  EXPECT_EQ(sketches->num_sketches(), 501u * n);
  std::uint64_t covered_by_all = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (const RrPosting& p : sketches->Postings(u)) {
      const std::size_t block = p.group % generation->num_blocks();
      EXPECT_EQ(p.lanes & ~generation->BlockLaneMask(block), 0u)
          << "posting for node " << u << " leaks dead tail lanes";
      covered_by_all += static_cast<std::uint64_t>(std::popcount(p.lanes));
    }
  }
  EXPECT_GT(covered_by_all, 0u);

  // The estimate over a ragged bank is still calibrated: a single-seed
  // spread matches per-target exact enumeration within 3 MCSE.
  SeedMaxOptions options;
  options.num_seeds = 1;
  auto result = SelectSeeds(*sketches, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const double exact =
      ExactSpreadByEnumeration(model, {result->picks[0].node});
  EXPECT_NEAR(result->spread, exact, 3.0 * result->mcse + 1e-9);
}

TEST(RrSketchSet, SingleSeedSpreadMatchesEq5PerTargetEnumeration) {
  const PointIcm model = SmallRandomModel(17, 9, 18);
  serve::SampleBank bank = MakeBank(model, 2048);
  const auto generation = bank.Acquire();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());
  auto sketches = RrSketchSet::Build(view, *generation);
  ASSERT_TRUE(sketches.ok()) << sketches.status();

  SeedMaxOptions options;
  options.num_seeds = 1;
  auto result = SelectSeeds(*sketches, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const NodeId seed = result->picks[0].node;

  // Spread of {s} decomposes into per-target Eq. 5 flow probabilities.
  double exact = 0.0;
  for (NodeId t = 0; t < model.graph().num_nodes(); ++t) {
    exact += t == seed ? 1.0 : ExactFlowByEnumeration(model, seed, t);
  }
  EXPECT_NEAR(result->spread, exact, 3.0 * result->mcse);
  EXPECT_GT(result->mcse, 0.0);
}

TEST(RrSketchSet, CommunityTargetsRestrictTheUniverse) {
  const PointIcm model = SmallRandomModel(23, 12, 30);
  serve::SampleBank bank = MakeBank(model, 512);
  const auto generation = bank.Acquire();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());

  RrBuildOptions build;
  build.targets = {3, 7, 9};
  auto sketches = RrSketchSet::Build(view, *generation, build);
  ASSERT_TRUE(sketches.ok()) << sketches.status();
  EXPECT_EQ(sketches->universe(), 3u);
  EXPECT_EQ(sketches->num_sketches(), generation->num_rows() * 3u);
  EXPECT_EQ(sketches->num_groups(), 3u * generation->num_blocks());

  // Spread into a 3-node community is bounded by the community size.
  SeedMaxOptions options;
  options.num_seeds = 2;
  auto result = SelectSeeds(*sketches, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->spread, 3.0 + 1e-12);
  EXPECT_GT(result->spread, 0.0);

  RrBuildOptions duplicate;
  duplicate.targets = {3, 3};
  EXPECT_EQ(RrSketchSet::Build(view, *generation, duplicate).status().code(),
            StatusCode::kInvalidArgument);
  RrBuildOptions out_of_range;
  out_of_range.targets = {99};
  EXPECT_EQ(
      RrSketchSet::Build(view, *generation, out_of_range).status().code(),
      StatusCode::kOutOfRange);
}

TEST(RrSketchSet, ConditioningNarrowsLanesAndMatchesEq7) {
  const PointIcm model = SmallRandomModel(29, 9, 18);
  serve::SampleBank bank = MakeBank(model, 4096);
  const auto generation = bank.Acquire();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());

  // Condition on flow along an existing edge — satisfiable by
  // construction, but strict enough to kill some rows.
  const Edge& edge = model.graph().edge(0);
  RrBuildOptions build;
  build.given = {{edge.src, edge.dst, true}};
  auto sketches = RrSketchSet::Build(view, *generation, build);
  ASSERT_TRUE(sketches.ok()) << sketches.status();
  EXPECT_TRUE(sketches->conditioned());
  EXPECT_LT(sketches->effective_rows(), sketches->total_rows());
  EXPECT_GE(sketches->effective_rows(), 32u);
  EXPECT_EQ(sketches->num_sketches(),
            sketches->effective_rows() * model.graph().num_nodes());

  // Conditional single-seed spread decomposes into Eq. 7 per-target
  // conditionals.
  SeedMaxOptions options;
  options.num_seeds = 1;
  auto result = SelectSeeds(*sketches, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const NodeId seed = result->picks[0].node;
  double exact = 0.0;
  for (NodeId t = 0; t < model.graph().num_nodes(); ++t) {
    if (t == seed) {
      exact += 1.0;
      continue;
    }
    auto conditional =
        ExactConditionalFlowByEnumeration(model, seed, t, build.given);
    ASSERT_TRUE(conditional.ok()) << conditional.status();
    exact += *conditional;
  }
  EXPECT_NEAR(result->spread, exact, 3.0 * result->mcse);
}

TEST(RrSketchSet, ConditionalFloorRejectsDegenerateBuilds) {
  // Diamond sink 3 has no outgoing edges, so "3 ⤳ 0" holds in no
  // pseudo-state: zero survivors must trip the conditional-rows floor.
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  const PointIcm model = PointIcm::Constant(Share(std::move(b).Build()), 0.5);
  serve::SampleBank bank = MakeBank(model, 128);
  const auto generation = bank.Acquire();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());
  RrBuildOptions build;
  build.given = {{3, 0, true}};
  EXPECT_EQ(RrSketchSet::Build(view, *generation, build).status().code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------ SeedSelector

TEST(SeedSelector, MatchesExhaustiveGreedyOnTheSameSketches) {
  const PointIcm model = SmallRandomModel(31, 24, 70);
  serve::SampleBank bank = MakeBank(model, 512);
  const auto generation = bank.Acquire();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());
  auto sketches = RrSketchSet::Build(view, *generation);
  ASSERT_TRUE(sketches.ok()) << sketches.status();

  SeedMaxOptions options;
  options.num_seeds = 5;
  auto celf = SelectSeeds(*sketches, options);
  ASSERT_TRUE(celf.ok()) << celf.status();
  EXPECT_EQ(celf->seeds(), ExhaustiveGreedy(*sketches, 5));
  // Laziness must have saved work relative to plain greedy's k·n gains.
  EXPECT_LT(celf->evaluations, 5u * model.graph().num_nodes());
  // Selection is deterministic.
  auto again = SelectSeeds(*sketches, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->seeds(), celf->seeds());
  EXPECT_EQ(again->spread, celf->spread);
}

TEST(SeedSelector, MatchesMonteCarloCelfWithinThreeMcse) {
  // The ISSUE's differential acceptance check: the bank-sketch seed set's
  // *exact-enumeration* spread must sit within 3 MCSE of the Monte-Carlo
  // CELF seed set's exact spread (both are (1 − 1/e) greedy solutions of
  // the same objective; only their estimators differ).
  const PointIcm model = SmallRandomModel(37, 10, 20);
  serve::SampleBank bank = MakeBank(model, 4096);
  const auto generation = bank.Acquire();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());
  auto sketches = RrSketchSet::Build(view, *generation);
  ASSERT_TRUE(sketches.ok()) << sketches.status();

  SeedMaxOptions options;
  options.num_seeds = 2;
  auto banked = SelectSeeds(*sketches, options);
  ASSERT_TRUE(banked.ok()) << banked.status();

  InfluenceMaxOptions mc_options;
  mc_options.num_seeds = 2;
  mc_options.simulations = 2000;
  Rng rng(99);
  auto monte_carlo = MaximizeInfluence(model, mc_options, rng);
  ASSERT_TRUE(monte_carlo.ok()) << monte_carlo.status();

  const double exact_banked = ExactSpreadByEnumeration(model, banked->seeds());
  const double exact_mc = ExactSpreadByEnumeration(model, monte_carlo->seeds);
  EXPECT_NEAR(exact_banked, exact_mc, 3.0 * banked->mcse)
      << "bank seeds " << banked->seeds()[0] << "," << banked->seeds()[1]
      << " vs mc seeds " << monte_carlo->seeds[0] << ","
      << monte_carlo->seeds[1];
  // And the sketch estimate itself is calibrated against its own seeds.
  EXPECT_NEAR(banked->spread, exact_banked, 3.0 * banked->mcse);
}

TEST(SeedSelector, ValidatesAndDeduplicatesCandidates) {
  const PointIcm model = SmallRandomModel(41, 10, 24);
  serve::SampleBank bank = MakeBank(model, 128);
  const auto generation = bank.Acquire();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());
  auto sketches = RrSketchSet::Build(view, *generation);
  ASSERT_TRUE(sketches.ok()) << sketches.status();

  SeedMaxOptions options;
  options.num_seeds = 2;
  options.candidates = {4, 4, 2, 4, 2};
  auto result = SelectSeeds(*sketches, options);
  ASSERT_TRUE(result.ok()) << result.status();
  std::vector<NodeId> sorted = result->seeds();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{2, 4}));

  options.num_seeds = 3;  // only 2 distinct candidates
  EXPECT_EQ(SelectSeeds(*sketches, options).status().code(),
            StatusCode::kInvalidArgument);
  options.num_seeds = 1;
  options.candidates = {99};
  EXPECT_EQ(SelectSeeds(*sketches, options).status().code(),
            StatusCode::kOutOfRange);
  options.candidates.clear();
  options.num_seeds = 0;
  EXPECT_EQ(SelectSeeds(*sketches, options).status().code(),
            StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------------- RrIndex

TEST(RrIndex, CachesPerGenerationAndPrimeIsLazyUntilFirstUse) {
  const PointIcm model = SmallRandomModel(43, 10, 24);
  serve::SampleBank bank = MakeBank(model, 128);
  RrIndex index(bank.graph_ptr());
  const obs::Counter& builds =
      obs::GetCounter("seedmax.sketch.builds_total");
  const std::uint64_t builds_before = builds.Value();

  // Prime before any Acquire is a no-op: a daemon that never serves top-k
  // must not pay sketch builds on refresh.
  index.Prime(bank.Acquire());
  if constexpr (obs::MetricsEnabled()) {
    EXPECT_EQ(builds.Value(), builds_before);
  }

  auto first = index.Acquire(bank.Acquire());
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = index.Acquire(bank.Acquire());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // cached, not rebuilt
  if constexpr (obs::MetricsEnabled()) {
    EXPECT_EQ(builds.Value(), builds_before + 1);
  }

  // After first use, Prime eagerly re-inverts a freshly published
  // generation, and Acquire then hits the warm cache.
  bank.Refresh();
  const auto generation = bank.Acquire();
  EXPECT_EQ(generation->id(), 2u);
  index.Prime(generation);
  if constexpr (obs::MetricsEnabled()) {
    EXPECT_EQ(builds.Value(), builds_before + 2);
  }
  auto primed = index.Acquire(generation);
  ASSERT_TRUE(primed.ok());
  EXPECT_EQ((*primed)->generation(), 2u);
  if constexpr (obs::MetricsEnabled()) {
    EXPECT_EQ(builds.Value(), builds_before + 2);  // served from cache
  }
}

TEST(RrIndex, RepublishUnderConcurrentTopkReaders) {
  // TSan coverage for the RCU discipline: readers keep acquiring and
  // selecting over whatever set is current while refreshes re-prime the
  // index. Readers holding an old set are never invalidated.
  const PointIcm model = SmallRandomModel(47, 12, 30);
  serve::SampleBank bank = MakeBank(model, 128, /*seed=*/8, /*chains=*/2);
  RrIndex index(bank.graph_ptr());
  ASSERT_TRUE(index.Acquire(bank.Acquire()).ok());

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> selections{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto generation = bank.Acquire();
        auto sketches = index.Acquire(generation);
        ASSERT_TRUE(sketches.ok()) << sketches.status();
        SeedMaxOptions options;
        options.num_seeds = 2;
        auto result = SelectSeeds(**sketches, options);
        ASSERT_TRUE(result.ok()) << result.status();
        ASSERT_EQ(result->picks.size(), 2u);
        ASSERT_GE(result->spread, 0.0);
        ASSERT_EQ(result->generation, (*sketches)->generation());
        selections.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 8; ++i) {
    bank.Refresh();
    index.Prime(bank.Acquire());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(selections.load(), 0u);
  auto final_set = index.Acquire(bank.Acquire());
  ASSERT_TRUE(final_set.ok());
  EXPECT_EQ((*final_set)->generation(), 9u);
}

// ------------------------------------------- parallel + incremental builds

/// Full structural equality of two sketch sets: same accounting, and the
/// same postings (group, lanes) in the same order at every node.
void ExpectSketchSetsIdentical(const RrSketchSet& a, const RrSketchSet& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.universe(), b.universe());
  EXPECT_EQ(a.num_sketches(), b.num_sketches());
  EXPECT_EQ(a.num_groups(), b.num_groups());
  EXPECT_EQ(a.effective_rows(), b.effective_rows());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    const auto pa = a.Postings(u);
    const auto pb = b.Postings(u);
    ASSERT_EQ(pa.size(), pb.size()) << "node " << u;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].group, pb[i].group) << "node " << u << " posting " << i;
      EXPECT_EQ(pa[i].lanes, pb[i].lanes) << "node " << u << " posting " << i;
    }
  }
}

TEST(RrSketchSet, ParallelBuildIsBitIdenticalToSerial) {
  const PointIcm model = SmallRandomModel(61, 14, 36);
  serve::SampleBank bank = MakeBank(model, 300, /*seed=*/62);
  const auto generation = bank.Acquire();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());

  auto serial = RrSketchSet::Build(view, *generation);
  ASSERT_TRUE(serial.ok()) << serial.status();

  ThreadPool pool(3);
  RrBuildOptions parallel_options;
  parallel_options.pool = &pool;
  auto parallel = RrSketchSet::Build(view, *generation, parallel_options);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ExpectSketchSetsIdentical(*serial, *parallel);

  // Conditioned builds parallelize over the same block partition; the
  // narrowed lane masks must survive the merge identically.
  RrBuildOptions conditioned;
  conditioned.given = {{model.graph().edge(0).src,
                        model.graph().edge(0).dst, true}};
  conditioned.min_conditional_rows = 1;
  auto cond_serial = RrSketchSet::Build(view, *generation, conditioned);
  ASSERT_TRUE(cond_serial.ok()) << cond_serial.status();
  conditioned.pool = &pool;
  auto cond_parallel = RrSketchSet::Build(view, *generation, conditioned);
  ASSERT_TRUE(cond_parallel.ok()) << cond_parallel.status();
  ExpectSketchSetsIdentical(*cond_serial, *cond_parallel);
}

TEST(RrSketchSet, ReusedBlocksReconstructTheExactPostings) {
  // Same generation as both diff base and build input: every block's edge
  // plane matches, so the entire set must come out of the counting-sort
  // lift — and be bit-identical to the scratch build it replaces.
  const PointIcm model = SmallRandomModel(63, 12, 30);
  serve::SampleBank bank = MakeBank(model, 256, /*seed=*/64);
  const auto generation = bank.Acquire();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());

  auto scratch = RrSketchSet::Build(view, *generation);
  ASSERT_TRUE(scratch.ok()) << scratch.status();

  const obs::Counter& reused =
      obs::GetCounter("seedmax.sketch.blocks_reused_total");
  const std::uint64_t reused_before = reused.Value();
  RrBuildOptions incremental;
  incremental.previous = &*scratch;
  incremental.previous_rows = generation.get();
  auto lifted = RrSketchSet::Build(view, *generation, incremental);
  ASSERT_TRUE(lifted.ok()) << lifted.status();
  ExpectSketchSetsIdentical(*scratch, *lifted);
  if constexpr (obs::MetricsEnabled()) {
    const std::size_t num_blocks = (generation->num_rows() + 63) / 64;
    EXPECT_EQ(reused.Value(), reused_before + num_blocks);
  }
}

TEST(RrIndex, AcquireAfterRefreshIsBitIdenticalToScratchBuild) {
  // The end-to-end incremental path: the index diffs the new generation
  // against the one it last inverted and lifts unchanged blocks. Whatever
  // fraction is reused, the published set must equal a scratch build.
  const PointIcm model = SmallRandomModel(65, 12, 30);
  serve::SampleBank bank = MakeBank(model, 256, /*seed=*/66);
  RrIndex index(bank.graph_ptr(), /*num_threads=*/2);
  ASSERT_TRUE(index.Acquire(bank.Acquire()).ok());

  bank.Refresh();
  const auto generation = bank.Acquire();
  auto incremental = index.Acquire(generation);
  ASSERT_TRUE(incremental.ok()) << incremental.status();
  const ReversedGraphView view = ReversedGraphView::Build(bank.graph_ptr());
  auto scratch = RrSketchSet::Build(view, *generation);
  ASSERT_TRUE(scratch.ok()) << scratch.status();
  ExpectSketchSetsIdentical(*scratch, **incremental);
}

}  // namespace
}  // namespace infoflow::seedmax
