#include "learn/attributed.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Triangle() {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  return std::make_shared<const DirectedGraph>(std::move(b).Build());
}

AttributedObject FullCascade(const DirectedGraph& g) {
  AttributedObject obj;
  obj.sources = {0};
  obj.active_nodes = {0, 1, 2};
  obj.active_edges = {g.FindEdge(0, 1), g.FindEdge(1, 2)};
  return obj;
}

TEST(ValidateAttributed, AcceptsConsistentObject) {
  auto g = Triangle();
  AttributedEvidence ev;
  ev.objects.push_back(FullCascade(*g));
  EXPECT_TRUE(ValidateAttributedEvidence(*g, ev).ok());
}

TEST(ValidateAttributed, RejectsEmptySources) {
  auto g = Triangle();
  AttributedEvidence ev;
  ev.objects.push_back(AttributedObject{{}, {0}, {}});
  EXPECT_EQ(ValidateAttributedEvidence(*g, ev).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateAttributed, RejectsSourceNotActive) {
  auto g = Triangle();
  AttributedEvidence ev;
  ev.objects.push_back(AttributedObject{{0}, {1}, {}});
  EXPECT_FALSE(ValidateAttributedEvidence(*g, ev).ok());
}

TEST(ValidateAttributed, RejectsActiveEdgeWithInactiveParent) {
  auto g = Triangle();
  AttributedEvidence ev;
  // Node 1 inactive but edge 1->2 claimed active.
  ev.objects.push_back(
      AttributedObject{{0}, {0, 2}, {g->FindEdge(1, 2)}});
  EXPECT_FALSE(ValidateAttributedEvidence(*g, ev).ok());
}

TEST(ValidateAttributed, RejectsUnexplainedActiveNode) {
  auto g = Triangle();
  AttributedEvidence ev;
  // Node 2 active with no active incoming edge and not a source.
  ev.objects.push_back(AttributedObject{{0}, {0, 2}, {}});
  EXPECT_FALSE(ValidateAttributedEvidence(*g, ev).ok());
}

TEST(ValidateAttributed, RejectsOutOfRangeIds) {
  auto g = Triangle();
  AttributedEvidence ev;
  ev.objects.push_back(AttributedObject{{0}, {0, 7}, {}});
  EXPECT_EQ(ValidateAttributedEvidence(*g, ev).code(),
            StatusCode::kOutOfRange);
}

TEST(TrainBetaIcm, CountsMatchPaperAlgorithm) {
  auto g = Triangle();
  AttributedEvidence ev;
  ev.objects.push_back(FullCascade(*g));
  auto model = TrainBetaIcmFromAttributed(g, ev);
  ASSERT_TRUE(model.ok());
  // Edge 0->1 fired: α=2, β=1.
  EXPECT_DOUBLE_EQ(model->alpha(g->FindEdge(0, 1)), 2.0);
  EXPECT_DOUBLE_EQ(model->beta(g->FindEdge(0, 1)), 1.0);
  // Edge 1->2 fired: α=2, β=1.
  EXPECT_DOUBLE_EQ(model->alpha(g->FindEdge(1, 2)), 2.0);
  // Edge 0->2 had an active parent but did not fire: β=2.
  EXPECT_DOUBLE_EQ(model->alpha(g->FindEdge(0, 2)), 1.0);
  EXPECT_DOUBLE_EQ(model->beta(g->FindEdge(0, 2)), 2.0);
}

TEST(TrainBetaIcm, EdgesWithInactiveParentUntouched) {
  auto g = Triangle();
  AttributedEvidence ev;
  // Only node 1 is active (as its own source): edges from 0 carry no info.
  ev.objects.push_back(
      AttributedObject{{1}, {1, 2}, {g->FindEdge(1, 2)}});
  auto model = TrainBetaIcmFromAttributed(g, ev);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->alpha(g->FindEdge(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(model->beta(g->FindEdge(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(model->alpha(g->FindEdge(0, 2)), 1.0);
  EXPECT_DOUBLE_EQ(model->beta(g->FindEdge(0, 2)), 1.0);
}

TEST(TrainBetaIcm, AccumulatesAcrossObjects) {
  auto g = Triangle();
  AttributedEvidence ev;
  for (int i = 0; i < 10; ++i) ev.objects.push_back(FullCascade(*g));
  auto model = TrainBetaIcmFromAttributed(g, ev);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->alpha(g->FindEdge(0, 1)), 11.0);
  EXPECT_DOUBLE_EQ(model->beta(g->FindEdge(0, 2)), 11.0);
}

TEST(TrainBetaIcm, IncrementalUpdateEqualsBatch) {
  auto g = Triangle();
  AttributedEvidence ev;
  ev.objects.push_back(FullCascade(*g));
  ev.objects.push_back(AttributedObject{{1}, {1, 2}, {g->FindEdge(1, 2)}});
  auto batch = TrainBetaIcmFromAttributed(g, ev);
  ASSERT_TRUE(batch.ok());
  BetaIcm incremental = BetaIcm::Uninformed(g);
  for (const auto& obj : ev.objects) {
    ASSERT_TRUE(UpdateBetaIcmWithObject(incremental, obj).ok());
  }
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(batch->alpha(e), incremental.alpha(e));
    EXPECT_DOUBLE_EQ(batch->beta(e), incremental.beta(e));
  }
}

TEST(TrainBetaIcm, RecoversGeneratingFrequencies) {
  // Train on cascades sampled from a known ICM; the expected model should
  // approach the truth (the attributed learner's consistency).
  auto g = Triangle();
  std::vector<double> truth(3);
  truth[g->FindEdge(0, 1)] = 0.7;
  truth[g->FindEdge(1, 2)] = 0.4;
  truth[g->FindEdge(0, 2)] = 0.2;
  PointIcm generator(g, truth);
  Rng rng(5);
  AttributedEvidence ev;
  for (int i = 0; i < 4000; ++i) {
    const ActiveState s = generator.SampleCascade({0}, rng);
    AttributedObject obj;
    obj.sources = s.sources;
    obj.active_nodes = s.active_nodes;
    for (EdgeId e = 0; e < 3; ++e) {
      if (s.edge_active[e]) obj.active_edges.push_back(e);
    }
    ev.objects.push_back(std::move(obj));
  }
  auto model = TrainBetaIcmFromAttributed(g, ev);
  ASSERT_TRUE(model.ok());
  const PointIcm learned = model->ExpectedIcm();
  for (EdgeId e = 0; e < 3; ++e) {
    // Edge 1->2 and 0->2 see fewer parent activations, so looser bounds.
    EXPECT_NEAR(learned.prob(e), truth[e], 0.05) << "edge " << e;
  }
}

TEST(MergeBetaIcms, ShardedTrainingEqualsBatch) {
  auto g = Triangle();
  AttributedEvidence all, first, second;
  for (int i = 0; i < 6; ++i) {
    AttributedObject obj = FullCascade(*g);
    all.objects.push_back(obj);
    (i % 2 == 0 ? first : second).objects.push_back(obj);
  }
  auto batch = TrainBetaIcmFromAttributed(g, all);
  auto shard_a = TrainBetaIcmFromAttributed(g, first);
  auto shard_b = TrainBetaIcmFromAttributed(g, second);
  ASSERT_TRUE(batch.ok() && shard_a.ok() && shard_b.ok());
  auto merged = MergeBetaIcms(*shard_a, *shard_b);
  ASSERT_TRUE(merged.ok());
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(merged->alpha(e), batch->alpha(e)) << "edge " << e;
    EXPECT_DOUBLE_EQ(merged->beta(e), batch->beta(e)) << "edge " << e;
  }
}

TEST(MergeBetaIcms, MergingUntrainedIsIdentity) {
  auto g = Triangle();
  AttributedEvidence ev;
  ev.objects.push_back(FullCascade(*g));
  auto trained = TrainBetaIcmFromAttributed(g, ev);
  ASSERT_TRUE(trained.ok());
  auto merged = MergeBetaIcms(*trained, BetaIcm::Uninformed(g));
  ASSERT_TRUE(merged.ok());
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(merged->alpha(e), trained->alpha(e));
    EXPECT_DOUBLE_EQ(merged->beta(e), trained->beta(e));
  }
}

TEST(MergeBetaIcms, RejectsMismatchedGraphs) {
  auto g = Triangle();
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  auto other = std::make_shared<const DirectedGraph>(std::move(b).Build());
  EXPECT_FALSE(
      MergeBetaIcms(BetaIcm::Uninformed(g), BetaIcm::Uninformed(other)).ok());
  // Same counts but different endpoints.
  GraphBuilder c(3);
  c.AddEdge(0, 1).CheckOK();
  c.AddEdge(2, 1).CheckOK();
  c.AddEdge(0, 2).CheckOK();
  auto twisted = std::make_shared<const DirectedGraph>(std::move(c).Build());
  EXPECT_FALSE(
      MergeBetaIcms(BetaIcm::Uninformed(g), BetaIcm::Uninformed(twisted))
          .ok());
}

TEST(MergeBetaIcms, RejectsSubUniformPriors) {
  auto g = Triangle();
  const BetaIcm fractional(g, {0.4, 1.0, 1.0}, {1.0, 1.0, 1.0});
  EXPECT_FALSE(MergeBetaIcms(fractional, fractional).ok());
}

TEST(TrainBetaIcm, RejectsInvalidEvidence) {
  auto g = Triangle();
  AttributedEvidence ev;
  ev.objects.push_back(AttributedObject{{0}, {0, 2}, {}});
  EXPECT_FALSE(TrainBetaIcmFromAttributed(g, ev).ok());
}

}  // namespace
}  // namespace infoflow
