#include "graph/reachability.h"

#include <gtest/gtest.h>

#include "graph/graph.h"

namespace infoflow {
namespace {

// 0 -> 1 -> 2 -> 3, plus 0 -> 3 shortcut and a cycle 3 -> 1.
DirectedGraph Chain() {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  b.AddEdge(0, 3).CheckOK();
  b.AddEdge(3, 1).CheckOK();
  return std::move(b).Build();
}

std::vector<std::uint8_t> AllActive(const DirectedGraph& g) {
  return std::vector<std::uint8_t>(g.num_edges(), 1);
}

TEST(Reachability, AllEdgesActiveReachesEverything) {
  DirectedGraph g = Chain();
  ReachabilityWorkspace ws(g);
  ws.Run(g, {0}, AllActive(g));
  for (NodeId v = 0; v < 4; ++v) EXPECT_TRUE(ws.IsReached(v));
}

TEST(Reachability, NoEdgesActiveReachesOnlySources) {
  DirectedGraph g = Chain();
  ReachabilityWorkspace ws(g);
  ws.Run(g, {1}, std::vector<std::uint8_t>(g.num_edges(), 0));
  EXPECT_TRUE(ws.IsReached(1));
  EXPECT_FALSE(ws.IsReached(0));
  EXPECT_FALSE(ws.IsReached(2));
}

TEST(Reachability, RespectsInactiveEdges) {
  DirectedGraph g = Chain();
  auto active = AllActive(g);
  active[g.FindEdge(0, 1)] = 0;
  active[g.FindEdge(0, 3)] = 0;
  ReachabilityWorkspace ws(g);
  ws.Run(g, {0}, active);
  EXPECT_TRUE(ws.IsReached(0));
  EXPECT_FALSE(ws.IsReached(1));
  EXPECT_FALSE(ws.IsReached(2));
  EXPECT_FALSE(ws.IsReached(3));
}

TEST(Reachability, FollowsCycles) {
  DirectedGraph g = Chain();
  auto active = std::vector<std::uint8_t>(g.num_edges(), 0);
  active[g.FindEdge(0, 3)] = 1;
  active[g.FindEdge(3, 1)] = 1;
  active[g.FindEdge(1, 2)] = 1;
  ReachabilityWorkspace ws(g);
  ws.Run(g, {0}, active);
  EXPECT_TRUE(ws.IsReached(2));  // 0 -> 3 -> 1 -> 2 through the back edge
}

TEST(Reachability, MultiSourceUnion) {
  DirectedGraph g = Chain();
  auto active = std::vector<std::uint8_t>(g.num_edges(), 0);
  active[g.FindEdge(1, 2)] = 1;
  ReachabilityWorkspace ws(g);
  ws.Run(g, {0, 1}, active);
  EXPECT_TRUE(ws.IsReached(0));
  EXPECT_TRUE(ws.IsReached(1));
  EXPECT_TRUE(ws.IsReached(2));
  EXPECT_FALSE(ws.IsReached(3));
}

TEST(Reachability, RunUntilShortCircuits) {
  DirectedGraph g = Chain();
  ReachabilityWorkspace ws(g);
  EXPECT_TRUE(ws.RunUntil(g, {0}, AllActive(g), 3));
  EXPECT_FALSE(
      ws.RunUntil(g, {2}, std::vector<std::uint8_t>(g.num_edges(), 0), 0));
}

TEST(Reachability, SourceIsTriviallyReached) {
  DirectedGraph g = Chain();
  ReachabilityWorkspace ws(g);
  EXPECT_TRUE(
      ws.RunUntil(g, {2}, std::vector<std::uint8_t>(g.num_edges(), 0), 2));
}

TEST(Reachability, ReachedNodesInBfsOrder) {
  DirectedGraph g = Chain();
  ReachabilityWorkspace ws(g);
  ws.Run(g, {0}, AllActive(g));
  const auto& order = ws.ReachedNodes();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0u);  // source first
}

TEST(Reachability, WorkspaceReusableAcrossQueries) {
  DirectedGraph g = Chain();
  ReachabilityWorkspace ws(g);
  for (int i = 0; i < 100; ++i) {
    ws.Run(g, {0}, AllActive(g));
    EXPECT_TRUE(ws.IsReached(3));
    ws.Run(g, {2}, std::vector<std::uint8_t>(g.num_edges(), 0));
    EXPECT_FALSE(ws.IsReached(3));
  }
}

TEST(Reachability, VersionWrapDoesNotLeakStaleVisitedMarks) {
  DirectedGraph g = Chain();
  ReachabilityWorkspace ws(g);
  const std::vector<std::uint8_t> none(g.num_edges(), 0);
  // First run on a fresh workspace stamps every reached node with version 1.
  ws.Run(g, {0}, AllActive(g));
  ASSERT_TRUE(ws.IsReached(3));
  // Force the counter to its maximum: the next run wraps to 0, and its
  // post-wrap version is again 1 — exactly what the first run wrote. The
  // wrap-and-clear must erase those stamps or node 3's stale mark would
  // read as visited and leak a false "reached".
  ws.ForceVersionForTesting(0xFFFFFFFFu);
  ws.Run(g, {2}, none);
  EXPECT_TRUE(ws.IsReached(2));
  EXPECT_FALSE(ws.IsReached(3));
  EXPECT_FALSE(ws.IsReached(0));
  // And the workspace keeps alternating correctly after the wrap.
  for (int i = 0; i < 4; ++i) {
    ws.Run(g, {0}, AllActive(g));
    EXPECT_TRUE(ws.IsReached(3));
    ws.Run(g, {1}, none);
    EXPECT_FALSE(ws.IsReached(3));
  }
}

TEST(Reachability, VersionWrapDuringRunUntilPacked) {
  DirectedGraph g = Chain();
  ReachabilityWorkspace ws(g);
  std::vector<std::uint64_t> all(PackedRowWords(g.num_edges()),
                                 ~std::uint64_t{0});
  std::vector<std::uint64_t> none(PackedRowWords(g.num_edges()), 0);
  ASSERT_TRUE(ws.RunUntilPacked(g, {0}, all.data(), 3));
  ws.ForceVersionForTesting(0xFFFFFFFFu);
  EXPECT_FALSE(ws.RunUntilPacked(g, {2}, none.data(), 3));
}

TEST(Reachability, OneShotHelpers) {
  DirectedGraph g = Chain();
  EXPECT_TRUE(FlowExists(g, 0, 2, AllActive(g)));
  EXPECT_FALSE(
      FlowExists(g, 1, 0, AllActive(g)));  // no path back to 0 at all
  const auto nodes =
      ActiveNodes(g, {0}, AllActive(g));
  EXPECT_EQ(nodes.size(), 4u);
}

TEST(ReachabilityDeath, EdgeMaskSizeMismatch) {
  DirectedGraph g = Chain();
  ReachabilityWorkspace ws(g);
  std::vector<std::uint8_t> wrong(g.num_edges() + 1, 1);
  EXPECT_DEATH(ws.Run(g, {0}, wrong), "lhs");
}

}  // namespace
}  // namespace infoflow
