#include "core/beta_icm.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Pair() {
  GraphBuilder b(2);
  b.AddEdge(0, 1).CheckOK();
  return std::make_shared<const DirectedGraph>(std::move(b).Build());
}

TEST(BetaIcm, UninformedStartsUniform) {
  BetaIcm model = BetaIcm::Uninformed(Pair());
  EXPECT_DOUBLE_EQ(model.alpha(0), 1.0);
  EXPECT_DOUBLE_EQ(model.beta(0), 1.0);
  EXPECT_DOUBLE_EQ(model.EdgeBeta(0).Mean(), 0.5);
}

TEST(BetaIcm, CountingUpdates) {
  BetaIcm model = BetaIcm::Uninformed(Pair());
  model.AddSuccess(0);
  model.AddSuccess(0);
  model.AddFailure(0);
  EXPECT_DOUBLE_EQ(model.alpha(0), 3.0);
  EXPECT_DOUBLE_EQ(model.beta(0), 2.0);
}

TEST(BetaIcm, ExpectedIcmUsesMeanTransform) {
  BetaIcm model(Pair(), {3.0}, {1.0});
  const PointIcm expected = model.ExpectedIcm();
  EXPECT_DOUBLE_EQ(expected.prob(0), 0.75);
}

TEST(BetaIcm, SampleIcmMatchesBetaMoments) {
  BetaIcm model(Pair(), {16.0}, {4.0});
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(model.SampleIcm(rng).prob(0));
  EXPECT_NEAR(stats.Mean(), 0.8, 0.01);
  EXPECT_NEAR(stats.Variance(), model.EdgeBeta(0).Variance(), 0.002);
}

TEST(BetaIcm, GaussianSampleClampedToUnitInterval) {
  // A near-boundary Beta: the Gaussian approximation would stray outside.
  BetaIcm model(Pair(), {1.0}, {45.0});
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    const double p = model.SampleIcmGaussian(rng).prob(0);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(BetaIcm, RandomSyntheticWithinRanges) {
  GraphBuilder b(10);
  Rng graph_rng(9);
  for (NodeId v = 1; v < 10; ++v) b.AddEdge(0, v).CheckOK();
  auto g = std::make_shared<const DirectedGraph>(std::move(b).Build());
  Rng rng(10);
  BetaIcm model = BetaIcm::RandomSynthetic(g, rng, 1.0, 20.0, 1.0, 20.0);
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    EXPECT_GE(model.alpha(e), 1.0);
    EXPECT_LT(model.alpha(e), 20.0);
    EXPECT_GE(model.beta(e), 1.0);
    EXPECT_LT(model.beta(e), 20.0);
  }
}

TEST(BetaIcm, SharedGraphAcrossSampledModels) {
  BetaIcm model = BetaIcm::Uninformed(Pair());
  Rng rng(11);
  const PointIcm a = model.SampleIcm(rng);
  const PointIcm b = model.SampleIcm(rng);
  EXPECT_EQ(a.graph_ptr().get(), b.graph_ptr().get());
}

TEST(BetaIcmDeath, RejectsNonPositiveParameters) {
  EXPECT_DEATH(BetaIcm(Pair(), {0.0}, {1.0}), "non-positive");
}

}  // namespace
}  // namespace infoflow
