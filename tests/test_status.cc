#include "util/status.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(Status, ErrorFactoriesSetCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, MessageConcatenatesStreamedArguments) {
  Status s = Status::InvalidArgument("probability ", 1.5, " outside [0,", 1,
                                     "]");
  EXPECT_EQ(s.message(), "probability 1.5 outside [0,1]");
}

TEST(Status, ToStringIncludesCodeName) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "not-found: missing thing");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(Status, StreamInsertion) {
  std::ostringstream oss;
  oss << Status::IOError("disk");
  EXPECT_EQ(oss.str(), "io-error: disk");
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "parse-error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "deadline-exceeded");
}

TEST(StatusMacros, ReturnNotOkPropagates) {
  auto fails = []() -> Status {
    IF_RETURN_NOT_OK(Status::IOError("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kIOError);
  auto succeeds = []() -> Status {
    IF_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kInvalidArgument);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, ValueOrFallback) {
  Result<int> ok = 7;
  Result<int> err = Status::NotFound("x");
  EXPECT_EQ(ok.ValueOr(0), 7);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(Result, MutableAccess) {
  Result<std::vector<int>> r = std::vector<int>{1};
  r->push_back(2);
  EXPECT_EQ(r->size(), 2u);
}

TEST(Result, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultDeath, ValueOrDieOnErrorAborts) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_DEATH((void)r.ValueOrDie(), "not-found");
}

}  // namespace
}  // namespace infoflow
