#include "core/multi_chain.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_flow.h"
#include "graph/generators.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

PointIcm SmallRandomModel(std::uint64_t seed, NodeId nodes, EdgeId edges) {
  Rng rng(seed);
  auto g = Share(UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.Uniform(0.1, 0.9);
  return PointIcm(g, probs);
}

MultiChainOptions FastOptions(std::size_t chains, std::size_t threads = 0) {
  MultiChainOptions opt;
  opt.num_chains = chains;
  opt.num_threads = threads;
  opt.mh.burn_in = 1500;
  opt.mh.thinning = 5;
  return opt;
}

TEST(MultiChain, SeedDerivationIsPinned) {
  // The documented contract: SplitMix64 finalizer over
  // seed + (k+1)·0x9e3779b97f4a7c15. Changing it breaks reproducibility of
  // published runs, so the constants are pinned here.
  const std::uint64_t s0 = MultiChainSampler::DeriveChainSeed(42, 0);
  const std::uint64_t s1 = MultiChainSampler::DeriveChainSeed(42, 1);
  EXPECT_NE(s0, s1);
  auto splitmix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  EXPECT_EQ(s0, splitmix(42 + 0x9e3779b97f4a7c15ULL));
  EXPECT_EQ(s1, splitmix(42 + 2 * 0x9e3779b97f4a7c15ULL));
}

TEST(MultiChain, FixedSeedIsDeterministicAcrossThreadPoolSizes) {
  // The engine's core determinism promise: scheduling must never leak into
  // the estimate. Same seed, pool sizes 1 / 2 / 8 → bit-identical results.
  PointIcm model = SmallRandomModel(5, 8, 18);
  auto estimate_with_threads = [&](std::size_t threads) {
    auto engine =
        MultiChainSampler::Create(model, {}, FastOptions(4, threads), 99);
    EXPECT_TRUE(engine.ok());
    return engine->EstimateFlowProbability(0, 7, 4000);
  };
  const MultiChainEstimate serial = estimate_with_threads(1);
  const MultiChainEstimate two = estimate_with_threads(2);
  const MultiChainEstimate wide = estimate_with_threads(8);
  EXPECT_DOUBLE_EQ(serial.value, two.value);
  EXPECT_DOUBLE_EQ(serial.value, wide.value);
  EXPECT_DOUBLE_EQ(serial.diagnostics.rhat, wide.diagnostics.rhat);
  EXPECT_DOUBLE_EQ(serial.diagnostics.ess, wide.diagnostics.ess);
  EXPECT_DOUBLE_EQ(serial.diagnostics.mcse, wide.diagnostics.mcse);
}

TEST(MultiChain, CommunityFlowIsDeterministicAcrossThreadPoolSizes) {
  PointIcm model = SmallRandomModel(6, 8, 18);
  const std::vector<NodeId> sinks{1, 3, 5, 7};
  auto estimate_with_threads = [&](std::size_t threads) {
    auto engine =
        MultiChainSampler::Create(model, {}, FastOptions(4, threads), 7);
    EXPECT_TRUE(engine.ok());
    return engine->EstimateCommunityFlow(0, sinks, 2000);
  };
  const auto serial = estimate_with_threads(1);
  const auto wide = estimate_with_threads(8);
  ASSERT_EQ(serial.size(), sinks.size());
  for (std::size_t j = 0; j < sinks.size(); ++j) {
    EXPECT_DOUBLE_EQ(serial[j].value, wide[j].value) << "sink " << sinks[j];
    EXPECT_DOUBLE_EQ(serial[j].diagnostics.ess, wide[j].diagnostics.ess);
  }
}

TEST(MultiChain, ChainPrefixIsStableWhenAddingChains) {
  // Chains 0..K−1 of a K-chain engine equal the first K of a K+1-chain
  // engine (the seed contract: per-chain streams depend on k, not K).
  PointIcm model = SmallRandomModel(5, 8, 18);
  auto four = MultiChainSampler::Create(model, {}, FastOptions(4, 1), 31);
  auto five = MultiChainSampler::Create(model, {}, FastOptions(5, 1), 31);
  ASSERT_TRUE(four.ok() && five.ok());
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(four->chain(k).state(), five->chain(k).state()) << "chain " << k;
  }
}

TEST(MultiChain, MatchesExactEnumeration) {
  PointIcm model = SmallRandomModel(11, 7, 14);
  const double exact = ExactFlowByEnumeration(model, 0, 6);
  auto engine = MultiChainSampler::Create(model, {}, FastOptions(8), 4242);
  ASSERT_TRUE(engine.ok());
  const MultiChainEstimate est = engine->EstimateFlowProbability(0, 6, 24000);
  EXPECT_NEAR(est.value, exact, 0.02);
  // The reported MC error must cover the actual deviation (generously: 4σ).
  EXPECT_LE(std::abs(est.value - exact),
            std::max(4.0 * est.diagnostics.mcse, 0.02));
  EXPECT_TRUE(est.diagnostics.Converged(1.1, 100.0))
      << est.diagnostics.ToString();
}

TEST(MultiChain, AgreesWithSingleChainSampler) {
  PointIcm model = SmallRandomModel(22, 7, 14);
  MhOptions mh;
  mh.burn_in = 1500;
  mh.thinning = 5;
  auto single = MhSampler::Create(model, {}, mh, Rng(17));
  ASSERT_TRUE(single.ok());
  const double single_estimate = single->EstimateFlowProbability(0, 5, 24000);
  auto engine = MultiChainSampler::Create(model, {}, FastOptions(6), 17);
  ASSERT_TRUE(engine.ok());
  const MultiChainEstimate multi = engine->EstimateFlowProbability(0, 5, 24000);
  EXPECT_NEAR(multi.value, single_estimate, 0.025);
}

TEST(MultiChain, ConditionalEstimateMatchesEnumeration) {
  PointIcm model = SmallRandomModel(44, 7, 14);
  const FlowConditions cond{{0, 1, true}};
  auto exact = ExactConditionalFlowByEnumeration(model, 0, 4, cond);
  ASSERT_TRUE(exact.ok());
  auto engine = MultiChainSampler::Create(model, cond, FastOptions(6), 1234);
  ASSERT_TRUE(engine.ok());
  const MultiChainEstimate est = engine->EstimateFlowProbability(0, 4, 24000);
  EXPECT_NEAR(est.value, *exact, 0.025);
}

TEST(MultiChain, CommunityFlowMatchesPerSinkEnumeration) {
  PointIcm model = SmallRandomModel(55, 7, 14);
  const std::vector<NodeId> sinks{1, 2, 4, 6};
  auto engine = MultiChainSampler::Create(model, {}, FastOptions(6), 55);
  ASSERT_TRUE(engine.ok());
  const auto estimates = engine->EstimateCommunityFlow(0, sinks, 24000);
  ASSERT_EQ(estimates.size(), sinks.size());
  for (std::size_t j = 0; j < sinks.size(); ++j) {
    EXPECT_NEAR(estimates[j].value, ExactFlowByEnumeration(model, 0, sinks[j]),
                0.025)
        << "sink " << sinks[j];
  }
}

TEST(MultiChain, JointFlowMatchesEnumeration) {
  PointIcm model = SmallRandomModel(66, 7, 14);
  const FlowConditions flows{{0, 3, true}, {0, 5, true}};
  const double exact = ExactJointFlowByEnumeration(model, flows);
  auto engine = MultiChainSampler::Create(model, {}, FastOptions(6), 66);
  ASSERT_TRUE(engine.ok());
  EXPECT_NEAR(engine->EstimateJointFlowProbability(flows, 24000).value, exact,
              0.025);
}

TEST(MultiChain, DispersionMergesAllChains) {
  PointIcm model = SmallRandomModel(77, 8, 18);
  auto engine = MultiChainSampler::Create(model, {}, FastOptions(4), 77);
  ASSERT_TRUE(engine.ok());
  const DispersionEstimate disp = engine->SampleDispersion(0, 1000);
  // 1000 rounds up to 250 per chain × 4 chains.
  EXPECT_EQ(disp.counts.size(), 1000u);
  EXPECT_EQ(disp.diagnostics.num_chains, 4u);
  for (std::uint32_t c : disp.counts) EXPECT_LT(c, 8u);
}

TEST(MultiChain, BatchAndScalarReachabilityAgreeBitForBit) {
  // The bit-parallel estimators must be exact drop-ins: indicators are
  // deterministic and the chains' RNG streams untouched, so batch and
  // scalar engines with the same seed produce identical draws — hence
  // identical estimates and diagnostics. 777 samples over 3 chains →
  // 259 per chain: not a multiple of 64, so every chain evaluates ragged
  // tail blocks too.
  PointIcm model = SmallRandomModel(21, 10, 26);
  MultiChainOptions batch_options = FastOptions(3);
  MultiChainOptions scalar_options = FastOptions(3);
  scalar_options.use_batch_reachability = false;
  auto batch = MultiChainSampler::Create(model, {}, batch_options, 64);
  auto scalar = MultiChainSampler::Create(model, {}, scalar_options, 64);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(scalar.ok());

  const std::size_t samples = 777;
  const MultiChainEstimate flow_b =
      batch->EstimateFlowProbability(0, 9, samples);
  const MultiChainEstimate flow_s =
      scalar->EstimateFlowProbability(0, 9, samples);
  EXPECT_DOUBLE_EQ(flow_b.value, flow_s.value);
  EXPECT_DOUBLE_EQ(flow_b.diagnostics.mcse, flow_s.diagnostics.mcse);

  const auto community_b =
      batch->EstimateCommunityFlowMulti({0, 3}, {5, 7, 9}, samples);
  const auto community_s =
      scalar->EstimateCommunityFlowMulti({0, 3}, {5, 7, 9}, samples);
  for (std::size_t j = 0; j < community_b.size(); ++j) {
    EXPECT_DOUBLE_EQ(community_b[j].value, community_s[j].value);
  }

  const FlowConditions flows = {{0, 5, true}, {1, 7, false}};
  EXPECT_DOUBLE_EQ(
      batch->EstimateJointFlowProbability(flows, samples).value,
      scalar->EstimateJointFlowProbability(flows, samples).value);

  const DispersionEstimate disp_b = batch->SampleDispersion(0, samples);
  const DispersionEstimate disp_s = scalar->SampleDispersion(0, samples);
  ASSERT_EQ(disp_b.counts.size(), disp_s.counts.size());
  for (std::size_t i = 0; i < disp_b.counts.size(); ++i) {
    ASSERT_EQ(disp_b.counts[i], disp_s.counts[i]) << "sample " << i;
  }
}

TEST(MultiChain, SampleCountRoundsUpToChainMultiple) {
  PointIcm model = SmallRandomModel(5, 6, 10);
  auto engine = MultiChainSampler::Create(model, {}, FastOptions(4), 1);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->SamplesPerChain(1000), 250u);
  EXPECT_EQ(engine->SamplesPerChain(1001), 251u);
  EXPECT_EQ(engine->SamplesPerChain(1), 1u);
}

TEST(MultiChain, UnsatisfiableConditionsFailToCreate) {
  // A disconnected pair: 0 ⤳ 1 can never hold, exactly as MhSampler.
  GraphBuilder b(3);
  b.AddEdge(1, 2).CheckOK();
  auto g = Share(std::move(b).Build());
  PointIcm model = PointIcm::Constant(g, 0.5);
  auto engine = MultiChainSampler::Create(model, {{0, 1, true}},
                                          FastOptions(4), 3);
  EXPECT_FALSE(engine.ok());
}

TEST(MultiChain, OptionsValidate) {
  MultiChainOptions opt;
  opt.num_chains = 0;
  EXPECT_FALSE(opt.Validate().ok());
  opt.num_chains = 1u << 13;
  EXPECT_FALSE(opt.Validate().ok());
  opt.num_chains = 8;
  EXPECT_TRUE(opt.Validate().ok());
  opt.mh.burn_in = 1u << 27;
  EXPECT_FALSE(opt.Validate().ok());
}

TEST(MultiChain, StepCountersAggregateAcrossChains) {
  PointIcm model = SmallRandomModel(5, 6, 10);
  MultiChainOptions opt = FastOptions(4);
  opt.mh.burn_in = 100;
  opt.mh.thinning = 3;
  auto engine = MultiChainSampler::Create(model, {}, opt, 5);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->steps_taken(), 0u);
  engine->EstimateFlowProbability(0, 5, 400);  // 100 retained per chain
  // Per chain: 100-step burn-in + 99·(thinning+1) further steps.
  EXPECT_EQ(engine->steps_taken(), 4u * (100u + 99u * 4u));
  EXPECT_GT(engine->steps_accepted(), 0u);
  EXPECT_LE(engine->steps_accepted(), engine->steps_taken());
}

TEST(MultiChain, DeliberatelyShortRunsReportLowEss) {
  // 8 retained samples per chain cannot carry much information — the
  // diagnostics must say so rather than flatter the caller.
  PointIcm model = SmallRandomModel(5, 8, 18);
  MultiChainOptions opt = FastOptions(2);
  opt.mh.burn_in = 0;  // deliberately unconverged: no burn-in, no thinning
  opt.mh.thinning = 0;
  auto engine = MultiChainSampler::Create(model, {}, opt, 11);
  ASSERT_TRUE(engine.ok());
  const MultiChainEstimate est = engine->EstimateFlowProbability(0, 7, 16);
  EXPECT_FALSE(est.diagnostics.Converged())
      << est.diagnostics.ToString();
}

}  // namespace
}  // namespace infoflow
