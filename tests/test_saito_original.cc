#include "learn/saito_original.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "learn/saito_em.h"
#include "learn/summary.h"
#include "util/timer.h"

namespace infoflow {
namespace {

/// Random star traces with explicit integer times (discrete steps).
UnattributedEvidence DiscreteTraces(std::size_t parents,
                                    std::size_t objects, std::uint64_t seed) {
  Rng rng(seed);
  UnattributedEvidence ev;
  const auto sink = static_cast<NodeId>(parents);
  for (std::size_t o = 0; o < objects; ++o) {
    ObjectTrace trace;
    bool any = false;
    for (NodeId p = 0; p < sink; ++p) {
      if (rng.Bernoulli(0.6)) {
        // All implicated parents activate at step 1; sink (maybe) at 2.
        trace.activations.push_back({p, 1.0});
        any = true;
      }
    }
    if (!any) continue;
    if (rng.Bernoulli(0.5)) trace.activations.push_back({sink, 2.0});
    ev.traces.push_back(std::move(trace));
  }
  return ev;
}

TEST(SaitoOriginal, SingleParentFrequency) {
  const DirectedGraph graph = StarFragment(1);
  UnattributedEvidence ev;
  for (int i = 0; i < 20; ++i) {
    ObjectTrace trace;
    trace.activations.push_back({0, 1.0});
    if (i < 8) trace.activations.push_back({1, 2.0});
    ev.traces.push_back(std::move(trace));
  }
  SaitoOriginalOptions opt;
  Rng rng(1);
  const auto fit = FitSaitoOriginal(graph, 1, ev, opt, rng);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.estimate[0], 0.4, 1e-6);
}

// The Appendix claim: the summarized EM (saito_em.h) computes the same
// iterates as the original raw-trace EM when both use the same
// responsibility structure. Run both with identical initialization and
// iteration budget and compare the estimates exactly.
TEST(SaitoOriginal, SummarizedEmIsEquivalent) {
  const std::size_t parents = 4;
  const DirectedGraph graph = StarFragment(parents);
  const auto sink = static_cast<NodeId>(parents);
  const UnattributedEvidence ev = DiscreteTraces(parents, 400, 7);

  SummaryOptions summary_opt;
  summary_opt.policy = CharacteristicPolicy::kDiscreteStep;
  summary_opt.discrete_step = 1.0;
  const SinkSummary summary = BuildSinkSummary(graph, sink, ev, summary_opt);

  for (const std::size_t iterations : {1u, 3u, 10u, 200u}) {
    SaitoEmOptions em;
    em.max_iterations = iterations;
    em.tolerance = 0.0;
    em.random_init = false;
    Rng rng_a(2);
    const SaitoEmResult summarized = FitSaitoEm(summary, em, rng_a);

    SaitoOriginalOptions orig;
    orig.max_iterations = iterations;
    orig.tolerance = 0.0;
    orig.time_step = 1.0;
    Rng rng_b(2);
    const SaitoOriginalResult original =
        FitSaitoOriginal(graph, sink, ev, orig, rng_b);

    ASSERT_EQ(summarized.estimate.size(), original.estimate.size());
    for (std::size_t j = 0; j < parents; ++j) {
      EXPECT_NEAR(summarized.estimate[j], original.estimate[j], 1e-12)
          << "iterations=" << iterations << " parent=" << j;
    }
  }
}

TEST(SaitoOriginal, DiscreteWindowExcludesEarlyParents) {
  // Parent 0 active at t=1, parent 1 at t=4, sink at t=5 with step 1.5:
  // only parent 1 is implicated, so only it earns the credit.
  const DirectedGraph graph = StarFragment(2);
  UnattributedEvidence ev;
  for (int i = 0; i < 30; ++i) {
    ObjectTrace trace;
    trace.activations.push_back({0, 1.0});
    trace.activations.push_back({1, 4.0});
    if (i < 15) trace.activations.push_back({2, 5.0});
    ev.traces.push_back(std::move(trace));
  }
  SaitoOriginalOptions opt;
  opt.time_step = 1.5;
  Rng rng(3);
  const auto fit = FitSaitoOriginal(graph, 2, ev, opt, rng);
  // For the 15 negative objects the sink never activates, so both parents
  // count as exposed (active before end); parent 0 was never implicated in
  // a leak.
  EXPECT_LT(fit.estimate[0], 0.05);
  EXPECT_GT(fit.estimate[1], 0.3);
}

TEST(SaitoOriginal, SummarizationIsFaster) {
  // The Appendix's computational argument: the summarized EM iterates over
  // ω unique characteristics instead of m raw objects.
  const std::size_t parents = 6;
  const DirectedGraph graph = StarFragment(parents);
  const auto sink = static_cast<NodeId>(parents);
  const UnattributedEvidence ev = DiscreteTraces(parents, 20000, 11);
  SummaryOptions summary_opt;
  summary_opt.policy = CharacteristicPolicy::kDiscreteStep;
  const SinkSummary summary = BuildSinkSummary(graph, sink, ev, summary_opt);
  EXPECT_LT(summary.rows.size(), 64u);  // ω = O(2^parents) << 20000

  SaitoEmOptions em;
  em.max_iterations = 50;
  em.tolerance = 0.0;
  em.random_init = false;
  SaitoOriginalOptions orig;
  orig.max_iterations = 50;
  orig.tolerance = 0.0;
  Rng rng(4);
  WallTimer timer;
  FitSaitoEm(summary, em, rng);
  const double summarized_time = timer.Seconds();
  timer.Restart();
  FitSaitoOriginal(graph, sink, ev, orig, rng);
  const double original_time = timer.Seconds();
  EXPECT_LT(summarized_time * 5.0, original_time)
      << "summarized " << summarized_time << "s vs original "
      << original_time << "s";
}

TEST(SaitoOriginal, NoParentsConvergesTrivially) {
  GraphBuilder b(2);
  b.AddEdge(0, 1).CheckOK();
  const DirectedGraph graph = std::move(b).Build();
  Rng rng(5);
  const auto fit = FitSaitoOriginal(graph, 0, {}, SaitoOriginalOptions{}, rng);
  EXPECT_TRUE(fit.converged);
  EXPECT_TRUE(fit.estimate.empty());
}

}  // namespace
}  // namespace infoflow
