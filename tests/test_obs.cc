#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace infoflow::obs {
namespace {

// The registry is process-global and shared with other tests in the binary;
// every test uses unique metric names and tolerates unrelated entries in
// snapshots.

// ----------------------------------------------------------------- counters

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter& c = GetCounter("test.counter.basic");
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Counter, SameNameReturnsSameHandle) {
  Counter& a = GetCounter("test.counter.same");
  Counter& b = GetCounter("test.counter.same");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter& c = GetCounter("test.counter.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

// ------------------------------------------------------------------- gauges

TEST(Gauge, LastWriteWins) {
  Gauge& g = GetGauge("test.gauge.basic");
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.25);
  EXPECT_EQ(g.Value(), 3.25);
  g.Set(-1e300);
  EXPECT_EQ(g.Value(), -1e300);
}

// --------------------------------------------------------------- histograms

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram& h = GetHistogram("test.hist.bounds", {1.0, 10.0, 100.0});
  h.Record(0.5);    // <= 1        -> bucket 0
  h.Record(1.0);    // == bound 0  -> bucket 0 (v <= bounds[i])
  h.Record(1.0001); //             -> bucket 1
  h.Record(10.0);   // == bound 1  -> bucket 1
  h.Record(100.0);  // == bound 2  -> bucket 2
  h.Record(100.5);  // above last  -> overflow bucket 3
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.total, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 100.5);
  EXPECT_DOUBLE_EQ(snap.Mean(), snap.sum / 6.0);
}

TEST(Histogram, AddBatchMatchesEquivalentRecords) {
  Histogram& recorded = GetHistogram("test.hist.recorded", {1.0, 2.0});
  Histogram& batched = GetHistogram("test.hist.batched", {1.0, 2.0});
  recorded.Record(0.5);
  recorded.Record(0.5);
  recorded.Record(1.5);
  recorded.Record(9.0);
  const std::uint64_t counts[3] = {2, 1, 1};
  batched.AddBatch(counts, 3, 0.5 + 0.5 + 1.5 + 9.0);
  const HistogramSnapshot a = recorded.Snapshot();
  const HistogramSnapshot b = batched.Snapshot();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.total, b.total);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
}

TEST(Histogram, AddBatchWithWrongStrideIsDropped) {
  Histogram& h = GetHistogram("test.hist.stride", {1.0, 2.0});
  const std::uint64_t wrong[2] = {5, 5};
  h.AddBatch(wrong, 2, 10.0);  // stride is 3 (2 bounds + overflow)
  EXPECT_EQ(h.Snapshot().total, 0u);
}

TEST(Histogram, ConcurrentRecordsSumExactly) {
  Histogram& h = GetHistogram("test.hist.concurrent", {0.0, 1.0, 2.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>((t + i) % 4));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, snap.total);
}

TEST(Histogram, FirstRegistrationBoundsWin) {
  Histogram& a = GetHistogram("test.hist.firstwins", {1.0, 2.0});
  Histogram& b = GetHistogram("test.hist.firstwins", {99.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds(), (std::vector<double>{1.0, 2.0}));
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistry, SnapshotContainsRegisteredMetrics) {
  GetCounter("test.reg.counter").Increment(7);
  GetGauge("test.reg.gauge").Set(2.5);
  GetHistogram("test.reg.hist", {1.0}).Record(0.5);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE(snap.counters.contains("test.reg.counter"));
  EXPECT_EQ(snap.counters.at("test.reg.counter"), 7u);
  ASSERT_TRUE(snap.gauges.contains("test.reg.gauge"));
  EXPECT_EQ(snap.gauges.at("test.reg.gauge"), 2.5);
  ASSERT_TRUE(snap.histograms.contains("test.reg.hist"));
  EXPECT_EQ(snap.histograms.at("test.reg.hist").total, 1u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandles) {
  Counter& c = GetCounter("test.reg.reset.counter");
  Gauge& g = GetGauge("test.reg.reset.gauge");
  Histogram& h = GetHistogram("test.reg.reset.hist", {1.0});
  c.Increment(5);
  g.Set(1.0);
  h.Record(0.5);
  MetricsRegistry::Global().Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Snapshot().total, 0u);
  // The handles stay live and writable after Reset.
  c.Increment();
  EXPECT_EQ(c.Value(), 1u);
}

// -------------------------------------------------- JSON / CSV serialization

/// A deliberately minimal recursive-descent JSON parser — just enough to
/// prove the serializers emit well-formed JSON with the expected structure.
/// Numbers are parsed with strtod; objects/arrays recurse; no unicode
/// unescaping (the suite only emits ASCII names).
class MiniJson {
 public:
  struct Value {
    enum class Kind { kNull, kNumber, kString, kArray, kObject } kind =
        Kind::kNull;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;
  };

  static bool Parse(const std::string& text, Value* out) {
    MiniJson parser(text);
    if (!parser.ParseValue(out)) return false;
    parser.SkipSpace();
    return parser.pos_ == text.size();
  }

 private:
  explicit MiniJson(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      out->push_back(text_[pos_++]);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseValue(Value* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = Value::Kind::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      do {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        if (!ParseValue(&out->object[key])) return false;
      } while (Consume(','));
      return Consume('}');
    }
    if (c == '[') {
      ++pos_;
      out->kind = Value::Kind::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      do {
        Value element;
        if (!ParseValue(&element)) return false;
        out->array.push_back(std::move(element));
      } while (Consume(','));
      return Consume(']');
    }
    if (c == '"') {
      out->kind = Value::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = Value::Kind::kNull;
      pos_ += 4;
      return true;
    }
    char* end = nullptr;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    out->kind = Value::Kind::kNumber;
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(MetricsSnapshot, ToJsonParsesBackWithExpectedValues) {
  GetCounter("test.json.counter").Increment(11);
  GetGauge("test.json.gauge").Set(0.75);
  GetHistogram("test.json.hist", {1.0, 2.0}).Record(1.5);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  MiniJson::Value root;
  ASSERT_TRUE(MiniJson::Parse(snap.ToJson(), &root)) << snap.ToJson();
  ASSERT_EQ(root.kind, MiniJson::Value::Kind::kObject);
  const MiniJson::Value& counters = root.object.at("counters");
  EXPECT_EQ(counters.object.at("test.json.counter").number, 11.0);
  const MiniJson::Value& gauges = root.object.at("gauges");
  EXPECT_EQ(gauges.object.at("test.json.gauge").number, 0.75);
  const MiniJson::Value& hist =
      root.object.at("histograms").object.at("test.json.hist");
  ASSERT_EQ(hist.object.at("bounds").array.size(), 2u);
  ASSERT_EQ(hist.object.at("counts").array.size(), 3u);
  EXPECT_EQ(hist.object.at("counts").array[1].number, 1.0);
  EXPECT_EQ(hist.object.at("total").number, 1.0);
}

TEST(MetricsSnapshot, ToJsonEscapesNamesAndHandlesNonFinite) {
  MetricsSnapshot snap;
  snap.counters["with \"quote\" and \\slash\\"] = 1;
  snap.gauges["nan.gauge"] = std::numeric_limits<double>::quiet_NaN();
  snap.gauges["inf.gauge"] = std::numeric_limits<double>::infinity();
  MiniJson::Value root;
  ASSERT_TRUE(MiniJson::Parse(snap.ToJson(), &root)) << snap.ToJson();
  EXPECT_TRUE(
      root.object.at("counters").object.contains("with \"quote\" and \\slash\\"));
  // Non-finite doubles have no JSON literal; they must serialize as null.
  EXPECT_EQ(root.object.at("gauges").object.at("nan.gauge").kind,
            MiniJson::Value::Kind::kNull);
  EXPECT_EQ(root.object.at("gauges").object.at("inf.gauge").kind,
            MiniJson::Value::Kind::kNull);
}

TEST(MetricsSnapshot, ToCsvHasHeaderAndOneRowPerField) {
  MetricsSnapshot snap;
  snap.counters["c"] = 3;
  HistogramSnapshot hist;
  hist.bounds = {1.0, 2.0};
  hist.counts = {1, 0, 2};
  hist.total = 3;
  hist.sum = 10.0;
  snap.histograms["h"] = hist;
  const std::string csv = snap.ToCsv();
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,value,3"), std::string::npos);
  // One row per bucket plus sum and count.
  EXPECT_NE(csv.find("histogram,h,le_inf,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,count,3"), std::string::npos);
}

// ------------------------------------------------------------------ tracing

TEST(Tracing, ExportIsValidChromeJsonWithRecordedSpans) {
  Tracing::Clear();
  Tracing::Enable();
  {
    TraceSpan outer("test/outer");
    TraceSpan inner("test/inner");
  }
  Tracing::Disable();
  const std::string json = Tracing::ExportChromeJson();
  MiniJson::Value root;
  ASSERT_TRUE(MiniJson::Parse(json, &root)) << json;
  const MiniJson::Value& events = root.object.at("traceEvents");
  ASSERT_EQ(events.kind, MiniJson::Value::Kind::kArray);
  int outer_count = 0, inner_count = 0;
  for (const MiniJson::Value& event : events.array) {
    const std::string& name = event.object.at("name").string;
    if (name == "test/outer") ++outer_count;
    if (name == "test/inner") ++inner_count;
    EXPECT_EQ(event.object.at("ph").string, "X");
    EXPECT_GE(event.object.at("ts").number, 0.0);
    EXPECT_GE(event.object.at("dur").number, 0.0);
  }
  EXPECT_EQ(outer_count, 1);
  EXPECT_EQ(inner_count, 1);
  Tracing::Clear();
}

TEST(Tracing, MultipleThreadsGetDistinctTids) {
  Tracing::Clear();
  Tracing::Enable();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] { TraceSpan span("test/threaded"); });
  }
  for (std::thread& t : threads) t.join();
  Tracing::Disable();
  MiniJson::Value root;
  ASSERT_TRUE(MiniJson::Parse(Tracing::ExportChromeJson(), &root));
  std::vector<double> tids;
  for (const MiniJson::Value& event : root.object.at("traceEvents").array) {
    if (event.object.at("name").string == "test/threaded") {
      tids.push_back(event.object.at("tid").number);
    }
  }
  ASSERT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
  Tracing::Clear();
}

TEST(Tracing, DisabledSpansRecordNothing) {
  Tracing::Clear();
  ASSERT_FALSE(Tracing::IsEnabled());
  { TraceSpan span("test/while_disabled"); }
  const std::string json = Tracing::ExportChromeJson();
  EXPECT_EQ(json.find("test/while_disabled"), std::string::npos);
}

TEST(Tracing, RingOverwritesOldestAndCountsDrops) {
  Tracing::Clear();
  Tracing::Enable(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("test/overflow");
  }
  Tracing::Disable();
  EXPECT_GE(Tracing::DroppedEvents(), 6u);
  MiniJson::Value root;
  ASSERT_TRUE(MiniJson::Parse(Tracing::ExportChromeJson(), &root));
  std::size_t kept = 0;
  for (const MiniJson::Value& event : root.object.at("traceEvents").array) {
    if (event.object.at("name").string == "test/overflow") ++kept;
  }
  EXPECT_EQ(kept, 4u);
  Tracing::Clear();
  EXPECT_EQ(Tracing::DroppedEvents(), 0u);
}

TEST(Tracing, RingOverwritesBumpTheDroppedSpansCounter) {
  Tracing::Clear();
  // The registry is process-global: assert the delta, not the absolute.
  const std::uint64_t before = GetCounter("trace.dropped_spans_total").Value();
  Tracing::Enable(/*events_per_thread=*/2);
  for (int i = 0; i < 7; ++i) {
    TraceSpan span("test/drop_counter");
  }
  Tracing::Disable();
  const std::uint64_t after = GetCounter("trace.dropped_spans_total").Value();
  EXPECT_EQ(after - before, 5u);  // 7 spans into a 2-slot ring
  Tracing::Clear();
}

TEST(Tracing, SpansExportTheirQueryIdAsArgs) {
  Tracing::Clear();
  Tracing::Enable();
  {
    TraceSpan tagged("test/with_query_id", /*query_id=*/42);
    TraceSpan untagged("test/without_query_id");
  }
  Tracing::Disable();
  MiniJson::Value root;
  ASSERT_TRUE(MiniJson::Parse(Tracing::ExportChromeJson(), &root));
  bool saw_tagged = false, saw_untagged = false;
  for (const MiniJson::Value& event : root.object.at("traceEvents").array) {
    const std::string& name = event.object.at("name").string;
    if (name == "test/with_query_id") {
      saw_tagged = true;
      ASSERT_TRUE(event.object.contains("args"));
      EXPECT_EQ(event.object.at("args").object.at("query_id").number, 42.0);
    }
    if (name == "test/without_query_id") {
      saw_untagged = true;
      // query_id 0 means "unstamped" and must not clutter the export.
      EXPECT_FALSE(event.object.contains("args"));
    }
  }
  EXPECT_TRUE(saw_tagged);
  EXPECT_TRUE(saw_untagged);
  Tracing::Clear();
}

TEST(Tracing, ImportedSpansKeepTheirPidTidAndQueryId) {
  Tracing::Clear();
  Tracing::Enable();
  Tracing::ImportSpan("replica/span", /*pid=*/3, /*tid=*/17, /*ts_us=*/5.0,
                      /*dur_us=*/2.5, /*query_id=*/9);
  Tracing::Disable();
  MiniJson::Value root;
  ASSERT_TRUE(MiniJson::Parse(Tracing::ExportChromeJson(), &root));
  bool found = false;
  for (const MiniJson::Value& event : root.object.at("traceEvents").array) {
    if (event.object.at("name").string != "replica/span") continue;
    found = true;
    EXPECT_EQ(event.object.at("pid").number, 3.0);
    EXPECT_EQ(event.object.at("tid").number, 17.0);
    EXPECT_EQ(event.object.at("ts").number, 5.0);
    EXPECT_EQ(event.object.at("dur").number, 2.5);
    EXPECT_EQ(event.object.at("args").object.at("query_id").number, 9.0);
  }
  EXPECT_TRUE(found);
  Tracing::Clear();
  // Clear drops imported events along with the ring buffers.
  EXPECT_EQ(Tracing::ExportChromeJson().find("replica/span"),
            std::string::npos);
}

// ----------------------------------------------------- quantiles and merging

TEST(HistogramSnapshot, QuantileInterpolatesWithinBuckets) {
  HistogramSnapshot snap;
  snap.bounds = {10.0, 20.0};
  snap.counts = {10, 10, 0};
  snap.total = 20;
  // Ranks 1..10 live in [0, 10], ranks 11..20 in (10, 20]: the median sits
  // exactly at the first bound and p75 halfway up the second bucket.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 20.0);
  // The first bucket interpolates from 0.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.25), 5.0);
}

TEST(HistogramSnapshot, QuantileEdgeCases) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
  HistogramSnapshot overflow;
  overflow.bounds = {1.0};
  overflow.counts = {0, 5};  // everything above the last bound
  overflow.total = 5;
  // Overflow mass has no upper edge; the last finite bound is the best
  // (conservative) answer.
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.99), 1.0);
  // Out-of-range q clamps instead of misbehaving.
  EXPECT_DOUBLE_EQ(overflow.Quantile(-1.0), overflow.Quantile(0.0));
  EXPECT_DOUBLE_EQ(overflow.Quantile(2.0), overflow.Quantile(1.0));
}

TEST(HistogramSnapshot, MergeAddsCountsAndIgnoresMismatchedBounds) {
  HistogramSnapshot a;
  a.bounds = {1.0, 2.0};
  a.counts = {1, 2, 3};
  a.total = 6;
  a.sum = 9.0;
  HistogramSnapshot b = a;
  b.counts = {4, 0, 1};
  b.total = 5;
  b.sum = 4.0;
  a.Merge(b);
  EXPECT_EQ(a.counts, (std::vector<std::uint64_t>{5, 2, 4}));
  EXPECT_EQ(a.total, 11u);
  EXPECT_DOUBLE_EQ(a.sum, 13.0);
  // Mismatched bounds cannot be combined meaningfully; Merge leaves the
  // receiver untouched.
  HistogramSnapshot other;
  other.bounds = {7.0};
  other.counts = {1, 1};
  other.total = 2;
  a.Merge(other);
  EXPECT_EQ(a.total, 11u);
  // Merging into an empty snapshot adopts the other wholesale.
  HistogramSnapshot fresh;
  fresh.Merge(a);
  EXPECT_EQ(fresh.total, 11u);
  EXPECT_EQ(fresh.bounds, a.bounds);
}

TEST(LogBuckets, CoversTheRangeGeometrically) {
  const std::vector<double> edges = LogBuckets(0.1, 1000.0, 1);
  // One edge per decade from 0.1 until the range is covered.
  ASSERT_GE(edges.size(), 5u);
  EXPECT_DOUBLE_EQ(edges[0], 0.1);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_NEAR(edges[i] / edges[i - 1], 10.0, 1e-9);
  }
  EXPECT_GE(edges.back(), 1000.0);
  // Finer per-decade resolution shrinks the ratio accordingly.
  const std::vector<double> fine = LogBuckets(1.0, 10.0, 4);
  ASSERT_GE(fine.size(), 4u);
  EXPECT_NEAR(fine[1] / fine[0], std::pow(10.0, 0.25), 1e-9);
}

// -------------------------------------------------------- Prometheus export

TEST(MetricsSnapshot, ToPrometheusEmitsWellFormedExposition) {
  MetricsSnapshot snap;
  snap.counters["serve.query.count"] = 7;
  snap.gauges["serve.query.latency_ms.flow.p99"] = 12.5;
  HistogramSnapshot hist;
  hist.bounds = {1.0, 2.0};
  hist.counts = {3, 1, 2};
  hist.total = 6;
  hist.sum = 11.0;
  snap.histograms["serve.latency"] = hist;
  const std::string text = snap.ToPrometheus();
  // Dotted registry names map to the [a-zA-Z0-9_:] charset.
  EXPECT_NE(text.find("# TYPE serve_query_count counter"), std::string::npos);
  EXPECT_NE(text.find("serve_query_count 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_query_latency_ms_flow_p99 gauge"),
            std::string::npos);
  EXPECT_NE(text.find("serve_query_latency_ms_flow_p99 12.5"),
            std::string::npos);
  // Histogram buckets are cumulative with a closing +Inf, sum and count.
  EXPECT_NE(text.find("# TYPE serve_latency histogram"), std::string::npos);
  EXPECT_NE(text.find("serve_latency_bucket{le=\"1\"} 3"), std::string::npos);
  EXPECT_NE(text.find("serve_latency_bucket{le=\"2\"} 4"), std::string::npos);
  EXPECT_NE(text.find("serve_latency_bucket{le=\"+Inf\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_sum 11"), std::string::npos);
  EXPECT_NE(text.find("serve_latency_count 6"), std::string::npos);
  // Every line is either a comment or "name[{labels}] value".
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* parse_end = nullptr;
    std::strtod(line.c_str() + space + 1, &parse_end);
    EXPECT_EQ(*parse_end, '\0') << line;
  }
}

}  // namespace
}  // namespace infoflow::obs
