#include "core/nested_mh.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Pair() {
  GraphBuilder b(2);
  b.AddEdge(0, 1).CheckOK();
  return std::make_shared<const DirectedGraph>(std::move(b).Build());
}

TEST(NestedMh, SingleEdgeRecoversEdgeBeta) {
  // With one edge, the flow probability 0 ~> 1 *is* the edge probability,
  // so the nested distribution must match the edge's Beta.
  BetaIcm model(Pair(), {16.0}, {4.0});
  NestedMhOptions opt;
  opt.num_models = 300;
  opt.samples_per_model = 400;
  opt.mh.burn_in = 200;
  opt.mh.thinning = 1;
  Rng rng(1);
  auto dist = NestedMhFlowDistribution(model, 0, 1, {}, opt, rng);
  ASSERT_TRUE(dist.ok());
  const BetaDist edge = model.EdgeBeta(0);
  EXPECT_NEAR(dist->Mean(), edge.Mean(), 0.02);
  EXPECT_NEAR(dist->Variance(), edge.Variance(), 0.005);
}

TEST(NestedMh, FittedBetaMatchesSampleMoments) {
  BetaIcm model(Pair(), {2.0}, {8.0});
  NestedMhOptions opt;
  opt.num_models = 200;
  opt.samples_per_model = 300;
  opt.mh.burn_in = 200;
  Rng rng(2);
  auto dist = NestedMhFlowDistribution(model, 0, 1, {}, opt, rng);
  ASSERT_TRUE(dist.ok());
  const BetaDist fit = dist->FittedBeta();
  EXPECT_NEAR(fit.Mean(), dist->Mean(), 1e-6);
  EXPECT_NEAR(fit.Variance(), dist->Variance(), 1e-6);
}

TEST(NestedMh, TightPosteriorYieldsNarrowDistribution) {
  // Strong evidence (large α+β) must produce a narrow flow distribution;
  // weak evidence a wide one — the Fig. 3 comparison.
  NestedMhOptions opt;
  opt.num_models = 150;
  opt.samples_per_model = 300;
  opt.mh.burn_in = 200;
  Rng rng(3);
  BetaIcm strong(Pair(), {160.0}, {40.0});
  BetaIcm weak(Pair(), {1.6}, {0.4});
  auto strong_dist = NestedMhFlowDistribution(strong, 0, 1, {}, opt, rng);
  auto weak_dist = NestedMhFlowDistribution(weak, 0, 1, {}, opt, rng);
  ASSERT_TRUE(strong_dist.ok() && weak_dist.ok());
  EXPECT_LT(strong_dist->Variance(), weak_dist->Variance());
}

TEST(NestedMh, GaussianApproximationStaysInRange) {
  BetaIcm model(Pair(), {1.0}, {45.0});
  NestedMhOptions opt;
  opt.num_models = 100;
  opt.samples_per_model = 100;
  opt.mh.burn_in = 100;
  opt.gaussian_edge_approximation = true;
  Rng rng(4);
  auto dist = NestedMhFlowDistribution(model, 0, 1, {}, opt, rng);
  ASSERT_TRUE(dist.ok());
  for (double p : dist->probabilities) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(NestedMh, RiskAccessors) {
  FlowProbabilityDistribution dist;
  for (int i = 0; i < 100; ++i) dist.probabilities.push_back(i / 100.0);
  EXPECT_NEAR(dist.Quantile(0.5), 0.495, 1e-9);
  EXPECT_NEAR(dist.ProbabilityAbove(0.9), 0.09, 1e-12);
  EXPECT_DOUBLE_EQ(dist.ProbabilityAbove(1.0), 0.0);
  // Worst 5% tail: values 0.95..0.99, mean 0.97.
  EXPECT_NEAR(dist.TailMean(0.95), 0.97, 1e-9);
  // The tail mean is never below the same-level quantile.
  EXPECT_GE(dist.TailMean(0.8), dist.Quantile(0.8) - 1e-12);
}

TEST(NestedMh, RiskAccessorsDegenerate) {
  FlowProbabilityDistribution dist;
  dist.probabilities.assign(10, 0.3);
  EXPECT_DOUBLE_EQ(dist.Quantile(0.99), 0.3);
  EXPECT_DOUBLE_EQ(dist.TailMean(0.9), 0.3);
  EXPECT_DOUBLE_EQ(dist.ProbabilityAbove(0.25), 1.0);
}

TEST(NestedMh, ConditionsPropagateToInnerSampler) {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  auto g = std::make_shared<const DirectedGraph>(std::move(b).Build());
  BetaIcm model(g, {4.0, 4.0}, {4.0, 4.0});
  NestedMhOptions opt;
  opt.num_models = 60;
  opt.samples_per_model = 300;
  opt.mh.burn_in = 300;
  Rng rng(5);
  auto unconditional = NestedMhFlowDistribution(model, 0, 2, {}, opt, rng);
  auto conditional =
      NestedMhFlowDistribution(model, 0, 2, {{0, 1, true}}, opt, rng);
  ASSERT_TRUE(unconditional.ok() && conditional.ok());
  // Knowing the first hop flowed leaves only the second hop in doubt.
  EXPECT_GT(conditional->Mean(), unconditional->Mean() + 0.1);
}

}  // namespace
}  // namespace infoflow
