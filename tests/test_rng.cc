#include "stats/rng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"

namespace infoflow {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextDouble());
  EXPECT_NEAR(stats.Mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.Variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextBounded(7), 7u);
}

TEST(Rng, NextBoundedRoughlyUniform) {
  Rng rng(5);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(2);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Normal());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.Variance(), 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stats.Mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.StdDev(), 2.0, 0.05);
}

TEST(Rng, GammaMomentsLargeShape) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Gamma(4.0));
  EXPECT_NEAR(stats.Mean(), 4.0, 0.1);
  EXPECT_NEAR(stats.Variance(), 4.0, 0.2);
}

TEST(Rng, GammaMomentsSmallShape) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Gamma(0.5));
  EXPECT_NEAR(stats.Mean(), 0.5, 0.05);
  EXPECT_NEAR(stats.Variance(), 0.5, 0.1);
}

TEST(Rng, BetaMoments) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Beta(2.0, 8.0));
  EXPECT_NEAR(stats.Mean(), 0.2, 0.01);
  // Var = ab/((a+b)^2(a+b+1)) = 16/(100*11)
  EXPECT_NEAR(stats.Variance(), 16.0 / 1100.0, 0.002);
}

TEST(Rng, BetaStaysInUnitInterval) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Beta(0.5, 0.5);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Exponential(2.0));
  EXPECT_NEAR(stats.Mean(), 0.5, 0.01);
}

TEST(Rng, BinomialBoundaries) {
  Rng rng(16);
  EXPECT_EQ(rng.Binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.Binomial(10, 1.0), 10u);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0u);
}

TEST(Rng, BinomialMoments) {
  Rng rng(18);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(static_cast<double>(rng.Binomial(40, 0.3)));
  }
  EXPECT_NEAR(stats.Mean(), 12.0, 0.1);
  EXPECT_NEAR(stats.Variance(), 40 * 0.3 * 0.7, 0.3);
}

TEST(Rng, BinomialLargeNp) {
  Rng rng(20);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(static_cast<double>(rng.Binomial(200, 0.4)));
  }
  EXPECT_NEAR(stats.Mean(), 80.0, 0.5);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(22);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(30);
  Rng child = parent.Split();
  // The child stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.NextU64() == child.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StdShuffleCompatible) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace infoflow
