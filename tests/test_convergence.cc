#include "stats/convergence.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.h"

namespace infoflow {
namespace {

/// `num_chains` independent chains of IID N(mean, 1) draws.
std::vector<std::vector<double>> IidChains(std::size_t num_chains,
                                           std::size_t len, double mean,
                                           std::uint64_t seed) {
  std::vector<std::vector<double>> chains(num_chains);
  Rng rng(seed);
  for (auto& c : chains) {
    Rng local = rng.Split();
    c.reserve(len);
    for (std::size_t i = 0; i < len; ++i) c.push_back(local.Normal(mean, 1.0));
  }
  return chains;
}

/// Stationary AR(1) with coefficient `phi` and unit marginal variance:
/// x_{t+1} = phi·x_t + sqrt(1−phi²)·ε. True ESS of the mean over N draws is
/// N·(1−phi)/(1+phi).
std::vector<std::vector<double>> Ar1Chains(std::size_t num_chains,
                                           std::size_t len, double phi,
                                           std::uint64_t seed) {
  std::vector<std::vector<double>> chains(num_chains);
  Rng rng(seed);
  const double innovation = std::sqrt(1.0 - phi * phi);
  for (auto& c : chains) {
    Rng local = rng.Split();
    c.reserve(len);
    double x = local.Normal();  // stationary start
    for (std::size_t i = 0; i < len; ++i) {
      c.push_back(x);
      x = phi * x + innovation * local.Normal();
    }
  }
  return chains;
}

TEST(Convergence, IidChainsHaveRhatNearOne) {
  const auto chains = IidChains(4, 2000, 0.0, 1);
  const ChainDiagnostics d = ComputeChainDiagnostics(chains);
  EXPECT_EQ(d.num_chains, 4u);
  EXPECT_EQ(d.samples_per_chain, 2000u);
  EXPECT_GE(d.rhat, 0.99);
  EXPECT_LE(d.rhat, 1.02);
  EXPECT_TRUE(d.Converged());
}

TEST(Convergence, IidChainsHaveFullEffectiveSampleSize) {
  const auto chains = IidChains(4, 2000, 0.0, 2);
  const ChainDiagnostics d = ComputeChainDiagnostics(chains);
  // IID draws: ESS ~ total draw count (clamped above by it).
  EXPECT_GE(d.ess, 0.5 * 8000.0);
  EXPECT_LE(d.ess, 8000.0);
  // MCSE of a unit-variance mean over ~N independent draws.
  EXPECT_NEAR(d.mcse, 1.0 / std::sqrt(8000.0), 0.6 / std::sqrt(8000.0));
}

TEST(Convergence, Ar1EssMatchesClosedForm) {
  const double phi = 0.7;
  const std::size_t num_chains = 4, len = 5000;
  const auto chains = Ar1Chains(num_chains, len, phi, 3);
  const ChainDiagnostics d = ComputeChainDiagnostics(chains);
  const double total = static_cast<double>(num_chains * len);
  const double true_ess = total * (1.0 - phi) / (1.0 + phi);
  EXPECT_NEAR(d.ess, true_ess, 0.3 * true_ess);
  // Correlation must not fool R^: the chains share one distribution.
  EXPECT_LT(d.rhat, 1.05);
}

TEST(Convergence, StrongerCorrelationLowersEss) {
  const auto mild = Ar1Chains(4, 4000, 0.3, 4);
  const auto strong = Ar1Chains(4, 4000, 0.9, 4);
  EXPECT_GT(EffectiveSampleSize(mild), 2.0 * EffectiveSampleSize(strong));
}

TEST(Convergence, ShiftedMeansInflateRhat) {
  // Two chains stuck in different modes: the canonical unconverged case.
  auto chains = IidChains(2, 1000, 0.0, 5);
  for (double& x : chains[1]) x += 5.0;
  const ChainDiagnostics d = ComputeChainDiagnostics(chains);
  EXPECT_GT(d.rhat, 1.5);
  EXPECT_FALSE(d.Converged());
}

TEST(Convergence, WithinChainDriftInflatesRhat) {
  // A single chain whose halves disagree — the reason chains are split.
  std::vector<std::vector<double>> chains = IidChains(1, 2000, 0.0, 6);
  for (std::size_t i = 1000; i < 2000; ++i) chains[0][i] += 5.0;
  EXPECT_GT(SplitChainRhat(chains), 1.5);
}

TEST(Convergence, ConstantChainsAreDegenerateButConverged) {
  const std::vector<std::vector<double>> chains(3,
                                                std::vector<double>(100, 0.4));
  const ChainDiagnostics d = ComputeChainDiagnostics(chains);
  EXPECT_DOUBLE_EQ(d.mean, 0.4);
  EXPECT_DOUBLE_EQ(d.rhat, 1.0);
  EXPECT_DOUBLE_EQ(d.mcse, 0.0);
  EXPECT_DOUBLE_EQ(d.ess, 300.0);
}

TEST(Convergence, DisagreeingConstantChainsAreInfinitelyUnconverged) {
  const std::vector<std::vector<double>> chains{
      std::vector<double>(100, 0.0), std::vector<double>(100, 1.0)};
  const ChainDiagnostics d = ComputeChainDiagnostics(chains);
  EXPECT_TRUE(std::isinf(d.rhat));
  EXPECT_FALSE(d.Converged());
}

TEST(Convergence, BinaryChainsAreSupported) {
  // The engine's draws are {0,1} flow indicators; Bernoulli(p) IID chains
  // must look converged with mean ~p.
  std::vector<std::vector<double>> chains(4);
  Rng rng(7);
  for (auto& c : chains) {
    for (int i = 0; i < 3000; ++i) c.push_back(rng.Bernoulli(0.3) ? 1.0 : 0.0);
  }
  const ChainDiagnostics d = ComputeChainDiagnostics(chains);
  EXPECT_NEAR(d.mean, 0.3, 0.02);
  EXPECT_LT(d.rhat, 1.02);
  EXPECT_NEAR(d.variance, 0.3 * 0.7, 0.02);
  EXPECT_TRUE(d.Converged());
}

TEST(Convergence, UnequalChainLengthsTruncateToShortest) {
  auto chains = IidChains(3, 500, 0.0, 8);
  chains[0].resize(200);
  const ChainDiagnostics d = ComputeChainDiagnostics(chains);
  EXPECT_EQ(d.samples_per_chain, 200u);
  EXPECT_LE(d.ess, 600.0);
}

TEST(Convergence, SingleChainIsDiagnosable) {
  const auto chains = IidChains(1, 4000, 0.0, 9);
  const ChainDiagnostics d = ComputeChainDiagnostics(chains);
  EXPECT_LT(d.rhat, 1.03);
  EXPECT_GE(d.ess, 2000.0);
}

TEST(Convergence, TinyChainsFallBackToNoInformationDefaults) {
  const std::vector<std::vector<double>> chains{{0.0, 1.0, 0.5},
                                                {0.5, 0.5, 1.0}};
  const ChainDiagnostics d = ComputeChainDiagnostics(chains);
  EXPECT_DOUBLE_EQ(d.rhat, 1.0);
  EXPECT_DOUBLE_EQ(d.ess, 6.0);
  EXPECT_EQ(d.samples_per_chain, 3u);
}

TEST(Convergence, McseShrinksWithMoreSamples) {
  const auto small = IidChains(4, 500, 0.0, 10);
  const auto large = IidChains(4, 8000, 0.0, 10);
  EXPECT_GT(ComputeChainDiagnostics(small).mcse,
            2.0 * ComputeChainDiagnostics(large).mcse);
}

TEST(Convergence, AutocovarianceMatchesDefinition) {
  const std::vector<double> chain{1.0, 2.0, 3.0, 4.0};
  // mean 2.5; lag-1: ((1-2.5)(2-2.5)+(2-2.5)(3-2.5)+(3-2.5)(4-2.5))/4
  EXPECT_NEAR(AutocovarianceAtLag(chain, 1), (0.75 - 0.25 + 0.75) / 4.0,
              1e-12);
  EXPECT_NEAR(AutocovarianceAtLag(chain, 0), 5.0 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(AutocovarianceAtLag(chain, 4), 0.0);
}

TEST(Convergence, ToStringMentionsAllThreeStatistics) {
  const auto chains = IidChains(2, 100, 0.0, 11);
  const std::string s = ComputeChainDiagnostics(chains).ToString();
  EXPECT_NE(s.find("R^="), std::string::npos);
  EXPECT_NE(s.find("ESS="), std::string::npos);
  EXPECT_NE(s.find("MCSE="), std::string::npos);
}

}  // namespace
}  // namespace infoflow
