#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace infoflow {
namespace {

TEST(Accuracy, PerfectPredictionsScoreBest) {
  std::vector<BucketPair> pairs{{1.0, true}, {0.0, false}, {1.0, true}};
  const AccuracyReport report = ComputeAccuracy(pairs, 1e-6);
  EXPECT_NEAR(report.normalized_likelihood, 1.0, 1e-5);
  EXPECT_NEAR(report.brier, 0.0, 1e-12);
}

TEST(Accuracy, WorstPredictionsScoreWorst) {
  std::vector<BucketPair> pairs{{1.0, false}, {0.0, true}};
  const AccuracyReport report = ComputeAccuracy(pairs, 1e-6);
  EXPECT_NEAR(report.normalized_likelihood, 1e-6, 1e-9);
  EXPECT_NEAR(report.brier, 1.0, 1e-12);
}

TEST(Accuracy, KnownHandValues) {
  // One pair at p=0.8, outcome true: NL = 0.8, Brier = 0.04.
  std::vector<BucketPair> pairs{{0.8, true}};
  const AccuracyReport report = ComputeAccuracy(pairs);
  EXPECT_NEAR(report.normalized_likelihood, 0.8, 1e-12);
  EXPECT_NEAR(report.brier, 0.04, 1e-12);
}

TEST(Accuracy, GeometricMeanAcrossPairs) {
  std::vector<BucketPair> pairs{{0.8, true}, {0.5, false}};
  const AccuracyReport report = ComputeAccuracy(pairs);
  EXPECT_NEAR(report.normalized_likelihood, std::sqrt(0.8 * 0.5), 1e-12);
  EXPECT_NEAR(report.brier, (0.04 + 0.25) / 2.0, 1e-12);
}

TEST(Accuracy, EmptyInputIsZeroed) {
  const AccuracyReport report = ComputeAccuracy({});
  EXPECT_EQ(report.count, 0u);
  EXPECT_DOUBLE_EQ(report.normalized_likelihood, 0.0);
}

TEST(Accuracy, ClampPreventsDegenerateLikelihood) {
  // The paper's fix: a wrong certain prediction must not zero the whole
  // geometric mean.
  std::vector<BucketPair> pairs{{0.0, true}, {0.9, true}, {0.9, true}};
  const AccuracyReport report = ComputeAccuracy(pairs, 1e-3);
  EXPECT_GT(report.normalized_likelihood, 0.0);
}

TEST(MiddleValues, DropsExactZeroAndOne) {
  std::vector<BucketPair> pairs{
      {0.0, false}, {0.5, true}, {1.0, true}, {0.999, false}};
  const auto middle = MiddleValues(pairs);
  ASSERT_EQ(middle.size(), 2u);
  EXPECT_DOUBLE_EQ(middle[0].estimate, 0.5);
  EXPECT_DOUBLE_EQ(middle[1].estimate, 0.999);
}

TEST(MiddleValues, AccuracyOnMiddleOnly) {
  // Certain predictions wash out differences (Table III's motivation):
  // middle-values scoring must ignore them.
  std::vector<BucketPair> pairs;
  for (int i = 0; i < 1000; ++i) pairs.push_back({0.0, false});
  pairs.push_back({0.9, false});  // one bad middle prediction
  const AccuracyReport all = ComputeAccuracy(pairs);
  const AccuracyReport middle = ComputeMiddleAccuracy(pairs);
  EXPECT_GT(all.normalized_likelihood, 0.9);
  EXPECT_NEAR(middle.normalized_likelihood, 0.1, 1e-9);
  EXPECT_EQ(middle.count, 1u);
}

TEST(AccuracyDeath, RejectsBadClamp) {
  EXPECT_DEATH(ComputeAccuracy({{0.5, true}}, 0.7), "clamp");
}

}  // namespace
}  // namespace infoflow
