/// Tests for the streaming subsystem: wire-line parsing, the bounded
/// evidence queue's overflow policies, the EvidenceStream fd pump, the
/// OnlineTrainer's exact batch equivalence (the headline property: decay=1
/// and window=∞ reproduce the batch trainers bit for bit on shuffled
/// evidence), decay/window forgetting semantics, epoch publication, the
/// StreamIngestor, and the serve daemon's ingest verb + drift-triggered
/// bank rebuild.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "learn/attributed.h"
#include "learn/evidence_io.h"
#include "learn/model_trainer.h"
#include "learn/summary.h"
#include "serve/protocol.h"
#include "serve/sample_bank.h"
#include "serve/server.h"
#include "stream/evidence_stream.h"
#include "stream/ingestor.h"
#include "stream/model_epoch.h"
#include "stream/online_trainer.h"
#include "util/json.h"

namespace infoflow::stream {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

// A small two-level graph: 0 -> {1, 2}, {1, 2} -> 3.
std::shared_ptr<const DirectedGraph> Diamond() {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  return std::make_shared<const DirectedGraph>(std::move(b).Build());
}

std::shared_ptr<const DirectedGraph> RandomGraph(std::uint64_t seed,
                                                 NodeId nodes, EdgeId edges) {
  Rng rng(seed);
  return Share(UniformRandomGraph(nodes, edges, rng));
}

PointIcm RandomModel(const std::shared_ptr<const DirectedGraph>& g,
                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.Uniform(0.1, 0.9);
  return PointIcm(g, probs);
}

/// Simulates cascades into attributed objects (nodes + fired edges).
AttributedEvidence SimulateAttributed(const PointIcm& truth,
                                      std::size_t objects, Rng& rng) {
  AttributedEvidence ev;
  for (std::size_t o = 0; o < objects; ++o) {
    const NodeId src = static_cast<NodeId>(
        rng.NextBounded(truth.graph().num_nodes()));
    const ActiveState s = truth.SampleCascade({src}, rng);
    AttributedObject obj;
    obj.sources = s.sources;
    obj.active_nodes = s.active_nodes;
    for (EdgeId e = 0; e < s.edge_active.size(); ++e) {
      if (s.edge_active[e]) obj.active_edges.push_back(e);
    }
    ev.objects.push_back(std::move(obj));
  }
  return ev;
}

/// Simulates cascades into activation traces (BFS depth as time).
UnattributedEvidence SimulateTraces(const PointIcm& truth,
                                    std::size_t objects, Rng& rng) {
  UnattributedEvidence ev;
  for (std::size_t o = 0; o < objects; ++o) {
    const NodeId src = static_cast<NodeId>(
        rng.NextBounded(truth.graph().num_nodes()));
    const ActiveState s = truth.SampleCascade({src}, rng);
    ObjectTrace trace;
    double time = 0.0;
    for (NodeId v : s.active_nodes) {
      trace.activations.push_back({v, time});
      time += 1.0;
    }
    ev.traces.push_back(std::move(trace));
  }
  return ev;
}

// ------------------------------------------------------------ wire parsing

TEST(ParseEvidenceLine, SniffsAttributedByPipe) {
  auto g = Diamond();
  auto rec = ParseEvidenceLine("0|0 1|0>1", *g, StreamFormat::kAuto);
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_TRUE(std::holds_alternative<AttributedObject>(*rec));
  const auto& obj = std::get<AttributedObject>(*rec);
  EXPECT_EQ(obj.sources, std::vector<NodeId>({0}));
  EXPECT_EQ(obj.active_nodes, std::vector<NodeId>({0, 1}));
  EXPECT_EQ(obj.active_edges, std::vector<EdgeId>({g->FindEdge(0, 1)}));
}

TEST(ParseEvidenceLine, SniffsTraceWithoutPipe) {
  auto g = Diamond();
  auto rec = ParseEvidenceLine("0:0 2:1.5", *g, StreamFormat::kAuto);
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_TRUE(std::holds_alternative<ObjectTrace>(*rec));
  const auto& trace = std::get<ObjectTrace>(*rec);
  ASSERT_EQ(trace.activations.size(), 2u);
  EXPECT_EQ(trace.activations[1].node, 2u);
  EXPECT_DOUBLE_EQ(trace.activations[1].time, 1.5);
}

TEST(ParseEvidenceLine, ForcedFormatOverridesSniffing) {
  auto g = Diamond();
  // "0:0" has no pipe but the forced attributed format must reject it.
  EXPECT_FALSE(ParseEvidenceLine("0:0", *g, StreamFormat::kAttributed).ok());
}

TEST(ParseEvidenceLine, JsonEnvelopes) {
  auto g = Diamond();
  auto att = ParseEvidenceLine(R"({"attributed":"0|0 1|0>1"})", *g,
                               StreamFormat::kAuto);
  ASSERT_TRUE(att.ok()) << att.status();
  EXPECT_TRUE(std::holds_alternative<AttributedObject>(*att));
  auto tr =
      ParseEvidenceLine(R"({"trace":"0:0 3:2"})", *g, StreamFormat::kAuto);
  ASSERT_TRUE(tr.ok()) << tr.status();
  EXPECT_TRUE(std::holds_alternative<ObjectTrace>(*tr));
}

TEST(ParseEvidenceLine, Rejections) {
  auto g = Diamond();
  EXPECT_FALSE(ParseEvidenceLine("", *g, StreamFormat::kAuto).ok());
  EXPECT_FALSE(ParseEvidenceLine("   ", *g, StreamFormat::kAuto).ok());
  EXPECT_FALSE(ParseEvidenceLine("{\"x\":1}", *g, StreamFormat::kAuto).ok());
  EXPECT_FALSE(ParseEvidenceLine("{not json", *g, StreamFormat::kAuto).ok());
  EXPECT_FALSE(
      ParseEvidenceLine(R"({"trace":42})", *g, StreamFormat::kAuto).ok());
  // An edge that is not in the graph.
  EXPECT_FALSE(ParseEvidenceLine("0|0 3|0>3", *g, StreamFormat::kAuto).ok());
}

TEST(StreamEnums, NamesRoundTrip) {
  for (auto f : {StreamFormat::kAuto, StreamFormat::kAttributed,
                 StreamFormat::kTraces}) {
    auto parsed = ParseStreamFormat(StreamFormatName(f));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, f);
  }
  for (auto p : {QueueOverflowPolicy::kPark, QueueOverflowPolicy::kDropNewest,
                 QueueOverflowPolicy::kDropOldest}) {
    auto parsed = ParseQueueOverflowPolicy(QueueOverflowPolicyName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParseStreamFormat("csv").ok());
  EXPECT_FALSE(ParseQueueOverflowPolicy("block").ok());
}

// -------------------------------------------------------------- the queue

EvidenceRecord TraceRecord(double t) {
  ObjectTrace trace;
  trace.activations.push_back({0, t});
  return trace;
}

TEST(EvidenceQueue, DropNewestRejectsWhenFull) {
  EvidenceQueue q(2, QueueOverflowPolicy::kDropNewest);
  EXPECT_TRUE(q.Push(TraceRecord(0)));
  EXPECT_TRUE(q.Push(TraceRecord(1)));
  EXPECT_FALSE(q.Push(TraceRecord(2)));
  EXPECT_EQ(q.Depth(), 2u);
  EXPECT_EQ(q.Dropped(), 1u);
  EvidenceRecord out;
  ASSERT_TRUE(q.Pop(out));
  EXPECT_DOUBLE_EQ(std::get<ObjectTrace>(out).activations[0].time, 0.0);
}

TEST(EvidenceQueue, DropOldestEvictsHead) {
  EvidenceQueue q(2, QueueOverflowPolicy::kDropOldest);
  EXPECT_TRUE(q.Push(TraceRecord(0)));
  EXPECT_TRUE(q.Push(TraceRecord(1)));
  EXPECT_TRUE(q.Push(TraceRecord(2)));
  EXPECT_EQ(q.Depth(), 2u);
  EXPECT_EQ(q.Dropped(), 1u);
  EvidenceRecord out;
  ASSERT_TRUE(q.Pop(out));
  EXPECT_DOUBLE_EQ(std::get<ObjectTrace>(out).activations[0].time, 1.0);
}

TEST(EvidenceQueue, ParkBlocksUntilConsumed) {
  EvidenceQueue q(1, QueueOverflowPolicy::kPark);
  EXPECT_TRUE(q.Push(TraceRecord(0)));
  std::thread producer([&q] {
    // Parks until the main thread pops, then succeeds.
    EXPECT_TRUE(q.Push(TraceRecord(1)));
  });
  EvidenceRecord out;
  ASSERT_TRUE(q.Pop(out));
  EXPECT_DOUBLE_EQ(std::get<ObjectTrace>(out).activations[0].time, 0.0);
  ASSERT_TRUE(q.Pop(out));
  EXPECT_DOUBLE_EQ(std::get<ObjectTrace>(out).activations[0].time, 1.0);
  producer.join();
  EXPECT_EQ(q.Dropped(), 0u);
}

TEST(EvidenceQueue, CloseDrainsThenStops) {
  EvidenceQueue q(4, QueueOverflowPolicy::kPark);
  EXPECT_TRUE(q.Push(TraceRecord(0)));
  q.Close();
  EXPECT_FALSE(q.Push(TraceRecord(1)));  // no admits after close
  EvidenceRecord out;
  EXPECT_TRUE(q.Pop(out));  // backlog still drains
  EXPECT_FALSE(q.Pop(out));
}

// -------------------------------------------------------- the fd reader

TEST(EvidenceStream, PumpsPipeIntoQueue) {
  auto g = Diamond();
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::string payload = "0|0 1|0>1\n\nbad line\n0:0 3:1\n";
  ASSERT_EQ(write(fds[1], payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  close(fds[1]);
  auto queue = std::make_shared<EvidenceQueue>(16, QueueOverflowPolicy::kPark);
  EvidenceStream stream(fds[0], StreamFormat::kAuto, g, queue);
  EvidenceRecord out;
  ASSERT_TRUE(queue->Pop(out));
  EXPECT_TRUE(std::holds_alternative<AttributedObject>(out));
  ASSERT_TRUE(queue->Pop(out));
  EXPECT_TRUE(std::holds_alternative<ObjectTrace>(out));
  EXPECT_FALSE(queue->Pop(out));  // EOF closed the queue
  stream.Stop();
  EXPECT_EQ(stream.records_read(), 2u);
  EXPECT_EQ(stream.parse_errors(), 1u);  // "bad line"; blanks are skipped
}

// ------------------------------------------- online/batch exact equivalence

TEST(OnlineTrainer, AttributedMatchesBatchBitForBitOnShuffledEvidence) {
  auto g = RandomGraph(11, 40, 160);
  const PointIcm truth = RandomModel(g, 12);
  Rng sim_rng(13);
  AttributedEvidence ev = SimulateAttributed(truth, 200, sim_rng);

  auto batch = TrainBetaIcmFromAttributed(g, ev);
  ASSERT_TRUE(batch.ok()) << batch.status();

  // Online, on a shuffled copy: counting is order-independent, so the
  // defaults (decay=1, window=∞) must reproduce the batch counts exactly.
  Rng shuffle_rng(14);
  std::shuffle(ev.objects.begin(), ev.objects.end(), shuffle_rng);
  OnlineTrainer online(g, {});
  for (const AttributedObject& obj : ev.objects) {
    ASSERT_TRUE(online.AbsorbAttributed(obj).ok());
  }
  const BetaIcm model = online.AttributedModel();
  const PointIcm batch_point = batch->ExpectedIcm();
  const PointIcm online_point = model.ExpectedIcm();
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    EXPECT_EQ(model.alpha(e), batch->alpha(e)) << "edge " << e;
    EXPECT_EQ(model.beta(e), batch->beta(e)) << "edge " << e;
    EXPECT_EQ(online_point.prob(e), batch_point.prob(e)) << "edge " << e;
  }
}

TEST(OnlineTrainer, SummariesMatchBatchBuilder) {
  auto g = RandomGraph(21, 24, 96);
  const PointIcm truth = RandomModel(g, 22);
  Rng sim_rng(23);
  UnattributedEvidence ev = SimulateTraces(truth, 150, sim_rng);

  Rng shuffle_rng(24);
  std::shuffle(ev.traces.begin(), ev.traces.end(), shuffle_rng);
  OnlineTrainer online(g, {});
  for (const ObjectTrace& trace : ev.traces) {
    ASSERT_TRUE(online.AbsorbTrace(trace).ok());
  }

  SummaryOptions summary_options;
  for (NodeId sink = 0; sink < g->num_nodes(); ++sink) {
    const SinkSummary batch = BuildSinkSummary(*g, sink, ev, summary_options);
    const SinkSummary online_summary = online.SummaryForSink(sink);
    EXPECT_EQ(online_summary.parents, batch.parents) << "sink " << sink;
    EXPECT_EQ(online_summary.parent_edges, batch.parent_edges);
    EXPECT_EQ(online_summary.unexplained_objects, batch.unexplained_objects)
        << "sink " << sink;
    ASSERT_EQ(online_summary.rows.size(), batch.rows.size())
        << "sink " << sink;
    for (std::size_t r = 0; r < batch.rows.size(); ++r) {
      EXPECT_EQ(online_summary.rows[r].mask, batch.rows[r].mask);
      EXPECT_EQ(online_summary.rows[r].count, batch.rows[r].count);
      EXPECT_EQ(online_summary.rows[r].leaks, batch.rows[r].leaks);
    }
  }
}

TEST(OnlineTrainer, UnattributedFitMatchesBatchBitForBit) {
  auto g = RandomGraph(31, 20, 70);
  const PointIcm truth = RandomModel(g, 32);
  Rng sim_rng(33);
  UnattributedEvidence ev = SimulateTraces(truth, 120, sim_rng);

  for (auto method : {UnattributedMethod::kGoyal, UnattributedMethod::kSaitoEm,
                      UnattributedMethod::kJointBayes}) {
    UnattributedTrainOptions options;
    options.method = method;
    options.joint_bayes.num_samples = 60;
    options.joint_bayes.burn_in = 40;

    Rng batch_rng(77);
    auto batch = TrainUnattributedModel(g, ev, options, batch_rng);
    ASSERT_TRUE(batch.ok()) << batch.status();

    UnattributedEvidence shuffled = ev;
    Rng shuffle_rng(34);
    std::shuffle(shuffled.traces.begin(), shuffled.traces.end(), shuffle_rng);
    OnlineTrainerOptions online_options;
    online_options.unattributed = options;
    OnlineTrainer online(g, online_options);
    for (const ObjectTrace& trace : shuffled.traces) {
      ASSERT_TRUE(online.AbsorbTrace(trace).ok());
    }
    Rng online_rng(77);  // identical seed → identical estimator draws
    auto fitted = online.FitUnattributed(online_rng);
    ASSERT_TRUE(fitted.ok()) << fitted.status();
    ASSERT_EQ(fitted->mean.size(), batch->mean.size());
    for (EdgeId e = 0; e < g->num_edges(); ++e) {
      EXPECT_EQ(fitted->mean[e], batch->mean[e])
          << UnattributedMethodName(method) << " edge " << e;
      EXPECT_EQ(fitted->sd[e], batch->sd[e]);
    }
  }
}

// ------------------------------------------------------ forgetting knobs

TEST(OnlineTrainer, DecayAgesOldEvidenceMonotonically) {
  auto g = Diamond();
  OnlineTrainerOptions options;
  options.decay = 0.5;
  OnlineTrainer trainer(g, options);

  // One object activating edge 0->1, then k objects not touching it: edge
  // 0->1's excess α must shrink as 0.5^k.
  AttributedObject first;
  first.sources = {0};
  first.active_nodes = {0, 1};
  first.active_edges = {g->FindEdge(0, 1)};
  ASSERT_TRUE(trainer.AbsorbAttributed(first).ok());

  AttributedObject other;
  other.sources = {1};
  other.active_nodes = {1, 3};
  other.active_edges = {g->FindEdge(1, 3)};

  double last_excess = trainer.AttributedModel().alpha(g->FindEdge(0, 1)) - 1.0;
  EXPECT_DOUBLE_EQ(last_excess, 1.0);  // fresh: decay applies before absorb
  for (int k = 1; k <= 6; ++k) {
    ASSERT_TRUE(trainer.AbsorbAttributed(other).ok());
    const double excess =
        trainer.AttributedModel().alpha(g->FindEdge(0, 1)) - 1.0;
    EXPECT_NEAR(excess, std::pow(0.5, k), 1e-12);
    EXPECT_LT(excess, last_excess);
    last_excess = excess;
  }
}

TEST(OnlineTrainer, DecayIsRejectedForTraces) {
  auto g = Diamond();
  OnlineTrainerOptions options;
  options.decay = 0.9;
  OnlineTrainer trainer(g, options);
  ObjectTrace trace;
  trace.activations.push_back({0, 0.0});
  const Status status = trainer.AbsorbTrace(trace);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(OnlineTrainerOptions, RejectsBadDecay) {
  OnlineTrainerOptions options;
  options.decay = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options.decay = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.decay = -0.3;
  EXPECT_FALSE(options.Validate().ok());
  options.decay = 1.0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OnlineTrainer, WindowEvictsAttributedExactly) {
  auto g = RandomGraph(41, 16, 48);
  const PointIcm truth = RandomModel(g, 42);
  Rng sim_rng(43);
  const AttributedEvidence ev = SimulateAttributed(truth, 10, sim_rng);

  OnlineTrainerOptions options;
  options.window = 4;
  OnlineTrainer online(g, options);
  for (const AttributedObject& obj : ev.objects) {
    ASSERT_TRUE(online.AbsorbAttributed(obj).ok());
  }
  EXPECT_EQ(online.attributed_in_window(), 4u);
  EXPECT_EQ(online.attributed_absorbed(), 10u);

  // Batch over only the last 4 objects must agree exactly.
  AttributedEvidence tail;
  tail.objects.assign(ev.objects.end() - 4, ev.objects.end());
  auto batch = TrainBetaIcmFromAttributed(g, tail);
  ASSERT_TRUE(batch.ok());
  const BetaIcm model = online.AttributedModel();
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    EXPECT_EQ(model.alpha(e), batch->alpha(e)) << "edge " << e;
    EXPECT_EQ(model.beta(e), batch->beta(e)) << "edge " << e;
  }
}

TEST(OnlineTrainer, WindowEvictsTracesExactly) {
  auto g = RandomGraph(51, 16, 48);
  const PointIcm truth = RandomModel(g, 52);
  Rng sim_rng(53);
  const UnattributedEvidence ev = SimulateTraces(truth, 12, sim_rng);

  OnlineTrainerOptions options;
  options.window = 5;
  OnlineTrainer online(g, options);
  for (const ObjectTrace& trace : ev.traces) {
    ASSERT_TRUE(online.AbsorbTrace(trace).ok());
  }
  EXPECT_EQ(online.traces_in_window(), 5u);

  UnattributedEvidence tail;
  tail.traces.assign(ev.traces.end() - 5, ev.traces.end());
  SummaryOptions summary_options;
  for (NodeId sink = 0; sink < g->num_nodes(); ++sink) {
    const SinkSummary batch = BuildSinkSummary(*g, sink, tail,
                                               summary_options);
    const SinkSummary online_summary = online.SummaryForSink(sink);
    EXPECT_EQ(online_summary.unexplained_objects, batch.unexplained_objects);
    ASSERT_EQ(online_summary.rows.size(), batch.rows.size()) << "sink "
                                                             << sink;
    for (std::size_t r = 0; r < batch.rows.size(); ++r) {
      EXPECT_EQ(online_summary.rows[r].mask, batch.rows[r].mask);
      EXPECT_EQ(online_summary.rows[r].count, batch.rows[r].count);
      EXPECT_EQ(online_summary.rows[r].leaks, batch.rows[r].leaks);
    }
  }
}

TEST(OnlineTrainer, DecayPlusWindowEvictionStaysExact) {
  auto g = Diamond();
  OnlineTrainerOptions options;
  options.decay = 0.5;
  options.window = 2;
  OnlineTrainer trainer(g, options);

  AttributedObject obj;
  obj.sources = {0};
  obj.active_nodes = {0, 1};
  obj.active_edges = {g->FindEdge(0, 1)};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(trainer.AbsorbAttributed(obj).ok());
  }
  // Only the last two absorbs survive, decayed to 1 and 0.5 respectively:
  // α = 1 + 1·1 + 0.5... newest has weight 1 (decay applies before each
  // absorb, so the newest record is always at full weight).
  const double alpha = trainer.AttributedModel().alpha(g->FindEdge(0, 1));
  EXPECT_NEAR(alpha, 1.0 + 1.0 + 0.5, 1e-12);
}

TEST(OnlineTrainer, CurrentPointModelPolicy) {
  auto g = Diamond();
  OnlineTrainer trainer(g, {});
  Rng rng(1);
  EXPECT_EQ(trainer.CurrentPointModel(rng).status().code(),
            StatusCode::kNotFound);

  ObjectTrace trace;
  trace.activations.push_back({0, 0.0});
  trace.activations.push_back({1, 1.0});
  ASSERT_TRUE(trainer.AbsorbTrace(trace).ok());
  auto from_traces = trainer.CurrentPointModel(rng);
  ASSERT_TRUE(from_traces.ok()) << from_traces.status();

  AttributedObject obj;
  obj.sources = {0};
  obj.active_nodes = {0, 1};
  obj.active_edges = {g->FindEdge(0, 1)};
  ASSERT_TRUE(trainer.AbsorbAttributed(obj).ok());
  auto from_attributed = trainer.CurrentPointModel(rng);
  ASSERT_TRUE(from_attributed.ok());
  // Attributed evidence wins: Beta(2,1) on the observed edge → mean 2/3.
  EXPECT_DOUBLE_EQ(from_attributed->prob(g->FindEdge(0, 1)), 2.0 / 3.0);
}

// ------------------------------------------------------ epoch publication

TEST(ModelEpochs, MaxAbsDriftIsTheInfinityNorm) {
  auto g = Diamond();
  const PointIcm a(g, {0.1, 0.2, 0.3, 0.4});
  const PointIcm b(g, {0.1, 0.5, 0.3, 0.35});
  EXPECT_DOUBLE_EQ(MaxAbsDrift(a, b), 0.3);
  EXPECT_DOUBLE_EQ(MaxAbsDrift(a, a), 0.0);
}

TEST(ModelEpochs, PublishSwapsWithoutInvalidatingReaders) {
  auto g = Diamond();
  EpochPublisher publisher(PointIcm(g, {0.1, 0.2, 0.3, 0.4}));
  auto first = publisher.Current();
  EXPECT_EQ(first->id, 1u);
  EXPECT_DOUBLE_EQ(first->drift, 0.0);

  auto second = publisher.Publish(PointIcm(g, {0.6, 0.2, 0.3, 0.4}));
  EXPECT_EQ(second->id, 2u);
  EXPECT_NEAR(second->drift, 0.5, 1e-15);
  EXPECT_EQ(publisher.Current()->id, 2u);
  // The old epoch a reader holds is untouched by the swap.
  EXPECT_EQ(first->id, 1u);
  EXPECT_DOUBLE_EQ(first->model.prob(0), 0.1);
  EXPECT_GE(publisher.AgeSeconds(), 0.0);
}

TEST(ModelEpochs, ConcurrentPublishMintsUniqueMonotonicIds) {
  auto g = Diamond();
  EpochPublisher publisher(PointIcm(g, {0.1, 0.2, 0.3, 0.4}));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&publisher, &ids, g, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        std::vector<double> probs(g->num_edges());
        for (double& p : probs) p = rng.Uniform(0.1, 0.9);
        ids[static_cast<std::size_t>(t)].push_back(
            publisher.Publish(PointIcm(g, probs))->id);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Per publisher thread the returned ids increase; across all threads the
  // ids are exactly {2, ..., 1 + kThreads*kPerThread}, each minted once.
  std::vector<std::uint64_t> all;
  for (const auto& per_thread : ids) {
    EXPECT_TRUE(std::is_sorted(per_thread.begin(), per_thread.end()));
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i + 2) << "duplicate or skipped epoch id";
  }
  EXPECT_EQ(publisher.Current()->id, 1u + kThreads * kPerThread);
}

// ---------------------------------------------------------- the ingestor

IngestorOptions FastIngest(std::size_t epoch_every = 1) {
  IngestorOptions options;
  options.epoch_every = epoch_every;
  options.seed = 7;
  return options;
}

TEST(StreamIngestor, IngestLineAbsorbsAndPublishes) {
  auto g = Diamond();
  StreamIngestor ingestor(g, PointIcm::Constant(g, 0.5), FastIngest());
  EXPECT_EQ(ingestor.CurrentEpoch()->id, 1u);

  auto ack = ingestor.IngestLine("0|0 1|0>1");
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->absorbed_total, 1u);
  EXPECT_EQ(ack->epoch, 2u);  // epoch_every=1 → publish per record
  // Beta(2,1) on the observed edge, Beta(1,2) on the silent sibling.
  const PointIcm& model = ingestor.CurrentEpoch()->model;
  EXPECT_DOUBLE_EQ(model.prob(g->FindEdge(0, 1)), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(model.prob(g->FindEdge(0, 2)), 1.0 / 3.0);

  EXPECT_FALSE(ingestor.IngestLine("garbage | nonsense").ok());
  EXPECT_EQ(ingestor.rejected(), 1u);
  EXPECT_EQ(ingestor.absorbed(), 1u);
}

TEST(StreamIngestor, EpochCadenceAndCallback) {
  auto g = Diamond();
  StreamIngestor ingestor(g, PointIcm::Constant(g, 0.5), FastIngest(3));
  std::vector<std::uint64_t> published;
  ingestor.SetEpochCallback(
      [&published](std::shared_ptr<const ModelEpoch> epoch) {
        published.push_back(epoch->id);
      });
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(ingestor.IngestLine("0|0 1|0>1").ok());
  }
  // 7 records at epoch_every=3 → publishes after records 3 and 6.
  EXPECT_EQ(published, std::vector<std::uint64_t>({2, 3}));
  auto flushed = ingestor.PublishNow();
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ((*flushed)->id, 4u);
  EXPECT_EQ(published, std::vector<std::uint64_t>({2, 3, 4}));
}

TEST(StreamIngestor, ConcurrentIngestKeepsEpochsOrderedAndUnique) {
  auto g = Diamond();
  StreamIngestor ingestor(g, PointIcm::Constant(g, 0.5),
                          FastIngest(/*epoch_every=*/1));
  // The callback runs under the publish lock, so the epochs it sees must
  // be strictly increasing even with many threads racing fit+publish.
  std::uint64_t last_seen = 1;
  std::uint64_t out_of_order = 0;
  std::uint64_t callbacks = 0;
  ingestor.SetEpochCallback(
      [&](std::shared_ptr<const ModelEpoch> epoch) {
        if (epoch->id <= last_seen) ++out_of_order;
        last_seen = epoch->id;
        ++callbacks;
      });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ingestor, &failures] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!ingestor.IngestLine("0|0 1|0>1").ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(ingestor.absorbed(), kTotal);
  // epoch_every=1: every absorbed record published exactly one epoch.
  EXPECT_EQ(callbacks, kTotal);
  EXPECT_EQ(out_of_order, 0u);
  EXPECT_EQ(ingestor.CurrentEpoch()->id, 1u + kTotal);
}

TEST(StreamIngestor, FeedFromFileDrainsAndFlushes) {
  auto g = Diamond();
  const std::string path = ::testing::TempDir() + "/stream_feed.ndjson";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "0|0 1|0>1\n";
    out << R"({"attributed":"0|0 2|0>2"})" << "\n";
    out << "not a record\n";
    out << "0|0 1 3|0>1 1>3\n";
  }
  StreamIngestor ingestor(g, PointIcm::Constant(g, 0.5), FastIngest(100));
  ASSERT_TRUE(ingestor.StartFeed(path).ok());
  // A second feed on a live ingestor is refused.
  EXPECT_EQ(ingestor.StartFeed(path).code(), StatusCode::kFailedPrecondition);
  // The file is finite: the reader hits EOF, the consumer drains and
  // flush-publishes. Wait for that epoch rather than sleeping blindly.
  for (int i = 0; i < 500 && ingestor.CurrentEpoch()->id < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ingestor.StopFeed();
  EXPECT_EQ(ingestor.absorbed(), 3u);
  EXPECT_EQ(ingestor.CurrentEpoch()->id, 2u);  // one flush publish
  EXPECT_FALSE(ingestor.StartFeed("/nonexistent/feed").ok());
}

// ------------------------------------------- bank rebuild + serve verb

serve::BankOptions FastBank(std::size_t states = 256) {
  serve::BankOptions options;
  options.num_states = states;
  options.chain.num_chains = 2;
  options.chain.mh.burn_in = 600;
  options.chain.mh.thinning = 4;
  return options;
}

TEST(SampleBankRebuild, SwapsModelEpochAndIsSeedDeterministic) {
  auto g = RandomGraph(61, 12, 36);
  const PointIcm before = RandomModel(g, 62);
  const PointIcm after = RandomModel(g, 63);

  auto bank1 = serve::SampleBank::Create(before, FastBank(), /*seed=*/9);
  auto bank2 = serve::SampleBank::Create(before, FastBank(), /*seed=*/9);
  ASSERT_TRUE(bank1.ok() && bank2.ok());
  EXPECT_EQ(bank1->Acquire()->model_epoch(), 1u);
  EXPECT_EQ(bank1->model_epoch(), 1u);

  auto held = bank1->Acquire();  // in-flight reader across the rebuild
  ASSERT_TRUE(bank1->Rebuild(after, /*model_epoch=*/5).ok());
  ASSERT_TRUE(bank2->Rebuild(after, /*model_epoch=*/5).ok());

  EXPECT_EQ(bank1->model_epoch(), 5u);
  auto gen1 = bank1->Acquire();
  auto gen2 = bank2->Acquire();
  EXPECT_EQ(gen1->id(), 2u);
  EXPECT_EQ(gen1->model_epoch(), 5u);
  EXPECT_EQ(held->model_epoch(), 1u);  // the held generation is immutable
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    EXPECT_EQ(bank1->model().prob(e), after.prob(e));
  }
  // Same create seed + same epoch → DeriveChainSeed gives identical chains,
  // hence identical rows: a restarted daemon reproduces its bank.
  ASSERT_EQ(gen1->num_rows(), gen2->num_rows());
  for (std::size_t r = 0; r < gen1->num_rows(); ++r) {
    for (std::size_t w = 0; w < gen1->words_per_row(); ++w) {
      ASSERT_EQ(gen1->Row(r)[w], gen2->Row(r)[w]) << "row " << r;
    }
  }
}

TEST(SampleBankRebuild, RejectsTopologyMismatch) {
  auto g = RandomGraph(71, 12, 36);
  auto other = RandomGraph(72, 12, 37);
  auto bank = serve::SampleBank::Create(RandomModel(g, 73), FastBank(), 1);
  ASSERT_TRUE(bank.ok());
  EXPECT_EQ(bank->Rebuild(RandomModel(other, 74), 2).code(),
            StatusCode::kInvalidArgument);
}

/// One ServeFd conversation over pipes (the test_serve.cc pattern).
std::string RoundTrip(serve::Server& server, const std::string& input) {
  int in_pipe[2];
  int out_pipe[2];
  EXPECT_EQ(pipe(in_pipe), 0);
  EXPECT_EQ(pipe(out_pipe), 0);
  EXPECT_EQ(write(in_pipe[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  close(in_pipe[1]);
  const Status status = server.ServeFd(in_pipe[0], out_pipe[1]);
  EXPECT_TRUE(status.ok()) << status;
  close(in_pipe[0]);
  close(out_pipe[1]);
  std::string output;
  char chunk[4096];
  ssize_t got;
  while ((got = read(out_pipe[0], chunk, sizeof(chunk))) > 0) {
    output.append(chunk, static_cast<std::size_t>(got));
  }
  close(out_pipe[0]);
  return output;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(ServeIngest, VerbIsRejectedWithoutAnIngestor) {
  auto g = Diamond();
  auto bank =
      serve::SampleBank::Create(PointIcm::Constant(g, 0.5), FastBank(), 3);
  ASSERT_TRUE(bank.ok());
  auto server = serve::Server::Create(std::move(bank).ValueOrDie(), {});
  ASSERT_TRUE(server.ok());
  const std::string out =
      RoundTrip(*server, R"({"id":"i1","ingest":"0|0 1|0>1"})" "\n");
  auto json = ParseJson(SplitLines(out)[0]);
  ASSERT_TRUE(json.ok());
  EXPECT_FALSE(json->Find("ok")->AsBool());
  EXPECT_EQ(json->Find("error")->Find("code")->AsString(),
            "failed-precondition");
}

TEST(ServeIngest, IngestThenQuerySeesRebuiltEpoch) {
  auto g = Diamond();
  const PointIcm initial = PointIcm::Constant(g, 0.5);
  auto bank = serve::SampleBank::Create(initial, FastBank(), 3);
  ASSERT_TRUE(bank.ok());
  serve::ServerOptions options;
  options.drift_threshold = 0.0;  // any drift triggers a rebuild
  auto server = serve::Server::Create(std::move(bank).ValueOrDie(), options);
  ASSERT_TRUE(server.ok());
  auto ingestor =
      std::make_shared<StreamIngestor>(g, initial, FastIngest(/*every=*/2));
  server->AttachIngestor(ingestor);
  ASSERT_TRUE(server->Start().ok());

  // Two evidence lines (epoch publishes after the 2nd) and one query. The
  // protocol guarantees absorption order; the rebuild is asynchronous and
  // drained by Stop() below.
  const std::string out = RoundTrip(
      *server,
      R"({"id":"e1","ingest":"0|0 1|0>1"})" "\n"
      R"({"id":"e2","ingest":"0|0 2|0>2"})" "\n"
      R"({"id":"q1","source":0,"sink":3})" "\n");
  server->Stop();

  const std::vector<std::string> lines = SplitLines(out);
  ASSERT_EQ(lines.size(), 3u);
  auto ack1 = ParseJson(lines[0]);
  ASSERT_TRUE(ack1.ok());
  EXPECT_TRUE(ack1->Find("ok")->AsBool());
  EXPECT_TRUE(ack1->Find("ingested")->AsBool());
  EXPECT_DOUBLE_EQ(ack1->Find("absorbed_total")->AsNumber(), 1.0);
  auto ack2 = ParseJson(lines[1]);
  ASSERT_TRUE(ack2.ok());
  EXPECT_DOUBLE_EQ(ack2->Find("absorbed_total")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(ack2->Find("epoch")->AsNumber(), 2.0);
  auto query = ParseJson(lines[2]);
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->Find("ok")->AsBool());
  ASSERT_NE(query->Find("model_epoch"), nullptr);

  // Stop() drained the pending rebuild: the bank now serves epoch 2 rows.
  EXPECT_EQ(server->bank().model_epoch(), 2u);
  EXPECT_GE(server->bank().Acquire()->id(), 2u);
  // Edge 1->3 was silent while node 1 was active: Beta(1,2) → mean 1/3.
  EXPECT_DOUBLE_EQ(server->bank().model().prob(g->FindEdge(1, 3)),
                   1.0 / 3.0);
}

TEST(ServeIngest, DriftRebuildInvalidatesTopkSketches) {
  // Round trip for the seedmax publish hook: a top-k answer pins the
  // sketch cache to the current generation/model epoch; streamed evidence
  // that triggers a drift rebuild must re-prime the index so the next
  // top-k answers from the rebuilt rows, not stale sketches.
  auto g = Diamond();
  const PointIcm initial = PointIcm::Constant(g, 0.5);
  auto bank = serve::SampleBank::Create(initial, FastBank(), 3);
  ASSERT_TRUE(bank.ok());
  serve::ServerOptions options;
  options.drift_threshold = 0.0;  // any drift triggers a rebuild
  auto server = serve::Server::Create(std::move(bank).ValueOrDie(), options);
  ASSERT_TRUE(server.ok());
  auto ingestor =
      std::make_shared<StreamIngestor>(g, initial, FastIngest(/*every=*/2));
  server->AttachIngestor(ingestor);
  ASSERT_TRUE(server->Start().ok());

  const std::string before =
      RoundTrip(*server, R"({"id":"m1","topk":2})" "\n");
  auto first = ParseJson(SplitLines(before)[0]);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(first->Find("model_epoch")->AsNumber(), 1.0);
  const double generation_before = first->Find("generation")->AsNumber();

  // Two evidence lines publish epoch 2; Stop() drains the queued rebuild.
  RoundTrip(*server,
            R"({"id":"e1","ingest":"0|0 1|0>1"})" "\n"
            R"({"id":"e2","ingest":"0|0 2|0>2"})" "\n");
  server->Stop();
  ASSERT_EQ(server->bank().model_epoch(), 2u);

  const std::string after =
      RoundTrip(*server, R"({"id":"m2","topk":2})" "\n");
  auto second = ParseJson(SplitLines(after)[0]);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(second->Find("model_epoch")->AsNumber(), 2.0);
  EXPECT_GT(second->Find("generation")->AsNumber(), generation_before);

  // The rebuild's Prime left the index warm: acquiring the current
  // generation directly returns sketches already on the rebuilt epoch.
  auto sketches = server->rr_index()->Acquire(server->bank().Acquire());
  ASSERT_TRUE(sketches.ok()) << sketches.status();
  EXPECT_EQ((*sketches)->model_epoch(), 2u);
}

TEST(ServeIngest, StopQuiescesTheFeedAndDrainsItsRebuild) {
  auto g = Diamond();
  const PointIcm initial = PointIcm::Constant(g, 0.5);
  auto bank = serve::SampleBank::Create(initial, FastBank(), 3);
  ASSERT_TRUE(bank.ok());
  serve::ServerOptions options;
  options.drift_threshold = 0.0;  // any drift triggers a rebuild
  auto server = serve::Server::Create(std::move(bank).ValueOrDie(), options);
  ASSERT_TRUE(server.ok());
  // epoch_every larger than the feed: the only publish is the flush when
  // the drained feed stops — which Stop() itself must trigger and drain.
  auto ingestor = std::make_shared<StreamIngestor>(
      g, initial, FastIngest(/*epoch_every=*/100));
  server->AttachIngestor(ingestor);
  ASSERT_TRUE(server->Start().ok());

  const std::string path = ::testing::TempDir() + "/serve_stop_feed.evidence";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "0|0 1|0>1\n";
  }
  ASSERT_TRUE(ingestor->StartFeed(path).ok());
  for (int i = 0; i < 500 && ingestor->absorbed() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(ingestor->absorbed(), 1u);

  // No explicit StopFeed(): Stop() stops the feed, waits out the flush
  // publish, and applies the resulting drift-triggered rebuild before
  // returning — the epoch-2 model is live once Stop() is back.
  server->Stop();
  EXPECT_EQ(ingestor->CurrentEpoch()->id, 2u);
  EXPECT_EQ(server->bank().model_epoch(), 2u);
  std::remove(path.c_str());
}

TEST(ServeIngest, ProtocolHelpers) {
  auto json = ParseJson(R"({"id":"a","ingest":"0:0"})");
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(serve::IsIngestRequest(*json));
  auto request = serve::ParseIngestRequest(*json);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->id, "a");
  EXPECT_EQ(request->record, "0:0");

  auto query = ParseJson(R"({"id":"q","source":0,"sink":3})");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(serve::IsIngestRequest(*query));
  EXPECT_FALSE(
      serve::ParseIngestRequest(*ParseJson(R"({"ingest":42})")).ok());

  const std::string ack = serve::SerializeIngestAck(*request, 10, 3);
  auto parsed = ParseJson(ack);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Find("absorbed_total")->AsNumber(), 10.0);
  EXPECT_DOUBLE_EQ(parsed->Find("epoch")->AsNumber(), 3.0);
}

}  // namespace
}  // namespace infoflow::stream
