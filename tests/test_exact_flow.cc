#include "core/exact_flow.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

// The paper's worked example (§II, Eq. 1): v1->v2, v1->v3, v2->v3.
PointIcm PaperTriangle(double p12, double p13, double p23) {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  auto g = Share(std::move(b).Build());
  std::vector<double> probs(3);
  probs[g->FindEdge(0, 1)] = p12;
  probs[g->FindEdge(0, 2)] = p13;
  probs[g->FindEdge(1, 2)] = p23;
  return PointIcm(g, probs);
}

TEST(ExactFlow, PaperEquationOne) {
  // Pr[v1 ~> v3] = 1 - (1 - p12 p23)(1 - p13).
  const double p12 = 0.6, p13 = 0.3, p23 = 0.5;
  PointIcm icm = PaperTriangle(p12, p13, p23);
  const double expected = 1.0 - (1.0 - p12 * p23) * (1.0 - p13);
  EXPECT_NEAR(ExactFlowByEnumeration(icm, 0, 2), expected, 1e-12);
  EXPECT_NEAR(FlowByExcludeRecursion(icm, 0, 2), expected, 1e-12);
}

TEST(ExactFlow, PaperCyclicVariantStillMatchesEquationOne) {
  // Adding arc (v3, v2) must leave Pr[v1 ~> v3] unchanged (§II).
  const double p12 = 0.6, p13 = 0.3, p23 = 0.5, p32 = 0.9;
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(2, 1).CheckOK();
  auto g = Share(std::move(b).Build());
  std::vector<double> probs(4);
  probs[g->FindEdge(0, 1)] = p12;
  probs[g->FindEdge(0, 2)] = p13;
  probs[g->FindEdge(1, 2)] = p23;
  probs[g->FindEdge(2, 1)] = p32;
  PointIcm icm(g, probs);
  const double expected = 1.0 - (1.0 - p12 * p23) * (1.0 - p13);
  EXPECT_NEAR(ExactFlowByEnumeration(icm, 0, 2), expected, 1e-12);
  EXPECT_NEAR(FlowByExcludeRecursion(icm, 0, 2), expected, 1e-12);
  // And flow to v2 now has the path through v3: 1-(1-p12)(1-p13 p32).
  const double expected_v2 = 1.0 - (1.0 - p12) * (1.0 - p13 * p32);
  EXPECT_NEAR(ExactFlowByEnumeration(icm, 0, 1), expected_v2, 1e-12);
  EXPECT_NEAR(FlowByExcludeRecursion(icm, 0, 1), expected_v2, 1e-12);
}

TEST(ExactFlow, SourceEqualsSink) {
  PointIcm icm = PaperTriangle(0.5, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(ExactFlowByEnumeration(icm, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(FlowByExcludeRecursion(icm, 1, 1), 1.0);
}

TEST(ExactFlow, UnreachableSinkIsZero) {
  PointIcm icm = PaperTriangle(0.5, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(ExactFlowByEnumeration(icm, 2, 0), 0.0);
  EXPECT_DOUBLE_EQ(FlowByExcludeRecursion(icm, 2, 0), 0.0);
}

TEST(ExactFlow, SingleEdgeIsItsProbability) {
  GraphBuilder b(2);
  b.AddEdge(0, 1).CheckOK();
  PointIcm icm(Share(std::move(b).Build()), {0.37});
  EXPECT_NEAR(ExactFlowByEnumeration(icm, 0, 1), 0.37, 1e-14);
  EXPECT_NEAR(FlowByExcludeRecursion(icm, 0, 1), 0.37, 1e-14);
}

TEST(ExactFlow, ChainMultipliesProbabilities) {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  auto g = Share(std::move(b).Build());
  PointIcm icm(g, {0.5, 0.6, 0.7});
  EXPECT_NEAR(ExactFlowByEnumeration(icm, 0, 3), 0.5 * 0.6 * 0.7, 1e-12);
  EXPECT_NEAR(FlowByExcludeRecursion(icm, 0, 3), 0.5 * 0.6 * 0.7, 1e-12);
}

TEST(ExactFlow, RecursionMatchesEnumerationOnTrees) {
  // On trees (edge-disjoint paths) Eq. 2 is exact.
  GraphBuilder b(7);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(1, 4).CheckOK();
  b.AddEdge(2, 5).CheckOK();
  b.AddEdge(2, 6).CheckOK();
  auto g = Share(std::move(b).Build());
  PointIcm icm(g, {0.9, 0.2, 0.5, 0.8, 0.4, 0.6});
  for (NodeId v = 1; v < 7; ++v) {
    EXPECT_NEAR(FlowByExcludeRecursion(icm, 0, v),
                ExactFlowByEnumeration(icm, 0, v), 1e-12)
        << "sink " << v;
  }
}

TEST(ExactFlow, RecursionDivergesWithSharedUpstreamEdges) {
  // 0->1, 1->2, 1->3, 2->4, 3->4: flows into 4's two parents share edge
  // 0->1, so Eq. 2's independence assumption over-counts. Document the
  // direction of the bias: recursion >= truth here.
  GraphBuilder b(5);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(2, 4).CheckOK();
  b.AddEdge(3, 4).CheckOK();
  auto g = Share(std::move(b).Build());
  PointIcm icm = PointIcm::Constant(g, 0.5);
  const double truth = ExactFlowByEnumeration(icm, 0, 4);
  const double recursion = FlowByExcludeRecursion(icm, 0, 4);
  EXPECT_GT(recursion, truth);
  EXPECT_NEAR(recursion, truth, 0.05);  // but not wildly off at p=0.5
}

TEST(ExactFlow, MonotoneInEdgeProbability) {
  double prev = -1.0;
  for (double p = 0.0; p <= 1.0001; p += 0.1) {
    PointIcm icm = PaperTriangle(std::min(p, 1.0), 0.3, 0.5);
    const double flow = ExactFlowByEnumeration(icm, 0, 2);
    EXPECT_GE(flow, prev - 1e-12);
    prev = flow;
  }
}

TEST(ExactConditional, ConditioningOnImpliedFlowRaisesProbability) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  // Knowing v1 ~> v2 flowed makes v1 ~> v3 more likely (the v2 path is
  // live).
  const double unconditional = ExactFlowByEnumeration(icm, 0, 2);
  const auto conditional =
      ExactConditionalFlowByEnumeration(icm, 0, 2, {{0, 1, true}});
  ASSERT_TRUE(conditional.ok());
  EXPECT_GT(*conditional, unconditional);
}

TEST(ExactConditional, ConditioningAgainstFlowLowersProbability) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  const double unconditional = ExactFlowByEnumeration(icm, 0, 2);
  const auto conditional =
      ExactConditionalFlowByEnumeration(icm, 0, 2, {{0, 1, false}});
  ASSERT_TRUE(conditional.ok());
  EXPECT_LT(*conditional, unconditional);
  // With v1 !~> v2, only the direct edge remains: exactly p13.
  EXPECT_NEAR(*conditional, 0.3, 1e-12);
}

TEST(ExactConditional, ImpossibleConditionsRejected) {
  GraphBuilder b(2);
  b.AddEdge(0, 1).CheckOK();
  PointIcm icm(Share(std::move(b).Build()), {1.0});
  const auto r = ExactConditionalFlowByEnumeration(icm, 0, 1,
                                                   {{0, 1, false}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExactJoint, JointLessOrEqualMarginals) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  const double joint =
      ExactJointFlowByEnumeration(icm, {{0, 1, true}, {0, 2, true}});
  EXPECT_LE(joint, ExactFlowByEnumeration(icm, 0, 1) + 1e-12);
  EXPECT_LE(joint, ExactFlowByEnumeration(icm, 0, 2) + 1e-12);
  EXPECT_GT(joint, 0.0);
}

TEST(ExactJoint, MixedConstraints) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  const double p =
      ExactJointFlowByEnumeration(icm, {{0, 1, true}, {0, 2, false}});
  // v1~>v2 but v1!~>v3: edge (0,1) active, both (0,2) and (1,2) inactive.
  EXPECT_NEAR(p, 0.6 * 0.7 * 0.5, 1e-12);
}

TEST(ExactConditions, EmptyConditionsHaveProbabilityOne) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  EXPECT_DOUBLE_EQ(ExactConditionsProbability(icm, {}), 1.0);
}

TEST(ExactFlowDeath, EnumerationRefusesLargeGraphs) {
  Rng rng(1);
  auto g = Share(UniformRandomGraph(10, 40, rng));
  PointIcm icm = PointIcm::Constant(g, 0.5);
  EXPECT_DEATH(ExactFlowByEnumeration(icm, 0, 1), "refused");
}

}  // namespace
}  // namespace infoflow
