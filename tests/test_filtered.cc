#include "learn/filtered.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace infoflow {
namespace {

SinkSummary MakeSummary(std::size_t k, std::vector<SummaryRow> rows) {
  static std::vector<DirectedGraph> keep_alive;
  keep_alive.push_back(StarFragment(k));
  const DirectedGraph& g = keep_alive.back();
  SinkSummary s;
  s.sink = static_cast<NodeId>(k);
  for (EdgeId e : g.InEdges(s.sink)) {
    s.parents.push_back(g.edge(e).src);
    s.parent_edges.push_back(e);
  }
  s.rows = std::move(rows);
  return s;
}

SummaryRow Row(std::vector<std::uint8_t> mask, std::uint64_t count,
               std::uint64_t leaks) {
  SummaryRow r;
  r.mask = std::move(mask);
  r.count = count;
  r.leaks = leaks;
  return r;
}

TEST(Filtered, UsesOnlySingletonRows) {
  SinkSummary s = MakeSummary(
      2, {Row({1, 0}, 10, 4), Row({1, 1}, 1000, 999)});
  const FilteredResult fit = FitFiltered(s);
  // The massive ambiguous row is ignored entirely.
  EXPECT_DOUBLE_EQ(fit.posterior[0].alpha(), 5.0);
  EXPECT_DOUBLE_EQ(fit.posterior[0].beta(), 7.0);
  EXPECT_DOUBLE_EQ(fit.estimate[0], 5.0 / 12.0);
  EXPECT_DOUBLE_EQ(fit.estimate[1], 0.5);  // untouched uniform prior
}

TEST(Filtered, MatchesBetaCountingOnCleanEvidence) {
  SinkSummary s = MakeSummary(1, {Row({1}, 30, 12)});
  const FilteredResult fit = FitFiltered(s);
  EXPECT_DOUBLE_EQ(fit.posterior[0].alpha(), 13.0);
  EXPECT_DOUBLE_EQ(fit.posterior[0].beta(), 19.0);
}

TEST(Filtered, EmptySummaryIsUniform) {
  SinkSummary s = MakeSummary(3, {});
  const FilteredResult fit = FitFiltered(s);
  for (const BetaDist& b : fit.posterior) {
    EXPECT_DOUBLE_EQ(b.alpha(), 1.0);
    EXPECT_DOUBLE_EQ(b.beta(), 1.0);
  }
}

TEST(Filtered, EstimatesEqualPosteriorMeans) {
  SinkSummary s =
      MakeSummary(2, {Row({1, 0}, 8, 2), Row({0, 1}, 6, 6)});
  const FilteredResult fit = FitFiltered(s);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_DOUBLE_EQ(fit.estimate[j], fit.posterior[j].Mean());
  }
}

TEST(Filtered, CarriesSinkAndParentMetadata) {
  SinkSummary s = MakeSummary(2, {Row({1, 0}, 1, 1)});
  const FilteredResult fit = FitFiltered(s);
  EXPECT_EQ(fit.sink, 2u);
  EXPECT_EQ(fit.parents, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(fit.parent_edges.size(), 2u);
}

}  // namespace
}  // namespace infoflow
