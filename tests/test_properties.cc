/// \file test_properties.cc
/// \brief Parameterized property sweeps: each suite checks one invariant
/// across a family of randomly generated models (TEST_P /
/// INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_flow.h"
#include "core/impact.h"
#include "core/mh_sampler.h"
#include "core/serialization.h"
#include "graph/generators.h"
#include "learn/joint_bayes.h"
#include "learn/summary.h"
#include "stats/binomial.h"
#include "stats/special.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

/// Random small model: seed determines everything.
PointIcm SmallRandomModel(std::uint64_t seed, NodeId nodes, EdgeId edges,
                          double lo, double hi) {
  Rng rng(seed);
  auto g = Share(UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.Uniform(lo, hi);
  return PointIcm(g, probs);
}

// ---------------------------------------------------------------------
// Property: the MH flow estimate converges to the exact enumeration value
// on every graph in the family — including cyclic and near-deterministic
// edge probabilities.
class MhMatchesEnumeration : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MhMatchesEnumeration, UnconditionalFlows) {
  const std::uint64_t seed = GetParam();
  PointIcm model = SmallRandomModel(seed, 7, 14, 0.05, 0.95);
  MhOptions opt;
  opt.burn_in = 2000;
  opt.thinning = 5;
  auto sampler = MhSampler::Create(model, {}, opt, Rng(seed * 13 + 1));
  ASSERT_TRUE(sampler.ok());
  for (NodeId sink : {1u, 3u, 6u}) {
    const double exact = ExactFlowByEnumeration(model, 0, sink);
    const double estimate =
        sampler->EstimateFlowProbability(0, sink, 25000);
    EXPECT_NEAR(estimate, exact, 0.02) << "seed " << seed << " sink " << sink;
  }
}

TEST_P(MhMatchesEnumeration, ConditionalFlows) {
  const std::uint64_t seed = GetParam();
  PointIcm model = SmallRandomModel(seed, 7, 14, 0.1, 0.9);
  const FlowConditions cond{{0, 1, true}};
  MhOptions opt;
  opt.burn_in = 2500;
  opt.thinning = 6;
  auto exact = ExactConditionalFlowByEnumeration(model, 0, 4, cond);
  auto sampler = MhSampler::Create(model, cond, opt, Rng(seed * 17 + 3));
  if (!exact.ok()) {
    // Seed 33 draws a graph with no directed 0→1 path, so Pr[C | M] = 0 and
    // the conditional query is undefined. All edge probabilities lie in
    // (0.1, 0.9), so "zero probability" can only mean "no path": assert the
    // enumerator and the sampler agree the query is unanswerable instead of
    // silently skipping the case.
    EXPECT_EQ(ExactConditionsProbability(model, cond), 0.0)
        << "seed " << seed;
    EXPECT_FALSE(sampler.ok())
        << "seed " << seed
        << ": sampler built a chain for a zero-probability condition";
    return;
  }
  // Pr[C | M] > 0 guarantees an admissible initial state exists, so Create
  // must succeed — a failure here is a sampler bug, not a flaky input.
  ASSERT_TRUE(sampler.ok()) << sampler.status() << " seed " << seed;
  EXPECT_NEAR(sampler->EstimateFlowProbability(0, 4, 25000), *exact, 0.025)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MhMatchesEnumeration,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------
// Property: raising any single edge probability never lowers any
// end-to-end flow probability (monotone coupling).
class FlowMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowMonotonicity, RaisingAnEdgeNeverHurts) {
  const std::uint64_t seed = GetParam();
  PointIcm model = SmallRandomModel(seed, 6, 10, 0.1, 0.7);
  const double base = ExactFlowByEnumeration(model, 0, 5);
  for (EdgeId e = 0; e < model.graph().num_edges(); ++e) {
    std::vector<double> bumped = model.probs();
    bumped[e] = std::min(1.0, bumped[e] + 0.2);
    PointIcm raised(model.graph_ptr(), bumped);
    EXPECT_GE(ExactFlowByEnumeration(raised, 0, 5), base - 1e-12)
        << "seed " << seed << " edge " << e;
  }
}

TEST_P(FlowMonotonicity, AddingAnEdgeNeverHurts) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  auto g = Share(UniformRandomGraph(6, 8, rng));
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.Uniform(0.1, 0.7);
  PointIcm model(g, probs);
  const double base = ExactFlowByEnumeration(model, 0, 5);
  // Add one random absent edge.
  for (int tries = 0; tries < 50; ++tries) {
    const auto u = static_cast<NodeId>(rng.NextBounded(6));
    const auto v = static_cast<NodeId>(rng.NextBounded(6));
    if (u == v || g->HasEdge(u, v)) continue;
    GraphBuilder b(6);
    for (const Edge& edge : g->edges()) b.AddEdge(edge.src, edge.dst).CheckOK();
    b.AddEdge(u, v).CheckOK();
    auto g2 = Share(std::move(b).Build());
    std::vector<double> probs2(g2->num_edges());
    for (EdgeId e = 0; e < g2->num_edges(); ++e) {
      const Edge& edge = g2->edge(e);
      const EdgeId old_id = g->FindEdge(edge.src, edge.dst);
      probs2[e] = old_id == kInvalidEdge ? 0.5 : probs[old_id];
    }
    PointIcm bigger(g2, probs2);
    EXPECT_GE(ExactFlowByEnumeration(bigger, 0, 5), base - 1e-12)
        << "seed " << seed;
    return;
  }
  GTEST_SKIP() << "graph already dense";
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, FlowMonotonicity,
                         ::testing::Values(3, 14, 15, 92, 65, 35));

// ---------------------------------------------------------------------
// Property: pseudo-state probabilities (Eq. 3) are a distribution, and the
// conditional distribution renormalizes exactly (Eq. 6).
class PseudoStateDistribution
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PseudoStateDistribution, ConditionalRenormalizes) {
  const std::uint64_t seed = GetParam();
  PointIcm model = SmallRandomModel(seed, 5, 8, 0.1, 0.9);
  const FlowConditions cond{{0, 2, true}};
  const double p_cond = ExactConditionsProbability(model, cond);
  const double joint = ExactJointFlowByEnumeration(
      model, {{0, 2, true}, {0, 4, true}});
  auto conditional = ExactConditionalFlowByEnumeration(model, 0, 4, cond);
  if (p_cond <= 0.0) {
    // Seed 28 draws a graph where node 2 is unreachable from 0, so the
    // conditioning event has probability exactly zero. The renormalization
    // identity degenerates consistently: the joint must also be zero and
    // the conditional evaluator must refuse rather than divide by zero.
    EXPECT_EQ(p_cond, 0.0) << "seed " << seed;
    EXPECT_EQ(joint, 0.0) << "seed " << seed;
    EXPECT_FALSE(conditional.ok()) << "seed " << seed;
    return;
  }
  // Bayes: Pr[flow and C] / Pr[C] == conditional flow.
  ASSERT_TRUE(conditional.ok());
  EXPECT_NEAR(*conditional, joint / p_cond, 1e-12) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PseudoStateDistribution,
                         ::testing::Values(7, 19, 28, 41, 53));

// ---------------------------------------------------------------------
// Property: Beta quantile inverts the CDF across the parameter family.
struct BetaParams {
  double alpha;
  double beta;
};
class BetaQuantileInversion : public ::testing::TestWithParam<BetaParams> {};

TEST_P(BetaQuantileInversion, RoundTrips) {
  const auto [alpha, beta] = GetParam();
  const BetaDist dist(alpha, beta);
  for (double p = 0.02; p < 1.0; p += 0.07) {
    EXPECT_NEAR(dist.Cdf(dist.Quantile(p)), p, 1e-8)
        << "Beta(" << alpha << "," << beta << ") p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(ParameterGrid, BetaQuantileInversion,
                         ::testing::Values(BetaParams{0.5, 0.5},
                                           BetaParams{1.0, 1.0},
                                           BetaParams{1.0, 45.0},
                                           BetaParams{32.0, 40.0},
                                           BetaParams{16.0, 4.0},
                                           BetaParams{200.0, 300.0}));

// ---------------------------------------------------------------------
// Property: the evidence summary is a sufficient statistic — Bernoulli
// log-likelihood == Binomial summary log-likelihood up to the binomial
// coefficients — for random evidence and random parameters.
class SummarySufficiency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummarySufficiency, BernoulliEqualsBinomial) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t parents = 2 + rng.NextBounded(4);
  const DirectedGraph graph = StarFragment(parents);
  const auto sink = static_cast<NodeId>(parents);
  UnattributedEvidence ev;
  std::vector<std::pair<std::vector<std::uint8_t>, bool>> raw;
  for (int i = 0; i < 80; ++i) {
    ObjectTrace trace;
    std::vector<std::uint8_t> mask(parents, 0);
    double time = 1.0;
    bool any = false;
    for (NodeId p = 0; p < sink; ++p) {
      if (rng.Bernoulli(0.5)) {
        mask[p] = 1;
        any = true;
        trace.activations.push_back({p, time++});
      }
    }
    if (!any) continue;
    const bool leak = rng.Bernoulli(0.5);
    if (leak) trace.activations.push_back({sink, time});
    raw.emplace_back(mask, leak);
    ev.traces.push_back(std::move(trace));
  }
  const SinkSummary summary = BuildSinkSummary(graph, sink, ev);
  std::vector<double> p(parents);
  for (double& x : p) x = rng.Uniform(0.05, 0.95);
  auto joint = [&p](const std::vector<std::uint8_t>& mask) {
    double survive = 1.0;
    for (std::size_t j = 0; j < mask.size(); ++j) {
      if (mask[j]) survive *= 1.0 - p[j];
    }
    return 1.0 - survive;
  };
  double bernoulli = 0.0;
  for (const auto& [mask, leak] : raw) {
    bernoulli += std::log(leak ? joint(mask) : 1.0 - joint(mask));
  }
  double binomial = 0.0, constant = 0.0;
  for (const SummaryRow& row : summary.rows) {
    binomial += BinomialLogPmf(row.count, row.leaks, joint(row.mask));
    constant += LogChoose(row.count, row.leaks);
  }
  EXPECT_NEAR(bernoulli, binomial - constant, 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomEvidence, SummarySufficiency,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------
// Property: the two spread-size estimators agree — SampleDispersion walks
// MH pseudo-states and counts reachability, SimulateImpact runs generative
// cascades; both must produce the same distribution of |V_i| − 1.
class SpreadEstimatorAgreement
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpreadEstimatorAgreement, DispersionMatchesImpact) {
  const std::uint64_t seed = GetParam();
  PointIcm model = SmallRandomModel(seed, 8, 18, 0.1, 0.7);
  Rng impact_rng(seed + 1);
  const ImpactDistribution impact =
      SimulateImpact(model, 0, 40000, impact_rng);
  MhOptions opt;
  opt.burn_in = 2000;
  opt.thinning = 6;
  auto sampler = MhSampler::Create(model, {}, opt, Rng(seed + 2));
  ASSERT_TRUE(sampler.ok());
  const auto dispersion = sampler->SampleDispersion(0, 40000);
  std::vector<double> disp_freq(9, 0.0);
  for (std::uint32_t d : dispersion) {
    disp_freq[d] += 1.0 / static_cast<double>(dispersion.size());
  }
  for (std::size_t k = 0; k < impact.counts.size(); ++k) {
    const double impact_freq = static_cast<double>(impact.counts[k]) /
                               static_cast<double>(impact.Total());
    EXPECT_NEAR(impact_freq, disp_freq[k], 0.02)
        << "seed " << seed << " spread " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SpreadEstimatorAgreement,
                         ::testing::Values(13, 26, 39, 52));

// ---------------------------------------------------------------------
// Property: serialization round-trips bit-exactly for random models.
class SerializationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializationFuzz, BetaModelsRoundTrip) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const auto nodes = static_cast<NodeId>(5 + rng.NextBounded(40));
  const auto max_edges =
      static_cast<EdgeId>(static_cast<std::uint64_t>(nodes) * (nodes - 1));
  const auto edges = static_cast<EdgeId>(1 + rng.NextBounded(
      std::min<std::uint64_t>(max_edges, 4ull * nodes)));
  auto g = Share(UniformRandomGraph(nodes, edges, rng));
  const BetaIcm original = BetaIcm::RandomSynthetic(g, rng, 0.1, 400.0,
                                                    0.1, 400.0);
  auto restored = DeserializeBetaIcm(SerializeBetaIcm(original));
  ASSERT_TRUE(restored.ok()) << restored.status();
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    ASSERT_EQ(restored->graph().edge(e), g->edge(e));
    ASSERT_DOUBLE_EQ(restored->alpha(e), original.alpha(e));
    ASSERT_DOUBLE_EQ(restored->beta(e), original.beta(e));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, SerializationFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------
// Property: joint-Bayes posterior means are consistent — they approach
// the generating probabilities as evidence grows, for random star models.
class JointBayesConsistency : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(JointBayesConsistency, PosteriorConcentrates) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t parents = 2 + rng.NextBounded(3);
  const DirectedGraph graph = StarFragment(parents);
  const auto sink = static_cast<NodeId>(parents);
  std::vector<double> truth(parents);
  for (double& t : truth) t = rng.Uniform(0.1, 0.9);
  UnattributedEvidence ev;
  for (int o = 0; o < 4000; ++o) {
    ObjectTrace trace;
    double survive = 1.0;
    double time = 1.0;
    for (NodeId p = 0; p < sink; ++p) {
      if (rng.Bernoulli(0.7)) {
        trace.activations.push_back({p, time++});
        survive *= 1.0 - truth[p];
      }
    }
    if (trace.activations.empty()) continue;
    if (rng.Bernoulli(1.0 - survive)) {
      trace.activations.push_back({sink, time});
    }
    ev.traces.push_back(std::move(trace));
  }
  const SinkSummary summary = BuildSinkSummary(graph, sink, ev);
  JointBayesOptions opt;
  opt.num_samples = 800;
  opt.burn_in = 400;
  auto fit = FitJointBayes(summary, opt, rng);
  ASSERT_TRUE(fit.ok());
  for (std::size_t j = 0; j < parents; ++j) {
    EXPECT_NEAR(fit->mean[j], truth[j], 0.06)
        << "seed " << seed << " parent " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStars, JointBayesConsistency,
                         ::testing::Values(9, 18, 27, 36, 45));

}  // namespace
}  // namespace infoflow
