/// Tests for the serve subsystem: SampleBank packing and generations, the
/// QueryEngine's estimators against the direct samplers and the exact
/// enumerator, the NDJSON protocol, and the daemon's fd serving loop.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>

#include "core/exact_flow.h"
#include "core/mh_sampler.h"
#include "core/multi_chain.h"
#include "graph/generators.h"
#include "seedmax/seed_selector.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/sample_bank.h"
#include "serve/server.h"
#include "util/json.h"

namespace infoflow::serve {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

PointIcm SmallRandomModel(std::uint64_t seed, NodeId nodes, EdgeId edges) {
  Rng rng(seed);
  auto g = Share(UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.Uniform(0.1, 0.9);
  return PointIcm(g, probs);
}

/// A conditioning constraint that is satisfiable by construction: requiring
/// flow along an existing edge (its activation alone implies the flow), so
/// a bank filtered by it keeps a healthy fraction of rows on any graph.
FlowConstraint EdgeConstraint(const PointIcm& model, EdgeId e = 0) {
  const Edge& edge = model.graph().edge(e);
  return {edge.src, edge.dst, true};
}

BankOptions FastBank(std::size_t states, std::size_t chains = 4) {
  BankOptions options;
  options.num_states = states;
  options.chain.num_chains = chains;
  options.chain.mh.burn_in = 1200;
  options.chain.mh.thinning = 4;
  return options;
}

QueryEngine MakeEngine(const SampleBank& bank,
                       QueryEngineOptions options = {}) {
  auto engine = QueryEngine::Create(bank.graph_ptr(), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).ValueOrDie();
}

QueryRequest FlowQuery(NodeId source, NodeId sink) {
  QueryRequest request;
  request.kind = QueryKind::kFlow;
  request.sources = {source};
  request.sinks = {sink};
  return request;
}

// ------------------------------------------------------------- SampleBank

TEST(SampleBank, RowsMatchDirectChainSamplesBitForBit) {
  // The bank must store exactly the retained states the chains produce:
  // row k·R+i of generation 1 is chain k's i-th retained sample, packed.
  const PointIcm model = SmallRandomModel(7, 10, 24);
  const BankOptions options = FastBank(64, /*chains=*/3);
  auto bank = SampleBank::Create(model, options, /*seed=*/42);
  ASSERT_TRUE(bank.ok()) << bank.status();
  const auto generation = bank->Acquire();
  ASSERT_EQ(generation->id(), 1u);
  const std::size_t per_chain = generation->rows_per_chain();

  for (std::size_t k = 0; k < generation->num_chains(); ++k) {
    auto direct = MhSampler::Create(
        model, {}, options.chain.mh,
        Rng(MultiChainSampler::DeriveChainSeed(42, k)));
    ASSERT_TRUE(direct.ok());
    for (std::size_t i = 0; i < per_chain; ++i) {
      const PseudoState& state = direct->NextSample();
      const PseudoState row = generation->UnpackRow(k * per_chain + i);
      ASSERT_EQ(state, row) << "chain " << k << " sample " << i;
    }
  }
}

TEST(SampleBank, RowCountAndLayout) {
  const PointIcm model = SmallRandomModel(3, 8, 20);
  // 100 states over 3 chains → ⌈100/3⌉ = 34 per chain, 102 rows.
  auto bank = SampleBank::Create(model, FastBank(100, 3), 5);
  ASSERT_TRUE(bank.ok());
  const auto generation = bank->Acquire();
  EXPECT_EQ(generation->num_rows(), 102u);
  EXPECT_EQ(generation->rows_per_chain(), 34u);
  EXPECT_EQ(bank->rows_per_generation(), 102u);
  EXPECT_EQ(generation->words_per_row(), PackedRowWords(20));
  EXPECT_EQ(generation->ChainOfRow(0), 0u);
  EXPECT_EQ(generation->ChainOfRow(34), 1u);
  EXPECT_EQ(generation->ChainOfRow(101), 2u);
}

TEST(SampleBank, RefreshPublishesNewGenerationWithoutInvalidatingReaders) {
  const PointIcm model = SmallRandomModel(11, 10, 24);
  auto bank = SampleBank::Create(model, FastBank(128), 9);
  ASSERT_TRUE(bank.ok());
  const auto before = bank->Acquire();
  ASSERT_EQ(before->id(), 1u);
  // Snapshot a row, refresh, and check the old generation is untouched
  // while the new one differs (the chains moved on).
  const PseudoState row0 = before->UnpackRow(0);
  bank->Refresh();
  const auto after = bank->Acquire();
  EXPECT_EQ(after->id(), 2u);
  EXPECT_EQ(before->id(), 1u);
  EXPECT_EQ(before->UnpackRow(0), row0);
  bool any_difference = false;
  for (std::size_t r = 0; r < before->num_rows() && !any_difference; ++r) {
    any_difference = before->UnpackRow(r) != after->UnpackRow(r);
  }
  EXPECT_TRUE(any_difference);
}

TEST(SampleBank, ValidatesOptions) {
  const PointIcm model = SmallRandomModel(1, 6, 12);
  BankOptions zero;
  zero.num_states = 0;
  EXPECT_FALSE(SampleBank::Create(model, zero, 1).ok());
}

// ------------------------------------------------------------ QueryEngine

TEST(QueryEngine, UnconditionalFlowMatchesMultiChainExactly) {
  // The bank reuses the *same* retained states a fresh engine with the same
  // seed would draw, so the estimates must agree bit-for-bit (indicator
  // sums of 0/1 are exact in floating point).
  const PointIcm model = SmallRandomModel(13, 10, 26);
  const BankOptions options = FastBank(2000);
  auto bank = SampleBank::Create(model, options, 77);
  ASSERT_TRUE(bank.ok());
  QueryEngine engine = MakeEngine(*bank);

  auto direct = MultiChainSampler::Create(model, {}, options.chain, 77);
  ASSERT_TRUE(direct.ok());
  const MultiChainEstimate expected =
      direct->EstimateFlowProbability(0, 9, options.num_states);

  const auto generation = bank->Acquire();
  const std::vector<QueryResult> results =
      engine.AnswerBatch(*generation, {FlowQuery(0, 9)});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status;
  ASSERT_EQ(results[0].estimates.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].estimates[0].value, expected.value);
  EXPECT_EQ(results[0].effective_rows, generation->num_rows());
  EXPECT_DOUBLE_EQ(results[0].estimates[0].diagnostics.mcse,
                   expected.diagnostics.mcse);
}

TEST(QueryEngine, CommunityAndJointMatchMultiChainExactly) {
  // 1600 states over 4 chains → 400 per chain: even, so the multi-chain
  // estimators' even-length split-chain truncation drops nothing and the
  // comparison is exact.
  const PointIcm model = SmallRandomModel(17, 12, 30);
  const BankOptions options = FastBank(1600);
  auto bank = SampleBank::Create(model, options, 31);
  ASSERT_TRUE(bank.ok());
  QueryEngine engine = MakeEngine(*bank);
  const auto generation = bank->Acquire();

  QueryRequest community;
  community.kind = QueryKind::kCommunity;
  community.sources = {0, 1};
  community.sinks = {5, 8, 11};
  QueryRequest joint;
  joint.kind = QueryKind::kJoint;
  joint.flows = {{0, 5, true}, {1, 8, true}};
  const std::vector<QueryResult> results =
      engine.AnswerBatch(*generation, {community, joint});
  ASSERT_TRUE(results[0].status.ok());
  ASSERT_TRUE(results[1].status.ok());

  auto direct1 = MultiChainSampler::Create(model, {}, options.chain, 31);
  ASSERT_TRUE(direct1.ok());
  const std::vector<MultiChainEstimate> expected =
      direct1->EstimateCommunityFlowMulti({0, 1}, {5, 8, 11},
                                          options.num_states);
  ASSERT_EQ(results[0].estimates.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(results[0].estimates[j].value, expected[j].value);
  }

  auto direct2 = MultiChainSampler::Create(model, {}, options.chain, 31);
  ASSERT_TRUE(direct2.ok());
  const MultiChainEstimate joint_expected =
      direct2->EstimateJointFlowProbability(joint.flows, options.num_states);
  ASSERT_EQ(results[1].estimates.size(), 1u);
  EXPECT_DOUBLE_EQ(results[1].estimates[0].value, joint_expected.value);
}

TEST(QueryEngine, FrontierDedupSharesOneScanAndPreservesAnswers) {
  const PointIcm model = SmallRandomModel(19, 10, 24);
  auto bank = SampleBank::Create(model, FastBank(600), 12);
  ASSERT_TRUE(bank.ok());
  QueryEngine engine = MakeEngine(*bank);
  const auto generation = bank->Acquire();

  // Same frontier {2}, different sinks → merged; distinct frontier → not.
  std::vector<QueryRequest> batch = {FlowQuery(2, 7), FlowQuery(2, 9),
                                     FlowQuery(3, 7)};
  const std::vector<QueryResult> merged =
      engine.AnswerBatch(*generation, batch);
  EXPECT_TRUE(merged[0].frontier_shared);
  EXPECT_TRUE(merged[1].frontier_shared);
  EXPECT_FALSE(merged[2].frontier_shared);

  // Answers are identical to the queries run alone.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::vector<QueryResult> alone =
        engine.AnswerBatch(*generation, {batch[i]});
    EXPECT_DOUBLE_EQ(merged[i].estimates[0].value,
                     alone[0].estimates[0].value);
  }
}

TEST(QueryEngine, ConditionalReportsEffectiveRows) {
  const PointIcm model = SmallRandomModel(23, 8, 16);
  QueryEngineOptions engine_options;
  engine_options.min_conditional_rows = 8;
  auto bank = SampleBank::Create(model, FastBank(1000), 3);
  ASSERT_TRUE(bank.ok());
  QueryEngine engine = MakeEngine(*bank, engine_options);
  const auto generation = bank->Acquire();

  QueryRequest request = FlowQuery(0, 5);
  request.given = {EdgeConstraint(model)};
  const std::vector<QueryResult> results =
      engine.AnswerBatch(*generation, {request});
  ASSERT_TRUE(results[0].status.ok()) << results[0].status;
  EXPECT_GT(results[0].effective_rows, 0u);
  EXPECT_LT(results[0].effective_rows, results[0].total_rows);
  // The filtered mean is a probability.
  EXPECT_GE(results[0].estimates[0].value, 0.0);
  EXPECT_LE(results[0].estimates[0].value, 1.0);
}

TEST(QueryEngine, ConditionalFloorFailsWithDescriptiveStatus) {
  const PointIcm model = SmallRandomModel(29, 8, 16);
  QueryEngineOptions engine_options;
  engine_options.min_conditional_rows = 1 << 20;  // unreachable floor
  auto bank = SampleBank::Create(model, FastBank(400), 4);
  ASSERT_TRUE(bank.ok());
  QueryEngine engine = MakeEngine(*bank, engine_options);

  QueryRequest request = FlowQuery(0, 5);
  request.id = "cond-query";
  request.given = {{1, 4, true}};
  const std::vector<QueryResult> results =
      engine.AnswerBatch(*bank->Acquire(), {request});
  EXPECT_EQ(results[0].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(results[0].status.message().find("cond-query"),
            std::string::npos);
  EXPECT_NE(results[0].status.message().find("floor"), std::string::npos);
}

TEST(QueryEngine, RejectsInvalidRequestsIndividually) {
  const PointIcm model = SmallRandomModel(31, 8, 16);
  auto bank = SampleBank::Create(model, FastBank(200), 6);
  ASSERT_TRUE(bank.ok());
  QueryEngine engine = MakeEngine(*bank);
  const auto generation = bank->Acquire();

  QueryRequest contradictory = FlowQuery(0, 5);
  contradictory.given = {{1, 4, true}, {1, 4, false}};
  QueryRequest out_of_range = FlowQuery(0, 999);
  QueryRequest empty_joint;
  empty_joint.kind = QueryKind::kJoint;
  QueryRequest good = FlowQuery(0, 5);

  const std::vector<QueryResult> results = engine.AnswerBatch(
      *generation, {contradictory, out_of_range, empty_joint, good});
  EXPECT_EQ(results[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(results[0].status.message().find("contradict"),
            std::string::npos);
  EXPECT_EQ(results[1].status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(results[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[3].status.ok());
}

TEST(QueryEngine, DeadlineExceededOnImpossibleTimeout) {
  const PointIcm model = SmallRandomModel(37, 10, 24);
  auto bank = SampleBank::Create(model, FastBank(2000), 21);
  ASSERT_TRUE(bank.ok());
  QueryEngine engine = MakeEngine(*bank);

  QueryRequest request = FlowQuery(0, 5);
  request.timeout_ms = 1e-7;  // expires before the first row chunk
  const std::vector<QueryResult> results =
      engine.AnswerBatch(*bank->Acquire(), {request});
  EXPECT_EQ(results[0].status.code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryEngine, BatchAndScalarReachabilityAgreeBitForBit) {
  // The bit-parallel path must be an exact drop-in: same indicator sets,
  // same doubles, same effective-row counts — across every query kind,
  // including conditionals, on a bank whose row count is not a multiple of
  // 64 (225 per chain × 4 chains = 900 rows; 900 mod 64 = 4, so the final
  // block is ragged).
  const PointIcm model = SmallRandomModel(41, 12, 30);
  auto bank = SampleBank::Create(model, FastBank(900), 55);
  ASSERT_TRUE(bank.ok());
  const auto generation = bank->Acquire();
  ASSERT_NE(generation->num_rows() % 64, 0u);

  QueryEngineOptions scalar_options;
  scalar_options.use_batch_reachability = false;
  scalar_options.min_conditional_rows = 4;
  QueryEngineOptions batch_options;
  batch_options.min_conditional_rows = 4;
  QueryEngine batch = MakeEngine(*bank, batch_options);
  QueryEngine scalar = MakeEngine(*bank, scalar_options);

  QueryRequest community;
  community.kind = QueryKind::kCommunity;
  community.sources = {0, 3};
  community.sinks = {5, 8, 11};
  QueryRequest joint;
  joint.kind = QueryKind::kJoint;
  joint.flows = {{0, 5, true}, {1, 8, false}};
  QueryRequest conditional = FlowQuery(0, 9);
  conditional.given = {EdgeConstraint(model)};
  QueryRequest forbid_conditional = FlowQuery(2, 7);
  forbid_conditional.given = {EdgeConstraint(model), {0, 11, false}};
  QueryRequest conditional_joint;
  conditional_joint.kind = QueryKind::kJoint;
  conditional_joint.flows = {{2, 9, true}};
  conditional_joint.given = {EdgeConstraint(model)};
  const std::vector<QueryRequest> requests = {
      FlowQuery(0, 9),  community,          joint,
      conditional,      forbid_conditional, conditional_joint};

  const std::vector<QueryResult> via_batch =
      batch.AnswerBatch(*generation, requests);
  const std::vector<QueryResult> via_scalar =
      scalar.AnswerBatch(*generation, requests);
  ASSERT_EQ(via_batch.size(), via_scalar.size());
  for (std::size_t i = 0; i < via_batch.size(); ++i) {
    ASSERT_EQ(via_batch[i].status.code(), via_scalar[i].status.code())
        << "request " << i;
    if (!via_batch[i].status.ok()) continue;
    EXPECT_EQ(via_batch[i].effective_rows, via_scalar[i].effective_rows)
        << "request " << i;
    ASSERT_EQ(via_batch[i].estimates.size(), via_scalar[i].estimates.size());
    for (std::size_t j = 0; j < via_batch[i].estimates.size(); ++j) {
      EXPECT_DOUBLE_EQ(via_batch[i].estimates[j].value,
                       via_scalar[i].estimates[j].value)
          << "request " << i << " sink " << j;
      EXPECT_DOUBLE_EQ(via_batch[i].estimates[j].diagnostics.mcse,
                       via_scalar[i].estimates[j].diagnostics.mcse)
          << "request " << i << " sink " << j;
    }
  }
}

TEST(QueryEngine, LaneWidthsAgreeBitForBitIncludingConditionals) {
  // Widening the replay past 64 lanes must be invisible in the answers:
  // engines pinned to 64, 256, and 512 lanes (and auto, which picks 512
  // here) return the scalar engine's doubles exactly, across every query
  // kind. 150 per chain × 4 chains = 600 rows: ≥512 so auto steps up to
  // 8-word strips, 600 mod 64 = 24 so the tail block is ragged, and the
  // second strip carries dead blocks past the bank (10 blocks over strips
  // of 8).
  const PointIcm model = SmallRandomModel(61, 12, 30);
  auto bank = SampleBank::Create(model, FastBank(600), 77);
  ASSERT_TRUE(bank.ok());
  const auto generation = bank->Acquire();
  ASSERT_GE(generation->num_rows(), 512u);
  ASSERT_NE(generation->num_rows() % 64, 0u);

  QueryRequest community;
  community.kind = QueryKind::kCommunity;
  community.sources = {0, 3};
  community.sinks = {5, 8, 11};
  QueryRequest joint;
  joint.kind = QueryKind::kJoint;
  joint.flows = {{0, 5, true}, {1, 8, false}};
  QueryRequest conditional = FlowQuery(0, 9);
  conditional.given = {EdgeConstraint(model)};
  QueryRequest forbid_conditional = FlowQuery(2, 7);
  forbid_conditional.given = {EdgeConstraint(model), {0, 11, false}};
  const std::vector<QueryRequest> requests = {FlowQuery(0, 9), community,
                                              joint, conditional,
                                              forbid_conditional};

  QueryEngineOptions scalar_options;
  scalar_options.use_batch_reachability = false;
  scalar_options.min_conditional_rows = 4;
  QueryEngine scalar = MakeEngine(*bank, scalar_options);
  const std::vector<QueryResult> reference =
      scalar.AnswerBatch(*generation, requests);

  for (const LaneWidth lanes :
       {LaneWidth::k64, LaneWidth::k256, LaneWidth::k512, LaneWidth::kAuto}) {
    QueryEngineOptions options;
    options.min_conditional_rows = 4;
    options.lanes = lanes;
    QueryEngine engine = MakeEngine(*bank, options);
    const std::vector<QueryResult> results =
        engine.AnswerBatch(*generation, requests);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(results[i].status.code(), reference[i].status.code())
          << LaneWidthName(lanes) << " request " << i;
      if (!results[i].status.ok()) continue;
      EXPECT_EQ(results[i].effective_rows, reference[i].effective_rows)
          << LaneWidthName(lanes) << " request " << i;
      ASSERT_EQ(results[i].estimates.size(), reference[i].estimates.size());
      for (std::size_t j = 0; j < results[i].estimates.size(); ++j) {
        EXPECT_DOUBLE_EQ(results[i].estimates[j].value,
                         reference[i].estimates[j].value)
            << LaneWidthName(lanes) << " request " << i << " sink " << j;
        EXPECT_DOUBLE_EQ(results[i].estimates[j].diagnostics.mcse,
                         reference[i].estimates[j].diagnostics.mcse)
            << LaneWidthName(lanes) << " request " << i << " sink " << j;
      }
    }
  }
}

TEST(QueryEngine, DuplicateSourcesDedupedBeforeFanOut) {
  const PointIcm model = SmallRandomModel(43, 10, 24);
  auto bank = SampleBank::Create(model, FastBank(600), 14);
  ASSERT_TRUE(bank.ok());
  QueryEngine engine = MakeEngine(*bank);
  const auto generation = bank->Acquire();

  // {2, 2, 2} canonicalizes to {2}: the two queries share one frontier
  // scan and agree with the deduplicated query run alone.
  QueryRequest noisy = FlowQuery(2, 7);
  noisy.sources = {2, 2, 2};
  const std::vector<QueryResult> results =
      engine.AnswerBatch(*generation, {noisy, FlowQuery(2, 7)});
  EXPECT_TRUE(results[0].frontier_shared);
  EXPECT_TRUE(results[1].frontier_shared);
  ASSERT_TRUE(results[0].status.ok());
  EXPECT_DOUBLE_EQ(results[0].estimates[0].value,
                   results[1].estimates[0].value);
}

TEST(QueryEngine, OutOfRangeSourceFailsWithDescriptiveStatus) {
  // An out-of-range endpoint must surface as a per-query Status the caller
  // can read, never reach the BFS workspaces' IF_CHECK aborts.
  const PointIcm model = SmallRandomModel(47, 8, 16);
  auto bank = SampleBank::Create(model, FastBank(200), 8);
  ASSERT_TRUE(bank.ok());
  QueryEngine engine = MakeEngine(*bank);

  QueryRequest bad_source = FlowQuery(0, 5);
  bad_source.sources = {0, 888};
  const std::vector<QueryResult> results =
      engine.AnswerBatch(*bank->Acquire(), {bad_source});
  EXPECT_EQ(results[0].status.code(), StatusCode::kOutOfRange);
  EXPECT_NE(results[0].status.message().find("888"), std::string::npos);
  EXPECT_NE(results[0].status.message().find("source"), std::string::npos);
}

TEST(SampleBank, EdgeMajorPlaneMatchesRowsIncludingRaggedTail) {
  // The transposed plane must agree bit-for-bit with the packed rows:
  // bit s of BlockEdgeWords(b)[e] is EdgeActive(b·64+s, e), and lanes past
  // the final ragged row stay zero. 34 per chain × 3 chains = 102 rows →
  // blocks of 64 and 38.
  const PointIcm model = SmallRandomModel(53, 10, 24);
  auto bank = SampleBank::Create(model, FastBank(100, 3), 16);
  ASSERT_TRUE(bank.ok());
  const auto generation = bank->Acquire();
  ASSERT_EQ(generation->num_rows(), 102u);
  ASSERT_EQ(generation->num_blocks(), 2u);
  EXPECT_EQ(generation->BlockLaneMask(0), ~std::uint64_t{0});
  EXPECT_EQ(generation->BlockLaneMask(1),
            (std::uint64_t{1} << (102 - 64)) - 1);
  for (std::size_t b = 0; b < generation->num_blocks(); ++b) {
    const std::uint64_t* words = generation->BlockEdgeWords(b);
    const std::uint64_t lanes = generation->BlockLaneMask(b);
    for (EdgeId e = 0; e < generation->num_edges(); ++e) {
      ASSERT_EQ(words[e] & ~lanes, 0u) << "block " << b << " edge " << e;
      for (std::size_t s = 0; s < 64; ++s) {
        const std::size_t row = b * 64 + s;
        if (row >= generation->num_rows()) break;
        ASSERT_EQ((words[e] >> s) & 1,
                  generation->EdgeActive(row, e) ? 1u : 0u)
            << "block " << b << " lane " << s << " edge " << e;
      }
    }
  }
}

TEST(SampleBank, RefreshAndRebuildUnderConcurrentEdgeMajorReaders) {
  // Generations are immutable after publish: readers holding a generation
  // scan its edge-major plane while the bank refreshes and rebuilds
  // underneath them. Run under TSan (the CI tsan job matches "Bank") this
  // proves the plane needs no locking beyond the publish pointer swap.
  const PointIcm model = SmallRandomModel(59, 10, 24);
  auto bank = SampleBank::Create(model, FastBank(150, 3), 18);
  ASSERT_TRUE(bank.ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto generation = bank->Acquire();
        for (std::size_t b = 0; b < generation->num_blocks(); ++b) {
          const std::uint64_t* words = generation->BlockEdgeWords(b);
          const std::uint64_t lanes = generation->BlockLaneMask(b);
          for (EdgeId e = 0; e < generation->num_edges(); ++e) {
            // The plane always agrees with the rows of *this* generation.
            for (std::size_t s = 0; s < 64; ++s) {
              const std::size_t row = b * 64 + s;
              if (row >= generation->num_rows()) break;
              const bool bit = ((words[e] >> s) & 1) != 0;
              if (bit != generation->EdgeActive(row, e)) {
                failures.fetch_add(1, std::memory_order_relaxed);
              }
            }
            if ((words[e] & ~lanes) != 0) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (std::uint64_t i = 0; i < 3; ++i) {
    bank->Refresh();
    ASSERT_TRUE(bank->Rebuild(model, /*model_epoch=*/2 + i).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(bank->Acquire()->id(), 7u);
}

TEST(SampleBank, StripPlaneAcquireUnderConcurrentRefreshMatchesBlocks) {
  // AcquireStripPlane lazily interleaves and publishes per (generation,
  // width) with a keep-one-winner swap. Readers racing on first acquisition
  // while the bank refreshes and rebuilds underneath must always see a
  // plane that matches their own generation's edge-major blocks word for
  // word, with zero words and lane masks past the bank's last block. Run
  // under TSan (the CI tsan job matches "Bank") this proves the lazy build
  // publishes safely.
  const PointIcm model = SmallRandomModel(67, 10, 24);
  auto bank = SampleBank::Create(model, FastBank(150, 3), 23);
  ASSERT_TRUE(bank.ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      const unsigned width = t % 2 == 0 ? 4 : 8;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto generation = bank->Acquire();
        const auto plane = generation->AcquireStripPlane(width);
        if (plane->width != width ||
            plane->num_blocks != generation->num_blocks()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (std::size_t s = 0; s < plane->num_strips; ++s) {
          const std::uint64_t* words = plane->StripWords(s);
          const std::uint64_t* lanes = plane->StripLaneMask(s);
          for (unsigned w = 0; w < width; ++w) {
            const std::size_t b = s * width + w;
            if (b >= generation->num_blocks()) {
              if (lanes[w] != 0) {
                failures.fetch_add(1, std::memory_order_relaxed);
              }
              continue;
            }
            if (lanes[w] != generation->BlockLaneMask(b)) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
            const std::uint64_t* block = generation->BlockEdgeWords(b);
            for (EdgeId e = 0; e < generation->num_edges(); ++e) {
              if (words[e * width + w] != block[e]) {
                failures.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
        }
      }
    });
  }
  for (std::uint64_t i = 0; i < 3; ++i) {
    bank->Refresh();
    ASSERT_TRUE(bank->Rebuild(model, /*model_epoch=*/2 + i).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0u);
}

// -------------------------------------------- estimator agreement properties

TEST(ServeProperty, BankAgreesWithIndependentSamplerWithinThreeMcse) {
  // Acceptance property: bank estimates and a direct sampler run with a
  // *different* seed agree within 3× their combined MCSE — on several
  // random graphs, unconditional and conditional.
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    const PointIcm model =
        SmallRandomModel(seed, 12, 30);
    const BankOptions options = FastBank(4000);
    auto bank = SampleBank::Create(model, options, seed);
    ASSERT_TRUE(bank.ok());
    QueryEngine engine = MakeEngine(*bank);
    const auto generation = bank->Acquire();

    // Unconditional.
    QueryRequest query = FlowQuery(0, 11);
    auto direct = MultiChainSampler::Create(model, {}, options.chain,
                                            seed + 5000);
    ASSERT_TRUE(direct.ok());
    const MultiChainEstimate expected =
        direct->EstimateFlowProbability(0, 11, options.num_states);
    const std::vector<QueryResult> results =
        engine.AnswerBatch(*generation, {query});
    ASSERT_TRUE(results[0].status.ok());
    const SinkEstimate& est = results[0].estimates[0];
    const double tolerance =
        3.0 * std::sqrt(est.diagnostics.mcse * est.diagnostics.mcse +
                        expected.diagnostics.mcse *
                            expected.diagnostics.mcse) +
        1e-9;
    EXPECT_NEAR(est.value, expected.value, tolerance)
        << "seed " << seed << ": bank mcse " << est.diagnostics.mcse
        << ", direct mcse " << expected.diagnostics.mcse;

    // Conditional: filter-based bank estimate vs a sampler constrained to
    // the conditioning set (both estimate Eq. 8's numerator/denominator
    // ratio, by different routes).
    QueryRequest conditional = FlowQuery(0, 11);
    conditional.given = {EdgeConstraint(model)};
    auto constrained = MultiChainSampler::Create(
        model, conditional.given, options.chain, seed + 9000);
    ASSERT_TRUE(constrained.ok());
    const MultiChainEstimate cond_expected =
        constrained->EstimateFlowProbability(0, 11, options.num_states);
    const std::vector<QueryResult> cond_results =
        engine.AnswerBatch(*generation, {conditional});
    ASSERT_TRUE(cond_results[0].status.ok()) << cond_results[0].status;
    const SinkEstimate& cond_est = cond_results[0].estimates[0];
    const double cond_tolerance =
        3.0 * std::sqrt(
                  cond_est.diagnostics.mcse * cond_est.diagnostics.mcse +
                  cond_expected.diagnostics.mcse *
                      cond_expected.diagnostics.mcse) +
        1e-9;
    EXPECT_NEAR(cond_est.value, cond_expected.value, cond_tolerance)
        << "seed " << seed << ": effective rows "
        << cond_results[0].effective_rows;
  }
}

TEST(ServeProperty, BankMatchesExactEnumerationOnTinyGraphs) {
  // Ground truth: on graphs small enough for 2^m enumeration, bank
  // estimates must land within 3×MCSE of the exact probabilities —
  // unconditional and conditional.
  for (const std::uint64_t seed : {7u, 77u}) {
    const PointIcm model = SmallRandomModel(seed, 7, 12);
    const BankOptions options = FastBank(6000);
    auto bank = SampleBank::Create(model, options, seed * 13);
    ASSERT_TRUE(bank.ok());
    QueryEngine engine = MakeEngine(*bank);
    const auto generation = bank->Acquire();

    QueryRequest unconditional = FlowQuery(0, 6);
    QueryRequest conditional = FlowQuery(0, 6);
    conditional.given = {EdgeConstraint(model)};
    const std::vector<QueryResult> results =
        engine.AnswerBatch(*generation, {unconditional, conditional});

    ASSERT_TRUE(results[0].status.ok());
    const double exact = ExactFlowByEnumeration(model, 0, 6);
    const SinkEstimate& est = results[0].estimates[0];
    EXPECT_NEAR(est.value, exact,
                std::max(3.0 * est.diagnostics.mcse, 1e-3))
        << "seed " << seed;

    ASSERT_TRUE(results[1].status.ok()) << results[1].status;
    auto cond_exact = ExactConditionalFlowByEnumeration(
        model, 0, 6, conditional.given);
    ASSERT_TRUE(cond_exact.ok());
    const SinkEstimate& cond_est = results[1].estimates[0];
    EXPECT_NEAR(cond_est.value, *cond_exact,
                std::max(3.0 * cond_est.diagnostics.mcse, 1e-3))
        << "seed " << seed << ": effective rows "
        << results[1].effective_rows;
  }
}

// --------------------------------------------------------------- protocol

TEST(Protocol, ParsesSingularAndPluralForms) {
  auto flow = ParseRequestLine(R"({"id":"a","source":1,"sink":4})");
  ASSERT_TRUE(flow.ok()) << flow.status();
  EXPECT_EQ(flow->kind, QueryKind::kFlow);
  EXPECT_EQ(flow->sources, std::vector<NodeId>({1}));
  EXPECT_EQ(flow->sinks, std::vector<NodeId>({4}));

  auto community =
      ParseRequestLine(R"({"sources":[0,2],"sinks":[3,4,5],"timeout_ms":9})");
  ASSERT_TRUE(community.ok());
  EXPECT_EQ(community->kind, QueryKind::kCommunity);
  EXPECT_EQ(community->sources, std::vector<NodeId>({0, 2}));
  EXPECT_EQ(community->sinks, std::vector<NodeId>({3, 4, 5}));
  EXPECT_DOUBLE_EQ(community->timeout_ms, 9.0);

  auto joint = ParseRequestLine(R"({"kind":"joint","flows":"0>3 2!>4"})");
  ASSERT_TRUE(joint.ok());
  EXPECT_EQ(joint->kind, QueryKind::kJoint);
  ASSERT_EQ(joint->flows.size(), 2u);
  EXPECT_TRUE(joint->flows[0].must_flow);
  EXPECT_FALSE(joint->flows[1].must_flow);

  auto given = ParseRequestLine(R"({"source":0,"sink":3,"given":"1>2"})");
  ASSERT_TRUE(given.ok());
  ASSERT_EQ(given->given.size(), 1u);
  EXPECT_EQ(given->given[0].source, 1u);
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequestLine("[1,2,3]").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"source":-1,"sink":3})").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"source":0.5,"sink":3})").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"source":0,"sink":3,"given":"x>y"})").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"kind":"sideways","source":0,"sink":3})").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"kind":"joint","flows":"0>3","sink":2})").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"source":0,"sink":3,"flows":"1>2"})").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"source":0,"sink":3,"timeout_ms":-1})").ok());
}

TEST(Protocol, SerializesResultsAndErrors) {
  QueryRequest request = FlowQuery(0, 3);
  request.id = "q9";
  QueryResult result;
  result.generation = 4;
  result.total_rows = 100;
  result.effective_rows = 60;
  SinkEstimate est;
  est.sink = 3;
  est.value = 0.25;
  est.diagnostics.mcse = 0.01;
  est.diagnostics.ess = 400.0;
  est.diagnostics.rhat = 1.001;
  result.estimates.push_back(est);
  const std::string line = SerializeResult(request, result);
  auto parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("id")->AsString(), "q9");
  EXPECT_TRUE(parsed->Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(parsed->Find("effective_rows")->AsNumber(), 60.0);
  const JsonValue& entry = parsed->Find("estimates")->AsArray().at(0);
  EXPECT_DOUBLE_EQ(entry.Find("value")->AsNumber(), 0.25);
  EXPECT_DOUBLE_EQ(entry.Find("mcse")->AsNumber(), 0.01);

  QueryResult failed;
  failed.status = Status::FailedPrecondition("too few rows");
  const std::string error_line = SerializeResult(request, failed);
  auto error = ParseJson(error_line);
  ASSERT_TRUE(error.ok());
  EXPECT_FALSE(error->Find("ok")->AsBool());
  EXPECT_EQ(error->Find("error")->Find("code")->AsString(),
            "failed-precondition");

  auto parse_error = ParseJson(SerializeParseError(
      Status::ParseError("bad line")));
  ASSERT_TRUE(parse_error.ok());
  EXPECT_TRUE(parse_error->Find("id")->is_null());
}

TEST(Protocol, TopkRequestsParseWithAllFields) {
  auto json = ParseJson(
      R"({"id":"m1","topk":3,"candidates":[0,1,2],"community":[5,6],)"
      R"("given":"0>1","query_id":9})");
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(IsTopkRequest(*json));
  auto query = ParseJson(R"({"id":"q","source":0,"sink":1})");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(IsTopkRequest(*query));

  auto request = ParseTopkRequest(*json);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->id, "m1");
  EXPECT_EQ(request->k, 3u);
  EXPECT_EQ(request->candidates, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(request->community, (std::vector<NodeId>{5, 6}));
  ASSERT_EQ(request->given.size(), 1u);
  EXPECT_TRUE(request->query_id_provided);
  EXPECT_EQ(request->query_id, 9u);

  for (const char* bad :
       {R"({"topk":0})", R"({"topk":-2})", R"({"topk":1.5})",
        R"({"topk":"three"})", R"({"topk":2,"candidates":[-1]})",
        R"({"topk":2,"community":0})", R"({"topk":2,"given":"x>y"})"}) {
    auto line = ParseJson(bad);
    ASSERT_TRUE(line.ok());
    EXPECT_TRUE(IsTopkRequest(*line)) << bad;
    EXPECT_FALSE(ParseTopkRequest(*line).ok()) << bad;
  }
}

TEST(Protocol, TopkSerializersEchoIdAndProvenance) {
  TopkRequest request;
  request.id = "m1";
  request.query_id = 9;
  request.query_id_provided = true;
  seedmax::SeedMaxResult result;
  result.picks = {{4, 120, 3.5, 0.10}, {2, 60, 5.0, 0.12}};
  result.spread = 5.0;
  result.mcse = 0.12;
  result.evaluations = 7;
  result.prune_hits = 1;
  result.generation = 2;
  result.model_epoch = 1;
  result.num_sketches = 640;
  result.universe = 10;
  result.total_rows = 64;
  result.effective_rows = 64;

  auto line = ParseJson(SerializeTopkResult(request, result));
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->Find("id")->AsString(), "m1");
  EXPECT_TRUE(line->Find("ok")->AsBool());
  EXPECT_EQ(line->Find("kind")->AsString(), "topk");
  EXPECT_DOUBLE_EQ(line->Find("query_id")->AsNumber(), 9.0);
  EXPECT_DOUBLE_EQ(line->Find("generation")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(line->Find("sketches")->AsNumber(), 640.0);
  EXPECT_DOUBLE_EQ(line->Find("universe")->AsNumber(), 10.0);
  EXPECT_DOUBLE_EQ(line->Find("prune_hits")->AsNumber(), 1.0);
  const auto& seeds = line->Find("seeds")->AsArray();
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_DOUBLE_EQ(seeds[0].Find("node")->AsNumber(), 4.0);
  EXPECT_DOUBLE_EQ(seeds[0].Find("marginal_coverage")->AsNumber(), 120.0);
  EXPECT_DOUBLE_EQ(seeds[1].Find("spread")->AsNumber(), 5.0);
  EXPECT_DOUBLE_EQ(line->Find("spread")->AsNumber(), 5.0);

  // A mint-stamped (not client-provided) id is never echoed.
  request.query_id_provided = false;
  auto unstamped = ParseJson(SerializeTopkResult(request, result));
  ASSERT_TRUE(unstamped.ok());
  EXPECT_EQ(unstamped->Find("query_id"), nullptr);

  request.query_id_provided = true;
  auto error = ParseJson(SerializeTopkError(
      request, Status::FailedPrecondition("below the conditional floor")));
  ASSERT_TRUE(error.ok());
  EXPECT_FALSE(error->Find("ok")->AsBool());
  EXPECT_EQ(error->Find("error")->Find("code")->AsString(),
            "failed-precondition");
  EXPECT_DOUBLE_EQ(error->Find("query_id")->AsNumber(), 9.0);
}

// ----------------------------------------------------------------- server

/// Runs one ServeFd conversation over pipes: writes `input`, closes, and
/// returns everything the server wrote back.
std::string RoundTrip(Server& server, const std::string& input) {
  int in_pipe[2];
  int out_pipe[2];
  EXPECT_EQ(pipe(in_pipe), 0);
  EXPECT_EQ(pipe(out_pipe), 0);
  EXPECT_EQ(write(in_pipe[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  close(in_pipe[1]);
  const Status status = server.ServeFd(in_pipe[0], out_pipe[1]);
  EXPECT_TRUE(status.ok()) << status;
  close(in_pipe[0]);
  close(out_pipe[1]);
  std::string output;
  char chunk[4096];
  ssize_t got;
  while ((got = read(out_pipe[0], chunk, sizeof(chunk))) > 0) {
    output.append(chunk, static_cast<std::size_t>(got));
  }
  close(out_pipe[0]);
  return output;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

Server MakeServer(const PointIcm& model, ServerOptions options = {}) {
  auto bank = SampleBank::Create(model, FastBank(300), 14);
  EXPECT_TRUE(bank.ok());
  auto server = Server::Create(std::move(bank).ValueOrDie(), options);
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(server).ValueOrDie();
}

TEST(Server, ServesBatchesInOrderWithPerLineErrors) {
  const PointIcm model = SmallRandomModel(41, 10, 24);
  Server server = MakeServer(model);
  const std::string output = RoundTrip(
      server,
      "{\"id\":\"a\",\"source\":0,\"sink\":5}\n"
      "this is not json\n"
      "{\"id\":\"b\",\"sources\":[0,1],\"sinks\":[5,7]}\n");
  const std::vector<std::string> lines = SplitLines(output);
  ASSERT_EQ(lines.size(), 3u);

  auto first = ParseJson(lines[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->Find("id")->AsString(), "a");
  EXPECT_TRUE(first->Find("ok")->AsBool());
  EXPECT_EQ(first->Find("generation")->AsNumber(), 1.0);

  auto second = ParseJson(lines[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->Find("ok")->AsBool());
  EXPECT_TRUE(second->Find("id")->is_null());

  auto third = ParseJson(lines[2]);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->Find("id")->AsString(), "b");
  EXPECT_EQ(third->Find("estimates")->AsArray().size(), 2u);
}

TEST(Server, AnswersOverUnixSocket) {
  const PointIcm model = SmallRandomModel(43, 10, 24);
  ServerOptions options;
  options.socket_path = testing::TempDir() + "/infoflow_serve_test.sock";
  Server server = MakeServer(model, options);
  ASSERT_TRUE(server.Start().ok());

  const int client = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(connect(client, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)),
            0);
  const std::string request = "{\"id\":\"s1\",\"source\":0,\"sink\":5}\n";
  ASSERT_EQ(write(client, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  shutdown(client, SHUT_WR);
  std::string output;
  char chunk[4096];
  ssize_t got;
  while ((got = read(client, chunk, sizeof(chunk))) > 0) {
    output.append(chunk, static_cast<std::size_t>(got));
  }
  close(client);
  server.Stop();

  auto response = ParseJson(SplitLines(output).at(0));
  ASSERT_TRUE(response.ok()) << output;
  EXPECT_EQ(response->Find("id")->AsString(), "s1");
  EXPECT_TRUE(response->Find("ok")->AsBool());
}

TEST(Server, ValidatesOptions) {
  ServerOptions bad;
  bad.max_batch = 0;
  EXPECT_FALSE(bad.Validate().ok());
  ServerOptions negative;
  negative.refresh_interval_ms = -1.0;
  EXPECT_FALSE(negative.Validate().ok());
  EXPECT_TRUE(ServerOptions{}.Validate().ok());
}

TEST(Server, ValidatesObservabilityOptions) {
  ServerOptions stats_without_path;
  stats_without_path.stats_interval_ms = 100.0;
  EXPECT_FALSE(stats_without_path.Validate().ok());
  stats_without_path.stats_path = "/tmp/stats.json";
  EXPECT_TRUE(stats_without_path.Validate().ok());

  ServerOptions negative_stats;
  negative_stats.stats_interval_ms = -1.0;
  EXPECT_FALSE(negative_stats.Validate().ok());

  ServerOptions slow_without_path;
  slow_without_path.slow_query_ms = 5.0;
  EXPECT_FALSE(slow_without_path.Validate().ok());
  slow_without_path.slow_query_path = "/tmp/slow.ndjson";
  EXPECT_TRUE(slow_without_path.Validate().ok());

  ServerOptions negative_slow;
  negative_slow.slow_query_ms = -1.0;
  EXPECT_FALSE(negative_slow.Validate().ok());
}

TEST(Server, AdminStatsVerbAnswersInlineWithPrometheusText) {
  const PointIcm model = SmallRandomModel(47, 10, 24);
  // One line per batch: the admin verb must observe the query before it.
  ServerOptions options;
  options.max_batch = 1;
  Server server = MakeServer(model, options);
  const std::string output = RoundTrip(
      server,
      "{\"id\":\"q1\",\"source\":0,\"sink\":5}\n"
      "{\"id\":\"st\",\"stats\":true}\n");
  const std::vector<std::string> lines = SplitLines(output);
  ASSERT_EQ(lines.size(), 2u);

  auto stats = ParseJson(lines[1]);
  ASSERT_TRUE(stats.ok()) << lines[1];
  EXPECT_EQ(stats->Find("id")->AsString(), "st");
  EXPECT_TRUE(stats->Find("ok")->AsBool());
  const JsonValue* snapshot = stats->Find("stats");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_NE(snapshot->Find("counters"), nullptr);
  EXPECT_NE(snapshot->Find("gauges"), nullptr);
  EXPECT_NE(snapshot->Find("histograms"), nullptr);

  const JsonValue* prometheus = stats->Find("prometheus");
  ASSERT_NE(prometheus, nullptr);
  const std::string exposition = prometheus->AsString();
  if (obs::MetricsEnabled()) {
    // The query answered above must already be visible in the scrape,
    // including the per-kind latency quantile gauges.
    EXPECT_NE(exposition.find("# TYPE"), std::string::npos);
    EXPECT_NE(exposition.find("serve_query_latency_ms_flow_p50"),
              std::string::npos);
    EXPECT_NE(exposition.find("serve_query_latency_ms_flow_p99"),
              std::string::npos);
    // Every non-comment line is `name[{labels}] value` with a finite value.
    for (const std::string& line : SplitLines(exposition)) {
      if (line.empty() || line[0] == '#') continue;
      const std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      char* end = nullptr;
      const double value = std::strtod(line.c_str() + space + 1, &end);
      EXPECT_EQ(*end, '\0') << line;
      EXPECT_TRUE(std::isfinite(value)) << line;
    }
  } else {
    EXPECT_EQ(exposition, "");
  }
}

TEST(Server, AdminHealthVerbReportsBankAndIngestState) {
  const PointIcm model = SmallRandomModel(48, 10, 24);
  Server server = MakeServer(model);
  const std::string output =
      RoundTrip(server, "{\"id\":\"he\",\"health\":true}\n");
  auto health_line = ParseJson(SplitLines(output).at(0));
  ASSERT_TRUE(health_line.ok()) << output;
  EXPECT_EQ(health_line->Find("id")->AsString(), "he");
  EXPECT_TRUE(health_line->Find("ok")->AsBool());
  const JsonValue* health = health_line->Find("health");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->Find("role")->AsString(), "server");
  EXPECT_GE(health->Find("generation")->AsNumber(), 1.0);
  EXPECT_GE(health->Find("generation_age_s")->AsNumber(), 0.0);
  EXPECT_GE(health->Find("model_epoch")->AsNumber(), 1.0);
  EXPECT_GT(health->Find("rows")->AsNumber(), 0.0);
  EXPECT_EQ(health->Find("num_shards")->AsNumber(), 1.0);
  const JsonValue* ingest = health->Find("ingest");
  ASSERT_NE(ingest, nullptr);
  EXPECT_FALSE(ingest->Find("enabled")->AsBool());
}

TEST(Server, AdminTraceVerbsArmExportAndDisarm) {
  const PointIcm model = SmallRandomModel(49, 10, 24);
  // One line per batch so arm → query → export happen in sequence rather
  // than being folded into a single greedy batch.
  ServerOptions options;
  options.max_batch = 1;
  Server server = MakeServer(model, options);
  const std::string output = RoundTrip(
      server,
      "{\"id\":\"t1\",\"trace\":{\"enable\":true,\"events_per_thread\":64}}\n"
      "{\"id\":\"q1\",\"source\":0,\"sink\":5}\n"
      "{\"id\":\"t2\",\"trace\":{\"export\":true}}\n"
      "{\"id\":\"t3\",\"trace\":{\"enable\":false}}\n");
  const std::vector<std::string> lines = SplitLines(output);
  ASSERT_EQ(lines.size(), 4u);

  auto enabled = ParseJson(lines[0]);
  ASSERT_TRUE(enabled.ok());
  EXPECT_EQ(enabled->Find("trace")->AsString(), "enabled");

  auto exported = ParseJson(lines[2]);
  ASSERT_TRUE(exported.ok());
  const JsonValue* trace = exported->Find("trace");
  ASSERT_NE(trace, nullptr);
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  if (obs::MetricsEnabled()) {
    // The query answered between arm and export left spans in the ring,
    // all tagged with the same server-minted query id.
    EXPECT_FALSE(events->AsArray().empty());
    bool saw_query_id = false;
    for (const JsonValue& event : events->AsArray()) {
      const JsonValue* args = event.Find("args");
      if (args != nullptr && args->Find("query_id") != nullptr) {
        saw_query_id = true;
        EXPECT_GE(args->Find("query_id")->AsNumber(), 1.0);
      }
    }
    EXPECT_TRUE(saw_query_id);
  } else {
    EXPECT_TRUE(events->AsArray().empty());
  }

  auto disabled = ParseJson(lines[3]);
  ASSERT_TRUE(disabled.ok());
  EXPECT_EQ(disabled->Find("trace")->AsString(), "disabled");
}

TEST(Server, EchoesQueryIdOnlyWhenTheClientSentOne) {
  const PointIcm model = SmallRandomModel(50, 10, 24);
  Server server = MakeServer(model);
  const std::string output = RoundTrip(
      server,
      "{\"id\":\"a\",\"source\":0,\"sink\":5,\"query_id\":77}\n"
      "{\"id\":\"b\",\"source\":0,\"sink\":5}\n");
  const std::vector<std::string> lines = SplitLines(output);
  ASSERT_EQ(lines.size(), 2u);

  auto with_id = ParseJson(lines[0]);
  ASSERT_TRUE(with_id.ok());
  ASSERT_NE(with_id->Find("query_id"), nullptr);
  EXPECT_EQ(with_id->Find("query_id")->AsNumber(), 77.0);

  // Server-minted ids are internal (trace + slow log only): echoing them
  // would make responses depend on process-global mint state and break
  // byte-identical replays.
  auto without_id = ParseJson(lines[1]);
  ASSERT_TRUE(without_id.ok());
  EXPECT_TRUE(without_id->Find("ok")->AsBool());
  EXPECT_EQ(without_id->Find("query_id"), nullptr);
}

TEST(Server, TopkVerbMatchesDirectSelectionOverTheSameBank) {
  const PointIcm model = SmallRandomModel(53, 12, 30);
  Server server = MakeServer(model);
  const std::string output = RoundTrip(
      server,
      "{\"id\":\"m1\",\"topk\":2,\"query_id\":31}\n"
      "{\"id\":\"m2\",\"topk\":2,\"community\":[3,4,5]}\n"
      "{\"id\":\"bad\",\"topk\":0}\n");
  const std::vector<std::string> lines = SplitLines(output);
  ASSERT_EQ(lines.size(), 3u);

  auto m1 = ParseJson(lines[0]);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->Find("id")->AsString(), "m1");
  EXPECT_TRUE(m1->Find("ok")->AsBool());
  EXPECT_EQ(m1->Find("kind")->AsString(), "topk");
  EXPECT_DOUBLE_EQ(m1->Find("query_id")->AsNumber(), 31.0);
  const auto& picks = m1->Find("seeds")->AsArray();
  ASSERT_EQ(picks.size(), 2u);

  // The served answer must match a direct selection over the same bank
  // generation exactly — same seeds, same spread estimate.
  auto generation = server.bank().Acquire();
  auto sketches = server.rr_index()->Acquire(generation);
  ASSERT_TRUE(sketches.ok()) << sketches.status();
  seedmax::SeedMaxOptions options;
  options.num_seeds = 2;
  auto direct = seedmax::SelectSeeds(**sketches, options);
  ASSERT_TRUE(direct.ok()) << direct.status();
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(picks[i].Find("node")->AsNumber(),
                     static_cast<double>(direct->picks[i].node));
    EXPECT_DOUBLE_EQ(picks[i].Find("spread")->AsNumber(),
                     direct->picks[i].spread);
  }
  EXPECT_DOUBLE_EQ(m1->Find("spread")->AsNumber(), direct->spread);
  EXPECT_DOUBLE_EQ(m1->Find("sketches")->AsNumber(),
                   static_cast<double>(direct->num_sketches));

  // Community-constrained request: universe shrinks to the community.
  auto m2 = ParseJson(lines[1]);
  ASSERT_TRUE(m2.ok());
  EXPECT_TRUE(m2->Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(m2->Find("universe")->AsNumber(), 3.0);
  EXPECT_LE(m2->Find("spread")->AsNumber(), 3.0 + 1e-12);

  // Malformed k: rejected on the parse path with a null id.
  auto bad = ParseJson(lines[2]);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->Find("ok")->AsBool());
  EXPECT_TRUE(bad->Find("id")->is_null());
  EXPECT_EQ(bad->Find("error")->Find("code")->AsString(),
            "invalid-argument");
}

TEST(Server, SlowQueryLogAppendsStructuredRecords) {
  const PointIcm model = SmallRandomModel(51, 10, 24);
  const std::string log_path =
      testing::TempDir() + "/infoflow_slow_query_test.ndjson";
  std::remove(log_path.c_str());
  ServerOptions options;
  options.slow_query_ms = 1e-6;  // Every query qualifies as slow.
  options.slow_query_path = log_path;
  Server server = MakeServer(model, options);
  const std::string output = RoundTrip(
      server,
      "{\"id\":\"a\",\"source\":0,\"sink\":5,\"query_id\":123}\n"
      "{\"id\":\"b\",\"sources\":[0,1],\"sinks\":[5,7]}\n");
  ASSERT_EQ(SplitLines(output).size(), 2u);

  std::ifstream log(log_path);
  ASSERT_TRUE(log.good()) << log_path;
  std::vector<std::string> records;
  std::string line;
  while (std::getline(log, line)) records.push_back(line);
  ASSERT_EQ(records.size(), 2u);

  auto first = ParseJson(records[0]);
  ASSERT_TRUE(first.ok()) << records[0];
  EXPECT_EQ(first->Find("id")->AsString(), "a");
  EXPECT_EQ(first->Find("query_id")->AsNumber(), 123.0);
  EXPECT_EQ(first->Find("kind")->AsString(), "flow");
  EXPECT_TRUE(first->Find("ok")->AsBool());
  EXPECT_GE(first->Find("latency_ms")->AsNumber(), 0.0);
  EXPECT_GE(first->Find("ts_ms")->AsNumber(), 1.0);
  EXPECT_GE(first->Find("generation")->AsNumber(), 1.0);
  EXPECT_GE(first->Find("model_epoch")->AsNumber(), 1.0);
  EXPECT_GT(first->Find("total_rows")->AsNumber(), 0.0);
  EXPECT_GT(first->Find("effective_rows")->AsNumber(), 0.0);
  ASSERT_NE(first->Find("rhat_max"), nullptr);

  // The second request arrived without a query_id: the mint stamps one,
  // and the slow log records it even though the response does not.
  auto second = ParseJson(records[1]);
  ASSERT_TRUE(second.ok()) << records[1];
  EXPECT_EQ(second->Find("id")->AsString(), "b");
  EXPECT_GE(second->Find("query_id")->AsNumber(), 1.0);

  std::remove(log_path.c_str());
}

TEST(Server, StopWritesTheStatsSnapshot) {
  const PointIcm model = SmallRandomModel(52, 10, 24);
  const std::string stats_path =
      testing::TempDir() + "/infoflow_stats_test.json";
  std::remove(stats_path.c_str());
  ServerOptions options;
  options.stats_path = stats_path;
  Server server = MakeServer(model, options);
  ASSERT_TRUE(server.Start().ok());
  server.Stop();

  std::ifstream stats_file(stats_path);
  ASSERT_TRUE(stats_file.good()) << stats_path;
  std::string contents((std::istreambuf_iterator<char>(stats_file)),
                       std::istreambuf_iterator<char>());
  auto snapshot = ParseJson(contents);
  ASSERT_TRUE(snapshot.ok()) << contents;
  EXPECT_NE(snapshot->Find("counters"), nullptr);
  EXPECT_NE(snapshot->Find("gauges"), nullptr);
  EXPECT_NE(snapshot->Find("histograms"), nullptr);
  std::remove(stats_path.c_str());
}

}  // namespace
}  // namespace infoflow::serve
