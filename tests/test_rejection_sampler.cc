#include "core/rejection_sampler.h"

#include <gtest/gtest.h>

#include "core/exact_flow.h"
#include "core/mh_sampler.h"
#include "graph/generators.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

PointIcm SmallModel(std::uint64_t seed) {
  Rng rng(seed);
  auto g = Share(UniformRandomGraph(8, 16, rng));
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.Uniform(0.1, 0.6);
  return PointIcm(g, probs);
}

TEST(RejectionSampler, UnconditionalMatchesExact) {
  PointIcm model = SmallModel(1);
  Rng rng(2);
  const RejectionEstimate estimate =
      RejectionSampleFlow(model, 0, 7, {}, 40000, 1'000'000, rng);
  EXPECT_EQ(estimate.accepted, 40000u);
  EXPECT_EQ(estimate.proposed, 40000u);  // no conditions: nothing rejected
  EXPECT_NEAR(estimate.probability, ExactFlowByEnumeration(model, 0, 7),
              0.01);
}

TEST(RejectionSampler, ConditionalMatchesExact) {
  PointIcm model = SmallModel(3);
  const FlowConditions cond{{0, 3, true}};
  auto exact = ExactConditionalFlowByEnumeration(model, 0, 7, cond);
  ASSERT_TRUE(exact.ok());
  Rng rng(4);
  const RejectionEstimate estimate =
      RejectionSampleFlow(model, 0, 7, cond, 20000, 100'000'000, rng);
  EXPECT_EQ(estimate.accepted, 20000u);
  EXPECT_NEAR(estimate.probability, *exact, 0.015);
}

TEST(RejectionSampler, AcceptanceRateEstimatesConditionProbability) {
  PointIcm model = SmallModel(5);
  const FlowConditions cond{{0, 3, true}, {0, 5, false}};
  const double pr_c = ExactConditionsProbability(model, cond);
  if (pr_c < 1e-4) GTEST_SKIP();
  Rng rng(6);
  const RejectionEstimate estimate =
      RejectionSampleFlow(model, 0, 7, cond, 5000, 100'000'000, rng);
  EXPECT_NEAR(estimate.AcceptanceRate(), pr_c, 0.1 * pr_c + 0.002);
}

TEST(RejectionSampler, ProposalCapStopsRunaway) {
  // Near-impossible condition: the cap must bound the work.
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  PointIcm model(Share(std::move(b).Build()), {0.001, 0.001});
  Rng rng(7);
  const RejectionEstimate estimate = RejectionSampleFlow(
      model, 0, 2, {{0, 2, true}}, 1000, /*max_proposals=*/5000, rng);
  EXPECT_EQ(estimate.proposed, 5000u);
  EXPECT_LT(estimate.accepted, 1000u);
}

TEST(RejectionSampler, AgreesWithMhOnConditionalQuery) {
  PointIcm model = SmallModel(8);
  const FlowConditions cond{{0, 2, true}};
  Rng rej_rng(9);
  const RejectionEstimate rejection =
      RejectionSampleFlow(model, 0, 7, cond, 20000, 100'000'000, rej_rng);
  MhOptions opt;
  opt.burn_in = 2000;
  opt.thinning = 6;
  auto sampler = MhSampler::Create(model, cond, opt, Rng(10));
  ASSERT_TRUE(sampler.ok());
  const double mh = sampler->EstimateFlowProbability(0, 7, 20000);
  EXPECT_NEAR(rejection.probability, mh, 0.02);
}

}  // namespace
}  // namespace infoflow
