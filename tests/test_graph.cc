#include "graph/graph.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace infoflow {
namespace {

DirectedGraph Triangle() {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  return std::move(b).Build();
}

TEST(GraphBuilder, CountsNodesAndEdges) {
  DirectedGraph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b(3);
  const Status s = b.AddEdge(1, 1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilder, RejectsDuplicateEdge) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_EQ(b.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoints) {
  GraphBuilder b(3);
  EXPECT_EQ(b.AddEdge(0, 3).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.AddEdge(5, 1).code(), StatusCode::kOutOfRange);
}

TEST(GraphBuilder, AddEdgeIfAbsentReportsInsertion) {
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdgeIfAbsent(0, 1));
  EXPECT_FALSE(b.AddEdgeIfAbsent(0, 1));
  EXPECT_EQ(b.num_edges(), 1u);
}

TEST(Graph, EdgeIdsAreSortedBySrcThenDst) {
  GraphBuilder b(3);
  // Insert out of order; Build() must canonicalize.
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(0, 1).CheckOK();
  DirectedGraph g = std::move(b).Build();
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{0, 2}));
  EXPECT_EQ(g.edge(2), (Edge{1, 2}));
}

TEST(Graph, OutEdgesAndDegrees) {
  DirectedGraph g = Triangle();
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(2), 0u);
  auto out0 = g.OutEdges(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(g.edge(out0[0]).dst, 1u);
  EXPECT_EQ(g.edge(out0[1]).dst, 2u);
}

TEST(Graph, InEdgesAndDegrees) {
  DirectedGraph g = Triangle();
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.InDegree(2), 2u);
  auto in2 = g.InEdges(2);
  ASSERT_EQ(in2.size(), 2u);
  EXPECT_EQ(g.edge(in2[0]).src, 0u);
  EXPECT_EQ(g.edge(in2[1]).src, 1u);
}

TEST(Graph, FindEdge) {
  DirectedGraph g = Triangle();
  EXPECT_NE(g.FindEdge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.edge(g.FindEdge(1, 2)), (Edge{1, 2}));
  EXPECT_EQ(g.FindEdge(2, 0), kInvalidEdge);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(2, 1));
}

TEST(Graph, EmptyGraph) {
  DirectedGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, IsolatedNodesHaveEmptyAdjacency) {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  DirectedGraph g = std::move(b).Build();
  EXPECT_EQ(g.OutDegree(2), 0u);
  EXPECT_EQ(g.InDegree(3), 0u);
}

TEST(Graph, ToStringMentionsCounts) {
  EXPECT_EQ(Triangle().ToString(), "DirectedGraph(n=3, m=3)");
}

TEST(Graph, LargerCsrConsistency) {
  // Every edge must appear exactly once in its source's out list and its
  // destination's in list.
  GraphBuilder b(50);
  Rng rng(4242);
  for (int i = 0; i < 300; ++i) {
    const auto u = static_cast<NodeId>(rng.NextBounded(50));
    const auto v = static_cast<NodeId>(rng.NextBounded(50));
    if (u != v) b.AddEdgeIfAbsent(u, v);
  }
  DirectedGraph g = std::move(b).Build();
  std::size_t out_total = 0, in_total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out_total += g.OutDegree(v);
    in_total += g.InDegree(v);
    for (EdgeId e : g.OutEdges(v)) EXPECT_EQ(g.edge(e).src, v);
    for (EdgeId e : g.InEdges(v)) EXPECT_EQ(g.edge(e).dst, v);
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(GraphDeath, EdgeIdOutOfRange) {
  DirectedGraph g = Triangle();
  EXPECT_DEATH(g.edge(3), "out of range");
}

TEST(GraphDeath, NodeIdOutOfRange) {
  DirectedGraph g = Triangle();
  EXPECT_DEATH(g.OutEdges(3), "out of range");
}

}  // namespace
}  // namespace infoflow
