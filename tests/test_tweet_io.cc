#include "twitter/tweet_io.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "twitter/cascade_gen.h"
#include "twitter/retweet_parser.h"

namespace infoflow {
namespace {

TEST(TweetIo, RoundTripsHandAuthoredLog) {
  const UserRegistry registry = UserRegistry::Sequential(3);
  TweetLog log;
  log.push_back({1, 0, 10.0, "hello, world \"quoted\"", kNoMessage, kNoTweet});
  log.push_back({2, 1, 11.5, "RT @user0: hello, world \"quoted\"",
                 kNoMessage, kNoTweet});
  const std::string text = SerializeTweetLog(log, registry);
  auto restored = DeserializeTweetLog(text, registry);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_EQ((*restored)[0].id, 1u);
  EXPECT_EQ((*restored)[0].user, 0u);
  EXPECT_DOUBLE_EQ((*restored)[0].time, 10.0);
  EXPECT_EQ((*restored)[0].text, "hello, world \"quoted\"");
  EXPECT_EQ((*restored)[1].text, "RT @user0: hello, world \"quoted\"");
}

TEST(TweetIo, GroundTruthFieldsAreNotSerialized) {
  const UserRegistry registry = UserRegistry::Sequential(2);
  TweetLog log;
  log.push_back({7, 0, 1.0, "secret", /*truth_message=*/42,
                 /*truth_parent=*/9});
  auto restored =
      DeserializeTweetLog(SerializeTweetLog(log, registry), registry);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)[0].truth_message, kNoMessage);
  EXPECT_EQ((*restored)[0].truth_parent_tweet, kNoTweet);
}

TEST(TweetIo, GeneratedLogSurvivesAndStillParses) {
  // CSV round-trip must not disturb the §IV-B pipeline: parsing the
  // restored log yields the same evidence as parsing the original.
  Rng rng(3);
  auto graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(50, 3, 0.2, rng));
  const UserRegistry registry = UserRegistry::Sequential(50);
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.3);
  PointIcm truth(graph, probs);
  CascadeGenOptions opt;
  opt.num_messages = 120;
  auto generated = GenerateCascades(truth, registry, opt, rng);
  ASSERT_TRUE(generated.ok());

  auto restored = DeserializeTweetLog(
      SerializeTweetLog(generated->log, registry), registry);
  ASSERT_TRUE(restored.ok());
  const ParseResult a = ParseRetweetLog(generated->log, registry);
  const ParseResult b = ParseRetweetLog(*restored, registry);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].base_text, b.messages[i].base_text);
    EXPECT_EQ(a.messages[i].root, b.messages[i].root);
    EXPECT_EQ(a.messages[i].attributions, b.messages[i].attributions);
  }
}

TEST(TweetIo, RejectsUnknownHandle) {
  const UserRegistry registry = UserRegistry::Sequential(2);
  const std::string text = "id,user,time,text\n1,stranger,1.0,hi\n";
  EXPECT_FALSE(DeserializeTweetLog(text, registry).ok());
}

TEST(TweetIo, RejectsMissingColumnsAndBadFields) {
  const UserRegistry registry = UserRegistry::Sequential(2);
  EXPECT_FALSE(DeserializeTweetLog("id,user,text\n1,user0,hi\n", registry)
                   .ok());
  EXPECT_FALSE(
      DeserializeTweetLog("id,user,time,text\nx,user0,1.0,hi\n", registry)
          .ok());
  EXPECT_FALSE(
      DeserializeTweetLog("id,user,time,text\n1,user0,nan?,hi\n", registry)
          .ok());
}

TEST(TweetIo, FileRoundTrip) {
  const UserRegistry registry = UserRegistry::Sequential(2);
  TweetLog log;
  log.push_back({1, 1, 2.5, "payload", kNoMessage, kNoTweet});
  const std::string path = ::testing::TempDir() + "/infoflow_tweets.csv";
  ASSERT_TRUE(SaveTweetLog(log, registry, path).ok());
  auto restored = LoadTweetLog(path, registry);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)[0].text, "payload");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace infoflow
