#include "baselines/rwr.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

TEST(Rwr, ScoresFormProbabilityDistribution) {
  Rng rng(1);
  auto g = Share(UniformRandomGraph(20, 60, rng));
  PointIcm icm = PointIcm::Constant(g, 0.5);
  const RwrResult result = RandomWalkWithRestart(icm, 0);
  EXPECT_TRUE(result.converged);
  const double total =
      std::accumulate(result.scores.begin(), result.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (double s : result.scores) EXPECT_GE(s, 0.0);
}

TEST(Rwr, IsolatedSourceKeepsAllMass) {
  GraphBuilder b(3);
  b.AddEdge(1, 2).CheckOK();
  PointIcm icm(Share(std::move(b).Build()), {0.5});
  const RwrResult result = RandomWalkWithRestart(icm, 0);
  EXPECT_NEAR(result.scores[0], 1.0, 1e-9);
}

TEST(Rwr, TwoNodeClosedForm) {
  // 0 -> 1, restart c: walker leaves 0 with prob (1-c) then returns.
  // Stationary: s0 = 1/(2-c), s1 = (1-c)/(2-c).
  GraphBuilder b(2);
  b.AddEdge(0, 1).CheckOK();
  PointIcm icm(Share(std::move(b).Build()), {0.8});
  RwrOptions opt;
  opt.restart_prob = 0.15;
  const RwrResult result = RandomWalkWithRestart(icm, 0, opt);
  EXPECT_NEAR(result.scores[0], 1.0 / 1.85, 1e-9);
  EXPECT_NEAR(result.scores[1], 0.85 / 1.85, 1e-9);
}

TEST(Rwr, EdgeWeightsSteerTheWalk) {
  // 0 -> 1 (heavy), 0 -> 2 (light): node 1 must score higher.
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  auto g = Share(std::move(b).Build());
  std::vector<double> probs(2);
  probs[g->FindEdge(0, 1)] = 0.9;
  probs[g->FindEdge(0, 2)] = 0.1;
  PointIcm icm(g, probs);
  const RwrResult result = RandomWalkWithRestart(icm, 0);
  EXPECT_GT(result.scores[1], result.scores[2] * 5.0);
}

TEST(Rwr, HigherRestartConcentratesAtSource) {
  Rng rng(2);
  auto g = Share(UniformRandomGraph(30, 120, rng));
  PointIcm icm = PointIcm::Constant(g, 0.5);
  RwrOptions low, high;
  low.restart_prob = 0.05;
  high.restart_prob = 0.6;
  const double s_low = RandomWalkWithRestart(icm, 3, low).scores[3];
  const double s_high = RandomWalkWithRestart(icm, 3, high).scores[3];
  EXPECT_GT(s_high, s_low);
}

TEST(Rwr, FlowScoresAreUnitScaled) {
  Rng rng(3);
  auto g = Share(UniformRandomGraph(25, 100, rng));
  PointIcm icm = PointIcm::Constant(g, 0.4);
  const auto scores = RwrFlowScores(icm, 0);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
  double max_other = 0.0;
  for (std::size_t v = 1; v < scores.size(); ++v) {
    EXPECT_GE(scores[v], 0.0);
    EXPECT_LE(scores[v], 1.0);
    max_other = std::max(max_other, scores[v]);
  }
  EXPECT_DOUBLE_EQ(max_other, 1.0);  // the best non-source hits the cap
}

TEST(Rwr, DeterministicResult) {
  Rng rng(4);
  auto g = Share(UniformRandomGraph(15, 45, rng));
  PointIcm icm = PointIcm::Constant(g, 0.3);
  const auto a = RandomWalkWithRestart(icm, 1);
  const auto b = RandomWalkWithRestart(icm, 1);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(Rwr, OptionValidation) {
  EXPECT_FALSE(RwrOptions{.restart_prob = 0.0}.Validate().ok());
  EXPECT_FALSE(RwrOptions{.restart_prob = 1.0}.Validate().ok());
  EXPECT_TRUE(RwrOptions{}.Validate().ok());
}

}  // namespace
}  // namespace infoflow
