#include "stats/beta_dist.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"

namespace infoflow {
namespace {

TEST(BetaDist, Moments) {
  BetaDist b(2.0, 8.0);
  EXPECT_NEAR(b.Mean(), 0.2, 1e-14);
  EXPECT_NEAR(b.Variance(), 16.0 / 1100.0, 1e-14);
  EXPECT_NEAR(b.StdDev(), std::sqrt(16.0 / 1100.0), 1e-14);
}

TEST(BetaDist, UniformSpecialCase) {
  BetaDist u = BetaDist::Uniform();
  EXPECT_NEAR(u.Mean(), 0.5, 1e-14);
  EXPECT_NEAR(u.Pdf(0.3), 1.0, 1e-12);
  EXPECT_NEAR(u.Cdf(0.3), 0.3, 1e-12);
}

TEST(BetaDist, Mode) {
  EXPECT_NEAR(BetaDist(3.0, 2.0).Mode(), 2.0 / 3.0, 1e-14);
  EXPECT_DOUBLE_EQ(BetaDist(0.5, 2.0).Mode(), 0.0);
  EXPECT_DOUBLE_EQ(BetaDist(2.0, 0.5).Mode(), 1.0);
}

TEST(BetaDist, FromCountsIsConjugateUpdate) {
  BetaDist b = BetaDist::FromCounts(3, 7);
  EXPECT_DOUBLE_EQ(b.alpha(), 4.0);
  EXPECT_DOUBLE_EQ(b.beta(), 8.0);
  BetaDist c = BetaDist::FromCounts(3, 7, 2.0, 5.0);
  EXPECT_DOUBLE_EQ(c.alpha(), 5.0);
  EXPECT_DOUBLE_EQ(c.beta(), 12.0);
}

TEST(BetaDist, FromMeanVarRoundTrips) {
  BetaDist original(16.0, 4.0);
  BetaDist fitted =
      BetaDist::FromMeanVar(original.Mean(), original.Variance());
  EXPECT_NEAR(fitted.alpha(), 16.0, 1e-9);
  EXPECT_NEAR(fitted.beta(), 4.0, 1e-9);
}

TEST(BetaDist, PdfIntegratesToOne) {
  BetaDist b(3.5, 1.7);
  double integral = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) / n;
    integral += b.Pdf(x) / n;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(BetaDist, PdfZeroOutsideSupport) {
  BetaDist b(2.0, 2.0);
  EXPECT_DOUBLE_EQ(b.Pdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(b.Pdf(1.1), 0.0);
  EXPECT_TRUE(std::isinf(b.LogPdf(-0.1)));
}

TEST(BetaDist, LogPdfMatchesPdf) {
  BetaDist b(5.0, 2.5);
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(std::exp(b.LogPdf(x)), b.Pdf(x), 1e-12);
  }
}

TEST(BetaDist, CdfMatchesNumericIntegral) {
  BetaDist b(2.0, 5.0);
  double integral = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) / n * 0.4;
    integral += b.Pdf(x) * 0.4 / n;
  }
  EXPECT_NEAR(b.Cdf(0.4), integral, 1e-4);
}

TEST(BetaDist, QuantileInvertsCdf) {
  BetaDist b(1.0, 45.0);  // the Fig. 3(a) empirical Beta
  for (double p : {0.025, 0.5, 0.975}) {
    EXPECT_NEAR(b.Cdf(b.Quantile(p)), p, 1e-9);
  }
}

TEST(BetaDist, CredibleIntervalCoversMass) {
  BetaDist b(32.0, 40.0);  // the Fig. 3(b) empirical Beta
  const auto ci = b.CredibleInterval(0.95);
  EXPECT_NEAR(b.Cdf(ci.hi) - b.Cdf(ci.lo), 0.95, 1e-9);
  EXPECT_TRUE(ci.Contains(b.Mean()));
  EXPECT_FALSE(ci.Contains(0.99));
}

TEST(BetaDist, SampleMomentsMatch) {
  BetaDist b(16.0, 4.0);
  Rng rng(77);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(b.Sample(rng));
  EXPECT_NEAR(stats.Mean(), b.Mean(), 0.01);
  EXPECT_NEAR(stats.Variance(), b.Variance(), 0.002);
}

TEST(BetaDist, SampleEmpiricalCdfMatchesCdf) {
  BetaDist b(2.0, 8.0);
  Rng rng(78);
  int below = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) below += b.Sample(rng) < 0.25 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(below) / n, b.Cdf(0.25), 0.01);
}

TEST(BetaDist, ToStringMentionsParameters) {
  EXPECT_NE(BetaDist(2.0, 3.0).ToString().find("2"), std::string::npos);
}

TEST(BetaDistDeath, RejectsNonPositiveParameters) {
  EXPECT_DEATH(BetaDist(0.0, 1.0), "positive");
  EXPECT_DEATH(BetaDist(1.0, -2.0), "positive");
}

}  // namespace
}  // namespace infoflow
