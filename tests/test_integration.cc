/// \file test_integration.cc
/// \brief Cross-module integration and paper-level property tests: the
/// SGTM ≡ ICM equivalence (Theorem 1), the full attributed Twitter
/// pipeline, held-out calibration, and the Fig. 7 accuracy ordering.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_flow.h"
#include "core/mh_sampler.h"
#include "eval/bucket.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "learn/attributed.h"
#include "learn/goyal.h"
#include "learn/joint_bayes.h"
#include "learn/model_trainer.h"
#include "learn/summary.h"
#include "stats/descriptive.h"
#include "twitter/cascade_gen.h"
#include "twitter/interesting_users.h"
#include "twitter/retweet_parser.h"
#include "twitter/tag_gen.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

// Theorem 1 (§V-A): the Simplified General Threshold Model and the ICM are
// equivalent. Simulate the SGTM mechanism — per-object uniform thresholds
// ρ_v, v activates when p_v(S_t) = 1 - Π_{u∈S_t}(1 - p_u,v) crosses ρ_v —
// and compare activation frequencies with ICM cascades on the same weights.
TEST(Theorem1, SgtmAndIcmActivationDistributionsMatch) {
  Rng graph_rng(1);
  auto g = Share(UniformRandomGraph(12, 36, graph_rng));
  Rng prob_rng(2);
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = prob_rng.Uniform(0.1, 0.8);
  PointIcm icm(g, probs);

  const int kTrials = 20000;
  Rng rng(3);
  std::vector<double> icm_freq(g->num_nodes(), 0.0);
  std::vector<double> sgtm_freq(g->num_nodes(), 0.0);
  for (int t = 0; t < kTrials; ++t) {
    // ICM cascade.
    const ActiveState s = icm.SampleCascade({0}, rng);
    for (NodeId v : s.active_nodes) icm_freq[v] += 1.0;
    // SGTM: thresholds per node; iterate rounds, activating any node whose
    // cumulative parent influence crosses its threshold.
    std::vector<double> rho(g->num_nodes());
    for (double& r : rho) r = rng.NextDouble();
    std::vector<std::uint8_t> active(g->num_nodes(), 0);
    active[0] = 1;
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId v = 0; v < g->num_nodes(); ++v) {
        if (active[v] || v == 0) continue;
        double survive = 1.0;
        for (EdgeId e : g->InEdges(v)) {
          if (active[g->edge(e).src]) survive *= 1.0 - probs[e];
        }
        if (1.0 - survive > rho[v]) {
          active[v] = 1;
          changed = true;
        }
      }
    }
    for (NodeId v = 0; v < g->num_nodes(); ++v) {
      sgtm_freq[v] += active[v] ? 1.0 : 0.0;
    }
  }
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    EXPECT_NEAR(icm_freq[v] / kTrials, sgtm_freq[v] / kTrials, 0.02)
        << "node " << v;
  }
}

class TwitterPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng graph_rng(10);
    graph_ = Share(PreferentialAttachmentGraph(80, 3, 0.25, graph_rng));
    registry_ = UserRegistry::Sequential(80);
    Rng prob_rng(11);
    std::vector<double> probs(graph_->num_edges());
    // Realistic sparse retweet rates (the paper's regime: short chains,
    // rarely more than one exposed parent). Dense high-probability
    // cascades would make single-parent attribution systematically
    // under-count multi-parent edges.
    for (double& p : probs) p = prob_rng.Uniform(0.02, 0.3);
    truth_ = std::make_unique<PointIcm>(graph_, probs);
  }

  std::shared_ptr<const DirectedGraph> graph_;
  UserRegistry registry_ = UserRegistry::Sequential(0);
  std::unique_ptr<PointIcm> truth_;
};

// The full §IV pipeline: raw logs -> parsing -> attributed training ->
// betaICM whose expected probabilities track the generator's race-winning
// attribution frequencies.
TEST_F(TwitterPipelineTest, TrainedModelTracksAttributionFrequencies) {
  CascadeGenOptions opt;
  opt.num_messages = 1500;
  opt.drop_original_prob = 0.1;
  Rng rng(12);
  auto gen = GenerateCascades(*truth_, registry_, opt, rng);
  ASSERT_TRUE(gen.ok());
  const ParseResult parsed = ParseRetweetLog(gen->log, registry_);
  const AttributedEvidence evidence = parsed.ToEvidence(*graph_);
  auto model = TrainBetaIcmFromAttributed(graph_, evidence);
  ASSERT_TRUE(model.ok());

  // Reference frequencies straight from the (drop-free) ground truth.
  auto reference = TrainBetaIcmFromAttributed(graph_, gen->ground_truth);
  ASSERT_TRUE(reference.ok());
  const PointIcm learned = model->ExpectedIcm();
  const PointIcm ref = reference->ExpectedIcm();
  RunningStats gap;
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    // Only compare edges with real exposure in the reference.
    if (reference->alpha(e) + reference->beta(e) < 30.0) continue;
    gap.Add(std::fabs(learned.prob(e) - ref.prob(e)));
  }
  ASSERT_GT(gap.Count(), 20u);
  EXPECT_LT(gap.Mean(), 0.06);
}

// Held-out calibration on an ego net: the §IV-C experiment in miniature.
TEST_F(TwitterPipelineTest, HeldOutBucketCalibration) {
  CascadeGenOptions opt;
  opt.num_messages = 2500;
  Rng rng(13);
  auto gen = GenerateCascades(*truth_, registry_, opt, rng);
  ASSERT_TRUE(gen.ok());
  auto model = TrainBetaIcmFromAttributed(graph_, gen->ground_truth);
  ASSERT_TRUE(model.ok());

  // Focus user: most active source.
  const auto interesting = SelectInterestingUsers(80, gen->ground_truth, 1);
  ASSERT_FALSE(interesting.empty());
  const NodeId focus = interesting[0];
  const Subgraph ego = EgoSubgraph(*graph_, focus, 2);
  // Restrict the trained model to the ego net.
  std::vector<double> sub_probs(ego.graph.num_edges());
  const PointIcm expected = model->ExpectedIcm();
  for (EdgeId e = 0; e < ego.graph.num_edges(); ++e) {
    sub_probs[e] = expected.prob(ego.edge_to_parent[e]);
  }
  auto ego_graph = std::make_shared<const DirectedGraph>(ego.graph);
  PointIcm ego_model(ego_graph, sub_probs);

  // Test states come from the *true* generator on the same subgraph.
  std::vector<double> true_probs(ego.graph.num_edges());
  for (EdgeId e = 0; e < ego.graph.num_edges(); ++e) {
    true_probs[e] = truth_->prob(ego.edge_to_parent[e]);
  }
  PointIcm ego_truth(ego_graph, true_probs);

  // Two claims, mirroring Fig. 2: (a) the trained-model MH predictions
  // score within noise of an oracle that knows the true probabilities —
  // skill versus a constant baseline is not a meaningful bar here because
  // most focus-to-sink probabilities cluster near the base rate, so even
  // the oracle barely beats it; (b) the predictions are *calibrated*: most
  // occupied buckets keep the mean prediction inside the empirical 95% CI.
  Rng test_rng(14);
  MhOptions mh;
  mh.burn_in = 3000;
  mh.thinning = 12;
  auto sampler = MhSampler::Create(ego_model, {}, mh, Rng(15));
  ASSERT_TRUE(sampler.ok());

  ReachabilityWorkspace ws(*ego_graph);
  Rng mc_rng(17);
  auto oracle_flow = [&](NodeId source, NodeId sink) {
    int hits = 0;
    const int kMc = 8000;
    for (int i = 0; i < kMc; ++i) {
      const PseudoState x = ego_truth.SamplePseudoState(mc_rng);
      if (ws.RunUntil(*ego_graph, {source}, x, sink)) ++hits;
    }
    return static_cast<double>(hits) / kMc;
  };

  BucketExperiment bucket;
  std::vector<BucketPair> oracle_pairs;
  const NodeId local_focus = ego.LocalNode(focus);
  for (int trial = 0; trial < 120; ++trial) {
    const auto sink = static_cast<NodeId>(
        test_rng.NextBounded(ego.graph.num_nodes()));
    if (sink == local_focus) continue;
    const ActiveState state = ego_truth.SampleCascade({local_focus}, test_rng);
    const bool outcome = state.IsNodeActive(sink);
    bucket.Add(sampler->EstimateFlowProbability(local_focus, sink, 1200),
               outcome);
    oracle_pairs.push_back({oracle_flow(local_focus, sink), outcome});
  }
  const AccuracyReport model_acc = ComputeAccuracy(bucket.pairs());
  const AccuracyReport oracle_acc = ComputeAccuracy(oracle_pairs);
  EXPECT_LT(model_acc.brier, oracle_acc.brier + 0.01);
  EXPECT_GT(model_acc.normalized_likelihood,
            oracle_acc.normalized_likelihood - 0.03);
  const BucketReport report = bucket.Analyze(10);
  EXPECT_GE(report.coverage, 0.6);
}

// Fig. 7's headline ordering: with skewed activation probabilities and
// plenty of objects, the joint-Bayes RMSE beats Goyal's equal-credit rule.
TEST(Fig7Ordering, JointBayesBeatsGoyalOnSkewedStar) {
  const std::vector<double> truth{0.15, 0.68, 0.83};  // Fig. 7(b)
  auto g = Share(StarFragment(truth.size()));
  const auto sink = static_cast<NodeId>(truth.size());
  PointIcm gen_model(g, truth);

  Rng rng(20);
  UnattributedEvidence ev;
  for (int o = 0; o < 2000; ++o) {
    ObjectTrace trace;
    double survive = 1.0;
    double time = 1.0;
    for (NodeId p = 0; p < sink; ++p) {
      if (rng.Bernoulli(0.75)) {  // parent happens to hold the object
        trace.activations.push_back({p, time++});
        survive *= 1.0 - truth[p];
      }
    }
    if (trace.activations.empty()) continue;
    if (rng.Bernoulli(1.0 - survive)) {
      trace.activations.push_back({sink, time});
    }
    ev.traces.push_back(std::move(trace));
  }
  const SinkSummary summary = BuildSinkSummary(*g, sink, ev);

  JointBayesOptions jb;
  jb.num_samples = 800;
  jb.burn_in = 400;
  Rng fit_rng(21);
  auto ours = FitJointBayes(summary, jb, fit_rng);
  ASSERT_TRUE(ours.ok());
  const GoyalResult goyal = FitGoyal(summary);

  const double rmse_ours = Rmse(ours->mean, truth);
  const double rmse_goyal = Rmse(goyal.estimate, truth);
  EXPECT_LT(rmse_ours, rmse_goyal);
  EXPECT_LT(rmse_ours, 0.08);
}

// The unattributed pipeline end to end (Fig. 8 in miniature): tag traces
// over the omnipotent-augmented network -> joint-Bayes whole-graph model
// -> edge RMSE beats Goyal's on exercised edges, and flow predictions from
// the trained model track the ground-truth model's.
TEST(UnattributedPipeline, UrlTracesToCalibratedFlows) {
  Rng rng(77);
  auto base_graph = Share(PreferentialAttachmentGraph(80, 2, 0.2, rng));
  std::vector<double> probs(base_graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.45);
  const TagNetwork network =
      AugmentWithOmnipotent(PointIcm(base_graph, probs));

  TagGenOptions gen;
  gen.num_objects = 1500;
  gen.url_external_prob = 0.008;  // enough entries to exercise the edges
  Rng gen_rng = rng.Split();
  auto traces = GenerateTagTraces(network, TagKind::kUrl, gen, gen_rng);
  ASSERT_TRUE(traces.ok());

  UnattributedTrainOptions ours_opt;
  ours_opt.joint_bayes.num_samples = 300;
  ours_opt.joint_bayes.burn_in = 200;
  ours_opt.no_evidence_mean = 0.0;
  Rng fit_rng = rng.Split();
  auto ours = TrainUnattributedModel(network.graph, *traces, ours_opt,
                                     fit_rng);
  ASSERT_TRUE(ours.ok());
  UnattributedTrainOptions goyal_opt = ours_opt;
  goyal_opt.method = UnattributedMethod::kGoyal;
  auto goyal = TrainUnattributedModel(network.graph, *traces, goyal_opt,
                                      fit_rng);
  ASSERT_TRUE(goyal.ok());

  // Edge-level accuracy on exercised in-network edges.
  const PointIcm truth = network.GroundTruth(gen.url_external_prob);
  std::vector<std::uint32_t> exposure(base_graph->num_edges(), 0);
  for (const ObjectTrace& trace : traces->traces) {
    for (EdgeId e = 0; e < base_graph->num_edges(); ++e) {
      const Edge& edge = base_graph->edge(e);
      if (trace.TimeOf(edge.src) < trace.TimeOf(edge.dst)) ++exposure[e];
    }
  }
  std::vector<double> t, ours_est, goyal_est;
  for (EdgeId e = 0; e < base_graph->num_edges(); ++e) {
    if (exposure[e] < 40) continue;
    t.push_back(truth.prob(e));
    ours_est.push_back(ours->mean[e]);
    goyal_est.push_back(goyal->mean[e]);
  }
  ASSERT_GT(t.size(), 15u);
  EXPECT_LT(Rmse(ours_est, t), Rmse(goyal_est, t));
  EXPECT_LT(Rmse(ours_est, t), 0.12);

  // Flow-level: trained-model flow probabilities track ground truth.
  const PointIcm trained = ours->ToPointIcm();
  ReachabilityWorkspace ws(*network.graph);
  Rng mc_rng = rng.Split();
  auto mc_flow = [&](const PointIcm& m, NodeId src, NodeId sink) {
    int hits = 0;
    const int kMc = 4000;
    for (int i = 0; i < kMc; ++i) {
      const PseudoState x = m.SamplePseudoState(mc_rng);
      if (ws.RunUntil(*network.graph, {src}, x, sink)) ++hits;
    }
    return static_cast<double>(hits) / kMc;
  };
  RunningStats flow_gap;
  for (NodeId sink = 3; sink < 60; sink += 7) {
    flow_gap.Add(std::fabs(mc_flow(trained, 0, sink) -
                           mc_flow(truth, 0, sink)));
  }
  EXPECT_LT(flow_gap.Mean(), 0.08);
}

// Conditioning refines prediction: MH conditional flow on a trained model
// matches exact conditional flow on a small graph.
TEST(ConditionalPipeline, TrainedModelConditionalQueries) {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(0, 3).CheckOK();
  b.AddEdge(3, 2).CheckOK();
  auto g = Share(std::move(b).Build());
  PointIcm truth(g, {0.7, 0.5, 0.3, 0.6});
  Rng rng(30);
  AttributedEvidence ev;
  for (int i = 0; i < 3000; ++i) {
    const ActiveState s = truth.SampleCascade({0}, rng);
    AttributedObject obj;
    obj.sources = s.sources;
    obj.active_nodes = s.active_nodes;
    for (EdgeId e = 0; e < g->num_edges(); ++e) {
      if (s.edge_active[e]) obj.active_edges.push_back(e);
    }
    ev.objects.push_back(std::move(obj));
  }
  auto model = TrainBetaIcmFromAttributed(g, ev);
  ASSERT_TRUE(model.ok());
  const PointIcm learned = model->ExpectedIcm();
  const FlowConditions cond{{0, 1, true}, {0, 3, false}};
  MhOptions mh;
  mh.burn_in = 1500;
  mh.thinning = 3;
  auto sampler = MhSampler::Create(learned, cond, mh, Rng(31));
  ASSERT_TRUE(sampler.ok());
  const double mh_estimate = sampler->EstimateFlowProbability(0, 2, 30000);
  const double exact =
      ExactConditionalFlowByEnumeration(learned, 0, 2, cond).ValueOrDie();
  EXPECT_NEAR(mh_estimate, exact, 0.02);
  // And the learned conditional should be near the true conditional.
  const double true_exact =
      ExactConditionalFlowByEnumeration(truth, 0, 2, cond).ValueOrDie();
  EXPECT_NEAR(mh_estimate, true_exact, 0.06);
}

}  // namespace
}  // namespace infoflow
