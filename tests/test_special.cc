#include "stats/special.h"

#include <gtest/gtest.h>

#include <cmath>

namespace infoflow {
namespace {

TEST(LogGamma, FactorialValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(LogBeta, KnownValues) {
  // B(1,1) = 1, B(2,3) = 1/12, B(0.5,0.5) = pi.
  EXPECT_NEAR(LogBeta(1.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogBeta(2.0, 3.0), std::log(1.0 / 12.0), 1e-10);
  EXPECT_NEAR(LogBeta(0.5, 0.5), std::log(M_PI), 1e-10);
}

TEST(LogChoose, SmallValues) {
  EXPECT_NEAR(LogChoose(5, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogChoose(5, 5), 0.0, 1e-12);
  EXPECT_NEAR(LogChoose(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(LogChoose(52, 5), std::log(2598960.0), 1e-8);
}

TEST(IncompleteBeta, Boundaries) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformCaseIsIdentity) {
  for (double x : {0.1, 0.25, 0.5, 0.73, 0.99}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, ClosedFormAlpha1) {
  // I_x(1, b) = 1 - (1-x)^b.
  for (double x : {0.1, 0.4, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 3.0, x),
                1.0 - std::pow(1.0 - x, 3.0), 1e-12);
  }
}

TEST(IncompleteBeta, ClosedFormBeta1) {
  // I_x(a, 1) = x^a.
  for (double x : {0.1, 0.4, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 1.0, x), std::pow(x, 2.5),
                1e-12);
  }
}

TEST(IncompleteBeta, SymmetryRelation) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.05, 0.3, 0.62, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(3.2, 1.7, x),
                1.0 - RegularizedIncompleteBeta(1.7, 3.2, 1.0 - x), 1e-12);
  }
}

TEST(IncompleteBeta, ReferenceValues) {
  // Cross-checked against scipy.special.betainc.
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 5.0, 0.2),
              0.34464, 1e-5);
  EXPECT_NEAR(RegularizedIncompleteBeta(10.0, 10.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(RegularizedIncompleteBeta(0.5, 0.5, 0.25),
              2.0 / M_PI * std::asin(0.5), 1e-10);
}

TEST(IncompleteBeta, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0001; x += 0.05) {
    const double v = RegularizedIncompleteBeta(3.0, 4.0, std::min(x, 1.0));
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(InverseIncompleteBeta, InvertsCdf) {
  for (double a : {0.7, 1.0, 3.0, 20.0}) {
    for (double b : {0.7, 1.0, 5.0, 45.0}) {
      for (double p : {0.025, 0.25, 0.5, 0.8, 0.975}) {
        const double x = InverseRegularizedIncompleteBeta(a, b, p);
        EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x), p, 1e-9)
            << "a=" << a << " b=" << b << " p=" << p;
      }
    }
  }
}

TEST(InverseIncompleteBeta, Boundaries) {
  EXPECT_DOUBLE_EQ(InverseRegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(InverseRegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteGamma, Boundaries) {
  EXPECT_DOUBLE_EQ(RegularizedLowerIncompleteGamma(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedLowerIncompleteGamma(2.0, 1e6), 1.0, 1e-12);
}

TEST(IncompleteGamma, ClosedFormIntegerShape) {
  // P(1, x) = 1 - e^{-x}; P(2, x) = 1 - e^{-x}(1 + x).
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedLowerIncompleteGamma(1.0, x), 1.0 - std::exp(-x),
                1e-12);
    EXPECT_NEAR(RegularizedLowerIncompleteGamma(2.0, x),
                1.0 - std::exp(-x) * (1.0 + x), 1e-12);
  }
}

TEST(IncompleteGamma, HalfShapeMatchesErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.2, 1.0, 2.5, 8.0}) {
    EXPECT_NEAR(RegularizedLowerIncompleteGamma(0.5, x),
                std::erf(std::sqrt(x)), 1e-12);
  }
}

TEST(IncompleteGamma, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x < 20.0; x += 0.5) {
    const double v = RegularizedLowerIncompleteGamma(3.7, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(ChiSquare, KnownQuantiles) {
  // Classic table values: P(chi2_1 <= 3.841) = 0.95,
  // P(chi2_5 <= 11.070) = 0.95, P(chi2_10 <= 18.307) = 0.95.
  EXPECT_NEAR(ChiSquareCdf(3.841, 1), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquareCdf(11.070, 5), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquareCdf(18.307, 10), 0.95, 1e-3);
  EXPECT_DOUBLE_EQ(ChiSquareCdf(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareCdf(-1.0, 3), 0.0);
}

TEST(ChiSquare, MedianNearDofMinusTwoThirds) {
  // Median of chi2_k ~ k(1 - 2/(9k))^3.
  for (double k : {2.0, 5.0, 20.0}) {
    const double median = k * std::pow(1.0 - 2.0 / (9.0 * k), 3.0);
    EXPECT_NEAR(ChiSquareCdf(median, k), 0.5, 0.02);
  }
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145707, 1e-10);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9);
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-7);
}

}  // namespace
}  // namespace infoflow
