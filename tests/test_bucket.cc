#include "eval/bucket.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace infoflow {
namespace {

TEST(BucketExperiment, BinBoundariesAndCounts) {
  BucketExperiment exp;
  exp.Add(0.05, false);
  exp.Add(0.06, true);
  exp.Add(0.95, true);
  exp.Add(1.0, true);  // lands in the top bin
  const BucketReport report = exp.Analyze(10);
  EXPECT_EQ(report.total, 4u);
  EXPECT_EQ(report.bins.size(), 10u);
  EXPECT_EQ(report.bins[0].count, 2u);
  EXPECT_EQ(report.bins[0].positives, 1u);
  EXPECT_EQ(report.bins[9].count, 2u);
  EXPECT_DOUBLE_EQ(report.bins[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(report.bins[0].hi, 0.1);
}

TEST(BucketExperiment, EmpiricalBetaParameters) {
  BucketExperiment exp;
  for (int i = 0; i < 10; ++i) exp.Add(0.35, i < 4);
  const BucketReport report = exp.Analyze(10);
  const BucketBin& bin = report.bins[3];
  // §IV-C: α = 1 + Σz = 5, β = |bin| − Σz + 1 = 7.
  EXPECT_DOUBLE_EQ(bin.alpha, 5.0);
  EXPECT_DOUBLE_EQ(bin.beta, 7.0);
  EXPECT_NEAR(bin.empirical_mean, 5.0 / 12.0, 1e-12);
  EXPECT_LT(bin.ci_lo, bin.empirical_mean);
  EXPECT_GT(bin.ci_hi, bin.empirical_mean);
}

TEST(BucketExperiment, MeanEstimatePerBin) {
  BucketExperiment exp;
  exp.Add(0.30, true);
  exp.Add(0.38, false);
  const BucketReport report = exp.Analyze(10);
  EXPECT_DOUBLE_EQ(report.bins[3].mean_estimate, 0.34);
}

TEST(BucketExperiment, CalibratedPredictorIsCovered) {
  // Outcomes drawn with exactly the predicted probability: the mean should
  // sit inside the 95% CI for (almost) every occupied bin.
  BucketExperiment exp;
  Rng rng(1);
  for (int i = 0; i < 30000; ++i) {
    const double p = rng.NextDouble();
    exp.Add(p, rng.Bernoulli(p));
  }
  const BucketReport report = exp.Analyze(30);
  EXPECT_EQ(report.occupied_bins, 30u);
  EXPECT_GE(report.coverage, 0.8);
}

TEST(BucketExperiment, MiscalibratedPredictorIsNotCovered) {
  // Predict p but realize p^2: badly calibrated away from the ends.
  BucketExperiment exp;
  Rng rng(2);
  for (int i = 0; i < 30000; ++i) {
    const double p = rng.NextDouble();
    exp.Add(p, rng.Bernoulli(p * p));
  }
  const BucketReport report = exp.Analyze(30);
  EXPECT_LT(report.coverage, 0.3);
}

TEST(BucketExperiment, EmptyBinsSkipped) {
  BucketExperiment exp;
  exp.Add(0.5, true);
  const BucketReport report = exp.Analyze(30);
  EXPECT_EQ(report.occupied_bins, 1u);
}

TEST(BucketExperiment, CoverageOfEmptyExperimentIsZero) {
  BucketExperiment exp;
  const BucketReport report = exp.Analyze(30);
  EXPECT_DOUBLE_EQ(report.coverage, 0.0);
  EXPECT_EQ(report.total, 0u);
}

TEST(MovingWindowBand, CountsNeighborhoodPairs) {
  std::vector<BucketPair> pairs{{0.50, true}, {0.51, false}, {0.90, true}};
  const auto band = MovingWindowBand(pairs, 11, 0.05);
  // Grid point 0.5 sees the two nearby pairs; 0.9 sees one; 0.0 none.
  EXPECT_EQ(band[5].count, 2u);
  EXPECT_EQ(band[9].count, 1u);
  EXPECT_EQ(band[0].count, 0u);
  EXPECT_LT(band[5].ci_lo, band[5].ci_hi);
}

TEST(MovingWindowBand, TightensWithMoreData) {
  Rng rng(3);
  std::vector<BucketPair> small, large;
  for (int i = 0; i < 5000; ++i) {
    const BucketPair pair{0.5, rng.Bernoulli(0.5)};
    if (i < 50) small.push_back(pair);
    large.push_back(pair);
  }
  const auto band_small = MovingWindowBand(small, 3, 0.6);
  const auto band_large = MovingWindowBand(large, 3, 0.6);
  EXPECT_LT(band_large[1].ci_hi - band_large[1].ci_lo,
            band_small[1].ci_hi - band_small[1].ci_lo);
}

TEST(ChiSquareCalibration, CalibratedPredictorPasses) {
  BucketExperiment exp;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const double p = rng.NextDouble();
    exp.Add(p, rng.Bernoulli(p));
  }
  const auto test = ChiSquareCalibration(exp.Analyze(20));
  EXPECT_GT(test.bins_used, 10u);
  EXPECT_GT(test.p_value, 0.01);
}

TEST(ChiSquareCalibration, MiscalibratedPredictorFails) {
  BucketExperiment exp;
  Rng rng(12);
  for (int i = 0; i < 20000; ++i) {
    const double p = rng.NextDouble();
    exp.Add(p, rng.Bernoulli(p * p));  // systematically over-confident
  }
  const auto test = ChiSquareCalibration(exp.Analyze(20));
  EXPECT_LT(test.p_value, 1e-6);
}

TEST(ChiSquareCalibration, SkipsThinBins) {
  BucketExperiment exp;
  exp.Add(0.5, true);  // expected positives = 0.5 < 1: inapplicable
  const auto test = ChiSquareCalibration(exp.Analyze(10));
  EXPECT_EQ(test.bins_used, 0u);
  EXPECT_DOUBLE_EQ(test.p_value, 1.0);
}

TEST(BucketExperimentDeath, RejectsNonProbabilities) {
  BucketExperiment exp;
  EXPECT_DEATH(exp.Add(1.2, true), "probability");
}

}  // namespace
}  // namespace infoflow
