#include "core/icm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/pseudo_state.h"
#include "graph/reachability.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Triangle() {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  return std::make_shared<const DirectedGraph>(std::move(b).Build());
}

TEST(PointIcm, StoresProbabilities) {
  auto g = Triangle();
  PointIcm icm(g, {0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(icm.prob(0), 0.1);
  EXPECT_DOUBLE_EQ(icm.prob(2), 0.3);
  EXPECT_EQ(icm.graph().num_edges(), 3u);
}

TEST(PointIcm, ConstantFactory) {
  PointIcm icm = PointIcm::Constant(Triangle(), 0.4);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_DOUBLE_EQ(icm.prob(e), 0.4);
}

TEST(PointIcm, PseudoStateEdgeFrequencies) {
  auto g = Triangle();
  PointIcm icm(g, {0.1, 0.5, 0.9});
  Rng rng(1);
  std::vector<int> hits(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const PseudoState x = icm.SamplePseudoState(rng);
    for (EdgeId e = 0; e < 3; ++e) hits[e] += x[e];
  }
  EXPECT_NEAR(static_cast<double>(hits[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[1]) / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[2]) / n, 0.9, 0.01);
}

TEST(PointIcm, LogPseudoStateProbMatchesProduct) {
  auto g = Triangle();
  PointIcm icm(g, {0.1, 0.5, 0.9});
  // State 101: p0 * (1-p1) * p2.
  PseudoState x{1, 0, 1};
  EXPECT_NEAR(icm.LogPseudoStateProb(x), std::log(0.1 * 0.5 * 0.9), 1e-12);
}

TEST(PointIcm, LogProbSumsToOneOverAllStates) {
  auto g = Triangle();
  PointIcm icm(g, {0.3, 0.7, 0.25});
  double total = 0.0;
  for (int bits = 0; bits < 8; ++bits) {
    PseudoState x{static_cast<std::uint8_t>(bits & 1),
                  static_cast<std::uint8_t>((bits >> 1) & 1),
                  static_cast<std::uint8_t>((bits >> 2) & 1)};
    total += std::exp(icm.LogPseudoStateProb(x));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PointIcm, DeterministicEdgesGiveInfiniteLogProb) {
  auto g = Triangle();
  PointIcm icm(g, {0.0, 1.0, 0.5});
  EXPECT_TRUE(std::isinf(icm.LogPseudoStateProb({1, 1, 0})));  // p=0 active
  EXPECT_TRUE(std::isinf(icm.LogPseudoStateProb({0, 0, 0})));  // p=1 inactive
  EXPECT_FALSE(std::isinf(icm.LogPseudoStateProb({0, 1, 1})));
}

TEST(PointIcm, CascadeContainsSourcesAndRespectsZeroEdges) {
  auto g = Triangle();
  PointIcm icm(g, {0.0, 0.0, 0.0});
  Rng rng(2);
  const ActiveState s = icm.SampleCascade({0}, rng);
  EXPECT_EQ(s.active_nodes, (std::vector<NodeId>{0}));
  for (std::uint8_t e : s.edge_active) EXPECT_EQ(e, 0);
}

TEST(PointIcm, CascadeWithCertainEdgesActivatesAll) {
  auto g = Triangle();
  PointIcm icm = PointIcm::Constant(g, 1.0);
  Rng rng(3);
  const ActiveState s = icm.SampleCascade({0}, rng);
  EXPECT_EQ(s.active_nodes.size(), 3u);
}

TEST(PointIcm, CascadeActiveEdgesHaveActiveParents) {
  auto g = Triangle();
  PointIcm icm = PointIcm::Constant(g, 0.5);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const ActiveState s = icm.SampleCascade({0}, rng);
    std::vector<bool> node_active(3, false);
    for (NodeId v : s.active_nodes) node_active[v] = true;
    for (EdgeId e = 0; e < 3; ++e) {
      if (s.edge_active[e]) {
        EXPECT_TRUE(node_active[g->edge(e).src]);
        EXPECT_TRUE(node_active[g->edge(e).dst]);
      }
    }
  }
}

// The core pseudo-state/active-state equivalence (§III-A): deriving the
// active node set from an independent pseudo-state must reproduce the
// cascade distribution of active node sets.
TEST(PointIcm, CascadeAndPseudoStateDistributionsAgree) {
  auto g = Triangle();
  PointIcm icm(g, {0.6, 0.4, 0.2});
  Rng rng(5);
  const int n = 40000;
  std::map<std::vector<NodeId>, int> cascade_counts, derived_counts;
  for (int i = 0; i < n; ++i) {
    ActiveState c = icm.SampleCascade({0}, rng);
    std::sort(c.active_nodes.begin(), c.active_nodes.end());
    ++cascade_counts[c.active_nodes];
    ActiveState d = DeriveActiveState(*g, {0}, icm.SamplePseudoState(rng));
    std::sort(d.active_nodes.begin(), d.active_nodes.end());
    ++derived_counts[d.active_nodes];
  }
  for (const auto& [nodes, count] : cascade_counts) {
    const double pc = static_cast<double>(count) / n;
    const double pd = static_cast<double>(derived_counts[nodes]) / n;
    EXPECT_NEAR(pc, pd, 0.015);
  }
}

TEST(DeriveActiveState, MasksEdgesWithInactiveParents) {
  auto g = Triangle();
  // Pseudo-state activates edge 1->2 but 1 is unreachable (edge 0->1 off).
  PseudoState x(3, 0);
  x[g->FindEdge(1, 2)] = 1;
  const ActiveState s = DeriveActiveState(*g, {0}, x);
  EXPECT_EQ(s.active_nodes, (std::vector<NodeId>{0}));
  for (std::uint8_t e : s.edge_active) EXPECT_EQ(e, 0);
}

TEST(DeriveActiveState, KeepsReachableActiveEdges) {
  auto g = Triangle();
  PseudoState x(3, 0);
  x[g->FindEdge(0, 1)] = 1;
  x[g->FindEdge(1, 2)] = 1;
  const ActiveState s = DeriveActiveState(*g, {0}, x);
  EXPECT_TRUE(s.IsNodeActive(2));
  EXPECT_EQ(s.edge_active[g->FindEdge(0, 1)], 1);
  EXPECT_EQ(s.edge_active[g->FindEdge(1, 2)], 1);
}

TEST(PointIcmDeath, RejectsBadProbability) {
  EXPECT_DEATH(PointIcm(Triangle(), {0.1, 0.2, 1.5}), "outside");
  EXPECT_DEATH(PointIcm(Triangle(), {0.1, 0.2}), "lhs");
}

}  // namespace
}  // namespace infoflow
