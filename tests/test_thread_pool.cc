#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/mh_sampler.h"
#include "graph/generators.h"

namespace infoflow {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { ++counter; });
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  ParallelFor(pool, 0, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, DeterministicWithPerIndexRngs) {
  // The library's prescribed pattern: one pre-derived Rng per index makes
  // the parallel run bit-identical to the serial one.
  Rng master(42);
  auto graph = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(10, 25, master));
  PointIcm model = PointIcm::Constant(graph, 0.3);

  const std::size_t kTrials = 24;
  std::vector<Rng> rngs;
  for (std::size_t i = 0; i < kTrials; ++i) rngs.push_back(master.Split());

  auto run = [&](bool parallel) {
    std::vector<double> estimates(kTrials, 0.0);
    auto body = [&](std::size_t i) {
      Rng local = rngs[i];  // value copy: identical stream per index
      MhOptions opt;
      opt.burn_in = 200;
      opt.thinning = 2;
      auto sampler = MhSampler::Create(model, {}, opt, local);
      estimates[i] = sampler->EstimateFlowProbability(0, 9, 500);
    };
    if (parallel) {
      ThreadPool pool(4);
      ParallelFor(pool, kTrials, body);
    } else {
      for (std::size_t i = 0; i < kTrials; ++i) body(i);
    }
    return estimates;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ThreadPool, FewerTasksThanThreads) {
  // Idle workers must neither deadlock the batch nor duplicate work.
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, TaskExceptionPropagatesToWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotAbortSiblingTasks) {
  // The failing task must not take the batch down with it: every other
  // task still runs before Wait() rethrows.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter, i] {
      if (i == 5) throw std::runtime_error("boom");
      ++counter;
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(counter.load(), 19);
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("first batch"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error was consumed; the next batch is clean.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, OnlyFirstExceptionIsReported) {
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("every task throws"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // later exceptions were dropped, not queued up
}

TEST(ParallelFor, FewerIndicesThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(pool, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, BodyExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(pool, 100,
                  [](std::size_t i) {
                    if (i == 42) throw std::invalid_argument("index 42");
                  }),
      std::invalid_argument);
  // The pool survives for the next loop.
  std::atomic<int> counter{0};
  ParallelFor(pool, 10, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, AccumulatesCorrectSum) {
  ThreadPool pool(8);
  std::vector<long> partial(1000, 0);
  ParallelFor(pool, partial.size(), [&partial](std::size_t i) {
    partial[i] = static_cast<long>(i);
  });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), 0L),
            999L * 1000L / 2);
}

}  // namespace
}  // namespace infoflow
