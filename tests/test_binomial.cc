#include "stats/binomial.h"

#include <gtest/gtest.h>

#include <cmath>

namespace infoflow {
namespace {

TEST(Binomial, PmfSmallExact) {
  // Binomial(3, 0.5): 1/8, 3/8, 3/8, 1/8.
  EXPECT_NEAR(BinomialPmf(3, 0, 0.5), 0.125, 1e-12);
  EXPECT_NEAR(BinomialPmf(3, 1, 0.5), 0.375, 1e-12);
  EXPECT_NEAR(BinomialPmf(3, 2, 0.5), 0.375, 1e-12);
  EXPECT_NEAR(BinomialPmf(3, 3, 0.5), 0.125, 1e-12);
}

TEST(Binomial, PmfSumsToOne) {
  double total = 0.0;
  for (std::uint64_t k = 0; k <= 20; ++k) total += BinomialPmf(20, k, 0.37);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Binomial, DegenerateP) {
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 2, 1.0), 0.0);
}

TEST(Binomial, LogPmfFiniteAndConsistent) {
  EXPECT_NEAR(std::exp(BinomialLogPmf(100, 50, 0.5)),
              BinomialPmf(100, 50, 0.5), 1e-15);
  EXPECT_TRUE(std::isinf(BinomialLogPmf(5, 1, 0.0)));
}

TEST(Binomial, CdfMatchesPmfSum) {
  for (std::uint64_t k = 0; k <= 12; ++k) {
    double direct = 0.0;
    for (std::uint64_t j = 0; j <= k; ++j) direct += BinomialPmf(12, j, 0.3);
    EXPECT_NEAR(BinomialCdf(12, k, 0.3), direct, 1e-10) << "k=" << k;
  }
}

TEST(Binomial, CdfBoundaries) {
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 10, 0.7), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 3, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 3, 1.0), 0.0);
}

TEST(BinomialDeath, RejectsKAboveN) {
  EXPECT_DEATH(BinomialPmf(3, 4, 0.5), "k <= n");
}

TEST(BinomialDeath, RejectsBadP) {
  EXPECT_DEATH(BinomialPmf(3, 1, 1.5), "0,1");
}

}  // namespace
}  // namespace infoflow
