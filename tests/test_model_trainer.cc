#include "learn/model_trainer.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "stats/descriptive.h"

namespace infoflow {
namespace {

// A small two-level graph: 0 -> {1, 2}, {1, 2} -> 3.
std::shared_ptr<const DirectedGraph> Diamond() {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  return std::make_shared<const DirectedGraph>(std::move(b).Build());
}

UnattributedEvidence Simulate(const PointIcm& truth, std::size_t objects,
                              Rng& rng) {
  UnattributedEvidence ev;
  for (std::size_t o = 0; o < objects; ++o) {
    const ActiveState s = truth.SampleCascade({0}, rng);
    ObjectTrace trace;
    double time = 0.0;
    for (NodeId v : s.active_nodes) {
      trace.activations.push_back({v, time});
      time += 1.0;
    }
    ev.traces.push_back(std::move(trace));
  }
  return ev;
}

TEST(ModelTrainer, MethodNames) {
  EXPECT_STREQ(UnattributedMethodName(UnattributedMethod::kJointBayes),
               "joint-bayes");
  EXPECT_STREQ(UnattributedMethodName(UnattributedMethod::kGoyal), "goyal");
  EXPECT_STREQ(UnattributedMethodName(UnattributedMethod::kSaitoEm),
               "saito-em");
  EXPECT_STREQ(UnattributedMethodName(UnattributedMethod::kFiltered),
               "filtered");
}

TEST(ModelTrainer, RejectsInvalidEvidence) {
  auto g = Diamond();
  UnattributedEvidence bad;
  bad.traces.push_back(ObjectTrace{{{9, 1.0}}});
  UnattributedTrainOptions opt;
  Rng rng(1);
  EXPECT_FALSE(TrainUnattributedModel(g, bad, opt, rng).ok());
}

TEST(ModelTrainer, NoEvidenceGivesDefaultMeans) {
  auto g = Diamond();
  UnattributedTrainOptions opt;
  opt.no_evidence_mean = 0.25;
  Rng rng(2);
  auto model = TrainUnattributedModel(g, {}, opt, rng);
  ASSERT_TRUE(model.ok());
  for (double m : model->mean) EXPECT_DOUBLE_EQ(m, 0.25);
}

TEST(ModelTrainer, AllMethodsProduceProbabilities) {
  auto g = Diamond();
  PointIcm truth(g, {0.8, 0.3, 0.6, 0.4});
  Rng sim_rng(3);
  const auto ev = Simulate(truth, 300, sim_rng);
  for (auto method :
       {UnattributedMethod::kJointBayes, UnattributedMethod::kGoyal,
        UnattributedMethod::kSaitoEm, UnattributedMethod::kFiltered}) {
    UnattributedTrainOptions opt;
    opt.method = method;
    opt.joint_bayes.num_samples = 300;
    opt.joint_bayes.burn_in = 200;
    Rng rng(4);
    auto model = TrainUnattributedModel(g, ev, opt, rng);
    ASSERT_TRUE(model.ok()) << UnattributedMethodName(method);
    ASSERT_EQ(model->mean.size(), g->num_edges());
    for (double m : model->mean) {
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
  }
}

TEST(ModelTrainer, JointBayesRecoversTruthApproximately) {
  auto g = Diamond();
  PointIcm truth(g, {0.8, 0.3, 0.6, 0.4});
  Rng sim_rng(5);
  const auto ev = Simulate(truth, 2500, sim_rng);
  UnattributedTrainOptions opt;
  opt.joint_bayes.num_samples = 600;
  opt.joint_bayes.burn_in = 300;
  Rng rng(6);
  auto model = TrainUnattributedModel(g, ev, opt, rng);
  ASSERT_TRUE(model.ok());
  // The first-level edges have unambiguous single-parent evidence.
  EXPECT_NEAR(model->mean[g->FindEdge(0, 1)], 0.8, 0.07);
  EXPECT_NEAR(model->mean[g->FindEdge(0, 2)], 0.3, 0.07);
  // Second-level edges are partially ambiguous but should still be close.
  EXPECT_NEAR(model->mean[g->FindEdge(1, 3)], 0.6, 0.12);
  EXPECT_NEAR(model->mean[g->FindEdge(2, 3)], 0.4, 0.12);
}

TEST(ModelTrainer, PointAndGaussianModels) {
  auto g = Diamond();
  PointIcm truth(g, {0.8, 0.3, 0.6, 0.4});
  Rng sim_rng(7);
  const auto ev = Simulate(truth, 200, sim_rng);
  UnattributedTrainOptions opt;
  opt.joint_bayes.num_samples = 200;
  Rng rng(8);
  auto model = TrainUnattributedModel(g, ev, opt, rng);
  ASSERT_TRUE(model.ok());
  const PointIcm point = model->ToPointIcm();
  EXPECT_EQ(point.graph().num_edges(), g->num_edges());
  Rng sample_rng(9);
  const PointIcm noisy = model->SampleGaussianIcm(sample_rng);
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    EXPECT_GE(noisy.prob(e), 0.0);
    EXPECT_LE(noisy.prob(e), 1.0);
  }
}

TEST(ModelTrainer, JointBayesReportsUncertainty) {
  auto g = Diamond();
  PointIcm truth(g, {0.8, 0.3, 0.6, 0.4});
  Rng sim_rng(10);
  const auto small = Simulate(truth, 30, sim_rng);
  const auto large = Simulate(truth, 2000, sim_rng);
  UnattributedTrainOptions opt;
  opt.joint_bayes.num_samples = 400;
  Rng rng_a(11), rng_b(11);
  auto model_small = TrainUnattributedModel(g, small, opt, rng_a);
  auto model_large = TrainUnattributedModel(g, large, opt, rng_b);
  ASSERT_TRUE(model_small.ok() && model_large.ok());
  // More evidence, less posterior spread on the root edges.
  const EdgeId e01 = g->FindEdge(0, 1);
  EXPECT_GT(model_small->sd[e01], model_large->sd[e01]);
}

}  // namespace
}  // namespace infoflow
