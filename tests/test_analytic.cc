/// Tests for the analytic subsystem: the feasibility scorer's structural
/// classification, exact-enumeration pins for the message-passing estimator
/// on paths/stars/trees and a small loopy graph, the loopy fallback's
/// calibration, AnalyticImpact against SimulateImpact, the
/// BackendDispatcher's routing (auto picks analytic only on exact regimes,
/// conditioning always replays the bank), the protocol's backend field, and
/// a randomized differential suite: every analytic answer within 3×MCSE of
/// the MH + bank replay estimate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "analytic/cascade_estimator.h"
#include "analytic/feasibility.h"
#include "core/exact_flow.h"
#include "core/impact.h"
#include "graph/generators.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/sample_bank.h"
#include "util/json.h"

namespace infoflow::analytic {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

/// Path 0 → 1 → ... → n-1.
std::shared_ptr<const DirectedGraph> Path(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1).CheckOK();
  return Share(std::move(b).Build());
}

/// Star with center 0 and leaves 1..k.
std::shared_ptr<const DirectedGraph> Star(NodeId leaves) {
  GraphBuilder b(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) b.AddEdge(0, v).CheckOK();
  return Share(std::move(b).Build());
}

/// Diamond 0→1, 0→2, 1→3, 2→3: the smallest multi-path shape — loopy for
/// the tree factorization, trivially enumerable.
std::shared_ptr<const DirectedGraph> Diamond() {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  return Share(std::move(b).Build());
}

std::vector<double> RandomProbs(const DirectedGraph& g, std::uint64_t seed,
                                double lo = 0.15, double hi = 0.85) {
  Rng rng(seed);
  std::vector<double> probs(g.num_edges());
  for (double& p : probs) p = rng.Uniform(lo, hi);
  return probs;
}

// ---------------------------------------------------------- feasibility

TEST(AssessFeasibility, PathIsTreeLike) {
  auto g = Path(6);
  const NodeId sources[] = {0};
  const FeasibilityReport report = AssessFeasibility(*g, sources);
  EXPECT_TRUE(report.tree_like);
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.reachable_nodes, 6u);
  EXPECT_EQ(report.relevant_edges, 5u);
  EXPECT_EQ(report.excess_edges, 0u);
  EXPECT_DOUBLE_EQ(report.expected_error, 0.0);
}

TEST(AssessFeasibility, StarIsTreeLike) {
  auto g = Star(8);
  const NodeId sources[] = {0};
  const FeasibilityReport report = AssessFeasibility(*g, sources);
  EXPECT_TRUE(report.tree_like);
  EXPECT_EQ(report.relevant_edges, 8u);
  EXPECT_EQ(report.excess_edges, 0u);
}

TEST(AssessFeasibility, DiamondHasOneExcessEdgeButEnumerates) {
  auto g = Diamond();
  const NodeId sources[] = {0};
  const FeasibilityReport report = AssessFeasibility(*g, sources);
  EXPECT_FALSE(report.tree_like);
  EXPECT_EQ(report.excess_edges, 1u);  // node 3 owns two reachable in-edges
  EXPECT_TRUE(report.enumerable);      // 4 edges << max_enumeration_edges
  EXPECT_TRUE(report.feasible);
  EXPECT_DOUBLE_EQ(report.expected_error, 0.0);  // an exact regime applies
}

TEST(AssessFeasibility, DenseGraphIsInfeasible) {
  Rng rng(11);
  auto g = Share(UniformRandomGraph(30, 240, rng));
  const NodeId sources[] = {0};
  const FeasibilityReport report = AssessFeasibility(*g, sources);
  EXPECT_FALSE(report.tree_like);
  EXPECT_FALSE(report.enumerable);
  EXPECT_GT(report.excess_ratio, 0.25);
  EXPECT_FALSE(report.feasible);
  EXPECT_GT(report.expected_error, 0.0);
}

TEST(AssessFeasibility, EdgesIntoSourcesAreIrrelevant) {
  // 1 → 0 plus 0 → 2: the in-edge of the source can never matter.
  GraphBuilder b(3);
  b.AddEdge(1, 0).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  auto g = Share(std::move(b).Build());
  const NodeId sources[] = {0};
  const FeasibilityReport report = AssessFeasibility(*g, sources);
  EXPECT_EQ(report.reachable_nodes, 2u);  // {0, 2}; node 1 unreachable
  EXPECT_EQ(report.relevant_edges, 1u);
  EXPECT_TRUE(report.tree_like);
}

TEST(AssessFeasibility, MultiSourceForestIsTreeLike) {
  // Two disjoint paths rooted at the two sources.
  GraphBuilder b(6);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(3, 4).CheckOK();
  b.AddEdge(4, 5).CheckOK();
  auto g = Share(std::move(b).Build());
  const NodeId sources[] = {0, 3};
  const FeasibilityReport report = AssessFeasibility(*g, sources);
  EXPECT_EQ(report.reachable_sources, 2u);
  EXPECT_EQ(report.reachable_nodes, 6u);
  EXPECT_TRUE(report.tree_like);
}

// ------------------------------------------------- estimator: exact pins

TEST(ReachProbabilities, PathClosedForm) {
  auto g = Path(3);
  const std::vector<double> probs = {0.6, 0.5};
  const NodeId sources[] = {0};
  auto answer = ReachProbabilities(*g, probs, sources);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->method, AnalyticMethod::kTreeExact);
  EXPECT_DOUBLE_EQ(answer->probability[0], 1.0);
  EXPECT_NEAR(answer->probability[1], 0.6, 1e-12);
  EXPECT_NEAR(answer->probability[2], 0.3, 1e-12);
}

TEST(ReachProbabilities, StarLeavesAreIndependentEdges) {
  auto g = Star(4);
  const std::vector<double> probs = {0.1, 0.3, 0.5, 0.7};
  const NodeId sources[] = {0};
  auto answer = ReachProbabilities(*g, probs, sources);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->method, AnalyticMethod::kTreeExact);
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    // Leaf order follows edge-id order (GraphBuilder sorts by (src, dst)).
    EXPECT_NEAR(answer->probability[leaf], probs[leaf - 1], 1e-12);
  }
}

TEST(ReachProbabilities, RandomTreeMatchesEnumerationEverywhere) {
  Rng rng(5);
  auto g = Share(RandomTreeGraph(14, 3, rng));  // 13 edges: enumerable
  const std::vector<double> probs = RandomProbs(*g, 6);
  const PointIcm model(g, probs);
  const NodeId sources[] = {0};
  auto answer = ReachProbabilities(*g, probs, sources);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->method, AnalyticMethod::kTreeExact);
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    EXPECT_NEAR(answer->probability[v], ExactFlowByEnumeration(model, 0, v),
                1e-9)
        << "node " << v;
  }
}

TEST(ReachProbabilities, DiamondAnswersExactlyByEnumeration) {
  auto g = Diamond();
  const std::vector<double> probs = {0.5, 0.4, 0.7, 0.6};
  const PointIcm model(g, probs);
  const NodeId sources[] = {0};
  auto answer = ReachProbabilities(*g, probs, sources);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->method, AnalyticMethod::kEnumeration);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_NEAR(answer->probability[v], ExactFlowByEnumeration(model, 0, v),
                1e-9);
  }
}

TEST(ReachProbabilities, LoopyMarginalsExactWhenPathsShareOnlyTheSource) {
  // Forcing the loopy regime on the diamond (enumeration budget 0): the two
  // 0→3 paths share no edge, so the independence approximation is exact.
  auto g = Diamond();
  const std::vector<double> probs = {0.5, 0.4, 0.7, 0.6};
  const PointIcm model(g, probs);
  AnalyticOptions options;
  options.feasibility.max_enumeration_edges = 0;
  const NodeId sources[] = {0};
  auto answer = ReachProbabilities(*g, probs, sources, options);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->method, AnalyticMethod::kLoopy);
  EXPECT_GT(answer->report.expected_error, 0.0);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_NEAR(answer->probability[v], ExactFlowByEnumeration(model, 0, v),
                1e-9);
  }
}

TEST(ReachProbabilities, RequireExactRefusesTheLoopyRegime) {
  auto g = Diamond();
  const std::vector<double> probs = {0.5, 0.4, 0.7, 0.6};
  AnalyticOptions options;
  options.feasibility.max_enumeration_edges = 0;
  options.require_exact = true;
  const NodeId sources[] = {0};
  auto answer = ReachProbabilities(*g, probs, sources, options);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ReachProbabilities, DenseGraphRefusedWithDescriptiveStatus) {
  Rng rng(12);
  auto g = Share(UniformRandomGraph(30, 240, rng));
  const std::vector<double> probs = RandomProbs(*g, 13);
  const NodeId sources[] = {0};
  auto answer = ReachProbabilities(*g, probs, sources);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(answer.status().message().find("tree-like"), std::string::npos)
      << answer.status();
}

TEST(ReachProbabilities, RejectsOutOfRangeSourceAndProbSpanMismatch) {
  auto g = Path(3);
  const std::vector<double> probs = {0.5, 0.5};
  const NodeId bad_source[] = {7};
  EXPECT_FALSE(ReachProbabilities(*g, probs, bad_source).ok());
  const std::vector<double> short_probs = {0.5};
  const NodeId sources[] = {0};
  EXPECT_FALSE(ReachProbabilities(*g, short_probs, sources).ok());
  EXPECT_FALSE(
      ReachProbabilities(*g, probs, std::span<const NodeId>{}).ok());
}

// ----------------------------------------------------- cascade-size PMFs

TEST(CascadeSizePmf, PathPmfIsTelescoped) {
  auto g = Path(3);
  const std::vector<double> probs = {0.6, 0.5};
  auto pmf = CascadeSizePmf(*g, probs, 0);
  ASSERT_TRUE(pmf.ok()) << pmf.status();
  EXPECT_EQ(pmf->method, AnalyticMethod::kTreeExact);
  ASSERT_EQ(pmf->impact.size(), 3u);
  EXPECT_NEAR(pmf->impact[0], 0.4, 1e-12);         // edge 0 closed
  EXPECT_NEAR(pmf->impact[1], 0.6 * 0.5, 1e-12);   // open, then closed
  EXPECT_NEAR(pmf->impact[2], 0.6 * 0.5, 1e-12);   // both open
  EXPECT_NEAR(pmf->Mean(), 0.6 + 0.6 * 0.5, 1e-12);
}

TEST(CascadeSizePmf, StarPmfIsBinomial) {
  auto g = Star(3);
  const std::vector<double> probs = {0.5, 0.5, 0.5};
  auto pmf = CascadeSizePmf(*g, probs, 0);
  ASSERT_TRUE(pmf.ok()) << pmf.status();
  ASSERT_EQ(pmf->impact.size(), 4u);
  const double expected[] = {0.125, 0.375, 0.375, 0.125};
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(pmf->impact[k], expected[k], 1e-12) << "k=" << k;
  }
}

TEST(CascadeSizePmf, SinkSourceIsPointMassAtZero) {
  auto g = Path(3);
  const std::vector<double> probs = {0.6, 0.5};
  auto pmf = CascadeSizePmf(*g, probs, 2);
  ASSERT_TRUE(pmf.ok()) << pmf.status();
  ASSERT_EQ(pmf->impact.size(), 1u);
  EXPECT_DOUBLE_EQ(pmf->impact[0], 1.0);
  EXPECT_DOUBLE_EQ(pmf->Mean(), 0.0);
}

TEST(CascadeSizePmf, DiamondEnumerationSumsToOneAndMatchesMeanIdentity) {
  // Exact enumeration regime: the PMF mean must equal Σ_v Pr[0 ⤳ v] over
  // non-source nodes (linearity of expectation), and the PMF sums to 1.
  auto g = Diamond();
  const std::vector<double> probs = {0.5, 0.4, 0.7, 0.6};
  const PointIcm model(g, probs);
  auto pmf = CascadeSizePmf(*g, probs, 0);
  ASSERT_TRUE(pmf.ok()) << pmf.status();
  EXPECT_EQ(pmf->method, AnalyticMethod::kEnumeration);
  double sum = 0.0;
  for (double p : pmf->impact) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  double mean_by_marginals = 0.0;
  for (NodeId v = 1; v < 4; ++v) {
    mean_by_marginals += ExactFlowByEnumeration(model, 0, v);
  }
  EXPECT_NEAR(pmf->Mean(), mean_by_marginals, 1e-9);
}

TEST(CascadeSizePmf, LoopyFallbackMeanWithinItsErrorBudget) {
  // The marginal-matched spanning-tree convolution reproduces the fixpoint
  // mean up to weight clamping (node 3's marginal exceeds either parent's,
  // so its tree edge caps at 1); the residual must stay far inside the
  // report's expected_error budget, relative to the mean.
  auto g = Diamond();
  const std::vector<double> probs = {0.5, 0.4, 0.7, 0.6};
  const PointIcm model(g, probs);
  AnalyticOptions options;
  options.feasibility.max_enumeration_edges = 0;
  auto pmf = CascadeSizePmf(*g, probs, 0, options);
  ASSERT_TRUE(pmf.ok()) << pmf.status();
  EXPECT_EQ(pmf->method, AnalyticMethod::kLoopy);
  double mean_by_marginals = 0.0;
  for (NodeId v = 1; v < 4; ++v) {
    mean_by_marginals += ExactFlowByEnumeration(model, 0, v);
  }
  double sum = 0.0;
  for (double p : pmf->impact) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(pmf->report.expected_error, 0.0);
  EXPECT_NEAR(pmf->Mean(), mean_by_marginals,
              pmf->report.expected_error * mean_by_marginals);
}

// --------------------------------------------- AnalyticImpact (core/)

TEST(AnalyticImpact, TreeMatchesSimulateImpactWithinSamplingError) {
  Rng rng(31);
  auto g = Share(RandomTreeGraph(24, 3, rng));
  const PointIcm model(g, RandomProbs(*g, 32));
  auto pmf = AnalyticImpact(model, 0);
  ASSERT_TRUE(pmf.ok()) << pmf.status();
  EXPECT_EQ(pmf->method, AnalyticMethod::kTreeExact);

  const std::size_t cascades = 60000;
  Rng sim_rng(33);
  const ImpactDistribution sim = SimulateImpact(model, 0, cascades, sim_rng);
  EXPECT_NEAR(pmf->Mean(), sim.Mean(), 0.05);
  // Every PMF entry within 5 binomial standard errors of the simulation.
  for (std::size_t k = 0; k < pmf->probs.size(); ++k) {
    const double freq = k < sim.counts.size()
                            ? static_cast<double>(sim.counts[k]) /
                                  static_cast<double>(cascades)
                            : 0.0;
    const double p = pmf->probs[k];
    const double se = std::sqrt(std::max(p * (1 - p), 1e-9) /
                                static_cast<double>(cascades));
    EXPECT_NEAR(freq, p, 5 * se + 1e-4) << "impact " << k;
  }
}

TEST(AnalyticImpact, DenseModelRefused) {
  Rng rng(41);
  auto g = Share(UniformRandomGraph(30, 240, rng));
  const PointIcm model(g, RandomProbs(*g, 42));
  auto pmf = AnalyticImpact(model, 0);
  ASSERT_FALSE(pmf.ok());
  EXPECT_EQ(pmf.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace infoflow::analytic

// ------------------------------------------------------- dispatcher tests

namespace infoflow::serve {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

PointIcm TreeModel(std::uint64_t seed, NodeId nodes) {
  Rng rng(seed);
  auto g = Share(RandomTreeGraph(nodes, 3, rng));
  std::vector<double> probs(g->num_edges());
  // Kept away from 0 so deep sinks are not vanishingly rare events — a
  // rare indicator's sample MCSE underestimates chain autocorrelation.
  for (double& p : probs) p = rng.Uniform(0.35, 0.9);
  return PointIcm(g, probs);
}

PointIcm DenseModel(std::uint64_t seed, NodeId nodes, EdgeId edges) {
  Rng rng(seed);
  auto g = Share(UniformRandomGraph(nodes, edges, rng));
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.Uniform(0.1, 0.9);
  return PointIcm(g, probs);
}

SampleBank MakeBank(const PointIcm& model, std::size_t states,
                    std::uint64_t seed = 21, std::size_t thinning = 4) {
  BankOptions options;
  options.num_states = states;
  options.chain.num_chains = 4;
  options.chain.mh.burn_in = 1200;
  options.chain.mh.thinning = thinning;
  auto bank = SampleBank::Create(model, options, seed);
  EXPECT_TRUE(bank.ok()) << bank.status();
  return std::move(bank).ValueOrDie();
}

QueryEngine MakeEngine(const SampleBank& bank,
                       QueryEngineOptions options = {}) {
  auto engine = QueryEngine::Create(bank.graph_ptr(), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).ValueOrDie();
}

QueryRequest FlowQuery(NodeId source, NodeId sink,
                       std::optional<QueryBackend> backend = {}) {
  QueryRequest request;
  request.kind = QueryKind::kFlow;
  request.sources = {source};
  request.sinks = {sink};
  request.backend = backend;
  return request;
}

TEST(ParseQueryBackend, RoundTripsAllNamesAndRejectsJunk) {
  for (QueryBackend backend : {QueryBackend::kAuto, QueryBackend::kAnalytic,
                               QueryBackend::kBank}) {
    auto parsed = ParseQueryBackend(QueryBackendName(backend));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(ParseQueryBackend("montecarlo").ok());
  EXPECT_FALSE(ParseQueryBackend("").ok());
}

TEST(BackendDispatcher, AutoPicksAnalyticOnTreeAndStampsTheResult) {
  const PointIcm model = TreeModel(51, 24);
  SampleBank bank = MakeBank(model, 256);
  QueryEngine engine = MakeEngine(bank);
  const auto generation = bank.Acquire();

  const std::vector<QueryRequest> requests = {
      FlowQuery(0, 5, QueryBackend::kAuto)};
  const auto results = engine.AnswerBatch(*generation, requests);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status;
  EXPECT_EQ(results[0].backend, QueryBackend::kAnalytic);
  EXPECT_EQ(results[0].analytic_method, analytic::AnalyticMethod::kTreeExact);
  EXPECT_EQ(results[0].effective_rows, 0u);
  EXPECT_EQ(results[0].total_rows, generation->num_rows());
  EXPECT_EQ(results[0].generation, generation->id());
  ASSERT_EQ(results[0].estimates.size(), 1u);
  EXPECT_EQ(results[0].estimates[0].sink, 5u);
  EXPECT_DOUBLE_EQ(results[0].estimates[0].diagnostics.mean,
                   results[0].estimates[0].value);
}

TEST(BackendDispatcher, AutoFallsBackToBankOnDenseGraphs) {
  const PointIcm model = DenseModel(52, 24, 160);
  SampleBank bank = MakeBank(model, 256);
  QueryEngine engine = MakeEngine(bank);
  const auto generation = bank.Acquire();

  const auto results = engine.AnswerBatch(
      *generation, {FlowQuery(0, 5, QueryBackend::kAuto)});
  ASSERT_TRUE(results[0].status.ok()) << results[0].status;
  EXPECT_EQ(results[0].backend, QueryBackend::kBank);
  EXPECT_EQ(results[0].effective_rows, generation->num_rows());
}

TEST(BackendDispatcher, ExplicitAnalyticFailsDescriptivelyOnDenseGraphs) {
  const PointIcm model = DenseModel(53, 24, 160);
  SampleBank bank = MakeBank(model, 256);
  QueryEngine engine = MakeEngine(bank);
  const auto generation = bank.Acquire();

  const auto results = engine.AnswerBatch(
      *generation, {FlowQuery(0, 5, QueryBackend::kAnalytic)});
  ASSERT_FALSE(results[0].status.ok());
  EXPECT_EQ(results[0].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(results[0].status.message().find("tree-like"), std::string::npos)
      << results[0].status;
}

TEST(BackendDispatcher, ConditioningAlwaysReplaysTheBank) {
  const PointIcm model = TreeModel(54, 24);
  SampleBank bank = MakeBank(model, 256);
  QueryEngine engine = MakeEngine(bank);
  const auto generation = bank.Acquire();
  const Edge& e = model.graph().edge(0);

  QueryRequest conditioned = FlowQuery(0, 5, QueryBackend::kAuto);
  conditioned.given.push_back({e.src, e.dst, true});
  auto results = engine.AnswerBatch(*generation, {conditioned});
  ASSERT_TRUE(results[0].status.ok()) << results[0].status;
  EXPECT_EQ(results[0].backend, QueryBackend::kBank);

  conditioned.backend = QueryBackend::kAnalytic;
  results = engine.AnswerBatch(*generation, {conditioned});
  ASSERT_FALSE(results[0].status.ok());
  EXPECT_EQ(results[0].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(results[0].status.message().find("bank"), std::string::npos);
}

TEST(BackendDispatcher, JointQueriesAlwaysReplayTheBank) {
  const PointIcm model = TreeModel(55, 24);
  SampleBank bank = MakeBank(model, 256);
  QueryEngine engine = MakeEngine(bank);
  const auto generation = bank.Acquire();
  const Edge& e = model.graph().edge(0);

  QueryRequest joint;
  joint.kind = QueryKind::kJoint;
  joint.flows.push_back({e.src, e.dst, true});
  joint.backend = QueryBackend::kAuto;
  const auto results = engine.AnswerBatch(*generation, {joint});
  ASSERT_TRUE(results[0].status.ok()) << results[0].status;
  EXPECT_EQ(results[0].backend, QueryBackend::kBank);
}

TEST(BackendDispatcher, EngineDefaultAppliesWhenRequestCarriesNoBackend) {
  const PointIcm model = TreeModel(56, 24);
  SampleBank bank = MakeBank(model, 256);
  QueryEngineOptions options;
  options.default_backend = QueryBackend::kAuto;
  QueryEngine engine = MakeEngine(bank, options);
  const auto generation = bank.Acquire();

  // No per-request backend → the engine default (auto → analytic on a
  // tree); an explicit bank request still overrides it.
  auto results = engine.AnswerBatch(
      *generation, {FlowQuery(0, 5), FlowQuery(0, 5, QueryBackend::kBank)});
  ASSERT_TRUE(results[0].status.ok());
  ASSERT_TRUE(results[1].status.ok());
  EXPECT_EQ(results[0].backend, QueryBackend::kAnalytic);
  EXPECT_EQ(results[1].backend, QueryBackend::kBank);
  EXPECT_NEAR(results[0].estimates[0].value, results[1].estimates[0].value,
              3 * results[1].estimates[0].diagnostics.mcse + 1e-6);
}

TEST(BackendDispatcher, MixedBatchKeepsPositionalAlignment) {
  const PointIcm model = TreeModel(57, 24);
  SampleBank bank = MakeBank(model, 256);
  QueryEngine engine = MakeEngine(bank);
  const auto generation = bank.Acquire();

  std::vector<QueryRequest> requests;
  for (NodeId sink = 1; sink <= 6; ++sink) {
    requests.push_back(FlowQuery(0, sink,
                                 sink % 2 == 0 ? QueryBackend::kAnalytic
                                               : QueryBackend::kBank));
    requests.back().id = std::to_string(sink);
  }
  const auto results = engine.AnswerBatch(*generation, requests);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << results[i].status;
    const NodeId sink = requests[i].sinks[0];
    EXPECT_EQ(results[i].backend, sink % 2 == 0 ? QueryBackend::kAnalytic
                                                : QueryBackend::kBank);
    EXPECT_EQ(results[i].estimates[0].sink, sink);
  }
}

TEST(BackendDispatcher, CommunityQueriesTakeTheAnalyticPath) {
  const PointIcm model = TreeModel(58, 24);
  SampleBank bank = MakeBank(model, 256);
  QueryEngine engine = MakeEngine(bank);
  const auto generation = bank.Acquire();

  QueryRequest community;
  community.kind = QueryKind::kCommunity;
  community.sources = {0};
  community.sinks = {2, 5, 9};
  community.backend = QueryBackend::kAuto;
  const auto analytic_results = engine.AnswerBatch(*generation, {community});
  ASSERT_TRUE(analytic_results[0].status.ok()) << analytic_results[0].status;
  EXPECT_EQ(analytic_results[0].backend, QueryBackend::kAnalytic);
  ASSERT_EQ(analytic_results[0].estimates.size(), 3u);

  community.backend = QueryBackend::kBank;
  const auto bank_results = engine.AnswerBatch(*generation, {community});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(analytic_results[0].estimates[i].sink,
              bank_results[0].estimates[i].sink);
    EXPECT_NEAR(analytic_results[0].estimates[i].value,
                bank_results[0].estimates[i].value,
                3 * bank_results[0].estimates[i].diagnostics.mcse + 1e-6);
  }
}

TEST(BackendDispatcher, InvalidRequestsStillFailThroughTheBankPath) {
  const PointIcm model = TreeModel(59, 24);
  SampleBank bank = MakeBank(model, 256);
  QueryEngine engine = MakeEngine(bank);
  const auto generation = bank.Acquire();

  // Out-of-range sink: the canonical validation error, whichever backend.
  const auto results = engine.AnswerBatch(
      *generation, {FlowQuery(0, 9999, QueryBackend::kAnalytic)});
  ASSERT_FALSE(results[0].status.ok());
  EXPECT_EQ(results[0].status.code(), StatusCode::kOutOfRange);
}

// --------------------------------------------- randomized differential

TEST(BackendDifferential, AnalyticWithin3McseOfBankReplayOnTrees) {
  // The ISSUE's acceptance bar: on tree-like models every analytic answer
  // agrees with the MH + bank replay estimate within 3×MCSE (plus a hair
  // for MCSE's own noise).
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    const PointIcm model = TreeModel(100 + trial, 30);
    SampleBank bank = MakeBank(model, 1024, 1000 + trial, /*thinning=*/16);
    QueryEngine engine = MakeEngine(bank);
    const auto generation = bank.Acquire();
    Rng pick(200 + trial);

    std::vector<QueryRequest> requests;
    for (int q = 0; q < 8; ++q) {
      const auto sink = static_cast<NodeId>(
          1 + pick.NextBounded(model.graph().num_nodes() - 1));
      requests.push_back(FlowQuery(0, sink, QueryBackend::kAnalytic));
      requests.push_back(FlowQuery(0, sink, QueryBackend::kBank));
    }
    const auto results = engine.AnswerBatch(*generation, requests);
    for (std::size_t i = 0; i < results.size(); i += 2) {
      ASSERT_TRUE(results[i].status.ok()) << results[i].status;
      ASSERT_TRUE(results[i + 1].status.ok()) << results[i + 1].status;
      EXPECT_EQ(results[i].backend, QueryBackend::kAnalytic);
      EXPECT_EQ(results[i + 1].backend, QueryBackend::kBank);
      const double exact = results[i].estimates[0].value;
      const double replay = results[i + 1].estimates[0].value;
      const double mcse = results[i + 1].estimates[0].diagnostics.mcse;
      EXPECT_NEAR(replay, exact, 3 * mcse + 0.01)
          << "trial " << trial << " sink " << requests[i].sinks[0];
    }
  }
}

TEST(BackendDifferential, LoopyFallbackWithinItsReportedErrorBudget) {
  // A tree plus a few shortcut edges stays under max_excess_ratio: the
  // explicit analytic backend answers loopily, and the answer must agree
  // with bank replay within 3×MCSE plus the report's expected_error.
  Rng rng(71);
  DirectedGraph tree = RandomTreeGraph(30, 3, rng);
  GraphBuilder b(30);
  for (EdgeId e = 0; e < tree.num_edges(); ++e) {
    b.AddEdge(tree.edge(e).src, tree.edge(e).dst).CheckOK();
  }
  std::size_t added = 0;
  while (added < 5) {
    const auto u = static_cast<NodeId>(rng.NextBounded(30));
    const auto v = static_cast<NodeId>(rng.NextBounded(30));
    if (u == v) continue;
    if (b.AddEdgeIfAbsent(u, v)) ++added;
  }
  auto g = Share(std::move(b).Build());
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.Uniform(0.1, 0.5);
  const PointIcm model(g, probs);

  SampleBank bank = MakeBank(model, 512, 72);
  QueryEngine engine = MakeEngine(bank);
  const auto generation = bank.Acquire();

  std::vector<QueryRequest> requests;
  for (NodeId sink = 1; sink < 30; sink += 4) {
    requests.push_back(FlowQuery(0, sink, QueryBackend::kAnalytic));
    requests.push_back(FlowQuery(0, sink, QueryBackend::kBank));
  }
  const auto results = engine.AnswerBatch(*generation, requests);
  for (std::size_t i = 0; i < results.size(); i += 2) {
    if (!results[i].status.ok()) {
      // A sink whose subgraph is denser than the loopy budget: refusal is
      // the documented contract, not a differential failure.
      EXPECT_EQ(results[i].status.code(), StatusCode::kFailedPrecondition);
      continue;
    }
    ASSERT_TRUE(results[i + 1].status.ok()) << results[i + 1].status;
    const double analytic_value = results[i].estimates[0].value;
    const double replay = results[i + 1].estimates[0].value;
    const double mcse = results[i + 1].estimates[0].diagnostics.mcse;
    EXPECT_NEAR(replay, analytic_value, 3 * mcse + 0.25 + 0.02)
        << "sink " << requests[i].sinks[0];
  }
}

// ----------------------------------------------------- protocol: backend

TEST(ProtocolBackend, RequestFieldParsesAndJunkIsRejected) {
  auto request = ParseRequestLine(
      R"({"id":"q1","kind":"flow","sources":[0],"sinks":[3],)"
      R"("backend":"analytic"})");
  ASSERT_TRUE(request.ok()) << request.status();
  ASSERT_TRUE(request->backend.has_value());
  EXPECT_EQ(*request->backend, QueryBackend::kAnalytic);

  auto absent = ParseRequestLine(
      R"({"id":"q2","kind":"flow","sources":[0],"sinks":[3]})");
  ASSERT_TRUE(absent.ok()) << absent.status();
  EXPECT_FALSE(absent->backend.has_value());

  EXPECT_FALSE(ParseRequestLine(
                   R"({"kind":"flow","sources":[0],"sinks":[3],)"
                   R"("backend":"montecarlo"})")
                   .ok());
  EXPECT_FALSE(ParseRequestLine(
                   R"({"kind":"flow","sources":[0],"sinks":[3],)"
                   R"("backend":7})")
                   .ok());
}

TEST(ProtocolBackend, ResponseCarriesTheAnsweringBackend) {
  const PointIcm model = TreeModel(61, 24);
  SampleBank bank = MakeBank(model, 256);
  QueryEngine engine = MakeEngine(bank);
  const auto generation = bank.Acquire();

  const std::vector<QueryRequest> requests = {
      FlowQuery(0, 5, QueryBackend::kAuto), FlowQuery(0, 5)};
  const auto results = engine.AnswerBatch(*generation, requests);
  for (std::size_t i = 0; i < 2; ++i) {
    const std::string line = SerializeResult(requests[i], results[i]);
    auto json = ParseJson(line);
    ASSERT_TRUE(json.ok()) << json.status();
    const JsonValue* backend = json->Find("backend");
    ASSERT_NE(backend, nullptr) << line;
    EXPECT_EQ(backend->AsString(), QueryBackendName(results[i].backend));
  }
}

}  // namespace
}  // namespace infoflow::serve
