#include "core/mh_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/exact_flow.h"
#include "graph/generators.h"
#include "stats/descriptive.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

PointIcm PaperTriangle(double p12, double p13, double p23) {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  auto g = Share(std::move(b).Build());
  std::vector<double> probs(3);
  probs[g->FindEdge(0, 1)] = p12;
  probs[g->FindEdge(0, 2)] = p13;
  probs[g->FindEdge(1, 2)] = p23;
  return PointIcm(g, probs);
}

std::uint64_t StateKey(const PseudoState& x) {
  std::uint64_t key = 0;
  for (std::size_t e = 0; e < x.size(); ++e) {
    if (x[e]) key |= 1ULL << e;
  }
  return key;
}

TEST(MhSampler, CreateRejectsInvalidConditions) {
  PointIcm icm = PaperTriangle(0.5, 0.5, 0.5);
  auto bad = MhSampler::Create(icm, {{0, 9, true}}, MhOptions{}, Rng(1));
  EXPECT_FALSE(bad.ok());
}

TEST(MhSampler, CreateRejectsUnsatisfiableCondition) {
  // 2 has no outgoing path to 0 at all.
  PointIcm icm = PaperTriangle(0.5, 0.5, 0.5);
  auto bad = MhSampler::Create(icm, {{2, 0, true}}, MhOptions{}, Rng(1));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

// The central correctness property: the chain's stationary distribution over
// pseudo-states equals the product-Bernoulli distribution of Eq. 3.
TEST(MhSampler, StationaryDistributionMatchesExact) {
  PointIcm icm = PaperTriangle(0.35, 0.7, 0.55);
  MhOptions opt;
  opt.burn_in = 2000;
  opt.thinning = 3;
  auto sampler = MhSampler::Create(icm, {}, opt, Rng(42));
  ASSERT_TRUE(sampler.ok());
  std::map<std::uint64_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[StateKey(sampler->NextSample())];
  double total_variation = 0.0;
  for (std::uint64_t bits = 0; bits < 8; ++bits) {
    PseudoState x(3);
    for (std::size_t e = 0; e < 3; ++e) x[e] = (bits >> e) & 1 ? 1 : 0;
    const double expected = std::exp(icm.LogPseudoStateProb(x));
    const double observed = static_cast<double>(counts[bits]) / n;
    total_variation += 0.5 * std::fabs(expected - observed);
  }
  EXPECT_LT(total_variation, 0.02);
}

TEST(MhSampler, ConditionalStationaryDistributionMatchesExact) {
  PointIcm icm = PaperTriangle(0.35, 0.7, 0.55);
  const FlowConditions cond{{0, 1, true}, {1, 2, false}};
  MhOptions opt;
  opt.burn_in = 2000;
  opt.thinning = 4;
  auto sampler = MhSampler::Create(icm, cond, opt, Rng(43));
  ASSERT_TRUE(sampler.ok());
  // Exact conditional distribution by enumeration.
  ReachabilityWorkspace ws(icm.graph());
  std::map<std::uint64_t, double> exact;
  double z = 0.0;
  for (std::uint64_t bits = 0; bits < 8; ++bits) {
    PseudoState x(3);
    for (std::size_t e = 0; e < 3; ++e) x[e] = (bits >> e) & 1 ? 1 : 0;
    if (!SatisfiesConditions(icm.graph(), x, cond, ws)) continue;
    const double p = std::exp(icm.LogPseudoStateProb(x));
    exact[bits] = p;
    z += p;
  }
  std::map<std::uint64_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const PseudoState& x = sampler->NextSample();
    ASSERT_TRUE(SatisfiesConditions(icm.graph(), x, cond, ws))
        << "chain left the admissible set";
    ++counts[StateKey(x)];
  }
  double total_variation = 0.0;
  for (std::uint64_t bits = 0; bits < 8; ++bits) {
    const double expected = exact.contains(bits) ? exact[bits] / z : 0.0;
    const double observed = static_cast<double>(counts[bits]) / n;
    total_variation += 0.5 * std::fabs(expected - observed);
  }
  EXPECT_LT(total_variation, 0.02);
}

TEST(MhSampler, FlowEstimateMatchesExact) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  MhOptions opt;
  opt.burn_in = 1000;
  opt.thinning = 2;
  auto sampler = MhSampler::Create(icm, {}, opt, Rng(44));
  ASSERT_TRUE(sampler.ok());
  const double estimate = sampler->EstimateFlowProbability(0, 2, 40000);
  EXPECT_NEAR(estimate, ExactFlowByEnumeration(icm, 0, 2), 0.015);
}

TEST(MhSampler, ConditionalFlowEstimateMatchesExact) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  const FlowConditions cond{{0, 1, true}};
  MhOptions opt;
  opt.burn_in = 1000;
  opt.thinning = 3;
  auto sampler = MhSampler::Create(icm, cond, opt, Rng(45));
  ASSERT_TRUE(sampler.ok());
  const double estimate = sampler->EstimateFlowProbability(0, 2, 40000);
  const double exact =
      ExactConditionalFlowByEnumeration(icm, 0, 2, cond).ValueOrDie();
  EXPECT_NEAR(estimate, exact, 0.015);
}

TEST(MhSampler, CommunityFlowMatchesPerSinkEstimates) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  MhOptions opt;
  opt.burn_in = 500;
  opt.thinning = 2;
  auto sampler = MhSampler::Create(icm, {}, opt, Rng(46));
  ASSERT_TRUE(sampler.ok());
  const auto flows = sampler->EstimateCommunityFlow(0, {1, 2}, 40000);
  EXPECT_NEAR(flows[0], ExactFlowByEnumeration(icm, 0, 1), 0.015);
  EXPECT_NEAR(flows[1], ExactFlowByEnumeration(icm, 0, 2), 0.015);
}

TEST(MhSampler, JointFlowMatchesExact) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  MhOptions opt;
  opt.burn_in = 500;
  opt.thinning = 2;
  auto sampler = MhSampler::Create(icm, {}, opt, Rng(47));
  ASSERT_TRUE(sampler.ok());
  const FlowConditions joint{{0, 1, true}, {0, 2, true}};
  const double estimate = sampler->EstimateJointFlowProbability(joint, 40000);
  EXPECT_NEAR(estimate, ExactJointFlowByEnumeration(icm, joint), 0.015);
}

TEST(MhSampler, DispersionMatchesExpectedSpread) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  MhOptions opt;
  opt.burn_in = 500;
  opt.thinning = 2;
  auto sampler = MhSampler::Create(icm, {}, opt, Rng(48));
  ASSERT_TRUE(sampler.ok());
  const auto counts = sampler->SampleDispersion(0, 40000);
  RunningStats stats;
  for (auto c : counts) stats.Add(static_cast<double>(c));
  const double expected_mean = ExactFlowByEnumeration(icm, 0, 1) +
                               ExactFlowByEnumeration(icm, 0, 2);
  EXPECT_NEAR(stats.Mean(), expected_mean, 0.02);
}

TEST(MhSampler, FrozenChainWithDeterministicEdges) {
  GraphBuilder b(2);
  b.AddEdge(0, 1).CheckOK();
  PointIcm icm(Share(std::move(b).Build()), {1.0});
  auto sampler = MhSampler::Create(icm, {}, MhOptions{}, Rng(49));
  ASSERT_TRUE(sampler.ok());
  EXPECT_FALSE(sampler->Step());  // nothing can flip
  EXPECT_DOUBLE_EQ(sampler->EstimateFlowProbability(0, 1, 100), 1.0);
}

TEST(MhSampler, NormalizerTracksFenwickTotalExactly) {
  PointIcm icm = PaperTriangle(0.2, 0.8, 0.45);
  auto sampler = MhSampler::Create(icm, {}, MhOptions{}, Rng(50));
  ASSERT_TRUE(sampler.ok());
  for (int i = 0; i < 2000; ++i) {
    sampler->Step();
    // Recompute Z from the state directly.
    double z = 0.0;
    for (EdgeId e = 0; e < 3; ++e) {
      z += sampler->state()[e] ? 1.0 - icm.prob(e) : icm.prob(e);
    }
    ASSERT_NEAR(sampler->proposal_normalizer(), z, 1e-9);
  }
}

TEST(MhSampler, AcceptanceDiagnosticsAdvance) {
  PointIcm icm = PaperTriangle(0.5, 0.5, 0.5);
  auto sampler = MhSampler::Create(icm, {}, MhOptions{}, Rng(51));
  ASSERT_TRUE(sampler.ok());
  for (int i = 0; i < 100; ++i) sampler->Step();
  EXPECT_EQ(sampler->steps_taken(), 100u);
  EXPECT_GT(sampler->steps_accepted(), 0u);
  EXPECT_LE(sampler->steps_accepted(), 100u);
}

TEST(MhSampler, DeterministicGivenSeed) {
  PointIcm icm = PaperTriangle(0.35, 0.7, 0.55);
  auto a = MhSampler::Create(icm, {}, MhOptions{}, Rng(99));
  auto b = MhSampler::Create(icm, {}, MhOptions{}, Rng(99));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->EstimateFlowProbability(0, 2, 2000),
                   b->EstimateFlowProbability(0, 2, 2000));
}

TEST(MhSampler, LargerGraphAgreesWithEnumeration) {
  Rng graph_rng(7);
  auto g = Share(UniformRandomGraph(8, 16, graph_rng));
  Rng prob_rng(8);
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = prob_rng.Uniform(0.1, 0.9);
  PointIcm icm(g, probs);
  MhOptions opt;
  opt.burn_in = 3000;
  opt.thinning = 5;
  auto sampler = MhSampler::Create(icm, {}, opt, Rng(52));
  ASSERT_TRUE(sampler.ok());
  const double estimate = sampler->EstimateFlowProbability(0, 5, 30000);
  EXPECT_NEAR(estimate, ExactFlowByEnumeration(icm, 0, 5), 0.02);
}

TEST(MhSampler, UniformProposalHasSameStationaryDistribution) {
  // The ablation switch must not change the target law, only the mixing.
  PointIcm icm = PaperTriangle(0.35, 0.7, 0.55);
  MhOptions opt;
  opt.burn_in = 3000;
  opt.thinning = 5;
  opt.uniform_proposal = true;
  auto sampler = MhSampler::Create(icm, {}, opt, Rng(142));
  ASSERT_TRUE(sampler.ok());
  std::map<std::uint64_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[StateKey(sampler->NextSample())];
  double total_variation = 0.0;
  for (std::uint64_t bits = 0; bits < 8; ++bits) {
    PseudoState x(3);
    for (std::size_t e = 0; e < 3; ++e) x[e] = (bits >> e) & 1 ? 1 : 0;
    const double expected = std::exp(icm.LogPseudoStateProb(x));
    const double observed = static_cast<double>(counts[bits]) / n;
    total_variation += 0.5 * std::fabs(expected - observed);
  }
  EXPECT_LT(total_variation, 0.02);
}

TEST(MhSampler, UniformProposalConditionalFlow) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  const FlowConditions cond{{0, 1, true}};
  MhOptions opt;
  opt.burn_in = 2000;
  opt.thinning = 5;
  opt.uniform_proposal = true;
  auto sampler = MhSampler::Create(icm, cond, opt, Rng(143));
  ASSERT_TRUE(sampler.ok());
  const double exact =
      ExactConditionalFlowByEnumeration(icm, 0, 2, cond).ValueOrDie();
  EXPECT_NEAR(sampler->EstimateFlowProbability(0, 2, 40000), exact, 0.015);
}

TEST(MhSampler, AcceptanceRateIsZeroBeforeAnyStep) {
  PointIcm icm = PaperTriangle(0.5, 0.5, 0.5);
  auto sampler = MhSampler::Create(icm, {}, MhOptions{}, Rng(7));
  ASSERT_TRUE(sampler.ok());
  // The 0/0 guard: no transitions attempted yet.
  EXPECT_EQ(sampler->steps_taken(), 0u);
  EXPECT_EQ(sampler->acceptance_rate(), 0.0);
}

TEST(MhSampler, AcceptanceRateMatchesCounters) {
  PointIcm icm = PaperTriangle(0.35, 0.7, 0.55);
  MhOptions opt;
  opt.burn_in = 100;
  opt.thinning = 2;
  auto sampler = MhSampler::Create(icm, {}, opt, Rng(19));
  ASSERT_TRUE(sampler.ok());
  for (int i = 0; i < 50; ++i) sampler->NextSample();
  ASSERT_GT(sampler->steps_taken(), 0u);
  EXPECT_DOUBLE_EQ(sampler->acceptance_rate(),
                   static_cast<double>(sampler->steps_accepted()) /
                       static_cast<double>(sampler->steps_taken()));
  EXPECT_GT(sampler->acceptance_rate(), 0.0);
  EXPECT_LE(sampler->acceptance_rate(), 1.0);
}

TEST(MhSampler, ReseedResetsCountersAndRerunsBurnIn) {
  PointIcm icm = PaperTriangle(0.35, 0.7, 0.55);
  MhOptions opt;
  opt.burn_in = 500;
  opt.thinning = 2;
  auto sampler = MhSampler::Create(icm, {}, opt, Rng(11));
  ASSERT_TRUE(sampler.ok());
  sampler->NextSample();
  ASSERT_GE(sampler->steps_taken(), 500u);

  sampler->Reseed(Rng(99));
  EXPECT_EQ(sampler->steps_taken(), 0u);
  EXPECT_EQ(sampler->steps_accepted(), 0u);
  EXPECT_EQ(sampler->acceptance_rate(), 0.0);

  // The next sample re-runs the full burn-in, not just thinning steps.
  sampler->NextSample();
  EXPECT_GE(sampler->steps_taken(), 500u);
}

TEST(MhSampler, ReseedKeepsAdmissibleState) {
  PointIcm icm = PaperTriangle(0.6, 0.3, 0.5);
  const FlowConditions cond{{0, 1, true}};
  MhOptions opt;
  opt.burn_in = 200;
  auto sampler = MhSampler::Create(icm, cond, opt, Rng(3));
  ASSERT_TRUE(sampler.ok());
  sampler->NextSample();
  sampler->Reseed(Rng(4));
  ReachabilityWorkspace ws(icm.graph());
  EXPECT_TRUE(SatisfiesConditions(icm.graph(), sampler->state(), cond, ws));
  // The re-burned chain still targets the conditional distribution.
  const double exact =
      ExactConditionalFlowByEnumeration(icm, 0, 2, cond).ValueOrDie();
  EXPECT_NEAR(sampler->EstimateFlowProbability(0, 2, 40000), exact, 0.015);
}

TEST(MhSampler, NegativeConditionInitialization) {
  // Rejection may fail when the condition is unlikely; the repair path must
  // still find an admissible state.
  PointIcm icm = PaperTriangle(0.99, 0.99, 0.99);
  MhOptions opt;
  opt.init_rejection_tries = 2;
  auto sampler = MhSampler::Create(icm, {{1, 2, false}}, opt, Rng(53));
  ASSERT_TRUE(sampler.ok());
  ReachabilityWorkspace ws(icm.graph());
  EXPECT_TRUE(SatisfiesConditions(icm.graph(), sampler->state(),
                                  {{1, 2, false}}, ws));
}

}  // namespace
}  // namespace infoflow
