#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace infoflow {
namespace {

TEST(CsvWriter, HeaderOnly) {
  CsvWriter w({"a", "b"});
  EXPECT_EQ(w.ToString(), "a,b\n");
  EXPECT_EQ(w.num_rows(), 0u);
}

TEST(CsvWriter, RowsSerialize) {
  CsvWriter w({"x", "y"});
  w.AppendRow({"1", "2"});
  w.AppendRow({"3", "4"});
  EXPECT_EQ(w.ToString(), "x,y\n1,2\n3,4\n");
}

TEST(CsvWriter, NumericRows) {
  CsvWriter w({"p"});
  w.AppendNumericRow({0.5});
  EXPECT_EQ(w.ToString(), "p\n0.5\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  CsvWriter w({"text"});
  w.AppendRow({"hello, world"});
  w.AppendRow({"say \"hi\""});
  EXPECT_EQ(w.ToString(), "text\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvQuote, PlainFieldUntouched) { EXPECT_EQ(CsvQuote("plain"), "plain"); }

TEST(ParseCsv, RoundTripsWriter) {
  CsvWriter w({"a", "b"});
  w.AppendRow({"1", "x,y"});
  w.AppendRow({"2", "q\"q"});
  auto table = ParseCsv(w.ToString());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0][1], "x,y");
  EXPECT_EQ(table->rows[1][1], "q\"q");
}

TEST(ParseCsv, RejectsRaggedRows) {
  auto table = ParseCsv("a,b\n1\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kParseError);
}

TEST(ParseCsv, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("\n\n").ok());
}

TEST(ParseCsv, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(ParseCsv, HandlesCrLf) {
  auto table = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvTable, ColumnIndexLookup) {
  auto table = ParseCsv("alpha,beta\n1,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ColumnIndex("beta").ValueOrDie(), 1u);
  EXPECT_FALSE(table->ColumnIndex("gamma").ok());
}

TEST(CsvFile, WriteThenReadBack) {
  const std::string path = ::testing::TempDir() + "/infoflow_csv_test.csv";
  CsvWriter w({"k", "v"});
  w.AppendRow({"key", "value"});
  ASSERT_TRUE(w.WriteFile(path).ok());
  auto table = ReadCsvFile(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "key");
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileIsIOError) {
  auto table = ReadCsvFile("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace infoflow
