#include "eval/ascii_plot.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace infoflow {
namespace {

TEST(RenderCalibration, MentionsCoverageAndBins) {
  BucketExperiment exp;
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double p = rng.NextDouble();
    exp.Add(p, rng.Bernoulli(p));
  }
  const std::string art = RenderCalibration(exp.Analyze(30));
  EXPECT_NE(art.find("coverage"), std::string::npos);
  EXPECT_NE(art.find('|'), std::string::npos);   // CI bars
  EXPECT_NE(art.find('x'), std::string::npos);   // covered means
  EXPECT_NE(art.find("bin volumes"), std::string::npos);
}

TEST(RenderCalibration, EmptyReportStillRenders) {
  BucketExperiment exp;
  const std::string art = RenderCalibration(exp.Analyze(10));
  EXPECT_NE(art.find("coverage"), std::string::npos);
}

TEST(RenderSeries, ShowsLegendAndGlyphs) {
  Series a{"ours", '*', {1, 10, 100}, {0.5, 0.3, 0.1}};
  Series b{"goyal", '+', {1, 10, 100}, {0.5, 0.45, 0.4}};
  const std::string art = RenderSeries({a, b}, 40, 12, /*log_x=*/true);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find('+'), std::string::npos);
  EXPECT_NE(art.find("ours"), std::string::npos);
  EXPECT_NE(art.find("log scale"), std::string::npos);
}

TEST(RenderSeries, HandlesDegenerateRanges) {
  Series flat{"flat", 'o', {1.0, 1.0}, {2.0, 2.0}};
  const std::string art = RenderSeries({flat}, 20, 6);
  EXPECT_NE(art.find('o'), std::string::npos);
}

}  // namespace
}  // namespace infoflow
