#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace infoflow {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.Min()));
  EXPECT_TRUE(std::isinf(s.Max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.Count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 4.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.PopulationVariance(), 4.0, 1e-12);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 10; ++i) {
    const double x = i * 1.7 - 3.0;
    all.Add(x);
    (i < 4 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2u);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(BatchStats, MeanVarianceStdDev) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(Variance(v), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.5), 7.0);
}

TEST(Rmse, KnownValue) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_NEAR(Rmse({0.0, 0.0}, {3.0, 4.0}), std::sqrt(12.5), 1e-12);
}

TEST(RmseDeath, RejectsMismatchedLengths) {
  EXPECT_DEATH(Rmse({1.0}, {1.0, 2.0}), "lhs");
}

}  // namespace
}  // namespace infoflow
