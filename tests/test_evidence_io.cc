#include "learn/evidence_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/generators.h"
#include "obs/metrics.h"
#include "twitter/cascade_gen.h"
#include "twitter/tag_gen.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Triangle() {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  return std::make_shared<const DirectedGraph>(std::move(b).Build());
}

TEST(AttributedIo, RoundTripsSimpleEvidence) {
  auto g = Triangle();
  AttributedEvidence evidence;
  evidence.objects.push_back(
      {{0}, {0, 1, 2}, {g->FindEdge(0, 1), g->FindEdge(1, 2)}});
  evidence.objects.push_back({{1}, {1, 2}, {g->FindEdge(1, 2)}});
  const std::string text = SerializeAttributedEvidence(*g, evidence);
  auto restored = DeserializeAttributedEvidence(text, *g);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->objects.size(), 2u);
  EXPECT_EQ(restored->objects[0].sources, evidence.objects[0].sources);
  EXPECT_EQ(restored->objects[0].active_nodes,
            evidence.objects[0].active_nodes);
  EXPECT_EQ(restored->objects[0].active_edges,
            evidence.objects[0].active_edges);
  EXPECT_EQ(restored->objects[1].active_edges,
            evidence.objects[1].active_edges);
}

TEST(AttributedIo, RoundTripsGeneratedCascades) {
  Rng rng(5);
  auto graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(60, 3, 0.2, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.05, 0.3);
  PointIcm truth(graph, probs);
  const UserRegistry registry = UserRegistry::Sequential(60);
  CascadeGenOptions opt;
  opt.num_messages = 150;
  auto generated = GenerateCascades(truth, registry, opt, rng);
  ASSERT_TRUE(generated.ok());
  const std::string text =
      SerializeAttributedEvidence(*graph, generated->ground_truth);
  auto restored = DeserializeAttributedEvidence(text, *graph);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->objects.size(),
            generated->ground_truth.objects.size());
  for (std::size_t i = 0; i < restored->objects.size(); ++i) {
    EXPECT_EQ(restored->objects[i].active_edges,
              generated->ground_truth.objects[i].active_edges);
  }
}

TEST(AttributedIo, RejectsEdgeMissingFromGraph) {
  auto g = Triangle();
  const std::string text =
      "infoflow-attributed v1\nobjects 1\n0|0 2|2>0\n";
  auto restored = DeserializeAttributedEvidence(text, *g);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kParseError);
}

TEST(AttributedIo, RejectsMalformedInput) {
  auto g = Triangle();
  EXPECT_FALSE(DeserializeAttributedEvidence("bogus\n", *g).ok());
  EXPECT_FALSE(DeserializeAttributedEvidence(
                   "infoflow-attributed v1\nobjects 2\n0|0|\n", *g)
                   .ok());  // count mismatch
  EXPECT_FALSE(DeserializeAttributedEvidence(
                   "infoflow-attributed v1\nobjects 1\n0|0\n", *g)
                   .ok());  // missing field
  EXPECT_FALSE(DeserializeAttributedEvidence(
                   "infoflow-attributed v1\nobjects 1\n0|0|0-1\n", *g)
                   .ok());  // bad edge syntax
}

TEST(AttributedIo, CollapsesDuplicateIdsWithinFields) {
  // A streaming source that double-delivers a field must not double-count
  // Beta updates: repeats collapse to the first occurrence and are tallied
  // in parse.duplicates.
  auto g = Triangle();
  const std::uint64_t before = obs::GetCounter("parse.duplicates").Value();
  auto object = ParseAttributedObjectLine("0 0|0 1 1 2|0>1 0>1 1>2", *g);
  ASSERT_TRUE(object.ok()) << object.status();
  EXPECT_EQ(object->sources, std::vector<NodeId>({0}));
  EXPECT_EQ(object->active_nodes, std::vector<NodeId>({0, 1, 2}));
  EXPECT_EQ(object->active_edges,
            std::vector<EdgeId>({g->FindEdge(0, 1), g->FindEdge(1, 2)}));
  EXPECT_EQ(obs::GetCounter("parse.duplicates").Value() - before, 3u);
}

TEST(TracesIo, CollapsesDuplicateActivations) {
  const std::uint64_t before = obs::GetCounter("parse.duplicates").Value();
  auto trace = ParseTraceLine("0:0 1:2.5 0:0");
  ASSERT_TRUE(trace.ok()) << trace.status();
  ASSERT_EQ(trace->activations.size(), 2u);
  EXPECT_EQ(trace->activations[0].node, 0u);
  EXPECT_EQ(trace->activations[1].node, 1u);
  EXPECT_EQ(obs::GetCounter("parse.duplicates").Value() - before, 1u);
  // The same node at a *different* time cannot be merged — hard error.
  EXPECT_FALSE(ParseTraceLine("0:0 1:2.5 0:1").ok());
}

TEST(AttributedIo, ValidatesSemantics) {
  // Node 2 active without explanation: parse succeeds syntactically but
  // evidence validation must reject it.
  auto g = Triangle();
  const std::string text = "infoflow-attributed v1\nobjects 1\n0|0 2|\n";
  auto restored = DeserializeAttributedEvidence(text, *g);
  EXPECT_FALSE(restored.ok());
}

TEST(TracesIo, RoundTripsTimes) {
  UnattributedEvidence evidence;
  evidence.traces.push_back({{{0, 0.0}, {2, 1.5}, {5, 3.25}}});
  evidence.traces.push_back({{{1, 0.125}}});
  evidence.traces.push_back({});  // empty trace survives
  const std::string text = SerializeUnattributedEvidence(evidence);
  auto restored = DeserializeUnattributedEvidence(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->traces.size(), 3u);
  EXPECT_DOUBLE_EQ(restored->traces[0].TimeOf(2), 1.5);
  EXPECT_DOUBLE_EQ(restored->traces[0].TimeOf(5), 3.25);
  EXPECT_DOUBLE_EQ(restored->traces[1].TimeOf(1), 0.125);
  EXPECT_TRUE(restored->traces[2].activations.empty());
}

TEST(TracesIo, ExactDoubleRoundTrip) {
  UnattributedEvidence evidence;
  evidence.traces.push_back({{{0, 1.0 / 3.0}, {1, 1e-17}}});
  auto restored =
      DeserializeUnattributedEvidence(SerializeUnattributedEvidence(evidence));
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->traces[0].TimeOf(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(restored->traces[0].TimeOf(1), 1e-17);
}

TEST(TracesIo, RoundTripsGeneratedTagTraces) {
  Rng rng(6);
  auto graph = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(40, 120, rng));
  const TagNetwork network =
      AugmentWithOmnipotent(PointIcm::Constant(graph, 0.2));
  TagGenOptions opt;
  opt.num_objects = 40;
  auto traces = GenerateTagTraces(network, TagKind::kUrl, opt, rng);
  ASSERT_TRUE(traces.ok());
  auto restored =
      DeserializeUnattributedEvidence(SerializeUnattributedEvidence(*traces));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->traces.size(), traces->traces.size());
  for (std::size_t i = 0; i < restored->traces.size(); ++i) {
    ASSERT_EQ(restored->traces[i].activations.size(),
              traces->traces[i].activations.size());
  }
  EXPECT_TRUE(
      ValidateUnattributedEvidence(*network.graph, *restored).ok());
}

TEST(TracesIo, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializeUnattributedEvidence("nope\n").ok());
  EXPECT_FALSE(
      DeserializeUnattributedEvidence("infoflow-traces v1\ntraces 2\n0:1\n")
          .ok());
  EXPECT_FALSE(DeserializeUnattributedEvidence(
                   "infoflow-traces v1\ntraces 1\n0:abc\n")
                   .ok());
  EXPECT_FALSE(DeserializeUnattributedEvidence(
                   "infoflow-traces v1\ntraces 1\n0=1\n")
                   .ok());
}

TEST(EvidenceIo, FileRoundTrip) {
  auto g = Triangle();
  AttributedEvidence evidence;
  evidence.objects.push_back({{0}, {0, 1}, {g->FindEdge(0, 1)}});
  const std::string path =
      ::testing::TempDir() + "/infoflow_evidence_test.att";
  ASSERT_TRUE(SaveAttributedEvidence(*g, evidence, path).ok());
  auto restored = LoadAttributedEvidence(path, *g);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->objects.size(), 1u);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadAttributedEvidence("/missing/file.att", *g).ok());
}

}  // namespace
}  // namespace infoflow
