/// \file test_obs_disabled.cc
/// \brief Compiled with INFOFLOW_NO_METRICS (its own binary): proves the
/// stub observability API is present, inert, and genuinely free.

#ifndef INFOFLOW_NO_METRICS
#error "this test must be compiled with INFOFLOW_NO_METRICS"
#endif

#include <gtest/gtest.h>

#include <string>
#include <type_traits>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace infoflow::obs {
namespace {

// The zero-overhead contract, checked at compile time: the stub span holds
// no state, and MetricsEnabled() is a constant-false that `if constexpr`
// can prune whole instrumentation blocks with.
static_assert(std::is_empty_v<TraceSpan>);
static_assert(!MetricsEnabled());

TEST(ObsDisabled, CountersAreInert) {
  Counter& c = GetCounter("disabled.counter");
  c.Increment();
  c.Increment(100);
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsDisabled, GaugesAreInert) {
  Gauge& g = GetGauge("disabled.gauge");
  g.Set(42.0);
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(ObsDisabled, HistogramsAreInert) {
  Histogram& h = GetHistogram("disabled.hist", {1.0, 2.0});
  h.Record(1.5);
  const std::uint64_t batch[3] = {1, 2, 3};
  h.AddBatch(batch, 3, 9.0);
  EXPECT_TRUE(h.bounds().empty());
  EXPECT_EQ(h.Snapshot().total, 0u);
}

TEST(ObsDisabled, SnapshotIsEmptyButSerializes) {
  GetCounter("disabled.snap").Increment(5);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  // The serializers stay linked so --metrics-json works in both builds.
  EXPECT_EQ(snap.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_NE(snap.ToCsv().find("kind,name,field,value"), std::string::npos);
}

TEST(ObsDisabled, TracingIsInertAndExportsValidEmptyJson) {
  Tracing::Enable();
  EXPECT_FALSE(Tracing::IsEnabled());
  { TraceSpan span("disabled/span"); }
  Tracing::Disable();
  EXPECT_EQ(Tracing::DroppedEvents(), 0u);
  EXPECT_EQ(Tracing::ExportChromeJson(), "{\"traceEvents\":[]}");
}

}  // namespace
}  // namespace infoflow::obs
