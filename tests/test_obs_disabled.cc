/// \file test_obs_disabled.cc
/// \brief Compiled with INFOFLOW_NO_METRICS (its own binary): proves the
/// stub observability API is present, inert, and genuinely free.

#ifndef INFOFLOW_NO_METRICS
#error "this test must be compiled with INFOFLOW_NO_METRICS"
#endif

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <type_traits>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace infoflow::obs {
namespace {

// The zero-overhead contract, checked at compile time: the stub span holds
// no state (including via the query_id-tagging constructor), and
// MetricsEnabled() is a constant-false that `if constexpr` can prune whole
// instrumentation blocks with.
static_assert(std::is_empty_v<TraceSpan>);
static_assert(std::is_constructible_v<TraceSpan, const char*, std::uint64_t>);
static_assert(!MetricsEnabled());

TEST(ObsDisabled, CountersAreInert) {
  Counter& c = GetCounter("disabled.counter");
  c.Increment();
  c.Increment(100);
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsDisabled, GaugesAreInert) {
  Gauge& g = GetGauge("disabled.gauge");
  g.Set(42.0);
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(ObsDisabled, HistogramsAreInert) {
  Histogram& h = GetHistogram("disabled.hist", {1.0, 2.0});
  h.Record(1.5);
  const std::uint64_t batch[3] = {1, 2, 3};
  h.AddBatch(batch, 3, 9.0);
  EXPECT_TRUE(h.bounds().empty());
  EXPECT_EQ(h.Snapshot().total, 0u);
}

TEST(ObsDisabled, StripReplayInstrumentsAreInert) {
  // The lane-width instruments the strip workspaces and engines register
  // (reach.strip_width gauge, per-width reach.batch_blocks.<W> counters,
  // reach.strip_latency_us histogram) must compile down to the same inert
  // stubs as every other metric.
  Gauge& width = GetGauge("reach.strip_width");
  width.Set(512.0);
  EXPECT_EQ(width.Value(), 0.0);
  for (const char* name : {"reach.batch_blocks.64", "reach.batch_blocks.256",
                           "reach.batch_blocks.512"}) {
    Counter& c = GetCounter(name);
    c.Increment();
    EXPECT_EQ(c.Value(), 0u) << name;
  }
  Histogram& latency = GetHistogram("reach.strip_latency_us", {1.0, 5.0});
  latency.Record(3.0);
  EXPECT_EQ(latency.Snapshot().total, 0u);
}

TEST(ObsDisabled, SnapshotIsEmptyButSerializes) {
  GetCounter("disabled.snap").Increment(5);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  // The serializers stay linked so --metrics-json works in both builds.
  EXPECT_EQ(snap.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_NE(snap.ToCsv().find("kind,name,field,value"), std::string::npos);
}

TEST(ObsDisabled, TracingIsInertAndExportsValidEmptyJson) {
  Tracing::Enable();
  EXPECT_FALSE(Tracing::IsEnabled());
  { TraceSpan span("disabled/span"); }
  { TraceSpan tagged("disabled/tagged", /*query_id=*/42); }
  Tracing::ImportSpan("disabled/imported", 2, 7, 1.0, 2.0, 9);
  Tracing::EmitSpan("disabled/emitted", 1, 2, 3);
  EXPECT_EQ(Tracing::NowNanos(), 0u);
  Tracing::Disable();
  EXPECT_EQ(Tracing::DroppedEvents(), 0u);
  EXPECT_EQ(Tracing::ExportChromeJson(), "{\"traceEvents\":[]}");
}

TEST(ObsDisabled, QuantileHelpersStayLinkedAndDefined) {
  // HistogramSnapshot and its math are real in both builds (the stub
  // registry just never fills one in); p50/p95/p99 derivation must not
  // vanish under NO_METRICS.
  HistogramSnapshot snap;
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  snap.bounds = {10.0};
  snap.counts = {4, 0};
  snap.total = 4;
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 5.0);
  HistogramSnapshot other;
  other.Merge(snap);
  EXPECT_EQ(other.total, 4u);
  EXPECT_GE(LogBuckets(0.1, 100.0, 2).size(), 6u);
  const MetricsSnapshot empty = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(empty.ToPrometheus(), "");
}

}  // namespace
}  // namespace infoflow::obs
