#include "core/flow_query.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

DirectedGraph Chain3() {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  return std::move(b).Build();
}

TEST(FlowConstraint, ToStringShowsDirection) {
  EXPECT_EQ((FlowConstraint{0, 2, true}).ToString(), "0 ~> 2");
  EXPECT_EQ((FlowConstraint{0, 2, false}).ToString(), "0 !~> 2");
}

TEST(SatisfiesConditions, EmptyConditionsAlwaysHold) {
  DirectedGraph g = Chain3();
  ReachabilityWorkspace ws(g);
  EXPECT_TRUE(SatisfiesConditions(g, PseudoState(2, 0), {}, ws));
}

TEST(SatisfiesConditions, PositiveAndNegative) {
  DirectedGraph g = Chain3();
  ReachabilityWorkspace ws(g);
  PseudoState first_on{1, 0};
  EXPECT_TRUE(SatisfiesConditions(g, first_on, {{0, 1, true}}, ws));
  EXPECT_FALSE(SatisfiesConditions(g, first_on, {{0, 2, true}}, ws));
  EXPECT_TRUE(SatisfiesConditions(g, first_on, {{0, 2, false}}, ws));
  EXPECT_TRUE(SatisfiesConditions(
      g, first_on, {{0, 1, true}, {0, 2, false}, {1, 2, false}}, ws));
}

TEST(ValidateConditions, AcceptsConsistentSet) {
  DirectedGraph g = Chain3();
  EXPECT_TRUE(ValidateConditions(g, {{0, 1, true}, {0, 2, false}}).ok());
}

TEST(ValidateConditions, RejectsOutOfRangeNodes) {
  DirectedGraph g = Chain3();
  EXPECT_EQ(ValidateConditions(g, {{0, 9, true}}).code(),
            StatusCode::kOutOfRange);
}

TEST(ValidateConditions, RejectsForbiddenSelfFlow) {
  DirectedGraph g = Chain3();
  EXPECT_EQ(ValidateConditions(g, {{1, 1, false}}).code(),
            StatusCode::kInvalidArgument);
  // Requiring self-flow is fine (it trivially holds).
  EXPECT_TRUE(ValidateConditions(g, {{1, 1, true}}).ok());
}

TEST(ValidateConditions, RejectsContradictoryPair) {
  DirectedGraph g = Chain3();
  EXPECT_EQ(ValidateConditions(g, {{0, 2, true}, {0, 2, false}}).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace infoflow
