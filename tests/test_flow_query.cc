#include "core/flow_query.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

DirectedGraph Chain3() {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  return std::move(b).Build();
}

TEST(FlowConstraint, ToStringShowsDirection) {
  EXPECT_EQ((FlowConstraint{0, 2, true}).ToString(), "0 ~> 2");
  EXPECT_EQ((FlowConstraint{0, 2, false}).ToString(), "0 !~> 2");
}

TEST(SatisfiesConditions, EmptyConditionsAlwaysHold) {
  DirectedGraph g = Chain3();
  ReachabilityWorkspace ws(g);
  EXPECT_TRUE(SatisfiesConditions(g, PseudoState(2, 0), {}, ws));
}

TEST(SatisfiesConditions, PositiveAndNegative) {
  DirectedGraph g = Chain3();
  ReachabilityWorkspace ws(g);
  PseudoState first_on{1, 0};
  EXPECT_TRUE(SatisfiesConditions(g, first_on, {{0, 1, true}}, ws));
  EXPECT_FALSE(SatisfiesConditions(g, first_on, {{0, 2, true}}, ws));
  EXPECT_TRUE(SatisfiesConditions(g, first_on, {{0, 2, false}}, ws));
  EXPECT_TRUE(SatisfiesConditions(
      g, first_on, {{0, 1, true}, {0, 2, false}, {1, 2, false}}, ws));
}

TEST(ValidateConditions, AcceptsConsistentSet) {
  DirectedGraph g = Chain3();
  EXPECT_TRUE(ValidateConditions(g, {{0, 1, true}, {0, 2, false}}).ok());
}

TEST(ValidateConditions, RejectsOutOfRangeNodes) {
  DirectedGraph g = Chain3();
  EXPECT_EQ(ValidateConditions(g, {{0, 9, true}}).code(),
            StatusCode::kOutOfRange);
}

TEST(ValidateConditions, RejectsForbiddenSelfFlow) {
  DirectedGraph g = Chain3();
  EXPECT_EQ(ValidateConditions(g, {{1, 1, false}}).code(),
            StatusCode::kInvalidArgument);
  // Requiring self-flow is fine (it trivially holds).
  EXPECT_TRUE(ValidateConditions(g, {{1, 1, true}}).ok());
}

TEST(ValidateConditions, RejectsContradictoryPair) {
  DirectedGraph g = Chain3();
  const Status status =
      ValidateConditions(g, {{0, 2, true}, {0, 2, false}});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("contradict"), std::string::npos);
  // Order and intervening entries don't hide the contradiction.
  EXPECT_EQ(
      ValidateConditions(g, {{0, 2, false}, {1, 2, true}, {0, 2, true}})
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(ValidateConditions, RejectsDuplicateEntries) {
  DirectedGraph g = Chain3();
  const Status status =
      ValidateConditions(g, {{0, 1, true}, {1, 2, false}, {0, 1, true}});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
  EXPECT_EQ(ValidateConditions(g, {{0, 2, false}, {0, 2, false}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlowConstraintHash, DistinguishesFields) {
  const std::hash<FlowConstraint> hash;
  EXPECT_EQ(hash({0, 2, true}), hash({0, 2, true}));
  EXPECT_NE(hash({0, 2, true}), hash({0, 2, false}));
  EXPECT_NE(hash({0, 2, true}), hash({2, 0, true}));
  EXPECT_NE(hash({0, 1, true}), hash({1, 0, true}));
}

TEST(HashConditions, OrderInsensitiveBatchKey) {
  const FlowConditions a{{0, 1, true}, {0, 2, false}};
  const FlowConditions b{{0, 2, false}, {0, 1, true}};
  EXPECT_EQ(HashConditions(a), HashConditions(b));
  EXPECT_NE(HashConditions(a), HashConditions({{0, 1, true}}));
  EXPECT_NE(HashConditions({}), HashConditions({{0, 1, true}}));
}

}  // namespace
}  // namespace infoflow
