#include "stats/fenwick_tree.h"

#include <gtest/gtest.h>

#include <numeric>

namespace infoflow {
namespace {

TEST(FenwickTree, EmptyWeightsAreZero) {
  FenwickTree tree(5);
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_DOUBLE_EQ(tree.Total(), 0.0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(tree.Get(i), 0.0);
}

TEST(FenwickTree, BulkConstructionMatchesWeights) {
  std::vector<double> w{0.5, 0.0, 2.0, 1.25, 0.25};
  FenwickTree tree(w);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_DOUBLE_EQ(tree.Get(i), w[i]) << i;
  }
  EXPECT_DOUBLE_EQ(tree.Total(), 4.0);
}

TEST(FenwickTree, PrefixSumsMatchNaive) {
  std::vector<double> w{3, 1, 4, 1, 5, 9, 2, 6};
  FenwickTree tree(w);
  double running = 0.0;
  for (std::size_t i = 0; i <= w.size(); ++i) {
    EXPECT_DOUBLE_EQ(tree.PrefixSum(i), running);
    if (i < w.size()) running += w[i];
  }
}

TEST(FenwickTree, SetUpdatesPointAndTotal) {
  FenwickTree tree(std::vector<double>{1, 2, 3});
  tree.Set(1, 10.0);
  EXPECT_DOUBLE_EQ(tree.Get(1), 10.0);
  EXPECT_DOUBLE_EQ(tree.Total(), 14.0);
  tree.Set(1, 0.0);
  EXPECT_DOUBLE_EQ(tree.Total(), 4.0);
}

TEST(FenwickTree, IncrementalNormalizerIdentity) {
  // The paper's Z' = Z + (-1)^{x_i}(1 - 2 p_i): flipping edge i swaps its
  // weight between p_i and 1-p_i.
  std::vector<double> p{0.3, 0.8, 0.55};
  std::vector<int> x{0, 1, 0};
  auto weight = [&](std::size_t i) { return x[i] ? 1.0 - p[i] : p[i]; };
  std::vector<double> w;
  for (std::size_t i = 0; i < p.size(); ++i) w.push_back(weight(i));
  FenwickTree tree(w);
  for (std::size_t i = 0; i < p.size(); ++i) {
    // (-1)^{x_i} with the *pre-flip* activity: flipping an inactive edge
    // replaces weight p with 1-p (delta = 1-2p); an active one the reverse.
    const double z = tree.Total();
    const double expected =
        z + (x[i] ? -1.0 : 1.0) * (1.0 - 2.0 * p[i]);
    x[i] = 1 - x[i];
    tree.Set(i, weight(i));
    EXPECT_NEAR(tree.Total(), expected, 1e-12) << "flip " << i;
  }
}

TEST(FenwickTree, FindIndexLocatesMass) {
  FenwickTree tree(std::vector<double>{1.0, 0.0, 2.0, 1.0});
  EXPECT_EQ(tree.FindIndex(0.5), 0u);
  EXPECT_EQ(tree.FindIndex(1.5), 2u);
  EXPECT_EQ(tree.FindIndex(2.999), 2u);
  EXPECT_EQ(tree.FindIndex(3.5), 3u);
}

TEST(FenwickTree, SampleMatchesDistribution) {
  std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  FenwickTree tree(w);
  Rng rng(99);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[tree.Sample(rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(FenwickTree, SampleAfterUpdatesMatchesNewWeights) {
  FenwickTree tree(std::vector<double>{5.0, 5.0});
  tree.Set(0, 0.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(tree.Sample(rng), 1u);
}

TEST(FenwickTree, RefreshTotalFixesDrift) {
  FenwickTree tree(std::vector<double>{0.1, 0.2, 0.3});
  tree.RefreshTotal();
  EXPECT_NEAR(tree.Total(), 0.6, 1e-15);
}

TEST(FenwickTree, LargeTreeConsistency) {
  Rng rng(123);
  std::vector<double> w(1000);
  for (double& x : w) x = rng.NextDouble();
  FenwickTree tree(w);
  const double naive = std::accumulate(w.begin(), w.end(), 0.0);
  EXPECT_NEAR(tree.Total(), naive, 1e-9);
  // Random point updates stay consistent with a naive mirror.
  for (int i = 0; i < 500; ++i) {
    const auto idx = static_cast<std::size_t>(rng.NextBounded(w.size()));
    const double nv = rng.NextDouble();
    w[idx] = nv;
    tree.Set(idx, nv);
  }
  for (std::size_t i = 0; i < w.size(); i += 97) {
    EXPECT_NEAR(tree.Get(i), w[i], 1e-12);
  }
  EXPECT_NEAR(tree.Total(), std::accumulate(w.begin(), w.end(), 0.0), 1e-8);
}

TEST(FenwickTreeDeath, RejectsNegativeWeight) {
  FenwickTree tree(3);
  EXPECT_DEATH(tree.Set(0, -1.0), "non-negative");
}

TEST(FenwickTreeDeath, RejectsSamplingEmptyTree) {
  FenwickTree tree(3);
  Rng rng(1);
  EXPECT_DEATH(tree.Sample(rng), "all-zero");
}

TEST(FenwickTreeDeath, RejectsOutOfRangeIndex) {
  FenwickTree tree(3);
  EXPECT_DEATH(tree.Get(3), "out of range");
}

}  // namespace
}  // namespace infoflow
