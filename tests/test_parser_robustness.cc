/// \file test_parser_robustness.cc
/// \brief Fuzz-style robustness sweeps: every text parser in the library
/// must return a Status (never crash, never corrupt) on arbitrary input —
/// random bytes, truncations of valid documents, and hostile near-misses.

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "graph/generators.h"
#include "learn/evidence_io.h"
#include "twitter/retweet_parser.h"
#include "twitter/tweet_io.h"
#include "util/csv.h"

namespace infoflow {
namespace {

std::string RandomBytes(Rng& rng, std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    // Printable-ish mix plus newlines and separators the parsers key on.
    static const char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 \n\t|:>,\"@.!-";
    out += kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)];
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashParsers) {
  Rng rng(GetParam());
  const UserRegistry registry = UserRegistry::Sequential(10);
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  const DirectedGraph graph = std::move(b).Build();
  for (int i = 0; i < 50; ++i) {
    const std::string junk = RandomBytes(rng, 1 + rng.NextBounded(300));
    (void)DeserializePointIcm(junk);
    (void)DeserializeBetaIcm(junk);
    (void)DeserializeAttributedEvidence(junk, graph);
    (void)DeserializeUnattributedEvidence(junk);
    (void)DeserializeTweetLog(junk, registry);
    (void)ParseCsv(junk);
    std::vector<std::string> mentions;
    std::string base;
    SplitRetweetChain(junk, &mentions, &base);
  }
}

TEST_P(ParserFuzz, TruncatedValidDocumentsFailCleanly) {
  Rng rng(GetParam() + 1000);
  auto g = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(8, 20, rng));
  const BetaIcm model = BetaIcm::RandomSynthetic(g, rng);
  const std::string full = SerializeBetaIcm(model);
  for (int i = 0; i < 40; ++i) {
    const std::size_t cut = rng.NextBounded(full.size());
    auto result = DeserializeBetaIcm(full.substr(0, cut));
    // Most truncations break the record count and must fail; a cut inside
    // the final number still reads as a (different) valid document. Either
    // way: an error Status or a fully valid model, never a crash or a
    // half-constructed result.
    if (result.ok()) {
      EXPECT_EQ(result->graph().num_edges(), model.graph().num_edges());
      for (EdgeId e = 0; e < result->graph().num_edges(); ++e) {
        EXPECT_GT(result->alpha(e), 0.0);
        EXPECT_GT(result->beta(e), 0.0);
      }
    }
  }
}

TEST_P(ParserFuzz, SingleByteCorruptionsNeverCrash) {
  Rng rng(GetParam() + 2000);
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  auto g = std::make_shared<const DirectedGraph>(std::move(b).Build());
  const PointIcm model(g, {0.25, 0.75});
  const std::string full = SerializePointIcm(model);
  for (int i = 0; i < 100; ++i) {
    std::string corrupted = full;
    const std::size_t pos = rng.NextBounded(corrupted.size());
    corrupted[pos] =
        static_cast<char>('!' + rng.NextBounded(90));
    auto result = DeserializePointIcm(corrupted);
    if (result.ok()) {
      // A corruption that still parses must yield a *valid* model.
      EXPECT_EQ(result->graph().num_edges(), 2u);
      for (EdgeId e = 0; e < 2; ++e) {
        EXPECT_GE(result->prob(e), 0.0);
        EXPECT_LE(result->prob(e), 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ParserRobustness, RetweetChainPathologies) {
  std::vector<std::string> mentions;
  std::string base;
  // Deep nesting.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "RT @u" + std::to_string(i) + ": ";
  deep += "core";
  SplitRetweetChain(deep, &mentions, &base);
  EXPECT_EQ(mentions.size(), 200u);
  EXPECT_EQ(base, "core");
  // Empty and whitespace-only.
  SplitRetweetChain("", &mentions, &base);
  EXPECT_TRUE(mentions.empty());
  SplitRetweetChain("   ", &mentions, &base);
  EXPECT_TRUE(mentions.empty());
  // "RT @" with nothing after.
  SplitRetweetChain("RT @", &mentions, &base);
  EXPECT_TRUE(mentions.empty());
  EXPECT_EQ(base, "RT @");
  // Colon with empty handle.
  SplitRetweetChain("RT @: hi", &mentions, &base);
  EXPECT_TRUE(mentions.empty());
}

TEST(ParserRobustness, EvidenceIoHostileNearMisses) {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  const DirectedGraph graph = std::move(b).Build();
  // Huge claimed counts must not allocate unboundedly or crash.
  EXPECT_FALSE(DeserializeAttributedEvidence(
                   "infoflow-attributed v1\nobjects 99999999999\n", graph)
                   .ok());
  EXPECT_FALSE(DeserializeUnattributedEvidence(
                   "infoflow-traces v1\ntraces 18446744073709551615\n")
                   .ok());
  // Node ids at the NodeId boundary.
  EXPECT_FALSE(DeserializeAttributedEvidence(
                   "infoflow-attributed v1\nobjects 1\n4294967295|0|\n",
                   graph)
                   .ok());
  // Negative numbers.
  EXPECT_FALSE(DeserializeUnattributedEvidence(
                   "infoflow-traces v1\ntraces 1\n-3:1.0\n")
                   .ok());
}

}  // namespace
}  // namespace infoflow
