#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_EQ(h.BinOf(0.0), 0u);
  EXPECT_EQ(h.BinOf(0.05), 0u);
  EXPECT_EQ(h.BinOf(0.15), 1u);
  EXPECT_EQ(h.BinOf(0.95), 9u);
  EXPECT_EQ(h.BinOf(1.0), 9u);  // top edge clamps into the last bin
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(7.0);
  EXPECT_DOUBLE_EQ(h.Count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.Total(), 2.0);
}

TEST(Histogram, CountsAccumulate) {
  Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 10; ++i) h.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.Total(), 10.0);
  for (std::size_t b = 0; b < 5; ++b) EXPECT_DOUBLE_EQ(h.Count(b), 2.0);
}

TEST(Histogram, WeightedMass) {
  Histogram h(0.0, 1.0, 2);
  h.AddWeighted(0.25, 3.0);
  h.AddWeighted(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.Count(0), 3.0);
  EXPECT_DOUBLE_EQ(h.Count(1), 1.0);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.125);
  EXPECT_DOUBLE_EQ(h.BinCenter(3), 0.875);
}

TEST(Histogram, NormalizedSumsToOne) {
  Histogram h(0.0, 1.0, 3);
  h.Add(0.1);
  h.Add(0.5);
  h.Add(0.5);
  const auto norm = h.Normalized();
  EXPECT_NEAR(norm[0] + norm[1] + norm[2], 1.0, 1e-12);
  EXPECT_NEAR(norm[1], 2.0 / 3.0, 1e-12);
}

TEST(Histogram, NormalizedEmptyIsAllZero) {
  Histogram h(0.0, 1.0, 3);
  for (double v : h.Normalized()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Histogram, AsciiRenderingMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.1);
  h.Add(0.9);
  h.Add(0.9);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

TEST(HistogramDeath, RejectsEmptyRange) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 3), "range");
}

}  // namespace
}  // namespace infoflow
