#include "util/json.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("42")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-3.25e2")->AsNumber(), -325.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
  EXPECT_DOUBLE_EQ(ParseJson("  7  ")->AsNumber(), 7.0);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(ParseJson(R"("a\"b\\c\nd\te")")->AsString(), "a\"b\\c\nd\te");
  EXPECT_EQ(ParseJson(R"("A")")->AsString(), "A");
}

TEST(JsonParse, NestedContainers) {
  auto v = ParseJson(R"({"id":"q1","sources":[0,3],"nested":{"x":true}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("id")->AsString(), "q1");
  const auto& sources = v->Find("sources")->AsArray();
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_DOUBLE_EQ(sources[1].AsNumber(), 3.0);
  EXPECT_TRUE(v->Find("nested")->Find("x")->AsBool());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(ParseJson("[]")->AsArray().empty());
  EXPECT_TRUE(ParseJson("{}")->AsObject().empty());
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,").ok());
  EXPECT_FALSE(ParseJson("[1] trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("{1: 2}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1.2.3").ok());
  EXPECT_EQ(ParseJson("[x]").status().code(), StatusCode::kParseError);
}

TEST(JsonParse, RejectsAbsurdNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonDump, RoundTripsStructuredValues) {
  const std::string text =
      R"({"a":[1,2.5,true,null],"b":{"c":"x\"y"},"d":-0.125})";
  auto v = ParseJson(text);
  ASSERT_TRUE(v.ok());
  // Dump is key-sorted + compact, and the original was written that way.
  EXPECT_EQ(v->Dump(), text);
  // A second parse of the dump is identical again.
  EXPECT_EQ(ParseJson(v->Dump())->Dump(), text);
}

TEST(JsonDump, NumbersRoundTrip) {
  for (const double x : {0.0, 1.0, -7.0, 0.1, 1e-9, 12345.6789, 1e15}) {
    const JsonValue v(x);
    auto back = ParseJson(v.Dump());
    ASSERT_TRUE(back.ok()) << v.Dump();
    EXPECT_DOUBLE_EQ(back->AsNumber(), x) << v.Dump();
  }
}

TEST(JsonDump, LargeMagnitudeDoublesRoundTripExactly) {
  // Every value must survive Dump → strtod bit-exactly: whole-number
  // doubles (accumulated counters) print as plain integers up to 2^53,
  // and anything larger or fractional gets up-to-17-significant-digit
  // output. Regression for streamed metrics snapshots, where totals grow
  // without bound.
  const double big[] = {
      9007199254740992.0,   // 2^53: last exactly-representable integer
      9007199254740991.0,   // 2^53 - 1
      -9007199254740992.0,
      9007199254740994.0,   // 2^53 + 2: past the integer fast path
      1.8446744073709552e19,  // 2^64
      1e300,
      -1e300,
      4e18,                 // uint64-scale counter territory (inexact range)
      123456789012345678.0,
      0.1 + 0.2,            // classic shortest-representation case
      1.7976931348623157e308,  // DBL_MAX
  };
  for (const double x : big) {
    const JsonValue v(x);
    auto back = ParseJson(v.Dump());
    ASSERT_TRUE(back.ok()) << v.Dump();
    EXPECT_EQ(back->AsNumber(), x) << v.Dump();  // bit-exact, not NEAR
  }
  // Integer-valued doubles inside the exact range print with no fraction
  // or exponent (wire compatibility for counters).
  EXPECT_EQ(JsonValue(9007199254740991.0).Dump(), "9007199254740991");
  EXPECT_EQ(JsonValue(4e15).Dump(), "4000000000000000");
}

TEST(JsonDump, BuilderStyleConstruction) {
  JsonValue obj{JsonValue::Object{}};
  obj.MutableObject()["ok"] = JsonValue(true);
  obj.MutableObject()["list"] = JsonValue{JsonValue::Array{}};
  obj.MutableObject()["list"].MutableArray().push_back(JsonValue(3));
  EXPECT_EQ(obj.Dump(), R"({"list":[3],"ok":true})");
}

}  // namespace
}  // namespace infoflow
