#include "util/string_util.h"

#include <gtest/gtest.h>

namespace infoflow {
namespace {

TEST(Split, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Split, SingleField) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespace, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitWhitespace, EmptyAndBlank) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace(" \t\n").empty());
}

TEST(Join, RoundTripsSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("\t\n hi"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(StartsWith("RT @user: hi", "RT @"));
  EXPECT_FALSE(StartsWith("rt @user", "RT @"));
  EXPECT_FALSE(StartsWith("RT", "RT @"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(EndsWith, Basics) {
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("file.csvx", ".csv"));
  EXPECT_FALSE(EndsWith("x", ".csv"));
}

TEST(ToLowerAscii, LowersOnlyAscii) {
  EXPECT_EQ(ToLowerAscii("AbC123"), "abc123");
}

TEST(FormatDouble, TrimsAndRounds) {
  EXPECT_EQ(FormatDouble(0.25), "0.25");
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
}

TEST(IsTagChar, HandleAlphabet) {
  EXPECT_TRUE(IsTagChar('a'));
  EXPECT_TRUE(IsTagChar('Z'));
  EXPECT_TRUE(IsTagChar('7'));
  EXPECT_TRUE(IsTagChar('_'));
  EXPECT_FALSE(IsTagChar(':'));
  EXPECT_FALSE(IsTagChar(' '));
  EXPECT_FALSE(IsTagChar('@'));
}

}  // namespace
}  // namespace infoflow
