/// \file test_mh_statistical.cc
/// \brief Statistical regression tests for the MH sampler: chi-square
/// goodness-of-fit of the *empirical pseudo-state distribution* against the
/// exact Eq. 3 probabilities on a tiny enumerable graph.
///
/// These tests catch distributional bugs that moment-matching misses (a
/// sampler can get every flow probability right on one query yet be wrong
/// on the state distribution). Retained samples are thinned hard enough
/// that residual autocorrelation is negligible next to the 99.9% critical
/// value used as the rejection threshold; seeds are fixed, so the tests are
/// deterministic, not flaky.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/exact_flow.h"
#include "core/mh_sampler.h"
#include "graph/reachability.h"
#include "stats/special.h"

namespace infoflow {
namespace {

/// Diamond 0→{1,2}→3 plus the 4 edge probabilities: 16 enumerable states.
PointIcm DiamondModel() {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(0, 2).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  auto g = std::make_shared<const DirectedGraph>(std::move(b).Build());
  return PointIcm(g, {0.3, 0.7, 0.55, 0.4});
}

/// Eq. 3 evaluated for the state encoded by `mask` (bit e = edge e active).
double StateProbability(const PointIcm& model, std::uint32_t mask) {
  double prob = 1.0;
  for (EdgeId e = 0; e < model.graph().num_edges(); ++e) {
    const double p = model.prob(e);
    prob *= (mask >> e) & 1u ? p : 1.0 - p;
  }
  return prob;
}

PseudoState StateFromMask(const PointIcm& model, std::uint32_t mask) {
  PseudoState state(model.graph().num_edges(), 0);
  for (EdgeId e = 0; e < model.graph().num_edges(); ++e) {
    state[e] = static_cast<std::uint8_t>((mask >> e) & 1u);
  }
  return state;
}

std::uint32_t MaskFromState(const PseudoState& state) {
  std::uint32_t mask = 0;
  for (std::size_t e = 0; e < state.size(); ++e) {
    if (state[e]) mask |= 1u << e;
  }
  return mask;
}

/// Draws `num_samples` retained states and returns the chi-square
/// goodness-of-fit p-value of their empirical distribution against
/// `expected` (unnormalized cell probabilities; cells with probability 0
/// must never be observed and are excluded from the statistic).
double ChiSquarePValue(MhSampler& sampler, const std::vector<double>& expected,
                       std::size_t num_samples) {
  std::vector<std::size_t> observed(expected.size(), 0);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const std::uint32_t mask = MaskFromState(sampler.NextSample());
    EXPECT_LT(mask, observed.size());
    ++observed[mask];
  }
  double norm = 0.0;
  for (double e : expected) norm += e;
  double stat = 0.0;
  std::size_t cells = 0;
  for (std::size_t s = 0; s < expected.size(); ++s) {
    if (expected[s] <= 0.0) {
      EXPECT_EQ(observed[s], 0u) << "state " << s << " has probability zero";
      continue;
    }
    const double want =
        static_cast<double>(num_samples) * expected[s] / norm;
    const double diff = static_cast<double>(observed[s]) - want;
    stat += diff * diff / want;
    ++cells;
  }
  const double dof = static_cast<double>(cells - 1);
  return 1.0 - ChiSquareCdf(stat, dof);
}

TEST(MhStatistical, WeightedProposalMatchesEq3) {
  PointIcm model = DiamondModel();
  std::vector<double> expected(16);
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    expected[mask] = StateProbability(model, mask);
  }
  MhOptions opt;
  opt.burn_in = 2000;
  opt.thinning = 15;
  auto sampler = MhSampler::Create(model, {}, opt, Rng(101));
  ASSERT_TRUE(sampler.ok());
  EXPECT_GT(ChiSquarePValue(*sampler, expected, 40000), 1e-3);
}

TEST(MhStatistical, UniformProposalAblationMatchesEq3) {
  // The ablation proposal changes the transition kernel, not the
  // stationary distribution — the same GOF test must pass.
  PointIcm model = DiamondModel();
  std::vector<double> expected(16);
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    expected[mask] = StateProbability(model, mask);
  }
  MhOptions opt;
  opt.burn_in = 2000;
  opt.thinning = 15;
  opt.uniform_proposal = true;
  auto sampler = MhSampler::Create(model, {}, opt, Rng(202));
  ASSERT_TRUE(sampler.ok());
  EXPECT_GT(ChiSquarePValue(*sampler, expected, 40000), 1e-3);
}

TEST(MhStatistical, ConditionalChainMatchesRenormalizedEq6) {
  // Conditioned on 0 ⤳ 3, the stationary distribution is Eq. 3 restricted
  // to admissible states and renormalized (Eq. 6). Inadmissible states get
  // expected probability 0: observing even one fails the test.
  PointIcm model = DiamondModel();
  const FlowConditions cond{{0, 3, true}};
  std::vector<double> expected(16, 0.0);
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    const PseudoState state = StateFromMask(model, mask);
    if (FlowExists(model.graph(), 0, 3, state)) {
      expected[mask] = StateProbability(model, mask);
    }
  }
  MhOptions opt;
  opt.burn_in = 2000;
  opt.thinning = 15;
  auto sampler = MhSampler::Create(model, cond, opt, Rng(303));
  ASSERT_TRUE(sampler.ok());
  EXPECT_GT(ChiSquarePValue(*sampler, expected, 40000), 1e-3);
}

TEST(MhStatistical, UniformProposalConditionalAlsoRenormalizes) {
  PointIcm model = DiamondModel();
  const FlowConditions cond{{0, 3, true}};
  std::vector<double> expected(16, 0.0);
  for (std::uint32_t mask = 0; mask < 16; ++mask) {
    const PseudoState state = StateFromMask(model, mask);
    if (FlowExists(model.graph(), 0, 3, state)) {
      expected[mask] = StateProbability(model, mask);
    }
  }
  MhOptions opt;
  opt.burn_in = 2000;
  opt.thinning = 15;
  opt.uniform_proposal = true;
  auto sampler = MhSampler::Create(model, cond, opt, Rng(404));
  ASSERT_TRUE(sampler.ok());
  EXPECT_GT(ChiSquarePValue(*sampler, expected, 40000), 1e-3);
}

}  // namespace
}  // namespace infoflow
