#include "graph/strip_reachability.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "graph/batch_reachability.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/reachability.h"
#include "graph/strip_plane.h"
#include "stats/rng.h"

namespace infoflow {
namespace {

// Same fixture as the 64-lane and scalar suites: 0 -> 1 -> 2 -> 3 with a
// 0 -> 3 shortcut and a cycle 3 -> 1.
DirectedGraph Chain() {
  GraphBuilder b(4);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  b.AddEdge(0, 3).CheckOK();
  b.AddEdge(3, 1).CheckOK();
  return std::move(b).Build();
}

// W independent 64-sample blocks plus their strip-major interleave, the
// per-word lane masks, and per-sample scalar activity vectors — everything
// the differential assertions need in one place. `rows` may leave the tail
// block ragged (rows % 64 != 0) or drop trailing blocks entirely
// (rows % (64*W) != 0), mirroring a bank whose row count doesn't fill the
// strip.
struct SampledStrip {
  std::vector<std::vector<std::uint64_t>> block_words;  // [w][e]
  std::vector<std::uint64_t> strip_words;               // [e*W + w]
  std::vector<std::uint64_t> lane_mask;                 // [w]
  // active[w][s][e] = edge e's activity in sample s of block w.
  std::vector<std::vector<std::vector<std::uint8_t>>> active;
};

SampledStrip RandomStrip(const DirectedGraph& g, Rng& rng, double density,
                         unsigned width, std::size_t rows) {
  SampledStrip strip;
  strip.block_words.assign(width,
                           std::vector<std::uint64_t>(g.num_edges(), 0));
  strip.strip_words.assign(std::size_t{g.num_edges()} * width, 0);
  strip.lane_mask.assign(width, 0);
  strip.active.assign(
      width, std::vector<std::vector<std::uint8_t>>(
                 64, std::vector<std::uint8_t>(g.num_edges(), 0)));
  for (unsigned w = 0; w < width; ++w) {
    const std::size_t first_row = std::size_t{w} * 64;
    const std::size_t block_rows =
        rows > first_row ? std::min<std::size_t>(64, rows - first_row) : 0;
    strip.lane_mask[w] = block_rows >= 64 ? ~std::uint64_t{0}
                         : block_rows == 0
                             ? 0
                             : (std::uint64_t{1} << block_rows) - 1;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      for (std::size_t s = 0; s < 64; ++s) {
        if (rng.Bernoulli(density)) {
          strip.block_words[w][e] |= std::uint64_t{1} << s;
          strip.active[w][s][e] = 1;
        }
      }
      strip.strip_words[std::size_t{e} * width + w] = strip.block_words[w][e];
    }
  }
  return strip;
}

template <unsigned W>
void ExpectMatchesReferences(const DirectedGraph& g, const SampledStrip& strip,
                             const std::vector<NodeId>& sources,
                             const StripReachabilityWorkspace<W>& wide,
                             const char* label) {
  BatchReachabilityWorkspace batch(g);
  ReachabilityWorkspace scalar(g);
  for (unsigned w = 0; w < W; ++w) {
    batch.Run(g, sources, strip.block_words[w].data(), strip.lane_mask[w]);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(wide.ReachedMask(v)[w], batch.ReachedMask(v))
          << label << " word " << w << " node " << v;
    }
    // Spot-check a few lanes against the scalar reference too, so the wide
    // path is pinned to both references, not just transitively.
    for (std::size_t s = 0; s < 64; s += 13) {
      if (((strip.lane_mask[w] >> s) & 1) == 0) continue;
      scalar.Run(g, sources, strip.active[w][s]);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ((wide.ReachedMask(v)[w] >> s) & 1,
                  scalar.IsReached(v) ? 1u : 0u)
            << label << " word " << w << " sample " << s << " node " << v;
      }
    }
  }
}

TEST(StripPlane, InterleavesBlockPlanesWithRaggedTail) {
  Rng rng(41);
  const DirectedGraph g = UniformRandomGraph(12, 30, rng);
  // 5 blocks over width-4 strips → 2 strips, second ragged (1 live block).
  std::vector<std::vector<std::uint64_t>> blocks(5);
  for (auto& b : blocks) {
    b.resize(g.num_edges());
    for (auto& word : b) word = rng.NextU64();
  }
  const StripPlane plane = BuildStripPlane(
      4, g.num_edges(), blocks.size(),
      [&](std::size_t b) { return blocks[b].data(); },
      [&](std::size_t b) { return b == 4 ? 0xFFu : ~std::uint64_t{0}; });
  ASSERT_EQ(plane.num_strips, 2u);
  EXPECT_EQ(plane.StripBlocks(0), 4u);
  EXPECT_EQ(plane.StripBlocks(1), 1u);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const std::size_t s = b / 4;
    const unsigned w = static_cast<unsigned>(b % 4);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      ASSERT_EQ(plane.StripWords(s)[std::size_t{e} * 4 + w], blocks[b][e])
          << "block " << b << " edge " << e;
    }
  }
  EXPECT_EQ(plane.StripLaneMask(0)[3], ~std::uint64_t{0});
  EXPECT_EQ(plane.StripLaneMask(1)[0], 0xFFu);
  // Words and lane masks past the last block stay zero.
  for (unsigned w = 1; w < 4; ++w) {
    EXPECT_EQ(plane.StripLaneMask(1)[w], 0u);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      ASSERT_EQ(plane.StripWords(1)[std::size_t{e} * 4 + w], 0u);
    }
  }
}

TEST(StripReachability, WidthOneMatchesTheBatchReferenceBitForBit) {
  Rng rng(43);
  for (int trial = 0; trial < 8; ++trial) {
    const DirectedGraph g = UniformRandomGraph(30, 90, rng);
    const SampledStrip strip = RandomStrip(g, rng, 0.25, 1, 64);
    const std::vector<NodeId> sources{static_cast<NodeId>(trial % 30)};
    StripReachabilityWorkspace<1> wide(g);
    wide.Run(g, sources, strip.strip_words.data(), strip.lane_mask.data());
    BatchReachabilityWorkspace batch(g);
    batch.Run(g, sources, strip.block_words[0].data());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(wide.ReachedMask(v)[0], batch.ReachedMask(v))
          << "trial " << trial << " node " << v;
    }
    ASSERT_EQ(wide.TouchedNodes(), batch.TouchedNodes()) << "trial " << trial;
  }
}

TEST(StripReachability, WideStripsMatchSixtyFourLaneAndScalarReferences) {
  Rng rng(47);
  for (int trial = 0; trial < 4; ++trial) {
    const DirectedGraph g = UniformRandomGraph(30, 90, rng);
    const std::vector<NodeId> sources{static_cast<NodeId>(trial % 30),
                                      static_cast<NodeId>((trial * 7) % 30)};
    {
      const SampledStrip strip = RandomStrip(g, rng, 0.25, 4, 256);
      StripReachabilityWorkspace<4> wide(g);
      wide.Run(g, sources, strip.strip_words.data(), strip.lane_mask.data());
      ExpectMatchesReferences(g, strip, sources, wide, "W=4");
    }
    {
      const SampledStrip strip = RandomStrip(g, rng, 0.25, 8, 512);
      StripReachabilityWorkspace<8> wide(g);
      wide.Run(g, sources, strip.strip_words.data(), strip.lane_mask.data());
      ExpectMatchesReferences(g, strip, sources, wide, "W=8");
    }
  }
}

TEST(StripReachability, RaggedTailRowsStayConfinedToTheirLaneMask) {
  Rng rng(53);
  // rows % 512 != 0: the last block is ragged and the strip's final words
  // are partially or fully dead.
  for (const std::size_t rows : {257u, 300u, 449u, 511u}) {
    const DirectedGraph g = UniformRandomGraph(25, 75, rng);
    const SampledStrip strip = RandomStrip(g, rng, 0.3, 8, rows);
    StripReachabilityWorkspace<8> wide(g);
    wide.Run(g, {0}, strip.strip_words.data(), strip.lane_mask.data());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (unsigned w = 0; w < 8; ++w) {
        ASSERT_EQ(wide.ReachedMask(v)[w] & ~strip.lane_mask[w], 0u)
            << "rows " << rows << " node " << v << " word " << w;
      }
    }
    ExpectMatchesReferences(g, strip, {0}, wide, "ragged");
  }
}

TEST(StripReachability, ConditionalSurvivorMasksMatchAcrossWidths) {
  Rng rng(59);
  // Arbitrary per-word survivor masks — the Eq. 7–8 conditional path seeds
  // only the lanes whose rows satisfied the constraints.
  for (int trial = 0; trial < 4; ++trial) {
    const DirectedGraph g = UniformRandomGraph(25, 75, rng);
    SampledStrip strip = RandomStrip(g, rng, 0.3, 4, 256);
    for (unsigned w = 0; w < 4; ++w) strip.lane_mask[w] = rng.NextU64();
    StripReachabilityWorkspace<4> wide(g);
    wide.Run(g, {1}, strip.strip_words.data(), strip.lane_mask.data());
    ExpectMatchesReferences(g, strip, {1}, wide, "survivors");
  }
}

TEST(StripReachability, PullAndPushSchedulesAgreeBitForBit) {
  Rng rng(61);
  for (int trial = 0; trial < 6; ++trial) {
    // Dense enough that mid-BFS frontiers cover most of the graph, so the
    // default threshold actually flips some rounds bottom-up.
    const DirectedGraph g = UniformRandomGraph(40, 400, rng);
    const SampledStrip strip = RandomStrip(g, rng, 0.4, 8, 512);
    StripReachabilityWorkspace<8> push(g);
    StripReachabilityWorkspace<8> pull(g);
    StripReachabilityWorkspace<8> mixed(g);
    push.set_pull_threshold(2.0);  // never pull
    pull.set_pull_threshold(0.0);  // always pull
    const std::vector<NodeId> sources{static_cast<NodeId>(trial % 40)};
    push.Run(g, sources, strip.strip_words.data(), strip.lane_mask.data());
    pull.Run(g, sources, strip.strip_words.data(), strip.lane_mask.data());
    mixed.Run(g, sources, strip.strip_words.data(), strip.lane_mask.data());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (unsigned w = 0; w < 8; ++w) {
        ASSERT_EQ(pull.ReachedMask(v)[w], push.ReachedMask(v)[w])
            << "trial " << trial << " node " << v << " word " << w;
        ASSERT_EQ(mixed.ReachedMask(v)[w], push.ReachedMask(v)[w])
            << "trial " << trial << " node " << v << " word " << w;
      }
    }
    ASSERT_EQ(pull.TouchedNodes(), push.TouchedNodes());
    ASSERT_EQ(mixed.TouchedNodes(), push.TouchedNodes());
  }
}

TEST(StripReachability, IncrementalSeedPropagateMatchesOneShot) {
  Rng rng(67);
  for (int trial = 0; trial < 6; ++trial) {
    const DirectedGraph g = UniformRandomGraph(30, 90, rng);
    const SampledStrip strip = RandomStrip(g, rng, 0.25, 4, 256);
    const NodeId a = static_cast<NodeId>(trial % 30);
    const NodeId b = static_cast<NodeId>((trial * 11 + 3) % 30);
    StripReachabilityWorkspace<4> oneshot(g);
    oneshot.Run(g, {a, b}, strip.strip_words.data(), strip.lane_mask.data());
    // The sharded router's exchange pattern: stage the seeds across several
    // Propagate rounds, upgrading lanes as cut-edge masks arrive.
    StripReachabilityWorkspace<4> inc(g);
    inc.Begin(g);
    std::array<std::uint64_t, 4> partial = {strip.lane_mask[0], 0, 0,
                                            strip.lane_mask[3]};
    inc.Seed(a, partial.data());
    inc.Propagate(strip.strip_words.data());
    inc.Seed(b, strip.lane_mask.data());
    inc.Propagate(strip.strip_words.data());
    inc.Seed(a, strip.lane_mask.data());  // upgrade the first seed's lanes
    inc.Propagate(strip.strip_words.data());
    // Re-seeding lanes a node already holds is a no-op.
    std::array<std::uint64_t, 4> held = {0xFF, 0, 0, 0};
    held[0] &= strip.lane_mask[0];
    inc.Seed(b, held.data());
    inc.Propagate(strip.strip_words.data());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (unsigned w = 0; w < 4; ++w) {
        ASSERT_EQ(inc.ReachedMask(v)[w], oneshot.ReachedMask(v)[w])
            << "trial " << trial << " node " << v << " word " << w;
      }
    }
    ASSERT_EQ(inc.TouchedNodes(), oneshot.TouchedNodes()) << "trial " << trial;
  }
}

TEST(StripReachability, RunUntilMatchesFullRunOnTarget) {
  Rng rng(71);
  for (int trial = 0; trial < 6; ++trial) {
    const DirectedGraph g = UniformRandomGraph(30, 80, rng);
    const SampledStrip strip = RandomStrip(g, rng, 0.2, 8, 512);
    const NodeId target = static_cast<NodeId>((trial * 7 + 1) % 30);
    StripReachabilityWorkspace<8> full(g);
    StripReachabilityWorkspace<8> early(g);
    full.Run(g, {0}, strip.strip_words.data(), strip.lane_mask.data());
    std::array<std::uint64_t, 8> hits = {};
    early.RunUntil(g, {0}, strip.strip_words.data(), target,
                   strip.lane_mask.data(), hits.data());
    for (unsigned w = 0; w < 8; ++w) {
      EXPECT_EQ(hits[w], full.ReachedMask(target)[w])
          << "trial " << trial << " word " << w;
    }
  }
}

TEST(StripReachability, RunUntilSaturatesImmediatelyWhenTargetIsSource) {
  const DirectedGraph g = Chain();
  std::vector<std::uint64_t> none(std::size_t{g.num_edges()} * 4, 0);
  StripReachabilityWorkspace<4> ws(g);
  std::array<std::uint64_t, 4> lanes = {0x5555555555555555ULL, 0,
                                        ~std::uint64_t{0}, 0x1};
  std::array<std::uint64_t, 4> hits = {};
  ws.RunUntil(g, {2}, none.data(), 2, lanes.data(), hits.data());
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(hits[w], lanes[w]);
  // The skipped run must not leak worklist state into the next one.
  std::vector<std::uint64_t> all(std::size_t{g.num_edges()} * 4,
                                 ~std::uint64_t{0});
  std::array<std::uint64_t, 4> full_mask;
  full_mask.fill(~std::uint64_t{0});
  ws.RunUntil(g, {0}, all.data(), 3, full_mask.data(), hits.data());
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(hits[w], ~std::uint64_t{0});
}

TEST(StripReachability, NoStateLeaksBetweenReusedRuns) {
  const DirectedGraph g = Chain();
  std::vector<std::uint64_t> all(std::size_t{g.num_edges()} * 8,
                                 ~std::uint64_t{0});
  std::vector<std::uint64_t> none(std::size_t{g.num_edges()} * 8, 0);
  std::array<std::uint64_t, 8> full_mask;
  full_mask.fill(~std::uint64_t{0});
  StripReachabilityWorkspace<8> ws(g);
  for (int i = 0; i < 8; ++i) {
    ws.Run(g, {0}, all.data(), full_mask.data());
    for (unsigned w = 0; w < 8; ++w) {
      ASSERT_EQ(ws.ReachedMask(3)[w], ~std::uint64_t{0});
    }
    ASSERT_EQ(ws.TouchedNodes().size(), 4u);
    ws.Run(g, {2}, none.data(), full_mask.data());
    for (unsigned w = 0; w < 8; ++w) {
      EXPECT_EQ(ws.ReachedMask(2)[w], ~std::uint64_t{0});
      EXPECT_EQ(ws.ReachedMask(3)[w], 0u);
      EXPECT_EQ(ws.ReachedMask(0)[w], 0u);
    }
    ASSERT_EQ(ws.TouchedNodes().size(), 1u);
  }
}

TEST(StripReachability, AccumulateReachedCountsSpansAllWords) {
  const DirectedGraph g = Chain();
  // Word 0 lane 1: 0->1 only. Word 3 lane 2: the whole chain.
  std::vector<std::uint64_t> words(std::size_t{g.num_edges()} * 4, 0);
  words[std::size_t{g.FindEdge(0, 1)} * 4 + 0] = 0b010;
  words[std::size_t{g.FindEdge(0, 1)} * 4 + 3] = 0b100;
  words[std::size_t{g.FindEdge(1, 2)} * 4 + 3] = 0b100;
  words[std::size_t{g.FindEdge(2, 3)} * 4 + 3] = 0b100;
  std::array<std::uint64_t, 4> lanes = {0b111, 0b111, 0b111, 0b111};
  StripReachabilityWorkspace<4> ws(g);
  ws.Run(g, {0}, words.data(), lanes.data());
  std::vector<std::uint32_t> counts(4 * 64, 0);
  ws.AccumulateReachedCounts(counts.data());
  EXPECT_EQ(counts[0 * 64 + 0], 1u);  // source only
  EXPECT_EQ(counts[0 * 64 + 1], 2u);  // {0, 1}
  EXPECT_EQ(counts[3 * 64 + 2], 4u);  // {0, 1, 2, 3}
  EXPECT_EQ(counts[1 * 64 + 0], 1u);  // source counted in every live lane
  EXPECT_EQ(counts[3 * 64 + 3], 0u);  // dead lane
}

TEST(StripReachability, FactoryCoversEveryWidthAndAutoRule) {
  const DirectedGraph g = Chain();
  for (const unsigned w : {1u, 4u, 8u}) {
    const auto ws = StripWorkspace::Create(w, g);
    ASSERT_NE(ws, nullptr);
    EXPECT_EQ(ws->words(), w);
  }
  EXPECT_EQ(ResolveStripWords(LaneWidth::k64, 4096), 1u);
  EXPECT_EQ(ResolveStripWords(LaneWidth::k256, 64), 4u);
  EXPECT_EQ(ResolveStripWords(LaneWidth::k512, 64), 8u);
  EXPECT_EQ(ResolveStripWords(LaneWidth::kAuto, 4096), 8u);
  EXPECT_EQ(ResolveStripWords(LaneWidth::kAuto, 511), 4u);
  EXPECT_EQ(ResolveStripWords(LaneWidth::kAuto, 256), 4u);
  EXPECT_EQ(ResolveStripWords(LaneWidth::kAuto, 255), 1u);
  // The kAuto cache cap: deep banks step back down once the per-width-word
  // working set (2n + m)·8 bytes would spill kStripWorkingSetBudget at the
  // row-count width. The bench shapes, in order: small stays at 8 words,
  // the mid shape caps to 4, the large one to the 64-lane path.
  EXPECT_EQ(ResolveStripWords(LaneWidth::kAuto, 4096, 1000, 2500), 8u);
  EXPECT_EQ(ResolveStripWords(LaneWidth::kAuto, 4096, 4000, 10000), 4u);
  EXPECT_EQ(ResolveStripWords(LaneWidth::kAuto, 4096, 16000, 40000), 1u);
  // Explicit widths are a user override — never capped.
  EXPECT_EQ(ResolveStripWords(LaneWidth::k512, 4096, 16000, 40000), 8u);
  // Callers without a graph at hand (zero sizes) keep the row-count rule.
  EXPECT_EQ(ResolveStripWords(LaneWidth::kAuto, 4096, 0, 0), 8u);
  EXPECT_EQ(ParseLaneWidth("auto").ValueOrDie(), LaneWidth::kAuto);
  EXPECT_EQ(ParseLaneWidth("512").ValueOrDie(), LaneWidth::k512);
  EXPECT_FALSE(ParseLaneWidth("128").ok());
  EXPECT_STREQ(LaneWidthName(LaneWidth::k256), "256");
}

TEST(StripReachability, RuntimeIsaPickMatchesGenericBitForBit) {
  // StripWorkspace::Create dispatches to the widest ISA variant the CPU
  // supports (AVX-512 → AVX2 → generic). Whatever it picked here must
  // compute exactly the generic instantiation's masks — the vector kernels
  // are the same OR/ANDNOT lattice steps in wider registers. Exercise both
  // sweep directions so the pull kernels are covered too.
  Rng rng(97);
  const DirectedGraph g = UniformRandomGraph(60, 150, rng);
  for (const unsigned width : {4u, 8u}) {
    const SampledStrip strip = RandomStrip(g, rng, 0.45, width,
                                           std::size_t{width} * 64 - 7);
    for (const double threshold : {0.0, kDefaultPullThreshold, 2.0}) {
      const auto picked = StripWorkspace::Create(width, g);
      picked->set_pull_threshold(threshold);
      picked->Run(g, {0, 11}, strip.strip_words.data(),
                  strip.lane_mask.data());
      std::unique_ptr<StripWorkspace> generic =
          width == 4
              ? std::unique_ptr<StripWorkspace>(
                    std::make_unique<StripReachabilityWorkspace<4>>(g))
              : std::make_unique<StripReachabilityWorkspace<8>>(g);
      generic->set_pull_threshold(threshold);
      generic->Run(g, {0, 11}, strip.strip_words.data(),
                   strip.lane_mask.data());
      ASSERT_EQ(picked->TouchedNodes(), generic->TouchedNodes())
          << "width " << width << " threshold " << threshold;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        for (unsigned w = 0; w < width; ++w) {
          ASSERT_EQ(picked->ReachedMask(v)[w], generic->ReachedMask(v)[w])
              << "width " << width << " threshold " << threshold << " node "
              << v << " word " << w;
        }
      }
    }
  }
}

}  // namespace
}  // namespace infoflow
