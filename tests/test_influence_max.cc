#include "core/influence_max.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

TEST(EstimateSpread, DeterministicStar) {
  // Hub 0 with 4 certain edges: spread of {0} is always 5.
  GraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) b.AddEdge(0, v).CheckOK();
  PointIcm model = PointIcm::Constant(Share(std::move(b).Build()), 1.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(EstimateSpread(model, {0}, 50, rng), 5.0);
  EXPECT_DOUBLE_EQ(EstimateSpread(model, {1}, 50, rng), 1.0);
}

TEST(EstimateSpread, MatchesClosedFormChain) {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  PointIcm model(Share(std::move(b).Build()), {0.6, 0.5});
  Rng rng(2);
  // E[|V|] = 1 + 0.6 + 0.3.
  EXPECT_NEAR(EstimateSpread(model, {0}, 60000, rng), 1.9, 0.02);
}

TEST(MaximizeInfluence, PicksObviousHub) {
  // One hub reaching 9 nodes with certainty; everyone else isolated.
  GraphBuilder b(20);
  for (NodeId v = 1; v < 10; ++v) b.AddEdge(0, v).CheckOK();
  PointIcm model = PointIcm::Constant(Share(std::move(b).Build()), 1.0);
  InfluenceMaxOptions opt;
  opt.num_seeds = 1;
  opt.simulations = 50;
  Rng rng(3);
  auto result = MaximizeInfluence(model, opt, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds, (std::vector<NodeId>{0}));
  EXPECT_DOUBLE_EQ(result->expected_spread[0], 10.0);
}

TEST(MaximizeInfluence, SecondSeedAvoidsOverlap) {
  // Two disjoint certain stars; greedy must take one hub from each rather
  // than a leaf of the first.
  GraphBuilder b(10);
  for (NodeId v = 1; v < 5; ++v) b.AddEdge(0, v).CheckOK();
  for (NodeId v = 6; v < 10; ++v) b.AddEdge(5, v).CheckOK();
  PointIcm model = PointIcm::Constant(Share(std::move(b).Build()), 1.0);
  InfluenceMaxOptions opt;
  opt.num_seeds = 2;
  opt.simulations = 50;
  Rng rng(4);
  auto result = MaximizeInfluence(model, opt, rng);
  ASSERT_TRUE(result.ok());
  std::vector<NodeId> seeds = result->seeds;
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(seeds, (std::vector<NodeId>{0, 5}));
  EXPECT_DOUBLE_EQ(result->expected_spread[1], 10.0);
}

TEST(MaximizeInfluence, SpreadIsNonDecreasingAcrossSelections) {
  Rng graph_rng(5);
  auto g = Share(UniformRandomGraph(40, 160, graph_rng));
  PointIcm model = PointIcm::Constant(g, 0.15);
  InfluenceMaxOptions opt;
  opt.num_seeds = 4;
  opt.simulations = 300;
  Rng rng(6);
  auto result = MaximizeInfluence(model, opt, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->seeds.size(), 4u);
  for (std::size_t k = 1; k < result->expected_spread.size(); ++k) {
    EXPECT_GE(result->expected_spread[k],
              result->expected_spread[k - 1] - 1e-9);
  }
}

TEST(MaximizeInfluence, CelfSkipsEvaluations) {
  Rng graph_rng(7);
  auto g = Share(UniformRandomGraph(60, 240, graph_rng));
  PointIcm model = PointIcm::Constant(g, 0.1);
  InfluenceMaxOptions opt;
  opt.num_seeds = 5;
  opt.simulations = 200;
  Rng rng(8);
  auto result = MaximizeInfluence(model, opt, rng);
  ASSERT_TRUE(result.ok());
  // Plain greedy would cost ~candidates × seeds = 300 evaluations; CELF
  // must do materially fewer (first round 60 + a handful per later round).
  EXPECT_LT(result->evaluations, 150u);
  EXPECT_GE(result->evaluations, 60u);
}

TEST(MaximizeInfluence, RespectsCandidateRestriction) {
  GraphBuilder b(6);
  for (NodeId v = 1; v < 6; ++v) b.AddEdge(0, v).CheckOK();
  PointIcm model = PointIcm::Constant(Share(std::move(b).Build()), 1.0);
  InfluenceMaxOptions opt;
  opt.num_seeds = 1;
  opt.simulations = 50;
  opt.candidates = {1, 2};  // the hub is not eligible
  Rng rng(9);
  auto result = MaximizeInfluence(model, opt, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->seeds[0] == 1 || result->seeds[0] == 2);
}

TEST(MaximizeInfluence, DuplicateCandidatesAreDeduplicated) {
  // Two disjoint certain stars; the candidate list repeats hub 0 three
  // times. Without dedup the duplicates inflate round-0 evaluations and a
  // stale duplicate entry can select hub 0 twice, wasting the second seed.
  GraphBuilder b(10);
  for (NodeId v = 1; v < 5; ++v) b.AddEdge(0, v).CheckOK();
  for (NodeId v = 6; v < 10; ++v) b.AddEdge(5, v).CheckOK();
  PointIcm model = PointIcm::Constant(Share(std::move(b).Build()), 1.0);
  InfluenceMaxOptions opt;
  opt.num_seeds = 2;
  opt.simulations = 50;
  opt.candidates = {0, 0, 5, 0, 5};
  Rng rng(11);
  auto result = MaximizeInfluence(model, opt, rng);
  ASSERT_TRUE(result.ok());
  std::vector<NodeId> seeds = result->seeds;
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(seeds, (std::vector<NodeId>{0, 5}));
  // Round 0 must evaluate each *distinct* candidate exactly once.
  EXPECT_LE(result->evaluations, 4u);

  // And num_seeds is checked against the distinct pool, not the raw list.
  opt.num_seeds = 3;
  EXPECT_FALSE(MaximizeInfluence(model, opt, rng).ok());
}

TEST(MaximizeInfluence, OptionValidation) {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  PointIcm model = PointIcm::Constant(Share(std::move(b).Build()), 0.5);
  Rng rng(10);
  InfluenceMaxOptions opt;
  opt.num_seeds = 0;
  EXPECT_FALSE(MaximizeInfluence(model, opt, rng).ok());
  opt.num_seeds = 4;  // more than nodes
  EXPECT_FALSE(MaximizeInfluence(model, opt, rng).ok());
  opt.num_seeds = 1;
  opt.candidates = {9};
  EXPECT_FALSE(MaximizeInfluence(model, opt, rng).ok());
}

}  // namespace
}  // namespace infoflow
