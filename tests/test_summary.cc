#include "learn/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/binomial.h"
#include "stats/rng.h"
#include "stats/special.h"

namespace infoflow {
namespace {

// Table I's shape: sink k (=3) with incident nodes A(=0), B(=1), C(=2).
DirectedGraph Star3() {
  GraphBuilder b(4);
  b.AddEdge(0, 3).CheckOK();
  b.AddEdge(1, 3).CheckOK();
  b.AddEdge(2, 3).CheckOK();
  return std::move(b).Build();
}

ObjectTrace Trace(std::initializer_list<Activation> activations) {
  ObjectTrace t;
  t.activations = activations;
  return t;
}

TEST(ObjectTrace, TimeLookup) {
  ObjectTrace t = Trace({{0, 1.0}, {2, 3.0}});
  EXPECT_DOUBLE_EQ(t.TimeOf(0), 1.0);
  EXPECT_TRUE(std::isinf(t.TimeOf(1)));
  EXPECT_TRUE(t.IsActive(2));
  EXPECT_FALSE(t.IsActive(1));
}

TEST(ValidateUnattributed, RejectsDuplicatesAndBadIds) {
  DirectedGraph g = Star3();
  UnattributedEvidence ev;
  ev.traces.push_back(Trace({{0, 1.0}, {0, 2.0}}));
  EXPECT_FALSE(ValidateUnattributedEvidence(g, ev).ok());
  ev.traces.clear();
  ev.traces.push_back(Trace({{9, 1.0}}));
  EXPECT_EQ(ValidateUnattributedEvidence(g, ev).code(),
            StatusCode::kOutOfRange);
}

TEST(SinkSummary, ParentsFollowInEdgeOrder) {
  DirectedGraph g = Star3();
  const SinkSummary s = BuildSinkSummary(g, 3, {});
  EXPECT_EQ(s.sink, 3u);
  EXPECT_EQ(s.parents, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_TRUE(s.rows.empty());
}

TEST(SinkSummary, CharacteristicIsParentsActiveBeforeSink) {
  DirectedGraph g = Star3();
  UnattributedEvidence ev;
  // A and B active before k, C after: characteristic {A, B}; a leak.
  ev.traces.push_back(Trace({{0, 1.0}, {1, 2.0}, {3, 3.0}, {2, 4.0}}));
  const SinkSummary s = BuildSinkSummary(g, 3, ev);
  ASSERT_EQ(s.rows.size(), 1u);
  EXPECT_EQ(s.rows[0].mask, (std::vector<std::uint8_t>{1, 1, 0}));
  EXPECT_EQ(s.rows[0].count, 1u);
  EXPECT_EQ(s.rows[0].leaks, 1u);
}

TEST(SinkSummary, InactiveSinkUsesEndOfTrace) {
  DirectedGraph g = Star3();
  UnattributedEvidence ev;
  ev.traces.push_back(Trace({{0, 1.0}, {2, 9.0}}));  // k never activates
  const SinkSummary s = BuildSinkSummary(g, 3, ev);
  ASSERT_EQ(s.rows.size(), 1u);
  EXPECT_EQ(s.rows[0].mask, (std::vector<std::uint8_t>{1, 0, 1}));
  EXPECT_EQ(s.rows[0].leaks, 0u);
}

TEST(SinkSummary, GroupsIdenticalCharacteristics) {
  DirectedGraph g = Star3();
  UnattributedEvidence ev;
  for (int i = 0; i < 5; ++i) {
    ev.traces.push_back(Trace({{0, 1.0}, {1, 2.0}, {3, 3.0}}));
  }
  for (int i = 0; i < 3; ++i) {
    ev.traces.push_back(Trace({{0, 1.0}, {1, 2.0}}));
  }
  const SinkSummary s = BuildSinkSummary(g, 3, ev);
  ASSERT_EQ(s.rows.size(), 1u);
  EXPECT_EQ(s.rows[0].count, 8u);
  EXPECT_EQ(s.rows[0].leaks, 5u);
}

TEST(SinkSummary, TableOneExampleShape) {
  // Reproduce Table I: {A,B}: 5/1, {B,C}: 50/15, {A,C}: 10/2.
  DirectedGraph g = Star3();
  UnattributedEvidence ev;
  auto add = [&ev](std::vector<NodeId> parents, int count, int leaks) {
    for (int i = 0; i < count; ++i) {
      ObjectTrace t;
      double time = 1.0;
      for (NodeId p : parents) t.activations.push_back({p, time++});
      if (i < leaks) t.activations.push_back({3, time});
      ev.traces.push_back(std::move(t));
    }
  };
  add({0, 1}, 5, 1);
  add({1, 2}, 50, 15);
  add({0, 2}, 10, 2);
  const SinkSummary s = BuildSinkSummary(g, 3, ev);
  ASSERT_EQ(s.rows.size(), 3u);
  // Rows are ordered by mask bytes: {1,1,0} < ... lexicographic on bytes:
  // {0,1,1} < {1,0,1} < {1,1,0}.
  EXPECT_EQ(s.rows[0].mask, (std::vector<std::uint8_t>{0, 1, 1}));
  EXPECT_EQ(s.rows[0].count, 50u);
  EXPECT_EQ(s.rows[0].leaks, 15u);
  EXPECT_EQ(s.rows[1].mask, (std::vector<std::uint8_t>{1, 0, 1}));
  EXPECT_EQ(s.rows[1].count, 10u);
  EXPECT_EQ(s.rows[1].leaks, 2u);
  EXPECT_EQ(s.rows[2].mask, (std::vector<std::uint8_t>{1, 1, 0}));
  EXPECT_EQ(s.rows[2].count, 5u);
  EXPECT_EQ(s.rows[2].leaks, 1u);
  EXPECT_EQ(s.TotalCount(), 65u);
  EXPECT_NE(s.ToString().find("50"), std::string::npos);
}

TEST(SinkSummary, UnexplainedObjectsCounted) {
  DirectedGraph g = Star3();
  UnattributedEvidence ev;
  // Sink active with no prior parent: unexplained.
  ev.traces.push_back(Trace({{3, 1.0}, {0, 2.0}}));
  const SinkSummary s = BuildSinkSummary(g, 3, ev);
  EXPECT_TRUE(s.rows.empty());
  EXPECT_EQ(s.unexplained_objects, 1u);
}

TEST(SinkSummary, SimultaneousActivationIsNotPrior) {
  DirectedGraph g = Star3();
  UnattributedEvidence ev;
  // Parent at exactly the sink's time: "strictly before" excludes it.
  ev.traces.push_back(Trace({{0, 1.0}, {1, 2.0}, {3, 2.0}}));
  const SinkSummary s = BuildSinkSummary(g, 3, ev);
  ASSERT_EQ(s.rows.size(), 1u);
  EXPECT_EQ(s.rows[0].mask, (std::vector<std::uint8_t>{1, 0, 0}));
}

TEST(SinkSummary, DiscreteStepPolicyNarrowsWindow) {
  DirectedGraph g = Star3();
  UnattributedEvidence ev;
  // A at t=1, B at t=4, k at t=5: with step 1.5 only B is "immediately
  // prior" (Saito's assumption); with kAllPrior both are.
  ev.traces.push_back(Trace({{0, 1.0}, {1, 4.0}, {3, 5.0}}));
  SummaryOptions discrete;
  discrete.policy = CharacteristicPolicy::kDiscreteStep;
  discrete.discrete_step = 1.5;
  const SinkSummary narrow = BuildSinkSummary(g, 3, ev, discrete);
  ASSERT_EQ(narrow.rows.size(), 1u);
  EXPECT_EQ(narrow.rows[0].mask, (std::vector<std::uint8_t>{0, 1, 0}));
  const SinkSummary wide = BuildSinkSummary(g, 3, ev);
  EXPECT_EQ(wide.rows[0].mask, (std::vector<std::uint8_t>{1, 1, 0}));
}

// The summary is a sufficient statistic (§V-B): the product of per-object
// Bernoulli likelihoods equals the product of per-characteristic Binomials
// up to the combinatorial constant.
TEST(SinkSummary, SufficiencyOfBinomialForm) {
  DirectedGraph g = Star3();
  UnattributedEvidence ev;
  Rng rng(11);
  // Random traces over parents {0,1,2} with random sink outcome.
  std::vector<std::pair<std::vector<std::uint8_t>, bool>> raw;
  for (int i = 0; i < 60; ++i) {
    ObjectTrace t;
    std::vector<std::uint8_t> mask(3, 0);
    double time = 1.0;
    for (NodeId p = 0; p < 3; ++p) {
      if (rng.Bernoulli(0.6)) {
        mask[p] = 1;
        t.activations.push_back({p, time++});
      }
    }
    if (mask == std::vector<std::uint8_t>(3, 0)) continue;
    const bool leak = rng.Bernoulli(0.4);
    if (leak) t.activations.push_back({3, time});
    raw.emplace_back(mask, leak);
    ev.traces.push_back(std::move(t));
  }
  const SinkSummary s = BuildSinkSummary(g, 3, ev);
  const std::vector<double> p{0.3, 0.55, 0.8};
  auto joint = [&p](const std::vector<std::uint8_t>& mask) {
    double survive = 1.0;
    for (std::size_t j = 0; j < 3; ++j) {
      if (mask[j]) survive *= 1.0 - p[j];
    }
    return 1.0 - survive;
  };
  double bernoulli_ll = 0.0;
  for (const auto& [mask, leak] : raw) {
    const double pj = joint(mask);
    bernoulli_ll += std::log(leak ? pj : 1.0 - pj);
  }
  double binomial_ll = 0.0;
  double log_constant = 0.0;
  for (const SummaryRow& row : s.rows) {
    binomial_ll += BinomialLogPmf(row.count, row.leaks, joint(row.mask));
    log_constant += LogChoose(row.count, row.leaks);
  }
  EXPECT_NEAR(bernoulli_ll, binomial_ll - log_constant, 1e-9);
}

TEST(BuildAllSinkSummaries, SkipsOrphanNodes) {
  DirectedGraph g = Star3();
  const auto all = BuildAllSinkSummaries(g, {});
  ASSERT_EQ(all.size(), 1u);  // only node 3 has in-edges
  EXPECT_EQ(all[0].sink, 3u);
}

}  // namespace
}  // namespace infoflow
