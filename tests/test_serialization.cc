#include "core/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/generators.h"

namespace infoflow {
namespace {

std::shared_ptr<const DirectedGraph> Share(DirectedGraph g) {
  return std::make_shared<const DirectedGraph>(std::move(g));
}

BetaIcm RandomBetaModel(std::uint64_t seed) {
  Rng rng(seed);
  auto g = Share(UniformRandomGraph(20, 60, rng));
  return BetaIcm::RandomSynthetic(g, rng);
}

TEST(Serialization, BetaIcmRoundTripsExactly) {
  const BetaIcm original = RandomBetaModel(1);
  auto restored = DeserializeBetaIcm(SerializeBetaIcm(original));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->graph().num_nodes(), original.graph().num_nodes());
  ASSERT_EQ(restored->graph().num_edges(), original.graph().num_edges());
  for (EdgeId e = 0; e < original.graph().num_edges(); ++e) {
    EXPECT_EQ(restored->graph().edge(e), original.graph().edge(e));
    EXPECT_DOUBLE_EQ(restored->alpha(e), original.alpha(e));
    EXPECT_DOUBLE_EQ(restored->beta(e), original.beta(e));
  }
}

TEST(Serialization, PointIcmRoundTripsExactly) {
  Rng rng(2);
  auto g = Share(UniformRandomGraph(15, 45, rng));
  std::vector<double> probs(g->num_edges());
  for (double& p : probs) p = rng.NextDouble();
  const PointIcm original(g, probs);
  auto restored = DeserializePointIcm(SerializePointIcm(original));
  ASSERT_TRUE(restored.ok());
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(restored->prob(e), original.prob(e));
  }
}

TEST(Serialization, HandlesBoundaryProbabilities) {
  GraphBuilder b(3);
  b.AddEdge(0, 1).CheckOK();
  b.AddEdge(1, 2).CheckOK();
  const PointIcm original(Share(std::move(b).Build()), {0.0, 1.0});
  auto restored = DeserializePointIcm(SerializePointIcm(original));
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->prob(0), 0.0);
  EXPECT_DOUBLE_EQ(restored->prob(1), 1.0);
}

TEST(Serialization, AcceptsNonCanonicalEdgeOrder) {
  // Hand-edited files may list edges out of order; parameters must still
  // land on the right edges.
  const std::string text =
      "infoflow-point-icm v1\n"
      "nodes 3\n"
      "edges 2\n"
      "1 2 0.75\n"
      "0 1 0.25\n";
  auto model = DeserializePointIcm(text);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->prob(model->graph().FindEdge(0, 1)), 0.25);
  EXPECT_DOUBLE_EQ(model->prob(model->graph().FindEdge(1, 2)), 0.75);
}

TEST(Serialization, RejectsWrongHeader) {
  EXPECT_FALSE(DeserializeBetaIcm("bogus\n").ok());
  EXPECT_FALSE(
      DeserializeBetaIcm(SerializePointIcm(PointIcm::Constant(
                             Share(StarFragment(2)), 0.5)))
          .ok());
}

TEST(Serialization, RejectsMalformedCounts) {
  EXPECT_FALSE(
      DeserializePointIcm("infoflow-point-icm v1\nnodes x\nedges 0\n").ok());
  EXPECT_FALSE(
      DeserializePointIcm("infoflow-point-icm v1\nnodes 3\n").ok());
}

TEST(Serialization, RejectsEdgeCountMismatch) {
  const std::string text =
      "infoflow-point-icm v1\nnodes 3\nedges 2\n0 1 0.5\n";
  EXPECT_FALSE(DeserializePointIcm(text).ok());
}

TEST(Serialization, RejectsBadValues) {
  EXPECT_FALSE(DeserializePointIcm(
                   "infoflow-point-icm v1\nnodes 2\nedges 1\n0 1 1.5\n")
                   .ok());
  EXPECT_FALSE(DeserializeBetaIcm(
                   "infoflow-beta-icm v1\nnodes 2\nedges 1\n0 1 0 2\n")
                   .ok());
  EXPECT_FALSE(DeserializePointIcm(
                   "infoflow-point-icm v1\nnodes 2\nedges 1\n0 5 0.5\n")
                   .ok());
  EXPECT_FALSE(DeserializePointIcm(
                   "infoflow-point-icm v1\nnodes 2\nedges 1\n0 1 abc\n")
                   .ok());
}

TEST(Serialization, RejectsDuplicateEdges) {
  const std::string text =
      "infoflow-point-icm v1\nnodes 3\nedges 2\n0 1 0.5\n0 1 0.6\n";
  EXPECT_FALSE(DeserializePointIcm(text).ok());
}

TEST(Serialization, FileRoundTrip) {
  const BetaIcm original = RandomBetaModel(3);
  const std::string path =
      ::testing::TempDir() + "/infoflow_serialization_test.icm";
  ASSERT_TRUE(SaveBetaIcm(original, path).ok());
  auto restored = LoadBetaIcm(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->alpha(0), original.alpha(0));
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileIsIOError) {
  auto result = LoadBetaIcm("/definitely/not/here.icm");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace infoflow
