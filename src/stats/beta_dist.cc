#include "stats/beta_dist.h"

#include <cmath>
#include <limits>

#include "stats/special.h"
#include "util/check.h"
#include "util/string_util.h"

namespace infoflow {

BetaDist::BetaDist(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  IF_CHECK(alpha > 0.0 && beta > 0.0)
      << "Beta parameters must be positive: alpha=" << alpha
      << " beta=" << beta;
}

BetaDist BetaDist::FromCounts(std::uint64_t successes, std::uint64_t failures,
                              double prior_alpha, double prior_beta) {
  return BetaDist(prior_alpha + static_cast<double>(successes),
                  prior_beta + static_cast<double>(failures));
}

BetaDist BetaDist::FromMeanVar(double mean, double var) {
  IF_CHECK(mean > 0.0 && mean < 1.0)
      << "Beta mean must be in (0,1), got " << mean;
  const double max_var = mean * (1.0 - mean);
  IF_CHECK(var > 0.0 && var < max_var)
      << "Beta variance must be in (0, mean(1-mean)): var=" << var
      << " bound=" << max_var;
  const double nu = mean * (1.0 - mean) / var - 1.0;
  return BetaDist(mean * nu, (1.0 - mean) * nu);
}

double BetaDist::Mean() const { return alpha_ / (alpha_ + beta_); }

double BetaDist::Variance() const {
  const double s = alpha_ + beta_;
  return alpha_ * beta_ / (s * s * (s + 1.0));
}

double BetaDist::StdDev() const { return std::sqrt(Variance()); }

double BetaDist::Mode() const {
  if (alpha_ > 1.0 && beta_ > 1.0) {
    return (alpha_ - 1.0) / (alpha_ + beta_ - 2.0);
  }
  if (alpha_ <= 1.0 && beta_ > 1.0) return 0.0;
  if (alpha_ > 1.0 && beta_ <= 1.0) return 1.0;
  return 0.5;  // Beta(1,1) (or bimodal a,b<1): report the interval center
}

double BetaDist::LogPdf(double x) const {
  if (x < 0.0 || x > 1.0) return -std::numeric_limits<double>::infinity();
  // Boundary care: x=0 with alpha<1 diverges, etc.
  if (x == 0.0) {
    if (alpha_ < 1.0) return std::numeric_limits<double>::infinity();
    if (alpha_ > 1.0) return -std::numeric_limits<double>::infinity();
    return std::log(beta_);  // alpha == 1: pdf(0) = beta
  }
  if (x == 1.0) {
    if (beta_ < 1.0) return std::numeric_limits<double>::infinity();
    if (beta_ > 1.0) return -std::numeric_limits<double>::infinity();
    return std::log(alpha_);
  }
  return (alpha_ - 1.0) * std::log(x) + (beta_ - 1.0) * std::log1p(-x) -
         LogBeta(alpha_, beta_);
}

double BetaDist::Pdf(double x) const {
  const double lp = LogPdf(x);
  if (std::isinf(lp)) return lp > 0 ? std::numeric_limits<double>::infinity()
                                    : 0.0;
  return std::exp(lp);
}

double BetaDist::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return RegularizedIncompleteBeta(alpha_, beta_, x);
}

double BetaDist::Quantile(double p) const {
  return InverseRegularizedIncompleteBeta(alpha_, beta_, p);
}

BetaDist::Interval BetaDist::CredibleInterval(double level) const {
  IF_CHECK(level > 0.0 && level < 1.0)
      << "credible level must be in (0,1), got " << level;
  const double tail = 0.5 * (1.0 - level);
  return Interval{Quantile(tail), Quantile(1.0 - tail)};
}

double BetaDist::Sample(Rng& rng) const { return rng.Beta(alpha_, beta_); }

std::string BetaDist::ToString() const {
  return "Beta(α=" + FormatDouble(alpha_) + ", β=" + FormatDouble(beta_) +
         ")";
}

}  // namespace infoflow
