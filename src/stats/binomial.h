/// \file binomial.h
/// \brief Binomial pmf utilities.
///
/// The unattributed learner's likelihood (Eq. 9) is a product of Binomials
/// over evidence-summary characteristics — one of the paper's claimed
/// computational advantages over per-Bernoulli evaluation.

#pragma once

#include <cstdint>

namespace infoflow {

/// log P(K = k | n, p) for K ~ Binomial(n, p). Handles p in {0, 1}
/// boundaries exactly (-inf for impossible outcomes).
double BinomialLogPmf(std::uint64_t n, std::uint64_t k, double p);

/// P(K = k | n, p).
double BinomialPmf(std::uint64_t n, std::uint64_t k, double p);

/// P(K <= k | n, p) via the regularized incomplete beta identity.
double BinomialCdf(std::uint64_t n, std::uint64_t k, double p);

}  // namespace infoflow
