/// \file histogram.h
/// \brief Fixed-bin histograms with ASCII rendering, used for the impact
/// figures (Fig. 4) and the uncertainty histograms (Fig. 3).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace infoflow {

/// \brief Equal-width histogram over [lo, hi); values outside the range are
/// clamped into the first/last bin so no mass is silently lost.
class Histogram {
 public:
  /// Creates `num_bins` equal-width bins spanning [lo, hi).
  Histogram(double lo, double hi, std::size_t num_bins);

  /// Adds one observation.
  void Add(double x);

  /// Adds `weight` observations' worth of mass at `x`.
  void AddWeighted(double x, double weight);

  /// Number of bins.
  std::size_t num_bins() const { return counts_.size(); }

  /// Mass in bin `b`.
  double Count(std::size_t b) const;

  /// Total mass.
  double Total() const { return total_; }

  /// Center of bin `b`.
  double BinCenter(std::size_t b) const;

  /// Bin index that `x` falls in (after clamping).
  std::size_t BinOf(double x) const;

  /// Normalized bin masses (sums to 1; all-zero when empty).
  std::vector<double> Normalized() const;

  /// \brief Multi-line ASCII bar rendering, one row per bin:
  /// `[0.10,0.20) ######### 42`. `width` is the maximum bar length.
  std::string ToAscii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace infoflow
