#include "stats/convergence.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/check.h"

namespace infoflow {
namespace {

/// A view over one split half of a chain.
struct Sequence {
  const double* data;
  std::size_t len;
};

double SeqMean(const Sequence& s) {
  double total = 0.0;
  for (std::size_t i = 0; i < s.len; ++i) total += s.data[i];
  return total / static_cast<double>(s.len);
}

/// Unbiased (n−1) sample variance; 0 when fewer than 2 values.
double SeqVariance(const Sequence& s, double mean) {
  if (s.len < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < s.len; ++i) {
    const double d = s.data[i] - mean;
    total += d * d;
  }
  return total / static_cast<double>(s.len - 1);
}

/// Biased (divisor-n) autocovariance at `lag` around the given mean.
double Autocov(const double* x, std::size_t n, std::size_t lag, double mean) {
  if (lag >= n) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    total += (x[i] - mean) * (x[i + lag] - mean);
  }
  return total / static_cast<double>(n);
}

/// Shortest chain length across `chains` (every chain must be non-empty).
std::size_t MinLength(const std::vector<std::vector<double>>& chains) {
  IF_CHECK(!chains.empty()) << "diagnostics need at least one chain";
  std::size_t n = std::numeric_limits<std::size_t>::max();
  for (const auto& c : chains) {
    IF_CHECK(!c.empty()) << "diagnostics need non-empty chains";
    n = std::min(n, c.size());
  }
  return n;
}

/// Guard against quadratic blow-up on pathological never-decaying chains:
/// past this many lags the ESS is effectively 0 anyway.
constexpr std::size_t kMaxEssLags = 4096;

}  // namespace

bool ChainDiagnostics::Converged(double max_rhat, double min_ess) const {
  return std::isfinite(rhat) && rhat <= max_rhat && ess >= min_ess;
}

std::string ChainDiagnostics::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "R^=%.3f ESS=%.1f MCSE=%.5f (%zu chains x %zu)",
                rhat, ess, mcse, num_chains, samples_per_chain);
  return buf;
}

ChainDiagnostics ComputeChainDiagnostics(
    const std::vector<std::vector<double>>& chains) {
  ChainDiagnostics d;
  d.num_chains = chains.size();
  const std::size_t min_len = MinLength(chains);

  if (min_len < 4) {
    // Too short to split: pool everything, report no-information defaults.
    d.samples_per_chain = min_len;
    const double total_count =
        static_cast<double>(chains.size()) * static_cast<double>(min_len);
    double total = 0.0;
    for (const auto& c : chains) {
      for (std::size_t i = 0; i < min_len; ++i) total += c[i];
    }
    d.mean = total / total_count;
    double ss = 0.0;
    for (const auto& c : chains) {
      for (std::size_t i = 0; i < min_len; ++i) {
        const double diff = c[i] - d.mean;
        ss += diff * diff;
      }
    }
    d.variance = total_count > 1.0 ? ss / (total_count - 1.0) : 0.0;
    d.rhat = 1.0;
    d.ess = total_count;
    d.mcse = std::sqrt(d.variance / total_count);
    return d;
  }

  // Truncate to an even common length and split every chain in half.
  const std::size_t n = min_len - (min_len % 2);
  const std::size_t half = n / 2;
  d.samples_per_chain = n;
  std::vector<Sequence> seqs;
  seqs.reserve(2 * chains.size());
  for (const auto& c : chains) {
    seqs.push_back({c.data(), half});
    seqs.push_back({c.data() + half, half});
  }
  const std::size_t m = seqs.size();
  const double md = static_cast<double>(m);
  const double ld = static_cast<double>(half);

  std::vector<double> means(m), vars(m);
  for (std::size_t s = 0; s < m; ++s) {
    means[s] = SeqMean(seqs[s]);
    vars[s] = SeqVariance(seqs[s], means[s]);
  }
  double grand = 0.0;
  for (double mu : means) grand += mu;
  grand /= md;
  double w = 0.0;
  for (double v : vars) w += v;
  w /= md;
  double b_over_l = 0.0;  // B/L: unbiased variance of the sequence means
  for (double mu : means) b_over_l += (mu - grand) * (mu - grand);
  b_over_l /= (md - 1.0);
  const double var_plus = (ld - 1.0) / ld * w + b_over_l;

  d.mean = grand;
  d.variance = var_plus;
  const double total_draws = md * ld;

  // Degeneracy threshold: accumulated rounding error of summing ~l values
  // of magnitude |grand| shows up as spurious variance of order ε²·mean².
  const double tiny = 1e-20 * (grand * grand + 1.0);
  if (w <= tiny) {
    if (b_over_l <= tiny) {
      // All draws identical: a frozen-but-agreeing ensemble. No MC error.
      d.rhat = 1.0;
      d.ess = total_draws;
      d.mcse = 0.0;
    } else {
      // Sequences are internally constant yet disagree: maximal
      // non-convergence, one independent value per sequence.
      d.rhat = std::numeric_limits<double>::infinity();
      d.ess = md;
      d.mcse = std::sqrt(var_plus / md);
    }
    return d;
  }

  d.rhat = std::sqrt(var_plus / w);

  // Combined-chain autocorrelations (Vehtari et al. 2021):
  //   ρ̂_t = 1 − (W − mean_s acov_s(t)) / var̂⁺
  // summed in Geyer initial-positive monotone pairs.
  const std::size_t max_lag = std::min(half - 1, kMaxEssLags);
  auto rho_at = [&](std::size_t t) {
    double acov = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      acov += Autocov(seqs[s].data, seqs[s].len, t, means[s]);
    }
    acov /= md;
    return 1.0 - (w - acov) / var_plus;
  };
  double tau = -1.0;
  double prev_pair = std::numeric_limits<double>::max();
  for (std::size_t t = 0; t <= max_lag; t += 2) {
    double pair = rho_at(t) + (t + 1 <= max_lag ? rho_at(t + 1) : 0.0);
    if (!(pair > 0.0)) break;
    pair = std::min(pair, prev_pair);  // enforce monotone decrease
    prev_pair = pair;
    tau += 2.0 * pair;
  }
  tau = std::max(tau, total_draws / (total_draws + 1.0));  // cap ESS ≤ N+1
  d.ess = std::min(total_draws, total_draws / tau);
  d.mcse = std::sqrt(var_plus / d.ess);
  return d;
}

double SplitChainRhat(const std::vector<std::vector<double>>& chains) {
  return ComputeChainDiagnostics(chains).rhat;
}

double EffectiveSampleSize(const std::vector<std::vector<double>>& chains) {
  return ComputeChainDiagnostics(chains).ess;
}

double AutocovarianceAtLag(const std::vector<double>& chain, std::size_t lag) {
  IF_CHECK(!chain.empty()) << "autocovariance of an empty chain";
  const Sequence s{chain.data(), chain.size()};
  return Autocov(s.data, s.len, lag, SeqMean(s));
}

}  // namespace infoflow
