#include "stats/fenwick_tree.h"

#include <cmath>

#include "util/check.h"

namespace infoflow {

namespace {
constexpr std::size_t kRefreshInterval = 1u << 20;
}

FenwickTree::FenwickTree(std::size_t size)
    : size_(size), tree_(size + 1, 0.0) {}

FenwickTree::FenwickTree(const std::vector<double>& weights)
    : FenwickTree(weights.size()) {
  // O(n) bulk build: place values then propagate to parents.
  for (std::size_t i = 0; i < weights.size(); ++i) {
    IF_CHECK(weights[i] >= 0.0)
        << "Fenwick weights must be non-negative; slot " << i << " is "
        << weights[i];
    tree_[i + 1] += weights[i];
    total_ += weights[i];
    const std::size_t parent = (i + 1) + ((i + 1) & (~i));
    if (parent <= size_) tree_[parent] += tree_[i + 1];
  }
}

void FenwickTree::Set(std::size_t index, double weight) {
  IF_CHECK(index < size_) << "index " << index << " out of range " << size_;
  IF_CHECK(weight >= 0.0) << "weight must be non-negative, got " << weight;
  const double delta = weight - Get(index);
  total_ += delta;
  for (std::size_t i = index + 1; i <= size_; i += i & (~i + 1)) {
    tree_[i] += delta;
  }
  if (++updates_since_refresh_ >= kRefreshInterval) RefreshTotal();
}

double FenwickTree::Get(std::size_t index) const {
  IF_CHECK(index < size_) << "index " << index << " out of range " << size_;
  return PrefixSum(index + 1) - PrefixSum(index);
}

double FenwickTree::PrefixSum(std::size_t index) const {
  IF_CHECK(index <= size_) << "prefix end " << index << " out of range";
  double sum = 0.0;
  for (std::size_t i = index; i > 0; i -= i & (~i + 1)) sum += tree_[i];
  return sum;
}

std::size_t FenwickTree::FindIndex(double target) const {
  IF_CHECK(size_ > 0);
  // Standard Fenwick descent: walk power-of-two strides left to right.
  std::size_t pos = 0;
  std::size_t mask = 1;
  while ((mask << 1) <= size_) mask <<= 1;
  double remaining = target;
  for (; mask > 0; mask >>= 1) {
    const std::size_t next = pos + mask;
    if (next <= size_ && tree_[next] <= remaining) {
      pos = next;
      remaining -= tree_[next];
    }
  }
  // pos is the count of slots whose cumulative weight is <= target.
  return pos < size_ ? pos : size_ - 1;
}

std::size_t FenwickTree::Sample(Rng& rng) const {
  IF_CHECK(total_ > 0.0) << "cannot sample from an all-zero Fenwick tree";
  return FindIndex(rng.NextDouble() * total_);
}

void FenwickTree::RefreshTotal() {
  total_ = PrefixSum(size_);
  updates_since_refresh_ = 0;
}

}  // namespace infoflow
