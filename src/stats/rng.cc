#include "stats/rng.h"

#include <cmath>

namespace infoflow {

namespace {

inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  IF_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  IF_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = (0ULL - bound) % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  IF_DCHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi - lo < 2^63, safe
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double sigma) {
  IF_DCHECK(sigma >= 0.0);
  return mean + sigma * Normal();
}

double Rng::Gamma(double shape) {
  IF_CHECK(shape > 0.0) << "Gamma shape must be positive, got " << shape;
  if (shape < 1.0) {
    // Boost to shape+1 then apply the shape<1 correction (Marsaglia–Tsang).
    const double u = NextDouble();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double alpha, double beta) {
  IF_CHECK(alpha > 0.0 && beta > 0.0)
      << "Beta parameters must be positive: alpha=" << alpha
      << " beta=" << beta;
  const double x = Gamma(alpha);
  const double y = Gamma(beta);
  const double sum = x + y;
  if (sum == 0.0) return 0.5;  // both underflowed; symmetric fallback
  return x / sum;
}

double Rng::Exponential(double rate) {
  IF_DCHECK(rate > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / rate;
}

std::uint64_t Rng::Binomial(std::uint64_t n, double p) {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  // Work with p <= 1/2 for numerical stability of the inversion loop.
  if (p > 0.5) return n - Binomial(n, 1.0 - p);
  const double np = static_cast<double>(n) * p;
  if (np < 30.0) {
    // Inversion by sequential search over the CDF: O(np) expected.
    const double q = 1.0 - p;
    const double s = p / q;
    double f = std::pow(q, static_cast<double>(n));  // P(X = 0)
    double u = NextDouble();
    std::uint64_t k = 0;
    while (u > f && k < n) {
      u -= f;
      ++k;
      f *= s * static_cast<double>(n - k + 1) / static_cast<double>(k);
    }
    return k;
  }
  // Large np: exact but O(n) Bernoulli counting (our workloads keep n modest
  // when np is large, so this stays cheap in practice).
  std::uint64_t count = 0;
  for (std::uint64_t i = 0; i < n; ++i) count += Bernoulli(p) ? 1u : 0u;
  return count;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  IF_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    IF_DCHECK(w >= 0.0);
    total += w;
  }
  IF_CHECK(total > 0.0) << "Categorical weights sum to zero";
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack
}

Rng Rng::Split() { return Rng(NextU64() ^ 0xa5a5a5a55a5a5a5aULL); }

}  // namespace infoflow
