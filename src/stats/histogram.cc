#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace infoflow {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0.0) {
  IF_CHECK(hi > lo) << "histogram range empty: [" << lo << "," << hi << ")";
  IF_CHECK(num_bins > 0) << "histogram needs at least one bin";
}

std::size_t Histogram::BinOf(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  return std::min(bin, counts_.size() - 1);
}

void Histogram::Add(double x) { AddWeighted(x, 1.0); }

void Histogram::AddWeighted(double x, double weight) {
  IF_DCHECK(weight >= 0.0);
  counts_[BinOf(x)] += weight;
  total_ += weight;
}

double Histogram::Count(std::size_t b) const {
  IF_CHECK(b < counts_.size());
  return counts_[b];
}

double Histogram::BinCenter(std::size_t b) const {
  IF_CHECK(b < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(b) + 0.5) * width;
}

std::vector<double> Histogram::Normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / total_;
  return out;
}

std::string Histogram::ToAscii(std::size_t width) const {
  double max_count = 0.0;
  for (double c : counts_) max_count = std::max(max_count, c);
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double bin_lo = lo_ + static_cast<double>(b) * bin_width;
    const double bin_hi = bin_lo + bin_width;
    std::size_t bar = 0;
    if (max_count > 0.0) {
      bar = static_cast<std::size_t>(
          std::lround(counts_[b] / max_count * static_cast<double>(width)));
    }
    std::snprintf(line, sizeof(line), "[%8.4f,%8.4f) ", bin_lo, bin_hi);
    out += line;
    out.append(bar, '#');
    std::snprintf(line, sizeof(line), " %.6g\n", counts_[b]);
    out += line;
  }
  return out;
}

}  // namespace infoflow
