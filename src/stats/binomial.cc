#include "stats/binomial.h"

#include <cmath>
#include <limits>

#include "stats/special.h"
#include "util/check.h"

namespace infoflow {

double BinomialLogPmf(std::uint64_t n, std::uint64_t k, double p) {
  IF_CHECK(k <= n) << "Binomial pmf requires k <= n: n=" << n << " k=" << k;
  IF_CHECK(p >= 0.0 && p <= 1.0) << "p must be in [0,1], got " << p;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  if (p == 0.0) return k == 0 ? 0.0 : kNegInf;
  if (p == 1.0) return k == n ? 0.0 : kNegInf;
  const auto kd = static_cast<double>(k);
  const auto nd = static_cast<double>(n);
  return LogChoose(n, k) + kd * std::log(p) + (nd - kd) * std::log1p(-p);
}

double BinomialPmf(std::uint64_t n, std::uint64_t k, double p) {
  return std::exp(BinomialLogPmf(n, k, p));
}

double BinomialCdf(std::uint64_t n, std::uint64_t k, double p) {
  IF_CHECK(k <= n) << "Binomial cdf requires k <= n: n=" << n << " k=" << k;
  if (k == n) return 1.0;
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return 0.0;
  // P(K <= k) = I_{1-p}(n-k, k+1).
  return RegularizedIncompleteBeta(static_cast<double>(n - k),
                                   static_cast<double>(k + 1), 1.0 - p);
}

}  // namespace infoflow
