/// \file beta_dist.h
/// \brief The Beta distribution — the workhorse of the paper.
///
/// Every edge of a betaICM carries a Beta(α, β) over its activation
/// probability (§II-A); the bucket experiment builds an empirical Beta per
/// bin (§IV-C); the unattributed learner uses Betas as priors (Eq. 9); and
/// Fig. 3 compares sampled flow-probability histograms to empirical Betas.

#pragma once

#include <string>

#include "stats/rng.h"

namespace infoflow {

/// \brief An immutable Beta(α, β) distribution with density, CDF, quantile,
/// moments and sampling.
class BetaDist {
 public:
  /// Constructs Beta(alpha, beta); both must be > 0 (checked).
  BetaDist(double alpha, double beta);

  /// The uniform prior Beta(1, 1) used for untrained edges.
  static BetaDist Uniform() { return BetaDist(1.0, 1.0); }

  /// \brief Builds the posterior from Bernoulli counts on top of a prior:
  /// Beta(prior_alpha + successes, prior_beta + failures).
  static BetaDist FromCounts(std::uint64_t successes, std::uint64_t failures,
                             double prior_alpha = 1.0,
                             double prior_beta = 1.0);

  /// \brief Method-of-moments fit: the Beta with the given mean and
  /// variance. Requires 0 < mean < 1 and 0 < var < mean(1-mean).
  static BetaDist FromMeanVar(double mean, double var);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  /// E[X] = α / (α + β) — the "expected point-probability" transform of
  /// §II-A.
  double Mean() const;

  /// Var[X] = αβ / ((α+β)²(α+β+1)).
  double Variance() const;

  /// Standard deviation.
  double StdDev() const;

  /// Mode for α, β > 1; clamps to {0, 1} boundary modes otherwise.
  double Mode() const;

  /// Density f(x); 0 outside [0, 1].
  double Pdf(double x) const;

  /// Log-density; -inf outside the support.
  double LogPdf(double x) const;

  /// CDF I_x(α, β).
  double Cdf(double x) const;

  /// Quantile function (inverse CDF), p in [0, 1].
  double Quantile(double p) const;

  /// \brief Central credible interval [Quantile((1-level)/2),
  /// Quantile(1-(1-level)/2)], e.g. level = 0.95 for the bucket experiment.
  struct Interval {
    double lo;
    double hi;
    /// True when `x` lies inside [lo, hi].
    bool Contains(double x) const { return x >= lo && x <= hi; }
  };
  Interval CredibleInterval(double level = 0.95) const;

  /// Draws a sample.
  double Sample(Rng& rng) const;

  /// "Beta(α=..., β=...)" for diagnostics.
  std::string ToString() const;

 private:
  double alpha_;
  double beta_;
};

}  // namespace infoflow
