/// \file descriptive.h
/// \brief Streaming and batch descriptive statistics (Welford accumulation,
/// quantiles, RMSE) used throughout the evaluation harness.

#pragma once

#include <cstdint>
#include <vector>

namespace infoflow {

/// \brief Numerically-stable streaming accumulator (Welford's algorithm)
/// for count / mean / variance / min / max.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator (parallel-friendly Chan formula).
  void Merge(const RunningStats& other);

  /// Number of observations added.
  std::uint64_t Count() const { return count_; }

  /// Sample mean (0 when empty).
  double Mean() const { return count_ ? mean_ : 0.0; }

  /// Unbiased sample variance (n-1 denominator; 0 when n < 2).
  double Variance() const;

  /// Population variance (n denominator; 0 when empty).
  double PopulationVariance() const;

  /// sqrt(Variance()).
  double StdDev() const;

  /// Smallest observation (+inf when empty).
  double Min() const;

  /// Largest observation (-inf when empty).
  double Max() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of `values` (0 when empty).
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (0 when fewer than 2 values).
double Variance(const std::vector<double>& values);

/// Standard deviation.
double StdDev(const std::vector<double>& values);

/// \brief Linear-interpolation quantile of an *unsorted* vector, q in [0,1]
/// (type-7, the numpy default). Copies and sorts internally.
double Quantile(std::vector<double> values, double q);

/// Root-mean-squared error between two equal-length vectors.
double Rmse(const std::vector<double>& predicted,
            const std::vector<double>& truth);

}  // namespace infoflow
