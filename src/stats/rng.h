/// \file rng.h
/// \brief Deterministic pseudo-random number generation.
///
/// All stochastic code in the library draws from this one generator type so
/// that every experiment is reproducible from a single seed. The engine is
/// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64, which gives
/// high-quality 64-bit output at a few cycles per draw — the MH sampler draws
/// millions of variates per figure.

#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace infoflow {

/// \brief xoshiro256++ engine with distribution helpers.
///
/// Not thread-safe; give each thread (or each experiment repetition) its own
/// instance, e.g. via Split().
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  std::uint64_t NextU64();

  /// UniformRandomBitGenerator interface (for std::shuffle etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextU64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via the Marsaglia polar method.
  double Normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double Normal(double mean, double sigma);

  /// Gamma(shape, 1) via Marsaglia–Tsang; accepts any shape > 0.
  double Gamma(double shape);

  /// Beta(alpha, beta) via the two-gamma construction.
  double Beta(double alpha, double beta);

  /// Exponential with the given rate (> 0).
  double Exponential(double rate);

  /// Binomial(n, p) — exact; O(n) worst case, inversion for small np.
  std::uint64_t Binomial(std::uint64_t n, double p);

  /// Draws an index from the (unnormalized, non-negative) weight vector.
  /// O(k); the Fenwick tree in fenwick_tree.h provides the O(log k) version.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Derives an independently-seeded child generator; used to hand each
  /// experiment repetition its own stream.
  Rng Split();

 private:
  std::uint64_t s_[4];
  // Cached second variate from the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace infoflow
