/// \file special.h
/// \brief Special mathematical functions needed by the distribution code:
/// log-gamma, log-beta, the regularized incomplete beta function (the Beta
/// CDF used for the bucket experiment's 95% confidence intervals), and
/// log-binomial-coefficients.

#pragma once

#include <cstdint>

namespace infoflow {

/// Natural log of the gamma function (wraps std::lgamma; positive x only).
double LogGamma(double x);

/// log B(a, b) = lgamma(a) + lgamma(b) - lgamma(a+b).
double LogBeta(double a, double b);

/// log of the binomial coefficient C(n, k).
double LogChoose(std::uint64_t n, std::uint64_t k);

/// \brief Regularized incomplete beta function I_x(a, b) for x in [0,1],
/// a, b > 0 — the CDF of Beta(a, b) at x.
///
/// Evaluated with the Lentz continued-fraction expansion (Numerical Recipes
/// §6.4), accurate to ~1e-14 over the usable range.
double RegularizedIncompleteBeta(double a, double b, double x);

/// \brief Inverse of RegularizedIncompleteBeta in x: returns x with
/// I_x(a, b) = p. Bisection refined with Newton steps; p in [0, 1].
double InverseRegularizedIncompleteBeta(double a, double b, double p);

/// \brief Regularized lower incomplete gamma function P(a, x) for a > 0,
/// x >= 0 — the CDF of Gamma(a, 1) at x. Series expansion for x < a+1,
/// continued fraction otherwise (Numerical Recipes §6.2).
double RegularizedLowerIncompleteGamma(double a, double x);

/// Chi-square CDF with `dof` degrees of freedom: P(dof/2, x/2).
double ChiSquareCdf(double x, double dof);

/// Standard normal CDF Phi(x).
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, refined
/// with one Halley step); p in (0, 1).
double NormalQuantile(double p);

}  // namespace infoflow
