#include "stats/special.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace infoflow {

double LogGamma(double x) {
  IF_CHECK(x > 0.0) << "LogGamma requires x > 0, got " << x;
  return std::lgamma(x);
}

double LogBeta(double a, double b) {
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

double LogChoose(std::uint64_t n, std::uint64_t k) {
  IF_CHECK(k <= n) << "LogChoose requires k <= n: n=" << n << " k=" << k;
  if (k == 0 || k == n) return 0.0;
  const auto nd = static_cast<double>(n);
  const auto kd = static_cast<double>(k);
  return LogGamma(nd + 1.0) - LogGamma(kd + 1.0) - LogGamma(nd - kd + 1.0);
}

namespace {

// Continued-fraction expansion for the incomplete beta function
// (modified Lentz's method, Numerical Recipes in C §6.4, betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double md = m;
    const double m2 = 2.0 * md;
    double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  IF_CHECK(a > 0.0 && b > 0.0)
      << "incomplete beta requires a,b > 0: a=" << a << " b=" << b;
  IF_CHECK(x >= 0.0 && x <= 1.0) << "x must be in [0,1], got " << x;
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front =
      a * std::log(x) + b * std::log1p(-x) - LogBeta(a, b);
  const double front = std::exp(log_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double InverseRegularizedIncompleteBeta(double a, double b, double p) {
  IF_CHECK(p >= 0.0 && p <= 1.0) << "p must be in [0,1], got " << p;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // Bisection to get close, then Newton to polish. The CDF is monotone.
  double lo = 0.0, hi = 1.0;
  double x = a / (a + b);  // start at the mean
  for (int iter = 0; iter < 200; ++iter) {
    const double f = RegularizedIncompleteBeta(a, b, x) - p;
    if (std::fabs(f) < 1e-14) break;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Newton step using pdf = x^{a-1}(1-x)^{b-1}/B(a,b).
    double next = x;
    if (x > 0.0 && x < 1.0) {
      const double log_pdf =
          (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) - LogBeta(a, b);
      const double pdf = std::exp(log_pdf);
      if (pdf > 0.0 && std::isfinite(pdf)) next = x - f / pdf;
    }
    // Fall back to bisection when Newton leaves the bracket.
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < 1e-15) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

namespace {

// Series representation of P(a, x), convergent for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x) = 1 - P(a, x), convergent for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  constexpr double kFpMin = std::numeric_limits<double>::min() / 1e-15;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

}  // namespace

double RegularizedLowerIncompleteGamma(double a, double x) {
  IF_CHECK(a > 0.0) << "incomplete gamma requires a > 0, got " << a;
  IF_CHECK(x >= 0.0) << "incomplete gamma requires x >= 0, got " << x;
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double dof) {
  IF_CHECK(dof > 0.0) << "chi-square needs positive dof, got " << dof;
  if (x <= 0.0) return 0.0;
  return RegularizedLowerIncompleteGamma(0.5 * dof, 0.5 * x);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  IF_CHECK(p > 0.0 && p < 1.0) << "p must be in (0,1), got " << p;
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

}  // namespace infoflow
