#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace infoflow {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::PopulationVariance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const {
  return count_ ? min_ : std::numeric_limits<double>::infinity();
}

double RunningStats::Max() const {
  return count_ ? max_ : -std::numeric_limits<double>::infinity();
}

double Mean(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) stats.Add(v);
  return stats.Mean();
}

double Variance(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) stats.Add(v);
  return stats.Variance();
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Quantile(std::vector<double> values, double q) {
  IF_CHECK(!values.empty()) << "Quantile of empty vector";
  IF_CHECK(q >= 0.0 && q <= 1.0) << "q must be in [0,1], got " << q;
  std::sort(values.begin(), values.end());
  const double h = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Rmse(const std::vector<double>& predicted,
            const std::vector<double>& truth) {
  IF_CHECK_EQ(predicted.size(), truth.size());
  IF_CHECK(!predicted.empty()) << "RMSE of empty vectors";
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - truth[i];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(predicted.size()));
}

}  // namespace infoflow
