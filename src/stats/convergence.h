/// \file convergence.h
/// \brief Cross-chain MCMC convergence diagnostics: split-chain Gelman–Rubin
/// R̂, autocorrelation-based effective sample size, and Monte-Carlo standard
/// error.
///
/// The MH sampler of §III draws *correlated* pseudo-states, so a fixed
/// retained-sample count says nothing about estimator quality on its own.
/// When several independent chains target the same stationary distribution
/// (see core/multi_chain.h), their agreement is measurable:
///
///  - **Split-chain R̂** (potential scale reduction factor): every chain is
///    split in half, and R̂² = var̂⁺ / W compares the pooled-variance
///    estimate var̂⁺ = (L−1)/L · W + B/L against the mean within-sequence
///    variance W. Chains that have not yet mixed across the state space
///    (or that drift within themselves — the reason for splitting) have
///    between-sequence variance B ≫ 0 and R̂ well above 1; at convergence
///    R̂ → 1 from above.
///  - **ESS**: the number of independent draws carrying the same estimator
///    information as the N correlated ones, N / (1 + 2 Σ_t ρ̂_t), with the
///    combined-chain autocorrelations ρ̂_t truncated by Geyer's initial
///    monotone positive-pair sequence.
///  - **MCSE**: sqrt(var̂⁺ / ESS) — the ±1σ Monte-Carlo error of the pooled
///    mean, the number callers should compare tolerances against.
///
/// All functions accept one vector of retained draws per chain. Chains may
/// have unequal lengths; every chain is truncated to the shortest (and to an
/// even length) so the split sequences stay comparable. The draws are
/// typically {0,1} flow indicators — binary chains are fully supported.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace infoflow {

/// \brief Convergence summary of a multi-chain (or single-chain) run.
struct ChainDiagnostics {
  /// Pooled mean of the (truncated) chains — the merged estimate.
  double mean = 0.0;
  /// Pooled variance estimate var̂⁺ (the R̂ numerator).
  double variance = 0.0;
  /// Split-chain potential scale reduction factor; ~1 at convergence.
  /// +inf when sequences disagree but have no within-sequence variance.
  double rhat = 1.0;
  /// Effective sample size across all chains (≤ total draws by clamping).
  double ess = 0.0;
  /// Monte-Carlo standard error of `mean`: sqrt(variance / ess).
  double mcse = 0.0;
  /// Number of chains the diagnostics were computed over.
  std::size_t num_chains = 0;
  /// Per-chain length after truncation to the shortest chain.
  std::size_t samples_per_chain = 0;

  /// Conventional acceptance test: R̂ below `max_rhat` (default 1.05) and
  /// at least `min_ess` effective draws.
  bool Converged(double max_rhat = 1.05, double min_ess = 100.0) const;

  /// "R̂=1.002 ESS=3521.4 MCSE=0.0081 (4 chains x 1000)".
  std::string ToString() const;
};

/// \brief Computes mean, var̂⁺, split-R̂, ESS and MCSE for the given chains
/// (one vector of draws per chain; all chains must be non-empty).
///
/// Degenerate inputs are well-defined: constant chains report R̂ = 1,
/// ESS = total draw count and MCSE = 0; chains shorter than 4 draws carry
/// no split information and report R̂ = 1 with ESS = total count.
ChainDiagnostics ComputeChainDiagnostics(
    const std::vector<std::vector<double>>& chains);

/// \brief Split-chain Gelman–Rubin R̂ alone (see ComputeChainDiagnostics).
double SplitChainRhat(const std::vector<std::vector<double>>& chains);

/// \brief Combined-chain effective sample size alone.
double EffectiveSampleSize(const std::vector<std::vector<double>>& chains);

/// \brief Biased (divisor-n) autocovariance of one chain at `lag`;
/// building block of the ESS estimate, exposed for tests.
double AutocovarianceAtLag(const std::vector<double>& chain, std::size_t lag);

}  // namespace infoflow
