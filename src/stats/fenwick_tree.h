/// \file fenwick_tree.h
/// \brief Fenwick (binary-indexed) tree over non-negative double weights
/// with O(log n) point update, prefix sum, and weighted sampling.
///
/// This is the "search tree" of §III-C: the Metropolis–Hastings proposal is
/// a multinomial over the m edges with weights q_i = p_i^{x_i}(1-p_i)^{1-x_i},
/// and flipping one edge changes exactly one weight. The tree lets us both
/// re-weigh and draw in O(log m), and maintains the normalizer Z as the total
/// weight (the paper's incremental identity Z' = Z + (-1)^{x_i}(1 - 2 p_i)
/// is exercised by the property tests).

#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.h"

namespace infoflow {

/// \brief Weighted index sampler backed by a Fenwick tree.
class FenwickTree {
 public:
  /// Creates a tree of `size` zero weights.
  explicit FenwickTree(std::size_t size);

  /// Creates a tree initialized with the given weights (all must be >= 0).
  explicit FenwickTree(const std::vector<double>& weights);

  /// Number of slots.
  std::size_t size() const { return size_; }

  /// Sets the weight of slot `index` to `weight` (>= 0). O(log n).
  void Set(std::size_t index, double weight);

  /// Current weight of slot `index`. O(log n).
  double Get(std::size_t index) const;

  /// Sum of weights in [0, index). O(log n).
  double PrefixSum(std::size_t index) const;

  /// Sum of all weights — the multinomial normalizer Z. O(1) amortized
  /// (maintained incrementally, periodically refreshed to bound FP drift).
  double Total() const { return total_; }

  /// \brief Finds the smallest index with PrefixSum(index+1) > target,
  /// i.e. the slot that a cumulative draw of `target` in [0, Total()) lands
  /// on. O(log n).
  std::size_t FindIndex(double target) const;

  /// Draws a slot with probability proportional to its weight. Total() must
  /// be positive.
  std::size_t Sample(Rng& rng) const;

  /// Recomputes Total() exactly from the tree (kills accumulated FP drift);
  /// called automatically every ~2^20 updates.
  void RefreshTotal();

 private:
  std::size_t size_;
  std::vector<double> tree_;  // 1-based internal array
  double total_ = 0.0;
  std::size_t updates_since_refresh_ = 0;
};

}  // namespace infoflow
