/// \file cascade_estimator.h
/// \brief Sampling-free flow and cascade-size estimation by message passing.
///
/// The paper answers "how far does a tweet travel" (Eq. 5, Fig. 4) by
/// averaging reachability indicators over MH-sampled pseudo-states. On
/// locally tree-like subgraphs the same quantities have closed forms
/// (Burkholz & Quackenbush, *Cascade Size Distributions*): activation
/// probabilities factor along the unique source→node paths, and the
/// cascade-size distribution is a *subtree convolution* — node v's subtree
/// size is 1 + Σ_children Bernoulli(p_vc)·S_c, so its PMF is the
/// convolution of the children's (each mixed with a point mass at 0 for
/// "edge did not fire"). Minutes of Monte-Carlo become one BFS plus
/// O(subtree²) convolutions.
///
/// Three regimes, chosen per call from the structural feasibility report
/// (analytic/feasibility.h):
///  - **tree-exact** — the reachable subgraph is a forest rooted at the
///    sources; products/convolutions are exact.
///  - **enumeration** — few enough relevant edges for exact pseudo-state
///    enumeration (Eq. 5 evaluated in full); exact on any topology, the
///    bounded-size analogue of a bounded-treewidth junction pass.
///  - **loopy** — the independence-approximation fallback: activation
///    marginals from a monotone message-passing fixpoint
///    (a(v) = 1 − Π_{(u,v)} (1 − a(u)·p_uv), the repeated-sweep form of the
///    paper's Eq. 2 product), and size PMFs from a *marginal-matched*
///    spanning-tree convolution whose per-edge weights are chosen so every
///    node's tree marginal telescopes to its fixpoint marginal — the mean
///    is preserved up to weight clamping (a node whose fixpoint marginal
///    exceeds its tree parent's caps at edge weight 1, biasing the mean
///    low by at most the clamped excess); higher moments assume
///    tree-structured dependence. The
///    feasibility report's `expected_error` bounds the trust callers should
///    place in it, and graphs denser than `max_excess_ratio` are *refused*
///    with a descriptive Status so dispatchers fall back to bank replay.
///
/// The estimator is deliberately model-layer-free: it takes a graph plus a
/// per-edge probability span, so graph/ is its only dependency and both
/// core/ (AnalyticImpact) and serve/ (BackendDispatcher) can layer on top.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "analytic/feasibility.h"
#include "graph/graph.h"
#include "util/status.h"

namespace infoflow::analytic {

/// \brief Which regime produced an analytic answer.
enum class AnalyticMethod {
  kTreeExact,
  kEnumeration,
  kLoopy,
};

/// The canonical lower-case name ("tree-exact" / "enumeration" / "loopy").
const char* AnalyticMethodName(AnalyticMethod method);

/// \brief Estimator tuning.
struct AnalyticOptions {
  /// Regime thresholds (see feasibility.h).
  FeasibilityOptions feasibility;
  /// Maximum fixpoint sweeps of the loopy fallback (each sweep relaxes
  /// every reachable node once in BFS order; convergence is monotone).
  std::size_t max_loopy_sweeps = 64;
  /// Sweep-to-sweep convergence threshold on the largest marginal change.
  double loopy_tolerance = 1e-12;
  /// When true, only the two exact regimes are accepted and a loopy-only
  /// subgraph is refused — the BackendDispatcher's `auto` mode sets this so
  /// automatic routing never silently trades accuracy for speed.
  bool require_exact = false;
};

/// \brief Per-node activation probabilities for a cascade from `sources`.
struct ReachAnswer {
  /// probability[v] = Pr[v is activated]; sources are 1, unreachable 0.
  std::vector<double> probability;
  AnalyticMethod method = AnalyticMethod::kTreeExact;
  FeasibilityReport report;
};

/// \brief Pr[source-set ⤳ v] for every node v — the analytic form of the
/// flow/community query (Eq. 5 without sampling). Fails with
/// InvalidArgument/OutOfRange on malformed input and FailedPrecondition
/// (descriptive) when the subgraph is denser than the options allow.
Result<ReachAnswer> ReachProbabilities(const DirectedGraph& graph,
                                       std::span<const double> probs,
                                       std::span<const NodeId> sources,
                                       const AnalyticOptions& options = {});

/// \brief The cascade-size distribution of a single-source cascade.
struct CascadePmf {
  /// impact[k] = Pr[exactly k non-source nodes activate] (Fig. 4's
  /// x-axis; the source itself is excluded, matching
  /// ImpactDistribution::counts). Sums to 1.
  std::vector<double> impact;
  AnalyticMethod method = AnalyticMethod::kTreeExact;
  FeasibilityReport report;

  /// Expected impact Σ k·impact[k].
  double Mean() const;
};

/// \brief The full impact PMF from `source` (Fig. 4 analytically). Same
/// failure contract as ReachProbabilities.
Result<CascadePmf> CascadeSizePmf(const DirectedGraph& graph,
                                  std::span<const double> probs,
                                  NodeId source,
                                  const AnalyticOptions& options = {});

}  // namespace infoflow::analytic
