/// \file feasibility.h
/// \brief Structural tree-likeness scoring for the analytic backend.
///
/// The message-passing / subtree-convolution estimator
/// (analytic/cascade_estimator.h) is *exact* only when the subgraph a query
/// actually touches — the nodes reachable from its source set — is a forest
/// rooted at the sources: every reachable non-source node owns exactly one
/// reachable in-edge, so activation events along distinct branches are
/// independent and products/convolutions compose without error (Burkholz &
/// Quackenbush's locally-tree-like regime; the same structural condition
/// under which the paper's Eq. 2 exclude-set recursion is exact).
///
/// AssessFeasibility is the cheap scorer the BackendDispatcher consults
/// before committing a query to the analytic path: one structural BFS (no
/// probabilities, no convolutions) classifies the reachable subgraph as
///   - tree-like       → analytic answers are exact,
///   - enumerable      → small enough for exact pseudo-state enumeration,
///   - loopy-feasible  → the independence-approximation fallback applies,
///     with `expected_error` reporting the heuristic error budget,
///   - infeasible      → the estimator refuses (dense multi-path structure;
///     callers fall back to MH + bank replay, Eq. 5).

#pragma once

#include <cstddef>
#include <span>

#include "graph/graph.h"

namespace infoflow::analytic {

/// \brief Thresholds for the feasibility classification.
struct FeasibilityOptions {
  /// Reachable subgraphs with at most this many relevant edges are answered
  /// by exact pseudo-state enumeration even when loopy (2^m states; keep
  /// well under core/exact_flow.h's kMaxEnumerationEdges).
  std::size_t max_enumeration_edges = 20;
  /// Largest tolerated excess-edge ratio for the loopy fallback: above it
  /// the estimator refuses rather than return an unbounded approximation.
  double max_excess_ratio = 0.25;
};

/// \brief What one structural BFS learned about a query's subgraph.
struct FeasibilityReport {
  /// Nodes reachable from the source set (sources included).
  std::size_t reachable_nodes = 0;
  /// Sources that are in range of the graph (multi-source queries).
  std::size_t reachable_sources = 0;
  /// Relevant edges: (u, v) with u reachable and v not a source — the only
  /// edges that can influence a cascade from the sources (an edge *into* a
  /// source never changes anything, the source is active by fiat).
  std::size_t relevant_edges = 0;
  /// relevant_edges − (reachable_nodes − reachable_sources): 0 iff every
  /// reachable non-source node has exactly one reachable in-edge, i.e. the
  /// reachable subgraph is a forest rooted at the sources (acyclicity is
  /// implied: a cycle's nodes could only be entered through their unique
  /// in-edge, which would lie on the cycle — unreachable from the sources).
  std::size_t excess_edges = 0;
  /// excess_edges / max(1, relevant_edges) — the fraction of edges creating
  /// multi-path correlations the tree factorization cannot represent.
  double excess_ratio = 0.0;
  /// Forest rooted at the sources: analytic answers are exact.
  bool tree_like = false;
  /// Small enough for exact enumeration regardless of topology.
  bool enumerable = false;
  /// tree_like || enumerable || excess_ratio <= max_excess_ratio.
  bool feasible = false;
  /// Heuristic error budget of the answer the estimator would return: 0 for
  /// the two exact regimes, excess_ratio for the loopy fallback (the
  /// independence approximation's bias grows with the shared-path density;
  /// tests/test_analytic.cc spot-checks the calibration).
  double expected_error = 0.0;
};

/// \brief Classifies the subgraph reachable from `sources` (all must be
/// < graph.num_nodes(); duplicates are harmless). Pure structure — no edge
/// probabilities are consulted, so the score is valid for any model over
/// the same topology and cheap enough to run per query.
FeasibilityReport AssessFeasibility(const DirectedGraph& graph,
                                    std::span<const NodeId> sources,
                                    const FeasibilityOptions& options = {});

}  // namespace infoflow::analytic
