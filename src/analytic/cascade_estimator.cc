#include "analytic/cascade_estimator.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "util/check.h"

namespace infoflow::analytic {
namespace {

/// \brief The query's reachable subgraph, explored once per call: BFS
/// discovery order (sources first), the spanning discovery edge per node,
/// and the relevant edge list (see feasibility.h for "relevant").
struct Subgraph {
  std::vector<NodeId> order;
  std::vector<bool> reachable;
  std::vector<bool> is_source;
  std::size_t num_sources = 0;
  std::vector<EdgeId> relevant;
  /// discovery[v] = the edge that first reached v (kInvalidEdge for
  /// sources and unreachable nodes). In the tree-exact regime this is v's
  /// *only* reachable in-edge; in the loopy regime it spans the
  /// marginal-matched tree.
  std::vector<EdgeId> discovery;
};

Subgraph Explore(const DirectedGraph& graph,
                 std::span<const NodeId> sources) {
  const NodeId n = graph.num_nodes();
  Subgraph sub;
  sub.reachable.assign(n, false);
  sub.is_source.assign(n, false);
  sub.discovery.assign(n, kInvalidEdge);
  for (const NodeId s : sources) {
    if (sub.is_source[s]) continue;
    sub.is_source[s] = true;
    sub.reachable[s] = true;
    sub.order.push_back(s);
    ++sub.num_sources;
  }
  // True BFS (index queue) so discovery edges form a breadth-first
  // spanning forest — deterministic regardless of regime.
  for (std::size_t head = 0; head < sub.order.size(); ++head) {
    const NodeId u = sub.order[head];
    for (const EdgeId e : graph.OutEdges(u)) {
      const NodeId v = graph.edge(e).dst;
      if (!sub.is_source[v]) sub.relevant.push_back(e);
      if (!sub.reachable[v]) {
        sub.reachable[v] = true;
        sub.discovery[v] = e;
        sub.order.push_back(v);
      }
    }
  }
  return sub;
}

Status ValidateInputs(const DirectedGraph& graph,
                      std::span<const double> probs,
                      std::span<const NodeId> sources) {
  if (probs.size() != graph.num_edges()) {
    return Status::InvalidArgument("edge-probability span has ", probs.size(),
                                   " entries but the graph has ",
                                   graph.num_edges(), " edges");
  }
  if (sources.empty()) {
    return Status::InvalidArgument("need at least one source");
  }
  for (const NodeId s : sources) {
    if (s >= graph.num_nodes()) {
      return Status::OutOfRange("source node ", s, " not in graph with ",
                                graph.num_nodes(), " nodes");
    }
  }
  return Status::OK();
}

/// Picks the regime for `report`, or a descriptive refusal.
Result<AnalyticMethod> PickMethod(const FeasibilityReport& report,
                                  const AnalyticOptions& options) {
  if (report.tree_like) return AnalyticMethod::kTreeExact;
  if (report.enumerable) return AnalyticMethod::kEnumeration;
  if (!options.require_exact && report.feasible) {
    return AnalyticMethod::kLoopy;
  }
  return Status::FailedPrecondition(
      "analytic estimator refused: the reachable subgraph has ",
      report.reachable_nodes, " nodes and ", report.relevant_edges,
      " relevant edges, of which ", report.excess_edges,
      " are excess (ratio ", report.excess_ratio, ") — not locally ",
      "tree-like",
      options.require_exact
          ? " and no exact regime applies (auto dispatch requires one)"
          : " and denser than max_excess_ratio allows",
      "; answer this query with the sampling/bank backend (Eq. 5 replay)");
}

/// \brief Loopy activation marginals: monotone Gauss–Seidel sweeps of
/// a(v) = 1 − Π_{(u,v) relevant} (1 − a(u)·p_uv) in BFS order. Exact on
/// forests (one sweep suffices); the independence approximation otherwise.
std::vector<double> LoopyMarginals(const DirectedGraph& graph,
                                   std::span<const double> probs,
                                   const Subgraph& sub,
                                   const AnalyticOptions& options) {
  std::vector<double> a(graph.num_nodes(), 0.0);
  for (const NodeId v : sub.order) {
    if (sub.is_source[v]) a[v] = 1.0;
  }
  for (std::size_t sweep = 0; sweep < options.max_loopy_sweeps; ++sweep) {
    double delta = 0.0;
    for (const NodeId v : sub.order) {
      if (sub.is_source[v]) continue;
      double miss = 1.0;
      for (const EdgeId e : graph.InEdges(v)) {
        const NodeId u = graph.edge(e).src;
        if (sub.reachable[u]) miss *= 1.0 - a[u] * probs[e];
      }
      const double next = 1.0 - miss;
      delta = std::max(delta, next - a[v]);
      a[v] = next;
    }
    if (delta <= options.loopy_tolerance) break;
  }
  return a;
}

/// \brief Runs `fn(weight, reached, activated_count)` for every assignment
/// of the relevant edges — Eq. 5 evaluated exactly over the subgraph.
/// `reached` is indexed by position in sub.order; count includes sources.
template <typename Fn>
void EnumerateSubworlds(const DirectedGraph& graph,
                        std::span<const double> probs, const Subgraph& sub,
                        Fn&& fn) {
  const std::size_t m = sub.relevant.size();
  IF_CHECK(m < 63) << "enumeration regime over " << m << " edges";
  const std::size_t n_local = sub.order.size();
  std::vector<std::size_t> local(graph.num_nodes(), 0);
  for (std::size_t i = 0; i < n_local; ++i) local[sub.order[i]] = i;
  // Local adjacency: (src-local → (dst-local, relevant-edge index)).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(n_local);
  for (std::size_t i = 0; i < m; ++i) {
    const Edge& edge = graph.edge(sub.relevant[i]);
    adj[local[edge.src]].push_back({local[edge.dst], i});
  }
  std::vector<char> reached(n_local, 0);
  std::vector<std::size_t> stack;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    double weight = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double p = probs[sub.relevant[i]];
      weight *= ((mask >> i) & 1) != 0 ? p : 1.0 - p;
    }
    if (weight == 0.0) continue;
    std::fill(reached.begin(), reached.end(), 0);
    stack.clear();
    for (std::size_t i = 0; i < sub.num_sources; ++i) {
      reached[i] = 1;  // sources lead sub.order
      stack.push_back(i);
    }
    std::size_t count = sub.num_sources;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      for (const auto& [v, i] : adj[u]) {
        if (((mask >> i) & 1) != 0 && reached[v] == 0) {
          reached[v] = 1;
          ++count;
          stack.push_back(v);
        }
      }
    }
    fn(weight, reached, count);
  }
}

/// \brief Subtree convolution over the discovery forest: node v joins its
/// parent's subtree with probability `weight(v)`, and the subtree-size PMF
/// composes by convolution (children independent — exact on the tree-exact
/// regime, the marginal-matched approximation on the loopy one). Returns
/// the root's size PMF (index = activated node count including the root).
template <typename WeightFn>
std::vector<double> SubtreePmf(const DirectedGraph& graph, const Subgraph& sub,
                               NodeId root, WeightFn&& weight) {
  const std::size_t n_local = sub.order.size();
  std::vector<std::size_t> local(graph.num_nodes(), 0);
  for (std::size_t i = 0; i < n_local; ++i) local[sub.order[i]] = i;
  // pmf[i][k] = Pr[node sub.order[i]'s subtree activates exactly k nodes |
  // the node itself is active]; initialized to "the node alone".
  std::vector<std::vector<double>> pmf(n_local, std::vector<double>{0.0, 1.0});
  // Reverse BFS order processes every child before its parent; folding a
  // child releases its PMF, so peak memory tracks the live path, not the
  // whole tree.
  for (std::size_t i = n_local; i-- > 1;) {
    const NodeId v = sub.order[i];
    const std::size_t pi = local[graph.edge(sub.discovery[v]).src];
    const double w = weight(v);
    std::vector<double>& child = pmf[i];
    std::vector<double>& conv = pmf[pi];
    std::vector<double> merged(conv.size() + child.size() - 1, 0.0);
    for (std::size_t a = 0; a < conv.size(); ++a) {
      const double ca = conv[a];
      if (ca == 0.0) continue;
      merged[a] += ca * (1.0 - w);
      for (std::size_t k = 1; k < child.size(); ++k) {
        merged[a + k] += ca * w * child[k];
      }
    }
    conv = std::move(merged);
    std::vector<double>().swap(child);
  }
  return std::move(pmf[local[root]]);
}

}  // namespace

const char* AnalyticMethodName(AnalyticMethod method) {
  switch (method) {
    case AnalyticMethod::kTreeExact:
      return "tree-exact";
    case AnalyticMethod::kEnumeration:
      return "enumeration";
    case AnalyticMethod::kLoopy:
      return "loopy";
  }
  return "unknown";
}

double CascadePmf::Mean() const {
  double mean = 0.0;
  for (std::size_t k = 0; k < impact.size(); ++k) {
    mean += static_cast<double>(k) * impact[k];
  }
  return mean;
}

Result<ReachAnswer> ReachProbabilities(const DirectedGraph& graph,
                                       std::span<const double> probs,
                                       std::span<const NodeId> sources,
                                       const AnalyticOptions& options) {
  IF_RETURN_NOT_OK(ValidateInputs(graph, probs, sources));
  ReachAnswer answer;
  answer.report = AssessFeasibility(graph, sources, options.feasibility);
  auto method = PickMethod(answer.report, options);
  IF_RETURN_NOT_OK(method.status());
  answer.method = *method;

  const Subgraph sub = Explore(graph, sources);
  answer.probability.assign(graph.num_nodes(), 0.0);
  for (const NodeId v : sub.order) {
    if (sub.is_source[v]) answer.probability[v] = 1.0;
  }

  switch (answer.method) {
    case AnalyticMethod::kTreeExact:
      // Unique source→v paths: the probability telescopes down the
      // discovery forest (parents precede children in BFS order).
      for (const NodeId v : sub.order) {
        if (sub.is_source[v]) continue;
        const EdgeId e = sub.discovery[v];
        answer.probability[v] =
            answer.probability[graph.edge(e).src] * probs[e];
      }
      break;
    case AnalyticMethod::kEnumeration: {
      std::vector<double> acc(sub.order.size(), 0.0);
      EnumerateSubworlds(
          graph, probs, sub,
          [&](double weight, const std::vector<char>& reached,
              std::size_t /*count*/) {
            for (std::size_t i = 0; i < reached.size(); ++i) {
              if (reached[i] != 0) acc[i] += weight;
            }
          });
      for (std::size_t i = 0; i < sub.order.size(); ++i) {
        answer.probability[sub.order[i]] = acc[i];
      }
      break;
    }
    case AnalyticMethod::kLoopy:
      answer.probability = LoopyMarginals(graph, probs, sub, options);
      break;
  }
  return answer;
}

Result<CascadePmf> CascadeSizePmf(const DirectedGraph& graph,
                                  std::span<const double> probs,
                                  NodeId source,
                                  const AnalyticOptions& options) {
  const NodeId sources[1] = {source};
  IF_RETURN_NOT_OK(ValidateInputs(graph, probs, sources));
  CascadePmf out;
  out.report = AssessFeasibility(graph, sources, options.feasibility);
  auto method = PickMethod(out.report, options);
  IF_RETURN_NOT_OK(method.status());
  out.method = *method;

  const Subgraph sub = Explore(graph, {sources, 1});
  std::vector<double> size_pmf;  // index = activated count incl. source
  switch (out.method) {
    case AnalyticMethod::kTreeExact:
      // Every relevant edge is a discovery edge (unique in-edges), so the
      // subtree convolution over the discovery tree is exact.
      size_pmf = SubtreePmf(graph, sub, source, [&](NodeId v) {
        return probs[sub.discovery[v]];
      });
      break;
    case AnalyticMethod::kEnumeration: {
      std::vector<double> acc(sub.order.size() + 1, 0.0);
      EnumerateSubworlds(graph, probs, sub,
                         [&](double weight, const std::vector<char>&,
                             std::size_t count) { acc[count] += weight; });
      size_pmf = std::move(acc);
      break;
    }
    case AnalyticMethod::kLoopy: {
      // Marginal-matched spanning tree: choosing the tree-edge weight
      // a(v)/a(parent) makes every node's tree marginal telescope to its
      // loopy fixpoint marginal, so the PMF mean equals Σ a(v); the shape
      // assumes tree dependence (see report.expected_error).
      const std::vector<double> a = LoopyMarginals(graph, probs, sub, options);
      size_pmf = SubtreePmf(graph, sub, source, [&](NodeId v) {
        const double parent = a[graph.edge(sub.discovery[v]).src];
        return parent > 0.0 ? std::min(1.0, a[v] / parent) : 0.0;
      });
      break;
    }
  }

  // Impact excludes the always-active source: shift by one.
  out.impact.assign(size_pmf.size() > 1 ? size_pmf.size() - 1 : 1, 0.0);
  for (std::size_t k = 1; k < size_pmf.size(); ++k) {
    out.impact[k - 1] = size_pmf[k];
  }
  return out;
}

}  // namespace infoflow::analytic
