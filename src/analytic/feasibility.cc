#include "analytic/feasibility.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace infoflow::analytic {

FeasibilityReport AssessFeasibility(const DirectedGraph& graph,
                                    std::span<const NodeId> sources,
                                    const FeasibilityOptions& options) {
  FeasibilityReport report;
  const NodeId n = graph.num_nodes();
  std::vector<bool> reachable(n, false);
  std::vector<bool> is_source(n, false);
  std::vector<NodeId> frontier;
  for (const NodeId s : sources) {
    IF_CHECK(s < n) << "source " << s << " out of range";
    if (is_source[s]) continue;  // duplicate
    is_source[s] = true;
    ++report.reachable_sources;
    reachable[s] = true;
    frontier.push_back(s);
  }

  // Structural BFS: every edge leaving a reachable node is relevant unless
  // it re-enters a source (sources are active by fiat, see header).
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (const EdgeId e : graph.OutEdges(u)) {
      const NodeId v = graph.edge(e).dst;
      if (!is_source[v]) ++report.relevant_edges;
      if (!reachable[v]) {
        reachable[v] = true;
        frontier.push_back(v);
      }
    }
  }
  report.reachable_nodes =
      static_cast<std::size_t>(std::count(reachable.begin(), reachable.end(),
                                          true));

  const std::size_t spanning =
      report.reachable_nodes - report.reachable_sources;
  report.excess_edges = report.relevant_edges - spanning;
  report.excess_ratio =
      static_cast<double>(report.excess_edges) /
      static_cast<double>(std::max<std::size_t>(1, report.relevant_edges));
  report.tree_like = report.excess_edges == 0;
  report.enumerable = report.relevant_edges <= options.max_enumeration_edges;
  report.feasible = report.tree_like || report.enumerable ||
                    report.excess_ratio <= options.max_excess_ratio;
  report.expected_error =
      (report.tree_like || report.enumerable) ? 0.0 : report.excess_ratio;
  return report;
}

}  // namespace infoflow::analytic
