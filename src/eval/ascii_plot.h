/// \file ascii_plot.h
/// \brief Terminal renderings of the paper's figures, so each bench binary
/// shows its plot inline (the CSV dumps carry the exact series).

#pragma once

#include <string>
#include <vector>

#include "eval/bucket.h"

namespace infoflow {

/// \brief Renders a calibration plot in the style of Fig. 1 (left):
/// x = estimated probability, y = empirical probability, '·' diagonal,
/// '|' the per-bin empirical CI, 'x' bin means inside the CI, 'o' outside.
/// Includes a per-bin volume table underneath (Fig. 1 right).
std::string RenderCalibration(const BucketReport& report,
                              std::size_t height = 21);

/// \brief Renders an x-y line/point series on a simple grid (used for the
/// RMSE curves of Fig. 7 and timing scatter of Fig. 6). Multiple series
/// share axes; each uses its own glyph.
struct Series {
  std::string name;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};
std::string RenderSeries(const std::vector<Series>& series,
                         std::size_t width = 64, std::size_t height = 20,
                         bool log_x = false);

}  // namespace infoflow
