#include "eval/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/check.h"

namespace infoflow {

namespace {

/// Maps a value in [lo, hi] to a row/column index in [0, cells).
std::size_t Cell(double value, double lo, double hi, std::size_t cells) {
  if (hi <= lo) return 0;
  const double frac = std::clamp((value - lo) / (hi - lo), 0.0, 1.0);
  return std::min(static_cast<std::size_t>(frac * static_cast<double>(cells)),
                  cells - 1);
}

}  // namespace

std::string RenderCalibration(const BucketReport& report,
                              std::size_t height) {
  IF_CHECK(height >= 5) << "plot height too small";
  const std::size_t width = std::max<std::size_t>(report.bins.size(), 30);
  std::vector<std::string> grid(height, std::string(width, ' '));

  // Diagonal (the ideal calibration).
  for (std::size_t c = 0; c < width; ++c) {
    const double x = (static_cast<double>(c) + 0.5) /
                     static_cast<double>(width);
    grid[height - 1 - Cell(x, 0.0, 1.0, height)][c] = '.';
  }
  // Bins: CI bars then means.
  for (const BucketBin& bin : report.bins) {
    if (bin.count == 0) continue;
    const std::size_t c = Cell(0.5 * (bin.lo + bin.hi), 0.0, 1.0, width);
    const std::size_t r_lo = Cell(bin.ci_lo, 0.0, 1.0, height);
    const std::size_t r_hi = Cell(bin.ci_hi, 0.0, 1.0, height);
    for (std::size_t r = r_lo; r <= r_hi && r < height; ++r) {
      grid[height - 1 - r][c] = '|';
    }
    const std::size_t r_mean = Cell(bin.mean_estimate, 0.0, 1.0, height);
    grid[height - 1 - r_mean][c] = bin.covered ? 'x' : 'o';
  }

  std::string out;
  out += "empirical probability (y) vs estimated probability (x); "
         "x=mean in CI, o=outside\n";
  for (std::size_t r = 0; r < height; ++r) {
    const double y_top = 1.0 - static_cast<double>(r) /
                                   static_cast<double>(height - 1);
    char label[16];
    std::snprintf(label, sizeof(label), "%4.2f |", y_top);
    out += label;
    out += grid[r];
    out += '\n';
  }
  out += "     +";
  out.append(width, '-');
  out += "\n      0.0";
  out.append(width > 16 ? width - 13 : 1, ' ');
  out += "1.0\n";

  out += "bin volumes (count/positives): ";
  for (const BucketBin& bin : report.bins) {
    if (bin.count == 0) continue;
    char cell[48];
    std::snprintf(cell, sizeof(cell), "[%.2f:%llu/%llu] ", bin.lo,
                  static_cast<unsigned long long>(bin.count),
                  static_cast<unsigned long long>(bin.positives));
    out += cell;
  }
  out += '\n';
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "coverage: %.1f%% of %llu occupied bins (total %llu trials)\n",
                100.0 * report.coverage,
                static_cast<unsigned long long>(report.occupied_bins),
                static_cast<unsigned long long>(report.total));
  out += tail;
  return out;
}

std::string RenderSeries(const std::vector<Series>& series, std::size_t width,
                         std::size_t height, bool log_x) {
  IF_CHECK(width >= 10 && height >= 5) << "plot area too small";
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -x_lo, y_lo = x_lo, y_hi = -x_lo;
  for (const Series& s : series) {
    IF_CHECK_EQ(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double x = log_x ? std::log10(std::max(s.x[i], 1e-12)) : s.x[i];
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      y_lo = std::min(y_lo, s.y[i]);
      y_hi = std::max(y_hi, s.y[i]);
    }
  }
  if (!(x_lo < x_hi)) x_hi = x_lo + 1.0;
  if (!(y_lo < y_hi)) y_hi = y_lo + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  // Paint in reverse order so the first-listed series wins overlaps.
  for (auto it = series.rbegin(); it != series.rend(); ++it) {
    const Series& s = *it;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double x = log_x ? std::log10(std::max(s.x[i], 1e-12)) : s.x[i];
      const std::size_t c = Cell(x, x_lo, x_hi, width);
      const std::size_t r = Cell(s.y[i], y_lo, y_hi, height);
      grid[height - 1 - r][c] = s.glyph;
    }
  }
  std::string out;
  char line[64];
  for (std::size_t r = 0; r < height; ++r) {
    const double y = y_hi - (y_hi - y_lo) * static_cast<double>(r) /
                                static_cast<double>(height - 1);
    std::snprintf(line, sizeof(line), "%9.3g |", y);
    out += line;
    out += grid[r];
    out += '\n';
  }
  out += "          +";
  out.append(width, '-');
  std::snprintf(line, sizeof(line), "\n           x: %.3g .. %.3g%s\n",
                log_x ? std::pow(10.0, x_lo) : x_lo,
                log_x ? std::pow(10.0, x_hi) : x_hi,
                log_x ? " (log scale)" : "");
  out += line;
  out += "legend: ";
  for (const Series& s : series) {
    out += s.glyph;
    out += "=" + s.name + "  ";
  }
  out += '\n';
  return out;
}

}  // namespace infoflow
