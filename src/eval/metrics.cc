#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace infoflow {

AccuracyReport ComputeAccuracy(const std::vector<BucketPair>& pairs,
                               double clamp_eps) {
  IF_CHECK(clamp_eps > 0.0 && clamp_eps < 0.5)
      << "clamp_eps must be in (0, 0.5), got " << clamp_eps;
  AccuracyReport report;
  report.count = pairs.size();
  if (pairs.empty()) return report;
  double log_sum = 0.0;
  double sq_sum = 0.0;
  for (const BucketPair& pair : pairs) {
    const double p = std::clamp(pair.estimate, clamp_eps, 1.0 - clamp_eps);
    log_sum += std::log(pair.outcome ? p : 1.0 - p);
    const double z = pair.outcome ? 1.0 : 0.0;
    const double d = pair.estimate - z;
    sq_sum += d * d;
  }
  const auto n = static_cast<double>(pairs.size());
  report.normalized_likelihood = std::exp(log_sum / n);
  report.brier = sq_sum / n;
  return report;
}

std::vector<BucketPair> MiddleValues(const std::vector<BucketPair>& pairs) {
  std::vector<BucketPair> out;
  out.reserve(pairs.size());
  for (const BucketPair& pair : pairs) {
    if (pair.estimate > 0.0 && pair.estimate < 1.0) out.push_back(pair);
  }
  return out;
}

AccuracyReport ComputeMiddleAccuracy(const std::vector<BucketPair>& pairs,
                                     double clamp_eps) {
  return ComputeAccuracy(MiddleValues(pairs), clamp_eps);
}

}  // namespace infoflow
