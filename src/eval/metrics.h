/// \file metrics.h
/// \brief The accuracy measures of Table III: normalized likelihood
/// (geometric mean of the probability assigned to the realized outcome) and
/// the Brier probability score (mean squared prediction error), each over
/// all values or over "middle values" only (predictions not exactly 0/1).

#pragma once

#include <cstdint>
#include <vector>

#include "eval/bucket.h"

namespace infoflow {

/// \brief One experiment's scores.
struct AccuracyReport {
  /// exp( mean_i log Pr[z_i | p_i] ); closer to 1 is better. Predictions of
  /// exactly 0/1 are nudged by `clamp_eps` (the paper's fix for the
  /// degenerate-likelihood artifact).
  double normalized_likelihood = 0.0;
  /// mean_i (p_i − z_i)²; closer to 0 is better.
  double brier = 0.0;
  /// Trials scored.
  std::uint64_t count = 0;
};

/// Scores every pair ("all values" column of Table III).
AccuracyReport ComputeAccuracy(const std::vector<BucketPair>& pairs,
                               double clamp_eps = 1e-6);

/// Pairs whose prediction is strictly inside (0, 1) — the "middle values"
/// filter of Table III, avoiding wash-out by masses of certain predictions.
std::vector<BucketPair> MiddleValues(const std::vector<BucketPair>& pairs);

/// Scores the middle values only.
AccuracyReport ComputeMiddleAccuracy(const std::vector<BucketPair>& pairs,
                                     double clamp_eps = 1e-6);

}  // namespace infoflow
