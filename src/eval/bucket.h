/// \file bucket.h
/// \brief The bucket experiment (§IV-C, adapted from Troncoso & Danezis):
/// the paper's calibration test for probabilistic flow predictions, behind
/// Figs. 1, 2, 5, 8, 9 and 10.
///
/// Each trial pairs a predicted flow probability p with the boolean outcome
/// z of one independently sampled test state. Pairs are bucketed by p into
/// B equal-width bins [j/B, (j+1)/B); each bin's outcomes build an
/// empirical Beta (α = 1 + Σz, β = |bin| − Σz + 1) whose 95% credible
/// interval should contain the bin's mean prediction ~95% of the time when
/// the predictor is calibrated.

#pragma once

#include <cstdint>
#include <vector>

#include "stats/beta_dist.h"
#include "util/status.h"

namespace infoflow {

/// \brief One trial: predicted probability and observed outcome.
struct BucketPair {
  double estimate = 0.0;
  bool outcome = false;
};

/// \brief Per-bin aggregate.
struct BucketBin {
  /// Bin bounds [lo, hi).
  double lo = 0.0;
  double hi = 0.0;
  /// Trials falling in the bin (the "volume of estimates", right plot of
  /// Fig. 1).
  std::uint64_t count = 0;
  /// Positive outcomes among them (the "volume of flows").
  std::uint64_t positives = 0;
  /// Mean predicted probability p̄ of the bin.
  double mean_estimate = 0.0;
  /// Empirical Beta parameters.
  double alpha = 1.0;
  double beta = 1.0;
  /// Central credible interval of the empirical Beta.
  double ci_lo = 0.0;
  double ci_hi = 1.0;
  /// Empirical mean α/(α+β).
  double empirical_mean = 0.5;
  /// True when mean_estimate lies inside [ci_lo, ci_hi].
  bool covered = false;
};

/// \brief The full analysis of a pair collection.
struct BucketReport {
  std::vector<BucketBin> bins;
  /// Total trials.
  std::uint64_t total = 0;
  /// Non-empty bins.
  std::uint64_t occupied_bins = 0;
  /// Fraction of non-empty bins whose mean prediction is inside the
  /// empirical CI (expected ≈ the credible level for a calibrated
  /// predictor).
  double coverage = 0.0;
};

/// \brief A Hosmer–Lemeshow-style goodness-of-calibration test over a
/// bucket report: χ² = Σ_bins (O_b − E_b)² / (E_b (1 − p̄_b)) with
/// O_b = positives, E_b = count · p̄_b, on bins with enough expected mass.
struct CalibrationTestResult {
  /// The χ² statistic.
  double statistic = 0.0;
  /// Bins contributing (expected positives and negatives both >= 1).
  std::uint64_t bins_used = 0;
  /// P(χ²_{bins_used} >= statistic): small values reject calibration.
  /// (Classic HL uses g−2 dof for in-sample fits; predictions here are
  /// made out of sample, so dof = bins_used.)
  double p_value = 1.0;
};

/// Computes the calibration test from an analyzed report.
CalibrationTestResult ChiSquareCalibration(const BucketReport& report);

/// \brief Accumulates (estimate, outcome) pairs and analyzes them.
class BucketExperiment {
 public:
  /// Records one trial; `estimate` must be a probability in [0, 1].
  void Add(double estimate, bool outcome);

  /// All recorded pairs.
  const std::vector<BucketPair>& pairs() const { return pairs_; }

  /// Number of recorded pairs.
  std::size_t size() const { return pairs_.size(); }

  /// \brief Bins into `num_bins` equal-width buckets and builds the report
  /// at the given credible level (the paper uses 30 bins at 95%).
  BucketReport Analyze(std::size_t num_bins = 30, double level = 0.95) const;

 private:
  std::vector<BucketPair> pairs_;
};

/// \brief One point of the moving-window confidence band (the grey region
/// of Fig. 1): the empirical Beta CI of all pairs whose estimate lies
/// within ±halfwidth of `center`.
struct WindowPoint {
  double center = 0.0;
  std::uint64_t count = 0;
  double ci_lo = 0.0;
  double ci_hi = 1.0;
};

/// Evaluates the band on `grid_points` centers across [0, 1]; the paper's
/// window is ±1/60.
std::vector<WindowPoint> MovingWindowBand(const std::vector<BucketPair>& pairs,
                                          std::size_t grid_points = 61,
                                          double halfwidth = 1.0 / 60.0,
                                          double level = 0.95);

}  // namespace infoflow
