#include "eval/bucket.h"

#include <algorithm>
#include <cmath>

#include "stats/special.h"
#include "util/check.h"

namespace infoflow {

void BucketExperiment::Add(double estimate, bool outcome) {
  IF_CHECK(estimate >= 0.0 && estimate <= 1.0)
      << "estimate " << estimate << " is not a probability";
  pairs_.push_back(BucketPair{estimate, outcome});
}

BucketReport BucketExperiment::Analyze(std::size_t num_bins,
                                       double level) const {
  IF_CHECK(num_bins > 0) << "need at least one bin";
  IF_CHECK(level > 0.0 && level < 1.0) << "bad credible level " << level;
  BucketReport report;
  report.bins.resize(num_bins);
  report.total = pairs_.size();

  const double width = 1.0 / static_cast<double>(num_bins);
  for (std::size_t j = 0; j < num_bins; ++j) {
    report.bins[j].lo = static_cast<double>(j) * width;
    report.bins[j].hi = static_cast<double>(j + 1) * width;
  }
  std::vector<double> sum_estimate(num_bins, 0.0);
  for (const BucketPair& pair : pairs_) {
    auto j = static_cast<std::size_t>(pair.estimate *
                                      static_cast<double>(num_bins));
    j = std::min(j, num_bins - 1);  // estimate == 1.0 lands in the top bin
    BucketBin& bin = report.bins[j];
    ++bin.count;
    if (pair.outcome) ++bin.positives;
    sum_estimate[j] += pair.estimate;
  }
  std::uint64_t covered = 0;
  for (std::size_t j = 0; j < num_bins; ++j) {
    BucketBin& bin = report.bins[j];
    if (bin.count == 0) continue;
    ++report.occupied_bins;
    bin.mean_estimate = sum_estimate[j] / static_cast<double>(bin.count);
    // §IV-C: α = 1 + Σz, β = |bin| − α + 2 = |bin| − Σz + 1.
    bin.alpha = 1.0 + static_cast<double>(bin.positives);
    bin.beta = static_cast<double>(bin.count - bin.positives) + 1.0;
    const BetaDist empirical(bin.alpha, bin.beta);
    bin.empirical_mean = empirical.Mean();
    const auto ci = empirical.CredibleInterval(level);
    bin.ci_lo = ci.lo;
    bin.ci_hi = ci.hi;
    bin.covered = ci.Contains(bin.mean_estimate);
    if (bin.covered) ++covered;
  }
  report.coverage =
      report.occupied_bins > 0
          ? static_cast<double>(covered) /
                static_cast<double>(report.occupied_bins)
          : 0.0;
  return report;
}

CalibrationTestResult ChiSquareCalibration(const BucketReport& report) {
  CalibrationTestResult result;
  for (const BucketBin& bin : report.bins) {
    if (bin.count == 0) continue;
    const double n = static_cast<double>(bin.count);
    const double p = bin.mean_estimate;
    const double expected_pos = n * p;
    const double expected_neg = n * (1.0 - p);
    // Standard applicability rule: both expected cells >= 1.
    if (expected_pos < 1.0 || expected_neg < 1.0) continue;
    const double observed = static_cast<double>(bin.positives);
    const double diff = observed - expected_pos;
    result.statistic += diff * diff / (expected_pos * (1.0 - p));
    ++result.bins_used;
  }
  if (result.bins_used > 0) {
    result.p_value = 1.0 - ChiSquareCdf(result.statistic,
                                        static_cast<double>(result.bins_used));
  }
  return result;
}

std::vector<WindowPoint> MovingWindowBand(
    const std::vector<BucketPair>& pairs, std::size_t grid_points,
    double halfwidth, double level) {
  IF_CHECK(grid_points >= 2) << "need at least two grid points";
  IF_CHECK(halfwidth > 0.0) << "halfwidth must be positive";
  std::vector<WindowPoint> band(grid_points);
  for (std::size_t g = 0; g < grid_points; ++g) {
    WindowPoint& point = band[g];
    point.center =
        static_cast<double>(g) / static_cast<double>(grid_points - 1);
    std::uint64_t positives = 0;
    for (const BucketPair& pair : pairs) {
      if (std::fabs(pair.estimate - point.center) <= halfwidth) {
        ++point.count;
        if (pair.outcome) ++positives;
      }
    }
    if (point.count == 0) continue;
    const BetaDist empirical(
        1.0 + static_cast<double>(positives),
        static_cast<double>(point.count - positives) + 1.0);
    const auto ci = empirical.CredibleInterval(level);
    point.ci_lo = ci.lo;
    point.ci_hi = ci.hi;
  }
  return band;
}

}  // namespace infoflow
