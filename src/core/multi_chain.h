/// \file multi_chain.h
/// \brief Parallel multi-chain Metropolis–Hastings estimation engine.
///
/// A single MhSampler chain (§III, Algorithm 1) is inherently serial: each
/// transition depends on the previous state. Throughput therefore scales by
/// running K *independent* chains — same model, same conditions, disjoint
/// RNG streams — and pooling their retained samples. Independent chains buy
/// two things at once:
///
///  1. **Parallel throughput.** Each chain runs on its own worker of the
///     shared ThreadPool; K chains on K cores draw retained samples ~K×
///     faster than one chain (each chain pays its own burn-in once, on its
///     first estimate).
///  2. **Convergence evidence.** Chains started from independent initial
///     states that agree are the standard MCMC convergence check: every
///     estimate carries a ChainDiagnostics (split-chain R̂, effective sample
///     size, Monte-Carlo standard error — see stats/convergence.h) computed
///     from the per-chain draw sequences, so callers can *assert* that an
///     estimate converged instead of trusting a fixed sample count.
///
/// ## Seed-derivation contract
///
/// Chain k's generator is `Rng(DeriveChainSeed(seed, k))` where
/// `DeriveChainSeed` applies a SplitMix64 finalizer to
/// `seed + (k+1)·0x9e3779b97f4a7c15` (the golden-ratio increment). The
/// contract callers may rely on:
///
///  - the stream of chain k depends only on (seed, k) — not on K, the
///    thread-pool size, or scheduling order;
///  - hence a fixed seed yields bit-identical merged estimates and
///    diagnostics for *any* `num_threads`, and chains 0..K−1 of a K-chain
///    run are a prefix of the chains of a (K+1)-chain run.
///
/// Sample counts: a request for N retained samples is rounded up to
/// ⌈N/K⌉ per chain (K·⌈N/K⌉ total), keeping chains equal-length so the
/// split-chain diagnostics stay balanced.
///
/// \code
///   MultiChainOptions opt;
///   opt.num_chains = 8;
///   auto engine = MultiChainSampler::Create(model, {}, opt, /*seed=*/42);
///   MultiChainEstimate est = engine->EstimateFlowProbability(u, v, 8000);
///   if (!est.diagnostics.Converged()) { /* widen the run */ }
///   use(est.value, est.diagnostics.mcse);
/// \endcode

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/flow_query.h"
#include "core/mh_sampler.h"
#include "graph/batch_reachability.h"
#include "obs/metrics.h"
#include "stats/convergence.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace infoflow {

/// \brief Tuning knobs for the multi-chain engine.
struct MultiChainOptions {
  /// K: number of independent chains. Throughput saturates at the worker
  /// count; extra chains beyond that still sharpen the diagnostics.
  std::size_t num_chains = 8;
  /// Thread-pool size; 0 → min(num_chains, hardware concurrency). Purely a
  /// scheduling knob: estimates are identical for every value.
  std::size_t num_threads = 0;
  /// Per-chain tuning (burn-in, thinning, proposal ablation).
  MhOptions mh;
  /// Evaluate indicator draws 64 retained samples per BFS pass: each chain
  /// packs its streamed states into edge-major 64-sample blocks and answers
  /// them through BatchReachabilityWorkspace. false falls back to one
  /// scalar BFS per sample (the `--scalar-reachability` escape hatch).
  /// Draws are bit-identical either way — indicators are deterministic and
  /// the chains' RNG streams are untouched.
  bool use_batch_reachability = true;

  /// Validates the option values.
  Status Validate() const;
};

/// \brief A pooled estimate plus the evidence it converged.
struct MultiChainEstimate {
  /// Pooled (all chains, equal weight) point estimate.
  double value = 0.0;
  /// Cross-chain convergence diagnostics of the underlying draw sequences.
  ChainDiagnostics diagnostics;
};

/// \brief SampleDispersion result: merged per-sample spread counts plus
/// diagnostics over the count sequences.
struct DispersionEstimate {
  /// Chain-major concatenation (chain 0's samples first). One count per
  /// retained sample: nodes reached minus the source.
  std::vector<std::uint32_t> counts;
  /// Diagnostics over the per-chain count sequences.
  ChainDiagnostics diagnostics;
};

/// \brief K independent MhSampler chains over a shared thread pool, with
/// merged estimators mirroring the single-chain API.
///
/// Thread-safety: an engine instance must be driven from one thread at a
/// time (the chains advance statefully between calls, like MhSampler);
/// internally each estimate fans the chains out across the pool.
class MultiChainSampler {
 public:
  /// \brief Builds K chains whose shared stationary distribution is
  /// Pr[x | M, C]. Fails when the conditions are invalid or no admissible
  /// initial state exists (same preconditions as MhSampler::Create).
  static Result<MultiChainSampler> Create(PointIcm model,
                                          FlowConditions conditions,
                                          MultiChainOptions options,
                                          std::uint64_t seed);

  /// The documented seed contract: SplitMix64 finalizer over
  /// seed + (chain+1)·golden-ratio. Exposed so tests can pin it.
  static std::uint64_t DeriveChainSeed(std::uint64_t seed, std::size_t chain);

  /// \brief Streams SamplesPerChain(num_samples) retained states per chain
  /// to `visit(chain, index, state)` as they are produced. The visitor runs
  /// on the pool worker that owns `chain`: calls for one chain are ordered
  /// by index, calls for different chains are concurrent, so the visitor
  /// must only touch state owned by (or sharded by) its chain argument.
  /// This is the streaming fill hook serve/SampleBank packs rows through.
  void ForEachSample(
      std::size_t num_samples,
      const std::function<void(std::size_t, std::size_t, const PseudoState&)>&
          visit);

  /// \brief Pooled estimate of Pr[source ⤳ sink | M, C] (Eq. 5) from
  /// num_chains·⌈num_samples/num_chains⌉ retained samples.
  MultiChainEstimate EstimateFlowProbability(NodeId source, NodeId sink,
                                             std::size_t num_samples);

  /// \brief One pass over the pooled samples: Pr[source ⤳ sink_j | M, C]
  /// with per-sink diagnostics.
  std::vector<MultiChainEstimate> EstimateCommunityFlow(
      NodeId source, const std::vector<NodeId>& sinks,
      std::size_t num_samples);

  /// \brief Multi-source variant: Pr[∃ s ∈ sources: s ⤳ sink_j | M, C].
  std::vector<MultiChainEstimate> EstimateCommunityFlowMulti(
      const std::vector<NodeId>& sources, const std::vector<NodeId>& sinks,
      std::size_t num_samples);

  /// \brief Pooled estimate of the probability that *all* listed flows hold
  /// jointly in one state.
  MultiChainEstimate EstimateJointFlowProbability(const FlowConditions& flows,
                                                  std::size_t num_samples);

  /// \brief Pooled dispersion samples of `source` (spread-size counts).
  DispersionEstimate SampleDispersion(NodeId source, std::size_t num_samples);

  /// Number of chains K.
  std::size_t num_chains() const { return chains_.size(); }

  /// Per-chain retained-sample quota for a request of `num_samples`:
  /// ⌈num_samples / K⌉.
  std::size_t SamplesPerChain(std::size_t num_samples) const;

  /// Transitions attempted / accepted, summed over chains.
  std::uint64_t steps_taken() const;
  std::uint64_t steps_accepted() const;

  /// Chain k (for tests of the seed contract).
  const MhSampler& chain(std::size_t k) const { return chains_[k]; }

 private:
  MultiChainSampler(std::vector<MhSampler> chains, MultiChainOptions options);

  /// All chains share one model topology; chain 0's copy is canonical.
  const DirectedGraph& ModelGraph() const {
    return chains_.front().model().graph();
  }

  /// Runs `per_chain` retained samples on every chain in parallel;
  /// `record(k, sample_index, state)` runs on the worker owning chain k.
  template <typename Record>
  void RunChains(std::size_t per_chain, const Record& record);

  /// Batch-path driver: packs chain k's streamed states into its edge-major
  /// block buffer and calls `eval(k, block_start, lanes, edge_words)` on the
  /// worker owning chain k each time a 64-sample block fills (or the ragged
  /// tail completes). `lanes` is the number of valid samples in the block.
  template <typename EvalBlock>
  void RunChainsBatched(std::size_t per_chain, const EvalBlock& eval);

  /// Publishes cross-chain convergence gauges (R̂ / ESS / MCSE) after an
  /// estimate completes.
  void PublishDiagnostics(const ChainDiagnostics& diagnostics);

  /// Per-chain registry handles, resolved once at construction (names like
  /// "multi_chain.chain.3.acceptance_rate").
  struct ChainMetricHandles {
    obs::Gauge* acceptance_rate;
    obs::Gauge* samples_per_s;
  };

  std::vector<MhSampler> chains_;
  MultiChainOptions options_;
  std::vector<ChainMetricHandles> chain_metrics_;
  obs::Gauge* metric_rhat_;
  obs::Gauge* metric_ess_;
  obs::Gauge* metric_mcse_;
  obs::Counter* metric_samples_drawn_;
  obs::Counter* metric_estimates_;
  /// Scratch reachability workspace per chain (MhSampler's own workspace is
  /// private to its estimators; the engine consumes raw NextSample states).
  std::vector<ReachabilityWorkspace> workspaces_;
  /// Bit-parallel BFS workspace per chain (batch path).
  std::vector<BatchReachabilityWorkspace> batch_workspaces_;
  /// Per-chain edge-major packing buffer: one word per edge, bit s = edge
  /// activity in sample s of the chain's current 64-sample block.
  std::vector<std::vector<std::uint64_t>> pack_buffers_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace infoflow
