#include "core/nested_mh.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/descriptive.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace infoflow {

double FlowProbabilityDistribution::Mean() const {
  return infoflow::Mean(probabilities);
}

double FlowProbabilityDistribution::Variance() const {
  return infoflow::Variance(probabilities);
}

double FlowProbabilityDistribution::Quantile(double q) const {
  IF_CHECK(!probabilities.empty()) << "no samples";
  return infoflow::Quantile(probabilities, q);
}

double FlowProbabilityDistribution::ProbabilityAbove(double threshold) const {
  IF_CHECK(!probabilities.empty()) << "no samples";
  std::size_t above = 0;
  for (double p : probabilities) {
    if (p > threshold) ++above;
  }
  return static_cast<double>(above) /
         static_cast<double>(probabilities.size());
}

double FlowProbabilityDistribution::TailMean(double level) const {
  IF_CHECK(!probabilities.empty()) << "no samples";
  IF_CHECK(level > 0.0 && level < 1.0) << "level must be in (0,1)";
  std::vector<double> sorted = probabilities;
  std::sort(sorted.begin(), sorted.end());
  const auto tail_begin = static_cast<std::size_t>(
      level * static_cast<double>(sorted.size()));
  const std::size_t begin = std::min(tail_begin, sorted.size() - 1);
  double total = 0.0;
  for (std::size_t i = begin; i < sorted.size(); ++i) total += sorted[i];
  return total / static_cast<double>(sorted.size() - begin);
}

BetaDist FlowProbabilityDistribution::FittedBeta() const {
  IF_CHECK(!probabilities.empty()) << "no samples to fit";
  // Clamp the mean into (0,1) and the variance into its feasible range so a
  // degenerate sample set still yields a (tight) Beta.
  const double raw_mean = Mean();
  const double mean = std::clamp(raw_mean, 1e-6, 1.0 - 1e-6);
  const double max_var = mean * (1.0 - mean);
  double var = Variance();
  var = std::clamp(var, max_var * 1e-6, max_var * (1.0 - 1e-9));
  return BetaDist::FromMeanVar(mean, var);
}

Result<FlowProbabilityDistribution> NestedMhFlowDistribution(
    const BetaIcm& model, NodeId source, NodeId sink,
    const FlowConditions& conditions, const NestedMhOptions& options,
    Rng& rng) {
  obs::TraceSpan run_span("nested_mh/run");
  IF_CHECK(options.num_models > 0 && options.samples_per_model > 0)
      << "nested MH needs positive model and sample counts";
  // The outer draws are independent given their RNG streams, so derive one
  // stream per model upfront — the subsequent loop is order-insensitive and
  // runs identically whether serial or fanned out over a pool.
  std::vector<Rng> model_rngs;
  model_rngs.reserve(options.num_models);
  for (std::size_t k = 0; k < options.num_models; ++k) {
    model_rngs.push_back(rng.Split());
  }
  FlowProbabilityDistribution out;
  out.probabilities.assign(options.num_models, 0.0);
  std::vector<Status> errors(options.num_models, Status::OK());
  obs::Counter& models_counter = obs::GetCounter("nested_mh.models_sampled");
  auto run_model = [&](std::size_t k) {
    // One span per outer-loop model: on a trace timeline the model draws
    // tile each worker's row, exposing imbalance across sampled ICMs.
    obs::TraceSpan span("nested_mh/model");
    Rng local = model_rngs[k];
    const PointIcm icm = options.gaussian_edge_approximation
                             ? model.SampleIcmGaussian(local)
                             : model.SampleIcm(local);
    auto sampler =
        MhSampler::Create(icm, conditions, options.mh, local.Split());
    if (!sampler.ok()) {
      errors[k] = sampler.status();
      return;
    }
    out.probabilities[k] = sampler->EstimateFlowProbability(
        source, sink, options.samples_per_model);
    models_counter.Increment();
  };
  if (options.num_threads == 1) {
    for (std::size_t k = 0; k < options.num_models; ++k) run_model(k);
  } else {
    ThreadPool pool(options.num_threads);
    ParallelFor(pool, options.num_models, run_model);
  }
  for (const Status& status : errors) {
    if (!status.ok()) return status;
  }
  return out;
}

}  // namespace infoflow
