/// \file rejection_sampler.h
/// \brief The naive alternative to Metropolis–Hastings (§I: "naive
/// sampling can also be expensive").
///
/// Unconditional pseudo-states are independent Bernoullis per edge, so iid
/// sampling is trivial and exact. *Conditional* queries Pr[· | C] force the
/// naive sampler into rejection: draw states from the marginal and discard
/// those violating C — cost per retained sample scales as 1 / Pr[C | M],
/// which explodes precisely when conditioning is informative. The MH chain
/// (mh_sampler.h) pays a constant factor instead. bench/ablation_rejection
/// measures the crossover.

#pragma once

#include <cstdint>

#include "core/flow_query.h"
#include "core/icm.h"
#include "stats/rng.h"
#include "util/status.h"

namespace infoflow {

/// \brief Outcome of a rejection-sampled flow estimate.
struct RejectionEstimate {
  /// Estimated Pr[source ⤳ sink | M, C].
  double probability = 0.0;
  /// Retained (condition-satisfying) samples.
  std::size_t accepted = 0;
  /// Total marginal draws consumed.
  std::size_t proposed = 0;

  /// Empirical acceptance rate ≈ Pr[C | M].
  double AcceptanceRate() const {
    return proposed ? static_cast<double>(accepted) /
                          static_cast<double>(proposed)
                    : 0.0;
  }
};

/// \brief iid rejection sampler over pseudo-states.
///
/// Draws marginal pseudo-states until `num_samples` satisfy `conditions`
/// (or `max_proposals` draws are consumed — whichever first), then
/// estimates the conditional flow from the retained set. With empty
/// conditions this is plain exact Monte Carlo.
RejectionEstimate RejectionSampleFlow(const PointIcm& model, NodeId source,
                                      NodeId sink,
                                      const FlowConditions& conditions,
                                      std::size_t num_samples,
                                      std::size_t max_proposals, Rng& rng);

}  // namespace infoflow
