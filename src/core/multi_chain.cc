#include "core/multi_chain.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace infoflow {

Status MultiChainOptions::Validate() const {
  if (num_chains == 0) {
    return Status::InvalidArgument("num_chains must be positive");
  }
  if (num_chains > (1u << 12)) {
    return Status::InvalidArgument("num_chains ", num_chains,
                                   " unreasonably large");
  }
  return mh.Validate();
}

std::uint64_t MultiChainSampler::DeriveChainSeed(std::uint64_t seed,
                                                 std::size_t chain) {
  // SplitMix64 finalizer over golden-ratio-spaced inputs: the documented
  // contract of the header. Depends only on (seed, chain).
  std::uint64_t z = seed + (static_cast<std::uint64_t>(chain) + 1) *
                               0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Result<MultiChainSampler> MultiChainSampler::Create(PointIcm model,
                                                    FlowConditions conditions,
                                                    MultiChainOptions options,
                                                    std::uint64_t seed) {
  IF_RETURN_NOT_OK(options.Validate());
  std::vector<MhSampler> chains;
  chains.reserve(options.num_chains);
  for (std::size_t k = 0; k < options.num_chains; ++k) {
    auto chain = MhSampler::Create(model, conditions, options.mh,
                                   Rng(DeriveChainSeed(seed, k)));
    if (!chain.ok()) return chain.status();
    chains.push_back(std::move(chain).ValueOrDie());
  }
  return MultiChainSampler(std::move(chains), options);
}

MultiChainSampler::MultiChainSampler(std::vector<MhSampler> chains,
                                     MultiChainOptions options)
    : chains_(std::move(chains)),
      options_(options),
      metric_rhat_(&obs::GetGauge("multi_chain.rhat")),
      metric_ess_(&obs::GetGauge("multi_chain.ess")),
      metric_mcse_(&obs::GetGauge("multi_chain.mcse")),
      metric_samples_drawn_(&obs::GetCounter("multi_chain.samples_drawn")),
      metric_estimates_(&obs::GetCounter("multi_chain.estimates")) {
  workspaces_.reserve(chains_.size());
  chain_metrics_.reserve(chains_.size());
  for (std::size_t k = 0; k < chains_.size(); ++k) {
    workspaces_.emplace_back(ModelGraph());
    const std::string prefix =
        "multi_chain.chain." + std::to_string(k) + ".";
    chain_metrics_.push_back(
        {&obs::GetGauge(prefix + "acceptance_rate"),
         &obs::GetGauge(prefix + "samples_per_s")});
  }
  if (options_.use_batch_reachability) {
    batch_workspaces_.reserve(chains_.size());
    pack_buffers_.reserve(chains_.size());
    for (std::size_t k = 0; k < chains_.size(); ++k) {
      batch_workspaces_.emplace_back(ModelGraph());
      pack_buffers_.emplace_back(ModelGraph().num_edges(), 0);
    }
  }
  std::size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::min<std::size_t>(
        chains_.size(),
        std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  }
  pool_ = std::make_unique<ThreadPool>(threads);
}

std::size_t MultiChainSampler::SamplesPerChain(std::size_t num_samples) const {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  return (num_samples + chains_.size() - 1) / chains_.size();
}

std::uint64_t MultiChainSampler::steps_taken() const {
  std::uint64_t total = 0;
  for (const MhSampler& c : chains_) total += c.steps_taken();
  return total;
}

std::uint64_t MultiChainSampler::steps_accepted() const {
  std::uint64_t total = 0;
  for (const MhSampler& c : chains_) total += c.steps_accepted();
  return total;
}

template <typename Record>
void MultiChainSampler::RunChains(std::size_t per_chain, const Record& record) {
  // One ParallelFor index per chain: chain k's samples are drawn in order on
  // a single worker, writing only to k's slots — results are independent of
  // the pool size and of scheduling.
  ParallelFor(*pool_, chains_.size(), [&](std::size_t k) {
    obs::TraceSpan span("multi_chain/chain_run");
    WallTimer timer;
    for (std::size_t i = 0; i < per_chain; ++i) {
      record(k, i, chains_[k].NextSample());
    }
    if constexpr (obs::MetricsEnabled()) {
      const double seconds = timer.Seconds();
      chains_[k].FlushMetrics();
      chain_metrics_[k].acceptance_rate->Set(chains_[k].acceptance_rate());
      chain_metrics_[k].samples_per_s->Set(
          seconds > 0.0 ? static_cast<double>(per_chain) / seconds : 0.0);
    }
  });
  metric_samples_drawn_->Increment(chains_.size() * per_chain);
}

namespace {

/// All-ones over the `lanes` valid samples of a block.
std::uint64_t LaneMask(std::size_t lanes) {
  return lanes >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << lanes) - 1;
}

}  // namespace

template <typename EvalBlock>
void MultiChainSampler::RunChainsBatched(std::size_t per_chain,
                                         const EvalBlock& eval) {
  // Each chain packs its own 64-sample edge-major block (bit s of word e =
  // edge e active in sample s) and evaluates it in one BFS pass when full.
  // The pack buffer and batch workspace are per-chain, so the visitor stays
  // race-free under RunChains' one-worker-per-chain scheduling.
  RunChains(per_chain, [&](std::size_t k, std::size_t i,
                           const PseudoState& x) {
    std::vector<std::uint64_t>& block = pack_buffers_[k];
    const std::size_t lane = i & 63;
    if (lane == 0) std::fill(block.begin(), block.end(), 0);
    const std::uint64_t bit = std::uint64_t{1} << lane;
    for (EdgeId e = 0; e < x.size(); ++e) {
      if (x[e] != 0) block[e] |= bit;
    }
    if (lane == 63 || i + 1 == per_chain) {
      eval(k, i - lane, lane + 1, block.data());
    }
  });
}

void MultiChainSampler::PublishDiagnostics(const ChainDiagnostics& diag) {
  metric_rhat_->Set(diag.rhat);
  metric_ess_->Set(diag.ess);
  metric_mcse_->Set(diag.mcse);
  metric_estimates_->Increment();
}

void MultiChainSampler::ForEachSample(
    std::size_t num_samples,
    const std::function<void(std::size_t, std::size_t, const PseudoState&)>&
        visit) {
  obs::TraceSpan span("multi_chain/for_each_sample");
  RunChains(SamplesPerChain(num_samples), visit);
}

MultiChainEstimate MultiChainSampler::EstimateFlowProbability(
    NodeId source, NodeId sink, std::size_t num_samples) {
  obs::TraceSpan span("multi_chain/estimate_flow");
  const DirectedGraph& graph = ModelGraph();
  IF_CHECK(source < graph.num_nodes() && sink < graph.num_nodes());
  const std::size_t per_chain = SamplesPerChain(num_samples);
  const std::vector<NodeId> sources{source};
  std::vector<std::vector<double>> draws(chains_.size());
  for (auto& d : draws) d.assign(per_chain, 0.0);
  if (options_.use_batch_reachability) {
    RunChainsBatched(per_chain, [&](std::size_t k, std::size_t start,
                                    std::size_t lanes,
                                    const std::uint64_t* words) {
      const std::uint64_t hits = batch_workspaces_[k].RunUntil(
          graph, sources, words, sink, LaneMask(lanes));
      for (std::size_t l = 0; l < lanes; ++l) {
        if ((hits >> l) & 1) draws[k][start + l] = 1.0;
      }
    });
  } else {
    RunChains(per_chain, [&](std::size_t k, std::size_t i,
                             const PseudoState& x) {
      draws[k][i] =
          workspaces_[k].RunUntil(graph, sources, x, sink) ? 1.0 : 0.0;
    });
  }
  const ChainDiagnostics diag = ComputeChainDiagnostics(draws);
  PublishDiagnostics(diag);
  return {diag.mean, diag};
}

std::vector<MultiChainEstimate> MultiChainSampler::EstimateCommunityFlow(
    NodeId source, const std::vector<NodeId>& sinks, std::size_t num_samples) {
  return EstimateCommunityFlowMulti({source}, sinks, num_samples);
}

std::vector<MultiChainEstimate> MultiChainSampler::EstimateCommunityFlowMulti(
    const std::vector<NodeId>& sources, const std::vector<NodeId>& sinks,
    std::size_t num_samples) {
  obs::TraceSpan span("multi_chain/estimate_community_flow");
  IF_CHECK(!sources.empty()) << "need at least one source";
  const DirectedGraph& graph = ModelGraph();
  const std::size_t per_chain = SamplesPerChain(num_samples);
  // draws[j][k] = chain k's indicator sequence for sink j.
  std::vector<std::vector<std::vector<double>>> draws(
      sinks.size(),
      std::vector<std::vector<double>>(chains_.size()));
  for (auto& per_sink : draws) {
    for (auto& d : per_sink) d.assign(per_chain, 0.0);
  }
  if (options_.use_batch_reachability) {
    RunChainsBatched(per_chain, [&](std::size_t k, std::size_t start,
                                    std::size_t lanes,
                                    const std::uint64_t* words) {
      batch_workspaces_[k].Run(graph, sources, words, LaneMask(lanes));
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        const std::uint64_t hits = batch_workspaces_[k].ReachedMask(sinks[j]);
        for (std::size_t l = 0; l < lanes; ++l) {
          if ((hits >> l) & 1) draws[j][k][start + l] = 1.0;
        }
      }
    });
  } else {
    RunChains(per_chain, [&](std::size_t k, std::size_t i,
                             const PseudoState& x) {
      workspaces_[k].Run(graph, sources, x);
      for (std::size_t j = 0; j < sinks.size(); ++j) {
        if (workspaces_[k].IsReached(sinks[j])) draws[j][k][i] = 1.0;
      }
    });
  }
  std::vector<MultiChainEstimate> out;
  out.reserve(sinks.size());
  for (std::size_t j = 0; j < sinks.size(); ++j) {
    const ChainDiagnostics diag = ComputeChainDiagnostics(draws[j]);
    PublishDiagnostics(diag);  // gauges keep the last sink's values
    out.push_back({diag.mean, diag});
  }
  return out;
}

MultiChainEstimate MultiChainSampler::EstimateJointFlowProbability(
    const FlowConditions& flows, std::size_t num_samples) {
  obs::TraceSpan span("multi_chain/estimate_joint_flow");
  const DirectedGraph& graph = ModelGraph();
  ValidateConditions(graph, flows).CheckOK();
  const std::size_t per_chain = SamplesPerChain(num_samples);
  std::vector<std::vector<double>> draws(chains_.size());
  for (auto& d : draws) d.assign(per_chain, 0.0);
  if (options_.use_batch_reachability) {
    RunChainsBatched(per_chain, [&](std::size_t k, std::size_t start,
                                    std::size_t lanes,
                                    const std::uint64_t* words) {
      // Blockwise I(x, C): each constraint narrows the live lanes, so
      // later constraints only propagate through still-satisfying samples.
      std::uint64_t alive = LaneMask(lanes);
      std::vector<NodeId> src(1);
      for (const FlowConstraint& c : flows) {
        src[0] = c.source;
        const std::uint64_t reached = batch_workspaces_[k].RunUntil(
            graph, src, words, c.sink, alive);
        alive = c.must_flow ? reached : alive & ~reached;
        if (alive == 0) break;
      }
      for (std::size_t l = 0; l < lanes; ++l) {
        if ((alive >> l) & 1) draws[k][start + l] = 1.0;
      }
    });
  } else {
    RunChains(per_chain, [&](std::size_t k, std::size_t i,
                             const PseudoState& x) {
      draws[k][i] =
          SatisfiesConditions(graph, x, flows, workspaces_[k]) ? 1.0 : 0.0;
    });
  }
  const ChainDiagnostics diag = ComputeChainDiagnostics(draws);
  PublishDiagnostics(diag);
  return {diag.mean, diag};
}

DispersionEstimate MultiChainSampler::SampleDispersion(
    NodeId source, std::size_t num_samples) {
  obs::TraceSpan span("multi_chain/sample_dispersion");
  const DirectedGraph& graph = ModelGraph();
  IF_CHECK(source < graph.num_nodes());
  const std::size_t per_chain = SamplesPerChain(num_samples);
  const std::vector<NodeId> sources{source};
  std::vector<std::vector<double>> draws(chains_.size());
  for (auto& d : draws) d.assign(per_chain, 0.0);
  if (options_.use_batch_reachability) {
    RunChainsBatched(per_chain, [&](std::size_t k, std::size_t start,
                                    std::size_t lanes,
                                    const std::uint64_t* words) {
      batch_workspaces_[k].Run(graph, sources, words, LaneMask(lanes));
      // counts[l] = nodes reached in sample l, source included.
      std::uint32_t counts[64] = {};
      batch_workspaces_[k].AccumulateReachedCounts(counts);
      for (std::size_t l = 0; l < lanes; ++l) {
        draws[k][start + l] = static_cast<double>(counts[l] - 1);
      }
    });
  } else {
    RunChains(per_chain, [&](std::size_t k, std::size_t i,
                             const PseudoState& x) {
      workspaces_[k].Run(graph, sources, x);
      draws[k][i] =
          static_cast<double>(workspaces_[k].ReachedNodes().size() - 1);
    });
  }
  DispersionEstimate out;
  out.counts.reserve(chains_.size() * per_chain);
  for (const auto& d : draws) {
    for (double v : d) out.counts.push_back(static_cast<std::uint32_t>(v));
  }
  out.diagnostics = ComputeChainDiagnostics(draws);
  PublishDiagnostics(out.diagnostics);
  return out;
}

}  // namespace infoflow
