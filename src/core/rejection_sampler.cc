#include "core/rejection_sampler.h"

#include "graph/reachability.h"
#include "util/check.h"

namespace infoflow {

RejectionEstimate RejectionSampleFlow(const PointIcm& model, NodeId source,
                                      NodeId sink,
                                      const FlowConditions& conditions,
                                      std::size_t num_samples,
                                      std::size_t max_proposals, Rng& rng) {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  const DirectedGraph& graph = model.graph();
  IF_CHECK(source < graph.num_nodes() && sink < graph.num_nodes());
  ValidateConditions(graph, conditions).CheckOK();

  ReachabilityWorkspace ws(graph);
  RejectionEstimate estimate;
  std::size_t hits = 0;
  while (estimate.accepted < num_samples &&
         estimate.proposed < max_proposals) {
    const PseudoState x = model.SamplePseudoState(rng);
    ++estimate.proposed;
    if (!conditions.empty() &&
        !SatisfiesConditions(graph, x, conditions, ws)) {
      continue;
    }
    ++estimate.accepted;
    if (ws.RunUntil(graph, {source}, x, sink)) ++hits;
  }
  if (estimate.accepted > 0) {
    estimate.probability = static_cast<double>(hits) /
                           static_cast<double>(estimate.accepted);
  }
  return estimate;
}

}  // namespace infoflow
