#include "core/influence_max.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace infoflow {

Status InfluenceMaxOptions::Validate(const DirectedGraph& graph) const {
  if (num_seeds == 0) {
    return Status::InvalidArgument("num_seeds must be positive");
  }
  if (simulations == 0) {
    return Status::InvalidArgument("simulations must be positive");
  }
  for (NodeId c : candidates) {
    if (c >= graph.num_nodes()) {
      return Status::OutOfRange("candidate ", c, " out of range; n=",
                                graph.num_nodes());
    }
  }
  // Count *distinct* candidates: a duplicated entry is one candidate, not
  // two, and the greedy loop must never ask for more seeds than the
  // deduplicated pool can supply.
  std::size_t candidate_count = graph.num_nodes();
  if (!candidates.empty()) {
    std::vector<bool> seen(graph.num_nodes(), false);
    candidate_count = 0;
    for (NodeId c : candidates) {
      if (!seen[c]) {
        seen[c] = true;
        ++candidate_count;
      }
    }
  }
  if (num_seeds > candidate_count) {
    return Status::InvalidArgument("cannot pick ", num_seeds, " seeds from ",
                                   candidate_count, " distinct candidates");
  }
  return Status::OK();
}

double EstimateSpread(const PointIcm& model, const std::vector<NodeId>& seeds,
                      std::size_t simulations, Rng& rng) {
  IF_CHECK(!seeds.empty()) << "spread of an empty seed set";
  IF_CHECK(simulations > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < simulations; ++i) {
    total += static_cast<double>(
        model.SampleCascade(seeds, rng).active_nodes.size());
  }
  return total / static_cast<double>(simulations);
}

Result<InfluenceMaxResult> MaximizeInfluence(
    const PointIcm& model, const InfluenceMaxOptions& options, Rng& rng) {
  const DirectedGraph& graph = model.graph();
  IF_RETURN_NOT_OK(options.Validate(graph));

  // Deduplicate (first occurrence wins): a repeated candidate would pay a
  // second round-0 evaluation and could even be selected twice — its stale
  // duplicate entry keeps the solo gain as an upper bound.
  std::vector<NodeId> candidates;
  if (options.candidates.empty()) {
    candidates.resize(graph.num_nodes());
    for (NodeId v = 0; v < graph.num_nodes(); ++v) candidates[v] = v;
  } else {
    std::vector<bool> seen(graph.num_nodes(), false);
    for (NodeId c : options.candidates) {
      if (!seen[c]) {
        seen[c] = true;
        candidates.push_back(c);
      }
    }
  }

  InfluenceMaxResult result;
  // CELF priority queue: (cached marginal gain, candidate, round the gain
  // was computed in).
  struct Entry {
    double gain;
    NodeId node;
    std::size_t round;
    bool operator<(const Entry& other) const { return gain < other.gain; }
  };
  std::priority_queue<Entry> queue;

  std::vector<NodeId> seeds;
  double current_spread = 0.0;
  // Round 0: evaluate every candidate's solo spread.
  for (NodeId c : candidates) {
    const double gain = EstimateSpread(model, {c}, options.simulations, rng);
    ++result.evaluations;
    queue.push(Entry{gain, c, 0});
  }

  while (seeds.size() < options.num_seeds) {
    Entry top = queue.top();
    queue.pop();
    if (top.round == seeds.size()) {
      // The cached gain is fresh for this round: submodularity guarantees
      // no other candidate can beat it.
      seeds.push_back(top.node);
      current_spread += top.gain;
      result.seeds.push_back(top.node);
      result.expected_spread.push_back(current_spread);
      continue;
    }
    // Stale: recompute the marginal gain against the current seed set.
    std::vector<NodeId> with = seeds;
    with.push_back(top.node);
    const double spread =
        EstimateSpread(model, with, options.simulations, rng);
    ++result.evaluations;
    queue.push(Entry{std::max(spread - current_spread, 0.0), top.node,
                     seeds.size()});
  }
  return result;
}

}  // namespace infoflow
