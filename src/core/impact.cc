#include "core/impact.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/batch_reachability.h"
#include "graph/strip_reachability.h"
#include "util/check.h"

namespace infoflow {

std::uint64_t ImpactDistribution::Total() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  return total;
}

double ImpactDistribution::Mean() const {
  const std::uint64_t total = Total();
  if (total == 0) return 0.0;
  double weighted = 0.0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    weighted += static_cast<double>(k) * static_cast<double>(counts[k]);
  }
  return weighted / static_cast<double>(total);
}

void ImpactDistribution::Record(std::uint32_t impact) {
  if (impact >= counts.size()) counts.resize(impact + 1, 0);
  ++counts[impact];
}

namespace {

/// \brief 64 independent Bernoulli(p) draws packed into one word.
///
/// Uses the binary-expansion composition: with p = 0.b₁b₂…b₃₂, processing
/// the expansion from its least significant bit upward with
/// `acc = bᵢ ? (acc | r) : (acc & r)` over fresh random words r leaves each
/// bit of `acc` set with probability p (to 2⁻³² precision) — ≤ 32 RNG words
/// for 64 draws instead of 64 uniforms, and usually far fewer since the
/// loop starts at the expansion's lowest set bit.
std::uint64_t BernoulliWord(double p, Rng& rng) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~std::uint64_t{0};
  const auto m = static_cast<std::uint32_t>(
      std::lround(std::ldexp(p, 32)));
  if (m == 0) return 0;
  std::uint64_t acc = 0;
  for (int i = std::countr_zero(m); i < 32; ++i) {
    const std::uint64_t r = rng.NextU64();
    acc = ((m >> i) & 1) != 0 ? (acc | r) : (acc & r);
  }
  return acc;
}

}  // namespace

ImpactDistribution SimulateImpact(const PointIcm& model, NodeId source,
                                  std::size_t num_cascades, Rng& rng) {
  IF_CHECK(source < model.graph().num_nodes())
      << "source " << source << " out of range";
  IF_CHECK(num_cascades > 0) << "need at least one cascade";
  // Bit-parallel cascade simulation: 64 cascades per BFS pass. Deciding
  // *every* edge up front and taking reachability from the source is the
  // pseudo-state view of the cascade process (icm.h: the derived
  // active-state has exactly the cascade distribution), so each lane of a
  // block is one cascade. BernoulliWord decides an edge for all 64 lanes
  // at once; AccumulateReachedCounts tallies the per-lane spread sizes.
  const DirectedGraph& graph = model.graph();
  const std::vector<NodeId> sources{source};
  ImpactDistribution out;
  // Deep cascade budgets widen to W-word strips (graph/strip_reachability.h)
  // so one BFS pass decides 256/512 cascades. The edge words are drawn
  // block-by-block in exactly the legacy order, so the RNG stream — and
  // therefore every cascade's edge draws and the tallied distribution —
  // is identical at every width.
  const unsigned strip_words =
      ResolveStripWords(LaneWidth::kAuto, num_cascades, graph.num_nodes(),
                        graph.num_edges());
  if (strip_words > 1) {
    auto workspace = StripWorkspace::Create(strip_words, graph);
    std::vector<std::uint64_t> strip(graph.num_edges() * strip_words);
    std::vector<std::uint32_t> reached(std::size_t{strip_words} * 64);
    for (std::size_t done = 0; done < num_cascades;
         done += std::size_t{64} * strip_words) {
      std::uint64_t lane_mask[kMaxStripWords];
      for (unsigned w = 0; w < strip_words; ++w) {
        const std::size_t block_done = done + std::size_t{64} * w;
        if (block_done >= num_cascades) {
          lane_mask[w] = 0;
          for (EdgeId e = 0; e < graph.num_edges(); ++e) {
            strip[std::size_t{e} * strip_words + w] = 0;
          }
          continue;
        }
        const std::size_t lanes =
            std::min<std::size_t>(64, num_cascades - block_done);
        lane_mask[w] = lanes >= 64 ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << lanes) - 1;
        for (EdgeId e = 0; e < graph.num_edges(); ++e) {
          strip[std::size_t{e} * strip_words + w] =
              BernoulliWord(model.prob(e), rng);
        }
      }
      workspace->Run(graph, sources, strip.data(), lane_mask);
      std::fill(reached.begin(), reached.end(), 0);
      workspace->AccumulateReachedCounts(reached.data());
      for (unsigned w = 0; w < strip_words; ++w) {
        const std::size_t block_done = done + std::size_t{64} * w;
        if (block_done >= num_cascades) break;
        const std::size_t lanes =
            std::min<std::size_t>(64, num_cascades - block_done);
        for (std::size_t l = 0; l < lanes; ++l) {
          out.Record(reached[std::size_t{w} * 64 + l] - 1);
        }
      }
    }
    return out;
  }
  BatchReachabilityWorkspace workspace(graph);
  std::vector<std::uint64_t> edge_words(graph.num_edges(), 0);
  for (std::size_t done = 0; done < num_cascades; done += 64) {
    const std::size_t lanes = std::min<std::size_t>(64, num_cascades - done);
    const std::uint64_t lane_mask =
        lanes >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      edge_words[e] = BernoulliWord(model.prob(e), rng);
    }
    workspace.Run(graph, sources, edge_words.data(), lane_mask);
    std::uint32_t reached[64] = {};
    workspace.AccumulateReachedCounts(reached);
    for (std::size_t l = 0; l < lanes; ++l) {
      out.Record(reached[l] - 1);
    }
  }
  return out;
}

double ImpactPmf::Mean() const {
  double mean = 0.0;
  for (std::size_t k = 0; k < probs.size(); ++k) {
    mean += static_cast<double>(k) * probs[k];
  }
  return mean;
}

Result<ImpactPmf> AnalyticImpact(const PointIcm& model, NodeId source,
                                 const analytic::AnalyticOptions& options) {
  auto result = analytic::CascadeSizePmf(model.graph(), model.probs(), source,
                                         options);
  IF_RETURN_NOT_OK(result.status());
  analytic::CascadePmf pmf = std::move(result).ValueOrDie();
  ImpactPmf out;
  out.probs = std::move(pmf.impact);
  out.method = pmf.method;
  out.report = pmf.report;
  return out;
}

ImpactDistribution SimulateImpact(const BetaIcm& model, NodeId source,
                                  std::size_t num_cascades, Rng& rng) {
  IF_CHECK(source < model.graph().num_nodes())
      << "source " << source << " out of range";
  IF_CHECK(num_cascades > 0) << "need at least one cascade";
  // Stays scalar: every cascade runs on a *different* PointIcm drawn from
  // the edge Betas, so there is no shared edge distribution to batch 64
  // lanes under.
  ImpactDistribution out;
  for (std::size_t i = 0; i < num_cascades; ++i) {
    const PointIcm icm = model.SampleIcm(rng);
    const ActiveState s = icm.SampleCascade({source}, rng);
    out.Record(static_cast<std::uint32_t>(s.active_nodes.size() - 1));
  }
  return out;
}

}  // namespace infoflow
