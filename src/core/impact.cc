#include "core/impact.h"

#include "util/check.h"

namespace infoflow {

std::uint64_t ImpactDistribution::Total() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  return total;
}

double ImpactDistribution::Mean() const {
  const std::uint64_t total = Total();
  if (total == 0) return 0.0;
  double weighted = 0.0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    weighted += static_cast<double>(k) * static_cast<double>(counts[k]);
  }
  return weighted / static_cast<double>(total);
}

void ImpactDistribution::Record(std::uint32_t impact) {
  if (impact >= counts.size()) counts.resize(impact + 1, 0);
  ++counts[impact];
}

ImpactDistribution SimulateImpact(const PointIcm& model, NodeId source,
                                  std::size_t num_cascades, Rng& rng) {
  IF_CHECK(source < model.graph().num_nodes())
      << "source " << source << " out of range";
  IF_CHECK(num_cascades > 0) << "need at least one cascade";
  ImpactDistribution out;
  for (std::size_t i = 0; i < num_cascades; ++i) {
    const ActiveState s = model.SampleCascade({source}, rng);
    out.Record(static_cast<std::uint32_t>(s.active_nodes.size() - 1));
  }
  return out;
}

ImpactDistribution SimulateImpact(const BetaIcm& model, NodeId source,
                                  std::size_t num_cascades, Rng& rng) {
  IF_CHECK(source < model.graph().num_nodes())
      << "source " << source << " out of range";
  IF_CHECK(num_cascades > 0) << "need at least one cascade";
  ImpactDistribution out;
  for (std::size_t i = 0; i < num_cascades; ++i) {
    const PointIcm icm = model.SampleIcm(rng);
    const ActiveState s = icm.SampleCascade({source}, rng);
    out.Record(static_cast<std::uint32_t>(s.active_nodes.size() - 1));
  }
  return out;
}

}  // namespace infoflow
