/// \file exact_flow.h
/// \brief Exact flow-probability evaluation — exponential-time ground truth.
///
/// Two evaluators are provided:
///
///  1. *Enumeration*: sum Pr[x | M] · I(u ⤳ v; x) over all 2^m pseudo-states
///     (Eq. 5 evaluated exactly). This is the definitional ground truth every
///     approximation is tested against; it also answers joint, conditional
///     and community queries. Limited to m <= 25 edges.
///
///  2. *Recursive rewriting* (Eq. 2): the paper's exclude-set recursion
///     Pr[vj ⤳ vk ex. X] = 1 − Π_{(vl,vk)∈E∖X} (1 − Pr[vj ⤳ vl ex. X∪{vk}]·p_lk).
///     Exact on trees and on the paper's worked 3-node examples; on general
///     graphs the product treats sibling-parent flows as independent, which
///     over-counts when paths share edges — our tests quantify this
///     (documented in EXPERIMENTS.md). Limited to n <= 30 nodes (exclude
///     sets are node bitmasks).

#pragma once

#include <cstdint>

#include "core/flow_query.h"
#include "core/icm.h"

namespace infoflow {

/// Maximum edge count accepted by the enumeration evaluators.
inline constexpr EdgeId kMaxEnumerationEdges = 25;

/// \brief Exact Pr[source ⤳ sink | M] by pseudo-state enumeration.
/// Requires m <= kMaxEnumerationEdges.
double ExactFlowByEnumeration(const PointIcm& model, NodeId source,
                              NodeId sink);

/// \brief Exact conditional Pr[source ⤳ sink | M, C] by enumeration
/// (Eq. 6). Returns Status::FailedPrecondition when Pr[C | M] = 0.
Result<double> ExactConditionalFlowByEnumeration(
    const PointIcm& model, NodeId source, NodeId sink,
    const FlowConditions& conditions);

/// \brief Exact joint probability that *all* listed flows hold
/// simultaneously (source-to-community / joint flow), by enumeration.
double ExactJointFlowByEnumeration(const PointIcm& model,
                                   const FlowConditions& flows);

/// \brief Exact Pr[C | M]: the probability a pseudo-state satisfies the
/// condition set.
double ExactConditionsProbability(const PointIcm& model,
                                  const FlowConditions& conditions);

/// \brief The paper's Eq. 2 recursion with memoized exclude sets.
/// Requires n <= 30. See the file comment for its exactness caveat.
double FlowByExcludeRecursion(const PointIcm& model, NodeId source,
                              NodeId sink);

}  // namespace infoflow
