/// \file beta_icm.h
/// \brief betaICM: an ICM whose edge activation probabilities are Beta
/// distributions (§II-A) — a probability distribution over point ICMs.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/icm.h"
#include "graph/graph.h"
#include "stats/beta_dist.h"
#include "stats/rng.h"

namespace infoflow {

/// \brief G = (V, E, B): each edge carries Beta(α, β) over its activation
/// probability. α, β are stored densely by EdgeId.
class BetaIcm {
 public:
  /// Builds from explicit per-edge parameters (αᵢ, βᵢ > 0).
  BetaIcm(std::shared_ptr<const DirectedGraph> graph,
          std::vector<double> alphas, std::vector<double> betas);

  /// The untrained model: Beta(1, 1) (uniform) on every edge — the starting
  /// point of the attributed trainer.
  static BetaIcm Uninformed(std::shared_ptr<const DirectedGraph> graph);

  /// \brief The synthetic-model generator of §IV-A: each edge draws
  /// α ~ U(la, ua), β ~ U(lb, ub) (the experiments use U(1, 20) for both).
  static BetaIcm RandomSynthetic(std::shared_ptr<const DirectedGraph> graph,
                                 Rng& rng, double alpha_lo = 1.0,
                                 double alpha_hi = 20.0, double beta_lo = 1.0,
                                 double beta_hi = 20.0);

  /// The underlying graph.
  const DirectedGraph& graph() const { return *graph_; }

  /// Shared handle to the graph.
  const std::shared_ptr<const DirectedGraph>& graph_ptr() const {
    return graph_;
  }

  /// α parameter of edge `e`.
  double alpha(EdgeId e) const;

  /// β parameter of edge `e`.
  double beta(EdgeId e) const;

  /// The Beta distribution on edge `e`.
  BetaDist EdgeBeta(EdgeId e) const;

  /// Records one positive observation (edge fired): α += 1.
  void AddSuccess(EdgeId e) { BumpAlpha(e, 1.0); }

  /// Records one negative observation (parent active, edge silent): β += 1.
  void AddFailure(EdgeId e) { BumpBeta(e, 1.0); }

  /// Adds `amount` to α of edge `e`.
  void BumpAlpha(EdgeId e, double amount);

  /// Adds `amount` to β of edge `e`.
  void BumpBeta(EdgeId e, double amount);

  /// \brief The expected point-probability ICM: pᵢ = αᵢ / (αᵢ + βᵢ)
  /// (§II-A). This is the model the MH flow sampler usually runs on.
  PointIcm ExpectedIcm() const;

  /// \brief Draws a point ICM from the edge Betas (independently per edge)
  /// — one step of nested MH (§III-E).
  PointIcm SampleIcm(Rng& rng) const;

  /// \brief Draws a point ICM from *Gaussian approximations* N(mean, sd) of
  /// each edge Beta, clamped to [0, 1] — the cheap moment-matched
  /// alternative of Fig. 10 (§V-D, storing only mean and standard
  /// deviation).
  PointIcm SampleIcmGaussian(Rng& rng) const;

  /// "BetaIcm(n=..., m=...)".
  std::string ToString() const;

 private:
  std::shared_ptr<const DirectedGraph> graph_;
  std::vector<double> alphas_;
  std::vector<double> betas_;
};

}  // namespace infoflow
