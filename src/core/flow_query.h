/// \file flow_query.h
/// \brief Flow-condition types shared by the exact evaluator and the MH
/// sampler (§III-A).
///
/// A condition set C ∈ P(V × V × B) constrains which pseudo-states are
/// admissible: (u, v, 1) enforces u ⤳ v, (u, v, 0) enforces u ̸⤳ v. The
/// combined indicator I(x, C) multiplies the state probability (Eq. 7),
/// which is how conditional flow queries are answered (Eq. 6/8).

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/pseudo_state.h"
#include "graph/graph.h"
#include "graph/reachability.h"

namespace infoflow {

/// \brief One constrained flow (u, v, a).
struct FlowConstraint {
  NodeId source;
  NodeId sink;
  /// true: require source ⤳ sink; false: forbid it.
  bool must_flow;

  friend bool operator==(const FlowConstraint&, const FlowConstraint&) =
      default;

  /// "u ⤳ v" or "u !⤳ v".
  std::string ToString() const;
};

/// The condition set C.
using FlowConditions = std::vector<FlowConstraint>;

/// \brief Parses a whitespace-separated condition list: "0>3 4!>7" requires
/// 0 ⤳ 3 and forbids 4 ⤳ 7. The grammar the CLI `--given` flag and the
/// serve protocol's string-form constraints share.
Result<FlowConditions> ParseFlowConditions(const std::string& text);

/// \brief Order-insensitive 64-bit digest of a condition set — the batch key
/// the serve QueryEngine groups identical conditioning sets under. Built by
/// summing per-constraint hashes, so permutations of C collide on purpose;
/// ValidateConditions rejects duplicate constraints, which keeps the
/// multiset/set distinction from mattering.
std::size_t HashConditions(const FlowConditions& conditions);

/// \brief The combined indicator I(x, C): true iff the pseudo-state
/// satisfies every constraint (reachability via active edges). `workspace`
/// must be sized for `graph`.
bool SatisfiesConditions(const DirectedGraph& graph, const PseudoState& state,
                         const FlowConditions& conditions,
                         ReachabilityWorkspace& workspace);

/// Validates a condition set against a graph: endpoints in range, no
/// directly contradictory pair (same (source, sink) both required and
/// forbidden), no duplicate entries, no self-constraint with
/// must_flow=false (u ⤳ u always holds). Each rejection carries a
/// descriptive InvalidArgument/OutOfRange Status naming the offending
/// entries. O(|C|) via the FlowConstraint hash.
Status ValidateConditions(const DirectedGraph& graph,
                          const FlowConditions& conditions);

}  // namespace infoflow

/// Hash support so condition sets can be deduplicated and used as batch
/// keys (unordered containers of FlowConstraint, HashConditions).
template <>
struct std::hash<infoflow::FlowConstraint> {
  std::size_t operator()(const infoflow::FlowConstraint& c) const noexcept {
    // Pack (source, sink, must_flow) into one word, then mix with the
    // SplitMix64 finalizer so nearby node ids spread across the range.
    std::uint64_t z = (static_cast<std::uint64_t>(c.source) << 33) ^
                      (static_cast<std::uint64_t>(c.sink) << 1) ^
                      (c.must_flow ? 1u : 0u);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
