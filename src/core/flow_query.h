/// \file flow_query.h
/// \brief Flow-condition types shared by the exact evaluator and the MH
/// sampler (§III-A).
///
/// A condition set C ∈ P(V × V × B) constrains which pseudo-states are
/// admissible: (u, v, 1) enforces u ⤳ v, (u, v, 0) enforces u ̸⤳ v. The
/// combined indicator I(x, C) multiplies the state probability (Eq. 7),
/// which is how conditional flow queries are answered (Eq. 6/8).

#pragma once

#include <string>
#include <vector>

#include "core/pseudo_state.h"
#include "graph/graph.h"
#include "graph/reachability.h"

namespace infoflow {

/// \brief One constrained flow (u, v, a).
struct FlowConstraint {
  NodeId source;
  NodeId sink;
  /// true: require source ⤳ sink; false: forbid it.
  bool must_flow;

  friend bool operator==(const FlowConstraint&, const FlowConstraint&) =
      default;

  /// "u ⤳ v" or "u !⤳ v".
  std::string ToString() const;
};

/// The condition set C.
using FlowConditions = std::vector<FlowConstraint>;

/// \brief The combined indicator I(x, C): true iff the pseudo-state
/// satisfies every constraint (reachability via active edges). `workspace`
/// must be sized for `graph`.
bool SatisfiesConditions(const DirectedGraph& graph, const PseudoState& state,
                         const FlowConditions& conditions,
                         ReachabilityWorkspace& workspace);

/// Validates a condition set against a graph: endpoints in range, no
/// directly contradictory pair, no self-constraint with must_flow=false
/// (u ⤳ u always holds).
Status ValidateConditions(const DirectedGraph& graph,
                          const FlowConditions& conditions);

}  // namespace infoflow
