/// \file icm.h
/// \brief The point-probability Independent Cascade Model (§II).
///
/// An ICM is G = (V, E, P): a directed graph plus an activation probability
/// per edge. An information object i starts at a set of source vertices; an
/// outgoing edge of an i-active node becomes i-active independently with its
/// edge probability, and any node with an i-active incoming edge is i-active.
/// Flow u ⤳ v is reachability through i-active edges.
///
/// Two sampling views coexist (§III-A):
///  - SampleCascade() simulates the generative percolation process and
///    yields an *active-state* (only edges with active parents are decided);
///  - SamplePseudoState() decides *every* edge independently (Eq. 3). Given
///    the sources, the active-state derived from a pseudo-state has exactly
///    the cascade distribution — the property the MH sampler relies on, and
///    one of our property tests.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pseudo_state.h"
#include "graph/graph.h"
#include "stats/rng.h"

namespace infoflow {

/// \brief An immutable point-probability ICM.
///
/// The graph is held by shared_ptr: a betaICM spawns many PointIcms over the
/// same topology (nested MH, §III-E) without copying adjacency.
class PointIcm {
 public:
  /// Builds a model over `graph` with one probability per edge (indexed by
  /// EdgeId; all values must lie in [0, 1]).
  PointIcm(std::shared_ptr<const DirectedGraph> graph,
           std::vector<double> edge_probs);

  /// Convenience: every edge gets the same probability.
  static PointIcm Constant(std::shared_ptr<const DirectedGraph> graph,
                           double p);

  /// The underlying graph.
  const DirectedGraph& graph() const { return *graph_; }

  /// Shared handle to the graph (for building sibling models).
  const std::shared_ptr<const DirectedGraph>& graph_ptr() const {
    return graph_;
  }

  /// Activation probability of edge `e`.
  double prob(EdgeId e) const;

  /// All edge probabilities, indexed by EdgeId.
  const std::vector<double>& probs() const { return probs_; }

  /// \brief Draws a pseudo-state: each edge active independently with its
  /// probability (Eq. 3).
  PseudoState SamplePseudoState(Rng& rng) const;

  /// \brief Simulates the cascade from `sources` and returns the resulting
  /// active-state (percolation; edges without an active parent stay
  /// undecided/inactive in the result).
  ActiveState SampleCascade(const std::vector<NodeId>& sources,
                            Rng& rng) const;

  /// log Pr[x | M] under Eq. 3. -inf if an edge with p=0 is active or p=1
  /// inactive.
  double LogPseudoStateProb(const PseudoState& state) const;

  /// "PointIcm(n=..., m=...)".
  std::string ToString() const;

 private:
  std::shared_ptr<const DirectedGraph> graph_;
  std::vector<double> probs_;
};

}  // namespace infoflow
