/// \file impact.h
/// \brief Impact estimation (§IV-D, Fig. 4): the distribution of the number
/// of users a tweet reaches (spread size / number of retweeting users).

#pragma once

#include <cstdint>
#include <vector>

#include "analytic/cascade_estimator.h"
#include "core/beta_icm.h"
#include "core/icm.h"
#include "stats/rng.h"
#include "util/status.h"

namespace infoflow {

/// \brief A frequency table over impact (non-source activated node count).
struct ImpactDistribution {
  /// counts[k] = number of simulated cascades whose impact was exactly k;
  /// sized to the maximum observed impact + 1.
  std::vector<std::uint64_t> counts;

  /// Total cascades recorded.
  std::uint64_t Total() const;
  /// Mean impact.
  double Mean() const;
  /// Records one cascade of the given impact.
  void Record(std::uint32_t impact);
};

/// \brief Simulates `num_cascades` cascades from `source` on a point ICM and
/// tallies how many non-source nodes each activated.
ImpactDistribution SimulateImpact(const PointIcm& model, NodeId source,
                                  std::size_t num_cascades, Rng& rng);

/// \brief The betaICM variant used for Fig. 4's prediction: each cascade
/// runs on a fresh ICM drawn from the edge Betas, so the tally reflects both
/// cascade randomness and parameter uncertainty.
ImpactDistribution SimulateImpact(const BetaIcm& model, NodeId source,
                                  std::size_t num_cascades, Rng& rng);

/// \brief Fig. 4's impact histogram as an exact/approximate *probability*
/// distribution, computed without a single simulated cascade.
struct ImpactPmf {
  /// probs[k] = Pr[impact == k] (non-source activations; same indexing as
  /// ImpactDistribution::counts). Sums to 1.
  std::vector<double> probs;
  /// Which analytic regime produced it (tree-exact / enumeration / loopy).
  analytic::AnalyticMethod method = analytic::AnalyticMethod::kTreeExact;
  /// The structural report backing the regime choice; expected_error is 0
  /// for the exact regimes.
  analytic::FeasibilityReport report;

  /// Expected impact Σ k·probs[k].
  double Mean() const;
};

/// \brief The analytic (message-passing / subtree-convolution) path for
/// impact histograms: exact on tree-like reachable subgraphs, exact by
/// enumeration on small ones, loopy-corrected where feasible, and a
/// descriptive FailedPrecondition on dense graphs — callers fall back to
/// SimulateImpact. Cross-validated against sampling within 3×MCSE by
/// tests/test_analytic.cc.
Result<ImpactPmf> AnalyticImpact(const PointIcm& model, NodeId source,
                                 const analytic::AnalyticOptions& options = {});

}  // namespace infoflow
