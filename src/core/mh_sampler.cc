#include "core/mh_sampler.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "util/check.h"

namespace infoflow {

namespace {

/// Upper bounds of the flip-index histogram: bucket i collects flips of
/// edges whose id has bit-width i (i.e. e < 2^i). bit_width of a 32-bit id
/// is 0..32, so the 33 bounds plus the registry's overflow slot match
/// MhSampler::kFlipBuckets == 34 exactly.
std::vector<double> FlipIndexBounds() {
  std::vector<double> bounds;
  bounds.reserve(33);
  for (int i = 0; i <= 32; ++i) bounds.push_back(static_cast<double>(i));
  return bounds;
}

/// Fenwick re-weigh latency buckets, nanoseconds.
std::vector<double> FenwickLatencyBounds() {
  return {25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000};
}

}  // namespace

Status MhOptions::Validate() const {
  if (burn_in > (1u << 26)) {
    return Status::InvalidArgument("burn_in ", burn_in, " unreasonably large");
  }
  if (thinning > (1u << 20)) {
    return Status::InvalidArgument("thinning ", thinning,
                                   " unreasonably large");
  }
  return Status::OK();
}

namespace {

/// BFS over edges with p > 0, recording parent edges, then activates the
/// path from `source` to `sink` in `state`. Returns false when no such path
/// exists at all.
bool ActivatePath(const PointIcm& model, NodeId source, NodeId sink,
                  PseudoState& state) {
  const DirectedGraph& graph = model.graph();
  if (source == sink) return true;
  std::vector<EdgeId> parent_edge(graph.num_nodes(), kInvalidEdge);
  std::vector<std::uint8_t> seen(graph.num_nodes(), 0);
  std::vector<NodeId> queue{source};
  seen[source] = 1;
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    for (EdgeId e : graph.OutEdges(u)) {
      if (model.prob(e) <= 0.0) continue;  // cannot ever activate
      const NodeId v = graph.edge(e).dst;
      if (seen[v]) continue;
      seen[v] = 1;
      parent_edge[v] = e;
      if (v == sink) {
        // Walk back activating the path edges.
        NodeId cur = sink;
        while (cur != source) {
          const EdgeId pe = parent_edge[cur];
          state[pe] = 1;
          cur = graph.edge(pe).src;
        }
        return true;
      }
      queue.push_back(v);
    }
  }
  return false;
}

}  // namespace

Result<PseudoState> MhSampler::FindInitialState(
    const PointIcm& model, const FlowConditions& conditions,
    const MhOptions& options, Rng& rng) {
  const DirectedGraph& graph = model.graph();
  if (conditions.empty()) return model.SamplePseudoState(rng);

  ReachabilityWorkspace ws(graph);
  // Phase 1: rejection from the unconditioned marginal.
  for (std::size_t attempt = 0; attempt < options.init_rejection_tries;
       ++attempt) {
    PseudoState candidate = model.SamplePseudoState(rng);
    if (SatisfiesConditions(graph, candidate, conditions, ws)) {
      return candidate;
    }
  }
  // Phase 2: constructive repair. Start from the sparsest state consistent
  // with deterministic edges (p = 1 must stay active), then switch on one
  // path per positive constraint. Negative constraints are then re-checked:
  // an all-off background maximizes the chance they hold.
  PseudoState state(graph.num_edges(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (model.prob(e) >= 1.0) state[e] = 1;
  }
  for (const FlowConstraint& c : conditions) {
    if (!c.must_flow) continue;
    if (!ActivatePath(model, c.source, c.sink, state)) {
      return Status::FailedPrecondition(
          "condition ", c.ToString(),
          " is unsatisfiable: no positive-probability path exists");
    }
  }
  if (!SatisfiesConditions(graph, state, conditions, ws)) {
    return Status::FailedPrecondition(
        "could not construct an initial state satisfying the ",
        conditions.size(),
        " flow conditions (positive paths conflict with negative "
        "constraints); conditions may have probability ~0");
  }
  return state;
}

Result<MhSampler> MhSampler::Create(PointIcm model, FlowConditions conditions,
                                    MhOptions options, Rng rng) {
  IF_RETURN_NOT_OK(options.Validate());
  IF_RETURN_NOT_OK(ValidateConditions(model.graph(), conditions));
  auto init = FindInitialState(model, conditions, options, rng);
  if (!init.ok()) return init.status();
  return MhSampler(std::move(model), std::move(conditions), options, rng,
                   std::move(init).ValueOrDie());
}

MhSampler::MhSampler(PointIcm model, FlowConditions conditions,
                     MhOptions options, Rng rng, PseudoState init)
    : model_(std::move(model)),
      conditions_(std::move(conditions)),
      options_(options),
      rng_(rng),
      state_(std::move(init)),
      // model_ (already moved into) must be used here, not the parameter.
      weights_(model_.graph().num_edges()),
      workspace_(model_.graph()),
      metric_steps_burnin_(&obs::GetCounter("mh.steps.burnin")),
      metric_steps_retained_(&obs::GetCounter("mh.steps.retained")),
      metric_steps_accepted_(&obs::GetCounter("mh.steps.accepted")),
      metric_samples_retained_(&obs::GetCounter("mh.samples_retained")),
      metric_flip_index_(
          &obs::GetHistogram("mh.flip_index_log2", FlipIndexBounds())),
      metric_fenwick_ns_(
          &obs::GetHistogram("mh.fenwick_update_ns", FenwickLatencyBounds())) {
  // Initialize the proposal multinomial: weight of flipping edge e is the
  // probability of the activity the flip would *produce*.
  for (EdgeId e = 0; e < model_.graph().num_edges(); ++e) {
    weights_.Set(e, FlipWeight(e, state_[e] != 0));
  }
}

double MhSampler::FlipWeight(EdgeId e, bool currently_active) const {
  const double p = model_.prob(e);
  // Proposing to flip e produces activity (1 - x_e): weight
  // q_e = p^{x_e} (1-p)^{1-x_e} evaluated at the *current* activity per
  // §III-C — an inactive edge is selected proportional to p (it would
  // become active), an active one proportional to (1 - p).
  return currently_active ? (1.0 - p) : p;
}

bool MhSampler::Step() {
  ++steps_;
  const double z_current = weights_.Total();
  if (z_current <= 0.0) return false;  // frozen chain: all edges deterministic

  const EdgeId e =
      options_.uniform_proposal
          ? static_cast<EdgeId>(rng_.NextBounded(model_.graph().num_edges()))
          : static_cast<EdgeId>(weights_.Sample(rng_));
  if constexpr (obs::MetricsEnabled()) {
    // 1-in-8 sampled flip recording (scaled back up at publish, statsd
    // style): one predictable branch per step keeps the chain at its
    // uninstrumented throughput, and the histogram only needs the *shape*
    // of the flip-index distribution, not exact counts. Aggregation is
    // local (this chain is single-threaded); PublishStepStats drains into
    // the registry once per retained sample.
    if ((steps_ & 7u) == 0) {
      ++flip_counts_[std::bit_width(static_cast<std::uint32_t>(e))];
    }
  }
  const bool was_active = state_[e] != 0;
  const double p = model_.prob(e);

  // Weights of this flip in the current state and of the reverse flip in
  // the candidate state.
  const double w_forward = was_active ? (1.0 - p) : p;
  const double w_backward = was_active ? p : (1.0 - p);
  // Z' = Z + (-1)^{x_e} (1 - 2 p_e): flipping e swaps its proposal weight.
  const double z_candidate = z_current - w_forward + w_backward;

  // Weighted proposal: p_ratio = w_fwd/w_bwd and q_ratio =
  // (w_fwd/w_bwd)·(Z'/Z), so the acceptance ratio collapses to Z/Z' — see
  // the header derivation. Uniform proposal: q_ratio = 1 and the density
  // ratio stands alone.
  const double ratio = options_.uniform_proposal
                           ? w_forward / w_backward
                           : z_current / z_candidate;
  if (ratio < 1.0 && rng_.NextDouble() > ratio) return false;

  // Candidate passes the Hastings test; enforce I(x', C) (Eq. 7): a
  // violating candidate has zero posterior probability, so it is rejected.
  state_[e] = was_active ? 0 : 1;
  if (!conditions_.empty() &&
      !SatisfiesConditions(model_.graph(), state_, conditions_, workspace_)) {
    state_[e] = was_active ? 1 : 0;  // roll back
    return false;
  }
  weights_.Set(e, w_backward);
  ++accepted_;
  return true;
}

void MhSampler::PublishStepStats() {
  metric_steps_burnin_->Increment(pending_burnin_steps_);
  metric_steps_retained_->Increment(pending_retained_steps_);
  metric_steps_accepted_->Increment(accepted_ - published_accepted_);
  published_accepted_ = accepted_;
  metric_samples_retained_->Increment(pending_samples_);
  pending_burnin_steps_ = 0;
  pending_retained_steps_ = 0;
  pending_samples_ = 0;
  // Scale the 1-in-8 sampled flip counts back to step units; the sum is
  // exactly recoverable from the buckets because bucket i holds only flips
  // whose recorded value is i.
  std::array<std::uint64_t, kFlipBuckets> scaled;
  double flip_sum = 0.0;
  for (std::size_t i = 0; i < flip_counts_.size(); ++i) {
    scaled[i] = flip_counts_[i] * 8;
    flip_sum += static_cast<double>(i) * static_cast<double>(scaled[i]);
  }
  metric_flip_index_->AddBatch(scaled.data(), scaled.size(), flip_sum);
  flip_counts_.fill(0);
  // Time one idempotent Fenwick re-weigh on every 8th publish, off the
  // per-step path. Set walks the full update path whatever the delta (it
  // embeds a Get), so a same-value Set on a rotating probe edge has the
  // exact cost profile of the re-weigh an accepted flip performs in Step;
  // throttling keeps the amortized clock cost below a nanosecond per step
  // while still recording hundreds of latencies per realistic query.
  if ((publishes_++ & 7u) == 0 && model_.graph().num_edges() > 0) {
    const auto probe = static_cast<EdgeId>(
        steps_ % static_cast<std::uint64_t>(model_.graph().num_edges()));
    const double w = weights_.Get(probe);
    const auto begin = std::chrono::steady_clock::now();
    weights_.Set(probe, w);
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    metric_fenwick_ns_->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
}

void MhSampler::FlushMetrics() {
  if constexpr (obs::MetricsEnabled()) {
    if (pending_samples_ > 0 || accepted_ != published_accepted_) {
      PublishStepStats();
    }
  }
}

void MhSampler::Reseed(Rng rng) {
  FlushMetrics();  // don't lose work already done under the old stream
  rng_ = rng;
  burned_in_ = false;
  steps_ = 0;
  accepted_ = 0;
  published_accepted_ = 0;
  flip_counts_.fill(0);
}

const PseudoState& MhSampler::NextSample() {
  const bool burn_in_phase = !burned_in_;
  std::uint64_t steps_run = 0;
  if (!burned_in_) {
    for (std::size_t i = 0; i < options_.burn_in; ++i) Step();
    steps_run = options_.burn_in;
    burned_in_ = true;
  } else {
    for (std::size_t i = 0; i <= options_.thinning; ++i) Step();
    steps_run = options_.thinning + 1;
  }
  if constexpr (obs::MetricsEnabled()) {
    // Aggregate locally; drain to the registry every kPublishInterval-th
    // sample (FlushMetrics at estimate boundaries catches the remainder).
    (burn_in_phase ? pending_burnin_steps_ : pending_retained_steps_) +=
        steps_run;
    if (++pending_samples_ >= kPublishInterval) PublishStepStats();
  }
  return state_;
}

void MhSampler::ForEachSample(
    std::size_t num_samples,
    const std::function<void(std::size_t, const PseudoState&)>& visit) {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  for (std::size_t i = 0; i < num_samples; ++i) visit(i, NextSample());
  FlushMetrics();
}

double MhSampler::EstimateFlowProbability(NodeId source, NodeId sink,
                                          std::size_t num_samples) {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  const DirectedGraph& graph = model_.graph();
  IF_CHECK(source < graph.num_nodes() && sink < graph.num_nodes());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < num_samples; ++i) {
    const PseudoState& x = NextSample();
    if (workspace_.RunUntil(graph, {source}, x, sink)) ++hits;
  }
  FlushMetrics();
  return static_cast<double>(hits) / static_cast<double>(num_samples);
}

std::vector<double> MhSampler::EstimateCommunityFlow(
    NodeId source, const std::vector<NodeId>& sinks,
    std::size_t num_samples) {
  return EstimateCommunityFlowMulti({source}, sinks, num_samples);
}

std::vector<double> MhSampler::EstimateCommunityFlowMulti(
    const std::vector<NodeId>& sources, const std::vector<NodeId>& sinks,
    std::size_t num_samples) {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  IF_CHECK(!sources.empty()) << "need at least one source";
  const DirectedGraph& graph = model_.graph();
  std::vector<std::size_t> hits(sinks.size(), 0);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const PseudoState& x = NextSample();
    workspace_.Run(graph, sources, x);
    for (std::size_t j = 0; j < sinks.size(); ++j) {
      if (workspace_.IsReached(sinks[j])) ++hits[j];
    }
  }
  FlushMetrics();
  std::vector<double> out(sinks.size());
  for (std::size_t j = 0; j < sinks.size(); ++j) {
    out[j] =
        static_cast<double>(hits[j]) / static_cast<double>(num_samples);
  }
  return out;
}

double MhSampler::EstimateJointFlowProbability(const FlowConditions& flows,
                                               std::size_t num_samples) {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  ValidateConditions(model_.graph(), flows).CheckOK();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < num_samples; ++i) {
    const PseudoState& x = NextSample();
    if (SatisfiesConditions(model_.graph(), x, flows, workspace_)) ++hits;
  }
  FlushMetrics();
  return static_cast<double>(hits) / static_cast<double>(num_samples);
}

std::vector<std::uint32_t> MhSampler::SampleDispersion(
    NodeId source, std::size_t num_samples) {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  const DirectedGraph& graph = model_.graph();
  IF_CHECK(source < graph.num_nodes());
  std::vector<std::uint32_t> counts;
  counts.reserve(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const PseudoState& x = NextSample();
    workspace_.Run(graph, {source}, x);
    // Reached nodes minus the source itself.
    counts.push_back(
        static_cast<std::uint32_t>(workspace_.ReachedNodes().size() - 1));
  }
  FlushMetrics();
  return counts;
}

}  // namespace infoflow
