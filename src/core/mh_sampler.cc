#include "core/mh_sampler.h"

#include <algorithm>

#include "util/check.h"

namespace infoflow {

Status MhOptions::Validate() const {
  if (burn_in > (1u << 26)) {
    return Status::InvalidArgument("burn_in ", burn_in, " unreasonably large");
  }
  if (thinning > (1u << 20)) {
    return Status::InvalidArgument("thinning ", thinning,
                                   " unreasonably large");
  }
  return Status::OK();
}

namespace {

/// BFS over edges with p > 0, recording parent edges, then activates the
/// path from `source` to `sink` in `state`. Returns false when no such path
/// exists at all.
bool ActivatePath(const PointIcm& model, NodeId source, NodeId sink,
                  PseudoState& state) {
  const DirectedGraph& graph = model.graph();
  if (source == sink) return true;
  std::vector<EdgeId> parent_edge(graph.num_nodes(), kInvalidEdge);
  std::vector<std::uint8_t> seen(graph.num_nodes(), 0);
  std::vector<NodeId> queue{source};
  seen[source] = 1;
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    for (EdgeId e : graph.OutEdges(u)) {
      if (model.prob(e) <= 0.0) continue;  // cannot ever activate
      const NodeId v = graph.edge(e).dst;
      if (seen[v]) continue;
      seen[v] = 1;
      parent_edge[v] = e;
      if (v == sink) {
        // Walk back activating the path edges.
        NodeId cur = sink;
        while (cur != source) {
          const EdgeId pe = parent_edge[cur];
          state[pe] = 1;
          cur = graph.edge(pe).src;
        }
        return true;
      }
      queue.push_back(v);
    }
  }
  return false;
}

}  // namespace

Result<PseudoState> MhSampler::FindInitialState(
    const PointIcm& model, const FlowConditions& conditions,
    const MhOptions& options, Rng& rng) {
  const DirectedGraph& graph = model.graph();
  if (conditions.empty()) return model.SamplePseudoState(rng);

  ReachabilityWorkspace ws(graph);
  // Phase 1: rejection from the unconditioned marginal.
  for (std::size_t attempt = 0; attempt < options.init_rejection_tries;
       ++attempt) {
    PseudoState candidate = model.SamplePseudoState(rng);
    if (SatisfiesConditions(graph, candidate, conditions, ws)) {
      return candidate;
    }
  }
  // Phase 2: constructive repair. Start from the sparsest state consistent
  // with deterministic edges (p = 1 must stay active), then switch on one
  // path per positive constraint. Negative constraints are then re-checked:
  // an all-off background maximizes the chance they hold.
  PseudoState state(graph.num_edges(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (model.prob(e) >= 1.0) state[e] = 1;
  }
  for (const FlowConstraint& c : conditions) {
    if (!c.must_flow) continue;
    if (!ActivatePath(model, c.source, c.sink, state)) {
      return Status::FailedPrecondition(
          "condition ", c.ToString(),
          " is unsatisfiable: no positive-probability path exists");
    }
  }
  if (!SatisfiesConditions(graph, state, conditions, ws)) {
    return Status::FailedPrecondition(
        "could not construct an initial state satisfying the ",
        conditions.size(),
        " flow conditions (positive paths conflict with negative "
        "constraints); conditions may have probability ~0");
  }
  return state;
}

Result<MhSampler> MhSampler::Create(PointIcm model, FlowConditions conditions,
                                    MhOptions options, Rng rng) {
  IF_RETURN_NOT_OK(options.Validate());
  IF_RETURN_NOT_OK(ValidateConditions(model.graph(), conditions));
  auto init = FindInitialState(model, conditions, options, rng);
  if (!init.ok()) return init.status();
  return MhSampler(std::move(model), std::move(conditions), options, rng,
                   std::move(init).ValueOrDie());
}

MhSampler::MhSampler(PointIcm model, FlowConditions conditions,
                     MhOptions options, Rng rng, PseudoState init)
    : model_(std::move(model)),
      conditions_(std::move(conditions)),
      options_(options),
      rng_(rng),
      state_(std::move(init)),
      // model_ (already moved into) must be used here, not the parameter.
      weights_(model_.graph().num_edges()),
      workspace_(model_.graph()) {
  // Initialize the proposal multinomial: weight of flipping edge e is the
  // probability of the activity the flip would *produce*.
  for (EdgeId e = 0; e < model_.graph().num_edges(); ++e) {
    weights_.Set(e, FlipWeight(e, state_[e] != 0));
  }
}

double MhSampler::FlipWeight(EdgeId e, bool currently_active) const {
  const double p = model_.prob(e);
  // Proposing to flip e produces activity (1 - x_e): weight
  // q_e = p^{x_e} (1-p)^{1-x_e} evaluated at the *current* activity per
  // §III-C — an inactive edge is selected proportional to p (it would
  // become active), an active one proportional to (1 - p).
  return currently_active ? (1.0 - p) : p;
}

bool MhSampler::Step() {
  ++steps_;
  const double z_current = weights_.Total();
  if (z_current <= 0.0) return false;  // frozen chain: all edges deterministic

  const EdgeId e =
      options_.uniform_proposal
          ? static_cast<EdgeId>(rng_.NextBounded(model_.graph().num_edges()))
          : static_cast<EdgeId>(weights_.Sample(rng_));
  const bool was_active = state_[e] != 0;
  const double p = model_.prob(e);

  // Weights of this flip in the current state and of the reverse flip in
  // the candidate state.
  const double w_forward = was_active ? (1.0 - p) : p;
  const double w_backward = was_active ? p : (1.0 - p);
  // Z' = Z + (-1)^{x_e} (1 - 2 p_e): flipping e swaps its proposal weight.
  const double z_candidate = z_current - w_forward + w_backward;

  // Weighted proposal: p_ratio = w_fwd/w_bwd and q_ratio =
  // (w_fwd/w_bwd)·(Z'/Z), so the acceptance ratio collapses to Z/Z' — see
  // the header derivation. Uniform proposal: q_ratio = 1 and the density
  // ratio stands alone.
  const double ratio = options_.uniform_proposal
                           ? w_forward / w_backward
                           : z_current / z_candidate;
  if (ratio < 1.0 && rng_.NextDouble() > ratio) return false;

  // Candidate passes the Hastings test; enforce I(x', C) (Eq. 7): a
  // violating candidate has zero posterior probability, so it is rejected.
  state_[e] = was_active ? 0 : 1;
  if (!conditions_.empty() &&
      !SatisfiesConditions(model_.graph(), state_, conditions_, workspace_)) {
    state_[e] = was_active ? 1 : 0;  // roll back
    return false;
  }
  weights_.Set(e, w_backward);
  ++accepted_;
  return true;
}

const PseudoState& MhSampler::NextSample() {
  if (!burned_in_) {
    for (std::size_t i = 0; i < options_.burn_in; ++i) Step();
    burned_in_ = true;
  } else {
    for (std::size_t i = 0; i <= options_.thinning; ++i) Step();
  }
  return state_;
}

double MhSampler::EstimateFlowProbability(NodeId source, NodeId sink,
                                          std::size_t num_samples) {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  const DirectedGraph& graph = model_.graph();
  IF_CHECK(source < graph.num_nodes() && sink < graph.num_nodes());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < num_samples; ++i) {
    const PseudoState& x = NextSample();
    if (workspace_.RunUntil(graph, {source}, x, sink)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(num_samples);
}

std::vector<double> MhSampler::EstimateCommunityFlow(
    NodeId source, const std::vector<NodeId>& sinks,
    std::size_t num_samples) {
  return EstimateCommunityFlowMulti({source}, sinks, num_samples);
}

std::vector<double> MhSampler::EstimateCommunityFlowMulti(
    const std::vector<NodeId>& sources, const std::vector<NodeId>& sinks,
    std::size_t num_samples) {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  IF_CHECK(!sources.empty()) << "need at least one source";
  const DirectedGraph& graph = model_.graph();
  std::vector<std::size_t> hits(sinks.size(), 0);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const PseudoState& x = NextSample();
    workspace_.Run(graph, sources, x);
    for (std::size_t j = 0; j < sinks.size(); ++j) {
      if (workspace_.IsReached(sinks[j])) ++hits[j];
    }
  }
  std::vector<double> out(sinks.size());
  for (std::size_t j = 0; j < sinks.size(); ++j) {
    out[j] =
        static_cast<double>(hits[j]) / static_cast<double>(num_samples);
  }
  return out;
}

double MhSampler::EstimateJointFlowProbability(const FlowConditions& flows,
                                               std::size_t num_samples) {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  ValidateConditions(model_.graph(), flows).CheckOK();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < num_samples; ++i) {
    const PseudoState& x = NextSample();
    if (SatisfiesConditions(model_.graph(), x, flows, workspace_)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(num_samples);
}

std::vector<std::uint32_t> MhSampler::SampleDispersion(
    NodeId source, std::size_t num_samples) {
  IF_CHECK(num_samples > 0) << "need at least one sample";
  const DirectedGraph& graph = model_.graph();
  IF_CHECK(source < graph.num_nodes());
  std::vector<std::uint32_t> counts;
  counts.reserve(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    const PseudoState& x = NextSample();
    workspace_.Run(graph, {source}, x);
    // Reached nodes minus the source itself.
    counts.push_back(
        static_cast<std::uint32_t>(workspace_.ReachedNodes().size() - 1));
  }
  return counts;
}

}  // namespace infoflow
