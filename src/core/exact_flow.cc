#include "core/exact_flow.h"

#include <cmath>
#include <unordered_map>

#include "graph/reachability.h"
#include "util/check.h"

namespace infoflow {

namespace {

/// Iterates every pseudo-state of an m-edge model, invoking
/// `visit(state, prob)` with its exact probability under Eq. 3.
template <typename Visitor>
void ForEachPseudoState(const PointIcm& model, Visitor&& visit) {
  const EdgeId m = model.graph().num_edges();
  IF_CHECK(m <= kMaxEnumerationEdges)
      << "enumeration over 2^" << m << " pseudo-states refused (max 2^"
      << kMaxEnumerationEdges << ")";
  PseudoState state(m, 0);
  const std::uint64_t limit = 1ULL << m;
  for (std::uint64_t bits = 0; bits < limit; ++bits) {
    double prob = 1.0;
    for (EdgeId e = 0; e < m; ++e) {
      const bool active = (bits >> e) & 1ULL;
      state[e] = active ? 1 : 0;
      prob *= active ? model.prob(e) : 1.0 - model.prob(e);
    }
    if (prob > 0.0) visit(state, prob);
  }
}

}  // namespace

double ExactFlowByEnumeration(const PointIcm& model, NodeId source,
                              NodeId sink) {
  const DirectedGraph& graph = model.graph();
  IF_CHECK(source < graph.num_nodes() && sink < graph.num_nodes());
  ReachabilityWorkspace ws(graph);
  double total = 0.0;
  ForEachPseudoState(model, [&](const PseudoState& x, double prob) {
    if (ws.RunUntil(graph, {source}, x, sink)) total += prob;
  });
  return total;
}

Result<double> ExactConditionalFlowByEnumeration(
    const PointIcm& model, NodeId source, NodeId sink,
    const FlowConditions& conditions) {
  const DirectedGraph& graph = model.graph();
  IF_RETURN_NOT_OK(ValidateConditions(graph, conditions));
  IF_CHECK(source < graph.num_nodes() && sink < graph.num_nodes());
  ReachabilityWorkspace ws(graph);
  double numer = 0.0;
  double denom = 0.0;
  ForEachPseudoState(model, [&](const PseudoState& x, double prob) {
    if (!SatisfiesConditions(graph, x, conditions, ws)) return;
    denom += prob;
    if (ws.RunUntil(graph, {source}, x, sink)) numer += prob;
  });
  if (denom <= 0.0) {
    return Status::FailedPrecondition(
        "conditions have probability zero under the model");
  }
  return numer / denom;
}

double ExactJointFlowByEnumeration(const PointIcm& model,
                                   const FlowConditions& flows) {
  const DirectedGraph& graph = model.graph();
  ValidateConditions(graph, flows).CheckOK();
  ReachabilityWorkspace ws(graph);
  double total = 0.0;
  ForEachPseudoState(model, [&](const PseudoState& x, double prob) {
    if (SatisfiesConditions(graph, x, flows, ws)) total += prob;
  });
  return total;
}

double ExactConditionsProbability(const PointIcm& model,
                                  const FlowConditions& conditions) {
  return ExactJointFlowByEnumeration(model, conditions);
}

namespace {

/// Memo key for the exclude recursion: (current target node, exclude set).
struct ExcludeKey {
  NodeId target;
  std::uint32_t exclude_mask;
  friend bool operator==(const ExcludeKey&, const ExcludeKey&) = default;
};

struct ExcludeKeyHash {
  std::size_t operator()(const ExcludeKey& k) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(k.target) << 32) | k.exclude_mask);
  }
};

class ExcludeRecursion {
 public:
  ExcludeRecursion(const PointIcm& model, NodeId source)
      : model_(model), source_(source) {}

  // Pr[source ⤳ target ex. exclude_mask] per Eq. 2.
  double Eval(NodeId target, std::uint32_t exclude_mask) {
    if (target == source_) return 1.0;
    const ExcludeKey key{target, exclude_mask};
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;

    // Excluding the target itself while recursing into its parents: the
    // paper's X ∪ {v_k}.
    const std::uint32_t child_mask = exclude_mask | (1u << target);
    double product = 1.0;
    for (EdgeId e : model_.graph().InEdges(target)) {
      const NodeId parent = model_.graph().edge(e).src;
      if ((exclude_mask >> parent) & 1u) continue;  // parent excluded
      const double parent_flow =
          parent == source_ ? 1.0 : Eval(parent, child_mask);
      product *= 1.0 - parent_flow * model_.prob(e);
    }
    const double result = 1.0 - product;
    memo_.emplace(key, result);
    return result;
  }

 private:
  const PointIcm& model_;
  NodeId source_;
  std::unordered_map<ExcludeKey, double, ExcludeKeyHash> memo_;
};

}  // namespace

double FlowByExcludeRecursion(const PointIcm& model, NodeId source,
                              NodeId sink) {
  const DirectedGraph& graph = model.graph();
  IF_CHECK(graph.num_nodes() <= 30)
      << "exclude-set recursion limited to 30 nodes, graph has "
      << graph.num_nodes();
  IF_CHECK(source < graph.num_nodes() && sink < graph.num_nodes());
  if (source == sink) return 1.0;
  ExcludeRecursion recursion(model, source);
  return recursion.Eval(sink, 0);
}

}  // namespace infoflow
