#include "core/delay.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace infoflow {

EdgeDelay EdgeDelay::ExponentialMean(double mean) {
  IF_CHECK(mean > 0.0) << "exponential delay mean must be positive, got "
                       << mean;
  return EdgeDelay{Kind::kExponential, 1.0 / mean, 0.0};
}

double EdgeDelay::Sample(Rng& rng) const {
  switch (kind) {
    case Kind::kConstant:
      return a;
    case Kind::kExponential:
      return rng.Exponential(a);
    case Kind::kUniform:
      return rng.Uniform(a, b);
  }
  return 0.0;
}

Status EdgeDelay::Validate() const {
  switch (kind) {
    case Kind::kConstant:
      if (a < 0.0) return Status::InvalidArgument("negative delay ", a);
      return Status::OK();
    case Kind::kExponential:
      if (a <= 0.0) {
        return Status::InvalidArgument("exponential rate must be positive: ",
                                       a);
      }
      return Status::OK();
    case Kind::kUniform:
      if (a < 0.0 || b < a) {
        return Status::InvalidArgument("bad uniform delay range [", a, ",",
                                       b, "]");
      }
      return Status::OK();
  }
  return Status::Internal("unknown delay kind");
}

Result<DelayedIcm> DelayedIcm::Create(PointIcm model,
                                      std::vector<EdgeDelay> delays) {
  if (delays.size() != model.graph().num_edges()) {
    return Status::InvalidArgument("need one delay per edge: got ",
                                   delays.size(), " for ",
                                   model.graph().num_edges(), " edges");
  }
  for (std::size_t e = 0; e < delays.size(); ++e) {
    const Status status = delays[e].Validate();
    if (!status.ok()) {
      return Status::InvalidArgument("edge ", e, ": ", status.message());
    }
  }
  return DelayedIcm(std::move(model), std::move(delays));
}

DelayedIcm DelayedIcm::WithUniformDelay(PointIcm model, EdgeDelay delay) {
  delay.Validate().CheckOK();
  const std::size_t m = model.graph().num_edges();
  return DelayedIcm(std::move(model), std::vector<EdgeDelay>(m, delay));
}

const EdgeDelay& DelayedIcm::delay(EdgeId e) const {
  IF_CHECK(e < delays_.size()) << "edge id " << e << " out of range";
  return delays_[e];
}

std::vector<double> DelayedIcm::SampleArrivalTimes(
    const std::vector<NodeId>& sources, Rng& rng) const {
  const DirectedGraph& graph = model_.graph();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> arrival(graph.num_nodes(), kInf);

  // Lazy Dijkstra: edge activity and travel time are drawn the first time
  // the edge is relaxed (each edge relaxes at most once from its settled
  // parent, so one draw per edge, as in the untimed cascade).
  using Item = std::pair<double, NodeId>;  // (time, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  for (NodeId s : sources) {
    IF_CHECK(s < graph.num_nodes()) << "source " << s << " out of range";
    if (arrival[s] > 0.0) {
      arrival[s] = 0.0;
      queue.push({0.0, s});
    }
  }
  std::vector<std::uint8_t> settled(graph.num_nodes(), 0);
  while (!queue.empty()) {
    const auto [time, u] = queue.top();
    queue.pop();
    if (settled[u]) continue;
    settled[u] = 1;
    for (EdgeId e : graph.OutEdges(u)) {
      const NodeId v = graph.edge(e).dst;
      if (settled[v]) continue;
      if (!rng.Bernoulli(model_.prob(e))) continue;
      const double t = time + delays_[e].Sample(rng);
      if (t < arrival[v]) {
        arrival[v] = t;
        queue.push({t, v});
      }
    }
  }
  return arrival;
}

double ArrivalEstimate::FlowProbability() const {
  if (trials == 0) return 0.0;
  return static_cast<double>(arrival_times.size()) /
         static_cast<double>(trials);
}

double ArrivalEstimate::FlowProbabilityWithin(double deadline) const {
  if (trials == 0) return 0.0;
  const auto within = static_cast<std::size_t>(std::count_if(
      arrival_times.begin(), arrival_times.end(),
      [deadline](double t) { return t <= deadline; }));
  return static_cast<double>(within) / static_cast<double>(trials);
}

double ArrivalEstimate::MeanArrivalTime() const {
  if (arrival_times.empty()) return 0.0;
  double total = 0.0;
  for (double t : arrival_times) total += t;
  return total / static_cast<double>(arrival_times.size());
}

ArrivalEstimate EstimateArrival(const DelayedIcm& model, NodeId source,
                                NodeId sink, std::size_t trials, Rng& rng) {
  IF_CHECK(trials > 0) << "need at least one trial";
  IF_CHECK(source < model.graph().num_nodes() &&
           sink < model.graph().num_nodes())
      << "endpoints out of range";
  ArrivalEstimate estimate;
  estimate.trials = trials;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto arrival = model.SampleArrivalTimes({source}, rng);
    if (arrival[sink] != std::numeric_limits<double>::infinity()) {
      estimate.arrival_times.push_back(arrival[sink]);
    }
  }
  return estimate;
}

}  // namespace infoflow
