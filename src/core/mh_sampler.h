/// \file mh_sampler.h
/// \brief Metropolis–Hastings pseudo-state sampling (§III, Algorithm 1).
///
/// The chain walks the space X = {0,1}^m of pseudo-states. A proposal flips
/// exactly one edge; the flipped edge is drawn from a multinomial whose
/// weights are q_i = p_i^{x_i} (1 − p_i)^{1−x_i} — i.e. an edge is proposed
/// with probability proportional to the probability of its *resulting*
/// activity (§III-C). The weights live in a Fenwick tree, so drawing and
/// re-weighing after an accepted flip are both O(log m), and the
/// normalization constant Z is maintained incrementally (the paper's
/// Z' = Z + (−1)^{x_i} (1 − 2 p_i) identity).
///
/// For a proposed flip of edge i, let w_fwd be i's proposal weight in x
/// (the probability of the activity the flip produces) and w_bwd the weight
/// of the reverse flip in x'. Flipping i changes exactly one factor of
/// Eq. 3 from w_bwd to w_fwd, so
///   p_ratio = Pr[x'|M] / Pr[x|M]          = w_fwd / w_bwd
///   q_ratio = q(x'|x) / q(x|x')           = (w_fwd/Z) / (w_bwd/Z')
///                                         = (w_fwd/w_bwd) · (Z'/Z)
///   accept  = min(p_ratio / q_ratio, 1)   = min(Z / Z', 1)
/// — the proposal's bias toward probable flips cancels the density ratio,
/// leaving only the normalizer correction.
///
/// Flow conditions C enter through the indicator I(x, C) (Eq. 7/8): the
/// chain is initialized inside the admissible set and any candidate that
/// violates C has acceptance probability zero.
///
/// Burn-in discards the first δ states; thinning keeps every (δ′+1)-th
/// state afterwards (§III-B).

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/flow_query.h"
#include "core/icm.h"
#include "obs/metrics.h"
#include "stats/fenwick_tree.h"
#include "stats/rng.h"
#include "util/status.h"

namespace infoflow {

/// \brief Tuning knobs for the chain.
struct MhOptions {
  /// δ: states discarded before the first sample.
  std::size_t burn_in = 1000;
  /// δ′: states discarded between consecutive samples.
  std::size_t thinning = 10;
  /// Attempts at drawing an initial state satisfying the conditions from
  /// the marginal before falling back to constructive repair.
  std::size_t init_rejection_tries = 256;
  /// Ablation switch: pick the flipped edge uniformly instead of from the
  /// §III-C probability-weighted multinomial (the acceptance test then
  /// carries the full density ratio). Same stationary distribution, poorer
  /// mixing — bench/ablation_proposal quantifies the gap.
  bool uniform_proposal = false;

  /// Validates the option values.
  Status Validate() const;
};

/// \brief A Metropolis–Hastings pseudo-state chain over one point ICM.
///
/// \code
///   auto sampler = MhSampler::Create(model, /*conditions=*/{}, MhOptions{},
///                                    Rng(42));
///   double p = sampler->EstimateFlowProbability(u, v, 4000);
/// \endcode
///
/// The sampler stores its own copy of the model (a PointIcm shares the
/// graph and copies only the probability vector), so temporaries like
/// `beta_icm.ExpectedIcm()` are safe to pass.
class MhSampler {
 public:
  /// \brief Builds a sampler whose stationary distribution is
  /// Pr[x | M, C]. Fails when the conditions are invalid or no admissible
  /// initial state could be constructed (e.g. contradictory C).
  static Result<MhSampler> Create(PointIcm model, FlowConditions conditions,
                                  MhOptions options, Rng rng);

  /// Performs one Markov-chain transition (Algorithm 1). Returns true when
  /// the candidate was accepted.
  bool Step();

  /// \brief Advances the chain to the next retained sample: the first call
  /// runs the burn-in, subsequent calls run δ′+1 steps. Returns the current
  /// pseudo-state (valid until the next call).
  const PseudoState& NextSample();

  /// \brief Streams `num_samples` retained pseudo-states to `visit` as they
  /// are produced — `visit(i, state)` runs once per retained sample, in
  /// order, with the state valid only for the duration of the call. This is
  /// the zero-copy hook consumers like serve/SampleBank use to pack states
  /// without buffering them; the Estimate* methods are thin folds over it.
  void ForEachSample(
      std::size_t num_samples,
      const std::function<void(std::size_t, const PseudoState&)>& visit);

  /// \brief Estimate Pr[source ⤳ sink | M, C] from `num_samples` retained
  /// samples (Eq. 5).
  double EstimateFlowProbability(NodeId source, NodeId sink,
                                 std::size_t num_samples);

  /// \brief Estimate, in one pass, Pr[source ⤳ sink_j | M, C] for every
  /// sink (source-to-community flow).
  std::vector<double> EstimateCommunityFlow(NodeId source,
                                            const std::vector<NodeId>& sinks,
                                            std::size_t num_samples);

  /// \brief Multi-source variant: Pr[∃ s ∈ sources: s ⤳ sink_j | M, C] for
  /// every sink. Used when the external world (omnipotent node, §V-D) is a
  /// standing co-source alongside a user.
  std::vector<double> EstimateCommunityFlowMulti(
      const std::vector<NodeId>& sources, const std::vector<NodeId>& sinks,
      std::size_t num_samples);

  /// \brief Estimate the probability that *all* the given flows hold
  /// jointly in one state.
  double EstimateJointFlowProbability(const FlowConditions& flows,
                                      std::size_t num_samples);

  /// \brief Estimate the dispersion of a source: the distribution of the
  /// number of non-source nodes its information reaches. Returns one count
  /// per retained sample.
  std::vector<std::uint32_t> SampleDispersion(NodeId source,
                                              std::size_t num_samples);

  /// Current pseudo-state (mostly for tests).
  const PseudoState& state() const { return state_; }

  /// The sampler's own model copy (the multi-chain engine shares its graph).
  const PointIcm& model() const { return model_; }

  /// Incremental normalizer Z of the proposal multinomial (for tests of the
  /// Z-update identity).
  double proposal_normalizer() const { return weights_.Total(); }

  /// Chain diagnostics: transitions attempted / accepted so far.
  std::uint64_t steps_taken() const { return steps_; }
  std::uint64_t steps_accepted() const { return accepted_; }

  /// Fraction of attempted transitions accepted; 0 before any attempt (the
  /// 0/0 case a caller would otherwise hit right after Create or Reseed).
  double acceptance_rate() const {
    return steps_ == 0 ? 0.0
                       : static_cast<double>(accepted_) /
                             static_cast<double>(steps_);
  }

  /// \brief Drains any step/flip aggregates not yet published to the global
  /// metrics registry. NextSample publishes every kPublishInterval-th
  /// retained sample to amortize registry traffic; call this before reading
  /// the registry when exact counts matter. No-op under INFOFLOW_NO_METRICS
  /// and when nothing is pending. The Estimate* methods and the multi-chain
  /// engine flush automatically at their boundaries.
  void FlushMetrics();

  /// \brief Restarts the chain's diagnostics on a fresh RNG stream: installs
  /// `rng`, zeroes the attempted/accepted counters and the local metric
  /// aggregates, and clears the burn-in flag so the next NextSample()
  /// re-runs burn-in. The current pseudo-state is kept — it satisfies the
  /// conditions, so the re-burned chain starts from an admissible point and
  /// multi-run diagnostics are not polluted by the previous run's counts.
  void Reseed(Rng rng);

 private:
  MhSampler(PointIcm model, FlowConditions conditions, MhOptions options,
            Rng rng, PseudoState init);

  /// Proposal weight of flipping edge e out of activity `active`.
  double FlipWeight(EdgeId e, bool currently_active) const;

  /// Finds an initial state with I(x, C) = 1 (rejection, then repair).
  static Result<PseudoState> FindInitialState(const PointIcm& model,
                                              const FlowConditions& conditions,
                                              const MhOptions& options,
                                              Rng& rng);

  /// Buckets of the flip-index histogram: one per bit-width of the flipped
  /// edge id (0..32), i.e. registry bounds {0, 1, ..., 32} plus overflow.
  static constexpr std::size_t kFlipBuckets = 34;

  /// Retained samples aggregated locally between registry publishes.
  static constexpr std::uint32_t kPublishInterval = 16;

  /// Publishes the pending step/acceptance deltas plus the locally
  /// aggregated flip-index buckets to the global registry — called every
  /// kPublishInterval-th NextSample() (and from FlushMetrics) so the
  /// per-step fast path never touches shared cells and the per-sample path
  /// rarely does.
  void PublishStepStats();

  PointIcm model_;
  FlowConditions conditions_;
  MhOptions options_;
  Rng rng_;
  PseudoState state_;
  FenwickTree weights_;
  ReachabilityWorkspace workspace_;
  bool burned_in_ = false;
  std::uint64_t steps_ = 0;
  std::uint64_t accepted_ = 0;

  /// Registry handles (inert stubs under INFOFLOW_NO_METRICS); stable for
  /// the process lifetime, so copying the sampler copies the pointers.
  obs::Counter* metric_steps_burnin_;
  obs::Counter* metric_steps_retained_;
  obs::Counter* metric_steps_accepted_;
  obs::Counter* metric_samples_retained_;
  obs::Histogram* metric_flip_index_;
  obs::Histogram* metric_fenwick_ns_;
  /// Per-step flip-index aggregate (1-in-8 sampled), drained and scaled
  /// back to step units by PublishStepStats.
  std::array<std::uint64_t, kFlipBuckets> flip_counts_{};
  std::uint64_t published_accepted_ = 0;
  /// Publish calls so far; throttles the Fenwick latency probe.
  std::uint64_t publishes_ = 0;
  /// Steps/samples accumulated since the last publish.
  std::uint64_t pending_burnin_steps_ = 0;
  std::uint64_t pending_retained_steps_ = 0;
  std::uint32_t pending_samples_ = 0;
};

}  // namespace infoflow
