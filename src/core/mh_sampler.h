/// \file mh_sampler.h
/// \brief Metropolis–Hastings pseudo-state sampling (§III, Algorithm 1).
///
/// The chain walks the space X = {0,1}^m of pseudo-states. A proposal flips
/// exactly one edge; the flipped edge is drawn from a multinomial whose
/// weights are q_i = p_i^{x_i} (1 − p_i)^{1−x_i} — i.e. an edge is proposed
/// with probability proportional to the probability of its *resulting*
/// activity (§III-C). The weights live in a Fenwick tree, so drawing and
/// re-weighing after an accepted flip are both O(log m), and the
/// normalization constant Z is maintained incrementally (the paper's
/// Z' = Z + (−1)^{x_i} (1 − 2 p_i) identity).
///
/// For a proposed flip of edge i, let w_fwd be i's proposal weight in x
/// (the probability of the activity the flip produces) and w_bwd the weight
/// of the reverse flip in x'. Flipping i changes exactly one factor of
/// Eq. 3 from w_bwd to w_fwd, so
///   p_ratio = Pr[x'|M] / Pr[x|M]          = w_fwd / w_bwd
///   q_ratio = q(x'|x) / q(x|x')           = (w_fwd/Z) / (w_bwd/Z')
///                                         = (w_fwd/w_bwd) · (Z'/Z)
///   accept  = min(p_ratio / q_ratio, 1)   = min(Z / Z', 1)
/// — the proposal's bias toward probable flips cancels the density ratio,
/// leaving only the normalizer correction.
///
/// Flow conditions C enter through the indicator I(x, C) (Eq. 7/8): the
/// chain is initialized inside the admissible set and any candidate that
/// violates C has acceptance probability zero.
///
/// Burn-in discards the first δ states; thinning keeps every (δ′+1)-th
/// state afterwards (§III-B).

#pragma once

#include <cstdint>
#include <vector>

#include "core/flow_query.h"
#include "core/icm.h"
#include "stats/fenwick_tree.h"
#include "stats/rng.h"
#include "util/status.h"

namespace infoflow {

/// \brief Tuning knobs for the chain.
struct MhOptions {
  /// δ: states discarded before the first sample.
  std::size_t burn_in = 1000;
  /// δ′: states discarded between consecutive samples.
  std::size_t thinning = 10;
  /// Attempts at drawing an initial state satisfying the conditions from
  /// the marginal before falling back to constructive repair.
  std::size_t init_rejection_tries = 256;
  /// Ablation switch: pick the flipped edge uniformly instead of from the
  /// §III-C probability-weighted multinomial (the acceptance test then
  /// carries the full density ratio). Same stationary distribution, poorer
  /// mixing — bench/ablation_proposal quantifies the gap.
  bool uniform_proposal = false;

  /// Validates the option values.
  Status Validate() const;
};

/// \brief A Metropolis–Hastings pseudo-state chain over one point ICM.
///
/// \code
///   auto sampler = MhSampler::Create(model, /*conditions=*/{}, MhOptions{},
///                                    Rng(42));
///   double p = sampler->EstimateFlowProbability(u, v, 4000);
/// \endcode
///
/// The sampler stores its own copy of the model (a PointIcm shares the
/// graph and copies only the probability vector), so temporaries like
/// `beta_icm.ExpectedIcm()` are safe to pass.
class MhSampler {
 public:
  /// \brief Builds a sampler whose stationary distribution is
  /// Pr[x | M, C]. Fails when the conditions are invalid or no admissible
  /// initial state could be constructed (e.g. contradictory C).
  static Result<MhSampler> Create(PointIcm model, FlowConditions conditions,
                                  MhOptions options, Rng rng);

  /// Performs one Markov-chain transition (Algorithm 1). Returns true when
  /// the candidate was accepted.
  bool Step();

  /// \brief Advances the chain to the next retained sample: the first call
  /// runs the burn-in, subsequent calls run δ′+1 steps. Returns the current
  /// pseudo-state (valid until the next call).
  const PseudoState& NextSample();

  /// \brief Estimate Pr[source ⤳ sink | M, C] from `num_samples` retained
  /// samples (Eq. 5).
  double EstimateFlowProbability(NodeId source, NodeId sink,
                                 std::size_t num_samples);

  /// \brief Estimate, in one pass, Pr[source ⤳ sink_j | M, C] for every
  /// sink (source-to-community flow).
  std::vector<double> EstimateCommunityFlow(NodeId source,
                                            const std::vector<NodeId>& sinks,
                                            std::size_t num_samples);

  /// \brief Multi-source variant: Pr[∃ s ∈ sources: s ⤳ sink_j | M, C] for
  /// every sink. Used when the external world (omnipotent node, §V-D) is a
  /// standing co-source alongside a user.
  std::vector<double> EstimateCommunityFlowMulti(
      const std::vector<NodeId>& sources, const std::vector<NodeId>& sinks,
      std::size_t num_samples);

  /// \brief Estimate the probability that *all* the given flows hold
  /// jointly in one state.
  double EstimateJointFlowProbability(const FlowConditions& flows,
                                      std::size_t num_samples);

  /// \brief Estimate the dispersion of a source: the distribution of the
  /// number of non-source nodes its information reaches. Returns one count
  /// per retained sample.
  std::vector<std::uint32_t> SampleDispersion(NodeId source,
                                              std::size_t num_samples);

  /// Current pseudo-state (mostly for tests).
  const PseudoState& state() const { return state_; }

  /// The sampler's own model copy (the multi-chain engine shares its graph).
  const PointIcm& model() const { return model_; }

  /// Incremental normalizer Z of the proposal multinomial (for tests of the
  /// Z-update identity).
  double proposal_normalizer() const { return weights_.Total(); }

  /// Chain diagnostics: transitions attempted / accepted so far.
  std::uint64_t steps_taken() const { return steps_; }
  std::uint64_t steps_accepted() const { return accepted_; }

 private:
  MhSampler(PointIcm model, FlowConditions conditions, MhOptions options,
            Rng rng, PseudoState init);

  /// Proposal weight of flipping edge e out of activity `active`.
  double FlipWeight(EdgeId e, bool currently_active) const;

  /// Finds an initial state with I(x, C) = 1 (rejection, then repair).
  static Result<PseudoState> FindInitialState(const PointIcm& model,
                                              const FlowConditions& conditions,
                                              const MhOptions& options,
                                              Rng& rng);

  PointIcm model_;
  FlowConditions conditions_;
  MhOptions options_;
  Rng rng_;
  PseudoState state_;
  FenwickTree weights_;
  ReachabilityWorkspace workspace_;
  bool burned_in_ = false;
  std::uint64_t steps_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace infoflow
