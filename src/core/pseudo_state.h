/// \file pseudo_state.h
/// \brief Pseudo-states and active-states (§II, §III-A).
///
/// A *pseudo-state* assigns every edge active/inactive irrespective of
/// whether its parent node is active — a plain bit vector indexed by EdgeId.
/// An *active-state* records the i-active nodes and edges given a source
/// set; a pseudo-state x "gives rise to" active-state s (x ⤳ s) when
/// deriving reachability from the sources through x's active edges yields s.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace infoflow {

/// One byte per edge (0 = inactive, 1 = active), indexed by EdgeId.
/// uint8_t rather than vector<bool> keeps the MH inner loop branch-cheap.
using PseudoState = std::vector<std::uint8_t>;

/// \brief The observable outcome of a cascade: which nodes and edges ended
/// up i-active.
struct ActiveState {
  /// Sources of the cascade (V_i^⊕), as given.
  std::vector<NodeId> sources;
  /// i-active nodes (V_i), including the sources, in BFS discovery order.
  std::vector<NodeId> active_nodes;
  /// edge_active[e] = 1 iff e is i-active: its parent is active AND the
  /// edge fired.
  std::vector<std::uint8_t> edge_active;

  /// True when `v` appears in active_nodes. O(|V_i|).
  bool IsNodeActive(NodeId v) const;
};

/// \brief Derives the active-state that pseudo-state `state` gives rise to
/// for the given sources: reachability through active edges, then masking
/// edge activity down to edges whose parent was reached.
ActiveState DeriveActiveState(const DirectedGraph& graph,
                              const std::vector<NodeId>& sources,
                              const PseudoState& state);

}  // namespace infoflow
