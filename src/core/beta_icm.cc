#include "core/beta_icm.h"

#include <algorithm>

#include "util/check.h"

namespace infoflow {

BetaIcm::BetaIcm(std::shared_ptr<const DirectedGraph> graph,
                 std::vector<double> alphas, std::vector<double> betas)
    : graph_(std::move(graph)),
      alphas_(std::move(alphas)),
      betas_(std::move(betas)) {
  IF_CHECK(graph_ != nullptr) << "BetaIcm requires a graph";
  IF_CHECK_EQ(alphas_.size(), graph_->num_edges());
  IF_CHECK_EQ(betas_.size(), graph_->num_edges());
  for (std::size_t e = 0; e < alphas_.size(); ++e) {
    IF_CHECK(alphas_[e] > 0.0 && betas_[e] > 0.0)
        << "edge " << e << " has non-positive Beta parameters α=" << alphas_[e]
        << " β=" << betas_[e];
  }
}

BetaIcm BetaIcm::Uninformed(std::shared_ptr<const DirectedGraph> graph) {
  IF_CHECK(graph != nullptr);
  const std::size_t m = graph->num_edges();
  return BetaIcm(std::move(graph), std::vector<double>(m, 1.0),
                 std::vector<double>(m, 1.0));
}

BetaIcm BetaIcm::RandomSynthetic(std::shared_ptr<const DirectedGraph> graph,
                                 Rng& rng, double alpha_lo, double alpha_hi,
                                 double beta_lo, double beta_hi) {
  IF_CHECK(graph != nullptr);
  IF_CHECK(alpha_lo > 0.0 && beta_lo > 0.0)
      << "Beta parameter ranges must stay positive";
  const std::size_t m = graph->num_edges();
  std::vector<double> alphas(m), betas(m);
  for (std::size_t e = 0; e < m; ++e) {
    alphas[e] = rng.Uniform(alpha_lo, alpha_hi);
    betas[e] = rng.Uniform(beta_lo, beta_hi);
  }
  return BetaIcm(std::move(graph), std::move(alphas), std::move(betas));
}

double BetaIcm::alpha(EdgeId e) const {
  IF_CHECK(e < alphas_.size()) << "edge id " << e << " out of range";
  return alphas_[e];
}

double BetaIcm::beta(EdgeId e) const {
  IF_CHECK(e < betas_.size()) << "edge id " << e << " out of range";
  return betas_[e];
}

BetaDist BetaIcm::EdgeBeta(EdgeId e) const {
  return BetaDist(alpha(e), beta(e));
}

void BetaIcm::BumpAlpha(EdgeId e, double amount) {
  IF_CHECK(e < alphas_.size()) << "edge id " << e << " out of range";
  IF_CHECK(amount >= 0.0) << "negative alpha bump " << amount;
  alphas_[e] += amount;
}

void BetaIcm::BumpBeta(EdgeId e, double amount) {
  IF_CHECK(e < betas_.size()) << "edge id " << e << " out of range";
  IF_CHECK(amount >= 0.0) << "negative beta bump " << amount;
  betas_[e] += amount;
}

PointIcm BetaIcm::ExpectedIcm() const {
  std::vector<double> probs(alphas_.size());
  for (std::size_t e = 0; e < probs.size(); ++e) {
    probs[e] = alphas_[e] / (alphas_[e] + betas_[e]);
  }
  return PointIcm(graph_, std::move(probs));
}

PointIcm BetaIcm::SampleIcm(Rng& rng) const {
  std::vector<double> probs(alphas_.size());
  for (std::size_t e = 0; e < probs.size(); ++e) {
    probs[e] = rng.Beta(alphas_[e], betas_[e]);
  }
  return PointIcm(graph_, std::move(probs));
}

PointIcm BetaIcm::SampleIcmGaussian(Rng& rng) const {
  std::vector<double> probs(alphas_.size());
  for (std::size_t e = 0; e < probs.size(); ++e) {
    const BetaDist dist(alphas_[e], betas_[e]);
    probs[e] = std::clamp(rng.Normal(dist.Mean(), dist.StdDev()), 0.0, 1.0);
  }
  return PointIcm(graph_, std::move(probs));
}

std::string BetaIcm::ToString() const {
  return "BetaIcm(n=" + std::to_string(graph_->num_nodes()) +
         ", m=" + std::to_string(graph_->num_edges()) + ")";
}

}  // namespace infoflow
