/// \file delay.h
/// \brief Timed information flow — the paper's §VI latency extension.
///
/// "Other extensions include adding edge latency or delay before a message
/// is forwarded. This is trivially solved by assigning a delay distribution
/// to each edge, and sampling from these distributions for each sample from
/// the posterior, i.e., assigning a weight to each edge that represents a
/// time, and running a shortest path algorithm." (§VI)
///
/// A DelayedIcm pairs a PointIcm with one delay distribution per edge.
/// Sampling a timed state draws each edge's activity (Bernoulli, as in the
/// plain ICM) and, for active edges, a travel time; arrival times are the
/// shortest-path distances through active edges (Dijkstra). This yields
/// distributions over *when* information arrives, deadline-bounded flow
/// probabilities Pr[u ⤳ v within T], and expected first-arrival times.

#pragma once

#include <limits>
#include <vector>

#include "core/icm.h"
#include "stats/rng.h"
#include "util/status.h"

namespace infoflow {

/// \brief One edge's forwarding-delay distribution.
struct EdgeDelay {
  enum class Kind {
    kConstant,     ///< always `a`
    kExponential,  ///< Exponential with rate `a` (mean 1/a)
    kUniform,      ///< U(a, b)
  };
  Kind kind = Kind::kConstant;
  double a = 0.0;
  double b = 0.0;

  /// Fixed delay `t`.
  static EdgeDelay Constant(double t) {
    return EdgeDelay{Kind::kConstant, t, 0.0};
  }
  /// Exponential with the given mean (> 0).
  static EdgeDelay ExponentialMean(double mean);
  /// Uniform on [lo, hi].
  static EdgeDelay Uniform(double lo, double hi) {
    return EdgeDelay{Kind::kUniform, lo, hi};
  }

  /// Draws one travel time (>= 0).
  double Sample(Rng& rng) const;

  /// Parameter validity.
  Status Validate() const;
};

/// \brief A point ICM with per-edge delays.
class DelayedIcm {
 public:
  /// Builds from a model and one delay per edge. Fails on invalid delays.
  static Result<DelayedIcm> Create(PointIcm model,
                                   std::vector<EdgeDelay> delays);

  /// Convenience: every edge gets the same delay distribution.
  static DelayedIcm WithUniformDelay(PointIcm model, EdgeDelay delay);

  const PointIcm& model() const { return model_; }
  const DirectedGraph& graph() const { return model_.graph(); }
  const EdgeDelay& delay(EdgeId e) const;

  /// \brief One timed-world sample: arrival time per node from `sources`
  /// (sources arrive at 0; unreachable nodes get +infinity). Edge activity
  /// is drawn per the ICM, travel times per the delays, and arrivals are
  /// Dijkstra distances over the active edges.
  std::vector<double> SampleArrivalTimes(const std::vector<NodeId>& sources,
                                         Rng& rng) const;

 private:
  DelayedIcm(PointIcm model, std::vector<EdgeDelay> delays)
      : model_(std::move(model)), delays_(std::move(delays)) {}

  PointIcm model_;
  std::vector<EdgeDelay> delays_;
};

/// \brief Monte-Carlo summary of the arrival-time distribution for one
/// (source, sink) pair.
struct ArrivalEstimate {
  /// Finite arrival-time samples (one per trial where the flow happened).
  std::vector<double> arrival_times;
  /// Trials simulated.
  std::size_t trials = 0;

  /// Pr[u ⤳ v at all] — fraction of trials with a finite arrival.
  double FlowProbability() const;
  /// Pr[u ⤳ v within `deadline`].
  double FlowProbabilityWithin(double deadline) const;
  /// Mean arrival time conditioned on arrival (0 when none arrived).
  double MeanArrivalTime() const;
};

/// Simulates `trials` timed worlds and summarizes source→sink arrivals.
ArrivalEstimate EstimateArrival(const DelayedIcm& model, NodeId source,
                                NodeId sink, std::size_t trials, Rng& rng);

}  // namespace infoflow
