/// \file influence_max.h
/// \brief Influence maximization on learned ICMs — the Kempe–Kleinberg–
/// Tardos problem ([3] in the paper) run against models this library
/// learns; the natural downstream use of §I's marketing application.
///
/// Greedy selection with lazy (CELF) evaluation: the expected-spread
/// function is monotone submodular under the ICM, so lazy greedy returns
/// the same (1 − 1/e)-approximate seed set as plain greedy while skipping
/// most marginal-gain re-evaluations. Spread is estimated by Monte-Carlo
/// cascade simulation.

#pragma once

#include <vector>

#include "core/icm.h"
#include "stats/rng.h"
#include "util/status.h"

namespace infoflow {

/// \brief Configuration for the greedy search.
struct InfluenceMaxOptions {
  /// Seed-set size to select.
  std::size_t num_seeds = 5;
  /// Cascade simulations per spread estimate.
  std::size_t simulations = 500;
  /// Restrict candidates (empty: every node is a candidate).
  std::vector<NodeId> candidates;

  Status Validate(const DirectedGraph& graph) const;
};

/// \brief The selection outcome.
struct InfluenceMaxResult {
  /// Chosen seeds in selection order.
  std::vector<NodeId> seeds;
  /// Estimated expected spread after each selection (|V_i| including
  /// seeds), aligned with `seeds`.
  std::vector<double> expected_spread;
  /// Spread evaluations performed (CELF's saving vs. plain greedy's
  /// candidates × num_seeds).
  std::size_t evaluations = 0;
};

/// \brief Estimates the expected spread E[|V_i|] of a seed set by
/// simulating `simulations` cascades.
double EstimateSpread(const PointIcm& model, const std::vector<NodeId>& seeds,
                      std::size_t simulations, Rng& rng);

/// \brief Lazy-greedy (CELF) seed selection.
Result<InfluenceMaxResult> MaximizeInfluence(const PointIcm& model,
                                             const InfluenceMaxOptions& options,
                                             Rng& rng);

}  // namespace infoflow
