/// \file serialization.h
/// \brief Text serialization for models — save a trained betaICM/PointIcm
/// and reload it in another process (production plumbing: train offline,
/// serve queries online; also how the bench CSVs can be re-scored later).
///
/// Format (line-based, UTF-8, '\n'):
///
///   infoflow-beta-icm v1
///   nodes <n>
///   edges <m>
///   <src> <dst> <alpha> <beta>        × m, in edge-id order
///
///   infoflow-point-icm v1
///   nodes <n>
///   edges <m>
///   <src> <dst> <prob>                × m
///
/// Doubles round-trip exactly (printed with max_digits10). Edge ids are
/// reproducible because DirectedGraph canonicalizes edge order by
/// (src, dst).

#pragma once

#include <string>

#include "core/beta_icm.h"
#include "core/icm.h"
#include "util/status.h"

namespace infoflow {

/// Serializes a betaICM.
std::string SerializeBetaIcm(const BetaIcm& model);

/// Parses a serialized betaICM.
Result<BetaIcm> DeserializeBetaIcm(const std::string& text);

/// Serializes a point ICM.
std::string SerializePointIcm(const PointIcm& model);

/// Parses a serialized point ICM.
Result<PointIcm> DeserializePointIcm(const std::string& text);

/// Writes a serialized model to a file.
Status SaveBetaIcm(const BetaIcm& model, const std::string& path);
Status SavePointIcm(const PointIcm& model, const std::string& path);

/// Reads a model back from a file.
Result<BetaIcm> LoadBetaIcm(const std::string& path);
Result<PointIcm> LoadPointIcm(const std::string& path);

}  // namespace infoflow
