#include "core/serialization.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace infoflow {

namespace {

constexpr const char* kBetaHeader = "infoflow-beta-icm v1";
constexpr const char* kPointHeader = "infoflow-point-icm v1";

std::string FullPrecision(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Common preamble parse: header, node count, edge count. Returns the
/// remaining lines.
struct Preamble {
  NodeId nodes = 0;
  EdgeId edges = 0;
  std::vector<std::string> lines;
};

Result<Preamble> ParsePreamble(const std::string& text,
                               const std::string& expected_header) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != expected_header) {
    return Status::ParseError("missing header '", expected_header, "'");
  }
  Preamble pre;
  auto read_count = [&in, &line](const char* key,
                                 std::uint64_t* out) -> Status {
    if (!std::getline(in, line)) {
      return Status::ParseError("unexpected end of input before '", key, "'");
    }
    const auto fields = SplitWhitespace(line);
    if (fields.size() != 2 || fields[0] != key) {
      return Status::ParseError("expected '", key, " <count>', got '", line,
                                "'");
    }
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        fields[1].data(), fields[1].data() + fields[1].size(), value);
    if (ec != std::errc() || ptr != fields[1].data() + fields[1].size()) {
      return Status::ParseError("bad count '", fields[1], "' for ", key);
    }
    *out = value;
    return Status::OK();
  };
  std::uint64_t nodes = 0, edges = 0;
  IF_RETURN_NOT_OK(read_count("nodes", &nodes));
  IF_RETURN_NOT_OK(read_count("edges", &edges));
  if (nodes > kInvalidNode || edges > kInvalidEdge) {
    return Status::ParseError("counts overflow: nodes=", nodes,
                              " edges=", edges);
  }
  pre.nodes = static_cast<NodeId>(nodes);
  pre.edges = static_cast<EdgeId>(edges);
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) pre.lines.emplace_back(Trim(line));
  }
  if (pre.lines.size() != pre.edges) {
    return Status::ParseError("expected ", pre.edges, " edge lines, found ",
                              pre.lines.size());
  }
  return pre;
}

Result<double> ParseDouble(const std::string& field) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(field, &consumed);
    if (consumed != field.size()) {
      return Status::ParseError("trailing characters in number '", field,
                                "'");
    }
    return value;
  } catch (const std::exception&) {
    return Status::ParseError("bad number '", field, "'");
  }
}

Result<Edge> ParseEndpoints(const std::string& a, const std::string& b,
                            NodeId num_nodes) {
  std::uint64_t src = 0, dst = 0;
  auto parse_id = [](const std::string& field,
                     std::uint64_t* out) -> Status {
    const auto [ptr, ec] =
        std::from_chars(field.data(), field.data() + field.size(), *out);
    if (ec != std::errc() || ptr != field.data() + field.size()) {
      return Status::ParseError("bad node id '", field, "'");
    }
    return Status::OK();
  };
  IF_RETURN_NOT_OK(parse_id(a, &src));
  IF_RETURN_NOT_OK(parse_id(b, &dst));
  if (src >= num_nodes || dst >= num_nodes) {
    return Status::ParseError("edge (", src, ",", dst,
                              ") outside node range ", num_nodes);
  }
  return Edge{static_cast<NodeId>(src), static_cast<NodeId>(dst)};
}

}  // namespace

std::string SerializeBetaIcm(const BetaIcm& model) {
  const DirectedGraph& graph = model.graph();
  std::string out = kBetaHeader;
  out += "\nnodes " + std::to_string(graph.num_nodes());
  out += "\nedges " + std::to_string(graph.num_edges());
  out += '\n';
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    out += std::to_string(edge.src);
    out += ' ';
    out += std::to_string(edge.dst);
    out += ' ';
    out += FullPrecision(model.alpha(e));
    out += ' ';
    out += FullPrecision(model.beta(e));
    out += '\n';
  }
  return out;
}

Result<BetaIcm> DeserializeBetaIcm(const std::string& text) {
  auto pre = ParsePreamble(text, kBetaHeader);
  if (!pre.ok()) return pre.status();
  GraphBuilder builder(pre->nodes);
  // Hold parsed rows aside and remap through FindEdge after Build(): the
  // input need not be in canonical edge-id order (hand-edited files).
  struct Row {
    Edge edge;
    double alpha;
    double beta;
  };
  std::vector<Row> rows;
  rows.reserve(pre->edges);
  for (std::size_t i = 0; i < pre->lines.size(); ++i) {
    const auto fields = SplitWhitespace(pre->lines[i]);
    if (fields.size() != 4) {
      return Status::ParseError("edge line ", i + 1,
                                ": expected 'src dst alpha beta'");
    }
    auto edge = ParseEndpoints(fields[0], fields[1], pre->nodes);
    if (!edge.ok()) return edge.status();
    IF_RETURN_NOT_OK(builder.AddEdge(edge->src, edge->dst));
    auto alpha = ParseDouble(fields[2]);
    if (!alpha.ok()) return alpha.status();
    auto beta = ParseDouble(fields[3]);
    if (!beta.ok()) return beta.status();
    if (*alpha <= 0.0 || *beta <= 0.0) {
      return Status::ParseError("edge line ", i + 1,
                                ": non-positive Beta parameters");
    }
    rows.push_back(Row{*edge, *alpha, *beta});
  }
  auto graph =
      std::make_shared<const DirectedGraph>(std::move(builder).Build());
  std::vector<double> alphas(graph->num_edges()), betas(graph->num_edges());
  for (const Row& row : rows) {
    const EdgeId e = graph->FindEdge(row.edge.src, row.edge.dst);
    alphas[e] = row.alpha;
    betas[e] = row.beta;
  }
  return BetaIcm(std::move(graph), std::move(alphas), std::move(betas));
}

std::string SerializePointIcm(const PointIcm& model) {
  const DirectedGraph& graph = model.graph();
  std::string out = kPointHeader;
  out += "\nnodes " + std::to_string(graph.num_nodes());
  out += "\nedges " + std::to_string(graph.num_edges());
  out += '\n';
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    out += std::to_string(edge.src);
    out += ' ';
    out += std::to_string(edge.dst);
    out += ' ';
    out += FullPrecision(model.prob(e));
    out += '\n';
  }
  return out;
}

Result<PointIcm> DeserializePointIcm(const std::string& text) {
  auto pre = ParsePreamble(text, kPointHeader);
  if (!pre.ok()) return pre.status();
  GraphBuilder builder(pre->nodes);
  struct Row {
    Edge edge;
    double prob;
  };
  std::vector<Row> rows;
  rows.reserve(pre->edges);
  for (std::size_t i = 0; i < pre->lines.size(); ++i) {
    const auto fields = SplitWhitespace(pre->lines[i]);
    if (fields.size() != 3) {
      return Status::ParseError("edge line ", i + 1,
                                ": expected 'src dst prob'");
    }
    auto edge = ParseEndpoints(fields[0], fields[1], pre->nodes);
    if (!edge.ok()) return edge.status();
    IF_RETURN_NOT_OK(builder.AddEdge(edge->src, edge->dst));
    auto prob = ParseDouble(fields[2]);
    if (!prob.ok()) return prob.status();
    if (*prob < 0.0 || *prob > 1.0) {
      return Status::ParseError("edge line ", i + 1, ": probability ",
                                *prob, " outside [0,1]");
    }
    rows.push_back(Row{*edge, *prob});
  }
  auto graph =
      std::make_shared<const DirectedGraph>(std::move(builder).Build());
  std::vector<double> probs(graph->num_edges());
  for (const Row& row : rows) {
    probs[graph->FindEdge(row.edge.src, row.edge.dst)] = row.prob;
  }
  return PointIcm(std::move(graph), std::move(probs));
}

namespace {

Status WriteTextFile(const std::string& text, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '", path, "' for writing");
  out << text;
  if (!out) return Status::IOError("write failed for '", path, "'");
  return Status::OK();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '", path, "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Status SaveBetaIcm(const BetaIcm& model, const std::string& path) {
  return WriteTextFile(SerializeBetaIcm(model), path);
}

Status SavePointIcm(const PointIcm& model, const std::string& path) {
  return WriteTextFile(SerializePointIcm(model), path);
}

Result<BetaIcm> LoadBetaIcm(const std::string& path) {
  auto text = ReadTextFile(path);
  if (!text.ok()) return text.status();
  return DeserializeBetaIcm(*text);
}

Result<PointIcm> LoadPointIcm(const std::string& path) {
  auto text = ReadTextFile(path);
  if (!text.ok()) return text.status();
  return DeserializePointIcm(*text);
}

}  // namespace infoflow
