#include "core/pseudo_state.h"

#include <algorithm>

#include "graph/reachability.h"
#include "util/check.h"

namespace infoflow {

bool ActiveState::IsNodeActive(NodeId v) const {
  return std::find(active_nodes.begin(), active_nodes.end(), v) !=
         active_nodes.end();
}

ActiveState DeriveActiveState(const DirectedGraph& graph,
                              const std::vector<NodeId>& sources,
                              const PseudoState& state) {
  IF_CHECK_EQ(state.size(), graph.num_edges());
  ActiveState out;
  out.sources = sources;
  out.active_nodes = ActiveNodes(graph, sources, state);
  out.edge_active.assign(graph.num_edges(), 0);
  // An edge is i-active iff it fired in the pseudo-state AND its parent node
  // is i-active.
  std::vector<std::uint8_t> node_active(graph.num_nodes(), 0);
  for (NodeId v : out.active_nodes) node_active[v] = 1;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (state[e] && node_active[graph.edge(e).src]) out.edge_active[e] = 1;
  }
  return out;
}

}  // namespace infoflow
