/// \file nested_mh.h
/// \brief Nested Metropolis–Hastings (§III-E): uncertainty over flow
/// probabilities.
///
/// A point ICM yields a single flow probability; a betaICM yields a
/// *distribution* over flow probabilities. We estimate it by repeatedly
/// (1) sampling a point ICM from the betaICM's edge Betas and (2) running
/// the pseudo-state MH sampler on that ICM to estimate the flow probability
/// — the procedure behind Fig. 3 and the risk-aware queries of §VI.
///
/// The sampled models are mutually independent, so the outer loop fans out
/// over a thread pool (NestedMhOptions::num_threads); per-model RNG streams
/// are pre-derived, keeping the result identical across thread counts.

#pragma once

#include <vector>

#include "core/beta_icm.h"
#include "core/flow_query.h"
#include "core/mh_sampler.h"
#include "stats/beta_dist.h"
#include "stats/rng.h"
#include "util/status.h"

namespace infoflow {

/// \brief Parameters for a nested run.
struct NestedMhOptions {
  /// Number of point ICMs sampled from the betaICM (outer loop); the paper
  /// uses ~100 for Fig. 3.
  std::size_t num_models = 100;
  /// MH samples per inner flow estimate.
  std::size_t samples_per_model = 500;
  /// Inner-chain tuning.
  MhOptions mh;
  /// When true, draw each edge from a Gaussian moment approximation of its
  /// Beta instead of the Beta itself (the Fig. 10 variant).
  bool gaussian_edge_approximation = false;
  /// \brief Workers for the outer loop (the sampled models are mutually
  /// independent): 0 → hardware concurrency, 1 → serial. Every model's RNG
  /// stream is pre-derived from the caller's generator before any work
  /// starts, so the result is bit-identical for every thread count.
  std::size_t num_threads = 0;
};

/// \brief The outcome: one flow-probability estimate per sampled model.
///
/// Beyond the moments, the risk accessors support §VI's "risk-aware
/// calculations of information leakage": a security officer cares about
/// the *plausible worst case* of the leak probability, not its mean.
struct FlowProbabilityDistribution {
  std::vector<double> probabilities;

  /// Sample mean.
  double Mean() const;
  /// Unbiased sample variance.
  double Variance() const;
  /// \brief Moment-matched Beta over the flow probability (the dashed line
  /// in Fig. 3). Degenerate samples (all equal) produce a tight Beta around
  /// the mean.
  BetaDist FittedBeta() const;

  /// q-quantile of the flow probability (q in [0,1]); Quantile(0.95) is
  /// the value-at-risk style "plausibly this likely to leak".
  double Quantile(double q) const;
  /// Fraction of sampled models whose flow probability exceeds
  /// `threshold` — Pr[leak risk is above the tolerance].
  double ProbabilityAbove(double threshold) const;
  /// Mean of the worst (1 − level) tail (conditional value-at-risk):
  /// the expected leak probability given we are in the bad-parameter tail.
  double TailMean(double level = 0.95) const;
};

/// \brief Estimates the distribution over Pr[source ⤳ sink | C] induced by
/// the betaICM's parameter uncertainty.
Result<FlowProbabilityDistribution> NestedMhFlowDistribution(
    const BetaIcm& model, NodeId source, NodeId sink,
    const FlowConditions& conditions, const NestedMhOptions& options,
    Rng& rng);

}  // namespace infoflow
