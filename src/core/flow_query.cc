#include "core/flow_query.h"

#include <cstdlib>
#include <unordered_map>

#include "util/check.h"
#include "util/string_util.h"

namespace infoflow {

std::string FlowConstraint::ToString() const {
  return std::to_string(source) + (must_flow ? " ~> " : " !~> ") +
         std::to_string(sink);
}

bool SatisfiesConditions(const DirectedGraph& graph, const PseudoState& state,
                         const FlowConditions& conditions,
                         ReachabilityWorkspace& workspace) {
  for (const FlowConstraint& c : conditions) {
    const bool flows =
        workspace.RunUntil(graph, {c.source}, state, c.sink);
    if (flows != c.must_flow) return false;
  }
  return true;
}

Result<FlowConditions> ParseFlowConditions(const std::string& text) {
  FlowConditions conditions;
  for (const std::string& token : SplitWhitespace(text)) {
    const bool forbid = token.find("!>") != std::string::npos;
    const auto parts = Split(token, '>');
    // "a!>b" splits as {"a!", "b"}; "a>b" as {"a", "b"}.
    if (parts.size() != 2) {
      return Status::InvalidArgument("bad condition '", token, "'");
    }
    std::string lhs = parts[0];
    if (forbid && !lhs.empty() && lhs.back() == '!') lhs.pop_back();
    char* end = nullptr;
    const auto src = static_cast<NodeId>(std::strtoul(lhs.c_str(), &end, 10));
    if (end == lhs.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad condition source in '", token, "'");
    }
    const auto dst =
        static_cast<NodeId>(std::strtoul(parts[1].c_str(), &end, 10));
    if (end == parts[1].c_str() || *end != '\0') {
      return Status::InvalidArgument("bad condition sink in '", token, "'");
    }
    conditions.push_back({src, dst, !forbid});
  }
  return conditions;
}

std::size_t HashConditions(const FlowConditions& conditions) {
  // Commutative combine: the digest of C is independent of constraint
  // order, so "0>3 4!>7" and "4!>7 0>3" key the same batch group.
  std::size_t digest = 0x9e3779b97f4a7c15ULL;
  const std::hash<FlowConstraint> hash;
  for (const FlowConstraint& c : conditions) digest += hash(c);
  return digest;
}

Status ValidateConditions(const DirectedGraph& graph,
                          const FlowConditions& conditions) {
  // One pass with a hash map from the *pair* (source, sink) to the first
  // index constraining it: a second entry on the same pair is either an
  // exact duplicate or a contradiction, and both are rejected up front —
  // silently sampling an unsatisfiable (or double-counted) condition set
  // would produce garbage estimates with no diagnostic.
  std::unordered_map<FlowConstraint, std::size_t> first_index;
  first_index.reserve(conditions.size());
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    const FlowConstraint& c = conditions[i];
    if (c.source >= graph.num_nodes() || c.sink >= graph.num_nodes()) {
      return Status::OutOfRange("condition ", i, " (", c.ToString(),
                                ") references a missing node; n=",
                                graph.num_nodes());
    }
    if (c.source == c.sink && !c.must_flow) {
      return Status::InvalidArgument("condition ", i, " forbids ", c.source,
                                     " ~> ", c.sink,
                                     " but u ~> u always holds");
    }
    // Key on the pair with must_flow erased so duplicates and
    // contradictions both collide with the first entry on the pair.
    const FlowConstraint pair_key{c.source, c.sink, true};
    const auto [it, inserted] = first_index.try_emplace(pair_key, i);
    if (!inserted) {
      const std::size_t j = it->second;
      const FlowConstraint& d = conditions[j];
      if (d.must_flow == c.must_flow) {
        return Status::InvalidArgument(
            "conditions ", j, " and ", i, " are duplicates: ", c.ToString());
      }
      return Status::InvalidArgument("conditions ", j, " and ", i,
                                     " contradict: ", d.ToString(), " vs ",
                                     c.ToString());
    }
  }
  return Status::OK();
}

}  // namespace infoflow
