#include "core/flow_query.h"

#include "util/check.h"

namespace infoflow {

std::string FlowConstraint::ToString() const {
  return std::to_string(source) + (must_flow ? " ~> " : " !~> ") +
         std::to_string(sink);
}

bool SatisfiesConditions(const DirectedGraph& graph, const PseudoState& state,
                         const FlowConditions& conditions,
                         ReachabilityWorkspace& workspace) {
  for (const FlowConstraint& c : conditions) {
    const bool flows =
        workspace.RunUntil(graph, {c.source}, state, c.sink);
    if (flows != c.must_flow) return false;
  }
  return true;
}

Status ValidateConditions(const DirectedGraph& graph,
                          const FlowConditions& conditions) {
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    const FlowConstraint& c = conditions[i];
    if (c.source >= graph.num_nodes() || c.sink >= graph.num_nodes()) {
      return Status::OutOfRange("condition ", i, " (", c.ToString(),
                                ") references a missing node; n=",
                                graph.num_nodes());
    }
    if (c.source == c.sink && !c.must_flow) {
      return Status::InvalidArgument("condition ", i, " forbids ", c.source,
                                     " ~> ", c.sink,
                                     " but u ~> u always holds");
    }
    for (std::size_t j = i + 1; j < conditions.size(); ++j) {
      const FlowConstraint& d = conditions[j];
      if (c.source == d.source && c.sink == d.sink &&
          c.must_flow != d.must_flow) {
        return Status::InvalidArgument("conditions ", i, " and ", j,
                                       " contradict: ", c.ToString(), " vs ",
                                       d.ToString());
      }
    }
  }
  return Status::OK();
}

}  // namespace infoflow
