#include "core/icm.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace infoflow {

PointIcm::PointIcm(std::shared_ptr<const DirectedGraph> graph,
                   std::vector<double> edge_probs)
    : graph_(std::move(graph)), probs_(std::move(edge_probs)) {
  IF_CHECK(graph_ != nullptr) << "PointIcm requires a graph";
  IF_CHECK_EQ(probs_.size(), graph_->num_edges());
  for (std::size_t e = 0; e < probs_.size(); ++e) {
    IF_CHECK(probs_[e] >= 0.0 && probs_[e] <= 1.0)
        << "edge " << e << " probability " << probs_[e] << " outside [0,1]";
  }
}

PointIcm PointIcm::Constant(std::shared_ptr<const DirectedGraph> graph,
                            double p) {
  IF_CHECK(graph != nullptr);
  const std::size_t m = graph->num_edges();
  return PointIcm(std::move(graph), std::vector<double>(m, p));
}

double PointIcm::prob(EdgeId e) const {
  IF_CHECK(e < probs_.size()) << "edge id " << e << " out of range";
  return probs_[e];
}

PseudoState PointIcm::SamplePseudoState(Rng& rng) const {
  PseudoState state(probs_.size());
  for (std::size_t e = 0; e < probs_.size(); ++e) {
    state[e] = rng.Bernoulli(probs_[e]) ? 1 : 0;
  }
  return state;
}

ActiveState PointIcm::SampleCascade(const std::vector<NodeId>& sources,
                                    Rng& rng) const {
  // Percolation: BFS from the sources, flipping each out-edge of a newly
  // active node once. Edges whose parent never activates are never decided
  // (left 0), matching the active-state definition.
  ActiveState out;
  out.sources = sources;
  out.edge_active.assign(graph_->num_edges(), 0);
  std::vector<std::uint8_t> node_active(graph_->num_nodes(), 0);

  std::vector<NodeId> queue;
  for (NodeId s : sources) {
    IF_CHECK(s < graph_->num_nodes()) << "source " << s << " out of range";
    if (node_active[s]) continue;
    node_active[s] = 1;
    queue.push_back(s);
  }
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    for (EdgeId e : graph_->OutEdges(u)) {
      if (!rng.Bernoulli(probs_[e])) continue;
      out.edge_active[e] = 1;
      const NodeId v = graph_->edge(e).dst;
      if (!node_active[v]) {
        node_active[v] = 1;
        queue.push_back(v);
      }
    }
  }
  out.active_nodes = std::move(queue);
  return out;
}

double PointIcm::LogPseudoStateProb(const PseudoState& state) const {
  IF_CHECK_EQ(state.size(), probs_.size());
  double log_prob = 0.0;
  for (std::size_t e = 0; e < probs_.size(); ++e) {
    const double p = probs_[e];
    const double factor = state[e] ? p : 1.0 - p;
    if (factor <= 0.0) return -std::numeric_limits<double>::infinity();
    log_prob += std::log(factor);
  }
  return log_prob;
}

std::string PointIcm::ToString() const {
  return "PointIcm(n=" + std::to_string(graph_->num_nodes()) +
         ", m=" + std::to_string(graph_->num_edges()) + ")";
}

}  // namespace infoflow
