/// \file reachability.h
/// \brief BFS reachability over a subset of "active" edges.
///
/// Deriving the active-state of a pseudo-state (§III-A) — and testing
/// whether a flow u ⤳ v exists in a sampled state (the indicator of Eq. 5)
/// — is reachability from the source set through active edges only. This is
/// the O(m) inner step of every Metropolis–Hastings sample, so the workspace
/// is reusable: no allocation after the first call of a given size.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace infoflow {

/// \brief Reusable BFS workspace bound to a graph size.
///
/// \code
///   ReachabilityWorkspace ws(graph);
///   ws.Run(graph, {source}, active);          // active: vector<uint8_t>[m]
///   bool flows = ws.IsReached(sink);
/// \endcode
class ReachabilityWorkspace {
 public:
  /// Sizes buffers for `graph` (n nodes). The workspace may be reused with
  /// any graph of the same node count.
  explicit ReachabilityWorkspace(const DirectedGraph& graph);

  /// \brief Runs BFS from `sources` following only edges whose slot in
  /// `edge_active` is non-zero. After the call, IsReached() answers
  /// membership in the i-active node set V_i.
  void Run(const DirectedGraph& graph, const std::vector<NodeId>& sources,
           const std::vector<std::uint8_t>& edge_active);

  /// \brief As Run(), but stops early once `target` is reached; returns
  /// whether it was. IsReached() remains valid for the explored prefix only.
  bool RunUntil(const DirectedGraph& graph,
                const std::vector<NodeId>& sources,
                const std::vector<std::uint8_t>& edge_active, NodeId target);

  /// \brief As Run(), but edge activity comes from a word-packed bit row
  /// (bit e of `edge_bits` — word e/64, bit e%64 — is edge e's activity).
  /// `edge_bits` must span ceil(m/64) words. This is the form the serve
  /// SampleBank stores retained pseudo-states in; batch queries BFS straight
  /// over the packed rows without unpacking.
  void RunPacked(const DirectedGraph& graph,
                 const std::vector<NodeId>& sources,
                 const std::uint64_t* edge_bits);

  /// Early-exit variant of RunPacked (see RunUntil).
  bool RunUntilPacked(const DirectedGraph& graph,
                      const std::vector<NodeId>& sources,
                      const std::uint64_t* edge_bits, NodeId target);

  /// True when `v` was reached by the last Run()/RunUntil().
  bool IsReached(NodeId v) const;

  /// Nodes reached by the last full Run(), in BFS order (includes sources).
  const std::vector<NodeId>& ReachedNodes() const { return order_; }

  /// \brief Forces the visited-version counter (wrap regression tests
  /// only). The next run increments past the forced value; setting
  /// 0xFFFFFFFF drives the very next run through the wrap-and-clear path,
  /// which must not let a stamp written before the wrap read as "visited".
  void ForceVersionForTesting(std::uint32_t version) { version_ = version; }

 private:
  void Reset(std::size_t num_nodes);

  /// Shared BFS core: `active(e)` answers edge e's activity. Defined in the
  /// .cc — every public Run* variant instantiates it there.
  template <typename ActiveFn>
  bool RunUntilImpl(const DirectedGraph& graph,
                    const std::vector<NodeId>& sources, NodeId target,
                    const ActiveFn& active);

  // Version-stamped visited marks: avoids clearing n bytes per query.
  std::vector<std::uint32_t> visited_version_;
  std::uint32_t version_ = 0;
  std::vector<NodeId> queue_;
  std::vector<NodeId> order_;
};

/// Number of 64-bit words a packed edge-activity row needs for `num_edges`
/// edges (the layout RunPacked consumes).
inline constexpr std::size_t PackedRowWords(std::size_t num_edges) {
  return (num_edges + 63) / 64;
}

/// Bit e of a packed edge-activity row.
inline bool PackedEdgeActive(const std::uint64_t* edge_bits, EdgeId e) {
  return (edge_bits[e >> 6] >> (e & 63)) & 1u;
}

/// One-shot convenience: does a flow `source` ⤳ `sink` exist through the
/// active edges? (Sources are trivially reached: u ⤳ u always holds.)
bool FlowExists(const DirectedGraph& graph, NodeId source, NodeId sink,
                const std::vector<std::uint8_t>& edge_active);

/// One-shot convenience: the full set of nodes reachable from `sources`
/// through active edges (the i-active vertex set).
std::vector<NodeId> ActiveNodes(const DirectedGraph& graph,
                                const std::vector<NodeId>& sources,
                                const std::vector<std::uint8_t>& edge_active);

}  // namespace infoflow
