/// \file subgraph.h
/// \brief Radius-limited ego subgraph extraction with node/edge remapping.
///
/// The Twitter experiments (§IV-C, Fig. 2/8/9) pick a focus user and work on
/// the sub-model of all users within distance r of the focus. Extraction
/// returns both the local graph and the maps back to parent ids so edge
/// parameters (Betas, point probabilities) can be carried across.

#pragma once

#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace infoflow {

/// \brief Which edge directions count toward "distance from the focus".
enum class EgoDirection {
  kOut,         ///< follow out-edges only (direction information flows)
  kIn,          ///< follow in-edges only
  kUndirected,  ///< either direction
};

/// \brief A subgraph plus the correspondence to its parent graph.
struct Subgraph {
  DirectedGraph graph;
  /// local node id -> parent node id (index = local id).
  std::vector<NodeId> node_to_parent;
  /// parent node id -> local node id (only mapped nodes present).
  std::unordered_map<NodeId, NodeId> parent_to_node;
  /// local edge id -> parent edge id.
  std::vector<EdgeId> edge_to_parent;

  /// Local id of a parent node, or kInvalidNode when outside the subgraph.
  NodeId LocalNode(NodeId parent_id) const;
};

/// \brief Extracts the ego subgraph of all nodes within `radius` hops of
/// `focus` (per `direction`), with *all* parent edges among those nodes.
Subgraph EgoSubgraph(const DirectedGraph& parent, NodeId focus,
                     std::size_t radius,
                     EgoDirection direction = EgoDirection::kOut);

/// \brief Extracts the induced subgraph on an explicit node set (duplicates
/// ignored; order of first occurrence defines local ids).
Subgraph InducedSubgraph(const DirectedGraph& parent,
                         const std::vector<NodeId>& nodes);

}  // namespace infoflow
