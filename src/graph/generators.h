/// \file generators.h
/// \brief Random graph generators for the synthetic experiments.
///
/// Fig. 1/5 use uniform G(n, m) topologies (50 nodes, 200 edges); the
/// Twitter simulator (src/twitter/) uses a directed preferential-attachment
/// follow graph so degree distributions are heavy-tailed like the real
/// crawl; Fig. 7 uses explicit k-parent star fragments.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "stats/rng.h"

namespace infoflow {

/// \brief Uniform random directed graph: exactly `num_edges` distinct
/// directed non-self-loop edges among `num_nodes` nodes.
/// Requires num_edges <= n(n-1).
DirectedGraph UniformRandomGraph(NodeId num_nodes, EdgeId num_edges,
                                 Rng& rng);

/// \brief Directed preferential-attachment graph.
///
/// Nodes arrive one at a time; each new node draws `out_degree` distinct
/// targets among existing nodes with probability proportional to
/// (in-degree + 1), then — with probability `reciprocity` per edge — the
/// target links back. This mimics a Twitter follow graph: a few celebrities
/// accumulate huge audiences, most accounts stay small, and some ties are
/// mutual.
DirectedGraph PreferentialAttachmentGraph(NodeId num_nodes,
                                          std::size_t out_degree,
                                          double reciprocity, Rng& rng);

/// \brief The k-parent "star fragment" of Fig. 7 / Table I: parents
/// 0..k-1 each with a single edge into sink node k.
DirectedGraph StarFragment(std::size_t num_parents);

/// \brief Random recursive tree, edges directed root (node 0) → leaves.
///
/// Each node v >= 1 attaches under a uniformly random earlier node whose
/// fanout is still below `max_children` (0 = unbounded). The result has
/// exactly n − 1 edges and no undirected cycles — the shape on which the
/// analytic subtree-convolution backend is exact (src/analytic/).
DirectedGraph RandomTreeGraph(NodeId num_nodes, std::size_t max_children,
                              Rng& rng);

}  // namespace infoflow
