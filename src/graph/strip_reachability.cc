#include "graph/strip_reachability.h"

#include <string>

#include "graph/strip_reachability_inl.h"
#include "util/check.h"

namespace infoflow {

const char* LaneWidthName(LaneWidth lanes) {
  switch (lanes) {
    case LaneWidth::kAuto:
      return "auto";
    case LaneWidth::k64:
      return "64";
    case LaneWidth::k256:
      return "256";
    case LaneWidth::k512:
      return "512";
  }
  return "unknown";
}

Result<LaneWidth> ParseLaneWidth(std::string_view name) {
  if (name == "auto") return LaneWidth::kAuto;
  if (name == "64") return LaneWidth::k64;
  if (name == "256") return LaneWidth::k256;
  if (name == "512") return LaneWidth::k512;
  return Status::InvalidArgument("unknown lane width \"", std::string(name),
                                 "\"; expected 64, 256, 512, or auto");
}

unsigned ResolveStripWords(LaneWidth lanes, std::size_t num_rows,
                           std::size_t num_nodes, std::size_t num_edges) {
  switch (lanes) {
    case LaneWidth::k64:
      return 1;
    case LaneWidth::k256:
      return 4;
    case LaneWidth::k512:
      return 8;
    case LaneWidth::kAuto:
      break;
  }
  // Widest strip the batch fills: a half-empty strip would pay W words per
  // edge for dead lanes, so only step up when the rows cover it.
  unsigned words = 1;
  if (num_rows >= 512) {
    words = 8;
  } else if (num_rows >= 256) {
    words = 4;
  }
  // Cache cap (see header): per width-word the replay streams the node
  // state (reached + propagated) plus one strip of the edge plane —
  // (2n + m)·8 bytes. Once that spills L2 the wide strip's fewer-revisits
  // win inverts into a per-visit latency loss, so step back down.
  if (num_nodes != 0 || num_edges != 0) {
    const std::size_t bytes_per_word = (2 * num_nodes + num_edges) * 8;
    while (words > 1 && bytes_per_word * words > kStripWorkingSetBudget) {
      words = words == 8 ? 4 : 1;
    }
  }
  return words;
}

#if defined(INFOFLOW_STRIP_AVX2)
std::unique_ptr<StripWorkspace> CreateAvx2StripWorkspace(
    unsigned width_words, const DirectedGraph& graph);
#endif
#if defined(INFOFLOW_STRIP_AVX512)
std::unique_ptr<StripWorkspace> CreateAvx512StripWorkspace(
    unsigned width_words, const DirectedGraph& graph);
#endif

std::unique_ptr<StripWorkspace> StripWorkspace::Create(
    unsigned width_words, const DirectedGraph& graph) {
  IF_CHECK(width_words == 1 || width_words == 4 || width_words == 8)
      << "unsupported strip width " << width_words;
  // Widest ISA variant the running CPU supports, falling through to the
  // always-compiled generic instantiation. Every variant computes
  // bit-identical masks (pinned by the differential suite), so the pick
  // only affects speed. W=1 has no vector body — the single word is
  // narrower than any vector granule — so it always takes the generic path.
  if (width_words > 1) {
#if defined(INFOFLOW_STRIP_AVX512)
    if (width_words == 8 && __builtin_cpu_supports("avx512f")) {
      return CreateAvx512StripWorkspace(width_words, graph);
    }
#endif
#if defined(INFOFLOW_STRIP_AVX2)
    if (__builtin_cpu_supports("avx2")) {
      return CreateAvx2StripWorkspace(width_words, graph);
    }
#endif
  }
  switch (width_words) {
    case 1:
      return std::make_unique<StripReachabilityWorkspace<1>>(graph);
    case 4:
      return std::make_unique<StripReachabilityWorkspace<4>>(graph);
    default:
      return std::make_unique<StripReachabilityWorkspace<8>>(graph);
  }
}

template class StripReachabilityWorkspace<1, kIsaGeneric>;
template class StripReachabilityWorkspace<4, kIsaGeneric>;
template class StripReachabilityWorkspace<8, kIsaGeneric>;

}  // namespace infoflow
