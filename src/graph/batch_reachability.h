/// \file batch_reachability.h
/// \brief Bit-parallel BFS: reachability in 64 sampled worlds per pass.
///
/// Every flow estimate replays reachability over many sampled pseudo-states
/// of the *same* graph (Eq. 5: average an indicator over retained states).
/// Running one scalar BFS per state wastes the machine word: edge activity
/// is one bit per state, so 64 states fit in a `uint64_t` per edge. This
/// workspace runs the BFS frontier as 64-bit masks — `reached[v]` has bit s
/// set iff node v is reachable from the sources in sample s — and a node
/// relaxes an out-edge for all 64 samples at once with
/// `reached[src] & edge_words[e]`. One pass answers 64 pseudo-states.
///
/// Input layout is **edge-major**: `edge_words[e]` is edge e's activity
/// across the 64 samples of a block (bit s = sample s). The serve
/// SampleBank materializes this plane per generation (built from its packed
/// rows by 64×64 bitset transpose, see bit_transpose.h); samplers pack it
/// incrementally as retained states stream out of a chain.
///
/// `lane_mask` restricts a run to a subset of samples: propagation never
/// leaves the mask, ragged tail blocks (fewer than 64 samples) pass the
/// valid-lane mask, and conditional queries (Eq. 7–8) pass the surviving
/// I(x, C) lanes so dead samples cost nothing.
///
/// \code
///   BatchReachabilityWorkspace ws(graph);
///   ws.Run(graph, sources, edge_words);          // edge_words: uint64[m]
///   std::uint64_t hits = ws.ReachedMask(sink);   // bit s = flows in sample s
///   double p = std::popcount(hits) / 64.0;       // Eq. 5 over the block
/// \endcode

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "obs/metrics.h"

namespace infoflow {

/// \brief Reusable mask-propagation BFS workspace bound to a graph size.
///
/// Like ReachabilityWorkspace (the scalar reference implementation this is
/// differentially tested against), the workspace allocates once and is
/// reused across runs; instead of version stamps it re-zeroes only the
/// previous run's touched set, so no counter can wrap.
/// Not thread-safe; give each worker its own instance.
class BatchReachabilityWorkspace {
 public:
  /// Sizes buffers for `graph` and flattens its adjacency for the hot
  /// loop. Reusable with any graph of the same node count — passing a
  /// different graph instance to Run rebinds (re-flattens) on the fly.
  explicit BatchReachabilityWorkspace(const DirectedGraph& graph);

  /// \brief Propagates reached-masks from `sources` (every source starts
  /// with `lane_mask`) until fixpoint. After the call ReachedMask() answers
  /// per-sample membership in the i-active node set.
  void Run(const DirectedGraph& graph, const std::vector<NodeId>& sources,
           const std::uint64_t* edge_words,
           std::uint64_t lane_mask = ~std::uint64_t{0});

  /// \brief As Run(), but stops early once `target`'s mask saturates
  /// `lane_mask` (the answer can no longer change). Returns the target's
  /// final reached mask; ReachedMask() remains valid for the explored
  /// prefix only.
  std::uint64_t RunUntil(const DirectedGraph& graph,
                         const std::vector<NodeId>& sources,
                         const std::uint64_t* edge_words, NodeId target,
                         std::uint64_t lane_mask = ~std::uint64_t{0});

  /// \brief Incremental interface, for callers that interleave propagation
  /// with externally delivered lane masks (the sharded router's cut-edge
  /// frontier exchange): `Begin` resets the workspace, then any sequence of
  /// `Seed`/`Propagate` calls grows the reached masks monotonically —
  /// lanes handed across a shard boundary are Seeded at the receiving node
  /// and the next Propagate continues from exactly that delta instead of
  /// recomputing the fixpoint from scratch. Every Begin/Seed sequence must
  /// end with a Propagate before the workspace is reused.
  ///
  /// Run(g, srcs, words, lanes) ≡ Begin(g); Seed(s, lanes) ∀s; Propagate().
  void Begin(const DirectedGraph& graph);

  /// Adds `lanes` to `v`'s reached mask and queues the delta for the next
  /// Propagate. A no-op when the mask already covers `lanes`.
  void Seed(NodeId v, std::uint64_t lanes);

  /// Propagates every pending Seed delta to fixpoint over `edge_words`.
  void Propagate(const std::uint64_t* edge_words);

  /// Samples (bits) in which `v` was reached by the last run; 0 when v was
  /// never touched.
  std::uint64_t ReachedMask(NodeId v) const { return reached_[v]; }

  /// Nodes with a nonzero reached mask after the last run, in ascending
  /// node-id order (includes sources).
  const std::vector<NodeId>& TouchedNodes() const { return touched_; }

  /// \brief Popcount reduction: adds 1 to `counts[s]` for every touched
  /// node reached in sample s. `counts` must span 64 entries. With a single
  /// source this tallies per-sample spread sizes (source included).
  void AccumulateReachedCounts(std::uint32_t* counts) const;

 private:
  /// Flattens `graph`'s adjacency into first_edge_/dst_ (see below). Called
  /// lazily by Run whenever a different graph instance is passed.
  void BindGraph(const DirectedGraph& graph);

  /// The shared fixpoint loop behind RunUntil and Propagate: drains the
  /// frontier (early-exiting once `target` saturates `lane_mask`), clears
  /// the frontier bitmaps, and re-extracts touched_ from ever_bits_.
  std::uint64_t Finish(const std::uint64_t* edge_words, NodeId target,
                       std::uint64_t lane_mask);

  /// Per-node reached masks. Between runs every entry is zero except the
  /// last run's touched set (ReachedMask reads this directly); each run
  /// starts by re-zeroing that set, which is cheaper than clearing n words
  /// and needs no version stamps.
  std::vector<std::uint64_t> reached_;
  /// Lanes already relaxed through v's out-edges this run. A node re-enters
  /// a round only when new lanes arrived, and then relaxes just the delta
  /// `reached_[v] & ~propagated_[v]` — on graphs where per-sample BFS
  /// distances spread widely a node is revisited once per distinct arrival
  /// depth, and without the delta every visit would re-scan all 64 lanes.
  std::vector<std::uint64_t> propagated_;
  /// Level-synchronous frontier bitmaps (bit v = node v pending): each
  /// round drains frontier_bits_ in node-id order while merges branchlessly
  /// mark growth in next_bits_; ever_bits_ accumulates every node that ever
  /// grew and yields touched_ after the run.
  std::vector<std::uint64_t> frontier_bits_;
  std::vector<std::uint64_t> next_bits_;
  std::vector<std::uint64_t> ever_bits_;
  std::vector<NodeId> touched_;

  /// Flat copy of the bound graph's out-adjacency. GraphBuilder assigns
  /// edge ids in (src, dst) lexicographic order, so node v's out-edges are
  /// the contiguous id range [first_edge_[v], first_edge_[v+1]) and
  /// edge_words can be walked sequentially; dst_[e] replaces the wider
  /// Edge-struct load in the hot loop.
  const DirectedGraph* bound_graph_ = nullptr;
  std::vector<EdgeId> first_edge_;
  std::vector<NodeId> dst_;

  obs::Counter* metric_blocks_;
  obs::Counter* metric_frontier_words_;
  obs::Histogram* metric_block_latency_us_;
};

}  // namespace infoflow
